// Shared helpers for the figure-reproduction benches: fixed-width table
// printing and common workload construction. Every bench runs with no
// arguments, uses the virtual-clock simulator, and prints the rows/series of
// the corresponding paper figure.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

#include "baselines/strategy.hpp"
#include "obs/obs.hpp"
#include "sim/cost_model.hpp"
#include "sim/hardware.hpp"

namespace sh::bench {

inline void header(const std::string& title) {
  // Every bench prints a header first, so this is the one place to honour
  // SH_TRACE=<path> (enable the global recorder, dump a Chrome trace at exit).
  obs::init_from_env();
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline baselines::Workload make_workload(std::int64_t layers,
                                         std::int64_t hidden, double batch,
                                         int mp = 1) {
  baselines::Workload w;
  w.model = sim::table1_model(layers, hidden, mp);
  w.batch = batch;
  return w;
}

/// The paper's common 1.7B reference model (20 layers, hidden 2560).
inline baselines::Workload common_1p7b(double batch = 4.0) {
  return make_workload(20, 2560, batch);
}

inline double gib(double bytes) { return bytes / (1024.0 * 1024.0 * 1024.0); }

}  // namespace sh::bench

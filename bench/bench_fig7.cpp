// Figure 7: throughput (samples/s) when training the largest trainable model
// of each scheme — (a) single 32 GB V100, (b) the 8-node A10 cluster.
// STRONGHOLD runs the same model as its counterpart for the relative rows.
#include <cstdarg>
#include <cstdio>
#include <vector>

#include "baselines/cluster.hpp"
#include "baselines/stronghold_strategy.hpp"
#include "bench_util.hpp"

namespace {

/// Finds the layer count whose size matches `billions` at the given hidden.
std::int64_t layers_for(double billions, std::int64_t hidden, int mp) {
  std::int64_t layers = 1;
  while (sh::sim::params_billions(sh::sim::table1_model(layers, hidden, mp)) <
         billions) {
    ++layers;
  }
  return layers;
}

}  // namespace

int main() {
  using namespace sh;
  using namespace sh::baselines;
  const auto machine = sim::v100_server();
  const auto lineup = single_gpu_lineup();
  StrongholdStrategy sh_strategy;

  bench::header("Figure 7a: throughput at each scheme's largest model (V100)");
  std::printf("%-14s %9s %12s %12s %14s %12s\n", "scheme", "size(B)",
              "samples/s", "TFLOPS", "SH samples/s", "SH TFLOPS");
  for (const auto& s : lineup) {
    const double b = largest_trainable_billions(*s, machine, 2560, 1, 4.0);
    if (b <= 0.0) continue;
    const auto w = bench::make_workload(layers_for(b * 0.999, 2560, 1), 2560,
                                        4.0);
    const auto rep = s->iteration(w, machine, nullptr);
    const auto shrep = sh_strategy.iteration(w, machine, nullptr);
    std::printf("%-14s %9.1f %12.4f %12.2f %14.4f %12.2f\n",
                s->name().c_str(), b, rep.throughput, rep.achieved_flops / 1e12,
                shrep.throughput, shrep.achieved_flops / 1e12);
  }
  std::printf("Paper TFLOPS: L2L 1.88, ZeRO-Offload 0.59, ZeRO-Infinity 0.53, "
              "STRONGHOLD 6-9 (42-57%% of peak).\n");

  bench::header("Figure 7b: throughput at largest models, 8x A10 cluster (MP=8)");
  const auto cluster = sim::a10_cluster();
  std::printf("%-14s %9s %12s %14s\n", "scheme", "size(B)", "samples/s",
              "SH samples/s");
  for (const auto& s : lineup) {
    const double b =
        largest_trainable_billions_cluster(*s, cluster, 5120, 4.0);
    if (b <= 0.0) continue;
    const auto w = bench::make_workload(layers_for(b * 0.999, 5120, 8), 5120,
                                        4.0, 8);
    const bool is_sh = s->name() == "STRONGHOLD";
    const auto rep = cluster_iteration_mp(*s, w, cluster, is_sh);
    const auto shrep = cluster_iteration_mp(sh_strategy, w, cluster, true);
    std::printf("%-14s %9.1f %12.4f %14.4f\n", s->name().c_str(), b,
                rep.throughput, shrep.throughput);
  }
  std::printf("Paper: STRONGHOLD improves throughput by at least 1.1x "
              "(up to 3.7x) over each baseline at its largest model.\n");
  return 0;
}

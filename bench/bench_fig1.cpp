// Figure 1 (motivation): trainable model size (a) and throughput on the
// common 1.7B model (b) for Megatron-LM and the ZeRO-based solutions on a
// 32 GB V100 server.
#include <cstdarg>
#include <cstdio>

#include "baselines/megatron.hpp"
#include "baselines/zero_infinity.hpp"
#include "baselines/zero_offload.hpp"
#include "bench_util.hpp"

int main() {
  using namespace sh;
  using namespace sh::baselines;
  const auto machine = sim::v100_server();

  MegatronStrategy megatron;
  ZeroOffloadStrategy zoff;
  ZeroInfinityStrategy zinf_cpu(ZeroInfinityStrategy::Tier::Cpu);
  ZeroInfinityStrategy zinf_nvme(ZeroInfinityStrategy::Tier::Nvme);

  bench::header("Figure 1a: largest trainable model size on a 32GB V100");
  std::printf("%-22s %12s %14s\n", "scheme", "size (B)", "vs Megatron");
  const double mega_b =
      largest_trainable_billions(megatron, machine, 2560, 1, 4.0);
  for (const Strategy* s :
       {static_cast<Strategy*>(&megatron), static_cast<Strategy*>(&zoff),
        static_cast<Strategy*>(&zinf_cpu),
        static_cast<Strategy*>(&zinf_nvme)}) {
    const double b = largest_trainable_billions(*s, machine, 2560, 1, 4.0);
    std::printf("%-22s %12.1f %13.1fx\n", s->name().c_str(), b, b / mega_b);
  }

  bench::header("Figure 1b: throughput on the common 1.7B model");
  const auto w = bench::common_1p7b();
  const double mega_thr = megatron.iteration(w, machine, nullptr).throughput;
  std::printf("%-22s %14s %14s\n", "scheme", "samples/s", "vs Megatron");
  for (const Strategy* s :
       {static_cast<Strategy*>(&megatron), static_cast<Strategy*>(&zoff),
        static_cast<Strategy*>(&zinf_cpu),
        static_cast<Strategy*>(&zinf_nvme)}) {
    const double thr = s->iteration(w, machine, nullptr).throughput;
    std::printf("%-22s %14.4f %13.2fx\n", s->name().c_str(), thr,
                thr / mega_thr);
  }
  std::printf("\nPaper: ZeRO-Offload trains 3x larger but 6.7x slower; "
              "ZeRO-Infinity(NVMe) ~29x larger, >800x slower.\n");
  return 0;
}

// Figure 13: FP-only inference for knowledge distillation on a single 32 GB
// V100. PyTorch must hold every parameter in GPU memory and OOMs early;
// STRONGHOLD streams layers through the working window and scales linearly.
// (Only parameters are needed — no gradients or optimizer state.)
#include <cstdarg>
#include <cstdio>

#include "baselines/calibration.hpp"
#include "baselines/timing.hpp"
#include "bench_util.hpp"

namespace {

using sh::baselines::Workload;
using sh::sim::MachineSpec;

/// FP-only iteration seconds for a fully GPU-resident model (PyTorch).
double pytorch_infer_seconds(const Workload& w, const MachineSpec& m) {
  const double kernels =
      static_cast<double>(w.model.layers) *
          sh::baselines::detail::t_fwd_block(w, m.gpu) +
      sh::baselines::detail::t_head_total(w, m.gpu) / 3.0;
  return kernels * sh::baselines::detail::bubble_multiplier(m.gpu);
}

bool pytorch_infer_fits(const Workload& w, const MachineSpec& m) {
  const double gpu = sh::sim::kF32 * sh::sim::total_params(w.model) +
                     sh::sim::working_activation_bytes(w.model, w.batch) +
                     m.gpu.runtime_reserved_bytes;
  return gpu <= m.gpu.mem_bytes;
}

/// FP-only seconds under STRONGHOLD's window: per-layer max(compute, fetch).
double stronghold_infer_seconds(const Workload& w, const MachineSpec& m) {
  const double t_fp = sh::baselines::detail::t_fwd_block(w, m.gpu) *
                      sh::baselines::detail::bubble_multiplier(m.gpu);
  const double fetch =
      sh::sim::block_param_bytes(w.model) /
      (m.pcie_bytes_per_s * sh::baselines::calib::kStrongholdLinkEfficiency);
  return static_cast<double>(w.model.layers) * std::max(t_fp, fetch) +
         sh::baselines::detail::t_head_total(w, m.gpu) / 3.0 *
             sh::baselines::detail::bubble_multiplier(m.gpu);
}

bool stronghold_infer_fits(const Workload& w, const MachineSpec& m) {
  // GPU: two window slots (params only) + working activations.
  const double gpu = 2.0 * sh::sim::block_param_bytes(w.model) +
                     2.0 * sh::sim::kF32 *
                         sh::sim::embedding_params(w.model) +
                     sh::sim::working_activation_bytes(w.model, w.batch) +
                     m.gpu.runtime_reserved_bytes;
  // CPU pinned: parameters only (4 B/param, no grads/opt for inference).
  const double cpu = sh::sim::kF32 * sh::sim::total_params(w.model);
  return gpu <= m.gpu.mem_bytes && cpu <= m.cpu.pinned_limit_bytes;
}

}  // namespace

int main() {
  using namespace sh;
  const auto machine = sim::v100_server();

  bench::header("Figure 13: FP-only inference for knowledge distillation (V100)");
  std::printf("%9s %16s %16s\n", "size (B)", "PyTorch s/s", "STRONGHOLD s/s");
  for (std::int64_t layers : {20, 50, 83, 120, 260, 500, 1000, 1900}) {
    const auto w = bench::make_workload(layers, 2560, 4.0);
    const double b = sim::params_billions(w.model);
    char pt[32], shs[32];
    if (pytorch_infer_fits(w, machine)) {
      std::snprintf(pt, sizeof pt, "%.3f",
                    w.batch / pytorch_infer_seconds(w, machine));
    } else {
      std::snprintf(pt, sizeof pt, "OOM");
    }
    if (stronghold_infer_fits(w, machine)) {
      std::snprintf(shs, sizeof shs, "%.3f",
                    w.batch / stronghold_infer_seconds(w, machine));
    } else {
      std::snprintf(shs, sizeof shs, "OOM");
    }
    std::printf("%9.1f %16s %16s\n", b, pt, shs);
  }
  std::printf("\nPaper: similar performance for small DNNs, linear "
              "scalability for large DNNs where PyTorch OOMs. Inference "
              "supports larger models than training (FP only).\n");
  return 0;
}

// Figure 6a: largest trainable model size on a single 32 GB V100 GPU, with
// min-max over model geometries (hidden dimension sweep) as in the paper.
#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "baselines/strategy.hpp"
#include "bench_util.hpp"

int main() {
  using namespace sh;
  const auto machine = sim::v100_server();
  const auto lineup = baselines::single_gpu_lineup();
  const double paper[] = {1.7, 6.0, 6.0, 20.6, 39.5};

  bench::header("Figure 6a: largest trainable size, single 32GB V100 (CPU RAM only)");
  std::printf("%-14s %10s %10s %10s %12s\n", "scheme", "min (B)", "max (B)",
              "hd=2560", "paper (B)");
  int idx = 0;
  for (const auto& s : lineup) {
    double mn = 1e18, mx = 0.0, at2560 = 0.0;
    for (std::int64_t hd : {2560, 4096, 5120}) {
      const double b =
          baselines::largest_trainable_billions(*s, machine, hd, 1, 4.0);
      mn = std::min(mn, b);
      mx = std::max(mx, b);
      if (hd == 2560) at2560 = b;
    }
    std::printf("%-14s %10.1f %10.1f %10.1f %12.1f\n", s->name().c_str(), mn,
                mx, at2560, paper[idx++]);
  }
  std::printf("\nPaper: STRONGHOLD 39.5B = 6.5x over L2L/ZeRO-Offload, "
              "1.9x over ZeRO-Infinity.\n");
  return 0;
}

// Section III-F: cross-server communication volume of w-way model
// parallelism vs the w-way data parallelism STRONGHOLD enables, including
// the simplified closed form V_mp/V_dp = bs / (3 hd/256 + 30/n).
#include <cstdarg>
#include <cstdio>

#include "bench_util.hpp"
#include "dist/comm_volume.hpp"

int main() {
  using namespace sh;
  bench::header("Section III-F: MP vs DP communication volume (w = 8)");
  std::printf("%6s %6s %6s %14s %14s %10s %12s\n", "n", "hd", "bs",
              "V_mp (GB)", "V_dp (GB)", "ratio", "closed form");
  for (const auto& [n, hd] :
       {std::pair<std::int64_t, std::int64_t>{50, 4096},
        {50, 2560}, {24, 1024}, {100, 4096}}) {
    for (std::int64_t bs : {2, 16, 64, 128}) {
      dist::VolumeParams p{.w = 8, .layers = n, .hidden = hd, .vocab = 30000,
                           .batch = bs, .seq = 1024};
      std::printf("%6lld %6lld %6lld %14.1f %14.1f %10.3f %12.3f\n",
                  static_cast<long long>(n), static_cast<long long>(hd),
                  static_cast<long long>(bs),
                  dist::mp_volume(p) * 4.0 / 1e9,
                  dist::dp_volume(p) * 4.0 / 1e9, dist::mp_over_dp(p),
                  dist::mp_over_dp_simplified(p));
    }
  }
  std::printf(
      "\nratio > 1 means converting MP to DP reduces cross-server traffic;\n"
      "the crossover batch size is bs* = 3 hd/256 + 30/n.\n"
      "Note: the paper's prose claims ~2x reduction at n=50, hd=4K, bs=16,\n"
      "but its own closed form gives 0.33 there (see EXPERIMENTS.md).\n");
  return 0;
}

// Serving throughput/latency bench: continuous batching through the
// STRONGHOLD working window vs. offered load and KV-arena budget.
//
// Prints a fixed-width table and writes machine-readable BENCH_serve.json
// (tokens/sec, p50/p99 request latency, preemption counts) to seed the
// serving perf trajectory across PRs.
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "serve/scheduler.hpp"

namespace {

struct Row {
  std::size_t offered = 0;
  std::size_t kv_budget = 0;
  std::size_t max_batch = 0;
  double tokens_per_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::size_t steps = 0;
  std::size_t preemptions = 0;
  std::size_t kv_peak_bytes = 0;   // KvArena peak (sh::mem convention)
  std::size_t gpu_peak_bytes = 0;  // engine device-arena peak, all regions
};

Row run_load(sh::core::StrongholdEngine& engine, std::size_t offered,
             std::size_t kv_budget, std::size_t max_batch) {
  sh::serve::SchedulerConfig scfg;
  scfg.max_batch = max_batch;
  scfg.arena.chunk_tokens = 8;
  scfg.arena.budget_bytes = kv_budget;
  sh::serve::Scheduler sched(engine, scfg);

  for (std::size_t i = 0; i < offered; ++i) {
    sh::serve::Request r;
    r.prompt = {static_cast<std::int32_t>(1 + (7 * i) % 31),
                static_cast<std::int32_t>(2 + (5 * i) % 29)};
    r.max_new_tokens = 24;
    r.sampling.temperature = 0.8f;
    r.sampling.top_k = 16;
    r.sampling.seed = 1000 + i;
    sched.submit(r);
  }
  sched.run_to_completion();

  const auto& es = sched.serve_engine().stats();
  Row row;
  row.offered = offered;
  row.kv_budget = kv_budget;
  row.max_batch = max_batch;
  row.tokens_per_s = es.tokens_per_s();
  row.p50_ms = sched.serve_engine().latency_percentile(0.5) * 1e3;
  row.p99_ms = sched.serve_engine().latency_percentile(0.99) * 1e3;
  row.steps = es.steps;
  row.preemptions = sched.arena_stats().preemptions;
  row.kv_peak_bytes = sched.arena_stats().peak_bytes;
  // Cumulative across rows: the engine (and its arena) is shared.
  row.gpu_peak_bytes = engine.device_arena().peak_bytes();
  return row;
}

}  // namespace

int main() {
  sh::bench::header("sh::serve — continuous batching on the working window");

  sh::nn::GptConfig mcfg;
  mcfg.vocab = 64;
  mcfg.max_seq = 32;
  mcfg.hidden = 64;
  mcfg.heads = 4;
  mcfg.layers = 6;
  sh::nn::GptModel model(mcfg);
  sh::core::EngineConfig ecfg;
  ecfg.window = 2;
  sh::core::StrongholdEngine engine(model, ecfg);
  engine.init_params(42);

  // KV bytes/token = 2 * layers * hidden * 4 = 3072; a 32-token sequence
  // needs 98304 B. The tight budget forces preemption under load.
  const std::size_t tight = 400 * 1024;
  const std::size_t roomy = std::size_t{16} << 20;
  std::vector<Row> rows;
  sh::bench::row("%8s %10s %6s %12s %10s %10s %7s %7s", "offered", "kv_budget",
                 "batch", "tokens/s", "p50_ms", "p99_ms", "steps", "preempt");
  for (const std::size_t offered : {1u, 4u, 8u, 16u, 32u}) {
    for (const std::size_t budget : {tight, roomy}) {
      const Row r = run_load(engine, offered, budget, /*max_batch=*/16);
      rows.push_back(r);
      sh::bench::row("%8zu %10zu %6zu %12.1f %10.2f %10.2f %7zu %7zu",
                     r.offered, r.kv_budget, r.max_batch, r.tokens_per_s,
                     r.p50_ms, r.p99_ms, r.steps, r.preemptions);
    }
  }

  // Long-context section: the fused decode path scores each new token
  // against the whole KV cache tile-by-tile with no materialised score
  // matrix, so serving cost stays O(context * hidden) in memory no matter
  // how long the context grows. Drive the same architecture with a 16x
  // longer max context and near-full sequences to pin that trajectory.
  sh::nn::GptConfig lcfg = mcfg;
  lcfg.max_seq = 512;
  sh::nn::GptModel long_model(lcfg);
  sh::core::StrongholdEngine long_engine(long_model, ecfg);
  long_engine.init_params(42);

  std::vector<Row> long_rows;
  std::printf("\nlong context (max_seq %lld, ~%lld generated tokens/request)\n",
              static_cast<long long>(lcfg.max_seq),
              static_cast<long long>(lcfg.max_seq - 16));
  sh::bench::row("%8s %10s %6s %12s %10s %10s %7s %7s", "offered", "kv_budget",
                 "batch", "tokens/s", "p50_ms", "p99_ms", "steps", "preempt");
  for (const std::size_t offered : {1u, 4u}) {
    sh::serve::SchedulerConfig scfg;
    scfg.max_batch = 4;
    scfg.arena.chunk_tokens = 32;
    scfg.arena.budget_bytes = std::size_t{16} << 20;
    sh::serve::Scheduler sched(long_engine, scfg);
    for (std::size_t i = 0; i < offered; ++i) {
      sh::serve::Request r;
      r.prompt = {static_cast<std::int32_t>(1 + (7 * i) % 31),
                  static_cast<std::int32_t>(2 + (5 * i) % 29)};
      r.max_new_tokens = static_cast<std::size_t>(lcfg.max_seq) - 16;
      r.sampling.temperature = 0.8f;
      r.sampling.top_k = 16;
      r.sampling.seed = 1000 + i;
      sched.submit(r);
    }
    sched.run_to_completion();
    const auto& es = sched.serve_engine().stats();
    Row r;
    r.offered = offered;
    r.kv_budget = scfg.arena.budget_bytes;
    r.max_batch = scfg.max_batch;
    r.tokens_per_s = es.tokens_per_s();
    r.p50_ms = sched.serve_engine().latency_percentile(0.5) * 1e3;
    r.p99_ms = sched.serve_engine().latency_percentile(0.99) * 1e3;
    r.steps = es.steps;
    r.preemptions = sched.arena_stats().preemptions;
    r.kv_peak_bytes = sched.arena_stats().peak_bytes;
    r.gpu_peak_bytes = long_engine.device_arena().peak_bytes();
    long_rows.push_back(r);
    sh::bench::row("%8zu %10zu %6zu %12.1f %10.2f %10.2f %7zu %7zu", r.offered,
                   r.kv_budget, r.max_batch, r.tokens_per_s, r.p50_ms,
                   r.p99_ms, r.steps, r.preemptions);
  }

  std::FILE* f = std::fopen("BENCH_serve.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"serve\",\n  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"offered\": %zu, \"kv_budget_bytes\": %zu, "
                   "\"max_batch\": %zu, \"tokens_per_s\": %.2f, "
                   "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"steps\": %zu, "
                   "\"preemptions\": %zu, \"kv_peak_bytes\": %zu, "
                   "\"gpu_peak_bytes\": %zu}%s\n",
                   r.offered, r.kv_budget, r.max_batch, r.tokens_per_s,
                   r.p50_ms, r.p99_ms, r.steps, r.preemptions,
                   r.kv_peak_bytes, r.gpu_peak_bytes,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"long_context\": {\n    \"max_seq\": %lld,\n"
                 "    \"rows\": [\n",
                 static_cast<long long>(lcfg.max_seq));
    for (std::size_t i = 0; i < long_rows.size(); ++i) {
      const Row& r = long_rows[i];
      std::fprintf(f,
                   "      {\"offered\": %zu, \"kv_budget_bytes\": %zu, "
                   "\"max_batch\": %zu, \"tokens_per_s\": %.2f, "
                   "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"steps\": %zu, "
                   "\"preemptions\": %zu, \"kv_peak_bytes\": %zu, "
                   "\"gpu_peak_bytes\": %zu}%s\n",
                   r.offered, r.kv_budget, r.max_batch, r.tokens_per_s,
                   r.p50_ms, r.p99_ms, r.steps, r.preemptions,
                   r.kv_peak_bytes, r.gpu_peak_bytes,
                   i + 1 < long_rows.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n  }\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_serve.json\n");
  }
  return 0;
}

// Serving throughput/latency bench: continuous batching through the
// STRONGHOLD working window vs. offered load and KV-arena budget, plus
// router-fleet goodput-vs-offered-load curves (replicas 1/2/4 on one host
// budget) and a chaos row serving through a fault-injected NVMe tier.
//
// Prints fixed-width tables and writes machine-readable BENCH_serve.json;
// scripts/check_serve.py gates the router section in CI. `--smoke` runs a
// reduced sweep with the same JSON shape for the sanitizer jobs.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "serve/router.hpp"
#include "serve/scheduler.hpp"
#include "serve/workload.hpp"

namespace {

struct Row {
  std::size_t offered = 0;
  std::size_t kv_budget = 0;
  std::size_t max_batch = 0;
  double tokens_per_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::size_t steps = 0;
  std::size_t preemptions = 0;
  std::size_t kv_peak_bytes = 0;   // KvArena peak (sh::mem convention)
  std::size_t gpu_peak_bytes = 0;  // engine device-arena peak, all regions
};

Row run_load(sh::core::StrongholdEngine& engine, std::size_t offered,
             std::size_t kv_budget, std::size_t max_batch) {
  sh::serve::SchedulerConfig scfg;
  scfg.max_batch = max_batch;
  scfg.arena.chunk_tokens = 8;
  scfg.arena.budget_bytes = kv_budget;
  sh::serve::Scheduler sched(engine, scfg);

  for (std::size_t i = 0; i < offered; ++i) {
    sh::serve::Request r;
    r.prompt = {static_cast<std::int32_t>(1 + (7 * i) % 31),
                static_cast<std::int32_t>(2 + (5 * i) % 29)};
    r.max_new_tokens = 24;
    r.sampling.temperature = 0.8f;
    r.sampling.top_k = 16;
    r.sampling.seed = 1000 + i;
    sched.submit(r);
  }
  sched.run_to_completion();

  const auto& es = sched.serve_engine().stats();
  Row row;
  row.offered = offered;
  row.kv_budget = kv_budget;
  row.max_batch = max_batch;
  row.tokens_per_s = es.tokens_per_s();
  row.p50_ms = sched.serve_engine().latency_percentile(0.5) * 1e3;
  row.p99_ms = sched.serve_engine().latency_percentile(0.99) * 1e3;
  row.steps = es.steps;
  row.preemptions = sched.arena_stats().preemptions;
  row.kv_peak_bytes = sched.arena_stats().peak_bytes;
  // Cumulative across rows: the engine (and its arena) is shared.
  row.gpu_peak_bytes = engine.device_arena().peak_bytes();
  return row;
}

struct RouterRow {
  std::size_t replicas = 0;
  double rate = 0.0;  // offered requests per virtual second
  std::size_t offered = 0;
  double goodput = 0.0;  // fraction finished within their tier deadline
  double p50_s = 0.0;    // virtual-time latency percentiles
  double p99_s = 0.0;
  std::size_t preemptions = 0;
  double prefill_savings = 1.0;
};

/// Open-loop fleet traffic: Poisson arrivals, heavy-tail lengths, a shared
/// system prompt on half the requests, interactive/batch deadline tiers.
sh::serve::Workload make_traffic(double rate, std::size_t requests) {
  sh::serve::WorkloadSpec spec;
  spec.seed = 2026;
  spec.requests = requests;
  spec.arrival_rate = rate;
  spec.vocab = 64;
  spec.prompt_min = 2;
  spec.prompt_max = 6;
  spec.output_min = 4;
  spec.output_max = 16;
  spec.tiers = {{"interactive", 0.25}, {"batch", 6.0}};
  spec.tier_weights = {3.0, 1.0};
  spec.shared_prefix = {2, 3, 4, 5};
  spec.prefix_share = 0.5;
  spec.temperature = 0.8f;
  spec.top_k = 16;
  return sh::serve::generate_workload(spec);
}

sh::serve::RouterConfig fleet_config(std::size_t replicas) {
  sh::serve::RouterConfig rcfg;
  rcfg.replicas = replicas;
  rcfg.step_dt = 0.01;
  rcfg.scheduler.max_batch = 8;
  rcfg.scheduler.arena.chunk_tokens = 8;
  // Tight per-replica KV budget (~2.6 full sequences) so heavy offered
  // load exercises the SLO preemption policy.
  rcfg.scheduler.arena.budget_bytes = 256 * 1024;
  rcfg.scheduler.preempt_policy = sh::serve::PreemptPolicy::SloHeadroom;
  return rcfg;
}

RouterRow run_fleet(sh::core::StrongholdEngine& engine,
                    const sh::serve::Workload& wl, std::size_t replicas,
                    double rate) {
  sh::serve::Router router(engine, fleet_config(replicas));
  router.run(wl);
  RouterRow row;
  row.replicas = replicas;
  row.rate = rate;
  row.offered = wl.items.size();
  std::size_t met = 0;
  for (const auto& rep : router.tier_reports()) met += rep.met_deadline;
  row.goodput = static_cast<double>(met) / static_cast<double>(row.offered);
  row.p50_s = router.latency_percentile(0.5);
  row.p99_s = router.latency_percentile(0.99);
  row.preemptions = router.stats().preemptions;
  row.prefill_savings = router.prefill_savings();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;
  }
  sh::bench::header("sh::serve — continuous batching on the working window");

  sh::nn::GptConfig mcfg;
  mcfg.vocab = 64;
  mcfg.max_seq = 32;
  mcfg.hidden = 64;
  mcfg.heads = 4;
  mcfg.layers = 6;
  sh::nn::GptModel model(mcfg);
  sh::core::EngineConfig ecfg;
  ecfg.window = 2;
  sh::core::StrongholdEngine engine(model, ecfg);
  engine.init_params(42);

  // KV bytes/token = 2 * layers * hidden * 4 = 3072; a 32-token sequence
  // needs 98304 B. The tight budget forces preemption under load.
  const std::size_t tight = 400 * 1024;
  const std::size_t roomy = std::size_t{16} << 20;
  std::vector<Row> rows;
  sh::bench::row("%8s %10s %6s %12s %10s %10s %7s %7s", "offered", "kv_budget",
                 "batch", "tokens/s", "p50_ms", "p99_ms", "steps", "preempt");
  const std::vector<std::size_t> offered_sweep =
      smoke ? std::vector<std::size_t>{1, 8}
            : std::vector<std::size_t>{1, 4, 8, 16, 32};
  for (const std::size_t offered : offered_sweep) {
    for (const std::size_t budget : {tight, roomy}) {
      const Row r = run_load(engine, offered, budget, /*max_batch=*/16);
      rows.push_back(r);
      sh::bench::row("%8zu %10zu %6zu %12.1f %10.2f %10.2f %7zu %7zu",
                     r.offered, r.kv_budget, r.max_batch, r.tokens_per_s,
                     r.p50_ms, r.p99_ms, r.steps, r.preemptions);
    }
  }

  // Long-context section: the fused decode path scores each new token
  // against the whole KV cache tile-by-tile with no materialised score
  // matrix, so serving cost stays O(context * hidden) in memory no matter
  // how long the context grows. Drive the same architecture with a 16x
  // longer max context and near-full sequences to pin that trajectory.
  sh::nn::GptConfig lcfg = mcfg;
  lcfg.max_seq = 512;
  std::vector<Row> long_rows;
  if (!smoke) {
  sh::nn::GptModel long_model(lcfg);
  sh::core::StrongholdEngine long_engine(long_model, ecfg);
  long_engine.init_params(42);

  std::printf("\nlong context (max_seq %lld, ~%lld generated tokens/request)\n",
              static_cast<long long>(lcfg.max_seq),
              static_cast<long long>(lcfg.max_seq - 16));
  sh::bench::row("%8s %10s %6s %12s %10s %10s %7s %7s", "offered", "kv_budget",
                 "batch", "tokens/s", "p50_ms", "p99_ms", "steps", "preempt");
  for (const std::size_t offered : {1u, 4u}) {
    sh::serve::SchedulerConfig scfg;
    scfg.max_batch = 4;
    scfg.arena.chunk_tokens = 32;
    scfg.arena.budget_bytes = std::size_t{16} << 20;
    sh::serve::Scheduler sched(long_engine, scfg);
    for (std::size_t i = 0; i < offered; ++i) {
      sh::serve::Request r;
      r.prompt = {static_cast<std::int32_t>(1 + (7 * i) % 31),
                  static_cast<std::int32_t>(2 + (5 * i) % 29)};
      r.max_new_tokens = static_cast<std::size_t>(lcfg.max_seq) - 16;
      r.sampling.temperature = 0.8f;
      r.sampling.top_k = 16;
      r.sampling.seed = 1000 + i;
      sched.submit(r);
    }
    sched.run_to_completion();
    const auto& es = sched.serve_engine().stats();
    Row r;
    r.offered = offered;
    r.kv_budget = scfg.arena.budget_bytes;
    r.max_batch = scfg.max_batch;
    r.tokens_per_s = es.tokens_per_s();
    r.p50_ms = sched.serve_engine().latency_percentile(0.5) * 1e3;
    r.p99_ms = sched.serve_engine().latency_percentile(0.99) * 1e3;
    r.steps = es.steps;
    r.preemptions = sched.arena_stats().preemptions;
    r.kv_peak_bytes = sched.arena_stats().peak_bytes;
    r.gpu_peak_bytes = long_engine.device_arena().peak_bytes();
    long_rows.push_back(r);
    sh::bench::row("%8zu %10zu %6zu %12.1f %10.2f %10.2f %7zu %7zu", r.offered,
                   r.kv_budget, r.max_batch, r.tokens_per_s, r.p50_ms,
                   r.p99_ms, r.steps, r.preemptions);
  }
  }  // !smoke

  // Router fleet: goodput-vs-offered-load curves at replica counts 1/2/4.
  // Latency/goodput are measured on the router's VIRTUAL clock, so these
  // numbers are a pure function of the workload — stable enough for CI to
  // gate (scripts/check_serve.py).
  const std::size_t fleet_requests = smoke ? 10 : 64;
  const std::vector<double> rate_sweep =
      smoke ? std::vector<double>{10.0, 50.0}
            : std::vector<double>{5.0, 20.0, 100.0};
  const std::vector<std::size_t> replica_sweep =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4};
  std::printf("\nrouter fleet (open loop, virtual clock, SLO policy)\n");
  sh::bench::row("%8s %8s %8s %9s %10s %10s %8s %8s", "replicas", "rate",
                 "offered", "goodput", "p50_vs", "p99_vs", "preempt",
                 "savings");
  std::vector<RouterRow> fleet_rows;
  {
    sh::core::StrongholdEngine fleet_engine(model, ecfg);
    fleet_engine.init_params(42);
    for (const std::size_t replicas : replica_sweep) {
      for (const double rate : rate_sweep) {
        const auto wl = make_traffic(rate, fleet_requests);
        const RouterRow r = run_fleet(fleet_engine, wl, replicas, rate);
        fleet_rows.push_back(r);
        sh::bench::row("%8zu %8.1f %8zu %9.3f %10.4f %10.4f %8zu %8.2f",
                       r.replicas, r.rate, r.offered, r.goodput, r.p50_s,
                       r.p99_s, r.preemptions, r.prefill_savings);
      }
    }
  }

  // Chaos row: the same fleet served through a swap-backed engine whose
  // NVMe tier injects bounded transient faults. Virtual-clock outcomes are
  // bit-identical to the healthy run by construction; what degrades is
  // WALL latency, and it must stay bounded (retry budget caps each op).
  const double chaos_rate = 20.0;
  const auto chaos_wl = make_traffic(chaos_rate, smoke ? 6 : 16);
  sh::core::EngineConfig swap_cfg = ecfg;
  swap_cfg.window = 1;
  swap_cfg.cpu_capacity_bytes = 256 * 1024;  // most layers on "NVMe"
  double healthy_wall_p99 = 0.0;
  double faulted_wall_p99 = 0.0;
  double chaos_goodput = 0.0;
  std::size_t chaos_faults = 0;
  bool chaos_tokens_identical = true;
  {
    std::map<std::uint64_t, std::vector<std::int32_t>> healthy_tokens;
    {
      sh::core::EngineConfig hcfg = swap_cfg;
      hcfg.swap_path = "bench_serve_swap_healthy.bin";
      sh::core::StrongholdEngine engine(model, hcfg);
      engine.init_params(42);
      sh::serve::Router router(engine, fleet_config(2));
      router.run(chaos_wl);
      for (const auto& it : chaos_wl.items) {
        healthy_tokens[it.id] = router.result(it.id);
      }
      for (std::size_t i = 0; i < router.replica_count(); ++i) {
        healthy_wall_p99 = std::max(
            healthy_wall_p99,
            router.replica(i).serve_engine().latency_percentile(0.99));
      }
    }
    {
      sh::core::EngineConfig fcfg = swap_cfg;
      fcfg.swap_path = "bench_serve_swap_faulted.bin";
      fcfg.swap_faults.rate = 0.5;
      fcfg.swap_faults.seed = 7;
      fcfg.swap_faults.latency_spike_s = 1e-5;
      fcfg.swap_faults.max_faults_per_op = 2;  // bounded: retries recover
      fcfg.swap_faults.max_attempts = 4;
      fcfg.swap_faults.backoff_initial_s = 1e-6;
      sh::core::StrongholdEngine engine(model, fcfg);
      engine.init_params(42);
      sh::serve::Router router(engine, fleet_config(2));
      router.run(chaos_wl);
      std::size_t met = 0, offered = 0;
      for (const auto& rep : router.tier_reports()) {
        met += rep.met_deadline;
        offered += rep.offered;
      }
      chaos_goodput = static_cast<double>(met) / static_cast<double>(offered);
      for (const auto& it : chaos_wl.items) {
        chaos_tokens_identical =
            chaos_tokens_identical &&
            router.result(it.id) == healthy_tokens.at(it.id);
      }
      for (std::size_t i = 0; i < router.replica_count(); ++i) {
        faulted_wall_p99 = std::max(
            faulted_wall_p99,
            router.replica(i).serve_engine().latency_percentile(0.99));
      }
      chaos_faults = engine.stats().swap_faults_injected;
    }
    std::remove("bench_serve_swap_healthy.bin");
    std::remove("bench_serve_swap_faulted.bin");
  }
  const double wall_ratio =
      healthy_wall_p99 > 0.0 ? faulted_wall_p99 / healthy_wall_p99 : 0.0;
  std::printf("\nchaos (swap-backed, SH_FAULT-style transient faults)\n");
  sh::bench::row("%10s %12s %14s %14s %10s %9s", "faults", "identical",
                 "healthy_p99ms", "faulted_p99ms", "ratio", "goodput");
  sh::bench::row("%10zu %12s %14.3f %14.3f %10.2f %9.3f", chaos_faults,
                 chaos_tokens_identical ? "yes" : "NO", healthy_wall_p99 * 1e3,
                 faulted_wall_p99 * 1e3, wall_ratio, chaos_goodput);

  std::FILE* f = std::fopen("BENCH_serve.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"serve\",\n  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"offered\": %zu, \"kv_budget_bytes\": %zu, "
                   "\"max_batch\": %zu, \"tokens_per_s\": %.2f, "
                   "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"steps\": %zu, "
                   "\"preemptions\": %zu, \"kv_peak_bytes\": %zu, "
                   "\"gpu_peak_bytes\": %zu}%s\n",
                   r.offered, r.kv_budget, r.max_batch, r.tokens_per_s,
                   r.p50_ms, r.p99_ms, r.steps, r.preemptions,
                   r.kv_peak_bytes, r.gpu_peak_bytes,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"long_context\": {\n    \"max_seq\": %lld,\n"
                 "    \"rows\": [\n",
                 static_cast<long long>(lcfg.max_seq));
    for (std::size_t i = 0; i < long_rows.size(); ++i) {
      const Row& r = long_rows[i];
      std::fprintf(f,
                   "      {\"offered\": %zu, \"kv_budget_bytes\": %zu, "
                   "\"max_batch\": %zu, \"tokens_per_s\": %.2f, "
                   "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"steps\": %zu, "
                   "\"preemptions\": %zu, \"kv_peak_bytes\": %zu, "
                   "\"gpu_peak_bytes\": %zu}%s\n",
                   r.offered, r.kv_budget, r.max_batch, r.tokens_per_s,
                   r.p50_ms, r.p99_ms, r.steps, r.preemptions,
                   r.kv_peak_bytes, r.gpu_peak_bytes,
                   i + 1 < long_rows.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n  },\n");
    std::fprintf(f, "  \"router\": {\n    \"smoke\": %s,\n"
                 "    \"step_dt_s\": 0.01,\n    \"curves\": [\n",
                 smoke ? "true" : "false");
    for (std::size_t i = 0; i < fleet_rows.size(); ++i) {
      const RouterRow& r = fleet_rows[i];
      std::fprintf(f,
                   "      {\"replicas\": %zu, \"rate\": %.2f, "
                   "\"offered\": %zu, \"goodput\": %.4f, "
                   "\"p50_s\": %.6f, \"p99_s\": %.6f, "
                   "\"preemptions\": %zu, \"prefill_savings\": %.3f}%s\n",
                   r.replicas, r.rate, r.offered, r.goodput, r.p50_s,
                   r.p99_s, r.preemptions, r.prefill_savings,
                   i + 1 < fleet_rows.size() ? "," : "");
    }
    std::fprintf(f,
                 "    ],\n    \"chaos\": {\"faults_injected\": %zu, "
                 "\"tokens_identical\": %s, \"healthy_wall_p99_s\": %.6f, "
                 "\"faulted_wall_p99_s\": %.6f, \"wall_p99_ratio\": %.3f, "
                 "\"goodput\": %.4f}\n  }\n}\n",
                 chaos_faults, chaos_tokens_identical ? "true" : "false",
                 healthy_wall_p99, faulted_wall_p99, wall_ratio,
                 chaos_goodput);
    std::fclose(f);
    std::printf("\nwrote BENCH_serve.json\n");
  }
  return 0;
}

// Micro-benchmarks (google-benchmark) of the performance-critical runtime
// components: tensor kernels, buffer-pool recycling, transfer engine,
// in-process collectives and the analytical window solver.
#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "core/window_model.hpp"
#include "dist/process_group.hpp"
#include "hw/transfer.hpp"
#include "mem/device_arena.hpp"
#include "mem/pool_policies.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace {

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  sh::tensor::Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(n * n));
  std::vector<float> b(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n));
  rng.fill_uniform(a, 1.0f);
  rng.fill_uniform(b, 1.0f);
  for (auto _ : state) {
    sh::tensor::matmul(a.data(), b.data(), c.data(), n, n, n, false, false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_LayerNorm(benchmark::State& state) {
  const std::int64_t rows = 64, cols = state.range(0);
  sh::tensor::Rng rng(2);
  std::vector<float> x(static_cast<std::size_t>(rows * cols));
  std::vector<float> y(x.size());
  std::vector<float> gamma(static_cast<std::size_t>(cols), 1.0f);
  std::vector<float> beta(static_cast<std::size_t>(cols), 0.0f);
  std::vector<sh::tensor::LayerNormStats> stats(rows);
  rng.fill_uniform(x, 1.0f);
  for (auto _ : state) {
    sh::tensor::layernorm_forward(x.data(), gamma.data(), beta.data(),
                                  y.data(), stats.data(), rows, cols);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
}
BENCHMARK(BM_LayerNorm)->Arg(256)->Arg(1024);

void BM_Softmax(benchmark::State& state) {
  const std::int64_t rows = 128, cols = state.range(0);
  sh::tensor::Rng rng(3);
  std::vector<float> x(static_cast<std::size_t>(rows * cols));
  std::vector<float> y(x.size());
  rng.fill_uniform(x, 3.0f);
  for (auto _ : state) {
    sh::tensor::softmax_rows(x.data(), y.data(), rows, cols);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Softmax)->Arg(128)->Arg(512);

void BM_BufferPoolRecycle(benchmark::State& state) {
  sh::mem::DeviceArena gpu("gpu", 1 << 24);
  sh::mem::BufferPool pool(gpu, 4096,
                           static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::byte* s = pool.acquire();
    benchmark::DoNotOptimize(s);
    pool.release(s);
  }
  state.counters["peak_bytes"] = static_cast<double>(gpu.peak_bytes());
}
BENCHMARK(BM_BufferPoolRecycle)->Arg(2)->Arg(8);

// Reservation charge/uncharge round-trip on the accounted device arena —
// the hot path serve::KvArena takes per chunk reservation. The peak_bytes
// counter lands in the benchmark JSON (one peak convention across sh::mem).
void BM_DeviceArenaChargeCycle(benchmark::State& state) {
  sh::mem::DeviceArena arena("gpu", std::size_t{1} << 24);
  const auto bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    bool ok = arena.try_charge(sh::mem::DeviceArena::kKv, bytes);
    benchmark::DoNotOptimize(ok);
    arena.uncharge(sh::mem::DeviceArena::kKv, bytes);
  }
  state.counters["peak_bytes"] = static_cast<double>(arena.peak_bytes());
}
BENCHMARK(BM_DeviceArenaChargeCycle)->Arg(1 << 10)->Arg(1 << 20);

void BM_TransferEngineCopy(benchmark::State& state) {
  sh::hw::TransferEngine eng("h2d");
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<float> src(n, 1.0f), dst(n, 0.0f);
  for (auto _ : state) {
    eng.copy_async(src.data(), dst.data(), n).get();
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(n * sizeof(float)));
}
BENCHMARK(BM_TransferEngineCopy)->Arg(1 << 12)->Arg(1 << 18);

void BM_AllReduce(benchmark::State& state) {
  const int world = 4;
  const auto n = static_cast<std::size_t>(state.range(0));
  sh::dist::ProcessGroup pg(world);
  std::vector<std::vector<float>> bufs(world, std::vector<float>(n, 1.0f));
  for (auto _ : state) {
    std::vector<std::thread> threads;
    for (int r = 0; r < world; ++r) {
      threads.emplace_back([&, r] {
        pg.all_reduce_sum(r, bufs[static_cast<std::size_t>(r)]);
      });
    }
    for (auto& t : threads) t.join();
  }
  state.SetItemsProcessed(state.iterations() * world *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AllReduce)->Arg(1 << 10)->Arg(1 << 16);

void BM_WindowSolver(benchmark::State& state) {
  sh::core::WindowModelInput in;
  in.layers.assign(static_cast<std::size_t>(state.range(0)),
                   sh::core::LayerProfile{.t_fp = 1.0, .t_bp = 2.0,
                                          .t_c2g = 2.5, .t_g2c = 1.5,
                                          .s_fp = 1.0, .s_bp = 1.0,
                                          .t_opt_gpu = 0.1, .t_opt_cpu = 0.5});
  in.s_avail = 64.0;
  in.t_async = 1e-5;
  for (auto _ : state) {
    auto d = sh::core::solve_window(in);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_WindowSolver)->Arg(50)->Arg(500);

}  // namespace

BENCHMARK_MAIN();

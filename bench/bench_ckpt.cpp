// sh::ckpt benchmark: checkpoint save/restore bandwidth, steps-to-resume,
// and the data-parallel scaling matrix.
//
// Part 1: save_now / restore_latest throughput (GB/s) over the snapshot of a
// mid-sized model, plus the wall-clock cost of a full kill->resume cycle
// (restore + replay to the horizon) in steps and seconds.
// Part 2: DataParallelTrainer steps/s at world sizes 1/2/4/8 on the numeric
// runtime — the scaling table recorded in EXPERIMENTS.md.
// Writes both series to BENCH_ckpt.json.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "ckpt/checkpointer.hpp"
#include "core/engine.hpp"
#include "data/synthetic.hpp"
#include "dist/dp_trainer.hpp"
#include "nn/gpt.hpp"
#include "obs/export.hpp"

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string fresh_dir(const std::string& name) {
  std::filesystem::remove_all(name);
  std::filesystem::create_directories(name);
  return name;
}

}  // namespace

int main() {
  using namespace sh;
  bench::header("sh::ckpt: checkpoint bandwidth and resume cost");

  // A model large enough that the per-generation payload is tens of MB, so
  // the measured rates reflect streaming I/O rather than fixed overheads.
  nn::GptConfig mc;
  mc.vocab = 512;
  mc.max_seq = 32;
  mc.hidden = 256;
  mc.heads = 8;
  mc.layers = 12;

  obs::MetricsSnapshot metrics;

  {
    nn::GptModel model(mc);
    core::EngineConfig cfg;
    cfg.window = 2;
    cfg.ckpt.dir = fresh_dir("bench_ckpt_dir");
    cfg.ckpt.keep = 2;
    core::StrongholdEngine engine(model, cfg);
    engine.init_params(17);
    data::SyntheticCorpus corpus(mc.vocab, 9);
    const int warm_steps = 4;
    for (int i = 0; i < warm_steps; ++i) {
      engine.train_step(corpus.next_batch(2, mc.max_seq));
    }

    // --- save bandwidth (synchronous, so the commit is inside the timing) --
    ckpt::Snapshot snap = engine.capture_snapshot();
    const double payload_gb =
        static_cast<double>(snap.payload_bytes()) / 1e9;
    const double t0 = now_s();
    engine.checkpointer()->save_now(std::move(snap));
    const double save_s = now_s() - t0;

    // --- restore bandwidth ------------------------------------------------
    const double t1 = now_s();
    ckpt::Snapshot restored = engine.checkpointer()->restore_latest();
    const double read_s = now_s() - t1;
    const double t2 = now_s();
    engine.restore_snapshot(restored);
    const double install_s = now_s() - t2;

    std::printf("snapshot payload: %.1f MB (%zu tensors)\n",
                payload_gb * 1000.0, restored.tensors.size());
    std::printf("save_now (write+fsync+rename): %7.1f ms  %6.2f GB/s\n",
                save_s * 1e3, payload_gb / save_s);
    std::printf("restore_latest (read+verify):  %7.1f ms  %6.2f GB/s\n",
                read_s * 1e3, payload_gb / read_s);
    std::printf("restore_snapshot (install):    %7.1f ms  %6.2f GB/s\n",
                install_s * 1e3, payload_gb / install_s);

    metrics.add("ckpt.payload_bytes",
                static_cast<double>(restored.payload_bytes()), "bytes");
    metrics.add("ckpt.payload_gb", payload_gb, "GB");
    metrics.add("ckpt.save_gb_per_s", payload_gb / save_s, "GB/s");
    metrics.add("ckpt.restore_gb_per_s", payload_gb / read_s, "GB/s");
    metrics.add("ckpt.install_gb_per_s", payload_gb / install_s, "GB/s");
    metrics.add("ckpt.save_seconds", save_s, "s");

    // --- steps-to-resume: full cycle from a cold engine -------------------
    const std::size_t horizon = engine.stats().iterations + 4;
    const double t3 = now_s();
    nn::GptModel fresh_model(mc);
    core::EngineConfig fresh_cfg = cfg;
    core::StrongholdEngine fresh(fresh_model, fresh_cfg);
    fresh.init_params(17);
    fresh.resume_from_latest();
    const std::size_t resumed_at = fresh.stats().iterations;
    data::SyntheticCorpus replay(mc.vocab, 9);
    for (std::size_t i = 0; i < horizon - resumed_at; ++i) {
      fresh.train_step(replay.next_batch(2, mc.max_seq));
    }
    const double resume_s = now_s() - t3;
    const double steps_replayed = static_cast<double>(horizon - resumed_at);
    std::printf("kill->resume cycle: restored at step %zu, replayed %.0f "
                "steps to the horizon in %.2f s\n",
                resumed_at, steps_replayed, resume_s);
    metrics.add("ckpt.resume_replayed_steps", steps_replayed, "steps");
    metrics.add("ckpt.resume_wall_seconds", resume_s, "s");
  }
  std::filesystem::remove_all("bench_ckpt_dir");

  // --- Part 2: data-parallel scaling matrix -------------------------------
  bench::header("DataParallelTrainer scaling (numeric runtime)");
  nn::GptConfig dp_cfg;
  dp_cfg.vocab = 64;
  dp_cfg.max_seq = 16;
  dp_cfg.hidden = 64;
  dp_cfg.heads = 4;
  dp_cfg.layers = 6;

  std::printf("%6s %10s %10s %14s\n", "world", "steps/s", "speedup",
              "floats comm'd");
  double base_rate = 0.0;
  for (int world : {1, 2, 4, 8}) {
    core::EngineConfig ecfg;
    ecfg.window = 2;
    dist::DataParallelTrainer trainer(dp_cfg, ecfg, world);
    trainer.init_params(42);
    data::SyntheticCorpus corpus(dp_cfg.vocab, 7);
    const int steps = 12;
    // One untimed step to populate windows and warm the collectives.
    trainer.train_step(corpus.next_batch(8, dp_cfg.max_seq));
    const double t0 = now_s();
    for (int i = 0; i < steps; ++i) {
      trainer.train_step(corpus.next_batch(8, dp_cfg.max_seq));
    }
    const double rate = steps / (now_s() - t0);
    if (world == 1) base_rate = rate;
    std::printf("%6d %10.2f %9.2fx %14zu\n", world, rate, rate / base_rate,
                trainer.floats_communicated());
    const std::string p = "ckpt.dp_world_" + std::to_string(world);
    metrics.add(p + ".steps_per_s", rate, "steps/s");
    metrics.add(p + ".floats_communicated",
                static_cast<double>(trainer.floats_communicated()));
  }
  std::printf("\nNote: ranks are threads sharing one host; the matrix checks "
              "lockstep overhead, not cluster scaling.\n");

  {
    std::ofstream os("BENCH_ckpt.json");
    obs::write_metrics_json(os, metrics);
  }
  std::printf("wrote BENCH_ckpt.json\n");
  return 0;
}

// Figure 14: contribution of each STRONGHOLD optimization, toggled
// individually on top of an unoptimized offloading scheme, training the 4B
// model with NVMe enabled.
#include <cstdarg>
#include <cstdio>

#include "baselines/stronghold_strategy.hpp"
#include "bench_util.hpp"

int main() {
  using namespace sh;
  using namespace sh::baselines;
  const auto machine = sim::v100_server();
  const auto w = bench::make_workload(50, 2560, 4.0);  // the 4B model

  const StrongholdOptions none{.concurrent_update = false,
                               .user_level_memory = false,
                               .multi_stream = false,
                               .use_nvme = true};
  const double base =
      StrongholdStrategy(none).iteration(w, machine, nullptr).throughput;

  auto run = [&](const char* label, auto mutate, const char* paper) {
    StrongholdOptions o = none;
    mutate(o);
    const double thr =
        StrongholdStrategy(o).iteration(w, machine, nullptr).throughput;
    std::printf("%-34s %12.4f %10.2fx %10s\n", label, thr, thr / base, paper);
  };

  bench::header("Figure 14: optimization breakdown (4B model, NVMe enabled)");
  std::printf("%-34s %12s %10s %10s\n", "configuration", "samples/s",
              "speedup", "paper");
  std::printf("%-34s %12.4f %10s %10s\n", "baseline (no optimizations)", base,
              "1.00x", "1.0x");
  run("+ concurrent parameter update",
      [](StrongholdOptions& o) { o.concurrent_update = true; }, "1.5x");
  run("+ user-level memory management",
      [](StrongholdOptions& o) { o.user_level_memory = true; }, "2.2x");
  run("+ multi-streamed execution",
      [](StrongholdOptions& o) { o.multi_stream = true; }, "2.0x");
  run("all optimizations",
      [](StrongholdOptions& o) {
        o.concurrent_update = o.user_level_memory = o.multi_stream = true;
      },
      "-");
  return 0;
}

// Figure 10: using NVMe to scale the trainable model size on the V100
// server. STRONGHOLD overlaps disk I/O with compute and outperforms
// ZeRO-Infinity(NVMe) by a large factor.
#include <cstdarg>
#include <cstdio>
#include <vector>

#include "baselines/stronghold_strategy.hpp"
#include "baselines/zero_infinity.hpp"
#include "bench_util.hpp"

int main() {
  using namespace sh;
  using namespace sh::baselines;
  const auto machine = sim::v100_server();
  StrongholdStrategy sh_nvme({.use_nvme = true});
  ZeroInfinityStrategy zinf_nvme(ZeroInfinityStrategy::Tier::Nvme);

  bench::header("Figure 10: NVMe-backed training on the V100 server");
  const double sh_max =
      largest_trainable_billions(sh_nvme, machine, 5120, 1, 4.0, 16384);
  const double zi_max =
      largest_trainable_billions(zinf_nvme, machine, 5120, 1, 4.0, 16384);
  std::printf("largest trainable with NVMe: STRONGHOLD %.0fB, "
              "ZeRO-Infinity %.0fB (paper: both ~0.5T)\n\n",
              sh_max, zi_max);

  std::printf("%9s %16s %16s %10s\n", "size (B)", "SH samples/s",
              "ZeRO-Inf samples/s", "speedup");
  for (std::int64_t layers : {50, 120, 260, 500, 1000}) {
    const auto w = bench::make_workload(layers, 2560, 4.0);
    const double b = sim::params_billions(w.model);
    const double sh_thr = sh_nvme.iteration(w, machine, nullptr).throughput;
    const double zi_thr = zinf_nvme.iteration(w, machine, nullptr).throughput;
    std::printf("%9.1f %16.4f %16.5f %9.1fx\n", b, sh_thr, zi_thr,
                sh_thr / zi_thr);
  }
  std::printf("\nPaper: STRONGHOLD improves throughput over "
              "ZeRO-Infinity(NVMe) by more than 8x.\n");
  return 0;
}

// Figure 10: using NVMe to scale the trainable model size on the V100
// server. STRONGHOLD overlaps disk I/O with compute and outperforms
// ZeRO-Infinity(NVMe) by a large factor.
//
// Part 1 (virtual time): the paper's capacity/throughput comparison on the
// simulated V100 server.
// Part 2 (wall clock): the numeric runtime training a small model against a
// fault-injected swap tier, sweeping the injection rate. Throughput degrades
// gracefully (retries stall the window) while the loss stays bit-identical
// to the healthy run. Writes the curve to BENCH_fig10.json.
#include <cstdarg>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "baselines/stronghold_strategy.hpp"
#include "baselines/zero_infinity.hpp"
#include "bench_util.hpp"
#include "core/engine.hpp"
#include "data/synthetic.hpp"
#include "nn/gpt.hpp"
#include "obs/export.hpp"

namespace {

struct FaultRunResult {
  double samples_per_s = 0.0;
  std::vector<float> losses;
  std::size_t faults_injected = 0;
  std::size_t retries = 0;
  std::size_t io_errors = 0;
  double retry_backoff_s = 0.0;
  std::size_t moment_writes = 0;
  std::size_t moment_update_skips = 0;
};

FaultRunResult run_faulted(const sh::nn::GptConfig& mc, double fault_rate,
                           const std::string& swap_path,
                           bool opt_tier = false) {
  using namespace sh;
  nn::GptModel model(mc);
  core::EngineConfig cfg;
  cfg.window = 2;
  // Budget covers only the first layers; the rest live on the faulted tier.
  cfg.cpu_capacity_bytes = 256 * 1024;
  // Part 3: additionally page the Adam moments through the same faulted
  // tier (SH_OPT_TIER=nvme).
  if (opt_tier) cfg.optimizer_tier = core::OptimizerTier::nvme;
  cfg.swap_path = swap_path;
  cfg.swap_faults.rate = fault_rate;
  cfg.swap_faults.seed = 2026;
  cfg.swap_faults.latency_spike_s = 2e-4;
  cfg.swap_faults.max_faults_per_op = 2;  // bounded: retries always recover
  cfg.swap_faults.max_attempts = 4;
  cfg.swap_faults.backoff_initial_s = 5e-5;

  core::StrongholdEngine engine(model, cfg);
  engine.init_params(17);
  data::SyntheticCorpus corpus(mc.vocab, /*seed=*/9);
  const std::int64_t batch = 4;
  const int steps = 6;

  FaultRunResult r;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < steps; ++i) {
    r.losses.push_back(engine.train_step(corpus.next_batch(batch, mc.max_seq)));
  }
  std::vector<float> tmp;
  engine.snapshot_params(tmp);  // quiesce write-backs before timing stops
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.samples_per_s = static_cast<double>(batch) * steps / elapsed;

  const auto s = engine.stats();
  r.faults_injected = s.swap_faults_injected;
  r.retries = s.swap_retries;
  r.io_errors = s.swap_io_errors;
  r.retry_backoff_s = s.swap_retry_backoff_s;
  r.moment_writes = s.moment_writes;
  r.moment_update_skips = s.moment_update_skips;
  return r;
}

}  // namespace

int main() {
  using namespace sh;
  using namespace sh::baselines;
  const auto machine = sim::v100_server();
  StrongholdStrategy sh_nvme({.use_nvme = true});
  ZeroInfinityStrategy zinf_nvme(ZeroInfinityStrategy::Tier::Nvme);

  bench::header("Figure 10: NVMe-backed training on the V100 server");
  const double sh_max =
      largest_trainable_billions(sh_nvme, machine, 5120, 1, 4.0, 16384);
  const double zi_max =
      largest_trainable_billions(zinf_nvme, machine, 5120, 1, 4.0, 16384);
  std::printf("largest trainable with NVMe: STRONGHOLD %.0fB, "
              "ZeRO-Infinity %.0fB (paper: both ~0.5T)\n\n",
              sh_max, zi_max);

  std::printf("%9s %16s %16s %10s\n", "size (B)", "SH samples/s",
              "ZeRO-Inf samples/s", "speedup");
  for (std::int64_t layers : {50, 120, 260, 500, 1000}) {
    const auto w = bench::make_workload(layers, 2560, 4.0);
    const double b = sim::params_billions(w.model);
    const double sh_thr = sh_nvme.iteration(w, machine, nullptr).throughput;
    const double zi_thr = zinf_nvme.iteration(w, machine, nullptr).throughput;
    std::printf("%9.1f %16.4f %16.5f %9.1fx\n", b, sh_thr, zi_thr,
                sh_thr / zi_thr);
  }
  std::printf("\nPaper: STRONGHOLD improves throughput over "
              "ZeRO-Infinity(NVMe) by more than 8x.\n");

  // --- Part 2: throughput vs injected fault rate on the numeric runtime ---
  bench::header("Throughput under NVMe fault injection (numeric runtime)");
  nn::GptConfig mc;
  mc.vocab = 64;
  mc.max_seq = 16;
  mc.hidden = 64;
  mc.heads = 4;
  mc.layers = 6;

  const std::vector<double> rates = {0.0, 0.05, 0.1, 0.25, 0.5};
  obs::MetricsSnapshot metrics;
  std::vector<FaultRunResult> runs;
  std::printf("%10s %12s %8s %8s %10s %13s\n", "rate", "samples/s", "faults",
              "retries", "io errors", "bit-identical");
  for (std::size_t i = 0; i < rates.size(); ++i) {
    char path[64];
    std::snprintf(path, sizeof(path), "bench_fig10_swap_%zu.bin", i);
    runs.push_back(run_faulted(mc, rates[i], path));
    const FaultRunResult& r = runs.back();
    // Fault decisions are seeded and idempotent-on-retry: every swept rate
    // must reproduce the healthy run's loss sequence exactly.
    const bool identical = r.losses == runs.front().losses;
    std::printf("%10.2f %12.2f %8zu %8zu %10zu %13s\n", rates[i],
                r.samples_per_s, r.faults_injected, r.retries, r.io_errors,
                identical ? "yes" : "NO");

    char prefix[64];
    std::snprintf(prefix, sizeof(prefix), "fig10.fault_rate_%g", rates[i]);
    const std::string p(prefix);
    metrics.add(p + ".samples_per_s", r.samples_per_s, "samples/s");
    metrics.add(p + ".faults_injected", static_cast<double>(r.faults_injected));
    metrics.add(p + ".retries", static_cast<double>(r.retries));
    metrics.add(p + ".io_errors", static_cast<double>(r.io_errors));
    metrics.add(p + ".retry_backoff_s", r.retry_backoff_s, "s");
    metrics.add(p + ".loss_bit_identical", identical ? 1.0 : 0.0);
  }
  metrics.add("fig10.fault_rates_swept", static_cast<double>(rates.size()));
  metrics.add("fig10.sim.sh_max_billions", sh_max, "B params");
  metrics.add("fig10.sim.zero_infinity_max_billions", zi_max, "B params");

  // --- Part 3: the NVMe optimizer tier (SH_OPT_TIER=nvme), healthy vs
  // faulted. Moment paging rides the same faulted tier; throughput degrades
  // with the rate while the loss stays bit-identical and no update is
  // skipped (bounded faults always recover within the retry budget). ---
  bench::header("Optimizer tier (SH_OPT_TIER=nvme) under fault injection");
  const std::vector<double> tier_rates = {0.0, 0.25, 0.5};
  std::vector<FaultRunResult> tier_runs;
  std::printf("%10s %12s %8s %8s %8s %13s\n", "rate", "samples/s", "faults",
              "m-writes", "skips", "bit-identical");
  for (std::size_t i = 0; i < tier_rates.size(); ++i) {
    char path[64];
    std::snprintf(path, sizeof(path), "bench_fig10_opt_tier_%zu.bin", i);
    tier_runs.push_back(
        run_faulted(mc, tier_rates[i], path, /*opt_tier=*/true));
    const FaultRunResult& r = tier_runs.back();
    const bool identical = r.losses == tier_runs.front().losses;
    std::printf("%10.2f %12.2f %8zu %8zu %8zu %13s\n", tier_rates[i],
                r.samples_per_s, r.faults_injected, r.moment_writes,
                r.moment_update_skips, identical ? "yes" : "NO");

    char prefix[64];
    std::snprintf(prefix, sizeof(prefix), "fig10.opt_tier_rate_%g",
                  tier_rates[i]);
    const std::string p(prefix);
    metrics.add(p + ".samples_per_s", r.samples_per_s, "samples/s");
    metrics.add(p + ".faults_injected", static_cast<double>(r.faults_injected));
    metrics.add(p + ".moment_writes", static_cast<double>(r.moment_writes));
    metrics.add(p + ".moment_update_skips",
                static_cast<double>(r.moment_update_skips));
    metrics.add(p + ".io_errors", static_cast<double>(r.io_errors));
    metrics.add(p + ".loss_bit_identical", identical ? 1.0 : 0.0);
  }
  metrics.add("fig10.opt_tier.healthy_samples_per_s",
              tier_runs.front().samples_per_s, "samples/s");
  metrics.add("fig10.opt_tier.faulted_samples_per_s",
              tier_runs.back().samples_per_s, "samples/s");

  {
    std::ofstream os("BENCH_fig10.json");
    obs::write_metrics_json(os, metrics);
  }
  std::printf("\nGraceful degradation: the window stalls on tier retries "
              "instead of failing, and the numbers never change.\n");
  std::printf("wrote BENCH_fig10.json\n");
  return 0;
}

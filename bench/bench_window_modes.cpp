// Ablation: uniform slots vs the fixed-size byte-budget window buffer for
// heterogeneous layer stacks (DESIGN.md / Section III-D, final paragraph).
// Uniform slots must be sized for the largest layer; the byte budget packs
// actual layer sizes, fitting more of the model per byte of GPU memory.
#include <cstdarg>
#include <cstdio>

#include "bench_util.hpp"
#include "sim/cost_model.hpp"

namespace {

// A heterogeneous stack: every 4th layer is a 4-expert MoE block (about
// 3.1x the parameters of a dense block at the same hidden size).
struct Stack {
  std::int64_t dense_params;
  std::int64_t moe_params;
  std::int64_t layers;
  std::int64_t moe_every = 4;

  std::int64_t params_of(std::int64_t i) const {
    return (i % moe_every == moe_every - 1) ? moe_params : dense_params;
  }
  std::int64_t max_params() const { return std::max(dense_params, moe_params); }
};

// Resident bytes of a window of `m` layers starting at layer `s` under each
// policy (2 floats of window state per parameter: params + grads).
double uniform_bytes(const Stack& st, std::int64_t m) {
  return 2.0 * 4.0 * static_cast<double>((m + 1) * st.max_params());
}

double budget_bytes(const Stack& st, std::int64_t s, std::int64_t m) {
  std::int64_t total = 0;
  for (std::int64_t i = s; i < s + m + 1 && i < st.layers; ++i) {
    total += st.params_of(i);
  }
  return 2.0 * 4.0 * static_cast<double>(total);
}

}  // namespace

int main() {
  using namespace sh;
  const double hd = 2560;
  Stack st;
  st.dense_params = static_cast<std::int64_t>(12 * hd * hd);
  st.moe_params = static_cast<std::int64_t>(37 * hd * hd);  // 4-expert MoE
  st.layers = 48;

  bench::header("Window allocation for a heterogeneous (MoE) stack");
  std::printf("dense block: %.0fM params, MoE block: %.0fM params\n\n",
              st.dense_params / 1e6, st.moe_params / 1e6);
  std::printf("%8s %18s %22s %10s\n", "window", "uniform (GiB)",
              "byte budget worst (GiB)", "saving");
  for (std::int64_t m : {2, 4, 8, 12}) {
    double worst = 0.0;
    for (std::int64_t s = 0; s + m <= st.layers; ++s) {
      worst = std::max(worst, budget_bytes(st, s, m));
    }
    const double uni = uniform_bytes(st, m);
    std::printf("%8lld %18.2f %22.2f %9.1f%%\n", static_cast<long long>(m),
                bench::gib(uni), bench::gib(worst),
                100.0 * (1.0 - worst / uni));
  }
  std::printf(
      "\nThe byte-budget mode reserves one fixed buffer and lets the number\n"
      "of resident layers vary (Section III-D); on this stack it needs up to\n"
      "~40%% less GPU memory for the same window depth. The numeric engine's\n"
      "equivalence tests cover both modes (tests/test_byte_budget_pool.cpp).\n");
  return 0;
}

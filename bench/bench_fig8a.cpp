// Figure 8a: throughput of every strategy on the common 1.7B model (the
// largest Megatron-LM supports on a 32 GB V100), normalised to Megatron-LM.
#include <cstdarg>
#include <cstdio>

#include "baselines/strategy.hpp"
#include "bench_util.hpp"

int main() {
  using namespace sh;
  const auto machine = sim::v100_server();
  const auto lineup = baselines::single_gpu_lineup();
  const auto w = bench::common_1p7b();
  const char* paper[] = {"1.00", "0.22", "<0.57", "<0.57", ">1"};

  const double mega =
      lineup.front()->iteration(w, machine, nullptr).throughput;
  bench::header("Figure 8a: throughput on the common 1.7B model (V100)");
  std::printf("%-14s %12s %14s %12s\n", "scheme", "samples/s", "vs Megatron",
              "paper");
  int idx = 0;
  for (const auto& s : lineup) {
    const auto rep = s->iteration(w, machine, nullptr);
    std::printf("%-14s %12.4f %13.2fx %12s\n", s->name().c_str(),
                rep.throughput, rep.throughput / mega, paper[idx++]);
  }
  std::printf("\nPaper: STRONGHOLD is the only offloading solution that "
              "improves over Megatron-LM.\n");
  return 0;
}

// Figure 4: GPU computation / offloading trace of STRONGHOLD training.
//
// Part 1 (virtual time): the simulated schedule of a 4B model on a 32 GB
// V100, rendered as an ASCII Gantt chart — the paper's setting.
// Part 2 (wall clock): the numeric runtime actually training a small model
// with the obs recorder enabled; utilization/overlap are computed on the
// REAL execution timeline via obs::to_sim_trace.
//
// Writes fig4_trace.json (Chrome trace-event JSON with both the wall-clock
// and virtual-time tracks — open in https://ui.perfetto.dev) and
// BENCH_fig4.json (flat metrics, including the measured overlap fractions).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <vector>

#include "baselines/stronghold_strategy.hpp"
#include "bench_util.hpp"
#include "core/engine.hpp"
#include "data/synthetic.hpp"
#include "nn/gpt.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "sim/trace.hpp"

int main() {
  using namespace sh;

  // --- Part 1: simulated schedule (the paper's 4B-on-V100 setting) ---
  const auto machine = sim::v100_server();
  const auto w = bench::make_workload(50, 2560, 4.0);  // the 4B model

  baselines::StrongholdStrategy sh_strategy;
  sim::Trace sim_trace;
  const auto rep = sh_strategy.iteration(w, machine, &sim_trace);

  bench::header("Figure 4: one training iteration of a 4B model (V100)");
  std::printf("window m = %zu, iteration = %.2f s, %.2f samples/s\n\n",
              rep.window, rep.seconds, rep.throughput);
  sim_trace.render(std::cout, 110);
  std::printf(
      "\nGPU utilization      : %5.1f%%\n"
      "h2d overlap w/ compute: %5.1f%% of transfer time\n"
      "d2h overlap w/ compute: %5.1f%% of transfer time\n",
      100.0 * sim_trace.utilization("gpu"),
      100.0 * sim_trace.overlap_fraction("h2d", "gpu"),
      100.0 * sim_trace.overlap_fraction("d2h", "gpu"));
  std::printf("Paper: communication largely hidden by GPU computation when "
              "P1/P2 are satisfied.\n");

  // --- Part 2: the numeric runtime, measured on the wall clock ---
  obs::Recorder::global().clear();
  obs::Recorder::global().set_enabled(true);

  nn::GptConfig mc;
  mc.vocab = 256;
  mc.max_seq = 32;
  mc.hidden = 128;
  mc.heads = 4;
  mc.layers = 8;
  nn::GptModel model(mc);

  obs::MetricsSnapshot metrics;
  const std::size_t steps = 6;
  double f32_h2d_per_step = 0.0;
  {
    core::EngineConfig cfg;
    cfg.window = 2;
    cfg.optimizer_workers = 2;
    // PCIe-like throttles so transfers are long enough to measure overlap.
    cfg.h2d_bytes_per_s = 4.0e9;
    cfg.d2h_bytes_per_s = 4.0e9;
    core::StrongholdEngine engine(model, cfg);
    engine.init_params(1);

    data::SyntheticCorpus corpus(mc.vocab, /*seed=*/7);
    for (std::size_t i = 0; i < steps; ++i) {
      const auto batch = corpus.next_batch(4, mc.max_seq);
      engine.train_step(batch);
    }
    // Quiesce so every asynchronous transfer/update span has landed.
    std::vector<float> tmp;
    engine.snapshot_params(tmp);
    metrics = obs::Registry::global().snapshot();
    f32_h2d_per_step =
        static_cast<double>(engine.stats().h2d_bytes) / steps;
  }
  obs::Recorder::global().set_enabled(false);

  // Same schedule with the BF16 working window: the wire bytes (and thus
  // the PCIe throttle time) must halve while FP32 masters stay the ground
  // truth. Recorded alongside the FP32 numbers so check_fig4.py can gate
  // the halved-transfer claim.
  double bf16_h2d_per_step = 0.0;
  {
    nn::GptModel bf16_model(mc);
    core::EngineConfig cfg;
    cfg.window = 2;
    cfg.optimizer_workers = 2;
    cfg.h2d_bytes_per_s = 4.0e9;
    cfg.d2h_bytes_per_s = 4.0e9;
    cfg.window_dtype = tensor::DType::bf16;
    core::StrongholdEngine engine(bf16_model, cfg);
    engine.init_params(1);
    data::SyntheticCorpus corpus(mc.vocab, /*seed=*/7);
    for (std::size_t i = 0; i < steps; ++i) {
      engine.train_step(corpus.next_batch(4, mc.max_seq));
    }
    std::vector<float> tmp;
    engine.snapshot_params(tmp);
    bf16_h2d_per_step =
        static_cast<double>(engine.stats().h2d_bytes) / steps;
  }
  const double h2d_ratio =
      f32_h2d_per_step > 0.0 ? bf16_h2d_per_step / f32_h2d_per_step : 0.0;

  const std::vector<obs::Span> wall = obs::Recorder::global().snapshot();
  const sim::Trace real = obs::to_sim_trace(wall);
  const double util = real.utilization("gpu");
  const double h2d_ov = real.overlap_fraction("h2d", "gpu");
  const double d2h_ov = real.overlap_fraction("d2h", "gpu");

  bench::header("Measured overlap: numeric runtime, wall clock");
  std::printf("%zu recorded spans over %.3f s\n", wall.size(),
              real.end_time());
  std::printf(
      "GPU utilization      : %5.1f%%\n"
      "h2d overlap w/ compute: %5.1f%% of transfer time\n"
      "d2h overlap w/ compute: %5.1f%% of transfer time\n",
      100.0 * util, 100.0 * h2d_ov, 100.0 * d2h_ov);
  std::printf(
      "h2d bytes/step        : %.0f (f32)  %.0f (bf16 window)  ratio %.3f\n",
      f32_h2d_per_step, bf16_h2d_per_step, h2d_ratio);

  metrics.add("fig4.real.h2d_bytes_per_step", f32_h2d_per_step, "bytes");
  metrics.add("fig4.bf16.h2d_bytes_per_step", bf16_h2d_per_step, "bytes");
  metrics.add("fig4.bf16.h2d_bytes_ratio", h2d_ratio, "");
  metrics.add("fig4.real.gpu_utilization", util, "");
  metrics.add("fig4.real.h2d_overlap_fraction", h2d_ov, "");
  metrics.add("fig4.real.d2h_overlap_fraction", d2h_ov, "");
  metrics.add("fig4.sim.gpu_utilization", sim_trace.utilization("gpu"), "");
  metrics.add("fig4.sim.h2d_overlap_fraction",
              sim_trace.overlap_fraction("h2d", "gpu"), "");
  metrics.add("fig4.sim.d2h_overlap_fraction",
              sim_trace.overlap_fraction("d2h", "gpu"), "");

  {
    std::ofstream os("fig4_trace.json");
    obs::write_chrome_trace(os, wall, &sim_trace, &metrics);
  }
  {
    std::ofstream os("BENCH_fig4.json");
    obs::write_metrics_json(os, metrics);
  }
  std::printf("\nwrote fig4_trace.json (Perfetto: wall-clock + virtual-time "
              "tracks) and BENCH_fig4.json\n");
  return 0;
}

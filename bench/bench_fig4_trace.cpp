// Figure 4: GPU computation / offloading trace of STRONGHOLD training a 4B
// model on a 32 GB V100. Renders the simulated schedule as an ASCII Gantt
// chart and reports the computation/communication overlap.
#include <cstdarg>
#include <cstdio>
#include <iostream>

#include "baselines/stronghold_strategy.hpp"
#include "bench_util.hpp"
#include "sim/trace.hpp"

int main() {
  using namespace sh;
  const auto machine = sim::v100_server();
  const auto w = bench::make_workload(50, 2560, 4.0);  // the 4B model

  baselines::StrongholdStrategy sh_strategy;
  sim::Trace trace;
  const auto rep = sh_strategy.iteration(w, machine, &trace);

  bench::header("Figure 4: one training iteration of a 4B model (V100)");
  std::printf("window m = %zu, iteration = %.2f s, %.2f samples/s\n\n",
              rep.window, rep.seconds, rep.throughput);
  trace.render(std::cout, 110);
  std::printf(
      "\nGPU utilization      : %5.1f%%\n"
      "h2d overlap w/ compute: %5.1f%% of transfer time\n"
      "d2h overlap w/ compute: %5.1f%% of transfer time\n",
      100.0 * trace.utilization("gpu"),
      100.0 * trace.overlap_fraction("h2d", "gpu"),
      100.0 * trace.overlap_fraction("d2h", "gpu"));
  std::printf("Paper: communication largely hidden by GPU computation when "
              "P1/P2 are satisfied.\n");
  return 0;
}

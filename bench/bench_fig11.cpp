// Figure 11: speedup over Megatron-LM under different training batch sizes
// when STRONGHOLD's multi-stream optimization is enabled (Section IV-A).
#include <cstdarg>
#include <cstdio>

#include "baselines/megatron.hpp"
#include "baselines/stronghold_strategy.hpp"
#include "bench_util.hpp"

int main() {
  using namespace sh;
  using namespace sh::baselines;
  const auto machine = sim::v100_server();
  MegatronStrategy megatron;
  StrongholdStrategy multi;                          // multi-stream on
  StrongholdStrategy single({.multi_stream = false});

  bench::header("Figure 11: multi-stream speedup over Megatron-LM (1.7B)");
  std::printf("%6s %8s %14s %16s %12s\n", "batch", "streams", "Megatron s/s",
              "STRONGHOLD s/s", "speedup");
  for (double bs : {2.0, 4.0, 8.0, 16.0}) {
    const auto w = bench::common_1p7b(bs);
    const double mega = megatron.iteration(w, machine, nullptr).throughput;
    const double sh = multi.iteration(w, machine, nullptr).throughput;
    std::printf("%6.0f %8d %14.4f %16.4f %11.2fx\n", bs,
                multi.stream_count(w, machine), mega, sh, sh / mega);
  }
  const auto w = bench::common_1p7b(8.0);
  std::printf("\nwithout multi-stream: %.2fx over Megatron (overlap only)\n",
              single.iteration(w, machine, nullptr).throughput /
                  megatron.iteration(w, machine, nullptr).throughput);
  std::printf("Paper: at least 1.7x and up to 2.1x speedup; the reduced "
              "memory footprint (~60%%) is what frees the stream buffers.\n");
  return 0;
}

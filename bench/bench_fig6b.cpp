// Figure 6b: largest trainable model size on the 8-node A10 cluster with
// 8-way model parallelism.
#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "baselines/cluster.hpp"
#include "bench_util.hpp"

int main() {
  using namespace sh;
  const auto cluster = sim::a10_cluster();
  const auto lineup = baselines::single_gpu_lineup();
  const char* paper[] = {"~6-7", "limited", "limited", "56.9", "82.1"};

  bench::header(
      "Figure 6b: largest trainable size, 8x A10 cluster (8-way MP)");
  std::printf("%-14s %10s %10s %14s\n", "scheme", "min (B)", "max (B)",
              "paper (B)");
  int idx = 0;
  for (const auto& s : lineup) {
    double mn = 1e18, mx = 0.0;
    for (std::int64_t hd : {5120, 8192}) {
      const double b = baselines::largest_trainable_billions_cluster(
          *s, cluster, hd, 4.0);
      mn = std::min(mn, b);
      mx = std::max(mx, b);
    }
    std::printf("%-14s %10.1f %10.1f %14s\n", s->name().c_str(), mn, mx,
                paper[idx++]);
  }
  std::printf("\nPaper: ZeRO-Infinity and STRONGHOLD scale to 56.9B and "
              "82.1B; L2L/ZeRO-Offload give limited improvement.\n");
  return 0;
}

// Figure 9: impact of the GPU working-window size on throughput (1.7B and
// 39.5B models on a V100), plus the window the analytical model selects.
//
// Two series per model:
//  * paper hardware — per-layer fetches over PCIe 3.0 are fully covered by a
//    single layer's compute, so the curve is flat and the model picks m=1;
//  * constrained link (PCIe/12) — transfers bind, so a larger window (which
//    keeps more of the BP tail resident and removes refetch traffic) raises
//    throughput until the compute bound, reproducing the paper's knee shape.
// EXPERIMENTS.md discusses why the measured system kneed at m~8.
#include <cstdarg>
#include <cstdio>
#include <vector>

#include "baselines/stronghold_strategy.hpp"
#include "bench_util.hpp"

namespace {

void sweep(const char* label, const sh::baselines::Workload& w,
           const sh::sim::MachineSpec& machine) {
  sh::bench::header(std::string("Figure 9: window sweep, ") + label);
  std::printf("%8s %12s %12s\n", "window", "samples/s", "iter (s)");
  for (std::size_t m : {1u, 2u, 4u, 6u, 8u, 12u, 16u}) {
    if (m > static_cast<std::size_t>(w.model.layers)) break;
    sh::baselines::StrongholdStrategy s({.fixed_window = m});
    const auto rep = s.iteration(w, machine, nullptr);
    std::printf("%8zu %12.4f %12.3f\n", m, rep.throughput, rep.seconds);
  }
  sh::baselines::StrongholdStrategy auto_s;
  const auto d = auto_s.window_decision(w, machine);
  const auto rep = auto_s.iteration(w, machine, nullptr);
  std::printf("%8s %12.4f %12.3f  (analytical model: m=%zu, feasible=%d)\n",
              "auto", rep.throughput, rep.seconds, d.m,
              static_cast<int>(d.feasible));
}

}  // namespace

int main() {
  using namespace sh;
  const auto machine = sim::v100_server();
  auto constrained = machine;
  constrained.pcie_bytes_per_s /= 12.0;

  for (const auto& [layers, label] :
       std::vector<std::pair<std::int64_t, const char*>>{{20, "1.7B"},
                                                          {500, "39.5B"}}) {
    const auto w = bench::make_workload(layers, 2560, 2.0);
    sweep((std::string(label) + " (paper PCIe)").c_str(), w, machine);
    sweep((std::string(label) + " (PCIe/12, transfer-bound)").c_str(), w,
          constrained);
  }
  std::printf("\nPaper: throughput plateaus around a window of 8 on the "
              "measured system; the analytical model picks the plateau "
              "point automatically.\n");
  return 0;
}

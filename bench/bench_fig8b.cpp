// Figure 8b: STRONGHOLD's per-iteration time scales nearly linearly with
// model size on a single V100 (lower is better), using 1.7B as the origin of
// the perfect-scaling projection.
#include <cstdarg>
#include <cstdio>
#include <vector>

#include "baselines/stronghold_strategy.hpp"
#include "bench_util.hpp"

int main() {
  using namespace sh;
  const auto machine = sim::v100_server();
  baselines::StrongholdStrategy sh_strategy;

  bench::header("Figure 8b: iteration time vs model size (STRONGHOLD, V100)");
  std::printf("%8s %9s %12s %14s %10s\n", "#layers", "size(B)", "iter (s)",
              "linear proj", "ratio");
  const std::vector<std::int64_t> layer_counts = {20, 50, 75, 120, 180,
                                                  260, 380, 500};
  double base_seconds = 0.0;
  double base_billions = 0.0;
  for (std::int64_t layers : layer_counts) {
    const auto w = bench::make_workload(layers, 2560, 4.0);
    const auto rep = sh_strategy.iteration(w, machine, nullptr);
    const double b = sim::params_billions(w.model);
    if (base_seconds == 0.0) {
      base_seconds = rep.seconds;
      base_billions = b;
    }
    const double projected = base_seconds * b / base_billions;
    std::printf("%8lld %9.1f %12.3f %14.3f %10.3f\n",
                static_cast<long long>(layers), b, rep.seconds, projected,
                rep.seconds / projected);
  }
  std::printf("\nPaper: performance on par with a perfect linear scaling "
              "projection (ratio ~= 1).\n");
  return 0;
}

// Figure 12: distributed training on the 8-node A10 cluster using the
// largest model ZeRO-2 supports (~3B) at batch size 1: ZeRO-2 and ZeRO-3
// shard states across servers; STRONGHOLD converts the setup to pure data
// parallelism (whole model per node via offloading).
#include <cstdarg>
#include <cstdio>

#include "baselines/cluster.hpp"
#include "bench_util.hpp"
#include "dist/comm_volume.hpp"

int main() {
  using namespace sh;
  using namespace sh::baselines;
  const auto cluster = sim::a10_cluster();
  ZeroDpStrategy z2(ZeroDpStrategy::Stage::Two, cluster);
  ZeroDpStrategy z3(ZeroDpStrategy::Stage::Three, cluster);

  // Largest ZeRO-2 model on a 24 GB A10 at batch 1.
  const double z2_max =
      largest_trainable_billions(z2, cluster.node, 2560, 1, 1.0);
  std::int64_t layers = 1;
  while (sim::params_billions(sim::table1_model(layers + 1, 2560)) <= z2_max) {
    ++layers;
  }
  const auto w = bench::make_workload(layers, 2560, 1.0);

  bench::header("Figure 12: 8-node A10 cluster, largest ZeRO-2 model, bs=1");
  std::printf("largest ZeRO-2 model: %.1fB (paper: 3B)\n\n", z2_max);
  const double z2_thr = z2.iteration(w, cluster.node, nullptr).throughput;
  const double z3_thr = z3.iteration(w, cluster.node, nullptr).throughput;
  const auto sh_rep = stronghold_dp_iteration(w, cluster);
  std::printf("%-12s %14s %12s\n", "scheme", "samples/s/GPU", "vs ZeRO-2");
  std::printf("%-12s %14.4f %11.2fx\n", "ZeRO-2", z2_thr, 1.0);
  std::printf("%-12s %14.4f %11.2fx\n", "ZeRO-3", z3_thr, z3_thr / z2_thr);
  std::printf("%-12s %14.4f %11.2fx\n", "STRONGHOLD", sh_rep.throughput,
              sh_rep.throughput / z2_thr);

  // Section III-F: communication-volume reduction of MP -> DP conversion.
  dist::VolumeParams vp{.w = 8, .layers = 50, .hidden = 4096, .vocab = 30000,
                        .batch = 16, .seq = 1024};
  std::printf("\nSection III-F volume model (20B, n=50, hd=4K, bs=16): "
              "V_mp/V_dp = %.2f\n", dist::mp_over_dp(vp));
  std::printf("Paper: STRONGHOLD delivers over 2.6x throughput vs "
              "ZeRO-2/3 by eliminating cross-server state partitioning.\n");
  return 0;
}

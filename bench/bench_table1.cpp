// Table I: Transformer-based model configurations. Regenerates every row's
// parameter count from the cost model and compares with the paper's value.
#include <cstdarg>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

namespace {
struct Row {
  std::int64_t layers;
  std::int64_t hidden;
  int mp;
  double paper_billions;
};
}  // namespace

int main() {
  using namespace sh;
  bench::header("Table I: model configurations (paper vs cost model)");
  const std::vector<Row> rows = {
      {20, 2560, 1, 1.7},    {50, 2560, 1, 4.0},    {74, 2560, 1, 5.9},
      {75, 2560, 1, 6.0},    {83, 2560, 1, 6.6},    {260, 2560, 1, 20.5},
      {300, 2560, 1, 23.7},  {500, 2560, 1, 39.4},  {19, 4096, 1, 4.0},
      {19, 5120, 1, 6.2},    {31, 5120, 1, 10.0},   {10, 5120, 8, 3.4},
      {12, 5120, 8, 4.7},    {24, 5120, 8, 7.8},    {72, 5120, 8, 23.2},
      {200, 5120, 8, 63.2},  {240, 5120, 8, 75.7},  {260, 5120, 8, 82.0},
      {328, 5120, 8, 103.2}, {1174, 5120, 8, 367.6}, {1676, 5120, 8, 524.5},
      {24, 8192, 8, 19.8},   {31, 8192, 8, 25.4},   {31, 8704, 8, 28.7},
      {31, 9216, 8, 32.1},   {31, 13312, 8, 66.7},
  };
  std::printf("%8s %8s %4s %12s %12s %8s\n", "#layers", "hidden", "MP",
              "paper (B)", "model (B)", "delta%%");
  for (const auto& r : rows) {
    const auto m = sim::table1_model(r.layers, r.hidden, r.mp);
    const double b = sim::params_billions(m);
    std::printf("%8lld %8lld %4d %12.1f %12.2f %7.1f%%\n",
                static_cast<long long>(r.layers),
                static_cast<long long>(r.hidden), r.mp, r.paper_billions, b,
                100.0 * (b - r.paper_billions) / r.paper_billions);
  }
  std::printf("\nNote: the 12-layer/5120 row is reported as 4.7B in the paper "
              "but its own 12*n*hd^2 accounting gives 3.9B.\n");
  return 0;
}

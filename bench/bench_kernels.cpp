// Kernel-substrate bench: blocked/packed GEMM (tensor/gemm.cpp) vs the
// seed's naive row-streaming matmul (matmul_ref) on the GEMM shapes the GPT
// blocks actually produce, plus fused-epilogue savings and genuine
// before/after end-to-end train_step time (the reference kernel is swapped
// in at runtime via set_use_reference_gemm).
//
// Prints a fixed-width table and writes BENCH_kernels.json so the perf
// trajectory is tracked per-PR (CI runs `bench_kernels --smoke` and uploads
// the JSON as an artifact).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "data/synthetic.hpp"
#include "mem/device_arena.hpp"
#include "nn/attention.hpp"
#include "nn/gpt.hpp"
#include "tensor/attention_kernel.hpp"
#include "tensor/dtype.hpp"
#include "tensor/matmul_ref.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Calls `fn` repeatedly until ~`budget_s` elapses (at least twice, first
/// call treated as warm-up) and returns the best per-call seconds.
template <typename Fn>
double time_best(double budget_s, Fn&& fn) {
  fn();  // warm-up
  double best = 1e30;
  double spent = 0.0;
  int reps = 0;
  while (spent < budget_s || reps < 1) {
    const auto t0 = Clock::now();
    fn();
    const double dt = seconds_since(t0);
    best = dt < best ? dt : best;
    spent += dt;
    ++reps;
  }
  return best;
}

struct GemmShape {
  const char* name;  // which GPT-block GEMM this is
  std::int64_t m, n, k;
  bool ta, tb;
};

struct GemmRow {
  GemmShape shape;
  double gflops_ref = 0.0;
  double gflops_blocked = 0.0;
  double speedup() const { return gflops_blocked / gflops_ref; }
};

GemmRow run_gemm_shape(const GemmShape& s, double budget_s) {
  sh::tensor::Rng rng(7);
  std::vector<float> a(static_cast<std::size_t>(s.m * s.k));
  std::vector<float> b(static_cast<std::size_t>(s.k * s.n));
  std::vector<float> c(static_cast<std::size_t>(s.m * s.n));
  rng.fill_uniform(a, 1.0f);
  rng.fill_uniform(b, 1.0f);

  const double flops = 2.0 * s.m * s.n * s.k;
  GemmRow row{s, 0.0, 0.0};
  const double t_ref = time_best(budget_s, [&] {
    sh::tensor::matmul_ref(a.data(), b.data(), c.data(), s.m, s.n, s.k, s.ta,
                           s.tb);
  });
  const double t_new = time_best(budget_s, [&] {
    sh::tensor::matmul(a.data(), b.data(), c.data(), s.m, s.n, s.k, s.ta,
                       s.tb);
  });
  row.gflops_ref = flops / t_ref * 1e-9;
  row.gflops_blocked = flops / t_new * 1e-9;
  return row;
}

struct FusedRow {
  std::int64_t m, n, k;
  double unfused_ms = 0.0;
  double fused_ms = 0.0;
  double speedup() const { return unfused_ms / fused_ms; }
};

FusedRow run_fused(std::int64_t m, std::int64_t n, std::int64_t k,
                   double budget_s) {
  sh::tensor::Rng rng(11);
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> w(static_cast<std::size_t>(n * k));
  std::vector<float> bias(static_cast<std::size_t>(n));
  std::vector<float> pre(static_cast<std::size_t>(m * n));
  std::vector<float> out(static_cast<std::size_t>(m * n));
  rng.fill_uniform(a, 1.0f);
  rng.fill_uniform(w, 1.0f);
  rng.fill_uniform(bias, 1.0f);

  auto unfused = [&] {
    sh::tensor::matmul(a.data(), w.data(), pre.data(), m, n, k, false, true);
    sh::tensor::add_bias(pre.data(), bias.data(), pre.data(), m, n);
    sh::tensor::gelu_forward(pre.data(), out.data(), m * n);
  };
  auto fused = [&] {
    sh::tensor::matmul_bias_gelu(a.data(), w.data(), bias.data(), pre.data(),
                                 out.data(), m, n, k, false, true);
  };
  // Two alternating rounds, best of each: clock-frequency drift over the
  // run otherwise penalises whichever variant is timed last.
  FusedRow row{m, n, k, 1e30, 1e30};
  for (int round = 0; round < 2; ++round) {
    row.unfused_ms =
        std::min(row.unfused_ms, 1e3 * time_best(budget_s / 2, unfused));
    row.fused_ms =
        std::min(row.fused_ms, 1e3 * time_best(budget_s / 2, fused));
  }
  return row;
}

struct StepRow {
  double ref_ms = 0.0;
  double blocked_ms = 0.0;
  double speedup() const { return ref_ms / blocked_ms; }
};

StepRow run_end_to_end(bool smoke) {
  sh::nn::GptConfig mcfg;
  mcfg.vocab = 128;
  mcfg.max_seq = smoke ? 16 : 64;
  mcfg.hidden = smoke ? 64 : 256;
  mcfg.heads = 4;
  mcfg.layers = smoke ? 2 : 4;
  sh::nn::GptModel model(mcfg);
  sh::core::EngineConfig ecfg;
  ecfg.window = 2;
  sh::core::StrongholdEngine engine(model, ecfg);
  engine.init_params(42);

  sh::data::SyntheticCorpus corpus(mcfg.vocab, 99);
  const auto batch = corpus.next_batch(smoke ? 2 : 4, mcfg.max_seq);
  const int steps = smoke ? 2 : 4;

  auto run_steps = [&] {
    for (int i = 0; i < steps; ++i) engine.train_step(batch);
  };
  StepRow row;
  sh::tensor::set_use_reference_gemm(true);
  run_steps();  // warm-up (fills caches, engine warm-up iterations)
  auto t0 = Clock::now();
  run_steps();
  row.ref_ms = 1e3 * seconds_since(t0) / steps;
  sh::tensor::set_use_reference_gemm(false);
  run_steps();
  t0 = Clock::now();
  run_steps();
  row.blocked_ms = 1e3 * seconds_since(t0) / steps;
  return row;
}

struct AttnRow {
  std::int64_t seq = 0;
  double ref_ms = 0.0;
  double fused_ms = 0.0;
  std::size_t ref_act_bytes = 0;
  std::size_t fused_act_bytes = 0;
  double speedup() const { return ref_ms / fused_ms; }
  double ref_tok_s() const { return seq / (ref_ms * 1e-3); }
  double fused_tok_s() const { return seq / (fused_ms * 1e-3); }
  double act_reduction() const {
    return static_cast<double>(ref_act_bytes) /
           static_cast<double>(fused_act_bytes);
  }
};

/// One CausalSelfAttention layer, forward + backward, fused tiled kernel vs
/// the materialised-probs reference, at a given sequence length. Peak
/// activation bytes come from a DeviceArena soft-charge scope around one
/// fwd+bwd pass: every owning tensor the layer allocates (QKV, context,
/// softmax stats / the [seq, seq] probs matrix, grad-QKV) is charged; the
/// fused kernel's constant per-thread tile scratch deliberately is not —
/// it is O(1) workspace, which is the point of the fusion.
AttnRow run_attention(std::int64_t seq, std::int64_t hidden,
                      std::int64_t heads, double budget_s) {
  sh::nn::CausalSelfAttention attn("bench.attn", hidden, heads);
  sh::nn::OwnedStorage store(attn.param_count());
  attn.bind(store.params(), store.grads());
  sh::tensor::Rng rng(5);
  attn.init(rng);

  sh::nn::BatchShape shape;
  shape.batch = 1;
  shape.seq = seq;
  shape.training = true;

  auto x = sh::tensor::Tensor::zeros({seq, hidden});
  auto gy = sh::tensor::Tensor::zeros({seq, hidden});
  rng.fill_uniform(std::span<float>(x.data(), static_cast<std::size_t>(x.numel())),
                   0.5f);
  rng.fill_uniform(
      std::span<float>(gy.data(), static_cast<std::size_t>(gy.numel())), 0.5f);

  auto step = [&] {
    attn.forward(x, shape);
    attn.backward(gy, shape);
  };

  AttnRow row;
  row.seq = seq;
  for (int pass = 0; pass < 2; ++pass) {
    const bool fused = pass == 1;
    sh::tensor::set_use_fused_attention(fused);
    {
      sh::mem::DeviceArena arena("bench_attn", std::size_t{1} << 40);
      {
        sh::mem::ScopedTensorCharge charge(arena,
                                           sh::mem::DeviceArena::kActivations);
        step();
      }
      const auto stats = arena.stats();
      const auto bytes =
          stats.regions.at(sh::mem::DeviceArena::kActivations).peak_bytes;
      (fused ? row.fused_act_bytes : row.ref_act_bytes) = bytes;
    }
    const double ms = 1e3 * time_best(budget_s, step);
    (fused ? row.fused_ms : row.ref_ms) = ms;
  }
  sh::tensor::set_use_fused_attention(true);
  return row;
}

struct AttnStepRow {
  std::int64_t seq = 0;
  double ref_ms = 0.0;
  double fused_ms = 0.0;
  double speedup() const { return ref_ms / fused_ms; }
  double ref_tok_s() const { return seq / (ref_ms * 1e-3); }
  double fused_tok_s() const { return seq / (fused_ms * 1e-3); }
};

/// End-to-end engine train_step at long sequence length, fused attention vs
/// the reference path (blocked GEMM in both — this isolates the attention
/// rewrite, unlike run_end_to_end which isolates the GEMM substrate).
AttnStepRow run_attn_train_step(std::int64_t seq, bool smoke) {
  sh::nn::GptConfig mcfg;
  mcfg.vocab = 128;
  mcfg.max_seq = seq;
  mcfg.hidden = smoke ? 64 : 128;
  mcfg.heads = 4;
  mcfg.layers = 2;
  sh::nn::GptModel model(mcfg);
  sh::core::EngineConfig ecfg;
  ecfg.window = 2;
  sh::core::StrongholdEngine engine(model, ecfg);
  engine.init_params(42);

  sh::data::SyntheticCorpus corpus(mcfg.vocab, 99);
  const auto batch = corpus.next_batch(1, seq);
  const int steps = smoke ? 1 : 2;

  auto run_steps = [&] {
    for (int i = 0; i < steps; ++i) engine.train_step(batch);
  };
  AttnStepRow row;
  row.seq = seq;
  sh::tensor::set_use_fused_attention(false);
  run_steps();  // warm-up
  auto t0 = Clock::now();
  run_steps();
  row.ref_ms = 1e3 * seconds_since(t0) / steps;
  sh::tensor::set_use_fused_attention(true);
  run_steps();
  t0 = Clock::now();
  run_steps();
  row.fused_ms = 1e3 * seconds_since(t0) / steps;
  return row;
}

struct DtypeRow {
  std::size_t numel = 0;
  double enc_rne_gbps = 0.0;    // f32 -> bf16, round-to-nearest-even
  double enc_sr_gbps = 0.0;     // f32 -> bf16, stochastic rounding
  double dec_gbps = 0.0;        // bf16 -> f32
};

/// Bulk conversion bandwidth (GB/s of f32 source bytes processed) for the
/// three kernels the BF16 window exercises on every fetch/evict.
DtypeRow run_dtype_convert(std::size_t numel, double budget_s) {
  sh::tensor::Rng rng(13);
  std::vector<float> src(numel);
  std::vector<float> back(numel);
  std::vector<sh::tensor::bf16> enc(numel);
  rng.fill_uniform(src, 2.0f);

  DtypeRow row;
  row.numel = numel;
  const double gb = static_cast<double>(numel * sizeof(float)) * 1e-9;
  row.enc_rne_gbps =
      gb / time_best(budget_s, [&] {
        sh::tensor::convert_float_to_bf16(src.data(), enc.data(), numel);
      });
  sh::tensor::Rng sr_rng(17);
  row.enc_sr_gbps =
      gb / time_best(budget_s, [&] {
        sh::tensor::convert_float_to_bf16_stochastic(src.data(), enc.data(),
                                                     numel, sr_rng);
      });
  row.dec_gbps =
      gb / time_best(budget_s, [&] {
        sh::tensor::convert_bf16_to_float(enc.data(), back.data(), numel);
      });
  return row;
}

struct FaultInRow {
  std::size_t params = 0;
  double f32_ms = 0.0;   // memcpy master in + zero grads
  double bf16_ms = 0.0;  // encode master + zero grads + decode for compute
  double wire_ratio = 0.5;  // bf16 wire bytes / f32 wire bytes
};

/// One layer fault-in round-trip as the engine performs it: FP32 windows
/// memcpy the master and zero the grad half; BF16 windows encode the master
/// into the slot, zero the bf16 grad half, then decode into the f32 compute
/// stage. The halved wire bytes buy back the conversion cost on any real
/// PCIe link; this row measures the memory-side cost alone.
FaultInRow run_fault_in(std::size_t params, double budget_s) {
  sh::tensor::Rng rng(19);
  std::vector<float> master(params);
  rng.fill_uniform(master, 1.0f);
  std::vector<float> f32_slot(2 * params);
  std::vector<sh::tensor::bf16> b16_slot(2 * params);
  std::vector<float> stage(params);

  FaultInRow row;
  row.params = params;
  row.f32_ms = 1e3 * time_best(budget_s, [&] {
    std::memcpy(f32_slot.data(), master.data(), params * sizeof(float));
    std::fill_n(f32_slot.data() + params, params, 0.0f);
  });
  row.bf16_ms = 1e3 * time_best(budget_s, [&] {
    sh::tensor::convert_float_to_bf16(master.data(), b16_slot.data(), params);
    std::fill_n(b16_slot.data() + params, params, sh::tensor::bf16{0});
    sh::tensor::convert_bf16_to_float(b16_slot.data(), stage.data(), params);
  });
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const double budget = smoke ? 0.05 : 0.4;

  // GEMM shapes from one GPT block at (tokens T, hidden H, seq S, head_dim
  // D): qkv/proj/fc1/fc2 forwards (x @ W^T), the dW = dY^T @ X weight-grad
  // GEMM, and the per-head attention score/context products.
  const std::int64_t H = smoke ? 128 : 512;
  const std::int64_t T = smoke ? 64 : 256;
  const std::int64_t S = smoke ? 32 : 128;
  const std::int64_t D = smoke ? 32 : 64;
  const GemmShape shapes[] = {
      {"qkv  y=xW^T", T, 3 * H, H, false, true},
      {"proj y=xW^T", T, H, H, false, true},
      {"fc1  y=xW^T", T, 4 * H, H, false, true},
      {"fc2  y=xW^T", T, H, 4 * H, false, true},
      {"dW=dY^T X  ", 4 * H, H, T, true, false},
      {"dX=dY W    ", T, H, 4 * H, false, false},
      {"scores qk^T", S, S, D, false, true},
      {"ctx   p v  ", S, D, S, false, false},
  };

  sh::bench::header("kernel substrate — blocked GEMM vs naive (matmul_ref)");
  sh::bench::row("%-12s %6s %6s %6s %3s %3s %12s %12s %9s", "shape", "m", "n",
                 "k", "ta", "tb", "ref GFLOPS", "new GFLOPS", "speedup");
  std::vector<GemmRow> rows;
  for (const auto& s : shapes) {
    rows.push_back(run_gemm_shape(s, budget));
    const auto& r = rows.back();
    sh::bench::row("%-12s %6lld %6lld %6lld %3d %3d %12.2f %12.2f %8.2fx",
                   r.shape.name, static_cast<long long>(r.shape.m),
                   static_cast<long long>(r.shape.n),
                   static_cast<long long>(r.shape.k), r.shape.ta, r.shape.tb,
                   r.gflops_ref, r.gflops_blocked, r.speedup());
  }

  sh::bench::header("fused epilogue — matmul_bias_gelu vs 3-pass composition");
  const FusedRow fused = run_fused(T, 4 * H, H, budget);
  sh::bench::row("%-12s %6lld %6lld %6lld %12.3f %12.3f %8.2fx", "fc1+gelu",
                 static_cast<long long>(fused.m),
                 static_cast<long long>(fused.n),
                 static_cast<long long>(fused.k), fused.unfused_ms,
                 fused.fused_ms, fused.speedup());

  sh::bench::header("end-to-end train_step — reference vs blocked kernels");
  const StepRow step = run_end_to_end(smoke);
  sh::bench::row("%-12s %12.2f ms %12.2f ms %8.2fx", "train_step", step.ref_ms,
                 step.blocked_ms, step.speedup());

  // Fused tiled attention vs the materialised-probs reference across sequence
  // lengths: fwd+bwd time, tokens/s, and peak activation bytes. The fused
  // kernel's activation footprint is O(seq * hidden); the reference carries
  // the [seq, seq] probability matrix, O(seq^2).
  sh::bench::header("fused attention — tiled online-softmax vs [S,S] probs");
  sh::bench::row("%6s %10s %10s %8s %12s %12s %8s", "seq", "ref ms",
                 "fused ms", "tok/s x", "ref actMiB", "fused actMiB",
                 "act x");
  const std::int64_t attn_hidden = smoke ? 128 : 256;
  const std::int64_t attn_heads = 4;
  std::vector<std::int64_t> attn_seqs;
  if (smoke) {
    attn_seqs = {256};
  } else {
    attn_seqs = {512, 1024, 2048, 4096, 8192};
  }
  std::vector<AttnRow> attn_rows;
  for (const auto s : attn_seqs) {
    attn_rows.push_back(run_attention(s, attn_hidden, attn_heads, budget));
    const auto& r = attn_rows.back();
    sh::bench::row("%6lld %10.2f %10.2f %7.2fx %12.2f %12.2f %7.2fx",
                   static_cast<long long>(r.seq), r.ref_ms, r.fused_ms,
                   r.speedup(), r.ref_act_bytes / (1024.0 * 1024.0),
                   r.fused_act_bytes / (1024.0 * 1024.0), r.act_reduction());
  }

  sh::bench::header("train_step @ long seq — fused vs reference attention");
  const AttnStepRow astep = run_attn_train_step(smoke ? 256 : 2048, smoke);
  sh::bench::row("%6lld %10.2f ms %10.2f ms %10.0f tok/s %10.0f tok/s %7.2fx",
                 static_cast<long long>(astep.seq), astep.ref_ms,
                 astep.fused_ms, astep.ref_tok_s(), astep.fused_tok_s(),
                 astep.speedup());

  // BF16 window substrate: conversion-kernel bandwidth and the layer
  // fault-in round-trip the engine pays per window fill.
  sh::bench::header("dtype — bf16<->f32 convert bandwidth (GB/s of f32)");
  sh::bench::row("%10s %12s %12s %12s", "numel", "enc RNE", "enc SR", "dec");
  const std::size_t conv_n = smoke ? (std::size_t{1} << 18)
                                   : (std::size_t{1} << 22);
  const DtypeRow conv = run_dtype_convert(conv_n, budget);
  sh::bench::row("%10zu %10.2f %10.2f %10.2f", conv.numel, conv.enc_rne_gbps,
                 conv.enc_sr_gbps, conv.dec_gbps);

  sh::bench::header("dtype — layer fault-in round-trip, f32 vs bf16 window");
  const std::size_t fault_params = smoke ? (std::size_t{1} << 18)
                                         : (std::size_t{1} << 21);
  const FaultInRow fault = run_fault_in(fault_params, budget);
  sh::bench::row("%10zu params %10.3f ms (f32) %10.3f ms (bf16) wire 0.50x",
                 fault.params, fault.f32_ms, fault.bf16_ms);

  std::FILE* f = std::fopen("BENCH_kernels.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"kernels\",\n  \"smoke\": %s,\n",
                 smoke ? "true" : "false");
    std::fprintf(f, "  \"gemm\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"m\": %lld, \"n\": %lld, "
                   "\"k\": %lld, \"ta\": %d, \"tb\": %d, "
                   "\"gflops_ref\": %.3f, \"gflops_blocked\": %.3f, "
                   "\"speedup\": %.3f}%s\n",
                   r.shape.name, static_cast<long long>(r.shape.m),
                   static_cast<long long>(r.shape.n),
                   static_cast<long long>(r.shape.k), r.shape.ta, r.shape.tb,
                   r.gflops_ref, r.gflops_blocked, r.speedup(),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"fused_bias_gelu\": {\"m\": %lld, \"n\": %lld, "
                 "\"k\": %lld, \"unfused_ms\": %.4f, \"fused_ms\": %.4f, "
                 "\"speedup\": %.3f},\n",
                 static_cast<long long>(fused.m),
                 static_cast<long long>(fused.n),
                 static_cast<long long>(fused.k), fused.unfused_ms,
                 fused.fused_ms, fused.speedup());
    std::fprintf(f,
                 "  \"train_step\": {\"ref_ms\": %.3f, \"blocked_ms\": %.3f, "
                 "\"speedup\": %.3f},\n",
                 step.ref_ms, step.blocked_ms, step.speedup());
    std::fprintf(f, "  \"attention\": [\n");
    for (std::size_t i = 0; i < attn_rows.size(); ++i) {
      const auto& r = attn_rows[i];
      std::fprintf(f,
                   "    {\"seq\": %lld, \"hidden\": %lld, \"heads\": %lld, "
                   "\"ref_ms\": %.3f, \"fused_ms\": %.3f, \"speedup\": %.3f, "
                   "\"ref_tokens_per_s\": %.1f, \"fused_tokens_per_s\": %.1f, "
                   "\"ref_act_bytes\": %zu, \"fused_act_bytes\": %zu, "
                   "\"act_reduction\": %.3f}%s\n",
                   static_cast<long long>(r.seq),
                   static_cast<long long>(attn_hidden),
                   static_cast<long long>(attn_heads), r.ref_ms, r.fused_ms,
                   r.speedup(), r.ref_tok_s(), r.fused_tok_s(),
                   r.ref_act_bytes, r.fused_act_bytes, r.act_reduction(),
                   i + 1 < attn_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"attn_train_step\": {\"seq\": %lld, \"ref_ms\": %.3f, "
                 "\"fused_ms\": %.3f, \"ref_tokens_per_s\": %.1f, "
                 "\"fused_tokens_per_s\": %.1f, \"speedup\": %.3f},\n",
                 static_cast<long long>(astep.seq), astep.ref_ms,
                 astep.fused_ms, astep.ref_tok_s(), astep.fused_tok_s(),
                 astep.speedup());
    std::fprintf(f,
                 "  \"dtype_convert\": {\"numel\": %zu, "
                 "\"encode_rne_gbps\": %.2f, \"encode_stochastic_gbps\": "
                 "%.2f, \"decode_gbps\": %.2f},\n",
                 conv.numel, conv.enc_rne_gbps, conv.enc_sr_gbps,
                 conv.dec_gbps);
    std::fprintf(f,
                 "  \"dtype_fault_in\": {\"params\": %zu, \"f32_ms\": %.4f, "
                 "\"bf16_ms\": %.4f, \"wire_bytes_ratio\": 0.5}\n}\n",
                 fault.params, fault.f32_ms, fault.bf16_ms);
    std::fclose(f);
    std::printf("\nwrote BENCH_kernels.json\n");
  }
  return 0;
}

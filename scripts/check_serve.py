#!/usr/bin/env python3
"""Regression gate for the serving-fleet goodput/latency measurements.

bench_serve drives open-loop Poisson traffic through serve::Router fleets
(replica counts 1/2/4 sharing one engine host) and writes goodput-vs-offered-
load curves plus one chaos row (NVMe-tier fault injection) to the "router"
section of BENCH_serve.json. All curve numbers are measured on the router's
VIRTUAL clock, so they are a pure function of the workload file — identical
on every machine — and can be gated tightly. The chaos wall-latency ratio is
the only wall-clock number and gets a generous ceiling: faults must degrade
tail latency boundedly (retry budget caps each op), never unboundedly.

Gates, at the mid offered-load point of the single-replica curve:
  - goodput floor (fraction of requests finishing inside their tier deadline)
  - p99/p50 latency ratio ceiling (tail amplification under load)
  - prefill_savings floor (shared-prefix CoW must actually cut prefill work;
    relaxed in --smoke runs where the 10-request traffic dilutes sharing)
  - chaos: faults_injected > 0, tokens bit-identical to the healthy fleet,
    wall p99 ratio vs healthy under a ceiling

Thresholds are env-tunable (SH_SERVECHK_*) or per-run flags. Stdlib only.
"""
import argparse
import json
import os
import sys


def env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "")
    try:
        return float(raw) if raw else default
    except ValueError:
        print(f"check_serve: ignoring non-numeric {name}={raw!r}")
        return default


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "path",
        nargs="?",
        default="BENCH_serve.json",
        help="metrics JSON written by bench_serve (default: %(default)s)",
    )
    parser.add_argument(
        "--min-goodput",
        type=float,
        default=env_float("SH_SERVECHK_MIN_GOODPUT", 0.90),
        help="floor on single-replica goodput at the mid offered-load point "
        "(default: %(default)s; measured 1.00)",
    )
    parser.add_argument(
        "--max-tail-ratio",
        type=float,
        default=env_float("SH_SERVECHK_MAX_TAIL_RATIO", 4.0),
        help="ceiling on p99/p50 virtual latency at the mid load point "
        "(default: %(default)s; measured ~2.2)",
    )
    parser.add_argument(
        "--min-prefill-savings",
        type=float,
        default=env_float("SH_SERVECHK_MIN_PREFILL_SAVINGS", 1.5),
        help="floor on prefill_savings — baseline prefill tokens over actual "
        "with shared-prefix CoW (default: %(default)s; measured ~1.7). "
        "Smoke runs use 4/5 of this (fewer requests dilute sharing)",
    )
    parser.add_argument(
        "--max-chaos-wall-ratio",
        type=float,
        default=env_float("SH_SERVECHK_MAX_CHAOS_WALL_RATIO", 20.0),
        help="ceiling on faulted/healthy wall p99 in the chaos row "
        "(default: %(default)s; measured ~1.3-1.8). Wall clock, so loose: "
        "it only asserts the fault retry budget keeps the tail bounded",
    )
    args = parser.parse_args()

    try:
        with open(args.path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_serve: cannot read {args.path}: {e}")
        return 1

    router = doc.get("router")
    if not isinstance(router, dict):
        print(f"FAIL router: section missing from {args.path} "
              "(bench_serve predates the fleet bench, or it crashed)")
        return 1

    curves = router.get("curves", [])
    solo = [r for r in curves if r.get("replicas") == 1]
    if not solo:
        print("FAIL router.curves: no single-replica rows")
        return 1
    mid = sorted(solo, key=lambda r: r.get("rate", 0.0))[len(solo) // 2]
    smoke = bool(router.get("smoke", False))
    min_savings = args.min_prefill_savings * (0.8 if smoke else 1.0)

    failed = False

    def gate(label, value, bound, is_floor):
        nonlocal failed
        if not isinstance(value, (int, float)):
            print(f"FAIL {label}: missing")
            failed = True
            return
        ok = value >= bound if is_floor else value <= bound
        kind = "floor" if is_floor else "ceiling"
        print(f"{'ok  ' if ok else 'FAIL'} {label} = {value:.3f} "
              f"({kind} {bound:.2f})")
        failed = failed or not ok

    label = f"router[replicas=1,rate={mid.get('rate')}]"
    gate(f"{label}.goodput", mid.get("goodput"), args.min_goodput, True)
    p50, p99 = mid.get("p50_s"), mid.get("p99_s")
    tail = (p99 / p50) if isinstance(p50, (int, float)) and p50 > 0 and \
        isinstance(p99, (int, float)) else None
    gate(f"{label}.p99/p50", tail, args.max_tail_ratio, False)
    gate(f"{label}.prefill_savings", mid.get("prefill_savings"),
         min_savings, True)

    chaos = router.get("chaos", {})
    faults = chaos.get("faults_injected")
    if not isinstance(faults, int) or faults <= 0:
        print(f"FAIL chaos.faults_injected = {faults!r} (must be > 0 — the "
              "chaos row proved nothing if no fault ever fired)")
        failed = True
    else:
        print(f"ok   chaos.faults_injected = {faults}")
    if chaos.get("tokens_identical") is not True:
        print("FAIL chaos.tokens_identical: faulted fleet produced different "
              "tokens than the healthy fleet")
        failed = True
    else:
        print("ok   chaos.tokens_identical = true")
    gate("chaos.wall_p99_ratio", chaos.get("wall_p99_ratio"),
         args.max_chaos_wall_ratio, False)

    if failed:
        print("check_serve: fleet serving regression — goodput dropped, the "
              "latency tail blew up, prefix CoW stopped saving prefill, or "
              "faults leaked into the token stream")
        return 1
    print("check_serve: goodput/tail/prefix/chaos gates hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())

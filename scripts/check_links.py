#!/usr/bin/env python3
"""Checks relative markdown links in the repo's documentation.

Scans the top-level *.md files and docs/ for [text](target) links, resolves
each relative target against the containing file, and fails (exit 1) when a
target does not exist. External links (http/https/mailto) are not fetched.
Stdlib only — runs anywhere CI has python3.
"""
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

# [text](target) — stops at the first ')', good enough for the repo's docs
# (no nested parentheses in link targets).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def md_files():
    yield from sorted(ROOT.glob("*.md"))
    yield from sorted((ROOT / "docs").glob("**/*.md"))


def strip_code_blocks(text: str) -> str:
    """Removes fenced code blocks so code samples can't register links."""
    out, in_fence = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def main() -> int:
    broken = []
    checked = 0
    for md in md_files():
        text = strip_code_blocks(md.read_text(encoding="utf-8"))
        for target in LINK_RE.findall(text):
            if target.startswith(SKIP_PREFIXES):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            checked += 1
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                broken.append(f"{md.relative_to(ROOT)}: {target}")
    if broken:
        print("broken markdown links:")
        for b in broken:
            print(f"  {b}")
        return 1
    print(f"ok: {checked} relative links checked across "
          f"{len(list(md_files()))} markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())

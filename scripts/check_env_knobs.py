#!/usr/bin/env python3
"""Checks that the README's "Environment knobs" table matches the code.

Greps src/ for quoted "SH_*" string literals (the runtime's getenv keys) and
the README's consolidated knob table for `SH_*` rows, then fails (exit 1) on
drift in either direction: a knob the code reads but the table omits, or a
table row naming a knob no code reads. Stdlib only — runs anywhere CI has
python3.
"""
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

# Quoted literals only: getenv("SH_FOO"). Unquoted identifiers like the
# SH_SOURCE_DIR compile definition are not environment knobs.
CODE_KNOB_RE = re.compile(r'"(SH_[A-Z0-9_]+)"')
TABLE_ROW_RE = re.compile(r"^\|\s*`(SH_[A-Z0-9_]+)`", re.MULTILINE)
SECTION_HEADING = "## Environment knobs"


def code_knobs() -> set:
    knobs = set()
    for path in sorted((ROOT / "src").rglob("*")):
        if path.suffix not in (".hpp", ".cpp", ".h", ".cc"):
            continue
        knobs.update(CODE_KNOB_RE.findall(path.read_text(encoding="utf-8")))
    return knobs


def table_knobs() -> set:
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    start = readme.find(SECTION_HEADING)
    if start < 0:
        print(f'README.md: missing "{SECTION_HEADING}" section')
        sys.exit(1)
    end = readme.find("\n## ", start + len(SECTION_HEADING))
    section = readme[start:end if end > 0 else len(readme)]
    return set(TABLE_ROW_RE.findall(section))


def main() -> int:
    in_code = code_knobs()
    in_table = table_knobs()
    undocumented = sorted(in_code - in_table)
    stale = sorted(in_table - in_code)
    if undocumented:
        print("knobs read by src/ but missing from the README table:")
        for k in undocumented:
            print(f"  {k}")
    if stale:
        print("README table rows naming knobs no code in src/ reads:")
        for k in stale:
            print(f"  {k}")
    if undocumented or stale:
        return 1
    print(f"ok: {len(in_code)} SH_* knobs in src/ all documented, "
          "no stale table rows")
    return 0


if __name__ == "__main__":
    sys.exit(main())

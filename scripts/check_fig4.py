#!/usr/bin/env python3
"""Trace-driven regression gate for the Figure 4 overlap measurements.

bench_fig4_trace trains a small model on the numeric runtime with the obs
recorder enabled and writes the measured GPU utilization and H2D/compute
overlap fraction to BENCH_fig4.json. Those two numbers ARE the paper's
headline mechanism (communication hidden behind compute, Section III-C), so
CI asserts generous floors on them: a scheduling regression that serializes
transfers against compute drops them far below the floors and fails the
build, while normal CI-runner noise does not.

Floors are deliberately loose — the measured values sit well above them
(utilization ~0.9, overlap ~0.8 on CI runners) — and can be tuned per run
via flags or the SH_FIG4_MIN_GPU_UTIL / SH_FIG4_MIN_H2D_OVERLAP environment
variables. Stdlib only — runs anywhere CI has python3.
"""
import argparse
import json
import os
import sys


def env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "")
    try:
        return float(raw) if raw else default
    except ValueError:
        print(f"check_fig4: ignoring non-numeric {name}={raw!r}")
        return default


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "path",
        nargs="?",
        default="BENCH_fig4.json",
        help="metrics JSON written by bench_fig4_trace (default: %(default)s)",
    )
    parser.add_argument(
        "--min-gpu-util",
        type=float,
        default=env_float("SH_FIG4_MIN_GPU_UTIL", 0.30),
        help="floor on fig4.real.gpu_utilization (default: %(default)s)",
    )
    parser.add_argument(
        "--min-h2d-overlap",
        type=float,
        default=env_float("SH_FIG4_MIN_H2D_OVERLAP", 0.20),
        help="floor on fig4.real.h2d_overlap_fraction (default: %(default)s)",
    )
    parser.add_argument(
        "--min-d2h-overlap",
        type=float,
        default=env_float("SH_FIG4_MIN_D2H_OVERLAP", 0.40),
        help="floor on fig4.real.d2h_overlap_fraction (default: %(default)s). "
        "Guards the second pipeline stage slot: without it the BP prefetch "
        "blocks on the previous eviction's throttled gradient drain and "
        "measured d2h overlap collapses to ~0.16 (vs ~0.73 with it; the "
        "simulator predicts 0.98)",
    )
    parser.add_argument(
        "--max-bf16-h2d-ratio",
        type=float,
        default=env_float("SH_FIG4_MAX_BF16_H2D_RATIO", 0.55),
        help="ceiling on fig4.bf16.h2d_bytes_ratio (default: %(default)s). "
        "Gates the halved-transfer claim of the BF16 working window: h2d "
        "bytes/step with window_dtype=bf16 must be at most this fraction of "
        "the FP32 run (exactly 0.5 when the schedules match)",
    )
    args = parser.parse_args()

    try:
        with open(args.path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_fig4: cannot read {args.path}: {e}")
        return 1

    values = {m.get("name"): m.get("value") for m in doc.get("metrics", [])}
    floors = {
        "fig4.real.gpu_utilization": args.min_gpu_util,
        "fig4.real.h2d_overlap_fraction": args.min_h2d_overlap,
        "fig4.real.d2h_overlap_fraction": args.min_d2h_overlap,
    }

    ceilings = {
        "fig4.bf16.h2d_bytes_ratio": args.max_bf16_h2d_ratio,
    }

    failed = False
    for name, floor in floors.items():
        value = values.get(name)
        if not isinstance(value, (int, float)):
            print(f"FAIL {name}: missing from {args.path}")
            failed = True
            continue
        verdict = "ok  " if value >= floor else "FAIL"
        print(f"{verdict} {name} = {value:.3f} (floor {floor:.2f})")
        failed = failed or value < floor

    for name, ceiling in ceilings.items():
        value = values.get(name)
        if not isinstance(value, (int, float)):
            print(f"FAIL {name}: missing from {args.path}")
            failed = True
            continue
        verdict = "ok  " if value <= ceiling else "FAIL"
        print(f"{verdict} {name} = {value:.3f} (ceiling {ceiling:.2f})")
        failed = failed or value > ceiling

    if failed:
        print("check_fig4: overlap/transfer regression — compute is no "
              "longer hiding transfers, or the BF16 window stopped halving "
              "wire bytes (or the bench did not run)")
        return 1
    print("check_fig4: overlap floors and bf16 transfer ceiling hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())

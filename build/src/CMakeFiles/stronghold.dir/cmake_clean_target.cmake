file(REMOVE_RECURSE
  "libstronghold.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cluster.cpp" "src/CMakeFiles/stronghold.dir/baselines/cluster.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/baselines/cluster.cpp.o.d"
  "/root/repo/src/baselines/l2l.cpp" "src/CMakeFiles/stronghold.dir/baselines/l2l.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/baselines/l2l.cpp.o.d"
  "/root/repo/src/baselines/megatron.cpp" "src/CMakeFiles/stronghold.dir/baselines/megatron.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/baselines/megatron.cpp.o.d"
  "/root/repo/src/baselines/pipeline.cpp" "src/CMakeFiles/stronghold.dir/baselines/pipeline.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/baselines/pipeline.cpp.o.d"
  "/root/repo/src/baselines/strategy.cpp" "src/CMakeFiles/stronghold.dir/baselines/strategy.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/baselines/strategy.cpp.o.d"
  "/root/repo/src/baselines/stronghold_strategy.cpp" "src/CMakeFiles/stronghold.dir/baselines/stronghold_strategy.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/baselines/stronghold_strategy.cpp.o.d"
  "/root/repo/src/baselines/zero_infinity.cpp" "src/CMakeFiles/stronghold.dir/baselines/zero_infinity.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/baselines/zero_infinity.cpp.o.d"
  "/root/repo/src/baselines/zero_offload.cpp" "src/CMakeFiles/stronghold.dir/baselines/zero_offload.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/baselines/zero_offload.cpp.o.d"
  "/root/repo/src/core/buffer_pool.cpp" "src/CMakeFiles/stronghold.dir/core/buffer_pool.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/core/buffer_pool.cpp.o.d"
  "/root/repo/src/core/byte_budget_pool.cpp" "src/CMakeFiles/stronghold.dir/core/byte_budget_pool.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/core/byte_budget_pool.cpp.o.d"
  "/root/repo/src/core/checkpoint.cpp" "src/CMakeFiles/stronghold.dir/core/checkpoint.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/core/checkpoint.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/CMakeFiles/stronghold.dir/core/engine.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/core/engine.cpp.o.d"
  "/root/repo/src/core/layer_store.cpp" "src/CMakeFiles/stronghold.dir/core/layer_store.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/core/layer_store.cpp.o.d"
  "/root/repo/src/core/monolithic.cpp" "src/CMakeFiles/stronghold.dir/core/monolithic.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/core/monolithic.cpp.o.d"
  "/root/repo/src/core/optimizer_pool.cpp" "src/CMakeFiles/stronghold.dir/core/optimizer_pool.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/core/optimizer_pool.cpp.o.d"
  "/root/repo/src/core/window_model.cpp" "src/CMakeFiles/stronghold.dir/core/window_model.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/core/window_model.cpp.o.d"
  "/root/repo/src/data/bpe.cpp" "src/CMakeFiles/stronghold.dir/data/bpe.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/data/bpe.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "src/CMakeFiles/stronghold.dir/data/synthetic.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/data/synthetic.cpp.o.d"
  "/root/repo/src/data/text_corpus.cpp" "src/CMakeFiles/stronghold.dir/data/text_corpus.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/data/text_corpus.cpp.o.d"
  "/root/repo/src/dist/comm_volume.cpp" "src/CMakeFiles/stronghold.dir/dist/comm_volume.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/dist/comm_volume.cpp.o.d"
  "/root/repo/src/dist/dp_trainer.cpp" "src/CMakeFiles/stronghold.dir/dist/dp_trainer.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/dist/dp_trainer.cpp.o.d"
  "/root/repo/src/dist/process_group.cpp" "src/CMakeFiles/stronghold.dir/dist/process_group.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/dist/process_group.cpp.o.d"
  "/root/repo/src/hw/memory_pool.cpp" "src/CMakeFiles/stronghold.dir/hw/memory_pool.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/hw/memory_pool.cpp.o.d"
  "/root/repo/src/hw/transfer.cpp" "src/CMakeFiles/stronghold.dir/hw/transfer.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/hw/transfer.cpp.o.d"
  "/root/repo/src/nn/attention.cpp" "src/CMakeFiles/stronghold.dir/nn/attention.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/nn/attention.cpp.o.d"
  "/root/repo/src/nn/block.cpp" "src/CMakeFiles/stronghold.dir/nn/block.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/nn/block.cpp.o.d"
  "/root/repo/src/nn/embedding.cpp" "src/CMakeFiles/stronghold.dir/nn/embedding.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/nn/embedding.cpp.o.d"
  "/root/repo/src/nn/gpt.cpp" "src/CMakeFiles/stronghold.dir/nn/gpt.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/nn/gpt.cpp.o.d"
  "/root/repo/src/nn/head.cpp" "src/CMakeFiles/stronghold.dir/nn/head.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/nn/head.cpp.o.d"
  "/root/repo/src/nn/layernorm.cpp" "src/CMakeFiles/stronghold.dir/nn/layernorm.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/nn/layernorm.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/CMakeFiles/stronghold.dir/nn/linear.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/nn/linear.cpp.o.d"
  "/root/repo/src/nn/mlp.cpp" "src/CMakeFiles/stronghold.dir/nn/mlp.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/nn/mlp.cpp.o.d"
  "/root/repo/src/nn/moe.cpp" "src/CMakeFiles/stronghold.dir/nn/moe.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/nn/moe.cpp.o.d"
  "/root/repo/src/optim/optimizer.cpp" "src/CMakeFiles/stronghold.dir/optim/optimizer.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/optim/optimizer.cpp.o.d"
  "/root/repo/src/parallel/thread_pool.cpp" "src/CMakeFiles/stronghold.dir/parallel/thread_pool.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/parallel/thread_pool.cpp.o.d"
  "/root/repo/src/sim/cost_model.cpp" "src/CMakeFiles/stronghold.dir/sim/cost_model.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/sim/cost_model.cpp.o.d"
  "/root/repo/src/sim/des_replay.cpp" "src/CMakeFiles/stronghold.dir/sim/des_replay.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/sim/des_replay.cpp.o.d"
  "/root/repo/src/sim/event_engine.cpp" "src/CMakeFiles/stronghold.dir/sim/event_engine.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/sim/event_engine.cpp.o.d"
  "/root/repo/src/sim/hardware.cpp" "src/CMakeFiles/stronghold.dir/sim/hardware.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/sim/hardware.cpp.o.d"
  "/root/repo/src/sim/resource.cpp" "src/CMakeFiles/stronghold.dir/sim/resource.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/sim/resource.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/stronghold.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/sim/trace.cpp.o.d"
  "/root/repo/src/storage/swap_file.cpp" "src/CMakeFiles/stronghold.dir/storage/swap_file.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/storage/swap_file.cpp.o.d"
  "/root/repo/src/tensor/dropout.cpp" "src/CMakeFiles/stronghold.dir/tensor/dropout.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/tensor/dropout.cpp.o.d"
  "/root/repo/src/tensor/half.cpp" "src/CMakeFiles/stronghold.dir/tensor/half.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/tensor/half.cpp.o.d"
  "/root/repo/src/tensor/ops.cpp" "src/CMakeFiles/stronghold.dir/tensor/ops.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/tensor/ops.cpp.o.d"
  "/root/repo/src/tensor/rng.cpp" "src/CMakeFiles/stronghold.dir/tensor/rng.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/tensor/rng.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/CMakeFiles/stronghold.dir/tensor/tensor.cpp.o" "gcc" "src/CMakeFiles/stronghold.dir/tensor/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for stronghold.
# This may be replaced when dependencies are built.

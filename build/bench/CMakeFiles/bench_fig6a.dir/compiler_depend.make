# Empty compiler generated dependencies file for bench_fig6a.
# This may be replaced when dependencies are built.

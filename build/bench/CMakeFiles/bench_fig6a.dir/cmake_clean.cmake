file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6a.dir/bench_fig6a.cpp.o"
  "CMakeFiles/bench_fig6a.dir/bench_fig6a.cpp.o.d"
  "bench_fig6a"
  "bench_fig6a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig10.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14.dir/bench_fig14.cpp.o"
  "CMakeFiles/bench_fig14.dir/bench_fig14.cpp.o.d"
  "bench_fig14"
  "bench_fig14.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

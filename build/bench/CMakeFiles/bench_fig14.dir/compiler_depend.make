# Empty compiler generated dependencies file for bench_fig14.
# This may be replaced when dependencies are built.

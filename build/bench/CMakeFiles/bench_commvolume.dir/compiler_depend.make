# Empty compiler generated dependencies file for bench_commvolume.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_commvolume.dir/bench_commvolume.cpp.o"
  "CMakeFiles/bench_commvolume.dir/bench_commvolume.cpp.o.d"
  "bench_commvolume"
  "bench_commvolume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_commvolume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_trace.dir/bench_fig4_trace.cpp.o"
  "CMakeFiles/bench_fig4_trace.dir/bench_fig4_trace.cpp.o.d"
  "bench_fig4_trace"
  "bench_fig4_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig6b.
# This may be replaced when dependencies are built.

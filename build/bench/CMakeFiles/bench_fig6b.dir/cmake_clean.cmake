file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6b.dir/bench_fig6b.cpp.o"
  "CMakeFiles/bench_fig6b.dir/bench_fig6b.cpp.o.d"
  "bench_fig6b"
  "bench_fig6b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig13.
# This may be replaced when dependencies are built.

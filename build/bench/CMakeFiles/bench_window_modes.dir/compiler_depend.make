# Empty compiler generated dependencies file for bench_window_modes.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_window_modes.dir/bench_window_modes.cpp.o"
  "CMakeFiles/bench_window_modes.dir/bench_window_modes.cpp.o.d"
  "bench_window_modes"
  "bench_window_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_window_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

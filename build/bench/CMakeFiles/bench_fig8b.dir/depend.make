# Empty dependencies file for bench_fig8b.
# This may be replaced when dependencies are built.

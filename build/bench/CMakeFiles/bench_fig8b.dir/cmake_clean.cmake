file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8b.dir/bench_fig8b.cpp.o"
  "CMakeFiles/bench_fig8b.dir/bench_fig8b.cpp.o.d"
  "bench_fig8b"
  "bench_fig8b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8a.dir/bench_fig8a.cpp.o"
  "CMakeFiles/bench_fig8a.dir/bench_fig8a.cpp.o.d"
  "bench_fig8a"
  "bench_fig8a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

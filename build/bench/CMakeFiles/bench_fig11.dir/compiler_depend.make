# Empty compiler generated dependencies file for bench_fig11.
# This may be replaced when dependencies are built.

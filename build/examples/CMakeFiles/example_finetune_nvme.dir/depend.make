# Empty dependencies file for example_finetune_nvme.
# This may be replaced when dependencies are built.

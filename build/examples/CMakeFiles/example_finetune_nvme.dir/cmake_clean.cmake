file(REMOVE_RECURSE
  "CMakeFiles/example_finetune_nvme.dir/finetune_nvme.cpp.o"
  "CMakeFiles/example_finetune_nvme.dir/finetune_nvme.cpp.o.d"
  "example_finetune_nvme"
  "example_finetune_nvme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_finetune_nvme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

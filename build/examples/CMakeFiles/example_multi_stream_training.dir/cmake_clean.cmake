file(REMOVE_RECURSE
  "CMakeFiles/example_multi_stream_training.dir/multi_stream_training.cpp.o"
  "CMakeFiles/example_multi_stream_training.dir/multi_stream_training.cpp.o.d"
  "example_multi_stream_training"
  "example_multi_stream_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multi_stream_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

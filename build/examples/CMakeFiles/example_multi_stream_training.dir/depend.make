# Empty dependencies file for example_multi_stream_training.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_run_experiment.dir/run_experiment.cpp.o"
  "CMakeFiles/example_run_experiment.dir/run_experiment.cpp.o.d"
  "example_run_experiment"
  "example_run_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_run_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

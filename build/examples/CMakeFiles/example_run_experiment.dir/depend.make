# Empty dependencies file for example_run_experiment.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_char_lm.dir/char_lm.cpp.o"
  "CMakeFiles/example_char_lm.dir/char_lm.cpp.o.d"
  "example_char_lm"
  "example_char_lm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_char_lm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for example_char_lm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_knowledge_distillation.dir/knowledge_distillation.cpp.o"
  "CMakeFiles/example_knowledge_distillation.dir/knowledge_distillation.cpp.o.d"
  "example_knowledge_distillation"
  "example_knowledge_distillation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_knowledge_distillation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for example_knowledge_distillation.
# This may be replaced when dependencies are built.

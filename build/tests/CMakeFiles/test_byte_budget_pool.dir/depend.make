# Empty dependencies file for test_byte_budget_pool.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_byte_budget_pool.dir/test_byte_budget_pool.cpp.o"
  "CMakeFiles/test_byte_budget_pool.dir/test_byte_budget_pool.cpp.o.d"
  "test_byte_budget_pool"
  "test_byte_budget_pool.pdb"
  "test_byte_budget_pool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_byte_budget_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_window_model.dir/test_window_model.cpp.o"
  "CMakeFiles/test_window_model.dir/test_window_model.cpp.o.d"
  "test_window_model"
  "test_window_model.pdb"
  "test_window_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_window_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_schedule_clip.dir/test_schedule_clip.cpp.o"
  "CMakeFiles/test_schedule_clip.dir/test_schedule_clip.cpp.o.d"
  "test_schedule_clip"
  "test_schedule_clip.pdb"
  "test_schedule_clip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schedule_clip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_schedule_clip.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_buffer_pool.
# This may be replaced when dependencies are built.

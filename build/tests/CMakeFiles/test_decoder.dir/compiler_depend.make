# Empty compiler generated dependencies file for test_decoder.
# This may be replaced when dependencies are built.

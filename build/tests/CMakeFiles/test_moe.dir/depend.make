# Empty dependencies file for test_moe.
# This may be replaced when dependencies are built.

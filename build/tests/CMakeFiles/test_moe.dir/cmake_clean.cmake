file(REMOVE_RECURSE
  "CMakeFiles/test_moe.dir/test_moe.cpp.o"
  "CMakeFiles/test_moe.dir/test_moe.cpp.o.d"
  "test_moe"
  "test_moe.pdb"
  "test_moe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_moe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

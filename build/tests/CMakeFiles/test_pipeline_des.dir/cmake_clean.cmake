file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_des.dir/test_pipeline_des.cpp.o"
  "CMakeFiles/test_pipeline_des.dir/test_pipeline_des.cpp.o.d"
  "test_pipeline_des"
  "test_pipeline_des.pdb"
  "test_pipeline_des[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_pipeline_des.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_bpe.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_bpe.dir/test_bpe.cpp.o"
  "CMakeFiles/test_bpe.dir/test_bpe.cpp.o.d"
  "test_bpe"
  "test_bpe.pdb"
  "test_bpe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bpe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

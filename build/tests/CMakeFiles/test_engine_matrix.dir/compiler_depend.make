# Empty compiler generated dependencies file for test_engine_matrix.
# This may be replaced when dependencies are built.

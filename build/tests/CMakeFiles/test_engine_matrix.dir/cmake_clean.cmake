file(REMOVE_RECURSE
  "CMakeFiles/test_engine_matrix.dir/test_engine_matrix.cpp.o"
  "CMakeFiles/test_engine_matrix.dir/test_engine_matrix.cpp.o.d"
  "test_engine_matrix"
  "test_engine_matrix.pdb"
  "test_engine_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

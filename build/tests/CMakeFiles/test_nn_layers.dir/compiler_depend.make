# Empty compiler generated dependencies file for test_nn_layers.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_dp_trainer.dir/test_dp_trainer.cpp.o"
  "CMakeFiles/test_dp_trainer.dir/test_dp_trainer.cpp.o.d"
  "test_dp_trainer"
  "test_dp_trainer.pdb"
  "test_dp_trainer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dp_trainer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_dp_trainer.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_grad_accumulation.
# This may be replaced when dependencies are built.

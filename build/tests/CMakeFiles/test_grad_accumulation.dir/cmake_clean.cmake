file(REMOVE_RECURSE
  "CMakeFiles/test_grad_accumulation.dir/test_grad_accumulation.cpp.o"
  "CMakeFiles/test_grad_accumulation.dir/test_grad_accumulation.cpp.o.d"
  "test_grad_accumulation"
  "test_grad_accumulation.pdb"
  "test_grad_accumulation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grad_accumulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_dropout.dir/test_dropout.cpp.o"
  "CMakeFiles/test_dropout.dir/test_dropout.cpp.o.d"
  "test_dropout"
  "test_dropout.pdb"
  "test_dropout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dropout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

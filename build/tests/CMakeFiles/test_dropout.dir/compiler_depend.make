# Empty compiler generated dependencies file for test_dropout.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_bpe[1]_include.cmake")
include("/root/repo/build/tests/test_buffer_pool[1]_include.cmake")
include("/root/repo/build/tests/test_byte_budget_pool[1]_include.cmake")
include("/root/repo/build/tests/test_checkpoint[1]_include.cmake")
include("/root/repo/build/tests/test_cost_model[1]_include.cmake")
include("/root/repo/build/tests/test_decoder[1]_include.cmake")
include("/root/repo/build/tests/test_dist[1]_include.cmake")
include("/root/repo/build/tests/test_dp_trainer[1]_include.cmake")
include("/root/repo/build/tests/test_dropout[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_engine_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_fp16[1]_include.cmake")
include("/root/repo/build/tests/test_grad_accumulation[1]_include.cmake")
include("/root/repo/build/tests/test_half[1]_include.cmake")
include("/root/repo/build/tests/test_hw[1]_include.cmake")
include("/root/repo/build/tests/test_moe[1]_include.cmake")
include("/root/repo/build/tests/test_nn_layers[1]_include.cmake")
include("/root/repo/build/tests/test_ops[1]_include.cmake")
include("/root/repo/build/tests/test_optim[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline_des[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_schedule_clip[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_storage[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_window_model[1]_include.cmake")

// Shared internals of the blocked GEMM substrate: packing routines, the
// register-tiled micro-kernel, and the cache-blocking constants. gemm.cpp
// assembles them into the general matmul; attention_kernel.cpp rides the same
// machinery for the fused tiled attention (scores and context GEMMs per
// KC-sized key tile), so both kernels share one deterministic accumulation
// contract: lane (r, j) of a micro-tile performs the scalar sequence
// acc += a * b over ascending p, independent of thread count and vector width.
//
// Include only from kernel TUs (members of SH_KERNEL_TUS in src/CMakeLists):
// those are compiled with -ffp-contract=off, which the bit-exactness
// guarantees here rely on.
#pragma once

#include <algorithm>
#include <cstdint>

namespace sh::tensor::micro {

// Register micro-tile: MR x NR accumulators (6 x 16 floats) live in
// registers across the whole KC loop. NR = 16 spans one AVX-512 vector or
// two AVX2 vectors; MR = 6 gives enough independent accumulator chains to
// hide vector-add latency while fitting the AVX2 register file (12 ymm
// accumulators + B vectors + broadcast).
constexpr std::int64_t kMR = 6;
constexpr std::int64_t kNR = 16;
// Cache blocking: the packed A panel (MC x KC = 96 KiB) targets L2, the
// packed B strip touched by one micro-kernel call (KC x NR = 16 KiB) L1,
// and the full packed B panel (KC x NC = 512 KiB) L2/L3.
constexpr std::int64_t kMC = 96;
constexpr std::int64_t kKC = 256;
constexpr std::int64_t kNC = 512;

/// Packs op(A)[i0:i0+mc, p0:p0+kc] into MR-row strips: strip r-index varies
/// fastest, zero-padded past mc so the micro-kernel never branches on edges.
/// Element (i, p) of op(A) reads a[p * lda + i] when transposed, else
/// a[i * lda + p] — lda is the storage leading dimension, which lets callers
/// pack head-sized planes out of wider activations (QKV rows, KV-cache
/// slabs) without a gather copy.
inline void pack_a(const float* a, float* ap, std::int64_t i0, std::int64_t mc,
                   std::int64_t p0, std::int64_t kc, bool transpose_a,
                   std::int64_t lda) {
  for (std::int64_t ir = 0; ir < mc; ir += kMR) {
    const std::int64_t mr = std::min(kMR, mc - ir);
    for (std::int64_t p = 0; p < kc; ++p) {
      for (std::int64_t r = 0; r < kMR; ++r) {
        const std::int64_t i = i0 + ir + r;
        *ap++ = r < mr ? (transpose_a ? a[(p0 + p) * lda + i]
                                      : a[i * lda + (p0 + p)])
                       : 0.0f;
      }
    }
  }
}

/// Packs op(B)[p0:p0+kc, j0:j0+nc] into NR-column strips, zero-padded past
/// nc. Element (p, j) of op(B) reads b[j * ldb + p] when transposed, else
/// b[p * ldb + j].
inline void pack_b(const float* b, float* bp, std::int64_t p0, std::int64_t kc,
                   std::int64_t j0, std::int64_t nc, bool transpose_b,
                   std::int64_t ldb) {
  for (std::int64_t jr = 0; jr < nc; jr += kNR) {
    const std::int64_t nr = std::min(kNR, nc - jr);
    for (std::int64_t p = 0; p < kc; ++p) {
      for (std::int64_t j = 0; j < kNR; ++j) {
        const std::int64_t jj = j0 + jr + j;
        *bp++ = j < nr ? (transpose_b ? b[jj * ldb + (p0 + p)]
                                      : b[(p0 + p) * ldb + jj])
                       : 0.0f;
      }
    }
  }
}

/// acc[r, j] += sum_p ap[p, r] * bp[p, j] over a full KC strip. Both panels
/// are contiguous and edge-padded, so this is a branch-free hot loop.
///
/// On GCC/Clang the NR lanes are expressed as a portable vector-extension
/// type so the row accumulators provably stay in SIMD registers for the
/// whole KC loop (plain scalar loops get SLP-vectorized across the *rows*,
/// 4 lanes wide, which is ~4x slower). Lane j of row r performs exactly the
/// scalar sequence acc += a*b over ascending p, so results are identical to
/// the scalar fallback and independent of vector width.
#if defined(__GNUC__) || defined(__clang__)
// One 16-lane vector per micro-tile row. GCC/Clang lower this to a single
// zmm on AVX-512, two ymm on AVX2, or four xmm on SSE — the source stays
// width-agnostic and lane j of row r always performs the scalar sequence
// acc += a * b over ascending p, so results are identical everywhere.
using V16f __attribute__((vector_size(kNR * sizeof(float)), aligned(4),
                          may_alias)) = float;

inline void micro_kernel(std::int64_t kc, const float* ap, const float* bp,
                         float* acc) {
  V16f c0{}, c1{}, c2{}, c3{}, c4{}, c5{};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* av = ap + p * kMR;
    const V16f b = *reinterpret_cast<const V16f*>(bp + p * kNR);
    c0 += av[0] * b;
    c1 += av[1] * b;
    c2 += av[2] * b;
    c3 += av[3] * b;
    c4 += av[4] * b;
    c5 += av[5] * b;
  }
  auto* out = reinterpret_cast<V16f*>(acc);
  out[0] = c0;
  out[1] = c1;
  out[2] = c2;
  out[3] = c3;
  out[4] = c4;
  out[5] = c5;
}
#else
inline void micro_kernel(std::int64_t kc, const float* ap, const float* bp,
                         float* acc) {
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* av = ap + p * kMR;
    const float* bv = bp + p * kNR;
    for (std::int64_t r = 0; r < kMR; ++r) {
      const float ar = av[r];
      float* accr = acc + r * kNR;
      for (std::int64_t j = 0; j < kNR; ++j) accr[j] += ar * bv[j];
    }
  }
}
#endif

/// Writes the valid mr x nr corner of a micro-tile back into C, folding in
/// alpha/beta. The per-row loops are branch-free so both cases vectorize.
inline void write_tile(const float* acc, float* c, std::int64_t ldc,
                       std::int64_t mr, std::int64_t nr, float alpha,
                       float beta) {
  for (std::int64_t r = 0; r < mr; ++r) {
    const float* accr = acc + r * kNR;
    float* crow = c + r * ldc;
    if (beta == 0.0f) {
      for (std::int64_t j = 0; j < nr; ++j) crow[j] = alpha * accr[j];
    } else {
      for (std::int64_t j = 0; j < nr; ++j) {
        crow[j] = alpha * accr[j] + beta * crow[j];
      }
    }
  }
}

}  // namespace sh::tensor::micro

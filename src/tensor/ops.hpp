// Dense kernels for the numeric training substrate. All kernels are
// deterministic and parallelised over rows with sh::parallel::parallel_for.
//
// Matrix arguments are row-major. Shapes are expressed as (rows, cols) pairs
// passed explicitly so the kernels can run over views into flat parameter
// blobs without constructing Tensor objects.
#pragma once

#include <cstdint>
#include <span>

namespace sh::tensor {

/// C = alpha * op(A) @ op(B) + beta * C.
/// op(A) is A (m x k) when transpose_a is false, else A^T with A stored k x m.
/// op(B) is B (k x n) when transpose_b is false, else B^T with B stored n x k.
/// Blocked/packed/register-tiled (gemm.cpp); deterministic accumulation order
/// per output element regardless of thread count.
void matmul(const float* a, const float* b, float* c, std::int64_t m,
            std::int64_t n, std::int64_t k, bool transpose_a, bool transpose_b,
            float alpha = 1.0f, float beta = 0.0f);

/// Fused GEMM + bias epilogue: C = op(A) @ op(B) + bias (bias broadcast over
/// rows). Exactly equal to matmul(...) followed by add_bias(...).
void matmul_bias(const float* a, const float* b, const float* bias, float* c,
                 std::int64_t m, std::int64_t n, std::int64_t k,
                 bool transpose_a, bool transpose_b);

/// Fused GEMM + bias + GELU epilogue: out = gelu(op(A) @ op(B) + bias).
/// When `pre` is non-null the pre-activation (GEMM + bias) is also stored
/// there for the backward pass, at no extra memory pass. Exactly equal to
/// matmul + add_bias + gelu_forward.
void matmul_bias_gelu(const float* a, const float* b, const float* bias,
                      float* pre, float* out, std::int64_t m, std::int64_t n,
                      std::int64_t k, bool transpose_a, bool transpose_b);

/// rows x cols matrix: out[r, :] = in[r, :] + bias[:].
void add_bias(const float* in, const float* bias, float* out,
              std::int64_t rows, std::int64_t cols);

/// bias_grad[c] += sum_r grad[r, c]. Parallel over disjoint column slices;
/// per column the rows accumulate in ascending order, so the result is
/// deterministic and identical to the serial loop.
void bias_grad(const float* grad, float* bias_grad, std::int64_t rows,
               std::int64_t cols);

/// GELU activation (tanh approximation, as used in GPT-style models).
void gelu_forward(const float* in, float* out, std::int64_t n);
/// grad_in[i] = grad_out[i] * d GELU(in[i]) / d in[i].
void gelu_backward(const float* in, const float* grad_out, float* grad_in,
                   std::int64_t n);
/// Fused GELU backward + bias-grad reduction over a rows x cols matrix:
/// grad_in[r, c] = grad_out[r, c] * gelu'(in[r, c]) and
/// bias_grad[c] += sum_r grad_in[r, c], in one pass over the data.
/// Exactly equal to gelu_backward(...) followed by bias_grad(...).
void gelu_backward_bias_grad(const float* in, const float* grad_out,
                             float* grad_in, float* bias_grad,
                             std::int64_t rows, std::int64_t cols);

/// Row-wise softmax over a rows x cols matrix.
void softmax_rows(const float* in, float* out, std::int64_t rows,
                  std::int64_t cols);
/// Backward of row-wise softmax: grad_in = (grad_out - dot(grad_out, y)) * y.
void softmax_rows_backward(const float* y, const float* grad_out,
                           float* grad_in, std::int64_t rows,
                           std::int64_t cols);

/// Row-wise scaled masked softmax used by causal attention.
/// Scores is rows x cols; entries with col > allowed[row] are masked to -inf.
void causal_softmax_rows(float* scores, std::int64_t rows, std::int64_t cols,
                         const std::int64_t* allowed, float scale);

struct LayerNormStats {
  float mean;
  float rstd;
};

/// y[r, :] = (x[r, :] - mean_r) * rstd_r * gamma + beta. Saves per-row stats.
void layernorm_forward(const float* x, const float* gamma, const float* beta,
                       float* y, LayerNormStats* stats, std::int64_t rows,
                       std::int64_t cols, float eps = 1e-5f);

/// Backward of layernorm; accumulates dgamma/dbeta.
void layernorm_backward(const float* x, const float* gamma,
                        const LayerNormStats* stats, const float* grad_y,
                        float* grad_x, float* dgamma, float* dbeta,
                        std::int64_t rows, std::int64_t cols);

/// out[r, :] = table[ids[r], :].
void embedding_gather(const float* table, const std::int32_t* ids, float* out,
                      std::int64_t rows, std::int64_t cols);
/// table_grad[ids[r], :] += grad[r, :]. Duplicate ids are a scatter hazard
/// across rows, so parallelism is over disjoint column slices instead; rows
/// accumulate in ascending order per column (deterministic, race-free).
void embedding_scatter_add(const float* grad, const std::int32_t* ids,
                           float* table_grad, std::int64_t rows,
                           std::int64_t cols);

/// Fused softmax + cross-entropy over logits (rows x classes) with integer
/// targets. Returns mean loss; writes grad_logits = (softmax - onehot)/rows.
float cross_entropy(const float* logits, const std::int32_t* targets,
                    float* grad_logits, std::int64_t rows,
                    std::int64_t classes);

// Elementwise helpers.
void axpy(float alpha, const float* x, float* y, std::int64_t n);  // y += a*x
void scale(float alpha, float* x, std::int64_t n);
void add(const float* a, const float* b, float* out, std::int64_t n);
float dot(const float* a, const float* b, std::int64_t n);
float l2_norm(const float* a, std::int64_t n);
float max_abs_diff(const float* a, const float* b, std::int64_t n);

}  // namespace sh::tensor

#include "tensor/half.hpp"

#include <bit>
#include <cmath>

namespace sh::tensor {

half float_to_half(float value) noexcept {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  const std::uint32_t exp = (bits >> 23) & 0xffu;
  std::uint32_t mant = bits & 0x7fffffu;

  if (exp == 0xffu) {  // inf or NaN
    if (mant != 0) return static_cast<half>(sign | 0x7e00u);  // quiet NaN
    return static_cast<half>(sign | 0x7c00u);                 // infinity
  }

  // Re-bias exponent: fp32 bias 127, fp16 bias 15.
  const int e = static_cast<int>(exp) - 127 + 15;
  if (e >= 31) {  // overflow -> infinity
    return static_cast<half>(sign | 0x7c00u);
  }
  if (e <= 0) {
    // Subnormal (or zero) in fp16.
    if (e < -10) return static_cast<half>(sign);  // too small -> +-0
    // Add the implicit leading 1 and shift right; round to nearest even.
    mant |= 0x800000u;
    const unsigned shift = static_cast<unsigned>(14 - e);
    const std::uint32_t sub = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1u);
    const std::uint32_t halfway = 1u << (shift - 1);
    std::uint32_t result = sub;
    if (rem > halfway || (rem == halfway && (sub & 1u))) ++result;
    return static_cast<half>(sign | result);
  }
  // Normal number: keep 10 mantissa bits, round to nearest even.
  std::uint32_t result =
      sign | (static_cast<std::uint32_t>(e) << 10) | (mant >> 13);
  const std::uint32_t rem = mant & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (result & 1u))) {
    ++result;  // may carry into the exponent, which is still correct
  }
  return static_cast<half>(result);
}

float half_to_float(half value) noexcept {
  const std::uint32_t sign = (static_cast<std::uint32_t>(value) & 0x8000u) << 16;
  const std::uint32_t exp = (value >> 10) & 0x1fu;
  const std::uint32_t mant = value & 0x3ffu;

  std::uint32_t bits;
  if (exp == 0) {
    if (mant == 0) {
      bits = sign;  // +-0
    } else {
      // Subnormal: normalise.
      int e = -1;
      std::uint32_t m = mant;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      bits = sign | static_cast<std::uint32_t>(127 - 15 - e) << 23 |
             ((m & 0x3ffu) << 13);
    }
  } else if (exp == 0x1fu) {
    bits = sign | 0x7f800000u | (mant << 13);  // inf / NaN
  } else {
    bits = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(bits);
}

void convert_to_half(const float* src, half* dst, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] = float_to_half(src[i]);
}

void convert_to_float(const half* src, float* dst, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] = half_to_float(src[i]);
}

void quantize_fp16_inplace(float* data, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = half_to_float(float_to_half(data[i]));
  }
}

bool has_non_finite_fp16(const float* data, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(half_to_float(float_to_half(data[i])))) return true;
  }
  return false;
}

}  // namespace sh::tensor

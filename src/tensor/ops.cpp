#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "parallel/parallel_for.hpp"
#include "tensor/gelu_scalar.hpp"

namespace sh::tensor {

// matmul / matmul_bias / matmul_bias_gelu live in gemm.cpp (blocked GEMM).

namespace {
constexpr std::size_t kRowGrain = 4;
// Column-slice grain for column-partitioned reductions (bias_grad,
// embedding_scatter_add): wide enough that each slice spans whole cache
// lines, so threads never write-share a line.
constexpr std::size_t kColGrain = 64;

using detail::gelu_grad_scalar;
using detail::gelu_scalar;
}  // namespace

void add_bias(const float* in, const float* bias, float* out, std::int64_t rows,
              std::int64_t cols) {
  sh::parallel::parallel_for(0, static_cast<std::size_t>(rows), kRowGrain,
                             [&](std::size_t lo, std::size_t hi) {
                               for (std::size_t r = lo; r < hi; ++r) {
                                 const float* i = in + r * cols;
                                 float* o = out + r * cols;
                                 for (std::int64_t c = 0; c < cols; ++c) {
                                   o[c] = i[c] + bias[c];
                                 }
                               }
                             });
}

void bias_grad(const float* grad, float* bg, std::int64_t rows,
               std::int64_t cols) {
  // Each thread owns a disjoint column slice and sums rows in ascending
  // order — race-free and bit-identical to the serial loop.
  sh::parallel::parallel_for(
      0, static_cast<std::size_t>(cols), kColGrain,
      [&](std::size_t lo, std::size_t hi) {
        for (std::int64_t r = 0; r < rows; ++r) {
          const float* g = grad + r * cols;
          for (std::size_t c = lo; c < hi; ++c) bg[c] += g[c];
        }
      });
}

void gelu_forward(const float* in, float* out, std::int64_t n) {
  sh::parallel::parallel_for(0, static_cast<std::size_t>(n), 1024,
                             [&](std::size_t lo, std::size_t hi) {
                               for (std::size_t i = lo; i < hi; ++i) {
                                 out[i] = gelu_scalar(in[i]);
                               }
                             });
}

void gelu_backward(const float* in, const float* grad_out, float* grad_in,
                   std::int64_t n) {
  sh::parallel::parallel_for(
      0, static_cast<std::size_t>(n), 1024,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          grad_in[i] = grad_out[i] * gelu_grad_scalar(in[i]);
        }
      });
}

void gelu_backward_bias_grad(const float* in, const float* grad_out,
                             float* grad_in, float* bg, std::int64_t rows,
                             std::int64_t cols) {
  // Column-partitioned like bias_grad so the bg accumulation is race-free;
  // grad_in entries are written exactly once each. Per element the math is
  // gelu_backward's followed by bias_grad's, so the fusion is exact.
  sh::parallel::parallel_for(
      0, static_cast<std::size_t>(cols), kColGrain,
      [&](std::size_t lo, std::size_t hi) {
        for (std::int64_t r = 0; r < rows; ++r) {
          const float* x = in + r * cols;
          const float* go = grad_out + r * cols;
          float* gi = grad_in + r * cols;
          for (std::size_t c = lo; c < hi; ++c) {
            const float g = go[c] * gelu_grad_scalar(x[c]);
            gi[c] = g;
            bg[c] += g;
          }
        }
      });
}

void softmax_rows(const float* in, float* out, std::int64_t rows,
                  std::int64_t cols) {
  sh::parallel::parallel_for(
      0, static_cast<std::size_t>(rows), kRowGrain,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          const float* x = in + r * cols;
          float* y = out + r * cols;
          float mx = -std::numeric_limits<float>::infinity();
          for (std::int64_t c = 0; c < cols; ++c) mx = std::max(mx, x[c]);
          float sum = 0.0f;
          for (std::int64_t c = 0; c < cols; ++c) {
            y[c] = std::exp(x[c] - mx);
            sum += y[c];
          }
          const float inv = 1.0f / sum;
          for (std::int64_t c = 0; c < cols; ++c) y[c] *= inv;
        }
      });
}

void softmax_rows_backward(const float* y, const float* grad_out,
                           float* grad_in, std::int64_t rows,
                           std::int64_t cols) {
  sh::parallel::parallel_for(
      0, static_cast<std::size_t>(rows), kRowGrain,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          const float* yr = y + r * cols;
          const float* go = grad_out + r * cols;
          float* gi = grad_in + r * cols;
          float d = 0.0f;
          for (std::int64_t c = 0; c < cols; ++c) d += go[c] * yr[c];
          for (std::int64_t c = 0; c < cols; ++c) gi[c] = (go[c] - d) * yr[c];
        }
      });
}

void causal_softmax_rows(float* scores, std::int64_t rows, std::int64_t cols,
                         const std::int64_t* allowed, float scale) {
  sh::parallel::parallel_for(
      0, static_cast<std::size_t>(rows), kRowGrain,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          float* x = scores + r * cols;
          const std::int64_t lim = allowed[r];
          float mx = -std::numeric_limits<float>::infinity();
          for (std::int64_t c = 0; c <= lim; ++c) {
            x[c] *= scale;
            mx = std::max(mx, x[c]);
          }
          float sum = 0.0f;
          for (std::int64_t c = 0; c <= lim; ++c) {
            x[c] = std::exp(x[c] - mx);
            sum += x[c];
          }
          const float inv = 1.0f / sum;
          for (std::int64_t c = 0; c <= lim; ++c) x[c] *= inv;
          for (std::int64_t c = lim + 1; c < cols; ++c) x[c] = 0.0f;
        }
      });
}

void layernorm_forward(const float* x, const float* gamma, const float* beta,
                       float* y, LayerNormStats* stats, std::int64_t rows,
                       std::int64_t cols, float eps) {
  sh::parallel::parallel_for(
      0, static_cast<std::size_t>(rows), kRowGrain,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          const float* xr = x + r * cols;
          float* yr = y + r * cols;
          float mean = 0.0f;
          for (std::int64_t c = 0; c < cols; ++c) mean += xr[c];
          mean /= static_cast<float>(cols);
          float var = 0.0f;
          for (std::int64_t c = 0; c < cols; ++c) {
            const float d = xr[c] - mean;
            var += d * d;
          }
          var /= static_cast<float>(cols);
          const float rstd = 1.0f / std::sqrt(var + eps);
          stats[r] = {mean, rstd};
          for (std::int64_t c = 0; c < cols; ++c) {
            yr[c] = (xr[c] - mean) * rstd * gamma[c] + beta[c];
          }
        }
      });
}

void layernorm_backward(const float* x, const float* gamma,
                        const LayerNormStats* stats, const float* grad_y,
                        float* grad_x, float* dgamma, float* dbeta,
                        std::int64_t rows, std::int64_t cols) {
  // dgamma/dbeta accumulation is serial over rows (shared accumulators).
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * cols;
    const float* gy = grad_y + r * cols;
    const float mean = stats[r].mean;
    const float rstd = stats[r].rstd;
    for (std::int64_t c = 0; c < cols; ++c) {
      const float xhat = (xr[c] - mean) * rstd;
      dgamma[c] += gy[c] * xhat;
      dbeta[c] += gy[c];
    }
  }
  sh::parallel::parallel_for(
      0, static_cast<std::size_t>(rows), kRowGrain,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          const float* xr = x + r * cols;
          const float* gy = grad_y + r * cols;
          float* gx = grad_x + r * cols;
          const float mean = stats[r].mean;
          const float rstd = stats[r].rstd;
          float sum_g = 0.0f;
          float sum_gx = 0.0f;
          for (std::int64_t c = 0; c < cols; ++c) {
            const float g = gy[c] * gamma[c];
            const float xhat = (xr[c] - mean) * rstd;
            sum_g += g;
            sum_gx += g * xhat;
          }
          const float inv_cols = 1.0f / static_cast<float>(cols);
          for (std::int64_t c = 0; c < cols; ++c) {
            const float g = gy[c] * gamma[c];
            const float xhat = (xr[c] - mean) * rstd;
            gx[c] = rstd * (g - inv_cols * (sum_g + xhat * sum_gx));
          }
        }
      });
}

void embedding_gather(const float* table, const std::int32_t* ids, float* out,
                      std::int64_t rows, std::int64_t cols) {
  sh::parallel::parallel_for(
      0, static_cast<std::size_t>(rows), kRowGrain,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          const float* src = table + static_cast<std::int64_t>(ids[r]) * cols;
          std::copy_n(src, cols, out + r * cols);
        }
      });
}

void embedding_scatter_add(const float* grad, const std::int32_t* ids,
                           float* table_grad, std::int64_t rows,
                           std::int64_t cols) {
  // Duplicate ids make row-parallel scatter racy, so threads partition the
  // *columns*: each owns a disjoint column slice of every table row and
  // walks rows in ascending order — race-free and deterministic.
  sh::parallel::parallel_for(
      0, static_cast<std::size_t>(cols), kColGrain,
      [&](std::size_t lo, std::size_t hi) {
        for (std::int64_t r = 0; r < rows; ++r) {
          float* dst = table_grad + static_cast<std::int64_t>(ids[r]) * cols;
          const float* src = grad + r * cols;
          for (std::size_t c = lo; c < hi; ++c) dst[c] += src[c];
        }
      });
}

float cross_entropy(const float* logits, const std::int32_t* targets,
                    float* grad_logits, std::int64_t rows,
                    std::int64_t classes) {
  double loss = 0.0;
  const float inv_rows = 1.0f / static_cast<float>(rows);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* x = logits + r * classes;
    float* g = grad_logits + r * classes;
    float mx = -std::numeric_limits<float>::infinity();
    for (std::int64_t c = 0; c < classes; ++c) mx = std::max(mx, x[c]);
    double sum = 0.0;
    for (std::int64_t c = 0; c < classes; ++c) {
      g[c] = std::exp(x[c] - mx);
      sum += g[c];
    }
    const auto t = static_cast<std::int64_t>(targets[r]);
    loss += -(static_cast<double>(x[t]) - mx - std::log(sum));
    const float inv = static_cast<float>(1.0 / sum);
    for (std::int64_t c = 0; c < classes; ++c) g[c] *= inv * inv_rows;
    g[t] -= inv_rows;
  }
  return static_cast<float>(loss / static_cast<double>(rows));
}

void axpy(float alpha, const float* x, float* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scale(float alpha, float* x, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) x[i] *= alpha;
}

void add(const float* a, const float* b, float* out, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

float dot(const float* a, const float* b, std::int64_t n) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) acc += static_cast<double>(a[i]) * b[i];
  return static_cast<float>(acc);
}

float l2_norm(const float* a, std::int64_t n) {
  return std::sqrt(dot(a, a, n));
}

float max_abs_diff(const float* a, const float* b, std::int64_t n) {
  float m = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

}  // namespace sh::tensor

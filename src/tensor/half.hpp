// IEEE 754 binary16 conversions for mixed-precision training.
//
// STRONGHOLD's numeric substrate computes in FP32, but mixed-precision mode
// stores parameters and gradients in FP16 across the CPU<->GPU link (halving
// window memory and transfer traffic, as in [12]/ZeRO-Offload). The
// conversions here implement round-to-nearest-even with full subnormal,
// infinity and NaN handling.
#pragma once

#include <cstdint>
#include <cstddef>

namespace sh::tensor {

using half = std::uint16_t;

/// float -> binary16 with round-to-nearest-even. Values beyond the fp16
/// range become +-infinity; NaN payloads collapse to a quiet NaN.
half float_to_half(float value) noexcept;

/// binary16 -> float (exact).
float half_to_float(half value) noexcept;

void convert_to_half(const float* src, half* dst, std::size_t n) noexcept;
void convert_to_float(const half* src, float* dst, std::size_t n) noexcept;

/// Rounds every value through fp16 in place — models an fp16 copy landing in
/// an fp32 compute buffer.
void quantize_fp16_inplace(float* data, std::size_t n) noexcept;

/// True if any value is NaN or +-infinity after fp16 quantization (overflow
/// detection for dynamic loss scaling).
bool has_non_finite_fp16(const float* data, std::size_t n) noexcept;

/// Largest finite fp16 value.
inline constexpr float kHalfMax = 65504.0f;

}  // namespace sh::tensor

#include "tensor/tensor.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "mem/device_arena.hpp"

namespace sh::tensor {

Shape::Shape(std::initializer_list<std::int64_t> dims) {
  if (dims.size() > dims_.size()) {
    throw std::invalid_argument("Shape supports at most 4 dimensions");
  }
  rank_ = dims.size();
  std::size_t i = 0;
  for (std::int64_t d : dims) {
    if (d < 0) throw std::invalid_argument("negative dimension");
    dims_[i++] = d;
  }
}

std::int64_t Shape::dim(std::size_t i) const {
  if (i >= rank_) throw std::out_of_range("Shape::dim index out of range");
  return dims_[i];
}

std::int64_t Shape::numel() const noexcept {
  std::int64_t n = 1;
  for (std::size_t i = 0; i < rank_; ++i) n *= dims_[i];
  return rank_ == 0 ? 0 : n;
}

bool Shape::operator==(const Shape& other) const noexcept {
  if (rank_ != other.rank_) return false;
  return std::equal(dims_.begin(), dims_.begin() + rank_, other.dims_.begin());
}

std::string Shape::str() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < rank_; ++i) {
    if (i) os << ", ";
    os << dims_[i];
  }
  os << ']';
  return os.str();
}

Tensor Tensor::zeros(Shape shape) {
  Tensor t;
  t.shape_ = shape;
  const auto n = static_cast<std::size_t>(shape.numel());
  // Accounting hook (mem::ScopedTensorCharge): inside a charge scope the
  // storage is soft-charged to a device-arena region, and uncharged by the
  // deleter when the last reference dies. Same zero-initialised buffer
  // either way — numerics are bit-identical with and without a scope.
  if (const auto* scope = mem::detail::current_tensor_charge()) {
    auto ledger = scope->ledger;
    const std::string region = scope->region;
    const std::size_t bytes = n * sizeof(float);
    mem::detail::ledger_charge_soft(*ledger, region, bytes);
    t.storage_ = std::shared_ptr<float[]>(
        new float[n](), [ledger, region, bytes](float* p) {
          delete[] p;
          mem::detail::ledger_uncharge_soft(*ledger, region, bytes);
        });
  } else {
    t.storage_ = std::shared_ptr<float[]>(new float[n]());
  }
  t.data_ = t.storage_.get();
  return t;
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t = zeros(shape);
  t.fill(value);
  return t;
}

Tensor Tensor::view(Shape shape, float* data) {
  Tensor t;
  t.shape_ = shape;
  t.data_ = data;
  return t;
}

void Tensor::rebind(float* data) {
  if (storage_) throw std::logic_error("cannot rebind an owning tensor");
  data_ = data;
}

Tensor Tensor::clone() const {
  Tensor t = zeros(shape_);
  std::memcpy(t.data_, data_, sizeof(float) * static_cast<std::size_t>(numel()));
  return t;
}

void Tensor::copy_from(const Tensor& src) {
  if (src.numel() != numel()) {
    throw std::invalid_argument("copy_from: numel mismatch " +
                                src.shape().str() + " vs " + shape_.str());
  }
  std::memcpy(data_, src.data_, sizeof(float) * static_cast<std::size_t>(numel()));
}

void Tensor::fill(float value) {
  std::fill_n(data_, static_cast<std::size_t>(numel()), value);
}

}  // namespace sh::tensor

// Fused tiled causal attention on the blocked-GEMM micro-kernel substrate.
//
// One pass over KC-sized key tiles with online softmax: per query row the
// kernel keeps a running max m, normaliser l, and context accumulator, and
// never materialises the [seq, seq] score matrix — peak workspace is one
// query-panel x key-tile score tile (96 x 256 floats per thread), so
// attention activations scale O(seq * hidden) instead of O(seq^2). The
// backward recomputes tile scores from Q/K/V plus the saved per-row (m, l)
// statistics (flash-attention style, di = dot(out, d_out) precomputed).
//
// Determinism: work is partitioned over (batch, head, panel) units, each
// owned by exactly one thread; inside a unit, key tiles accumulate in fixed
// ascending order and every score element is the micro-kernel's scalar chain
// acc += q*k over ascending head-dim — independent of thread count, so the
// monolithic and offloaded training paths stay bit-identical. The backward's
// score recomputation replays the exact same op sequence (same tile
// boundaries, same micro-kernel), so the recovered softmax weights equal the
// forward's bit-for-bit.
#pragma once

#include <cstdint>

namespace sh::tensor {

/// Routes CausalSelfAttention through the original materialised-probs
/// implementation instead of the fused tiled kernel. Escape hatch for
/// benches (before/after in one binary) and the fused-vs-reference pinning
/// tests; same pattern as set_use_reference_gemm. Not thread-safe against
/// concurrent forward/backward calls.
void set_use_fused_attention(bool enabled);
bool use_fused_attention();

/// Strided view of the per-(batch, head) attention planes inside a larger
/// tensor. Row r of plane (b, h) starts at
///   data + b * batch_stride + h * head_stride + r * row_stride
/// and holds head_dim contiguous floats. This addresses head slices of a
/// [tokens, 3*hidden] QKV activation (head_stride = head_dim, row_stride =
/// 3*hidden) and KV-cache slabs (head_stride = capacity*head_dim, row_stride
/// = head_dim) alike, so no gather/scatter copies are needed.
struct AttnPlanes {
  const float* data;
  std::int64_t batch_stride;
  std::int64_t head_stride;
  std::int64_t row_stride;

  const float* plane(std::int64_t b, std::int64_t h) const {
    return data + b * batch_stride + h * head_stride;
  }
};

/// Mutable counterpart of AttnPlanes for kernel outputs.
struct AttnPlanesMut {
  float* data;
  std::int64_t batch_stride;
  std::int64_t head_stride;
  std::int64_t row_stride;

  float* plane(std::int64_t b, std::int64_t h) const {
    return data + b * batch_stride + h * head_stride;
  }
};

/// out(b,h,i,:) = softmax_j(scale * q(b,h,i,:) . k(b,h,j,:)) @ v(b,h,j,:)
/// over the causal prefix j <= causal_offset + i. k_rows bounds j (the KV
/// prefix length; for training q_rows == k_rows and causal_offset == 0, for
/// incremental decode q_rows is the new-token count and causal_offset the
/// prefix position). When row_max/row_sum are non-null they receive the
/// per-row running max and normaliser ([batch * heads * q_rows], plane-major)
/// needed by attention_backward; pass nullptr for inference.
void attention_forward(const AttnPlanes& q, const AttnPlanes& k,
                       const AttnPlanes& v, const AttnPlanesMut& out,
                       float* row_max, float* row_sum, std::int64_t batch,
                       std::int64_t heads, std::int64_t q_rows,
                       std::int64_t k_rows, std::int64_t head_dim,
                       std::int64_t causal_offset, float scale);

/// Gradient of attention_forward for the training case (q_rows == k_rows ==
/// seq, causal_offset == 0). Recomputes tile scores from q/k/v and recovers
/// the softmax weights from (row_max, row_sum); dq/dk/dv rows are written
/// (not accumulated), so the planes may alias a fresh grad-QKV tensor
/// directly.
void attention_backward(const AttnPlanes& q, const AttnPlanes& k,
                        const AttnPlanes& v, const AttnPlanes& out,
                        const AttnPlanes& d_out, const float* row_max,
                        const float* row_sum, const AttnPlanesMut& dq,
                        const AttnPlanesMut& dk, const AttnPlanesMut& dv,
                        std::int64_t batch, std::int64_t heads,
                        std::int64_t seq, std::int64_t head_dim, float scale);

}  // namespace sh::tensor

// Minimal FP32 tensor used by the numeric training substrate.
//
// Two ownership modes are supported:
//  * owning   — backed by a shared, heap-allocated buffer;
//  * viewing  — a non-owning (shape, pointer) pair into externally managed
//               memory. The STRONGHOLD offload engine rebinds parameter
//               views into whichever memory pool (CPU blob or GPU arena
//               slot) currently holds the layer, exactly as the paper's
//               runtime swaps a layer's tensors between devices.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>

#include "tensor/dtype.hpp"

namespace sh::tensor {

/// Row-major shape with up to four dimensions.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims);

  std::size_t rank() const noexcept { return rank_; }
  std::int64_t dim(std::size_t i) const;
  std::int64_t numel() const noexcept;
  bool operator==(const Shape& other) const noexcept;
  std::string str() const;

 private:
  std::array<std::int64_t, 4> dims_{};
  std::size_t rank_ = 0;
};

/// Dense FP32 tensor (owning or viewing).
class Tensor {
 public:
  Tensor() = default;

  /// Allocates an owning, zero-initialised tensor.
  static Tensor zeros(Shape shape);
  /// Allocates an owning tensor filled with `value`.
  static Tensor full(Shape shape, float value);
  /// Wraps external memory without taking ownership.
  static Tensor view(Shape shape, float* data);

  const Shape& shape() const noexcept { return shape_; }
  std::int64_t numel() const noexcept { return shape_.numel(); }
  bool defined() const noexcept { return data_ != nullptr; }
  bool owns() const noexcept { return storage_ != nullptr; }

  float* data() noexcept { return data_; }
  const float* data() const noexcept { return data_; }
  std::span<float> span() noexcept {
    return {data_, static_cast<std::size_t>(numel())};
  }
  std::span<const float> span() const noexcept {
    return {data_, static_cast<std::size_t>(numel())};
  }

  float& at(std::int64_t i) { return data_[i]; }
  float at(std::int64_t i) const { return data_[i]; }

  /// Dtype-tagged view of this tensor's storage (always f32 today); the
  /// boundary type the byte-typed memory substrate works in.
  StorageView storage() noexcept {
    return StorageView(data_, DType::f32, static_cast<std::size_t>(numel()));
  }

  /// Re-points a view at new memory (shape is unchanged). Owning tensors
  /// cannot be rebound.
  void rebind(float* data);

  /// Deep copy into a fresh owning tensor.
  Tensor clone() const;

  /// Copies the contents of `src` (same numel) into this tensor.
  void copy_from(const Tensor& src);

  void fill(float value);

 private:
  Shape shape_;
  float* data_ = nullptr;
  std::shared_ptr<float[]> storage_;
};

}  // namespace sh::tensor

// Dtype substrate for the byte-typed memory stack.
//
// STRONGHOLD's working window is bandwidth-bound: every fault-in/eviction
// pays PCIe bytes and the window size is capped by device bytes. Storing
// window-resident tensors as bfloat16 halves both while the CPU optimizer
// keeps FP32 masters (the Horizon-LM / NeuronFabric split). bfloat16 keeps
// the full FP32 exponent range, so unlike fp16 it needs no loss scaling;
// the only precision event is the 16-bit mantissa truncation, implemented
// here as round-to-nearest-even plus an opt-in stochastic-rounding mode
// (unbiased in expectation, seeded from tensor::Rng for determinism).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sh::tensor {

class Rng;  // rng.hpp — only needed by the stochastic-rounding entry points

/// bfloat16: the top 16 bits of an IEEE 754 binary32.
using bf16 = std::uint16_t;

/// Element encodings supported by the byte-typed window/transfer stack.
/// FP32 is the default and the bit-identity reference; BF16 is a
/// window-resident encoding (FP32 masters stay the persisted truth).
enum class DType : std::uint8_t { f32 = 0, bf16 = 1 };

/// How f32 -> bf16 conversions resolve the discarded mantissa bits.
enum class Rounding : std::uint8_t { nearest_even = 0, stochastic = 1 };

constexpr std::size_t bytes_per_element(DType dt) noexcept {
  return dt == DType::bf16 ? 2u : 4u;
}

const char* dtype_name(DType dt) noexcept;
const char* rounding_name(Rounding r) noexcept;

/// Parses "f32"/"fp32"/"float32" or "bf16"/"bfloat16" (case-insensitive).
/// Throws std::invalid_argument on anything else.
DType parse_dtype(std::string_view name);

/// Parses "rne"/"nearest"/"nearest_even" or "sr"/"stochastic".
/// Throws std::invalid_argument on anything else.
Rounding parse_rounding(std::string_view name);

/// float -> bfloat16 with round-to-nearest-even. Infinities pass through;
/// NaN payloads collapse to a quiet NaN with the sign preserved; values
/// whose magnitude rounds past the finite range become +-infinity.
bf16 float_to_bf16(float value) noexcept;

/// float -> bfloat16 with stochastic rounding: 16 random low bits are added
/// before truncation, so E[result] equals the input. Infinities and NaNs
/// are handled as in float_to_bf16. Deterministic for a given Rng state.
bf16 float_to_bf16_stochastic(float value, Rng& rng) noexcept;

/// bfloat16 -> float (exact).
float bf16_to_float(bf16 value) noexcept;

void convert_float_to_bf16(const float* src, bf16* dst, std::size_t n) noexcept;
void convert_float_to_bf16_stochastic(const float* src, bf16* dst,
                                      std::size_t n, Rng& rng) noexcept;
void convert_bf16_to_float(const bf16* src, float* dst, std::size_t n) noexcept;

/// Rounds every value through bf16 in place (round-to-nearest-even) —
/// models a bf16 copy landing in an fp32 compute buffer.
void quantize_bf16_inplace(float* data, std::size_t n) noexcept;

/// Deterministic splitmix-style mixer for deriving per-event stochastic
/// rounding streams from (config seed, layer index, event counter).
std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b,
                       std::uint64_t c) noexcept;

/// Dtype-tagged view over externally managed element storage. This is the
/// boundary type between the byte-typed memory substrate (arenas hand out
/// std::byte*) and FP32 compute: holders of a StorageView can decode into /
/// encode out of f32 buffers without caring which encoding the bytes use.
class StorageView {
 public:
  StorageView() = default;
  StorageView(void* data, DType dtype, std::size_t numel) noexcept
      : data_(static_cast<std::byte*>(data)), dtype_(dtype), numel_(numel) {}

  std::byte* bytes() noexcept { return data_; }
  const std::byte* bytes() const noexcept { return data_; }
  DType dtype() const noexcept { return dtype_; }
  std::size_t numel() const noexcept { return numel_; }
  std::size_t size_bytes() const noexcept {
    return numel_ * bytes_per_element(dtype_);
  }
  bool defined() const noexcept { return data_ != nullptr; }

  /// Typed access; throws std::logic_error if the view's dtype differs.
  float* f32();
  const float* f32() const;
  bf16* b16();
  const bf16* b16() const;

  /// Element access regardless of encoding (store rounds to nearest even).
  float load(std::size_t i) const noexcept;
  void store(std::size_t i, float value) noexcept;

  /// Bulk decode of elements [offset, offset+n) into an f32 buffer.
  void decode(float* dst, std::size_t n, std::size_t offset = 0) const noexcept;
  /// Bulk encode of an f32 buffer into elements [offset, offset+n),
  /// round-to-nearest-even.
  void encode(const float* src, std::size_t n, std::size_t offset = 0) noexcept;
  /// Bulk encode with an explicit rounding mode (stochastic draws from rng).
  void encode(const float* src, std::size_t n, Rounding rounding, Rng& rng,
              std::size_t offset = 0) noexcept;

  /// View of elements [offset, offset+n) sharing this view's storage.
  StorageView subview(std::size_t offset, std::size_t n) const noexcept;

 private:
  std::byte* data_ = nullptr;
  DType dtype_ = DType::f32;
  std::size_t numel_ = 0;
};

}  // namespace sh::tensor

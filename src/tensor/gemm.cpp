// Blocked, packed GEMM with fused epilogues — the compute substrate every
// dense layer (Linear/Mlp/Attention/LmHead) runs on.
//
// Structure (BLIS-style, see DESIGN.md "Kernel substrate"):
//   jc over N in NC  ->  pc over K in KC  ->  ic over M in MC (parallel)
// B panels (KC x NC) and A panels (MC x KC) are packed on the fly into
// contiguous, zero-padded NR-wide / MR-tall strips; both transpose flags are
// normalised away at pack time, so all four transpose combinations feed the
// same register-tiled MR x NR micro-kernel.
//
// Determinism: threads partition row panels of C, so every output element is
// owned by exactly one thread and accumulates in a fixed order — KC blocks
// ascending (partials staged in C between blocks), k ascending inside the
// micro-kernel — independent of thread count. Monolithic and offloaded
// training paths both ride these kernels, which keeps them bit-identical.
#include <algorithm>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "tensor/matmul_ref.hpp"
#include "tensor/ops.hpp"

namespace sh::tensor {

namespace {

// Register micro-tile: MR x NR accumulators (6 x 16 floats) live in
// registers across the whole KC loop. NR = 16 spans one AVX-512 vector or
// two AVX2 vectors; MR = 6 gives enough independent accumulator chains to
// hide vector-add latency while fitting the AVX2 register file (12 ymm
// accumulators + B vectors + broadcast).
constexpr std::int64_t kMR = 6;
constexpr std::int64_t kNR = 16;
// Cache blocking: the packed A panel (MC x KC = 96 KiB) targets L2, the
// packed B strip touched by one micro-kernel call (KC x NR = 16 KiB) L1,
// and the full packed B panel (KC x NC = 512 KiB) L2/L3.
constexpr std::int64_t kMC = 96;
constexpr std::int64_t kKC = 256;
constexpr std::int64_t kNC = 512;

bool g_use_ref_gemm = false;

/// Packs op(A)[i0:i0+mc, p0:p0+kc] into MR-row strips: strip r-index varies
/// fastest, zero-padded past mc so the micro-kernel never branches on edges.
void pack_a(const float* a, float* ap, std::int64_t i0, std::int64_t mc,
            std::int64_t p0, std::int64_t kc, bool transpose_a, std::int64_t m,
            std::int64_t k) {
  for (std::int64_t ir = 0; ir < mc; ir += kMR) {
    const std::int64_t mr = std::min(kMR, mc - ir);
    for (std::int64_t p = 0; p < kc; ++p) {
      for (std::int64_t r = 0; r < kMR; ++r) {
        const std::int64_t i = i0 + ir + r;
        *ap++ = r < mr ? (transpose_a ? a[(p0 + p) * m + i]
                                      : a[i * k + (p0 + p)])
                       : 0.0f;
      }
    }
  }
}

/// Packs op(B)[p0:p0+kc, j0:j0+nc] into NR-column strips, zero-padded past nc.
void pack_b(const float* b, float* bp, std::int64_t p0, std::int64_t kc,
            std::int64_t j0, std::int64_t nc, bool transpose_b, std::int64_t k,
            std::int64_t n) {
  for (std::int64_t jr = 0; jr < nc; jr += kNR) {
    const std::int64_t nr = std::min(kNR, nc - jr);
    for (std::int64_t p = 0; p < kc; ++p) {
      for (std::int64_t j = 0; j < kNR; ++j) {
        const std::int64_t jj = j0 + jr + j;
        *bp++ = j < nr ? (transpose_b ? b[jj * k + (p0 + p)]
                                      : b[(p0 + p) * n + jj])
                       : 0.0f;
      }
    }
  }
}

/// acc[r, j] += sum_p ap[p, r] * bp[p, j] over a full KC strip. Both panels
/// are contiguous and edge-padded, so this is a branch-free hot loop.
///
/// On GCC/Clang the NR lanes are expressed as a portable vector-extension
/// type so the row accumulators provably stay in SIMD registers for the
/// whole KC loop (plain scalar loops get SLP-vectorized across the *rows*,
/// 4 lanes wide, which is ~4x slower). Lane j of row r performs exactly the
/// scalar sequence acc += a*b over ascending p, so results are identical to
/// the scalar fallback and independent of vector width.
#if defined(__GNUC__) || defined(__clang__)
// One 16-lane vector per micro-tile row. GCC/Clang lower this to a single
// zmm on AVX-512, two ymm on AVX2, or four xmm on SSE — the source stays
// width-agnostic and lane j of row r always performs the scalar sequence
// acc += a * b over ascending p, so results are identical everywhere.
using V16f __attribute__((vector_size(kNR * sizeof(float)), aligned(4),
                          may_alias)) = float;

inline void micro_kernel(std::int64_t kc, const float* ap, const float* bp,
                         float* acc) {
  V16f c0{}, c1{}, c2{}, c3{}, c4{}, c5{};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* av = ap + p * kMR;
    const V16f b = *reinterpret_cast<const V16f*>(bp + p * kNR);
    c0 += av[0] * b;
    c1 += av[1] * b;
    c2 += av[2] * b;
    c3 += av[3] * b;
    c4 += av[4] * b;
    c5 += av[5] * b;
  }
  auto* out = reinterpret_cast<V16f*>(acc);
  out[0] = c0;
  out[1] = c1;
  out[2] = c2;
  out[3] = c3;
  out[4] = c4;
  out[5] = c5;
}
#else
inline void micro_kernel(std::int64_t kc, const float* ap, const float* bp,
                         float* acc) {
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* av = ap + p * kMR;
    const float* bv = bp + p * kNR;
    for (std::int64_t r = 0; r < kMR; ++r) {
      const float ar = av[r];
      float* accr = acc + r * kNR;
      for (std::int64_t j = 0; j < kNR; ++j) accr[j] += ar * bv[j];
    }
  }
}
#endif

/// Writes the valid mr x nr corner of a micro-tile back into C, folding in
/// alpha/beta. The per-row loops are branch-free so both cases vectorize.
inline void write_tile(const float* acc, float* c, std::int64_t ldc,
                       std::int64_t mr, std::int64_t nr, float alpha,
                       float beta) {
  for (std::int64_t r = 0; r < mr; ++r) {
    const float* accr = acc + r * kNR;
    float* crow = c + r * ldc;
    if (beta == 0.0f) {
      for (std::int64_t j = 0; j < nr; ++j) crow[j] = alpha * accr[j];
    } else {
      for (std::int64_t j = 0; j < nr; ++j) {
        crow[j] = alpha * accr[j] + beta * crow[j];
      }
    }
  }
}

/// Fused bias epilogue over the finished rows x cols slab of C (row stride
/// ldc), applied per row panel right after its last KC block while the slab
/// is still cache-resident — the bias add comes for free against the GEMM's
/// own writeback traffic. The expression matches add_bias element-for-
/// element, so fused == unfused exactly.
///
/// Deliberately NOT extended with a per-panel tanh/GELU pass: interleaving
/// scalar-heavy tanhf bursts with 512-bit GEMM panels runs the tanh work at
/// the AVX-512 licensed frequency and measured ~10% slower end-to-end than a
/// single solid GELU sweep after the GEMM (see DESIGN.md).
inline void apply_bias_epilogue(float* c, const float* bias, std::int64_t ldc,
                                std::int64_t rows, std::int64_t cols) {
  for (std::int64_t r = 0; r < rows; ++r) {
    float* crow = c + r * ldc;
    for (std::int64_t j = 0; j < cols; ++j) crow[j] += bias[j];
  }
}

void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t n, std::int64_t k, bool transpose_a, bool transpose_b,
          float alpha, float beta, const float* bias) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    // Degenerate GEMM: C = beta * C, bias epilogue still applies.
    for (std::int64_t r = 0; r < m; ++r) {
      float* crow = c + r * n;
      for (std::int64_t j = 0; j < n; ++j) {
        float v = beta != 0.0f ? beta * crow[j] : 0.0f;
        if (bias != nullptr) v += bias[j];
        crow[j] = v;
      }
    }
    return;
  }

  std::vector<float> bpack;
  for (std::int64_t jc = 0; jc < n; jc += kNC) {
    const std::int64_t nc = std::min(kNC, n - jc);
    const std::int64_t nc_pad = (nc + kNR - 1) / kNR * kNR;
    for (std::int64_t pc = 0; pc < k; pc += kKC) {
      const std::int64_t kc = std::min(kKC, k - pc);
      bpack.resize(static_cast<std::size_t>(nc_pad * kc));
      pack_b(b, bpack.data(), pc, kc, jc, nc, transpose_b, k, n);
      const bool last = pc + kc == k;
      const float beta_eff = pc == 0 ? beta : 1.0f;
      const std::int64_t row_panels = (m + kMC - 1) / kMC;
      sh::parallel::parallel_for(
          0, static_cast<std::size_t>(row_panels), 1,
          [&](std::size_t lo, std::size_t hi) {
            thread_local std::vector<float> apack;
            for (std::size_t panel = lo; panel < hi; ++panel) {
              const std::int64_t ic = static_cast<std::int64_t>(panel) * kMC;
              const std::int64_t mc = std::min(kMC, m - ic);
              const std::int64_t mc_pad = (mc + kMR - 1) / kMR * kMR;
              apack.resize(static_cast<std::size_t>(mc_pad * kc));
              pack_a(a, apack.data(), ic, mc, pc, kc, transpose_a, m, k);
              for (std::int64_t jr = 0; jr < nc; jr += kNR) {
                const std::int64_t nr = std::min(kNR, nc - jr);
                for (std::int64_t ir = 0; ir < mc; ir += kMR) {
                  const std::int64_t mr = std::min(kMR, mc - ir);
                  float acc[kMR * kNR] = {};
                  micro_kernel(kc, apack.data() + ir * kc,
                               bpack.data() + jr * kc, acc);
                  write_tile(acc, c + (ic + ir) * n + jc + jr, n, mr, nr,
                             alpha, beta_eff);
                }
              }
              if (last && bias != nullptr) {
                // The panel's [mc x nc] slab of C is finished and still
                // cache-resident: fold in the bias before moving on.
                apply_bias_epilogue(c + ic * n + jc, bias + jc, n, mc, nc);
              }
            }
          });
    }
  }
}

}  // namespace

void set_use_reference_gemm(bool enabled) { g_use_ref_gemm = enabled; }
bool use_reference_gemm() { return g_use_ref_gemm; }

void matmul(const float* a, const float* b, float* c, std::int64_t m,
            std::int64_t n, std::int64_t k, bool transpose_a, bool transpose_b,
            float alpha, float beta) {
  if (g_use_ref_gemm) {
    matmul_ref(a, b, c, m, n, k, transpose_a, transpose_b, alpha, beta);
    return;
  }
  gemm(a, b, c, m, n, k, transpose_a, transpose_b, alpha, beta, nullptr);
}

void matmul_bias(const float* a, const float* b, const float* bias, float* c,
                 std::int64_t m, std::int64_t n, std::int64_t k,
                 bool transpose_a, bool transpose_b) {
  if (g_use_ref_gemm) {
    matmul_ref(a, b, c, m, n, k, transpose_a, transpose_b);
    add_bias(c, bias, c, m, n);
    return;
  }
  gemm(a, b, c, m, n, k, transpose_a, transpose_b, 1.0f, 0.0f, bias);
}

void matmul_bias_gelu(const float* a, const float* b, const float* bias,
                      float* pre, float* out, std::int64_t m, std::int64_t n,
                      std::int64_t k, bool transpose_a, bool transpose_b) {
  if (g_use_ref_gemm) {
    matmul_ref(a, b, out, m, n, k, transpose_a, transpose_b);
    add_bias(out, bias, out, m, n);
    if (pre != nullptr) std::copy_n(out, m * n, pre);
    gelu_forward(out, out, m * n);
    return;
  }
  // Bias fused into the GEMM writeback; GELU as one solid sweep afterwards
  // (2 passes over the activation instead of the unfused 3). gelu_forward is
  // the same code the unfused composition runs, so fused == unfused exactly.
  float* pre_or_out = pre != nullptr ? pre : out;
  gemm(a, b, pre_or_out, m, n, k, transpose_a, transpose_b, 1.0f, 0.0f, bias);
  gelu_forward(pre_or_out, out, m * n);
}

}  // namespace sh::tensor

// Blocked, packed GEMM with fused epilogues — the compute substrate every
// dense layer (Linear/Mlp/Attention/LmHead) runs on.
//
// Structure (BLIS-style, see DESIGN.md "Kernel substrate"):
//   jc over N in NC  ->  pc over K in KC  ->  ic over M in MC (parallel)
// B panels (KC x NC) and A panels (MC x KC) are packed on the fly into
// contiguous, zero-padded NR-wide / MR-tall strips; both transpose flags are
// normalised away at pack time, so all four transpose combinations feed the
// same register-tiled MR x NR micro-kernel.
//
// Determinism: threads partition row panels of C, so every output element is
// owned by exactly one thread and accumulates in a fixed order — KC blocks
// ascending (partials staged in C between blocks), k ascending inside the
// micro-kernel — independent of thread count. Monolithic and offloaded
// training paths both ride these kernels, which keeps them bit-identical.
#include <algorithm>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "tensor/gemm_micro.hpp"
#include "tensor/matmul_ref.hpp"
#include "tensor/ops.hpp"

namespace sh::tensor {

namespace {

// Packing, micro-kernel, blocking constants: shared with the fused attention
// kernel via gemm_micro.hpp.
using micro::kKC;
using micro::kMC;
using micro::kMR;
using micro::kNC;
using micro::kNR;
using micro::micro_kernel;
using micro::pack_a;
using micro::pack_b;
using micro::write_tile;

bool g_use_ref_gemm = false;

/// Fused bias epilogue over the finished rows x cols slab of C (row stride
/// ldc), applied per row panel right after its last KC block while the slab
/// is still cache-resident — the bias add comes for free against the GEMM's
/// own writeback traffic. The expression matches add_bias element-for-
/// element, so fused == unfused exactly.
///
/// Deliberately NOT extended with a per-panel tanh/GELU pass: interleaving
/// scalar-heavy tanhf bursts with 512-bit GEMM panels runs the tanh work at
/// the AVX-512 licensed frequency and measured ~10% slower end-to-end than a
/// single solid GELU sweep after the GEMM (see DESIGN.md).
inline void apply_bias_epilogue(float* c, const float* bias, std::int64_t ldc,
                                std::int64_t rows, std::int64_t cols) {
  for (std::int64_t r = 0; r < rows; ++r) {
    float* crow = c + r * ldc;
    for (std::int64_t j = 0; j < cols; ++j) crow[j] += bias[j];
  }
}

void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t n, std::int64_t k, bool transpose_a, bool transpose_b,
          float alpha, float beta, const float* bias) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    // Degenerate GEMM: C = beta * C, bias epilogue still applies.
    for (std::int64_t r = 0; r < m; ++r) {
      float* crow = c + r * n;
      for (std::int64_t j = 0; j < n; ++j) {
        float v = beta != 0.0f ? beta * crow[j] : 0.0f;
        if (bias != nullptr) v += bias[j];
        crow[j] = v;
      }
    }
    return;
  }

  std::vector<float> bpack;
  for (std::int64_t jc = 0; jc < n; jc += kNC) {
    const std::int64_t nc = std::min(kNC, n - jc);
    const std::int64_t nc_pad = (nc + kNR - 1) / kNR * kNR;
    for (std::int64_t pc = 0; pc < k; pc += kKC) {
      const std::int64_t kc = std::min(kKC, k - pc);
      bpack.resize(static_cast<std::size_t>(nc_pad * kc));
      pack_b(b, bpack.data(), pc, kc, jc, nc, transpose_b, transpose_b ? k : n);
      const bool last = pc + kc == k;
      const float beta_eff = pc == 0 ? beta : 1.0f;
      const std::int64_t row_panels = (m + kMC - 1) / kMC;
      sh::parallel::parallel_for(
          0, static_cast<std::size_t>(row_panels), 1,
          [&](std::size_t lo, std::size_t hi) {
            thread_local std::vector<float> apack;
            for (std::size_t panel = lo; panel < hi; ++panel) {
              const std::int64_t ic = static_cast<std::int64_t>(panel) * kMC;
              const std::int64_t mc = std::min(kMC, m - ic);
              const std::int64_t mc_pad = (mc + kMR - 1) / kMR * kMR;
              apack.resize(static_cast<std::size_t>(mc_pad * kc));
              pack_a(a, apack.data(), ic, mc, pc, kc, transpose_a,
                     transpose_a ? m : k);
              for (std::int64_t jr = 0; jr < nc; jr += kNR) {
                const std::int64_t nr = std::min(kNR, nc - jr);
                for (std::int64_t ir = 0; ir < mc; ir += kMR) {
                  const std::int64_t mr = std::min(kMR, mc - ir);
                  float acc[kMR * kNR] = {};
                  micro_kernel(kc, apack.data() + ir * kc,
                               bpack.data() + jr * kc, acc);
                  write_tile(acc, c + (ic + ir) * n + jc + jr, n, mr, nr,
                             alpha, beta_eff);
                }
              }
              if (last && bias != nullptr) {
                // The panel's [mc x nc] slab of C is finished and still
                // cache-resident: fold in the bias before moving on.
                apply_bias_epilogue(c + ic * n + jc, bias + jc, n, mc, nc);
              }
            }
          });
    }
  }
}

}  // namespace

void set_use_reference_gemm(bool enabled) { g_use_ref_gemm = enabled; }
bool use_reference_gemm() { return g_use_ref_gemm; }

void matmul(const float* a, const float* b, float* c, std::int64_t m,
            std::int64_t n, std::int64_t k, bool transpose_a, bool transpose_b,
            float alpha, float beta) {
  if (g_use_ref_gemm) {
    matmul_ref(a, b, c, m, n, k, transpose_a, transpose_b, alpha, beta);
    return;
  }
  gemm(a, b, c, m, n, k, transpose_a, transpose_b, alpha, beta, nullptr);
}

void matmul_bias(const float* a, const float* b, const float* bias, float* c,
                 std::int64_t m, std::int64_t n, std::int64_t k,
                 bool transpose_a, bool transpose_b) {
  if (g_use_ref_gemm) {
    matmul_ref(a, b, c, m, n, k, transpose_a, transpose_b);
    add_bias(c, bias, c, m, n);
    return;
  }
  gemm(a, b, c, m, n, k, transpose_a, transpose_b, 1.0f, 0.0f, bias);
}

void matmul_bias_gelu(const float* a, const float* b, const float* bias,
                      float* pre, float* out, std::int64_t m, std::int64_t n,
                      std::int64_t k, bool transpose_a, bool transpose_b) {
  if (g_use_ref_gemm) {
    matmul_ref(a, b, out, m, n, k, transpose_a, transpose_b);
    add_bias(out, bias, out, m, n);
    if (pre != nullptr) std::copy_n(out, m * n, pre);
    gelu_forward(out, out, m * n);
    return;
  }
  // Bias fused into the GEMM writeback; GELU as one solid sweep afterwards
  // (2 passes over the activation instead of the unfused 3). gelu_forward is
  // the same code the unfused composition runs, so fused == unfused exactly.
  float* pre_or_out = pre != nullptr ? pre : out;
  gemm(a, b, pre_or_out, m, n, k, transpose_a, transpose_b, 1.0f, 0.0f, bias);
  gelu_forward(pre_or_out, out, m * n);
}

}  // namespace sh::tensor

#include "tensor/dtype.hpp"

#include <cctype>
#include <cstring>
#include <stdexcept>
#include <string>

#include "tensor/rng.hpp"

namespace sh::tensor {

namespace {

inline std::uint32_t f32_bits(float value) noexcept {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

inline float bits_f32(std::uint32_t bits) noexcept {
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

inline bool is_nan_bits(std::uint32_t bits) noexcept {
  return (bits & 0x7FFFFFFFu) > 0x7F800000u;
}

inline bool is_inf_bits(std::uint32_t bits) noexcept {
  return (bits & 0x7FFFFFFFu) == 0x7F800000u;
}

std::string lower(std::string_view name) {
  std::string out(name);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

const char* dtype_name(DType dt) noexcept {
  return dt == DType::bf16 ? "bf16" : "f32";
}

const char* rounding_name(Rounding r) noexcept {
  return r == Rounding::stochastic ? "stochastic" : "nearest_even";
}

DType parse_dtype(std::string_view name) {
  const std::string n = lower(name);
  if (n == "f32" || n == "fp32" || n == "float32") return DType::f32;
  if (n == "bf16" || n == "bfloat16") return DType::bf16;
  throw std::invalid_argument("unknown dtype \"" + std::string(name) +
                              "\" (expected f32 or bf16)");
}

Rounding parse_rounding(std::string_view name) {
  const std::string n = lower(name);
  if (n == "rne" || n == "nearest" || n == "nearest_even") {
    return Rounding::nearest_even;
  }
  if (n == "sr" || n == "stochastic") return Rounding::stochastic;
  throw std::invalid_argument("unknown rounding mode \"" + std::string(name) +
                              "\" (expected nearest_even or stochastic)");
}

bf16 float_to_bf16(float value) noexcept {
  std::uint32_t bits = f32_bits(value);
  if (is_nan_bits(bits)) {
    // Quiet NaN with the sign preserved; never silence to infinity.
    return static_cast<bf16>((bits >> 16) | 0x0040u);
  }
  // Round-to-nearest-even on the discarded 16 bits. Infinities pass
  // through unchanged (low half is zero); finite values past the bf16
  // range carry into the exponent and become +-infinity.
  bits += 0x7FFFu + ((bits >> 16) & 1u);
  return static_cast<bf16>(bits >> 16);
}

bf16 float_to_bf16_stochastic(float value, Rng& rng) noexcept {
  std::uint32_t bits = f32_bits(value);
  if (is_nan_bits(bits)) return static_cast<bf16>((bits >> 16) | 0x0040u);
  if (is_inf_bits(bits)) return static_cast<bf16>(bits >> 16);
  // Add 16 random low bits, then truncate: rounds up with probability
  // fraction/2^16, so the expectation equals the input.
  bits += static_cast<std::uint32_t>(rng.next_u64() & 0xFFFFu);
  return static_cast<bf16>(bits >> 16);
}

float bf16_to_float(bf16 value) noexcept {
  return bits_f32(static_cast<std::uint32_t>(value) << 16);
}

void convert_float_to_bf16(const float* src, bf16* dst,
                           std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] = float_to_bf16(src[i]);
}

void convert_float_to_bf16_stochastic(const float* src, bf16* dst,
                                      std::size_t n, Rng& rng) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = float_to_bf16_stochastic(src[i], rng);
  }
}

void convert_bf16_to_float(const bf16* src, float* dst,
                           std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] = bf16_to_float(src[i]);
}

void quantize_bf16_inplace(float* data, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = bf16_to_float(float_to_bf16(data[i]));
  }
}

std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b,
                       std::uint64_t c) noexcept {
  // SplitMix64 finalisers chained over the three inputs.
  std::uint64_t z = a;
  for (std::uint64_t w : {b, c}) {
    z += 0x9E3779B97F4A7C15ull + w;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
  }
  return z;
}

float* StorageView::f32() {
  if (dtype_ != DType::f32) {
    throw std::logic_error("StorageView::f32 on a bf16 view");
  }
  return reinterpret_cast<float*>(data_);
}

const float* StorageView::f32() const {
  return const_cast<StorageView*>(this)->f32();
}

bf16* StorageView::b16() {
  if (dtype_ != DType::bf16) {
    throw std::logic_error("StorageView::b16 on an f32 view");
  }
  return reinterpret_cast<bf16*>(data_);
}

const bf16* StorageView::b16() const {
  return const_cast<StorageView*>(this)->b16();
}

float StorageView::load(std::size_t i) const noexcept {
  if (dtype_ == DType::bf16) {
    bf16 v;
    std::memcpy(&v, data_ + i * sizeof(bf16), sizeof(v));
    return bf16_to_float(v);
  }
  float v;
  std::memcpy(&v, data_ + i * sizeof(float), sizeof(v));
  return v;
}

void StorageView::store(std::size_t i, float value) noexcept {
  if (dtype_ == DType::bf16) {
    const bf16 v = float_to_bf16(value);
    std::memcpy(data_ + i * sizeof(bf16), &v, sizeof(v));
    return;
  }
  std::memcpy(data_ + i * sizeof(float), &value, sizeof(value));
}

void StorageView::decode(float* dst, std::size_t n,
                         std::size_t offset) const noexcept {
  if (dtype_ == DType::bf16) {
    convert_bf16_to_float(reinterpret_cast<const bf16*>(data_) + offset, dst,
                          n);
    return;
  }
  std::memcpy(dst, data_ + offset * sizeof(float), n * sizeof(float));
}

void StorageView::encode(const float* src, std::size_t n,
                         std::size_t offset) noexcept {
  if (dtype_ == DType::bf16) {
    convert_float_to_bf16(src, reinterpret_cast<bf16*>(data_) + offset, n);
    return;
  }
  std::memcpy(data_ + offset * sizeof(float), src, n * sizeof(float));
}

void StorageView::encode(const float* src, std::size_t n, Rounding rounding,
                         Rng& rng, std::size_t offset) noexcept {
  if (dtype_ == DType::bf16 && rounding == Rounding::stochastic) {
    convert_float_to_bf16_stochastic(
        src, reinterpret_cast<bf16*>(data_) + offset, n, rng);
    return;
  }
  encode(src, n, offset);
}

StorageView StorageView::subview(std::size_t offset,
                                 std::size_t n) const noexcept {
  return StorageView(data_ + offset * bytes_per_element(dtype_), dtype_, n);
}

}  // namespace sh::tensor

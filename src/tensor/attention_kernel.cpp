// Fused tiled causal attention — see attention_kernel.hpp for the contract.
//
// Structure per (batch, head, query-panel) work unit (MC query rows):
//   for each KC-sized key tile (ascending, diagonal-clipped):
//     S    = scale * Q_panel @ K_tile^T      (pack + micro-kernel, head_dim k)
//     online softmax: m, l, and the context accumulator are corrected by
//     alpha = exp(m_old - m_new), then acc += P @ V_tile (pack + micro-kernel)
//   out = acc / l; (m, l) saved for the backward.
// The backward recomputes S tile-by-tile with the identical op sequence and
// recovers P = exp(S - m)/l exactly; dQ is accumulated by query panels, dK/dV
// by key panels (each output row owned by one thread, query/key tiles
// ascending), with di = dot(out_i, dout_i) precomputed once.
#include "tensor/attention_kernel.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "tensor/gemm_micro.hpp"

namespace sh::tensor {

namespace {

using micro::kKC;
using micro::kMC;
using micro::kMR;
using micro::kNR;
using micro::micro_kernel;
using micro::pack_a;
using micro::pack_b;
using micro::write_tile;

// Query panel (rows per work unit, multiple of kMR) and key tile (columns per
// online-softmax step). One S tile is kQB x kKB = 96 KiB of thread-local
// scratch — the only score storage the kernel ever needs.
constexpr std::int64_t kQB = kMC;
constexpr std::int64_t kKB = kKC;

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

bool g_use_fused_attention = true;

std::int64_t pad_to(std::int64_t x, std::int64_t unit) {
  return (x + unit - 1) / unit * unit;
}

struct Scratch {
  std::vector<float> apack, bpack;  // packed panels for the tile GEMMs
  std::vector<float> s, p, dp;      // score / prob / dprob tiles
  std::vector<float> m, l, acc;     // online-softmax state per query row
};

/// C[m x n] (ldc) = alpha * op(A)[a_row0.., 0..k) @ op(B)[b_k0.., b_col0..)
/// + beta * C, k chunked by KC with partials staged in C — the same
/// assembly gemm.cpp uses, so recomputed score tiles are bit-identical to
/// the forward's. A's k dimension always starts at column 0 of its plane.
void tile_gemm(const float* a, std::int64_t a_row0, bool transpose_a,
               std::int64_t lda, const float* b, std::int64_t b_k0,
               std::int64_t b_col0, bool transpose_b, std::int64_t ldb,
               float* c, std::int64_t ldc, std::int64_t m, std::int64_t n,
               std::int64_t k, float alpha, float beta, Scratch& sc) {
  const std::int64_t m_pad = pad_to(m, kMR);
  const std::int64_t n_pad = pad_to(n, kNR);
  for (std::int64_t pc = 0; pc < k; pc += kKC) {
    const std::int64_t kc = std::min(kKC, k - pc);
    sc.apack.resize(static_cast<std::size_t>(m_pad * kc));
    sc.bpack.resize(static_cast<std::size_t>(n_pad * kc));
    pack_a(a, sc.apack.data(), a_row0, m, pc, kc, transpose_a, lda);
    pack_b(b, sc.bpack.data(), b_k0 + pc, kc, b_col0, n, transpose_b, ldb);
    const float beta_eff = pc == 0 ? beta : 1.0f;
    for (std::int64_t jr = 0; jr < n; jr += kNR) {
      const std::int64_t nr = std::min(kNR, n - jr);
      for (std::int64_t ir = 0; ir < m; ir += kMR) {
        const std::int64_t mr = std::min(kMR, m - ir);
        float acc[kMR * kNR] = {};
        micro_kernel(kc, sc.apack.data() + ir * kc, sc.bpack.data() + jr * kc,
                     acc);
        write_tile(acc, c + ir * ldc + jr, ldc, mr, nr, alpha, beta_eff);
      }
    }
  }
}

}  // namespace

void set_use_fused_attention(bool enabled) { g_use_fused_attention = enabled; }
bool use_fused_attention() { return g_use_fused_attention; }

void attention_forward(const AttnPlanes& q, const AttnPlanes& k,
                       const AttnPlanes& v, const AttnPlanesMut& out,
                       float* row_max, float* row_sum, std::int64_t batch,
                       std::int64_t heads, std::int64_t q_rows,
                       std::int64_t k_rows, std::int64_t head_dim,
                       std::int64_t causal_offset, float scale) {
  const std::int64_t panels = (q_rows + kQB - 1) / kQB;
  const std::int64_t units = batch * heads * panels;
  sh::parallel::parallel_for(
      0, static_cast<std::size_t>(units), 1,
      [&](std::size_t lo, std::size_t hi) {
        thread_local Scratch sc;
        for (std::size_t u = lo; u < hi; ++u) {
          const auto unit = static_cast<std::int64_t>(u);
          const std::int64_t panel = unit % panels;
          const std::int64_t plane = unit / panels;
          const std::int64_t b = plane / heads;
          const std::int64_t h = plane % heads;
          const std::int64_t q0 = panel * kQB;
          const std::int64_t mq = std::min(kQB, q_rows - q0);

          const float* qp = q.plane(b, h);
          const float* kp = k.plane(b, h);
          const float* vp = v.plane(b, h);
          float* op = out.plane(b, h);

          // Keys beyond the panel's last causal limit never contribute.
          const std::int64_t k_hi =
              std::min(k_rows, causal_offset + q0 + mq - 1 + 1);

          sc.m.assign(static_cast<std::size_t>(mq), kNegInf);
          sc.l.assign(static_cast<std::size_t>(mq), 0.0f);
          sc.acc.assign(static_cast<std::size_t>(mq * head_dim), 0.0f);

          for (std::int64_t j0 = 0; j0 < k_hi; j0 += kKB) {
            const std::int64_t tk = std::min(kKB, k_hi - j0);
            sc.s.resize(static_cast<std::size_t>(mq * tk));
            sc.p.resize(static_cast<std::size_t>(mq * tk));
            // S = scale * Q_panel @ K_tile^T.
            tile_gemm(qp, q0, false, q.row_stride, kp, 0, j0, true,
                      k.row_stride, sc.s.data(), tk, mq, tk, head_dim, scale,
                      0.0f, sc);
            for (std::int64_t i = 0; i < mq; ++i) {
              const std::int64_t lim = causal_offset + q0 + i;  // inclusive
              const std::int64_t valid = std::min(tk, lim - j0 + 1);
              float* prow = sc.p.data() + i * tk;
              if (valid <= 0) {
                // Entire tile above this row's diagonal: P row is zero so
                // the P @ V accumulation below is a no-op for it.
                std::fill_n(prow, tk, 0.0f);
                continue;
              }
              const float* srow = sc.s.data() + i * tk;
              float tile_max = kNegInf;
              for (std::int64_t j = 0; j < valid; ++j) {
                tile_max = std::max(tile_max, srow[j]);
              }
              const float m_new = std::max(sc.m[i], tile_max);
              // First tile: m = -inf so alpha = exp(-inf) = 0 — the zero
              // accumulator and normaliser are "corrected" by zero, exactly
              // initialising the recurrence.
              const float alpha = std::exp(sc.m[i] - m_new);
              float sum = 0.0f;
              for (std::int64_t j = 0; j < valid; ++j) {
                const float e = std::exp(srow[j] - m_new);
                prow[j] = e;
                sum += e;
              }
              std::fill(prow + valid, prow + tk, 0.0f);
              sc.l[i] = alpha * sc.l[i] + sum;
              sc.m[i] = m_new;
              if (alpha != 1.0f) {
                float* arow = sc.acc.data() + i * head_dim;
                for (std::int64_t c = 0; c < head_dim; ++c) arow[c] *= alpha;
              }
            }
            // acc += P @ V_tile.
            tile_gemm(sc.p.data(), 0, false, tk, vp, j0, 0, false,
                      v.row_stride, sc.acc.data(), head_dim, mq, head_dim, tk,
                      1.0f, 1.0f, sc);
          }

          const std::int64_t stat0 = plane * q_rows + q0;
          for (std::int64_t i = 0; i < mq; ++i) {
            const float inv = 1.0f / sc.l[i];
            const float* arow = sc.acc.data() + i * head_dim;
            float* orow = op + (q0 + i) * out.row_stride;
            for (std::int64_t c = 0; c < head_dim; ++c) orow[c] = arow[c] * inv;
            if (row_max != nullptr) {
              row_max[stat0 + i] = sc.m[i];
              row_sum[stat0 + i] = sc.l[i];
            }
          }
        }
      });
}

void attention_backward(const AttnPlanes& q, const AttnPlanes& k,
                        const AttnPlanes& v, const AttnPlanes& out,
                        const AttnPlanes& d_out, const float* row_max,
                        const float* row_sum, const AttnPlanesMut& dq,
                        const AttnPlanesMut& dk, const AttnPlanesMut& dv,
                        std::int64_t batch, std::int64_t heads,
                        std::int64_t seq, std::int64_t head_dim, float scale) {
  const std::int64_t planes = batch * heads;

  // di = dot(out_i, dout_i) — shared by the dQ and dK/dV passes.
  std::vector<float> d(static_cast<std::size_t>(planes * seq));
  sh::parallel::parallel_for(
      0, static_cast<std::size_t>(planes), 1,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t pu = lo; pu < hi; ++pu) {
          const auto plane = static_cast<std::int64_t>(pu);
          const std::int64_t b = plane / heads;
          const std::int64_t h = plane % heads;
          const float* op = out.plane(b, h);
          const float* gp = d_out.plane(b, h);
          for (std::int64_t i = 0; i < seq; ++i) {
            const float* orow = op + i * out.row_stride;
            const float* grow = gp + i * d_out.row_stride;
            float acc = 0.0f;
            for (std::int64_t c = 0; c < head_dim; ++c) acc += orow[c] * grow[c];
            d[static_cast<std::size_t>(plane * seq + i)] = acc;
          }
        }
      });

  // Pass 1 — dQ, partitioned by query panels.
  const std::int64_t q_panels = (seq + kQB - 1) / kQB;
  sh::parallel::parallel_for(
      0, static_cast<std::size_t>(planes * q_panels), 1,
      [&](std::size_t lo, std::size_t hi) {
        thread_local Scratch sc;
        for (std::size_t u = lo; u < hi; ++u) {
          const auto unit = static_cast<std::int64_t>(u);
          const std::int64_t panel = unit % q_panels;
          const std::int64_t plane = unit / q_panels;
          const std::int64_t b = plane / heads;
          const std::int64_t h = plane % heads;
          const std::int64_t q0 = panel * kQB;
          const std::int64_t mq = std::min(kQB, seq - q0);

          const float* qp = q.plane(b, h);
          const float* kp = k.plane(b, h);
          const float* vp = v.plane(b, h);
          const float* gp = d_out.plane(b, h);
          float* dqp = dq.plane(b, h);

          const std::int64_t k_hi = std::min(seq, q0 + mq);
          for (std::int64_t j0 = 0; j0 < k_hi; j0 += kKB) {
            const std::int64_t tk = std::min(kKB, k_hi - j0);
            sc.s.resize(static_cast<std::size_t>(mq * tk));
            sc.dp.resize(static_cast<std::size_t>(mq * tk));
            // Recompute S = scale * Q_panel @ K_tile^T — identical op
            // sequence to the forward, so exp(S - m)/l recovers the exact
            // forward probabilities.
            tile_gemm(qp, q0, false, q.row_stride, kp, 0, j0, true,
                      k.row_stride, sc.s.data(), tk, mq, tk, head_dim, scale,
                      0.0f, sc);
            // dP = dOut_panel @ V_tile^T.
            tile_gemm(gp, q0, false, d_out.row_stride, vp, 0, j0, true,
                      v.row_stride, sc.dp.data(), tk, mq, tk, head_dim, 1.0f,
                      0.0f, sc);
            // dS = P * (dP - di) * scale, masked entries zero (in place
            // over the S tile).
            for (std::int64_t i = 0; i < mq; ++i) {
              const std::int64_t gi = q0 + i;
              const std::int64_t valid = std::min(tk, gi - j0 + 1);
              float* srow = sc.s.data() + i * tk;
              const float* dprow = sc.dp.data() + i * tk;
              if (valid <= 0) {
                std::fill_n(srow, tk, 0.0f);
                continue;
              }
              const std::size_t stat = static_cast<std::size_t>(plane * seq + gi);
              const float mi = row_max[stat];
              const float inv_l = 1.0f / row_sum[stat];
              const float di = d[stat];
              for (std::int64_t j = 0; j < valid; ++j) {
                const float pij = std::exp(srow[j] - mi) * inv_l;
                srow[j] = pij * (dprow[j] - di) * scale;
              }
              std::fill(srow + valid, srow + tk, 0.0f);
            }
            // dQ_panel += dS @ K_tile.
            tile_gemm(sc.s.data(), 0, false, tk, kp, j0, 0, false,
                      k.row_stride, dqp + q0 * dq.row_stride, dq.row_stride,
                      mq, head_dim, tk, 1.0f, j0 == 0 ? 0.0f : 1.0f, sc);
          }
        }
      });

  // Pass 2 — dK/dV, partitioned by key panels; query tiles ascending from
  // the diagonal (queries i < key index never attend it).
  const std::int64_t k_panels = (seq + kQB - 1) / kQB;
  sh::parallel::parallel_for(
      0, static_cast<std::size_t>(planes * k_panels), 1,
      [&](std::size_t lo, std::size_t hi) {
        thread_local Scratch sc;
        for (std::size_t u = lo; u < hi; ++u) {
          const auto unit = static_cast<std::int64_t>(u);
          const std::int64_t panel = unit % k_panels;
          const std::int64_t plane = unit / k_panels;
          const std::int64_t b = plane / heads;
          const std::int64_t h = plane % heads;
          const std::int64_t kp0 = panel * kQB;
          const std::int64_t kn = std::min(kQB, seq - kp0);

          const float* qp = q.plane(b, h);
          const float* kpl = k.plane(b, h);
          const float* vp = v.plane(b, h);
          const float* gp = d_out.plane(b, h);
          float* dkp = dk.plane(b, h);
          float* dvp = dv.plane(b, h);

          const std::int64_t i0_start = kp0 / kKB * kKB;
          bool first = true;
          for (std::int64_t i0 = i0_start; i0 < seq; i0 += kKB) {
            const std::int64_t tq = std::min(kKB, seq - i0);
            sc.s.resize(static_cast<std::size_t>(kn * tq));
            sc.dp.resize(static_cast<std::size_t>(kn * tq));
            sc.p.resize(static_cast<std::size_t>(kn * tq));
            // S^T = scale * K_panel @ Q_tile^T. Each score element is the
            // same ascending head-dim chain as the forward (products
            // commute exactly), so the recovered P^T matches bit-for-bit.
            tile_gemm(kpl, kp0, false, k.row_stride, qp, 0, i0, true,
                      q.row_stride, sc.s.data(), tq, kn, tq, head_dim, scale,
                      0.0f, sc);
            // dP^T = V_panel @ dOut_tile^T.
            tile_gemm(vp, kp0, false, v.row_stride, gp, 0, i0, true,
                      d_out.row_stride, sc.dp.data(), tq, kn, tq, head_dim,
                      1.0f, 0.0f, sc);
            for (std::int64_t r = 0; r < kn; ++r) {
              const std::int64_t kj = kp0 + r;
              const std::int64_t c_lo = std::max<std::int64_t>(0, kj - i0);
              float* strow = sc.s.data() + r * tq;
              float* ptrow = sc.p.data() + r * tq;
              const float* dptrow = sc.dp.data() + r * tq;
              std::fill_n(ptrow, std::min(c_lo, tq), 0.0f);
              std::fill_n(strow, std::min(c_lo, tq), 0.0f);
              for (std::int64_t c = c_lo; c < tq; ++c) {
                const std::size_t stat =
                    static_cast<std::size_t>(plane * seq + i0 + c);
                const float pji = std::exp(strow[c] - row_max[stat]) /
                                  row_sum[stat];
                ptrow[c] = pji;
                strow[c] = pji * (dptrow[c] - d[stat]) * scale;
              }
            }
            const float beta = first ? 0.0f : 1.0f;
            // dV_panel += P^T @ dOut_tile.
            tile_gemm(sc.p.data(), 0, false, tq, gp, i0, 0, false,
                      d_out.row_stride, dvp + kp0 * dv.row_stride,
                      dv.row_stride, kn, head_dim, tq, 1.0f, beta, sc);
            // dK_panel += dS^T @ Q_tile.
            tile_gemm(sc.s.data(), 0, false, tq, qp, i0, 0, false,
                      q.row_stride, dkp + kp0 * dk.row_stride, dk.row_stride,
                      kn, head_dim, tq, 1.0f, beta, sc);
            first = false;
          }
        }
      });
}

}  // namespace sh::tensor

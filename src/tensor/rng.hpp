// Deterministic pseudo-random number generation for reproducible training.
#pragma once

#include <cstdint>
#include <span>

namespace sh::tensor {

/// SplitMix64-seeded xoshiro256** generator. Deterministic across platforms,
/// which the equivalence tests (offloaded vs monolithic training) rely on.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, 1).
  double next_uniform() noexcept;

  /// Standard normal via Box–Muller (consumes two uniforms per pair).
  float next_normal() noexcept;

  /// Uniform integer in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Fills `out` with N(0, stddev^2) samples.
  void fill_normal(std::span<float> out, float stddev) noexcept;

  /// Fills `out` with U[-a, a) samples.
  void fill_uniform(std::span<float> out, float a) noexcept;

 private:
  std::uint64_t state_[4];
  bool have_spare_ = false;
  float spare_ = 0.0f;
};

}  // namespace sh::tensor

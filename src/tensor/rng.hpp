// Deterministic pseudo-random number generation for reproducible training.
#pragma once

#include <cstdint>
#include <span>

namespace sh::tensor {

/// Complete serialisable state of an Rng stream: the xoshiro256** words plus
/// the Box–Muller spare. Trivially copyable so checkpoints can memcpy it
/// (sh::ckpt stores one per stream); a load_state() round-trip continues the
/// stream exactly where save_state() left it.
struct RngState {
  std::uint64_t state[4] = {0, 0, 0, 0};
  std::uint32_t have_spare = 0;
  float spare = 0.0f;
};

/// SplitMix64-seeded xoshiro256** generator. Deterministic across platforms,
/// which the equivalence tests (offloaded vs monolithic training) rely on.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, 1).
  double next_uniform() noexcept;

  /// Standard normal via Box–Muller (consumes two uniforms per pair).
  float next_normal() noexcept;

  /// Uniform integer in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Fills `out` with N(0, stddev^2) samples.
  void fill_normal(std::span<float> out, float stddev) noexcept;

  /// Fills `out` with U[-a, a) samples.
  void fill_uniform(std::span<float> out, float a) noexcept;

  /// Captures the full generator state (checkpoint/resume).
  RngState save_state() const noexcept;

  /// Restores a state captured by save_state(); the stream continues
  /// bit-identically from the capture point.
  void load_state(const RngState& s) noexcept;

 private:
  std::uint64_t state_[4];
  bool have_spare_ = false;
  float spare_ = 0.0f;
};

}  // namespace sh::tensor

// Deterministic (counter-based) dropout.
//
// Offloaded training re-runs forward passes (activation-checkpoint
// recomputation) and splits batches across executors, so dropout masks must
// be a pure function of position, not of call order. The mask for element i
// is derived by hashing (seed, stream, step, global_index) — the same
// stateless-RNG trick GPU frameworks use (Philox): recomputation reproduces
// the identical mask, and executors of the same batch draw disjoint,
// consistent masks via their global row offsets.
#pragma once

#include <cstdint>

namespace sh::tensor {

/// Mixes the tuple into a 64-bit hash (SplitMix64-style finalizer).
std::uint64_t counter_hash(std::uint64_t seed, std::uint64_t stream,
                           std::uint64_t step, std::uint64_t index) noexcept;

/// Inverted dropout: out[i] = in[i] / (1-p) if kept, else 0. `global_offset`
/// is the index of in[0] within the full logical tensor (executor row
/// offsets). p == 0 copies through.
void dropout_forward(const float* in, float* out, std::int64_t n, float p,
                     std::uint64_t seed, std::uint64_t stream,
                     std::uint64_t step, std::uint64_t global_offset) noexcept;

/// Backward: the same mask applied to the output gradient.
void dropout_backward(const float* grad_out, float* grad_in, std::int64_t n,
                      float p, std::uint64_t seed, std::uint64_t stream,
                      std::uint64_t step,
                      std::uint64_t global_offset) noexcept;

}  // namespace sh::tensor

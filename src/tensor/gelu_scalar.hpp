// Scalar GELU forward/grad shared by the elementwise kernels (ops.cpp) and
// the fused GEMM epilogues (gemm.cpp). Both TUs compile with
// -ffp-contract=off, so the expression trees below evaluate identically in
// either context — which is what makes "fused epilogue == unfused
// composition" an exact-equality invariant rather than a tolerance test.
#pragma once

#include <cmath>

namespace sh::tensor::detail {

inline float gelu_scalar(float x) {
  // tanh approximation: 0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3))).
  const float k = 0.7978845608028654f;
  const float inner = k * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

inline float gelu_grad_scalar(float x) {
  const float k = 0.7978845608028654f;
  const float x3 = x * x * x;
  const float inner = k * (x + 0.044715f * x3);
  const float t = std::tanh(inner);
  const float sech2 = 1.0f - t * t;
  return 0.5f * (1.0f + t) +
         0.5f * x * sech2 * k * (1.0f + 3.0f * 0.044715f * x * x);
}

}  // namespace sh::tensor::detail

#include "tensor/rng.hpp"

#include <cmath>
#include <numbers>

namespace sh::tensor {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  for (auto& s : state_) s = splitmix64(seed);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_uniform() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float Rng::next_normal() noexcept {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u1 = next_uniform();
  double u2 = next_uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_ = static_cast<float>(r * std::sin(theta));
  have_spare_ = true;
  return static_cast<float>(r * std::cos(theta));
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

void Rng::fill_normal(std::span<float> out, float stddev) noexcept {
  for (auto& v : out) v = next_normal() * stddev;
}

void Rng::fill_uniform(std::span<float> out, float a) noexcept {
  for (auto& v : out) {
    v = static_cast<float>((next_uniform() * 2.0 - 1.0) * a);
  }
}

RngState Rng::save_state() const noexcept {
  RngState s;
  for (int i = 0; i < 4; ++i) s.state[i] = state_[i];
  s.have_spare = have_spare_ ? 1u : 0u;
  s.spare = spare_;
  return s;
}

void Rng::load_state(const RngState& s) noexcept {
  for (int i = 0; i < 4; ++i) state_[i] = s.state[i];
  have_spare_ = s.have_spare != 0;
  spare_ = s.spare;
}

}  // namespace sh::tensor

#include "tensor/dropout.hpp"

namespace sh::tensor {

namespace {
std::uint64_t mix(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline bool keep(std::uint64_t seed, std::uint64_t stream, std::uint64_t step,
                 std::uint64_t index, float p) noexcept {
  const std::uint64_t h = counter_hash(seed, stream, step, index);
  // Top 24 bits as a uniform in [0, 1).
  const float u = static_cast<float>(h >> 40) * 0x1.0p-24f;
  return u >= p;
}
}  // namespace

std::uint64_t counter_hash(std::uint64_t seed, std::uint64_t stream,
                           std::uint64_t step, std::uint64_t index) noexcept {
  std::uint64_t x = seed;
  x = mix(x + 0x9e3779b97f4a7c15ULL * (stream + 1));
  x = mix(x + 0x9e3779b97f4a7c15ULL * (step + 1));
  x = mix(x + 0x9e3779b97f4a7c15ULL * (index + 1));
  return x;
}

void dropout_forward(const float* in, float* out, std::int64_t n, float p,
                     std::uint64_t seed, std::uint64_t stream,
                     std::uint64_t step, std::uint64_t global_offset) noexcept {
  if (p <= 0.0f) {
    for (std::int64_t i = 0; i < n; ++i) out[i] = in[i];
    return;
  }
  const float inv_keep = 1.0f / (1.0f - p);
  for (std::int64_t i = 0; i < n; ++i) {
    out[i] = keep(seed, stream, step, global_offset + static_cast<std::uint64_t>(i), p)
                 ? in[i] * inv_keep
                 : 0.0f;
  }
}

void dropout_backward(const float* grad_out, float* grad_in, std::int64_t n,
                      float p, std::uint64_t seed, std::uint64_t stream,
                      std::uint64_t step,
                      std::uint64_t global_offset) noexcept {
  if (p <= 0.0f) {
    for (std::int64_t i = 0; i < n; ++i) grad_in[i] = grad_out[i];
    return;
  }
  const float inv_keep = 1.0f / (1.0f - p);
  for (std::int64_t i = 0; i < n; ++i) {
    grad_in[i] =
        keep(seed, stream, step, global_offset + static_cast<std::uint64_t>(i), p)
            ? grad_out[i] * inv_keep
            : 0.0f;
  }
}

}  // namespace sh::tensor

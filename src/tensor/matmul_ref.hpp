// Test/bench support: the pre-blocking row-streaming matmul, preserved
// verbatim as `matmul_ref`. The blocked GEMM in gemm.cpp is pinned against
// this kernel across shape/transpose/alpha-beta sweeps in test_ops.cpp, and
// bench_kernels reports GFLOPS of new-vs-ref on GPT-block shapes.
//
// Not part of the model hot path — include only from tests and benches.
#pragma once

#include <algorithm>
#include <cstdint>

#include "parallel/parallel_for.hpp"

namespace sh::tensor {

/// Routes sh::tensor::matmul (and the fused-epilogue entry points) through
/// matmul_ref instead of the blocked GEMM. Bench-only escape hatch so
/// bench_kernels can measure genuine before/after end-to-end step times in
/// one binary. Not thread-safe against concurrent matmul calls.
void set_use_reference_gemm(bool enabled);
bool use_reference_gemm();

/// C = alpha * op(A) @ op(B) + beta * C — the seed repo's naive kernel:
/// row-parallel, streaming over B rows, no blocking/packing/register tiling.
inline void matmul_ref(const float* a, const float* b, float* c,
                       std::int64_t m, std::int64_t n, std::int64_t k,
                       bool transpose_a, bool transpose_b, float alpha = 1.0f,
                       float beta = 0.0f) {
  auto a_at = [&](std::int64_t i, std::int64_t p) {
    return transpose_a ? a[p * m + i] : a[i * k + p];
  };
  sh::parallel::parallel_for(
      0, static_cast<std::size_t>(m), 4,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t iu = lo; iu < hi; ++iu) {
          const auto i = static_cast<std::int64_t>(iu);
          float* crow = c + i * n;
          if (beta == 0.0f) {
            std::fill_n(crow, n, 0.0f);
          } else if (beta != 1.0f) {
            for (std::int64_t j = 0; j < n; ++j) crow[j] *= beta;
          }
          if (!transpose_b) {
            // Stream over B rows for cache-friendly access.
            for (std::int64_t p = 0; p < k; ++p) {
              const float av = alpha * a_at(i, p);
              if (av == 0.0f) continue;
              const float* brow = b + p * n;
              for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
            }
          } else {
            for (std::int64_t j = 0; j < n; ++j) {
              const float* brow = b + j * k;
              float acc = 0.0f;
              if (!transpose_a) {
                const float* arow = a + i * k;
                for (std::int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
              } else {
                for (std::int64_t p = 0; p < k; ++p) acc += a_at(i, p) * brow[p];
              }
              crow[j] += alpha * acc;
            }
          }
        }
      });
}

}  // namespace sh::tensor

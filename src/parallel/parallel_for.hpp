// OpenMP-style data-parallel loop built on ThreadPool.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace sh::parallel {

/// Runs `fn(begin, end)` over contiguous index chunks of `[begin, end)` on the
/// given pool. Blocks until all chunks complete. The caller's thread also
/// executes chunks, so the function works even with a saturated pool.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  std::size_t grain, Fn&& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t workers = pool.num_threads() + 1;
  std::size_t chunk = std::max<std::size_t>(grain, (n + workers - 1) / workers);
  if (chunk >= n) {
    fn(begin, end);
    return;
  }
  std::atomic<std::size_t> next{begin};
  auto body = [&] {
    // Bounded chunk claim: a blind fetch_add would keep pushing the counter
    // past `end` on every idle worker pass and could wrap it back into
    // [begin, end) near SIZE_MAX, re-running chunks. The compare-exchange
    // clamps the claimed upper bound at `end`, so the counter never exceeds
    // it and each index is claimed exactly once.
    std::size_t lo = next.load(std::memory_order_relaxed);
    while (lo < end) {
      const std::size_t hi = std::min(end - lo, chunk) + lo;
      if (next.compare_exchange_weak(lo, hi, std::memory_order_relaxed)) {
        fn(lo, hi);
        lo = next.load(std::memory_order_relaxed);
      }
      // On CAS failure `lo` was reloaded with the current counter.
    }
  };
  const std::size_t tasks = std::min(workers - 1, (n + chunk - 1) / chunk - 1);
  std::vector<std::future<void>> futs;
  futs.reserve(tasks);
  for (std::size_t i = 0; i < tasks; ++i) futs.push_back(pool.async(body));
  body();
  for (auto& f : futs) f.get();
}

/// Convenience overload using the global pool.
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  Fn&& fn) {
  parallel_for(ThreadPool::global(), begin, end, grain, std::forward<Fn>(fn));
}

}  // namespace sh::parallel

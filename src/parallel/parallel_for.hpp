// OpenMP-style data-parallel loop built on ThreadPool.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace sh::parallel {

/// Runs `fn(begin, end)` over contiguous index chunks of `[begin, end)` on the
/// given pool. Blocks until all chunks complete. The caller's thread also
/// executes chunks, so the function works even with a saturated pool.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  std::size_t grain, Fn&& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t workers = pool.num_threads() + 1;
  std::size_t chunk = std::max<std::size_t>(grain, (n + workers - 1) / workers);
  if (chunk >= n) {
    fn(begin, end);
    return;
  }
  std::atomic<std::size_t> next{begin};
  auto body = [&] {
    for (;;) {
      const std::size_t lo = next.fetch_add(chunk);
      if (lo >= end) return;
      fn(lo, std::min(lo + chunk, end));
    }
  };
  const std::size_t tasks = std::min(workers - 1, (n + chunk - 1) / chunk - 1);
  std::vector<std::future<void>> futs;
  futs.reserve(tasks);
  for (std::size_t i = 0; i < tasks; ++i) futs.push_back(pool.async(body));
  body();
  for (auto& f : futs) f.get();
}

/// Convenience overload using the global pool.
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  Fn&& fn) {
  parallel_for(ThreadPool::global(), begin, end, grain, std::forward<Fn>(fn));
}

}  // namespace sh::parallel

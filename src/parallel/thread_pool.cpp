#include "parallel/thread_pool.hpp"

#include <utility>

namespace sh::parallel {

std::size_t hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + active_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(hardware_threads());
  return pool;
}

}  // namespace sh::parallel

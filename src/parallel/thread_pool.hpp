// Thread pool used throughout STRONGHOLD for CPU-side work: concurrent
// optimizer actors, async transfer engines and data-parallel kernels.
//
// The paper builds its CPU-side concurrency on Ray actors over gRPC; this
// in-process pool provides the same semantics (asynchronous tasks dispatched
// to idle workers through callbacks) without the RPC layer.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace sh::parallel {

/// Fixed-size pool of worker threads consuming a FIFO task queue.
///
/// Tasks are arbitrary callables. `wait_idle()` blocks until every submitted
/// task has finished, which gives callers a cheap fork/join barrier without
/// tracking individual futures.
class ThreadPool {
 public:
  /// Creates `num_threads` workers. Zero maps to one worker so the pool is
  /// always able to make progress (important on single-core CI machines).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Enqueues a task and returns a future for its completion.
  template <typename F>
  auto async(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    submit([task] { (*task)(); });
    return fut;
  }

  /// Blocks until the queue is empty and all workers are idle.
  void wait_idle();

  std::size_t num_threads() const noexcept { return workers_.size(); }

  /// Number of tasks currently queued or running.
  std::size_t pending() const;

  /// Process-wide default pool sized to the hardware concurrency.
  static ThreadPool& global();

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Hardware concurrency with a floor of 1.
std::size_t hardware_threads() noexcept;

}  // namespace sh::parallel

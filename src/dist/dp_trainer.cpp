#include "dist/dp_trainer.hpp"

#include <stdexcept>
#include <thread>

#include "tensor/ops.hpp"

namespace sh::dist {

DataParallelTrainer::DataParallelTrainer(const nn::GptConfig& model_config,
                                         core::EngineConfig engine_config,
                                         int world)
    : comm_(world),
      head_index_(static_cast<std::size_t>(model_config.num_units()) - 1),
      seq_(model_config.max_seq) {
  if (world <= 0) throw std::invalid_argument("world must be >= 1");
  const float inv_world = 1.0f / static_cast<float>(world);
  ranks_.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    Rank rank;
    rank.model = std::make_unique<nn::GptModel>(model_config);
    core::EngineConfig cfg = engine_config;
    // Blocks reduce over the GPU channel; the pinned embedding/head over the
    // CPU channel. Each rank averages after the sum so every replica applies
    // the global-mean gradient.
    cfg.grad_reducer = [this, r, inv_world](std::size_t layer, float* grads,
                                            std::int64_t n) {
      const bool pinned = layer == 0 || layer == head_index_;
      comm_.all_reduce_sum(pinned ? Channel::Cpu : Channel::Gpu, r,
                           {grads, static_cast<std::size_t>(n)});
      tensor::scale(inv_world, grads, n);
    };
    rank.engine =
        std::make_unique<core::StrongholdEngine>(*rank.model, std::move(cfg));
    ranks_.push_back(std::move(rank));
  }
}

void DataParallelTrainer::init_params(std::uint64_t seed) {
  for (auto& r : ranks_) r.engine->init_params(seed);
}

float DataParallelTrainer::train_step(const data::Batch& global_batch) {
  const int world = this->world();
  const std::size_t tokens = global_batch.ids.size();
  const auto seq = static_cast<std::size_t>(seq_);
  if (tokens % seq != 0 ||
      (tokens / seq) % static_cast<std::size_t>(world) != 0) {
    throw std::invalid_argument(
        "global batch rows must divide evenly across ranks");
  }
  const std::size_t shard = tokens / static_cast<std::size_t>(world);

  std::vector<float> losses(static_cast<std::size_t>(world), 0.0f);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(world));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      try {
        data::Batch local;
        const std::size_t lo = static_cast<std::size_t>(r) * shard;
        local.ids.assign(
            global_batch.ids.begin() + static_cast<std::ptrdiff_t>(lo),
            global_batch.ids.begin() + static_cast<std::ptrdiff_t>(lo + shard));
        local.targets.assign(
            global_batch.targets.begin() + static_cast<std::ptrdiff_t>(lo),
            global_batch.targets.begin() +
                static_cast<std::ptrdiff_t>(lo + shard));
        losses[static_cast<std::size_t>(r)] =
            ranks_[static_cast<std::size_t>(r)].engine->train_step(local);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
  float mean = 0.0f;
  for (float l : losses) mean += l;
  return mean / static_cast<float>(world);
}

void DataParallelTrainer::snapshot_params(int rank, std::vector<float>& out) {
  ranks_.at(static_cast<std::size_t>(rank)).engine->snapshot_params(out);
}

core::EngineStats DataParallelTrainer::stats(int rank) const {
  return ranks_.at(static_cast<std::size_t>(rank)).engine->stats();
}

}  // namespace sh::dist

#include "dist/dp_trainer.hpp"

#include <stdexcept>
#include <thread>
#include <utility>

#include "tensor/ops.hpp"

namespace sh::dist {

DataParallelTrainer::DataParallelTrainer(const nn::GptConfig& model_config,
                                         core::EngineConfig engine_config,
                                         int world)
    : model_config_(model_config),
      base_config_(std::move(engine_config)),
      head_index_(static_cast<std::size_t>(model_config.num_units()) - 1),
      seq_(model_config.max_seq) {
  if (world <= 0) throw std::invalid_argument("world must be >= 1");
  // The trainer owns checkpointing: one directory, one writer, snapshots of
  // the replicated state captured on rank 0. Engines get the slot cleared
  // AND the env overlay suppressed (SH_CKPT_DIR would otherwise re-enable a
  // per-rank Checkpointer inside each engine's constructor), so they neither
  // open the same directory nor write per-rank duplicates.
  ckpt_cfg_ = ckpt::config_from_env(base_config_.ckpt);
  base_config_.ckpt = {};
  base_config_.ckpt_env_overrides = false;
  if (!ckpt_cfg_.dir.empty()) {
    ckpt_ = std::make_unique<ckpt::Checkpointer>(ckpt_cfg_);
  }
  ranks_.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) ranks_.push_back(make_rank());
  rebuild_comm();
}

std::unique_ptr<DataParallelTrainer::Rank> DataParallelTrainer::make_rank() {
  auto rank = std::make_unique<Rank>();
  rank->model = std::make_unique<nn::GptModel>(model_config_);
  core::EngineConfig cfg = base_config_;
  // Blocks reduce over the GPU channel; the pinned embedding/head over the
  // CPU channel. Each rank averages after the sum so every replica applies
  // the global-mean gradient. The lambda reads comm_index/inv_world_ at call
  // time, so ranks survive world-size changes without re-wiring.
  Rank* self = rank.get();
  cfg.grad_reducer = [this, self](std::size_t layer, float* grads,
                                  std::int64_t n) {
    const bool pinned = layer == 0 || layer == head_index_;
    comm_->all_reduce_sum(pinned ? Channel::Cpu : Channel::Gpu,
                          self->comm_index,
                          {grads, static_cast<std::size_t>(n)});
    tensor::scale(inv_world_, grads, n);
  };
  rank->engine =
      std::make_unique<core::StrongholdEngine>(*rank->model, std::move(cfg));
  return rank;
}

void DataParallelTrainer::rebuild_comm() {
  // Sense-reversing barriers inside a ProcessGroup assume a fixed world, so
  // elasticity swaps in fresh collectives. Retired traffic counters carry
  // over to keep floats_communicated() monotonic.
  if (comm_) floats_comm_base_ += comm_->floats_communicated();
  comm_ = std::make_unique<HeteroComm>(world());
  inv_world_ = 1.0f / static_cast<float>(world());
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    ranks_[r]->comm_index = static_cast<int>(r);
  }
}

std::size_t DataParallelTrainer::floats_communicated() const {
  return floats_comm_base_ + (comm_ ? comm_->floats_communicated() : 0);
}

void DataParallelTrainer::init_params(std::uint64_t seed) {
  for (auto& r : ranks_) r->engine->init_params(seed);
}

std::uint64_t DataParallelTrainer::current_step() const {
  return ranks_.empty() ? 0 : ranks_.front()->engine->stats().iterations;
}

float DataParallelTrainer::train_step(const data::Batch& global_batch) {
  const int world = this->world();
  const std::size_t tokens = global_batch.ids.size();
  const auto seq = static_cast<std::size_t>(seq_);
  if (tokens % seq != 0 ||
      (tokens / seq) % static_cast<std::size_t>(world) != 0) {
    throw std::invalid_argument(
        "global batch rows must divide evenly across ranks");
  }
  const std::size_t shard = tokens / static_cast<std::size_t>(world);

  std::vector<float> losses(static_cast<std::size_t>(world), 0.0f);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(world));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      try {
        data::Batch local;
        const std::size_t lo = static_cast<std::size_t>(r) * shard;
        local.ids.assign(
            global_batch.ids.begin() + static_cast<std::ptrdiff_t>(lo),
            global_batch.ids.begin() + static_cast<std::ptrdiff_t>(lo + shard));
        local.targets.assign(
            global_batch.targets.begin() + static_cast<std::ptrdiff_t>(lo),
            global_batch.targets.begin() +
                static_cast<std::ptrdiff_t>(lo + shard));
        losses[static_cast<std::size_t>(r)] =
            ranks_[static_cast<std::size_t>(r)]->engine->train_step(local);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
  float mean = 0.0f;
  for (float l : losses) mean += l;

  if (ckpt_ && ckpt_cfg_.every_n_steps != 0 &&
      current_step() % ckpt_cfg_.every_n_steps == 0) {
    // Replicated state: one snapshot (rank 0) covers the whole world; the
    // write+commit overlaps with the following steps.
    ckpt_->save_async(capture(*ranks_.front()->engine));
  }
  return mean / static_cast<float>(world);
}

ckpt::Snapshot DataParallelTrainer::capture(
    core::StrongholdEngine& engine) const {
  ckpt::Snapshot snap = engine.capture_snapshot();
  snap.blobs.put("dp.world", static_cast<std::uint32_t>(world()));
  return snap;
}

void DataParallelTrainer::save_checkpoint() {
  if (!ckpt_) {
    throw std::logic_error(
        "DataParallelTrainer: no checkpoint directory configured");
  }
  ckpt_->save_now(capture(*ranks_.front()->engine));
}

bool DataParallelTrainer::resume_from_latest() {
  if (!ckpt_) return false;
  ckpt::Snapshot snap;
  try {
    snap = ckpt_->restore_latest();
  } catch (const ckpt::RestoreError& e) {
    if (e.kind() == ckpt::RestoreErrorKind::NoValidGeneration) return false;
    throw;
  }
  // Replicated (not sharded) state: the ONE manifest restores any world
  // size. The shard each rank trains on next step is re-derived from the
  // current world, which is the whole of elastic re-sharding.
  for (auto& r : ranks_) r->engine->restore_snapshot(snap);
  return true;
}

void DataParallelTrainer::remove_rank(int r) {
  if (world() <= 1) {
    throw std::invalid_argument("remove_rank: world would become empty");
  }
  ranks_.at(static_cast<std::size_t>(r));  // bounds check
  ranks_.erase(ranks_.begin() + static_cast<std::ptrdiff_t>(r));
  rebuild_comm();
}

int DataParallelTrainer::add_rank() {
  std::unique_ptr<Rank> rank = make_rank();
  // Seed the joiner. Preferred source: the newest committed generation, when
  // it matches the current step — the rejoin then depends only on durable
  // state (a rank can join a restarted world). Fallback: a live snapshot of
  // rank 0 (e.g. mid-interval joins with no fresh generation).
  bool restored = false;
  if (ckpt_) {
    // Settle any in-flight async save first so a generation written at this
    // very boundary is visible — the rejoin is then deterministic instead of
    // racing the background commit.
    ckpt_->finish();
    const auto latest = ckpt_->latest();
    if (latest && *latest == current_step()) {
      try {
        rank->engine->restore_snapshot(ckpt_->restore(*latest));
        restored = true;
      } catch (const ckpt::RestoreError&) {
        // A corrupt newest generation must not fail the join; fall through
        // to the live-peer snapshot, exactly like a mid-interval join.
      }
    }
  }
  if (!restored) {
    rank->engine->restore_snapshot(capture(*ranks_.front()->engine));
  }
  ranks_.push_back(std::move(rank));
  rebuild_comm();
  return world() - 1;
}

void DataParallelTrainer::snapshot_params(int rank, std::vector<float>& out) {
  ranks_.at(static_cast<std::size_t>(rank))->engine->snapshot_params(out);
}

core::EngineStats DataParallelTrainer::stats(int rank) const {
  return ranks_.at(static_cast<std::size_t>(rank))->engine->stats();
}

}  // namespace sh::dist

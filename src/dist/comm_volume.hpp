// Communication-volume model of Section III-F: converting w-way model
// parallelism into w-way data parallelism (enabled by STRONGHOLD fitting the
// whole model on one node) changes the cross-server traffic from per-layer
// activation exchanges to one gradient all-reduce.
#pragma once

#include <cstdint>

namespace sh::dist {

struct VolumeParams {
  int w = 8;                   // parallelism degree
  std::int64_t layers = 50;    // n
  std::int64_t hidden = 4096;  // hd
  std::int64_t vocab = 30000;  // vs
  std::int64_t batch = 16;     // bs (per replica)
  std::int64_t seq = 1024;
};

/// V_dp = (w-1) w (12 n hd^2 + hd vs): gradient all-reduce volume.
double dp_volume(const VolumeParams& p);

/// V_mp = (w-1) w n bs seq hd: per-layer activation exchange volume.
double mp_volume(const VolumeParams& p);

/// V_mp / V_dp — the traffic reduction factor of switching MP -> DP.
double mp_over_dp(const VolumeParams& p);

/// The paper's simplified closed form for seq = 1024, vs = 30K:
/// V_mp/V_dp = bs / (3 hd / 256 + 30 / n) = k * bs.
double mp_over_dp_simplified(const VolumeParams& p);

}  // namespace sh::dist

// Data-parallel training across nodes with STRONGHOLD on each node
// (Sections III-F, VI-D2).
//
// Because offloading lets the *whole* model fit on a single node, the
// cluster can run plain data parallelism instead of model parallelism: each
// rank owns a full replica trained through its own StrongholdEngine, and
// per-layer gradients are all-reduced through the heterogeneous collective
// channels — GPU-resident block gradients on the GPU channel, the pinned
// embedding/head gradients on the CPU channel, concurrently usable
// (Section III-E2).
//
// Elasticity: because every rank holds the FULL replicated state, the world
// can grow or shrink at any step boundary. remove_rank() drops a replica and
// rebuilds the collectives; add_rank() builds a fresh replica and seeds it
// from the latest committed checkpoint generation when one matches the
// current step, else from a live peer's snapshot. Data "re-sharding" is
// implicit: train_step splits the global batch by the current world size, so
// a changed world deterministically re-derives every rank's shard.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ckpt/checkpointer.hpp"
#include "core/engine.hpp"
#include "dist/hetero_comm.hpp"
#include "nn/gpt.hpp"

namespace sh::dist {

class DataParallelTrainer {
 public:
  /// Creates `world` rank replicas of the model, each behind its own
  /// StrongholdEngine configured from `engine_config` (the grad_reducer slot
  /// is taken over by the trainer; `engine_config.ckpt` is taken over too —
  /// the TRAINER owns the checkpoint directory, so the replicated state is
  /// written once, not once per rank).
  DataParallelTrainer(const nn::GptConfig& model_config,
                      core::EngineConfig engine_config, int world);

  int world() const noexcept { return static_cast<int>(ranks_.size()); }

  /// Initialises every replica identically.
  void init_params(std::uint64_t seed);

  /// One data-parallel step: the global batch is split evenly across ranks;
  /// rank threads run concurrently and all-reduce gradients layer by layer.
  /// Returns the global mean loss. With `ckpt.every_n_steps` configured,
  /// commits a snapshot of the replicated state at that cadence.
  float train_step(const data::Batch& global_batch);

  /// Parameter snapshot of one rank (all ranks stay identical; verified by
  /// the tests).
  void snapshot_params(int rank, std::vector<float>& out);

  core::EngineStats stats(int rank) const;
  std::size_t floats_communicated() const;

  /// Completed optimizer iterations (identical on every rank).
  std::uint64_t current_step() const;

  // --- Elasticity (call between train_steps only) ---

  /// Removes rank `r` from the world; remaining ranks keep the full state
  /// and the next step re-shards the global batch over the smaller world.
  void remove_rank(int r);

  /// Adds one rank. Its replica is restored from the newest committed
  /// checkpoint generation when that generation's step equals current_step()
  /// (the deterministic re-sharding path ISSUE headline demands), otherwise
  /// from a live snapshot of rank 0. Returns the new rank's index.
  int add_rank();

  // --- Checkpoint/resume of the replicated training state ---

  /// Synchronous checkpoint of the replicated state (captured on rank 0).
  /// Throws std::logic_error when no checkpoint directory is configured.
  void save_checkpoint();

  /// Restores every rank from the newest valid generation. Returns false
  /// when the directory has no committed generation (or checkpointing is
  /// disabled); throws ckpt::RestoreError when a generation exists but does
  /// not fit the model.
  bool resume_from_latest();

  /// Trainer-level Checkpointer (nullptr when `ckpt.dir` was empty).
  ckpt::Checkpointer* checkpointer() noexcept { return ckpt_.get(); }

 private:
  struct Rank {
    std::unique_ptr<nn::GptModel> model;
    std::unique_ptr<core::StrongholdEngine> engine;
    int comm_index = 0;  ///< position in the current collectives
  };

  std::unique_ptr<Rank> make_rank();
  /// Rebuilds the collectives (and 1/world) after a world-size change.
  void rebuild_comm();
  ckpt::Snapshot capture(core::StrongholdEngine& engine) const;

  nn::GptConfig model_config_;
  core::EngineConfig base_config_;  // grad_reducer/ckpt slots cleared
  ckpt::Config ckpt_cfg_;
  std::unique_ptr<ckpt::Checkpointer> ckpt_;
  std::unique_ptr<HeteroComm> comm_;
  float inv_world_ = 1.0f;
  std::size_t floats_comm_base_ = 0;  // traffic of retired collectives
  std::size_t head_index_;
  std::int64_t seq_;
  std::vector<std::unique_ptr<Rank>> ranks_;
};

}  // namespace sh::dist

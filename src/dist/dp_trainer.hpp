// Data-parallel training across nodes with STRONGHOLD on each node
// (Sections III-F, VI-D2).
//
// Because offloading lets the *whole* model fit on a single node, the
// cluster can run plain data parallelism instead of model parallelism: each
// rank owns a full replica trained through its own StrongholdEngine, and
// per-layer gradients are all-reduced through the heterogeneous collective
// channels — GPU-resident block gradients on the GPU channel, the pinned
// embedding/head gradients on the CPU channel, concurrently usable
// (Section III-E2).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "dist/hetero_comm.hpp"
#include "nn/gpt.hpp"

namespace sh::dist {

class DataParallelTrainer {
 public:
  /// Creates `world` rank replicas of the model, each behind its own
  /// StrongholdEngine configured from `engine_config` (the grad_reducer slot
  /// is taken over by the trainer).
  DataParallelTrainer(const nn::GptConfig& model_config,
                      core::EngineConfig engine_config, int world);

  int world() const noexcept { return static_cast<int>(ranks_.size()); }

  /// Initialises every replica identically.
  void init_params(std::uint64_t seed);

  /// One data-parallel step: the global batch is split evenly across ranks;
  /// rank threads run concurrently and all-reduce gradients layer by layer.
  /// Returns the global mean loss.
  float train_step(const data::Batch& global_batch);

  /// Parameter snapshot of one rank (all ranks stay identical; verified by
  /// the tests).
  void snapshot_params(int rank, std::vector<float>& out);

  core::EngineStats stats(int rank) const;
  std::size_t floats_communicated() const {
    return comm_.floats_communicated();
  }

 private:
  struct Rank {
    std::unique_ptr<nn::GptModel> model;
    std::unique_ptr<core::StrongholdEngine> engine;
  };

  HeteroComm comm_;
  std::size_t head_index_;
  std::int64_t seq_;
  std::vector<Rank> ranks_;
};

}  // namespace sh::dist

#include "dist/process_group.hpp"

#include <algorithm>
#include <cstring>

namespace sh::dist {

Barrier::Barrier(int world) : world_(world) {
  if (world <= 0) throw std::invalid_argument("Barrier world must be >= 1");
}

void Barrier::arrive_and_wait() {
  std::unique_lock<std::mutex> lock(mu_);
  const std::uint64_t gen = generation_;
  if (++waiting_ == world_) {
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] { return generation_ != gen; });
}

ProcessGroup::ProcessGroup(int world)
    : world_(world), enter_(world), mid_(world), exit_(world) {
  if (world <= 0) throw std::invalid_argument("world must be >= 1");
  ptrs_.resize(static_cast<std::size_t>(world));
  sizes_.resize(static_cast<std::size_t>(world));
  cptrs_.resize(static_cast<std::size_t>(world));
}

void ProcessGroup::check_rank(int rank) const {
  if (rank < 0 || rank >= world_) {
    throw std::out_of_range("rank out of range");
  }
}

void ProcessGroup::all_reduce_sum(int rank, std::span<float> data) {
  check_rank(rank);
  ptrs_[static_cast<std::size_t>(rank)] = data.data();
  sizes_[static_cast<std::size_t>(rank)] = data.size();
  enter_.arrive_and_wait();
  // Every rank validates, so on mismatch all ranks throw together instead of
  // some deadlocking at the next barrier.
  for (int r = 0; r < world_; ++r) {
    if (sizes_[static_cast<std::size_t>(r)] != data.size()) {
      throw std::invalid_argument("all_reduce: size mismatch across ranks");
    }
  }
  if (rank == 0) {
    scratch_.assign(data.size(), 0.0f);
    // Deterministic rank-order accumulation.
    for (int r = 0; r < world_; ++r) {
      const float* src = ptrs_[static_cast<std::size_t>(r)];
      for (std::size_t i = 0; i < data.size(); ++i) scratch_[i] += src[i];
    }
    std::lock_guard<std::mutex> lock(mu_);
    // Paper convention (Section III-F): (w-1) * w * N.
    floats_communicated_ +=
        static_cast<std::size_t>(world_ - 1) * world_ * data.size();
  }
  mid_.arrive_and_wait();
  std::copy(scratch_.begin(), scratch_.end(), data.begin());
  exit_.arrive_and_wait();
}

void ProcessGroup::all_gather(int rank, std::span<const float> in,
                              std::span<float> out) {
  check_rank(rank);
  if (out.size() != in.size() * static_cast<std::size_t>(world_)) {
    throw std::invalid_argument("all_gather: out must be world * in");
  }
  cptrs_[static_cast<std::size_t>(rank)] = in.data();
  sizes_[static_cast<std::size_t>(rank)] = in.size();
  enter_.arrive_and_wait();
  for (int r = 0; r < world_; ++r) {
    std::memcpy(out.data() + static_cast<std::size_t>(r) * in.size(),
                cptrs_[static_cast<std::size_t>(r)],
                in.size() * sizeof(float));
  }
  if (rank == 0) {
    std::lock_guard<std::mutex> lock(mu_);
    floats_communicated_ +=
        static_cast<std::size_t>(world_ - 1) * world_ * in.size();
  }
  exit_.arrive_and_wait();
}

void ProcessGroup::reduce_scatter_sum(int rank, std::span<const float> in,
                                      std::span<float> out) {
  check_rank(rank);
  if (in.size() != out.size() * static_cast<std::size_t>(world_)) {
    throw std::invalid_argument("reduce_scatter: in must be world * out");
  }
  cptrs_[static_cast<std::size_t>(rank)] = in.data();
  enter_.arrive_and_wait();
  if (rank == 0) {
    scratch_.assign(in.size(), 0.0f);
    for (int r = 0; r < world_; ++r) {
      const float* src = cptrs_[static_cast<std::size_t>(r)];
      for (std::size_t i = 0; i < in.size(); ++i) scratch_[i] += src[i];
    }
    std::lock_guard<std::mutex> lock(mu_);
    floats_communicated_ +=
        static_cast<std::size_t>(world_ - 1) * world_ * out.size();
  }
  mid_.arrive_and_wait();
  std::memcpy(out.data(),
              scratch_.data() + static_cast<std::size_t>(rank) * out.size(),
              out.size() * sizeof(float));
  exit_.arrive_and_wait();
}

void ProcessGroup::broadcast(int rank, int root, std::span<float> data) {
  check_rank(rank);
  check_rank(root);
  ptrs_[static_cast<std::size_t>(rank)] = data.data();
  enter_.arrive_and_wait();
  if (rank != root) {
    std::memcpy(data.data(), ptrs_[static_cast<std::size_t>(root)],
                data.size() * sizeof(float));
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    floats_communicated_ += static_cast<std::size_t>(world_ - 1) * data.size();
  }
  exit_.arrive_and_wait();
}

void ProcessGroup::barrier(int rank) {
  check_rank(rank);
  enter_.arrive_and_wait();
}

std::size_t ProcessGroup::floats_communicated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return floats_communicated_;
}

}  // namespace sh::dist

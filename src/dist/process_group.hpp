// In-process process group: ranks are threads, collectives move real data.
//
// This substitutes for NCCL/Gloo in the paper. Determinism matters for the
// equivalence tests, so reductions always accumulate in rank order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <span>
#include <stdexcept>
#include <vector>

namespace sh::dist {

/// A reusable sense-reversing barrier for `world` participants.
class Barrier {
 public:
  explicit Barrier(int world);
  void arrive_and_wait();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int world_;
  int waiting_ = 0;
  std::uint64_t generation_ = 0;
};

/// Collective communication over `world` rank-threads. Every rank must call
/// each collective exactly once per round, like MPI/NCCL communicators.
class ProcessGroup {
 public:
  explicit ProcessGroup(int world);

  int world() const noexcept { return world_; }

  /// Element-wise sum across ranks; every rank ends with the full sum.
  /// Accumulation order is rank 0, 1, ..., w-1 (deterministic).
  void all_reduce_sum(int rank, std::span<float> data);

  /// Concatenates every rank's `in` into `out` (out.size == w * in.size).
  void all_gather(int rank, std::span<const float> in, std::span<float> out);

  /// Sums across ranks, then rank r keeps shard r
  /// (in.size == w * out.size).
  void reduce_scatter_sum(int rank, std::span<const float> in,
                          std::span<float> out);

  /// Copies root's buffer to every rank.
  void broadcast(int rank, int root, std::span<float> data);

  void barrier(int rank);

  /// Total floats moved through collectives (communication volume counter,
  /// used by the Section VI-D2 experiments).
  std::size_t floats_communicated() const;

 private:
  void check_rank(int rank) const;

  int world_;
  Barrier enter_;
  Barrier mid_;
  Barrier exit_;
  mutable std::mutex mu_;
  std::vector<float*> ptrs_;
  std::vector<std::size_t> sizes_;
  std::vector<const float*> cptrs_;
  std::vector<float> scratch_;
  std::size_t floats_communicated_ = 0;
};

}  // namespace sh::dist

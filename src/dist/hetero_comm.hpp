// Heterogeneous collective communications (Section III-E2).
//
// Native frameworks allow only one tensor kind (CPU or CUDA) in a collective
// at a time; STRONGHOLD extends NCCL and Gloo so CPU-tensor and GPU-tensor
// collectives proceed *concurrently*. Here each device kind gets its own
// independent ProcessGroup (channel), so a CPU-side all-reduce never
// serialises against a GPU-side one.
#pragma once

#include <functional>
#include <span>

#include "dist/process_group.hpp"

namespace sh::dist {

enum class Channel { Gpu, Cpu };

class HeteroComm {
 public:
  explicit HeteroComm(int world) : gpu_(world), cpu_(world) {}

  ProcessGroup& group(Channel ch) noexcept {
    return ch == Channel::Gpu ? gpu_ : cpu_;
  }

  void all_reduce_sum(Channel ch, int rank, std::span<float> data) {
    group(ch).all_reduce_sum(rank, data);
  }

  int world() const noexcept { return gpu_.world(); }

  std::size_t floats_communicated() const {
    return gpu_.floats_communicated() + cpu_.floats_communicated();
  }

 private:
  ProcessGroup gpu_;
  ProcessGroup cpu_;
};

}  // namespace sh::dist

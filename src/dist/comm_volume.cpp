#include "dist/comm_volume.hpp"

namespace sh::dist {

double dp_volume(const VolumeParams& p) {
  const double hd = static_cast<double>(p.hidden);
  return static_cast<double>(p.w - 1) * p.w *
         (12.0 * static_cast<double>(p.layers) * hd * hd +
          hd * static_cast<double>(p.vocab));
}

double mp_volume(const VolumeParams& p) {
  return static_cast<double>(p.w - 1) * p.w *
         static_cast<double>(p.layers) * static_cast<double>(p.batch) *
         static_cast<double>(p.seq) * static_cast<double>(p.hidden);
}

double mp_over_dp(const VolumeParams& p) {
  return mp_volume(p) / dp_volume(p);
}

double mp_over_dp_simplified(const VolumeParams& p) {
  const double k = 1.0 / (3.0 * static_cast<double>(p.hidden) / 256.0 +
                          30.0 / static_cast<double>(p.layers));
  return k * static_cast<double>(p.batch);
}

}  // namespace sh::dist

#include "hw/memory_pool.hpp"

#include <algorithm>
#include <limits>

namespace sh::hw {

OomError::OomError(const std::string& pool, std::size_t requested_bytes,
                   std::size_t free_bytes)
    : std::runtime_error("OOM in pool '" + pool + "': requested " +
                         std::to_string(requested_bytes) + " bytes, " +
                         std::to_string(free_bytes) + " free"),
      requested_(requested_bytes),
      free_(free_bytes) {}

MemoryPool::MemoryPool(std::string name, std::size_t capacity_bytes)
    : name_(std::move(name)), capacity_(capacity_bytes) {}

MemoryPool::~MemoryPool() = default;

float* MemoryPool::allocate_floats(std::size_t n) {
  const std::size_t bytes = n * sizeof(float);
  std::lock_guard<std::mutex> lock(mu_);
  if (used_ + bytes > capacity_) {
    throw OomError(name_, bytes, capacity_ - used_);
  }
  auto block = std::make_unique<float[]>(n);
  float* ptr = block.get();
  used_ += bytes;
  high_water_ = std::max(high_water_, used_);
  sizes_[ptr] = bytes;
  blocks_[ptr] = std::move(block);
  return ptr;
}

void MemoryPool::deallocate(float* ptr) {
  if (ptr == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blocks_.find(ptr);
  if (it == blocks_.end()) {
    throw std::logic_error("pool '" + name_ + "': unknown pointer freed");
  }
  const std::size_t bytes = sizes_.at(ptr);
  used_ -= bytes;
  sizes_.erase(ptr);
  blocks_.erase(it);
}

std::size_t MemoryPool::used() const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_;
}

std::size_t MemoryPool::free_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_ - used_;
}

std::size_t MemoryPool::high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

std::size_t MemoryPool::live_allocations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocks_.size();
}

}  // namespace sh::hw

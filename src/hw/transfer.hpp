// Asynchronous copy engine modelling a CUDA copy stream.
//
// Copies are executed FIFO on a dedicated worker thread so they genuinely
// overlap with compute threads, like asynchronous cudaMemcpyAsync on a
// dedicated stream over pinned memory. An optional bandwidth throttle slows
// copies down to PCIe-like speeds for tests that need to provoke
// prefetch-miss / overlap behaviour.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>

namespace sh::hw {

class TransferEngine {
 public:
  /// `bytes_per_second` == 0 disables throttling (copies run at memcpy speed).
  explicit TransferEngine(std::string name, double bytes_per_second = 0.0);
  ~TransferEngine();

  TransferEngine(const TransferEngine&) = delete;
  TransferEngine& operator=(const TransferEngine&) = delete;

  /// Enqueues an asynchronous copy of `n` floats. The returned future
  /// becomes ready when the copy has completed. Source and destination must
  /// stay valid until then.
  std::shared_future<void> copy_async(const float* src, float* dst,
                                      std::size_t n);

  /// Enqueues an arbitrary job on the copy stream (keeps FIFO order with
  /// copies) — used for "free the buffer after the copy" style chaining.
  std::shared_future<void> run_async(std::function<void()> job);

  /// Blocks until every enqueued operation has completed.
  void wait_all();

  std::size_t completed_transfers() const;
  std::size_t bytes_transferred() const;
  /// Jobs enqueued or executing right now (an observability gauge; the value
  /// is stale the moment it returns).
  std::size_t queue_depth() const;
  const std::string& name() const noexcept { return name_; }

 private:
  struct Job {
    std::function<void()> work;
    std::promise<void> done;
  };

  void worker_loop();

  std::string name_;
  std::string obs_track_;  // "<name>-queue": worker occupancy span track
  double bytes_per_second_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable cv_idle_;
  std::deque<Job> queue_;
  bool stop_ = false;
  bool busy_ = false;
  std::size_t completed_ = 0;
  std::size_t bytes_ = 0;
  std::thread worker_;
};

}  // namespace sh::hw

// Asynchronous copy engine modelling a CUDA copy stream.
//
// Copies are executed FIFO on a dedicated worker thread so they genuinely
// overlap with compute threads, like asynchronous cudaMemcpyAsync on a
// dedicated stream over pinned memory. An optional bandwidth throttle slows
// copies down to PCIe-like speeds for tests that need to provoke
// prefetch-miss / overlap behaviour.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>

namespace sh::hw {

/// Bounded-retry policy for run_async_retry. The engine is storage-agnostic:
/// which exceptions are worth retrying, how retries are counted, and what a
/// permanently failed op turns into are all supplied by the caller
/// (storage::SwapFile wires these to its fault counters and typed IoError).
struct RetryPolicy {
  /// Total tries per job (1 = no retry).
  std::size_t max_attempts = 1;
  /// Exponential backoff between attempts, executed ON the worker thread —
  /// a faulted op stalls the FIFO queue like a real stalled NVMe queue.
  double backoff_initial_s = 0.0;
  double backoff_multiplier = 2.0;
  double backoff_max_s = 0.0;  ///< 0 = uncapped
  /// Obs track for "retry" spans covering each backoff wait (nullptr = off).
  const char* obs_track = nullptr;
  /// Returns true if the failure is worth another attempt. Unset = never.
  std::function<bool(const std::exception_ptr&)> retryable;
  /// Invoked before each backoff+reattempt with (attempt, backoff seconds).
  std::function<void(std::size_t, double)> on_retry;
  /// Invoked when attempts are exhausted (or the error is non-retryable
  /// after a retry sequence began); may translate the final exception. A
  /// null return rethrows the original.
  std::function<std::exception_ptr(const std::exception_ptr&, std::size_t)>
      on_exhausted;
};

class TransferEngine {
 public:
  /// `bytes_per_second` == 0 disables throttling (copies run at memcpy speed).
  explicit TransferEngine(std::string name, double bytes_per_second = 0.0);
  ~TransferEngine();

  TransferEngine(const TransferEngine&) = delete;
  TransferEngine& operator=(const TransferEngine&) = delete;

  /// Enqueues an asynchronous copy of `bytes` bytes (the primary, byte-typed
  /// entry point — transfers are priced in actual wire bytes, whatever the
  /// element encoding). The returned future becomes ready when the copy has
  /// completed. Source and destination must stay valid until then.
  std::shared_future<void> copy_async(const void* src, void* dst,
                                      std::size_t bytes);

  /// Float-typed convenience wrapper: copies `n` floats (n * 4 bytes).
  std::shared_future<void> copy_async(const float* src, float* dst,
                                      std::size_t n);

  /// Enqueues an arbitrary job on the copy stream (keeps FIFO order with
  /// copies) — used for "free the buffer after the copy" style chaining.
  std::shared_future<void> run_async(std::function<void()> job);

  /// Enqueues `job` with a bounded-retry policy. The job receives the
  /// 0-based attempt number; on a failure the policy deems retryable it is
  /// re-run after exponential backoff (all on the worker thread, preserving
  /// FIFO order with other jobs). Jobs must be idempotent. The returned
  /// future carries the final exception once attempts are exhausted
  /// (optionally translated by policy.on_exhausted).
  std::shared_future<void> run_async_retry(
      std::function<void(std::size_t)> job, RetryPolicy policy);

  /// Blocks until every enqueued operation has completed.
  void wait_all();

  /// Accounts `bytes` of wire traffic performed by a run_async job body.
  /// copy_async records its own bytes; jobs that move data themselves (the
  /// engine's fault-in/evict paths) call this with the true transferred
  /// byte count so bytes_transferred() stays dtype-honest. Safe to call
  /// from inside a job (jobs run outside the stats lock).
  void record_transfer(std::size_t bytes);

  std::size_t completed_transfers() const;
  std::size_t bytes_transferred() const;
  /// Jobs enqueued or executing right now (an observability gauge; the value
  /// is stale the moment it returns).
  std::size_t queue_depth() const;
  const std::string& name() const noexcept { return name_; }

 private:
  struct Job {
    std::function<void()> work;
    std::promise<void> done;
  };

  void worker_loop();

  std::string name_;
  std::string obs_track_;  // "<name>-queue": worker occupancy span track
  double bytes_per_second_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable cv_idle_;
  std::deque<Job> queue_;
  bool stop_ = false;
  bool busy_ = false;
  std::size_t completed_ = 0;
  std::size_t bytes_ = 0;
  std::thread worker_;
};

}  // namespace sh::hw

#include "hw/transfer.hpp"

#include <chrono>
#include <cstring>
#include <exception>
#include <thread>

#include "obs/obs.hpp"

namespace sh::hw {

TransferEngine::TransferEngine(std::string name, double bytes_per_second)
    : name_(std::move(name)),
      obs_track_(name_ + "-queue"),
      bytes_per_second_(bytes_per_second) {
  worker_ = std::thread([this] { worker_loop(); });
}

TransferEngine::~TransferEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

std::shared_future<void> TransferEngine::copy_async(const void* src, void* dst,
                                                    std::size_t bytes) {
  const double throttle = bytes_per_second_;
  auto work = [this, src, dst, bytes, throttle] {
    std::memcpy(dst, src, bytes);
    if (throttle > 0.0) {
      const double seconds = static_cast<double>(bytes) / throttle;
      std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++completed_;
    bytes_ += bytes;
  };
  return run_async(std::move(work));
}

std::shared_future<void> TransferEngine::copy_async(const float* src,
                                                    float* dst, std::size_t n) {
  return copy_async(static_cast<const void*>(src), static_cast<void*>(dst),
                    n * sizeof(float));
}

void TransferEngine::record_transfer(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  ++completed_;
  bytes_ += bytes;
}

std::shared_future<void> TransferEngine::run_async_retry(
    std::function<void(std::size_t)> job, RetryPolicy policy) {
  auto wrapper = [job = std::move(job), policy = std::move(policy)] {
    double backoff = policy.backoff_initial_s;
    const std::size_t max_attempts =
        policy.max_attempts > 0 ? policy.max_attempts : 1;
    for (std::size_t attempt = 0;; ++attempt) {
      try {
        job(attempt);
        return;
      } catch (...) {
        std::exception_ptr err = std::current_exception();
        const bool retryable = policy.retryable && policy.retryable(err);
        if (!retryable || attempt + 1 >= max_attempts) {
          if (policy.on_exhausted) {
            std::exception_ptr translated =
                policy.on_exhausted(err, attempt + 1);
            if (translated) err = std::move(translated);
          }
          std::rethrow_exception(err);
        }
        if (policy.on_retry) policy.on_retry(attempt, backoff);
        if (backoff > 0.0) {
          // The backoff stalls the FIFO worker on purpose: downstream ops
          // wait behind the unhealthy one exactly like a real device queue.
          const double t0 = obs::wall_seconds();
          std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
          if (policy.obs_track != nullptr) {
            obs::span(policy.obs_track, "retry", t0, obs::wall_seconds());
          }
        } else if (policy.obs_track != nullptr) {
          obs::instant(policy.obs_track, "retry");
        }
        backoff *= policy.backoff_multiplier;
        if (policy.backoff_max_s > 0.0 && backoff > policy.backoff_max_s) {
          backoff = policy.backoff_max_s;
        }
      }
    }
  };
  return run_async(std::move(wrapper));
}

std::shared_future<void> TransferEngine::run_async(std::function<void()> job) {
  Job j;
  j.work = std::move(job);
  auto fut = j.done.get_future().share();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(j));
  }
  cv_.notify_one();
  return fut;
}

void TransferEngine::wait_all() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

std::size_t TransferEngine::completed_transfers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

std::size_t TransferEngine::bytes_transferred() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

std::size_t TransferEngine::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + (busy_ ? 1 : 0);
}

void TransferEngine::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    try {
      // Worker-occupancy span on "<name>-queue" (jobs may block on upstream
      // dependencies, so this is queue service time, not pure copy time —
      // the engine records its copy spans on the bare "<name>" track).
      obs::ObsScope scope(obs_track_.c_str(), "op");
      job.work();
      job.done.set_value();
    } catch (...) {
      job.done.set_exception(std::current_exception());
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      busy_ = false;
      if (queue_.empty()) cv_idle_.notify_all();
    }
  }
}

}  // namespace sh::hw

// Capacity-enforced memory pools standing in for device memories.
//
// The numeric training path allocates real host memory through these pools,
// but each pool enforces a configurable capacity and throws OomError on
// exhaustion — giving the offload engine a faithful "GPU memory" to manage.
// (Use-after-evict poisoning lives in core::BufferPool, which recycles slots
// rather than freeing them.)
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace sh::hw {

class OomError : public std::runtime_error {
 public:
  OomError(const std::string& pool, std::size_t requested_bytes,
           std::size_t free_bytes);

  std::size_t requested_bytes() const noexcept { return requested_; }
  std::size_t free_bytes() const noexcept { return free_; }

 private:
  std::size_t requested_;
  std::size_t free_;
};

class MemoryPool {
 public:
  /// `capacity_bytes` bounds the sum of live allocations.
  MemoryPool(std::string name, std::size_t capacity_bytes);
  ~MemoryPool();

  MemoryPool(const MemoryPool&) = delete;
  MemoryPool& operator=(const MemoryPool&) = delete;

  /// Allocates `n` floats; throws OomError if the pool would overflow.
  float* allocate_floats(std::size_t n);

  /// Releases a block returned by allocate_floats.
  void deallocate(float* ptr);

  const std::string& name() const noexcept { return name_; }
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t used() const;
  std::size_t free_bytes() const;
  std::size_t high_water() const;
  std::size_t live_allocations() const;

 private:
  std::string name_;
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
  std::unordered_map<float*, std::unique_ptr<float[]>> blocks_;
  std::unordered_map<float*, std::size_t> sizes_;
};

}  // namespace sh::hw

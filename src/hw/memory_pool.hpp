// Compatibility shim: the capacity-enforced device pool grew into the
// accounted sh::mem subsystem. hw::MemoryPool is now mem::DeviceArena — the
// same allocate_floats/deallocate/OomError surface, plus named regions,
// reservation charging, and the pressure layer. See mem/device_arena.hpp.
#pragma once

#include "mem/device_arena.hpp"

namespace sh::hw {

using OomError = ::sh::mem::OomError;
using MemoryPool = ::sh::mem::DeviceArena;

}  // namespace sh::hw

#include "obs/export.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace sh::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

constexpr int kWallPid = 1;
constexpr int kVirtualPid = 2;

void meta_event(std::ostream& os, int pid, int tid, const char* what,
                const std::string& name, bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << "    {\"ph\": \"M\", \"pid\": " << pid;
  if (tid >= 0) os << ", \"tid\": " << tid;
  os << ", \"name\": \"" << what << "\", \"args\": {\"name\": \""
     << json_escape(name) << "\"}}";
}

void span_event(std::ostream& os, int pid, int tid, const Span& s,
                const char* cat, bool& first) {
  if (!first) os << ",\n";
  first = false;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", s.start_s * 1e6);
  os << "    {\"ph\": \"" << (s.instant ? 'i' : 'X') << "\", \"pid\": " << pid
     << ", \"tid\": " << tid << ", \"cat\": \"" << cat << "\", \"name\": \""
     << json_escape(s.name) << "\", \"ts\": " << buf;
  if (s.instant) {
    os << ", \"s\": \"t\"";
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", s.duration() * 1e6);
    os << ", \"dur\": " << buf;
  }
  os << "}";
}

}  // namespace

void write_chrome_trace(std::ostream& os, const std::vector<Span>& wall,
                        const sim::Trace* virt,
                        const MetricsSnapshot* metrics) {
  os << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  bool first = true;
  meta_event(os, kWallPid, -1, "process_name", "wall-clock", first);

  // One Chrome thread per (track, recording thread): spans from different
  // OS threads may genuinely overlap in time, and Perfetto only nests
  // correctly-contained events on one track.
  std::map<std::string, int> lanes;   // "track#tid" -> chrome tid
  std::map<std::string, int> counts;  // track -> lanes seen
  int next_tid = 1;
  for (const Span& s : wall) {
    const std::string key = s.track + "#" + std::to_string(s.tid);
    auto it = lanes.find(key);
    if (it == lanes.end()) {
      const int lane = next_tid++;
      lanes.emplace(key, lane);
      const int nth = counts[s.track]++;
      meta_event(os, kWallPid, lane, "thread_name",
                 nth == 0 ? s.track : s.track + "/" + std::to_string(nth),
                 first);
      it = lanes.find(key);
    }
    span_event(os, kWallPid, it->second, s, "wall", first);
  }

  if (virt != nullptr) {
    meta_event(os, kVirtualPid, -1, "process_name", "virtual-time", first);
    std::map<std::string, int> resources;
    for (const auto& s : virt->spans()) {
      auto it = resources.find(s.resource);
      if (it == resources.end()) {
        const int lane = next_tid++;
        resources.emplace(s.resource, lane);
        meta_event(os, kVirtualPid, lane, "thread_name", s.resource, first);
        it = resources.find(s.resource);
      }
      Span as_span;
      as_span.name = s.label;
      as_span.start_s = s.interval.start;
      as_span.end_s = s.interval.end;
      span_event(os, kVirtualPid, it->second, as_span, "virtual", first);
    }
  }

  os << "\n]";
  if (metrics != nullptr) {
    os << ",\n\"metrics\": [\n";
    for (std::size_t i = 0; i < metrics->metrics.size(); ++i) {
      const Metric& m = metrics->metrics[i];
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", m.value);
      os << "    {\"name\": \"" << json_escape(m.name) << "\", \"value\": "
         << buf << ", \"unit\": \"" << json_escape(m.unit) << "\"}"
         << (i + 1 < metrics->metrics.size() ? ",\n" : "\n");
    }
    os << "]";
  }
  os << "\n}\n";
}

bool dump_chrome_trace(const std::string& path, const sim::Trace* virt) {
  std::ofstream os(path);
  if (!os) return false;
  const std::vector<Span> wall = Recorder::global().snapshot();
  const MetricsSnapshot metrics = Registry::global().snapshot();
  write_chrome_trace(os, wall, virt, &metrics);
  return os.good();
}

sim::Trace to_sim_trace(const std::vector<Span>& spans) {
  sim::Trace trace;
  for (const Span& s : spans) {
    if (s.instant) continue;
    trace.record(s.track, s.name, {s.start_s, s.end_s});
  }
  return trace;
}

void write_metrics_json(std::ostream& os, const MetricsSnapshot& snapshot) {
  os << "{\n  \"metrics\": [\n";
  for (std::size_t i = 0; i < snapshot.metrics.size(); ++i) {
    const Metric& m = snapshot.metrics[i];
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", m.value);
    os << "    {\"name\": \"" << json_escape(m.name) << "\", \"value\": "
       << buf << ", \"unit\": \"" << json_escape(m.unit) << "\"}"
       << (i + 1 < snapshot.metrics.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

}  // namespace sh::obs

// sh::obs metrics — named counters/gauges/histograms and the process-wide
// snapshot registry that absorbs the runtime's scattered stat surfaces.
//
// The registry is PULL-based: subsystems register a provider callback that
// appends (name, value, unit) rows when a snapshot is taken, so steady-state
// execution pays nothing — existing accessors (EngineStats, serve latency
// percentiles, SwapFile counters) keep working and are additionally exported
// through one obs::Registry::global().snapshot() surface. Benches serialize
// snapshots with obs::write_metrics_json (src/obs/export.hpp).
//
// Metric naming schema (prefixes, units) is documented in
// docs/OBSERVABILITY.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sh::obs {

/// Monotonic event count. Lock-free; readable while hot paths bump it.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous level (queue depth, in-flight tasks). Lock-free.
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Sample-storing distribution with interpolated percentiles — the one
/// implementation of "sort the samples and take p50/p99" (serve request
/// latency previously hand-rolled this).
class Histogram {
 public:
  void record(double v);
  std::size_t count() const;
  double sum() const;
  /// Linearly interpolated percentile, q in [0, 1] (0.5 = p50, 0.99 = p99).
  /// Returns 0 with no samples.
  double percentile(double q) const;

 private:
  mutable std::mutex mu_;
  std::vector<double> samples_;
};

struct Metric {
  std::string name;   ///< dotted path, e.g. "engine.h2d_bytes"
  double value = 0.0;
  std::string unit;   ///< "bytes", "count", "s", "layers", "" (dimensionless)
};

struct MetricsSnapshot {
  std::vector<Metric> metrics;

  void add(std::string name, double value, std::string unit = "count") {
    metrics.push_back({std::move(name), value, std::move(unit)});
  }
  /// First metric with `name` (nullptr if absent). Snapshot rows keep
  /// provider registration order; duplicate names are allowed (two engines).
  const Metric* find(const std::string& name) const;
};

/// Snapshot aggregator. Subsystems register providers at construction and
/// remove them in their destructor (before tearing anything the callback
/// touches). Providers run under the registry lock: after remove_provider
/// returns, the callback will never run again.
class Registry {
 public:
  static Registry& global();

  using Provider = std::function<void(MetricsSnapshot&)>;

  std::uint64_t add_provider(Provider p);
  void remove_provider(std::uint64_t id);
  std::size_t provider_count() const;

  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::uint64_t next_id_ = 1;
  std::vector<std::pair<std::uint64_t, Provider>> providers_;
};

}  // namespace sh::obs

// sh::obs — process-wide observability: wall-clock span recording.
//
// The simulator has always had a timeline (sim::Trace); the *numeric*
// runtime's telemetry was fragmented across subsystem-local stats. This
// recorder gives every real execution path (engine, transfers, optimizer
// actors, swap I/O, serving, arena pressure) one structured span stream that
// exports to Chrome trace-event JSON (Perfetto / chrome://tracing) — the
// runtime counterpart of the paper's Figure 4 profiling trace.
//
// Contract: recording is OFF by default. When disabled, every instrumentation
// site reduces to one relaxed atomic load, so the engine's bit-identity and
// performance contracts are untouched. When enabled, spans append to
// per-thread buffers (each guarded by its own, essentially uncontended,
// mutex), so concurrent executors / transfer workers / optimizer actors
// record without serializing on a global lock.
//
// Span schema (tracks, labels, units) is documented in docs/OBSERVABILITY.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sh::obs {

/// Seconds on the process-wide monotonic clock (steady_clock). Every
/// subsystem that records spans uses this one clock so tracks line up.
double wall_seconds();

struct Span {
  std::string track;  ///< resource lane: "gpu", "h2d", "cpu-opt", "serve", ...
  std::string name;   ///< event label: "f", "p", "update", "step[4]", ...
  double start_s = 0.0;  ///< seconds since the recorder epoch
  double end_s = 0.0;    ///< == start_s for instant events
  std::uint32_t tid = 0; ///< recorder-assigned id of the recording thread
  bool instant = false;  ///< point event (arena pressure, deferred prefetch)
  double duration() const noexcept { return end_s - start_s; }
};

/// Thread-safe wall-clock span recorder. Use Recorder::global() — the
/// instrumented subsystems all record there — or construct standalone
/// instances in tests.
class Recorder {
 public:
  Recorder();
  ~Recorder();

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// The process-wide recorder every instrumentation site uses.
  static Recorder& global();

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  /// The fast path every instrumentation site checks first.
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Recorder epoch on the wall_seconds() clock (set at construction).
  double epoch() const noexcept { return epoch_; }
  /// Seconds since the epoch.
  double now() const { return wall_seconds() - epoch_; }

  /// Records a completed span; t0/t1 are absolute wall_seconds() values.
  /// No-op when disabled.
  void record(const char* track, std::string name, double t0_abs,
              double t1_abs);

  /// Records a point event at the current time. No-op when disabled.
  void record_instant(const char* track, std::string name);

  /// Copies every recorded span, sorted by start time. Safe to call while
  /// other threads keep recording (their in-flight spans may be missed).
  std::vector<Span> snapshot() const;

  /// Drops all recorded spans (buffers stay registered).
  void clear();

 private:
  struct ThreadBuf {
    std::mutex mu;
    std::vector<Span> spans;
    std::uint32_t tid = 0;
  };

  ThreadBuf& local_buf();

  const std::uint64_t recorder_id_;
  std::atomic<bool> enabled_{false};
  double epoch_;
  mutable std::mutex mu_;  // guards bufs_ (registration + snapshot)
  std::vector<std::shared_ptr<ThreadBuf>> bufs_;
  std::atomic<std::uint32_t> next_tid_{1};
};

/// RAII nested scope on the global recorder: records [construction,
/// destruction] as one span. Scopes nest naturally (Chrome "X" events nest by
/// containment). `track`/`name` must outlive the scope (string literals).
class ObsScope {
 public:
  ObsScope(const char* track, const char* name)
      : track_(track), name_(name),
        active_(Recorder::global().enabled()),
        t0_(active_ ? wall_seconds() : 0.0) {}
  ~ObsScope() {
    if (active_) Recorder::global().record(track_, name_, t0_, wall_seconds());
  }

  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

 private:
  const char* track_;
  const char* name_;
  bool active_;
  double t0_;
};

/// Convenience: record on the global recorder iff enabled (one relaxed load
/// on the disabled path).
inline void span(const char* track, std::string name, double t0_abs,
                 double t1_abs) {
  Recorder& r = Recorder::global();
  if (r.enabled()) r.record(track, std::move(name), t0_abs, t1_abs);
}

inline void instant(const char* track, std::string name) {
  Recorder& r = Recorder::global();
  if (r.enabled()) r.record_instant(track, std::move(name));
}

/// One-shot env hook: when SH_TRACE=<path> is set, enables the global
/// recorder and registers an atexit handler that writes a Chrome trace-event
/// JSON (plus the metrics snapshot) to <path>. Lets ANY bench or example
/// capture a Perfetto trace without code changes. Safe to call repeatedly.
void init_from_env();

}  // namespace sh::obs

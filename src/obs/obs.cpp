#include "obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <utility>

#include "obs/export.hpp"

namespace sh::obs {

double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace {
std::atomic<std::uint64_t> g_next_recorder_id{1};
std::uint64_t next_recorder_id() { return g_next_recorder_id.fetch_add(1); }
}  // namespace

Recorder::Recorder()
    : recorder_id_(next_recorder_id()), epoch_(wall_seconds()) {}

Recorder::~Recorder() = default;

Recorder& Recorder::global() {
  static Recorder instance;
  return instance;
}

Recorder::ThreadBuf& Recorder::local_buf() {
  // Per-thread cache keyed by recorder id (ids are never reused, so a cache
  // entry can never alias a new recorder at a recycled address).
  struct CacheEntry {
    std::uint64_t recorder_id;
    std::shared_ptr<ThreadBuf> buf;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const auto& e : cache) {
    if (e.recorder_id == recorder_id_) return *e.buf;
  }
  auto buf = std::make_shared<ThreadBuf>();
  buf->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    bufs_.push_back(buf);
  }
  cache.push_back({recorder_id_, buf});
  return *buf;
}

void Recorder::record(const char* track, std::string name, double t0_abs,
                      double t1_abs) {
  if (!enabled()) return;
  ThreadBuf& buf = local_buf();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.spans.push_back({track, std::move(name), t0_abs - epoch_,
                       t1_abs - epoch_, buf.tid, /*instant=*/false});
}

void Recorder::record_instant(const char* track, std::string name) {
  if (!enabled()) return;
  const double t = now();
  ThreadBuf& buf = local_buf();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.spans.push_back({track, std::move(name), t, t, buf.tid,
                       /*instant=*/true});
}

std::vector<Span> Recorder::snapshot() const {
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    bufs = bufs_;
  }
  std::vector<Span> out;
  for (const auto& buf : bufs) {
    std::lock_guard<std::mutex> lock(buf->mu);
    out.insert(out.end(), buf->spans.begin(), buf->spans.end());
  }
  std::stable_sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return a.start_s < b.start_s;
  });
  return out;
}

void Recorder::clear() {
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    bufs = bufs_;
  }
  for (const auto& buf : bufs) {
    std::lock_guard<std::mutex> lock(buf->mu);
    buf->spans.clear();
  }
}

void init_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* path = std::getenv("SH_TRACE");
    if (path == nullptr || *path == '\0') return;
    Recorder::global().set_enabled(true);
    static std::string trace_path = path;
    std::atexit([] { dump_chrome_trace(trace_path); });
  });
}

}  // namespace sh::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace sh::obs {

void Histogram::record(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.push_back(v);
}

std::size_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.size();
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  double s = 0.0;
  for (double v : samples_) s += v;
  return s;
}

double Histogram::percentile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

const Metric* MetricsSnapshot::find(const std::string& name) const {
  for (const auto& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

std::uint64_t Registry::add_provider(Provider p) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_id_++;
  providers_.emplace_back(id, std::move(p));
  return id;
}

void Registry::remove_provider(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(providers_,
                [id](const auto& entry) { return entry.first == id; });
}

std::size_t Registry::provider_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return providers_.size();
}

MetricsSnapshot Registry::snapshot() const {
  // Providers run under the lock: remove_provider (called from subsystem
  // destructors) cannot return while a snapshot still invokes the callback,
  // so a provider never outlives the object it reads. Providers must not
  // call back into the registry.
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  for (const auto& [id, provider] : providers_) provider(out);
  return out;
}

}  // namespace sh::obs

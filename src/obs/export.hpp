// sh::obs exporters — Chrome trace-event JSON (Perfetto / chrome://tracing)
// and flat metrics JSON.
//
// One trace file carries two process groups: pid 1 "wall-clock" holds the
// recorded obs::Span stream (real execution), pid 2 "virtual-time" holds a
// sim::Trace rendered in simulated seconds — so the paper's Figure 4
// schedule and the numeric runtime's actual schedule open side by side in
// one Perfetto window. Timestamps are microseconds ("ts"/"dur"), spans are
// complete events (ph "X", nested by containment), point events are
// instants (ph "i").
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "sim/trace.hpp"

namespace sh::obs {

/// Writes Chrome trace-event JSON. `wall` spans go on pid 1 with one track
/// per (track name, recording thread); `virt`, when given, adds pid 2 with
/// one track per sim resource. `metrics`, when given, is embedded as a
/// top-level "metrics" array (Perfetto ignores unknown keys).
void write_chrome_trace(std::ostream& os, const std::vector<Span>& wall,
                        const sim::Trace* virt = nullptr,
                        const MetricsSnapshot* metrics = nullptr);

/// Snapshot of the global recorder (+ global registry) to `path`.
/// Returns false when the file cannot be opened.
bool dump_chrome_trace(const std::string& path,
                       const sim::Trace* virt = nullptr);

/// Re-expresses recorded wall-clock spans as a sim::Trace (track → resource,
/// name → label), excluding instants — so sim::Trace::utilization and
/// overlap_fraction (the paper's Fig. 4 metrics) apply to REAL execution.
sim::Trace to_sim_trace(const std::vector<Span>& spans);

/// Flat metrics JSON: {"metrics": [{"name", "value", "unit"}, ...]}.
void write_metrics_json(std::ostream& os, const MetricsSnapshot& snapshot);

/// JSON string escaping (shared by both writers; exposed for tests).
std::string json_escape(const std::string& s);

}  // namespace sh::obs

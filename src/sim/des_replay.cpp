#include "sim/des_replay.hpp"

#include <algorithm>
#include <functional>

#include "sim/resource.hpp"

namespace sh::sim {

ReplayResult replay_forward_sweep(const ReplayParams& p) {
  ReplayResult result;
  if (p.layers == 0) return result;

  EventEngine engine;
  const std::size_t n = p.layers;
  std::vector<bool> fetched(n, false);
  std::vector<bool> fetch_issued(n, false);
  for (std::size_t i = 0; i < std::min(p.window, n); ++i) {
    fetched[i] = true;  // initial window resident (III-E1)
    fetch_issued[i] = true;
  }
  Time link_free = 0.0;
  std::size_t next_compute = 0;
  Time gpu_free = 0.0;
  Time last_end = 0.0;

  // Forward declaration via std::function for the mutually recursive events.
  std::function<void()> try_compute;

  auto issue_fetch = [&](std::size_t layer) {
    if (layer >= n || fetch_issued[layer]) return;
    fetch_issued[layer] = true;
    const Time start = std::max(engine.now(), link_free);
    const Time end = start + p.link_latency + p.t_fetch;
    link_free = end;
    ++result.fetches;
    engine.schedule_at(end, [&, layer] {
      fetched[layer] = true;
      try_compute();
    });
  };

  try_compute = [&] {
    if (next_compute >= n) return;
    const std::size_t i = next_compute;
    if (!fetched[i] || engine.now() < gpu_free) return;
    // Record stall: time between the GPU becoming free and this start.
    result.gpu_idle += engine.now() - std::max(gpu_free, Time{0});
    ++next_compute;
    // pre-forward hook: fetch the layer just outside the window.
    issue_fetch(i + p.window);
    const Time end = engine.now() + p.t_compute;
    gpu_free = end;
    last_end = std::max(last_end, end);
    engine.schedule_at(end, [&] { try_compute(); });
  };

  engine.schedule_at(0.0, [&] { try_compute(); });
  engine.run();
  result.makespan = last_end;
  // gpu_idle counted time from gpu_free to start; subtract the trivial zero
  // at t=0 (already zero) — nothing else to adjust.
  return result;
}

ReplayResult forward_sweep_timeline(const ReplayParams& p) {
  ReplayResult result;
  if (p.layers == 0) return result;
  Timeline gpu("gpu");
  BandwidthLink link("link", 1.0, 0.0);  // durations passed explicitly
  const std::size_t n = p.layers;
  std::vector<Time> fetched_at(n, 0.0);
  std::vector<Time> compute_start(n, 0.0);
  Time t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i >= p.window) {
      const Time issue = compute_start[i - p.window];
      fetched_at[i] =
          link.timeline().acquire(issue, p.link_latency + p.t_fetch).end;
      ++result.fetches;
    }
    const auto iv = gpu.acquire(std::max(t, fetched_at[i]), p.t_compute);
    compute_start[i] = iv.start;
    result.gpu_idle += iv.start - std::max(t, Time{0});
    t = iv.end;
  }
  result.makespan = t;
  return result;
}

}  // namespace sh::sim

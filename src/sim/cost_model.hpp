// Analytic FLOP / byte cost model for GPT-style Transformer training.
//
// Parameter counts follow the paper's Section III-F accounting
// (12 * n * hd^2 per block plus embedding), validated against every Table I
// configuration by bench_table1. Training state is FP32 as in the paper's
// capacity experiments: 16 bytes per parameter (4 param + 4 grad + 8 Adam).
#pragma once

#include <cstdint>

namespace sh::sim {

/// A Table-I style model configuration.
struct ModelSpec {
  std::int64_t layers = 20;     // transformer blocks (n)
  std::int64_t hidden = 2560;   // hidden size (hd)
  std::int64_t heads = 16;
  std::int64_t vocab = 30000;   // vs (Section III-F uses 30K)
  std::int64_t seq = 1024;      // sequence length
  int model_parallel = 1;       // tensor-parallel degree (Table I column)
};

/// Bytes of one FP32 float.
inline constexpr double kF32 = 4.0;
/// Bytes of one BF16 element (the optional working-window wire format).
inline constexpr double kBf16 = 2.0;
/// Bytes of full training state per parameter (param + grad + Adam m, v).
inline constexpr double kStateBytesPerParam = 16.0;

// --- Parameter counts -------------------------------------------------------

/// Parameters of one transformer block: 12 hd^2 + 13 hd
/// (QKV 3hd^2+3hd, proj hd^2+hd, MLP 8hd^2+5hd, two LayerNorms 4hd).
double block_params(const ModelSpec& m);

/// Embedding parameters: (vocab + seq) * hidden. The LM head is weight-tied
/// with the token embedding, matching the paper's 12 n hd^2 + hd vs count.
double embedding_params(const ModelSpec& m);

/// Total trainable parameters.
double total_params(const ModelSpec& m);

// --- Per-layer state sizes (per model-parallel shard) -----------------------
//
// The `bytes_per_element` overloads price the GPU working window / wire in an
// arbitrary element encoding (kF32 default; kBf16 for a BF16 window). CPU-side
// training state is always FP32 masters and is not parameterised.

/// Parameter bytes of one block shard (parameters / model_parallel).
double block_param_bytes(const ModelSpec& m, double bytes_per_element);
double block_param_bytes(const ModelSpec& m);
/// Param + grad bytes (what the GPU working window holds per layer).
double block_window_bytes(const ModelSpec& m, double bytes_per_element);
double block_window_bytes(const ModelSpec& m);
/// Full training-state bytes of one block shard (16 B / param).
double block_state_bytes(const ModelSpec& m);
double embedding_state_bytes(const ModelSpec& m);
double total_state_bytes(const ModelSpec& m);

// --- Activation memory (per device, per stream) -----------------------------

/// Bytes of the per-block activation checkpoint (the block input).
double checkpoint_bytes(const ModelSpec& m, double batch);
/// Peak transient working activations while computing one block.
double working_activation_bytes(const ModelSpec& m, double batch);
/// Total activation memory with layer-wise checkpointing.
double activation_bytes_checkpointed(const ModelSpec& m, double batch);
/// Total activation memory when every block keeps its full caches.
double activation_bytes_full(const ModelSpec& m, double batch);

// --- FLOPs -------------------------------------------------------------------

/// Forward FLOPs of one block shard for a `batch`-sample step:
/// 24 T hd^2 + 4 bs seq^2 hd (T = batch * seq), divided over MP shards.
double block_fwd_flops(const ModelSpec& m, double batch);
/// The attention score/context share of block_fwd_flops (4 bs seq^2 hd).
/// Split out because those thin [seq, head_dim] kernels run at a lower
/// efficiency than the fat dense GEMMs (GpuSpec::attention_efficiency).
double block_attn_fwd_flops(const ModelSpec& m, double batch);
/// Backward is 2x forward; activation recomputation adds one more forward.
double block_bwd_flops(const ModelSpec& m, double batch,
                       bool recompute_forward);
/// LM-head (logit projection) forward FLOPs: 2 T hd vs.
double head_fwd_flops(const ModelSpec& m, double batch);

/// Total FLOPs of one training iteration (forward + recompute + backward).
double iteration_flops(const ModelSpec& m, double batch,
                       bool checkpoint_activations = true);

// --- Convenience -------------------------------------------------------------

/// Human-readable billions of parameters (e.g. 1.65 for the "1.7B" model).
double params_billions(const ModelSpec& m);

/// Builds a ModelSpec with Table I geometry (hd, heads fixed) and `layers`
/// blocks.
ModelSpec table1_model(std::int64_t layers, std::int64_t hidden,
                       int model_parallel = 1);

}  // namespace sh::sim

#include "sim/hardware.hpp"

namespace sh::sim {

namespace {
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
}

MachineSpec v100_server() {
  MachineSpec m;
  m.gpu = GpuSpec{
      .name = "V100-32GB",
      .mem_bytes = 32.0 * kGiB,
      .peak_flops = 15.7e12,
      .kernel_efficiency = 0.75,
      .bubble_ratio = 1.3,
      .max_streams = 8,
      .runtime_reserved_bytes = 1.5 * kGiB,
  };
  m.cpu = CpuSpec{
      .name = "2x Xeon Platinum 8163 (48 cores)",
      .cores = 48,
      .ram_bytes = 755.0 * kGiB,
      // The STRONGHOLD runtime pins every per-layer CPU buffer; the paper's
      // 39.5B FP32 capacity (632 GiB of states) implies ~640 GiB lockable.
      .pinned_limit_bytes = 640.0 * kGiB,
      .offload_ram_limit_bytes = 700.0 * kGiB,
      .adam_params_per_core_s = 2.5e8,
  };
  m.pcie_bytes_per_s = 12.0 * kGiB;  // PCIe 3.0 x16 effective
  m.pcie_latency_s = 10e-6;
  m.nvme_bytes_per_s = 5.0 * kGiB;  // PCIe 4.0 NVMe, sequential
  m.nvme_bytes = 2048.0 * kGiB;
  m.async_call_overhead_s = 20e-6;
  return m;
}

ClusterSpec a10_cluster() {
  ClusterSpec c;
  c.node.gpu = GpuSpec{
      .name = "A10-24GB",
      .mem_bytes = 24.0 * kGiB,
      .peak_flops = 31.2e12,
      .kernel_efficiency = 0.70,
      .bubble_ratio = 1.3,
      .max_streams = 8,
      .runtime_reserved_bytes = 1.5 * kGiB,
  };
  c.node.cpu = CpuSpec{
      .name = "2x Xeon Platinum 8369B (128 cores)",
      .cores = 128,
      .ram_bytes = 1024.0 * kGiB,
      // The A10 nodes lock far less of their RAM (production nodes shared
      // with other services); calibrated to the paper's 82.1B cluster-wide
      // capacity: 82.1B/8 nodes * 16 B/param ~= 165 GiB per node.
      .pinned_limit_bytes = 168.0 * kGiB,
      // Calibrated to ZeRO-Infinity's 56.9B cluster capacity (Fig. 6b):
      // 56.9B/8 nodes * 16 B/param * 2.2 overhead ~= 250 GiB per node.
      .offload_ram_limit_bytes = 250.0 * kGiB,
      .adam_params_per_core_s = 3.0e8,
  };
  c.node.pcie_bytes_per_s = 20.0 * kGiB;  // PCIe 4.0 x16 effective
  c.node.pcie_latency_s = 10e-6;
  c.node.nvme_bytes_per_s = 5.0 * kGiB;
  c.node.nvme_bytes = 0.0;  // cluster experiments do not use NVMe
  c.node.async_call_overhead_s = 20e-6;
  c.num_nodes = 8;
  c.net_bytes_per_s = 90.0 * kGiB;  // 800 Gbps, ~90% achievable
  c.net_latency_s = 5e-6;
  return c;
}

}  // namespace sh::sim

// Event-driven replay of the STRONGHOLD working-window schedule.
//
// The strategy simulators build iteration schedules with Timeline algebra
// (max/plus recurrences). This module replays the same schedule on the
// discrete-event engine — fetch issued by the pre-hook of the layer m
// positions earlier, FIFO link, serial GPU — and returns the makespan. The
// two must agree exactly; the tests use this as a cross-validation of the
// scheduling algebra, and it demonstrates the DES engine end to end.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_engine.hpp"

namespace sh::sim {

struct ReplayParams {
  std::size_t layers = 0;
  std::size_t window = 1;     // m: layers 0..m-1 start resident
  double t_compute = 0.0;     // per-layer compute seconds
  double t_fetch = 0.0;       // per-layer link seconds
  double link_latency = 0.0;  // per-transfer fixed cost
};

struct ReplayResult {
  Time makespan = 0.0;
  std::size_t fetches = 0;
  Time gpu_idle = 0.0;  // total stall time waiting for fetches
};

/// Replays one forward sweep: compute layers 0..n-1 in order; the fetch of
/// layer i (i >= m) is issued when layer i-m starts computing; the link is a
/// FIFO resource; compute of layer i needs its fetch complete.
ReplayResult replay_forward_sweep(const ReplayParams& params);

/// The same schedule computed with Timeline algebra (the strategy
/// simulators' method) — for cross-validation.
ReplayResult forward_sweep_timeline(const ReplayParams& params);

}  // namespace sh::sim

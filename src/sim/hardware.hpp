// Hardware descriptions of the paper's two evaluation platforms (Section V-A)
// plus the device-level cost parameters used by the simulator.
//
// Calibration note: peak FLOP/s, memory capacities, link bandwidths and core
// counts come from the paper / vendor datasheets. `kernel_efficiency`,
// `bubble_ratio` and the CPU Adam rate are calibrated so Megatron-LM's
// simulated throughput and STRONGHOLD's achieved 6-9 TFLOPS (42-57% of
// hardware peak, Section VI-B) match the paper; all strategies share them.
#pragma once

#include <cstdint>
#include <string>

namespace sh::sim {

struct GpuSpec {
  std::string name;
  double mem_bytes;          // device memory capacity
  double peak_flops;         // FP32 peak
  double kernel_efficiency;  // fraction of peak a saturated dense kernel hits
  /// Attention-shape efficiency relative to kernel_efficiency. The
  /// score/context products run on [seq, head_dim]-thin panels that cannot
  /// amortise packing like the fat dense GEMMs; re-fit against
  /// BENCH_kernels.json on the blocked substrate (dense forward shapes
  /// ~73 GFLOPS vs attention shapes ~60 GFLOPS => ~0.81).
  double attention_efficiency = 0.81;
  double bubble_ratio;       // non-compute bubble per kernel, as a fraction of
                             // its compute time (launch gaps, dependency
                             // stalls). Multi-stream execution divides this.
  int max_streams;           // concurrent CUDA streams usable for training
  double runtime_reserved_bytes;  // CUDA context + framework reserve

  /// Effective FLOP/s for a kernel at per-device batch size `bs` on a single
  /// stream: batch-dependent occupancy times kernel efficiency.
  double effective_flops(double bs) const noexcept {
    const double occupancy = bs / (bs + 1.0);
    return peak_flops * kernel_efficiency * occupancy;
  }

  /// Effective FLOP/s of the attention score/context kernels.
  double effective_attention_flops(double bs) const noexcept {
    return effective_flops(bs) * attention_efficiency;
  }
};

struct CpuSpec {
  std::string name;
  int cores;
  double ram_bytes;
  double pinned_limit_bytes;  // page-lockable RAM usable for layer blobs
  /// RAM the ZeRO-family runtimes can use for offloaded state (contiguous
  /// pinned buckets; below ram_bytes on shared production nodes). Calibrated
  /// per platform against the paper's reported capacities.
  double offload_ram_limit_bytes;
  double adam_params_per_core_s;  // Adam update throughput per core (params/s)
};

struct MachineSpec {
  GpuSpec gpu;
  CpuSpec cpu;
  double pcie_bytes_per_s;  // effective host<->device bandwidth, per direction
  double pcie_latency_s;
  double nvme_bytes_per_s;  // effective NVMe sequential bandwidth
  double nvme_bytes;        // swap capacity
  double async_call_overhead_s;  // t_async in the paper's model (Section III-D)
};

struct ClusterSpec {
  MachineSpec node;
  int num_nodes;
  double net_bytes_per_s;  // per-node injection bandwidth
  double net_latency_s;
};

/// Single-node 32 GB V100 server: 2x 24-core Xeon 8163, 755 GB DDR4,
/// PCIe 3.0 x16, 2 TB PCIe 4.0 NVMe.
MachineSpec v100_server();

/// 8-node A10 cluster: 24 GB A10 per node, 2x 64-core Xeon 8369B, 1 TB DDR4,
/// 800 Gbps network.
ClusterSpec a10_cluster();

}  // namespace sh::sim

// Deterministic discrete-event engine driving the hardware simulator.
//
// Virtual time lets the benchmark harness replay a full training iteration of
// a 500B-parameter model in microseconds of wall clock while preserving the
// ordering and overlap structure of the real system.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace sh::sim {

/// Virtual time in seconds.
using Time = double;

class EventEngine {
 public:
  using Callback = std::function<void()>;

  Time now() const noexcept { return now_; }

  /// Schedules `cb` at absolute virtual time `t` (>= now).
  void schedule_at(Time t, Callback cb);
  /// Schedules `cb` `dt` seconds after the current virtual time.
  void schedule_after(Time dt, Callback cb);

  /// Executes the next event; returns false when the queue is empty.
  bool step();
  /// Runs until no events remain.
  void run();

  std::uint64_t executed() const noexcept { return executed_; }
  bool empty() const noexcept { return queue_.empty(); }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;  // tie-breaker: FIFO among same-time events
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace sh::sim

#include "sim/cost_model.hpp"

namespace sh::sim {

double block_params(const ModelSpec& m) {
  const double hd = static_cast<double>(m.hidden);
  return 12.0 * hd * hd + 13.0 * hd;
}

double embedding_params(const ModelSpec& m) {
  return static_cast<double>(m.vocab + m.seq) * static_cast<double>(m.hidden);
}

double total_params(const ModelSpec& m) {
  return static_cast<double>(m.layers) * block_params(m) + embedding_params(m);
}

double block_param_bytes(const ModelSpec& m, double bytes_per_element) {
  return bytes_per_element * block_params(m) / m.model_parallel;
}

double block_param_bytes(const ModelSpec& m) {
  return block_param_bytes(m, kF32);
}

double block_window_bytes(const ModelSpec& m, double bytes_per_element) {
  return 2.0 * block_param_bytes(m, bytes_per_element);  // params + grads
}

double block_window_bytes(const ModelSpec& m) {
  return block_window_bytes(m, kF32);
}

double block_state_bytes(const ModelSpec& m) {
  return kStateBytesPerParam * block_params(m) / m.model_parallel;
}

double embedding_state_bytes(const ModelSpec& m) {
  return kStateBytesPerParam * embedding_params(m) / m.model_parallel;
}

double total_state_bytes(const ModelSpec& m) {
  return static_cast<double>(m.layers) * block_state_bytes(m) +
         embedding_state_bytes(m);
}

double checkpoint_bytes(const ModelSpec& m, double batch) {
  // Block input: [batch * seq, hidden] (hidden sharded under MP).
  return kF32 * batch * static_cast<double>(m.seq) *
         static_cast<double>(m.hidden) / m.model_parallel;
}

double working_activation_bytes(const ModelSpec& m, double batch) {
  const double tokens = batch * static_cast<double>(m.seq);
  const double hd = static_cast<double>(m.hidden);
  // QKV (3hd) + attention context (hd) + MLP intermediate (8hd) + LN (2hd)
  // caches, plus the fused attention kernel's per-row online-softmax stats
  // (running max + normaliser: 2 floats per head-row). The fused kernel never
  // materialises the [seq, seq] probability matrix, so the former
  // 4*B*H*seq^2 probs term is gone — attention activations are O(seq*hidden).
  const double dense = kF32 * tokens * 14.0 * hd / m.model_parallel;
  const double stats = kF32 * 2.0 * batch * static_cast<double>(m.heads) *
                       static_cast<double>(m.seq) / m.model_parallel;
  return dense + stats;
}

double activation_bytes_checkpointed(const ModelSpec& m, double batch) {
  return static_cast<double>(m.layers) * checkpoint_bytes(m, batch) +
         working_activation_bytes(m, batch);
}

double activation_bytes_full(const ModelSpec& m, double batch) {
  return static_cast<double>(m.layers) *
         (checkpoint_bytes(m, batch) + working_activation_bytes(m, batch));
}

double block_fwd_flops(const ModelSpec& m, double batch) {
  const double tokens = batch * static_cast<double>(m.seq);
  const double hd = static_cast<double>(m.hidden);
  const double dense = 24.0 * tokens * hd * hd;
  return dense / m.model_parallel + block_attn_fwd_flops(m, batch);
}

double block_attn_fwd_flops(const ModelSpec& m, double batch) {
  const double hd = static_cast<double>(m.hidden);
  return 4.0 * batch * static_cast<double>(m.seq) *
         static_cast<double>(m.seq) * hd / m.model_parallel;
}

double block_bwd_flops(const ModelSpec& m, double batch,
                       bool recompute_forward) {
  const double fwd = block_fwd_flops(m, batch);
  return 2.0 * fwd + (recompute_forward ? fwd : 0.0);
}

double head_fwd_flops(const ModelSpec& m, double batch) {
  return 2.0 * batch * static_cast<double>(m.seq) *
         static_cast<double>(m.hidden) * static_cast<double>(m.vocab) /
         m.model_parallel;
}

double iteration_flops(const ModelSpec& m, double batch,
                       bool checkpoint_activations) {
  const double per_block = block_fwd_flops(m, batch) +
                           block_bwd_flops(m, batch, checkpoint_activations);
  return static_cast<double>(m.layers) * per_block +
         3.0 * head_fwd_flops(m, batch);
}

double params_billions(const ModelSpec& m) { return total_params(m) / 1e9; }

ModelSpec table1_model(std::int64_t layers, std::int64_t hidden,
                       int model_parallel) {
  ModelSpec m;
  m.layers = layers;
  m.hidden = hidden;
  m.heads = 16;
  m.vocab = 30000;
  m.seq = 1024;
  m.model_parallel = model_parallel;
  return m;
}

}  // namespace sh::sim

// Timeline resources for schedule construction.
//
// A Timeline models any serialized execution resource — a CUDA stream, one
// direction of the PCIe link, an NVMe queue, a network port, a CPU core. Work
// items are appended FIFO: an item that becomes ready at time `r` on a
// resource that is busy until `b` runs during [max(r, b), max(r, b) + d].
// Training-iteration schedules for every strategy in the paper are built by
// threading per-layer work through a handful of such timelines, which is what
// produces (or fails to produce) computation/communication overlap.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "sim/event_engine.hpp"

namespace sh::sim {

struct Interval {
  Time start = 0.0;
  Time end = 0.0;
  double duration() const noexcept { return end - start; }
};

/// Serialized FIFO resource.
class Timeline {
 public:
  explicit Timeline(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  Time busy_until() const noexcept { return busy_until_; }
  double busy_time() const noexcept { return busy_time_; }

  /// Appends a work item that is ready at `ready` and takes `duration`.
  Interval acquire(Time ready, double duration) {
    const Time start = std::max(ready, busy_until_);
    busy_until_ = start + duration;
    busy_time_ += duration;
    return {start, busy_until_};
  }

  void reset() noexcept {
    busy_until_ = 0.0;
    busy_time_ = 0.0;
  }

 private:
  std::string name_;
  Time busy_until_ = 0.0;
  double busy_time_ = 0.0;  // total occupied time (utilisation numerator)
};

/// A Timeline with a bandwidth/latency cost function — PCIe, NVMe, network.
class BandwidthLink {
 public:
  BandwidthLink(std::string name, double bytes_per_second,
                double latency_seconds = 0.0)
      : timeline_(std::move(name)),
        bytes_per_second_(bytes_per_second),
        latency_(latency_seconds) {}

  double seconds_for(double bytes) const noexcept {
    return latency_ + bytes / bytes_per_second_;
  }

  Interval transfer(Time ready, double bytes) {
    return timeline_.acquire(ready, seconds_for(bytes));
  }

  Timeline& timeline() noexcept { return timeline_; }
  double bandwidth() const noexcept { return bytes_per_second_; }
  void reset() noexcept { timeline_.reset(); }

 private:
  Timeline timeline_;
  double bytes_per_second_;
  double latency_;
};

/// Pool of identical parallel lanes (CPU cores running optimizer actors,
/// concurrent CUDA streams). Work is dispatched to the earliest-free lane.
class LanePool {
 public:
  LanePool(std::string name, std::size_t lanes);

  Interval acquire(Time ready, double duration);
  std::size_t lanes() const noexcept { return busy_until_.size(); }
  Time busy_until() const noexcept {
    return *std::max_element(busy_until_.begin(), busy_until_.end());
  }
  void reset() noexcept {
    std::fill(busy_until_.begin(), busy_until_.end(), 0.0);
  }

 private:
  std::string name_;
  std::vector<Time> busy_until_;
};

}  // namespace sh::sim

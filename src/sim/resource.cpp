#include "sim/resource.hpp"

#include <stdexcept>

namespace sh::sim {

LanePool::LanePool(std::string name, std::size_t lanes)
    : name_(std::move(name)) {
  if (lanes == 0) throw std::invalid_argument("LanePool needs >= 1 lane");
  busy_until_.assign(lanes, 0.0);
}

Interval LanePool::acquire(Time ready, double duration) {
  // Earliest-finishing lane that can start this work.
  std::size_t best = 0;
  for (std::size_t i = 1; i < busy_until_.size(); ++i) {
    if (busy_until_[i] < busy_until_[best]) best = i;
  }
  const Time start = std::max(ready, busy_until_[best]);
  busy_until_[best] = start + duration;
  return {start, busy_until_[best]};
}

}  // namespace sh::sim

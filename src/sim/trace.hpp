// Timeline trace recorder. Captures (resource, label, interval) spans from a
// simulated schedule and renders an ASCII Gantt chart — the reproduction of
// the paper's Figure 4 profiling trace.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/resource.hpp"

namespace sh::sim {

class Trace {
 public:
  struct Span {
    std::string resource;
    std::string label;
    Interval interval;
  };

  void record(std::string resource, std::string label, Interval interval);

  const std::vector<Span>& spans() const noexcept { return spans_; }
  void clear() noexcept { spans_.clear(); }

  /// End time of the last span (iteration makespan).
  Time end_time() const noexcept;

  /// Fraction of [0, end] during which `resource` was occupied. Computed on
  /// the interval UNION of the resource's spans, so overlapping spans (real
  /// wall-clock traces from obs::to_sim_trace) never push it above 1, and
  /// zero-length spans contribute nothing. 0 for an empty trace.
  double utilization(const std::string& resource) const;

  /// Fraction of `a`'s busy time that coincides with busy time on `b` —
  /// |union(a) ∩ union(b)| / |union(a)|, the paper's computation /
  /// communication overlap metric. 0 when `a` has no busy time.
  double overlap_fraction(const std::string& a, const std::string& b) const;

  /// Renders an ASCII Gantt chart, one row per resource, `width` columns.
  void render(std::ostream& os, int width = 100) const;

  /// Writes spans as CSV (resource,label,start,end).
  void write_csv(std::ostream& os) const;

 private:
  std::vector<Span> spans_;
};

}  // namespace sh::sim

#include "sim/trace.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <utility>

namespace sh::sim {

void Trace::record(std::string resource, std::string label, Interval interval) {
  spans_.push_back({std::move(resource), std::move(label), interval});
}

Time Trace::end_time() const noexcept {
  Time end = 0.0;
  for (const auto& s : spans_) end = std::max(end, s.interval.end);
  return end;
}

double Trace::utilization(const std::string& resource) const {
  const Time end = end_time();
  if (end <= 0.0) return 0.0;
  double busy = 0.0;
  for (const auto& s : spans_) {
    if (s.resource == resource) busy += s.interval.duration();
  }
  return busy / end;
}

double Trace::overlap_fraction(const std::string& a, const std::string& b) const {
  double a_total = 0.0;
  double overlapped = 0.0;
  for (const auto& sa : spans_) {
    if (sa.resource != a) continue;
    a_total += sa.interval.duration();
    for (const auto& sb : spans_) {
      if (sb.resource != b) continue;
      const Time lo = std::max(sa.interval.start, sb.interval.start);
      const Time hi = std::min(sa.interval.end, sb.interval.end);
      if (hi > lo) overlapped += hi - lo;
    }
  }
  return a_total > 0.0 ? overlapped / a_total : 0.0;
}

void Trace::render(std::ostream& os, int width) const {
  const Time end = end_time();
  if (end <= 0.0 || width <= 0) return;
  // Stable resource order: first appearance.
  std::vector<std::string> order;
  for (const auto& s : spans_) {
    if (std::find(order.begin(), order.end(), s.resource) == order.end()) {
      order.push_back(s.resource);
    }
  }
  std::size_t name_w = 0;
  for (const auto& r : order) name_w = std::max(name_w, r.size());
  for (const auto& r : order) {
    std::string row(static_cast<std::size_t>(width), '.');
    for (const auto& s : spans_) {
      if (s.resource != r) continue;
      auto col = [&](Time t) {
        return std::clamp<int>(static_cast<int>(t / end * width), 0, width - 1);
      };
      const int lo = col(s.interval.start);
      const int hi = std::max(lo, col(s.interval.end) - (s.interval.end < end ? 0 : 1));
      const char mark = s.label.empty() ? '#' : s.label[0];
      for (int c = lo; c <= hi && c < width; ++c) {
        row[static_cast<std::size_t>(c)] = mark;
      }
    }
    os << r << std::string(name_w - r.size() + 2, ' ') << '|' << row << "|\n";
  }
}

void Trace::write_csv(std::ostream& os) const {
  os << "resource,label,start,end\n";
  for (const auto& s : spans_) {
    os << s.resource << ',' << s.label << ',' << s.interval.start << ','
       << s.interval.end << '\n';
  }
}

}  // namespace sh::sim

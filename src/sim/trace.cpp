#include "sim/trace.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <utility>

namespace sh::sim {

void Trace::record(std::string resource, std::string label, Interval interval) {
  spans_.push_back({std::move(resource), std::move(label), interval});
}

Time Trace::end_time() const noexcept {
  Time end = 0.0;
  for (const auto& s : spans_) end = std::max(end, s.interval.end);
  return end;
}

namespace {

// Sorted union of a resource's intervals. Simulated schedules occupy each
// resource disjointly, so merging is a no-op there; real wall-clock traces
// (obs::to_sim_trace) carry overlapping spans from nested scopes and
// concurrent threads, which must not be counted twice. Zero-length spans
// (e.g. the engine's deferred-prefetch markers) contribute nothing.
std::vector<Interval> busy_union(const std::vector<Trace::Span>& spans,
                                 const std::string& resource) {
  std::vector<Interval> ivs;
  for (const auto& s : spans) {
    if (s.resource == resource && s.interval.end > s.interval.start) {
      ivs.push_back(s.interval);
    }
  }
  std::sort(ivs.begin(), ivs.end(),
            [](const Interval& x, const Interval& y) { return x.start < y.start; });
  std::vector<Interval> merged;
  for (const auto& iv : ivs) {
    if (!merged.empty() && iv.start <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, iv.end);
    } else {
      merged.push_back(iv);
    }
  }
  return merged;
}

Time total_length(const std::vector<Interval>& ivs) {
  Time t = 0.0;
  for (const auto& iv : ivs) t += iv.duration();
  return t;
}

}  // namespace

double Trace::utilization(const std::string& resource) const {
  const Time end = end_time();
  if (end <= 0.0) return 0.0;
  return total_length(busy_union(spans_, resource)) / end;
}

double Trace::overlap_fraction(const std::string& a, const std::string& b) const {
  const std::vector<Interval> au = busy_union(spans_, a);
  const std::vector<Interval> bu = busy_union(spans_, b);
  const Time a_total = total_length(au);
  if (a_total <= 0.0) return 0.0;
  // Intersection length of the two sorted unions (two-pointer sweep).
  Time overlapped = 0.0;
  std::size_t i = 0, j = 0;
  while (i < au.size() && j < bu.size()) {
    const Time lo = std::max(au[i].start, bu[j].start);
    const Time hi = std::min(au[i].end, bu[j].end);
    if (hi > lo) overlapped += hi - lo;
    (au[i].end < bu[j].end) ? ++i : ++j;
  }
  return overlapped / a_total;
}

void Trace::render(std::ostream& os, int width) const {
  const Time end = end_time();
  if (end <= 0.0 || width <= 0) return;
  // Stable resource order: first appearance.
  std::vector<std::string> order;
  for (const auto& s : spans_) {
    if (std::find(order.begin(), order.end(), s.resource) == order.end()) {
      order.push_back(s.resource);
    }
  }
  std::size_t name_w = 0;
  for (const auto& r : order) name_w = std::max(name_w, r.size());
  for (const auto& r : order) {
    std::string row(static_cast<std::size_t>(width), '.');
    for (const auto& s : spans_) {
      if (s.resource != r) continue;
      auto col = [&](Time t) {
        return std::clamp<int>(static_cast<int>(t / end * width), 0, width - 1);
      };
      const int lo = col(s.interval.start);
      const int hi = std::max(lo, col(s.interval.end) - (s.interval.end < end ? 0 : 1));
      const char mark = s.label.empty() ? '#' : s.label[0];
      for (int c = lo; c <= hi && c < width; ++c) {
        row[static_cast<std::size_t>(c)] = mark;
      }
    }
    os << r << std::string(name_w - r.size() + 2, ' ') << '|' << row << "|\n";
  }
}

void Trace::write_csv(std::ostream& os) const {
  os << "resource,label,start,end\n";
  for (const auto& s : spans_) {
    os << s.resource << ',' << s.label << ',' << s.interval.start << ','
       << s.interval.end << '\n';
  }
}

}  // namespace sh::sim

#include "sim/event_engine.hpp"

#include <stdexcept>
#include <utility>

namespace sh::sim {

void EventEngine::schedule_at(Time t, Callback cb) {
  if (t < now_) throw std::invalid_argument("cannot schedule in the past");
  queue_.push(Event{t, next_seq_++, std::move(cb)});
}

void EventEngine::schedule_after(Time dt, Callback cb) {
  schedule_at(now_ + dt, std::move(cb));
}

bool EventEngine::step() {
  if (queue_.empty()) return false;
  // Copy out before pop so the callback may schedule new events.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.t;
  ++executed_;
  ev.cb();
  return true;
}

void EventEngine::run() {
  while (step()) {
  }
}

}  // namespace sh::sim

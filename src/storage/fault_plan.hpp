// Fault injection for the secondary-storage tier (Section III-G).
//
// At billion scale the NVMe tier is a fallible bandwidth domain, not a
// perfect byte store: real devices exhibit latency spikes, short reads and
// writes, and transient EIO-style failures. A FaultPlan is a seeded,
// deterministic oracle the SwapFile consults before every I/O attempt; the
// decision is a pure function of (seed, key, op kind, per-key op sequence,
// attempt number), so a run with the same op sequence injects the same
// faults — which is what lets the tests assert bit-identical training
// results under injected faults.
//
// Recovery contract: injected faults throw TransientIoError (is-a IoError);
// the SwapFile's retry policy (executed on the I/O worker via
// hw::TransferEngine::run_async_retry) re-attempts the op with exponential
// backoff up to FaultConfig::max_attempts. Because every swap op is an
// idempotent pread/pwrite at a fixed region offset, a retry never changes
// the bytes that eventually land. When the attempt budget is exhausted the
// final error is rethrown as IoError{FaultBudgetExhausted} — the typed
// error the engine surfaces from train_step so a trainer can checkpoint.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace sh::storage {

enum class IoOp { Read, Write };

enum class IoErrorKind {
  TransientFault,        ///< injected EIO / short op (retryable)
  FaultBudgetExhausted,  ///< bounded retries used up; op permanently failed
  SizeMismatch,          ///< rewrite/read size differs from the region size
  UnknownKey,            ///< read of a key that was never written
  CapacityExceeded,      ///< region allocation past the configured capacity
  SyscallFailed,         ///< real pread/pwrite failure (not injected)
};

/// Typed storage-tier error. Everything the SwapFile throws derives from
/// this, so callers can catch one type and branch on kind().
class IoError : public std::runtime_error {
 public:
  IoError(IoErrorKind kind, const std::string& what, IoOp op = IoOp::Read,
          std::int64_t key = -1, std::size_t attempts = 0)
      : std::runtime_error(what),
        kind_(kind),
        op_(op),
        key_(key),
        attempts_(attempts) {}

  IoErrorKind kind() const noexcept { return kind_; }
  IoOp op() const noexcept { return op_; }
  std::int64_t key() const noexcept { return key_; }
  /// Attempts performed when the error was raised (0 when not applicable).
  std::size_t attempts() const noexcept { return attempts_; }

 private:
  IoErrorKind kind_;
  IoOp op_;
  std::int64_t key_;
  std::size_t attempts_;
};

/// Retryable injected fault — the retry policy re-attempts exactly these.
class TransientIoError : public IoError {
 public:
  using IoError::IoError;
};

/// What the plan injects into one I/O attempt.
enum class FaultKind { None, LatencySpike, ShortOp, TransientError };

struct FaultDecision {
  FaultKind kind = FaultKind::None;
  double extra_latency_s = 0.0;  ///< LatencySpike: added service time
  double short_fraction = 0.0;   ///< ShortOp: fraction transferred before cut
};

/// Knobs for the fault plan and the paired retry policy. Every field has an
/// SH_FAULT_* environment override (see fault_config_from_env / README).
struct FaultConfig {
  /// Per-attempt probability of injecting any fault; 0 disables the plan.
  double rate = 0.0;
  std::uint64_t seed = 0x5eedf00dULL;
  /// Relative mix of the three fault kinds (zero weight disables a kind).
  double latency_weight = 1.0;
  double short_weight = 1.0;
  double error_weight = 1.0;
  /// Added service time of a latency spike (the op still succeeds).
  double latency_spike_s = 1e-3;
  /// Consecutive attempts of ONE op that may fault; the next attempt is
  /// forced healthy. SIZE_MAX models a permanently failing device.
  std::size_t max_faults_per_op = 2;
  /// Restrict injection to one direction (budget-exhaustion tests arm reads
  /// only so parameter initialisation can still seed the tier).
  bool fault_reads = true;
  bool fault_writes = true;

  // Retry policy, threaded through hw::TransferEngine::run_async_retry.
  std::size_t max_attempts = 4;  ///< total tries per op (1 = no retry)
  double backoff_initial_s = 2e-4;
  double backoff_multiplier = 2.0;
  double backoff_max_s = 5e-3;

  bool enabled() const noexcept { return rate > 0.0; }
};

/// Applies SH_FAULT_* environment overrides on top of `base`:
///   SH_FAULT_RATE, SH_FAULT_SEED, SH_FAULT_LATENCY_SPIKE_S,
///   SH_FAULT_MAX_FAULTS_PER_OP, SH_FAULT_MAX_ATTEMPTS, SH_FAULT_BACKOFF_S.
/// Lets any bench or example run against an unhealthy tier with no code
/// changes (mirrors the SH_TRACE hook in sh::obs).
FaultConfig fault_config_from_env(FaultConfig base = {});

class FaultPlan {
 public:
  explicit FaultPlan(FaultConfig cfg) : cfg_(cfg) {}

  /// Decides the fault (if any) for attempt `attempt` (0-based) of the next
  /// op on (key, op). Deterministic given the op sequence; thread-safe.
  FaultDecision decide(IoOp op, std::int64_t key, std::size_t attempt);

  /// Per-kind injection counters (exported via the SwapFile obs provider).
  struct Counters {
    std::uint64_t ops = 0;  ///< attempts consulted (healthy or not)
    std::uint64_t latency_spikes = 0;
    std::uint64_t short_reads = 0;
    std::uint64_t short_writes = 0;
    std::uint64_t eio_reads = 0;
    std::uint64_t eio_writes = 0;
    std::uint64_t faults_total = 0;
  };
  Counters counters() const;

  const FaultConfig& config() const noexcept { return cfg_; }

 private:
  FaultConfig cfg_;
  std::mutex mu_;  // guards seq_
  std::unordered_map<std::uint64_t, std::uint64_t> seq_;  // (key,op) -> ops
  std::atomic<std::uint64_t> ops_{0};
  std::atomic<std::uint64_t> latency_spikes_{0};
  std::atomic<std::uint64_t> short_reads_{0};
  std::atomic<std::uint64_t> short_writes_{0};
  std::atomic<std::uint64_t> eio_reads_{0};
  std::atomic<std::uint64_t> eio_writes_{0};
  std::atomic<std::uint64_t> faults_{0};
};

}  // namespace sh::storage

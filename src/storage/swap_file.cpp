#include "storage/swap_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace sh::storage {

SwapFile::SwapFile(std::string path, std::size_t capacity_bytes,
                   double bytes_per_second, FaultConfig faults)
    : path_(std::move(path)),
      capacity_(capacity_bytes),
      bytes_per_second_(bytes_per_second),
      plan_(faults),
      io_("swap-io") {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("SwapFile: cannot open " + path_);
  }
  obs_provider_id_ = obs::Registry::global().add_provider(
      [this](obs::MetricsSnapshot& out) {
        out.add("swap.bytes_used", static_cast<double>(bytes_used()), "bytes");
        out.add("swap.capacity_bytes", static_cast<double>(capacity_),
                "bytes");
        out.add("swap.reads", static_cast<double>(reads_completed()));
        out.add("swap.writes", static_cast<double>(writes_completed()));
        out.add("swap.queue_depth", static_cast<double>(queue_depth()));
        const FaultPlan::Counters c = plan_.counters();
        out.add("swap.faults.injected", static_cast<double>(c.faults_total));
        out.add("swap.faults.latency", static_cast<double>(c.latency_spikes));
        out.add("swap.faults.short_read",
                static_cast<double>(c.short_reads));
        out.add("swap.faults.short_write",
                static_cast<double>(c.short_writes));
        out.add("swap.faults.eio_read", static_cast<double>(c.eio_reads));
        out.add("swap.faults.eio_write", static_cast<double>(c.eio_writes));
        out.add("swap.retries", static_cast<double>(retries_attempted()));
        out.add("swap.retry_backoff_s", retry_backoff_seconds(), "s");
        out.add("swap.io_errors", static_cast<double>(io_errors()));
      });
}

SwapFile::~SwapFile() {
  obs::Registry::global().remove_provider(obs_provider_id_);
  io_.wait_all();
  if (fd_ >= 0) {
    ::close(fd_);
    if (unlink_on_close_) ::unlink(path_.c_str());
  }
}

void SwapFile::sync() {
  if (::fsync(fd_) != 0) {
    throw IoError(IoErrorKind::SyscallFailed,
                  "SwapFile: fsync failed for " + path_, IoOp::Write);
  }
}

SwapFile::RegionInfo SwapFile::region_info(std::int64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = regions_.find(key);
  if (it == regions_.end()) {
    throw IoError(IoErrorKind::UnknownKey,
                  "SwapFile: unknown key " + std::to_string(key), IoOp::Read,
                  key);
  }
  return RegionInfo{it->second.offset, it->second.bytes};
}

SwapFile::Region SwapFile::region_for(std::int64_t key, std::size_t bytes,
                                      bool create, IoOp op) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = regions_.find(key);
  if (it != regions_.end()) {
    if (it->second.bytes != bytes) {
      // Typed error, raised before anything reaches the queue: a mismatched
      // rewrite would otherwise overrun into the neighbouring region.
      throw IoError(IoErrorKind::SizeMismatch,
                    "SwapFile: size mismatch for key " + std::to_string(key) +
                        " (region " + std::to_string(it->second.bytes) +
                        " bytes, op " + std::to_string(bytes) + " bytes)",
                    op, key);
    }
    return it->second;
  }
  if (!create) {
    throw IoError(IoErrorKind::UnknownKey,
                  "SwapFile: unknown key " + std::to_string(key), op, key);
  }
  if (capacity_ != 0 && next_offset_ + bytes > capacity_) {
    throw IoError(IoErrorKind::CapacityExceeded,
                  "SwapFile: capacity exceeded (used " +
                      std::to_string(next_offset_) + " + " +
                      std::to_string(bytes) + " > " +
                      std::to_string(capacity_) + " bytes)",
                  op, key);
  }
  const Region r{next_offset_, bytes};
  next_offset_ += bytes;
  regions_[key] = r;
  return r;
}

void SwapFile::throttle(std::size_t bytes) const {
  if (bytes_per_second_ > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(
        static_cast<double>(bytes) / bytes_per_second_));
  }
}

void SwapFile::note_failure(const std::exception_ptr& err) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!pending_error_) pending_error_ = err;
}

void SwapFile::rethrow_pending() {
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::swap(err, pending_error_);
  }
  if (err) std::rethrow_exception(err);
}

hw::RetryPolicy SwapFile::retry_policy(IoOp op, std::int64_t key) {
  const FaultConfig& fc = plan_.config();
  hw::RetryPolicy p;
  p.max_attempts = std::max<std::size_t>(fc.max_attempts, 1);
  p.backoff_initial_s = fc.backoff_initial_s;
  p.backoff_multiplier = fc.backoff_multiplier;
  p.backoff_max_s = fc.backoff_max_s;
  p.obs_track = "swap";
  p.retryable = [](const std::exception_ptr& ep) {
    try {
      std::rethrow_exception(ep);
    } catch (const TransientIoError&) {
      return true;
    } catch (...) {
      return false;
    }
  };
  p.on_retry = [this](std::size_t, double backoff_s) {
    retries_.fetch_add(1, std::memory_order_relaxed);
    backoff_nanos_.fetch_add(static_cast<std::uint64_t>(backoff_s * 1e9),
                             std::memory_order_relaxed);
  };
  p.on_exhausted = [this, op, key](const std::exception_ptr& ep,
                                   std::size_t attempts) -> std::exception_ptr {
    // Only transient (injected) faults represent an exhausted retry budget;
    // structural errors (syscall failures) pass through unchanged.
    bool transient = false;
    std::string detail;
    try {
      std::rethrow_exception(ep);
    } catch (const TransientIoError& e) {
      transient = true;
      detail = e.what();
    } catch (...) {
    }
    if (!transient) {
      note_failure(ep);
      return nullptr;
    }
    io_errors_.fetch_add(1, std::memory_order_relaxed);
    auto out = std::make_exception_ptr(IoError(
        IoErrorKind::FaultBudgetExhausted,
        "SwapFile: fault budget exhausted after " + std::to_string(attempts) +
            " attempts (key " + std::to_string(key) + "): " + detail,
        op, key, attempts));
    note_failure(out);
    return out;
  };
  return p;
}

void SwapFile::attempt_io(IoOp op, std::int64_t key, const Region& r,
                          char* rd_buf, const char* wr_buf,
                          std::size_t attempt) {
  const FaultDecision d = plan_.decide(op, key, attempt);
  const bool is_read = op == IoOp::Read;
  if (d.kind == FaultKind::TransientError) {
    obs::instant("swap", is_read ? "fault:eio-read" : "fault:eio-write");
    throw TransientIoError(IoErrorKind::TransientFault,
                           std::string("SwapFile: injected transient ") +
                               (is_read ? "read" : "write") +
                               " failure (key " + std::to_string(key) + ")",
                           op, key, attempt + 1);
  }
  std::size_t limit = r.bytes;
  if (d.kind == FaultKind::ShortOp && r.bytes > 1) {
    // Transfer a deterministic prefix, then fail the attempt. The retry
    // redoes the whole op at the same offset, so recovery is exact.
    limit = std::clamp<std::size_t>(
        static_cast<std::size_t>(d.short_fraction *
                                 static_cast<double>(r.bytes)),
        1, r.bytes - 1);
  }
  std::size_t done = 0;
  while (done < limit) {
    const ssize_t n =
        is_read ? ::pread(fd_, rd_buf + done, limit - done,
                          static_cast<off_t>(r.offset + done))
                : ::pwrite(fd_, wr_buf + done, limit - done,
                           static_cast<off_t>(r.offset + done));
    if (n <= 0) {
      throw IoError(IoErrorKind::SyscallFailed,
                    std::string("SwapFile: ") +
                        (is_read ? "pread" : "pwrite") + " failed (key " +
                        std::to_string(key) + ")",
                    op, key, attempt + 1);
    }
    done += static_cast<std::size_t>(n);
  }
  if (d.kind == FaultKind::LatencySpike && d.extra_latency_s > 0.0) {
    // The op succeeds, just slowly — models device-side tail latency.
    std::this_thread::sleep_for(
        std::chrono::duration<double>(d.extra_latency_s));
  }
  throttle(limit);
  if (limit < r.bytes) {
    obs::instant("swap", is_read ? "fault:short-read" : "fault:short-write");
    throw TransientIoError(
        IoErrorKind::TransientFault,
        std::string("SwapFile: injected short ") +
            (is_read ? "read" : "write") + " (key " + std::to_string(key) +
            ", " + std::to_string(limit) + "/" + std::to_string(r.bytes) +
            " bytes)",
        op, key, attempt + 1);
  }
}

std::shared_future<void> SwapFile::write_async(std::int64_t key,
                                               std::span<const float> data) {
  const Region r = region_for(key, data.size_bytes(), /*create=*/true,
                              IoOp::Write);
  auto job = [this, key, r, data](std::size_t attempt) {
    obs::ObsScope scope("swap", "write");
    attempt_io(IoOp::Write, key, r, nullptr,
               reinterpret_cast<const char*>(data.data()), attempt);
    writes_.fetch_add(1, std::memory_order_relaxed);
  };
  return io_.run_async_retry(std::move(job), retry_policy(IoOp::Write, key));
}

std::shared_future<void> SwapFile::read_async(std::int64_t key,
                                              std::span<float> out) {
  const Region r =
      region_for(key, out.size_bytes(), /*create=*/false, IoOp::Read);
  auto job = [this, key, r, out](std::size_t attempt) {
    obs::ObsScope scope("swap", "read");
    attempt_io(IoOp::Read, key, r, reinterpret_cast<char*>(out.data()),
               nullptr, attempt);
    reads_.fetch_add(1, std::memory_order_relaxed);
  };
  return io_.run_async_retry(std::move(job), retry_policy(IoOp::Read, key));
}

std::shared_future<void> SwapFile::join_async(
    std::vector<std::shared_future<void>> deps) {
  // FIFO: every dep was enqueued before this job, so the gets never block;
  // they exist purely to propagate the first failure.
  return io_.run_async([deps = std::move(deps)] {
    for (const auto& f : deps) {
      if (f.valid()) f.get();
    }
  });
}

void SwapFile::write(std::int64_t key, std::span<const float> data) {
  write_async(key, data).get();
}

void SwapFile::read(std::int64_t key, std::span<float> out) {
  read_async(key, out).get();
}

bool SwapFile::contains(std::int64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return regions_.count(key) > 0;
}

std::size_t SwapFile::bytes_used() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_offset_;
}

}  // namespace sh::storage

#include "storage/swap_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace sh::storage {

SwapFile::SwapFile(std::string path, std::size_t capacity_bytes,
                   double bytes_per_second)
    : path_(std::move(path)),
      capacity_(capacity_bytes),
      bytes_per_second_(bytes_per_second),
      io_("swap-io") {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("SwapFile: cannot open " + path_);
  }
  obs_provider_id_ = obs::Registry::global().add_provider(
      [this](obs::MetricsSnapshot& out) {
        out.add("swap.bytes_used", static_cast<double>(bytes_used()), "bytes");
        out.add("swap.capacity_bytes", static_cast<double>(capacity_),
                "bytes");
        out.add("swap.reads", static_cast<double>(reads_completed()));
        out.add("swap.writes", static_cast<double>(writes_completed()));
        out.add("swap.queue_depth", static_cast<double>(queue_depth()));
      });
}

SwapFile::~SwapFile() {
  obs::Registry::global().remove_provider(obs_provider_id_);
  io_.wait_all();
  if (fd_ >= 0) {
    ::close(fd_);
    ::unlink(path_.c_str());
  }
}

SwapFile::Region SwapFile::region_for(std::int64_t key, std::size_t bytes,
                                      bool create) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = regions_.find(key);
  if (it != regions_.end()) {
    if (it->second.bytes != bytes) {
      throw std::invalid_argument("SwapFile: size mismatch for key " +
                                  std::to_string(key));
    }
    return it->second;
  }
  if (!create) {
    throw std::out_of_range("SwapFile: unknown key " + std::to_string(key));
  }
  if (capacity_ != 0 && next_offset_ + bytes > capacity_) {
    throw std::runtime_error("SwapFile: capacity exceeded");
  }
  const Region r{next_offset_, bytes};
  next_offset_ += bytes;
  regions_[key] = r;
  return r;
}

void SwapFile::throttle(std::size_t bytes) const {
  if (bytes_per_second_ > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(
        static_cast<double>(bytes) / bytes_per_second_));
  }
}

std::shared_future<void> SwapFile::write_async(std::int64_t key,
                                               std::span<const float> data) {
  const Region r = region_for(key, data.size_bytes(), /*create=*/true);
  return io_.run_async([this, r, data] {
    obs::ObsScope scope("swap", "write");
    std::size_t done = 0;
    while (done < r.bytes) {
      const ssize_t n =
          ::pwrite(fd_, reinterpret_cast<const char*>(data.data()) + done,
                   r.bytes - done, static_cast<off_t>(r.offset + done));
      if (n <= 0) throw std::runtime_error("SwapFile: pwrite failed");
      done += static_cast<std::size_t>(n);
    }
    throttle(r.bytes);
    writes_.fetch_add(1, std::memory_order_relaxed);
  });
}

std::shared_future<void> SwapFile::read_async(std::int64_t key,
                                              std::span<float> out) {
  const Region r = region_for(key, out.size_bytes(), /*create=*/false);
  return io_.run_async([this, r, out] {
    obs::ObsScope scope("swap", "read");
    std::size_t done = 0;
    while (done < r.bytes) {
      const ssize_t n =
          ::pread(fd_, reinterpret_cast<char*>(out.data()) + done,
                  r.bytes - done, static_cast<off_t>(r.offset + done));
      if (n <= 0) throw std::runtime_error("SwapFile: pread failed");
      done += static_cast<std::size_t>(n);
    }
    throttle(r.bytes);
    reads_.fetch_add(1, std::memory_order_relaxed);
  });
}

void SwapFile::write(std::int64_t key, std::span<const float> data) {
  write_async(key, data).get();
}

void SwapFile::read(std::int64_t key, std::span<float> out) {
  read_async(key, out).get();
}

bool SwapFile::contains(std::int64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return regions_.count(key) > 0;
}

std::size_t SwapFile::bytes_used() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_offset_;
}

}  // namespace sh::storage

// Secondary-storage tier (Section III-G).
//
// The paper memory-maps a swap file on NVMe and issues asynchronous bulk
// reads/writes that overlap with CPU-GPU transfers and compute. This class
// provides the same capability over a real file: keyed per-layer regions,
// an asynchronous I/O worker with FIFO ordering, and an optional bandwidth
// throttle to emulate NVMe speeds in tests.
//
// The tier is fallible by design: a seeded FaultPlan (storage/fault_plan.hpp)
// can inject latency spikes, short reads/writes, and transient EIO-style
// failures into every attempt; a bounded-retry policy with exponential
// backoff (hw::TransferEngine::run_async_retry) recovers from transient
// faults, and every error surface is a typed storage::IoError. Permanent
// failures whose futures nobody holds (fire-and-forget write-backs) are
// latched and rethrown from rethrow_pending().
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <future>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "hw/transfer.hpp"
#include "storage/fault_plan.hpp"

namespace sh::storage {

class SwapFile {
 public:
  /// Creates (truncates) the swap file at `path`. `capacity_bytes` bounds the
  /// total region size (0 = unbounded). `bytes_per_second` throttles I/O
  /// (0 = full speed). `faults` configures injected faults and the paired
  /// retry policy (default: healthy device, no retries needed).
  SwapFile(std::string path, std::size_t capacity_bytes = 0,
           double bytes_per_second = 0.0, FaultConfig faults = {});
  ~SwapFile();

  SwapFile(const SwapFile&) = delete;
  SwapFile& operator=(const SwapFile&) = delete;

  /// Asynchronously writes `data` to the region of `key`, creating the
  /// region on first write. Rewrites must use the same size (mismatch is a
  /// typed IoError{SizeMismatch}, raised before anything is queued — the
  /// region is never partially overwritten).
  std::shared_future<void> write_async(std::int64_t key,
                                       std::span<const float> data);

  /// Asynchronously reads the region of `key` into `out` (size must match).
  std::shared_future<void> read_async(std::int64_t key, std::span<float> out);

  /// Enqueues a join barrier after previously returned futures: the result
  /// completes once every dep has, and carries the FIRST failure among them.
  /// Used by LayerStore to keep a dropped first-future's error from being
  /// lost (fault_in/write_back issue two tier ops per layer).
  std::shared_future<void> join_async(
      std::vector<std::shared_future<void>> deps);

  /// Synchronous conveniences.
  void write(std::int64_t key, std::span<const float> data);
  void read(std::int64_t key, std::span<float> out);

  /// Blocks until every queued asynchronous read/write has completed.
  /// Owners of buffers handed to write_async must call this (or hold the
  /// returned futures) before freeing them.
  void wait_all() { io_.wait_all(); }

  /// Rethrows (and clears) the first permanently failed op whose future was
  /// dropped — the engine polls this at iteration boundaries so write-back
  /// failures surface as IoError instead of dying silently in the queue.
  void rethrow_pending();

  /// Keeps the file on disk when this SwapFile is destroyed (by default the
  /// destructor unlinks it — swap space is transient). sh::ckpt flips this
  /// once a checkpoint generation's data has fully landed, turning the tier
  /// file into the durable artifact the rename-commit then publishes.
  void persist() noexcept { unlink_on_close_ = false; }

  /// fsync(2)s the backing file — called between "all writes landed" and the
  /// rename-commit so a crash after commit cannot expose unwritten blocks.
  /// Throws IoError{SyscallFailed} on failure.
  void sync();

  /// Placement of a key's region inside the backing file (offset + size in
  /// bytes). Checkpoint manifests record this so a restore can read tensors
  /// straight from the committed file. Throws IoError{UnknownKey}.
  struct RegionInfo {
    std::size_t offset;
    std::size_t bytes;
  };
  RegionInfo region_info(std::int64_t key) const;

  bool contains(std::int64_t key) const;
  std::size_t bytes_used() const;
  std::size_t capacity() const noexcept { return capacity_; }
  const std::string& path() const noexcept { return path_; }
  /// Completed asynchronous reads / writes (I/O-traffic counters).
  std::size_t reads_completed() const noexcept { return reads_.load(); }
  std::size_t writes_completed() const noexcept { return writes_.load(); }
  /// I/O jobs enqueued or executing right now (observability gauge).
  std::size_t queue_depth() const { return io_.queue_depth(); }

  /// Fault-injection observability.
  const FaultPlan& fault_plan() const noexcept { return plan_; }
  std::size_t retries_attempted() const noexcept { return retries_.load(); }
  std::size_t io_errors() const noexcept { return io_errors_.load(); }
  double retry_backoff_seconds() const noexcept {
    return static_cast<double>(backoff_nanos_.load()) * 1e-9;
  }

 private:
  struct Region {
    std::size_t offset;
    std::size_t bytes;
  };

  Region region_for(std::int64_t key, std::size_t bytes, bool create,
                    IoOp op);
  void throttle(std::size_t bytes) const;
  hw::RetryPolicy retry_policy(IoOp op, std::int64_t key);
  /// One faulted/healthy attempt of a full-region transfer. Applies the
  /// FaultDecision: EIO throws before any I/O, a short op transfers a
  /// prefix then throws (the retry redoes the idempotent full op), a
  /// latency spike sleeps after a successful transfer.
  void attempt_io(IoOp op, std::int64_t key, const Region& r, char* rd_buf,
                  const char* wr_buf, std::size_t attempt);
  void note_failure(const std::exception_ptr& err);

  std::string path_;
  std::size_t capacity_;
  double bytes_per_second_;
  int fd_ = -1;
  bool unlink_on_close_ = true;
  mutable std::mutex mu_;
  std::size_t next_offset_ = 0;
  std::unordered_map<std::int64_t, Region> regions_;
  std::atomic<std::size_t> reads_{0};
  std::atomic<std::size_t> writes_{0};
  FaultPlan plan_;
  std::atomic<std::size_t> retries_{0};
  std::atomic<std::size_t> io_errors_{0};
  std::atomic<std::uint64_t> backoff_nanos_{0};
  std::exception_ptr pending_error_;  // guarded by mu_
  std::uint64_t obs_provider_id_ = 0;
  hw::TransferEngine io_;  // FIFO async I/O worker
};

}  // namespace sh::storage

// Secondary-storage tier (Section III-G).
//
// The paper memory-maps a swap file on NVMe and issues asynchronous bulk
// reads/writes that overlap with CPU-GPU transfers and compute. This class
// provides the same capability over a real file: keyed per-layer regions,
// an asynchronous I/O worker with FIFO ordering, and an optional bandwidth
// throttle to emulate NVMe speeds in tests.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>

#include "hw/transfer.hpp"

namespace sh::storage {

class SwapFile {
 public:
  /// Creates (truncates) the swap file at `path`. `capacity_bytes` bounds the
  /// total region size (0 = unbounded). `bytes_per_second` throttles I/O
  /// (0 = full speed).
  SwapFile(std::string path, std::size_t capacity_bytes = 0,
           double bytes_per_second = 0.0);
  ~SwapFile();

  SwapFile(const SwapFile&) = delete;
  SwapFile& operator=(const SwapFile&) = delete;

  /// Asynchronously writes `data` to the region of `key`, creating the
  /// region on first write. Rewrites must use the same size.
  std::shared_future<void> write_async(std::int64_t key,
                                       std::span<const float> data);

  /// Asynchronously reads the region of `key` into `out` (size must match).
  std::shared_future<void> read_async(std::int64_t key, std::span<float> out);

  /// Synchronous conveniences.
  void write(std::int64_t key, std::span<const float> data);
  void read(std::int64_t key, std::span<float> out);

  /// Blocks until every queued asynchronous read/write has completed.
  /// Owners of buffers handed to write_async must call this (or hold the
  /// returned futures) before freeing them.
  void wait_all() { io_.wait_all(); }

  bool contains(std::int64_t key) const;
  std::size_t bytes_used() const;
  std::size_t capacity() const noexcept { return capacity_; }
  const std::string& path() const noexcept { return path_; }
  /// Completed asynchronous reads / writes (I/O-traffic counters).
  std::size_t reads_completed() const noexcept { return reads_.load(); }
  std::size_t writes_completed() const noexcept { return writes_.load(); }
  /// I/O jobs enqueued or executing right now (observability gauge).
  std::size_t queue_depth() const { return io_.queue_depth(); }

 private:
  struct Region {
    std::size_t offset;
    std::size_t bytes;
  };

  Region region_for(std::int64_t key, std::size_t bytes, bool create);
  void throttle(std::size_t bytes) const;

  std::string path_;
  std::size_t capacity_;
  double bytes_per_second_;
  int fd_ = -1;
  mutable std::mutex mu_;
  std::size_t next_offset_ = 0;
  std::unordered_map<std::int64_t, Region> regions_;
  std::atomic<std::size_t> reads_{0};
  std::atomic<std::size_t> writes_{0};
  std::uint64_t obs_provider_id_ = 0;
  hw::TransferEngine io_;  // FIFO async I/O worker
};

}  // namespace sh::storage

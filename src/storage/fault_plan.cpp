#include "storage/fault_plan.hpp"

#include <cstdlib>

namespace sh::storage {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double uniform01(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool env_double(const char* name, double* out) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  char* end = nullptr;
  const double d = std::strtod(v, &end);
  if (end == v) return false;
  *out = d;
  return true;
}

bool env_u64(const char* name, std::uint64_t* out) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  char* end = nullptr;
  const std::uint64_t u = std::strtoull(v, &end, 10);
  if (end == v) return false;
  *out = u;
  return true;
}

}  // namespace

FaultConfig fault_config_from_env(FaultConfig base) {
  env_double("SH_FAULT_RATE", &base.rate);
  env_u64("SH_FAULT_SEED", &base.seed);
  env_double("SH_FAULT_LATENCY_SPIKE_S", &base.latency_spike_s);
  std::uint64_t u = 0;
  if (env_u64("SH_FAULT_MAX_FAULTS_PER_OP", &u)) {
    base.max_faults_per_op = static_cast<std::size_t>(u);
  }
  if (env_u64("SH_FAULT_MAX_ATTEMPTS", &u)) {
    base.max_attempts = static_cast<std::size_t>(u);
  }
  env_double("SH_FAULT_BACKOFF_S", &base.backoff_initial_s);
  return base;
}

FaultDecision FaultPlan::decide(IoOp op, std::int64_t key,
                                std::size_t attempt) {
  ops_.fetch_add(1, std::memory_order_relaxed);
  if (!cfg_.enabled()) return {};
  if (op == IoOp::Read ? !cfg_.fault_reads : !cfg_.fault_writes) return {};
  // Bounded-transience guarantee: after max_faults_per_op faulted attempts
  // the op is forced healthy, so retry budgets above that always recover.
  if (attempt >= cfg_.max_faults_per_op) return {};

  const std::uint64_t slot =
      static_cast<std::uint64_t>(key) * 2 + (op == IoOp::Write ? 1 : 0);
  std::uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t& s = seq_[slot];
    if (attempt == 0) ++s;  // retries re-roll via `attempt`, not a new seq
    seq = s;
  }

  std::uint64_t h = splitmix64(cfg_.seed ^ splitmix64(slot));
  h = splitmix64(h ^ seq);
  h = splitmix64(h ^ (static_cast<std::uint64_t>(attempt) + 0x9e37ULL));
  if (uniform01(h) >= cfg_.rate) return {};

  const double wl = cfg_.latency_weight > 0.0 ? cfg_.latency_weight : 0.0;
  const double ws = cfg_.short_weight > 0.0 ? cfg_.short_weight : 0.0;
  const double we = cfg_.error_weight > 0.0 ? cfg_.error_weight : 0.0;
  const double total = wl + ws + we;
  if (total <= 0.0) return {};

  FaultDecision d;
  const double pick = uniform01(splitmix64(h ^ 0xfa17ULL)) * total;
  if (pick < wl) {
    d.kind = FaultKind::LatencySpike;
    d.extra_latency_s = cfg_.latency_spike_s;
    latency_spikes_.fetch_add(1, std::memory_order_relaxed);
  } else if (pick < wl + ws) {
    d.kind = FaultKind::ShortOp;
    d.short_fraction = 0.25 + 0.5 * uniform01(splitmix64(h ^ 0x5417ULL));
    (op == IoOp::Read ? short_reads_ : short_writes_)
        .fetch_add(1, std::memory_order_relaxed);
  } else {
    d.kind = FaultKind::TransientError;
    (op == IoOp::Read ? eio_reads_ : eio_writes_)
        .fetch_add(1, std::memory_order_relaxed);
  }
  faults_.fetch_add(1, std::memory_order_relaxed);
  return d;
}

FaultPlan::Counters FaultPlan::counters() const {
  Counters c;
  c.ops = ops_.load(std::memory_order_relaxed);
  c.latency_spikes = latency_spikes_.load(std::memory_order_relaxed);
  c.short_reads = short_reads_.load(std::memory_order_relaxed);
  c.short_writes = short_writes_.load(std::memory_order_relaxed);
  c.eio_reads = eio_reads_.load(std::memory_order_relaxed);
  c.eio_writes = eio_writes_.load(std::memory_order_relaxed);
  c.faults_total = faults_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace sh::storage

#include "serve/workload.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "tensor/rng.hpp"

namespace sh::serve {

namespace {

/// Bounded-Pareto draw in [lo, hi] via inverse-CDF; u in [0, 1). The mass
/// concentrates near `lo` with a power-law tail toward `hi` — the classic
/// "mostly short prompts, occasionally huge ones" serving mix.
std::int64_t bounded_pareto(double u, std::int64_t lo, std::int64_t hi,
                            double alpha) {
  if (hi <= lo) return lo;
  const double l = static_cast<double>(lo);
  const double h = static_cast<double>(hi);
  const double ratio = std::pow(l / h, alpha);
  const double x = l / std::pow(1.0 - u * (1.0 - ratio), 1.0 / alpha);
  const auto v = static_cast<std::int64_t>(x);
  return std::clamp(v, lo, hi);
}

void require(bool ok, WorkloadErrorKind kind, const std::string& what,
             std::size_t line) {
  if (!ok) throw WorkloadError(kind, what, line);
}

/// One whitespace-tokenized line with typed field extraction.
class LineParser {
 public:
  LineParser(const std::string& text, std::size_t line)
      : in_(text), line_(line) {}

  std::string word(const char* field) {
    std::string w;
    require(static_cast<bool>(in_ >> w), WorkloadErrorKind::Parse,
            std::string("missing field: ") + field, line_);
    return w;
  }
  double number(const char* field) {
    const std::string w = word(field);
    try {
      std::size_t used = 0;
      const double v = std::stod(w, &used);
      require(used == w.size(), WorkloadErrorKind::Parse,
              std::string("non-numeric ") + field + ": " + w, line_);
      return v;
    } catch (const std::logic_error&) {
      throw WorkloadError(WorkloadErrorKind::Parse,
                          std::string("non-numeric ") + field + ": " + w,
                          line_);
    }
  }
  std::int64_t integer(const char* field) {
    const double v = number(field);
    require(v == std::floor(v), WorkloadErrorKind::Parse,
            std::string("non-integer ") + field, line_);
    return static_cast<std::int64_t>(v);
  }
  /// Full-range uint64 (RNG seeds exceed double's 53-bit mantissa).
  std::uint64_t u64(const char* field) {
    const std::string w = word(field);
    try {
      std::size_t used = 0;
      const unsigned long long v = std::stoull(w, &used);
      require(used == w.size() && w.front() != '-',
              WorkloadErrorKind::Parse,
              std::string("non-numeric ") + field + ": " + w, line_);
      return v;
    } catch (const std::logic_error&) {
      throw WorkloadError(WorkloadErrorKind::Parse,
                          std::string("non-numeric ") + field + ": " + w,
                          line_);
    }
  }
  void done() {
    std::string extra;
    require(!(in_ >> extra), WorkloadErrorKind::Parse,
            "trailing tokens on line", line_);
  }

 private:
  std::istringstream in_;
  std::size_t line_;
};

}  // namespace

std::size_t Workload::total_prompt_tokens() const {
  std::size_t n = 0;
  for (const WorkloadItem& it : items) n += it.prompt.size();
  return n;
}

Workload generate_workload(const WorkloadSpec& spec) {
  Workload wl;
  wl.tiers = spec.tiers;
  if (wl.tiers.empty()) wl.tiers.push_back({"default", 1.0});
  wl.shared_prefix = spec.shared_prefix;

  std::vector<double> weights = spec.tier_weights;
  weights.resize(wl.tiers.size(), weights.empty() ? 1.0 : 0.0);
  double weight_sum = 0.0;
  for (double w : weights) weight_sum += w;
  if (weight_sum <= 0.0) {
    weights.assign(wl.tiers.size(), 1.0);
    weight_sum = static_cast<double>(wl.tiers.size());
  }

  tensor::Rng rng(spec.seed);
  double clock = 0.0;
  for (std::size_t i = 0; i < spec.requests; ++i) {
    WorkloadItem item;
    item.id = i + 1;
    // Fixed draw order per request: arrival, tier, share, lengths, tokens.
    clock += -std::log(1.0 - rng.next_uniform()) /
             std::max(spec.arrival_rate, 1e-9);
    item.arrival_s = clock;

    double pick = rng.next_uniform() * weight_sum;
    item.tier = wl.tiers.size() - 1;
    for (std::size_t t = 0; t < weights.size(); ++t) {
      if (pick < weights[t]) {
        item.tier = t;
        break;
      }
      pick -= weights[t];
    }

    item.shares_prefix = !wl.shared_prefix.empty() &&
                         rng.next_uniform() < spec.prefix_share;

    const std::int64_t prompt_len = bounded_pareto(
        rng.next_uniform(), spec.prompt_min, spec.prompt_max,
        spec.prompt_alpha);
    item.max_new_tokens = static_cast<std::size_t>(bounded_pareto(
        rng.next_uniform(), spec.output_min, spec.output_max,
        spec.output_alpha));

    if (item.shares_prefix) item.prompt = wl.shared_prefix;
    // Private prompt tokens (all of them when not sharing). A sharer always
    // gets at least one private token so its prompt diverges from the pure
    // prefix only by suffix — both cases exercise the CoW path.
    for (std::int64_t t = 0; t < prompt_len; ++t) {
      item.prompt.push_back(static_cast<std::int32_t>(
          1 + rng.next_below(static_cast<std::uint64_t>(spec.vocab - 1))));
    }

    item.sampling.temperature = spec.temperature;
    item.sampling.top_k = spec.top_k;
    item.sampling.top_p = spec.top_p;
    item.sampling.seed = rng.next_u64();
    wl.items.push_back(std::move(item));
  }
  return wl;
}

void Workload::save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw WorkloadError(WorkloadErrorKind::MissingFile,
                        "Workload::save: cannot open " + path);
  }
  std::fprintf(f, "shwl 1\n");
  std::fprintf(f, "tiers %zu\n", tiers.size());
  for (const DeadlineTier& t : tiers) {
    std::fprintf(f, "tier %s %.17g\n", t.name.c_str(), t.deadline_s);
  }
  std::fprintf(f, "prefix %zu", shared_prefix.size());
  for (std::int32_t tok : shared_prefix) std::fprintf(f, " %d", tok);
  std::fprintf(f, "\n");
  std::fprintf(f, "items %zu\n", items.size());
  for (const WorkloadItem& it : items) {
    std::fprintf(f, "item %llu %.17g %zu %zu %llu %.9g %d %.9g %d %zu",
                 static_cast<unsigned long long>(it.id), it.arrival_s,
                 it.tier, it.max_new_tokens,
                 static_cast<unsigned long long>(it.sampling.seed),
                 static_cast<double>(it.sampling.temperature),
                 it.sampling.top_k, static_cast<double>(it.sampling.top_p),
                 it.shares_prefix ? 1 : 0, it.prompt.size());
    for (std::int32_t tok : it.prompt) std::fprintf(f, " %d", tok);
    std::fprintf(f, "\n");
  }
  std::fprintf(f, "end\n");
  std::fclose(f);
}

Workload Workload::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw WorkloadError(WorkloadErrorKind::MissingFile,
                        "Workload::load: cannot open " + path);
  }

  Workload wl;
  std::string text;
  std::size_t line = 0;
  auto next_line = [&](const char* what) {
    require(static_cast<bool>(std::getline(in, text)),
            WorkloadErrorKind::Truncated,
            std::string("file ends before ") + what, line);
    ++line;
  };

  next_line("header");
  {
    LineParser p(text, line);
    require(p.word("magic") == "shwl", WorkloadErrorKind::BadMagic,
            "not a workload file (bad magic)", line);
    const std::int64_t version = p.integer("version");
    require(version == 1, WorkloadErrorKind::BadVersion,
            "unsupported workload version " + std::to_string(version), line);
    p.done();
  }

  next_line("tier count");
  std::int64_t tier_count = 0;
  {
    LineParser p(text, line);
    require(p.word("keyword") == "tiers", WorkloadErrorKind::Parse,
            "expected 'tiers'", line);
    tier_count = p.integer("tier count");
    require(tier_count >= 1, WorkloadErrorKind::Range,
            "workload needs at least one tier", line);
    p.done();
  }
  for (std::int64_t t = 0; t < tier_count; ++t) {
    next_line("tier");
    LineParser p(text, line);
    require(p.word("keyword") == "tier", WorkloadErrorKind::Parse,
            "expected 'tier'", line);
    DeadlineTier tier;
    tier.name = p.word("tier name");
    tier.deadline_s = p.number("tier deadline");
    require(tier.deadline_s > 0.0, WorkloadErrorKind::Range,
            "tier deadline must be positive", line);
    p.done();
    wl.tiers.push_back(std::move(tier));
  }

  next_line("prefix");
  {
    LineParser p(text, line);
    require(p.word("keyword") == "prefix", WorkloadErrorKind::Parse,
            "expected 'prefix'", line);
    const std::int64_t n = p.integer("prefix length");
    require(n >= 0, WorkloadErrorKind::Range, "negative prefix length", line);
    for (std::int64_t t = 0; t < n; ++t) {
      wl.shared_prefix.push_back(
          static_cast<std::int32_t>(p.integer("prefix token")));
    }
    p.done();
  }

  next_line("item count");
  std::int64_t item_count = 0;
  {
    LineParser p(text, line);
    require(p.word("keyword") == "items", WorkloadErrorKind::Parse,
            "expected 'items'", line);
    item_count = p.integer("item count");
    require(item_count >= 0, WorkloadErrorKind::Range,
            "negative item count", line);
    p.done();
  }
  double prev_arrival = 0.0;
  for (std::int64_t i = 0; i < item_count; ++i) {
    next_line("item");
    LineParser p(text, line);
    require(p.word("keyword") == "item", WorkloadErrorKind::Parse,
            "expected 'item'", line);
    WorkloadItem item;
    item.id = p.u64("id");
    item.arrival_s = p.number("arrival");
    item.tier = static_cast<std::size_t>(p.integer("tier"));
    item.max_new_tokens = static_cast<std::size_t>(p.integer("max_new"));
    item.sampling.seed = p.u64("seed");
    item.sampling.temperature = static_cast<float>(p.number("temperature"));
    item.sampling.top_k = static_cast<std::int32_t>(p.integer("top_k"));
    item.sampling.top_p = static_cast<float>(p.number("top_p"));
    const std::int64_t shares = p.integer("shares_prefix");
    require(shares == 0 || shares == 1, WorkloadErrorKind::Range,
            "shares_prefix must be 0 or 1", line);
    item.shares_prefix = shares == 1;
    const std::int64_t prompt_len = p.integer("prompt length");
    require(prompt_len >= 1, WorkloadErrorKind::Range,
            "prompt must be non-empty", line);
    for (std::int64_t t = 0; t < prompt_len; ++t) {
      item.prompt.push_back(
          static_cast<std::int32_t>(p.integer("prompt token")));
    }
    p.done();

    require(item.tier < wl.tiers.size(), WorkloadErrorKind::Range,
            "item tier index out of range", line);
    require(item.max_new_tokens >= 1, WorkloadErrorKind::Range,
            "max_new_tokens must be >= 1", line);
    require(item.arrival_s >= prev_arrival, WorkloadErrorKind::Range,
            "arrivals must be non-decreasing", line);
    if (item.shares_prefix) {
      require(!wl.shared_prefix.empty() &&
                  item.prompt.size() >= wl.shared_prefix.size() &&
                  std::equal(wl.shared_prefix.begin(), wl.shared_prefix.end(),
                             item.prompt.begin()),
              WorkloadErrorKind::Range,
              "shares_prefix set but prompt does not start with the prefix",
              line);
    }
    prev_arrival = item.arrival_s;
    wl.items.push_back(std::move(item));
  }

  next_line("end sentinel");
  require(text == "end", WorkloadErrorKind::Truncated,
          "missing 'end' sentinel", line);
  return wl;
}

}  // namespace sh::serve

// Replayable serving workloads: seeded open-loop traffic generation and a
// record/replay file format.
//
// A Workload is the full description of one serving experiment's offered
// traffic: deadline tiers, an optional shared system-prompt prefix, and a
// list of requests with virtual arrival times (open loop — arrivals do not
// wait for completions). Generation is a pure function of the spec: one
// seeded Rng stream drawn in a fixed per-request order produces Poisson
// arrivals and heavy-tail (bounded-Pareto) prompt/output lengths, so the
// same spec always yields the same traffic. The file format round-trips
// exactly (doubles serialized with %.17g), which is what lets the router
// determinism tests assert identical admission order and token counts from
// one recorded file at any replica count.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/sampler.hpp"

namespace sh::serve {

enum class WorkloadErrorKind {
  MissingFile,  ///< the path cannot be opened
  BadMagic,     ///< not a workload file
  BadVersion,   ///< workload file from an unknown format version
  Truncated,    ///< ends before the "end" sentinel / declared item count
  Parse,        ///< malformed field (wrong token count, non-numeric value)
  Range,        ///< structurally valid but semantically impossible value
};

/// Typed workload-file error; carries the failing line (1-based, 0 when the
/// error is not attributable to a line).
class WorkloadError : public std::runtime_error {
 public:
  WorkloadError(WorkloadErrorKind kind, const std::string& what,
                std::size_t line = 0)
      : std::runtime_error(what), kind_(kind), line_(line) {}

  WorkloadErrorKind kind() const noexcept { return kind_; }
  std::size_t line() const noexcept { return line_; }

 private:
  WorkloadErrorKind kind_;
  std::size_t line_;
};

/// A deadline class: requests of this tier should finish within `deadline_s`
/// virtual seconds of arrival. The router reports latency percentiles and
/// goodput per tier, and the SLO-aware preemption policy computes a
/// sequence's headroom against its tier's deadline.
struct DeadlineTier {
  std::string name;
  double deadline_s = 0.0;
};

/// One request of the offered traffic.
struct WorkloadItem {
  std::uint64_t id = 0;
  /// Virtual arrival time (seconds on the router's virtual clock).
  double arrival_s = 0.0;
  /// Index into Workload::tiers.
  std::size_t tier = 0;
  std::vector<std::int32_t> prompt;
  std::size_t max_new_tokens = 0;
  SamplingParams sampling{};
  /// Prompt begins with the workload's shared prefix (precomputed at
  /// generation so replay never re-derives it).
  bool shares_prefix = false;
};

struct WorkloadSpec {
  std::uint64_t seed = 1;
  std::size_t requests = 32;
  /// Mean arrival rate of the open-loop Poisson process, requests per
  /// virtual second.
  double arrival_rate = 50.0;
  /// Token id range of synthetic prompts: ids drawn from [1, vocab).
  std::int64_t vocab = 64;
  /// Heavy-tail prompt/output length mix (bounded Pareto, shape alpha;
  /// smaller alpha = heavier tail).
  std::int64_t prompt_min = 2;
  std::int64_t prompt_max = 12;
  double prompt_alpha = 1.2;
  std::int64_t output_min = 4;
  std::int64_t output_max = 24;
  double output_alpha = 1.2;
  /// Deadline tiers and their selection weights (normalized internally).
  /// Empty = one "default" tier with a 1s deadline.
  std::vector<DeadlineTier> tiers{};
  std::vector<double> tier_weights{};
  /// Shared system prompt: each request independently starts with it with
  /// probability `prefix_share` (its private tokens follow). Empty prefix
  /// disables sharing.
  std::vector<std::int32_t> shared_prefix{};
  double prefix_share = 0.0;
  /// Sampling parameters applied to every request (per-request seeds are
  /// derived from `seed`).
  float temperature = 0.0f;
  std::int32_t top_k = 0;
  float top_p = 1.0f;
};

struct Workload {
  std::vector<DeadlineTier> tiers;
  std::vector<std::int32_t> shared_prefix;
  /// Sorted by arrival_s (ties keep id order) — the admission order.
  std::vector<WorkloadItem> items;

  /// Total prompt tokens a prefix-blind server would prefill — the baseline
  /// of the shared-prefix compute-savings ratio.
  std::size_t total_prompt_tokens() const;

  /// Writes the workload in the "shwl" text format (round-trips exactly).
  void save(const std::string& path) const;
  /// Parses a file written by save(); throws WorkloadError on anything
  /// malformed.
  static Workload load(const std::string& path);
};

/// Generates the workload described by `spec`. Deterministic: the same spec
/// yields the same workload on every call.
Workload generate_workload(const WorkloadSpec& spec);

}  // namespace sh::serve

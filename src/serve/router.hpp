// SLO-aware router: open-loop traffic over a fleet of serving replicas.
//
// The north-star traffic story is millions of users hitting a fleet, not
// one scheduler in a loop. A Router owns N Scheduler replicas over ONE
// StrongholdEngine (they share its mem::DeviceArena — the scarce host
// budget the working window and every replica's KvArena contend for) and
// drives a recorded Workload through them on a VIRTUAL clock: each fleet
// step advances every replica one iteration and the clock by step_dt, and
// arrivals are dispatched the step their arrival_s comes due (open loop —
// offered load never waits for completions).
//
// Everything the router decides is a pure function of (workload, config):
// dispatch goes to the replica with the least outstanding work (ties to the
// lowest index), latencies are measured in virtual seconds, and each
// request's token stream is a function of the request alone (the scheduler
// invariant). So the same workload file produces the same admission order,
// token streams, and latency percentiles at any replica count — which is
// what makes goodput/p99 CI gates on BENCH_serve.json meaningful.
//
// Configuration knobs (applied in the constructor, env over config):
//   SH_SERVE_REPLICAS  fleet size
//   SH_SERVE_POLICY    "youngest" | "slo" preemption victim policy
//   SH_SERVE_STEP_DT   virtual seconds per fleet step
//   SH_SERVE_PREFIX    "on"/"off" shared-prefix CoW reuse
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "obs/metrics.hpp"
#include "serve/scheduler.hpp"
#include "serve/workload.hpp"

namespace sh::serve {

struct RouterConfig {
  /// Fleet size; every replica is a Scheduler built from `scheduler`.
  std::size_t replicas = 1;
  /// Per-replica scheduler template. arena.budget_bytes is per replica —
  /// set it explicitly for an even split of the shared device arena (0
  /// lets each replica claim the full residual, oversubscribing it).
  SchedulerConfig scheduler{};
  /// Virtual seconds one fleet step models (also the SLO policy's
  /// remaining-token price; overrides scheduler.step_dt).
  double step_dt = 0.01;
  /// Prefill a workload's shared prefix once per replica and admit sharers
  /// copy-on-write. Off = prefix-blind (the savings baseline).
  bool share_prefix = true;
};

/// Env overlay for RouterConfig (SH_SERVE_* above); unparsable values are
/// ignored, absent ones keep `base`.
RouterConfig router_config_from_env(RouterConfig base = {});

/// Per-deadline-tier outcome report, virtual-time percentiles included.
struct RouterTierReport {
  std::string name;
  double deadline_s = 0.0;
  std::size_t offered = 0;
  std::size_t finished = 0;
  std::size_t met_deadline = 0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  double p999_s = 0.0;
  /// Fraction of offered requests that finished WITHIN deadline — the
  /// quantity goodput-vs-offered-load curves plot.
  double goodput() const {
    return offered == 0
               ? 0.0
               : static_cast<double>(met_deadline) /
                     static_cast<double>(offered);
  }
};

struct RouterStats {
  std::size_t dispatched = 0;
  std::size_t finished = 0;
  std::size_t steps = 0;  ///< fleet steps (each advances every replica)
  std::size_t preemptions = 0;
  std::size_t resumes = 0;
  /// Prompt tokens the fleet actually prefilled (per-replica prefix fills
  /// plus every request's unshared remainder).
  std::size_t prefill_tokens = 0;
  /// Prompt tokens a prefix-blind fleet would have prefilled.
  std::size_t prefill_baseline_tokens = 0;
};

class Router {
 public:
  /// Builds the fleet. Applies router_config_from_env(config) so a
  /// deployment can resize/retune without recompiling — pass exact values
  /// in a clean environment for reproducible runs.
  Router(core::StrongholdEngine& engine, RouterConfig config);

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Drives the whole workload to completion on the virtual clock. One
  /// call per Router (throws std::logic_error on reuse). An engine IoError
  /// (dead swap tier under fault injection) propagates to the caller; the
  /// router stays destructible.
  void run(const Workload& workload);

  /// Finished request's tokens (prompt + generated).
  const std::vector<std::int32_t>& result(std::uint64_t item_id) const;
  /// Which replica the item was dispatched to.
  std::size_t replica_of(std::uint64_t item_id) const;

  RouterStats stats() const { return stats_; }
  std::vector<RouterTierReport> tier_reports() const;
  /// Virtual request latency percentile across ALL tiers (q in [0, 1]).
  double latency_percentile(double q) const {
    return all_latency_.percentile(q);
  }
  double virtual_now() const noexcept { return now_; }
  /// Actually-prefilled over prefix-blind baseline prompt tokens — the
  /// shared-prefix compute-savings ratio (1.0 when sharing is off).
  double prefill_savings() const {
    return stats_.prefill_tokens == 0
               ? 1.0
               : static_cast<double>(stats_.prefill_baseline_tokens) /
                     static_cast<double>(stats_.prefill_tokens);
  }

  std::size_t replica_count() const noexcept { return replicas_.size(); }
  Scheduler& replica(std::size_t i) { return *replicas_.at(i); }

 private:
  struct InFlight {
    std::size_t replica = 0;
    std::size_t tier = 0;
    double arrival_s = 0.0;
    double deadline_s = 0.0;
  };

  void dispatch(const WorkloadItem& item);
  void collect_finished();

  core::StrongholdEngine& engine_;
  RouterConfig cfg_;
  std::vector<std::unique_ptr<Scheduler>> replicas_;
  /// Outstanding prompt+output tokens per replica — the load the
  /// least-loaded dispatch rule balances.
  std::vector<std::size_t> outstanding_;
  std::vector<DeadlineTier> tiers_;
  std::deque<obs::Histogram> tier_latency_;  // per tier, virtual seconds
  obs::Histogram all_latency_;
  std::vector<std::size_t> tier_offered_;
  std::vector<std::size_t> tier_finished_;
  std::vector<std::size_t> tier_met_;
  std::map<std::uint64_t, InFlight> in_flight_;  // ordered → deterministic
  std::map<std::uint64_t, std::size_t> placed_;  // item id → replica
  bool prefix_active_ = false;
  std::size_t prefix_len_ = 0;
  bool ran_ = false;
  double now_ = 0.0;
  RouterStats stats_;
};

}  // namespace sh::serve

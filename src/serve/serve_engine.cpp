#include "serve/serve_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>

namespace sh::serve {

namespace {

double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ServeEngine::ServeEngine(core::StrongholdEngine& engine)
    : engine_(engine), epoch_(wall_seconds()) {}

double ServeEngine::now() const { return wall_seconds() - epoch_; }

std::vector<std::vector<float>> ServeEngine::step(
    std::span<const SeqInput> seqs) {
  if (seqs.empty()) return {};
  const std::size_t blocks = engine_.model().num_layers() - 2;
  const std::int64_t vocab = engine_.model().config().vocab;

  std::vector<nn::DecodeSlot> slots(seqs.size());
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    const SeqInput& in = seqs[i];
    if (in.ids.empty()) {
      throw std::invalid_argument("ServeEngine::step: sequence with no ids");
    }
    if (in.caches.size() != blocks) {
      throw std::invalid_argument(
          "ServeEngine::step: cache count does not match block count");
    }
    slots[i].ids.assign(in.ids.begin(), in.ids.end());
    slots[i].pos = in.pos;
    slots[i].caches = in.caches;
  }

  const double t0 = now();
  engine_.stream_layers([&](std::size_t unit, nn::Layer& layer) {
    nn::apply_unit_multi(layer, unit, blocks, slots);
  });
  const double t1 = now();

  std::vector<std::vector<float>> last_logits(slots.size());
  std::size_t new_tokens = 0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const tensor::Tensor& logits = slots[i].x;
    const std::int64_t rows = logits.shape().dim(0);
    last_logits[i].resize(static_cast<std::size_t>(vocab));
    std::copy_n(logits.data() + (rows - 1) * vocab, vocab,
                last_logits[i].data());
    const std::size_t n = slots[i].ids.size();
    new_tokens += n;
    if (slots[i].pos == 0) {
      stats_.prefill_tokens += n;
    } else {
      stats_.decode_tokens += n;
    }
  }

  ++stats_.steps;
  stats_.sequence_steps += slots.size();
  stats_.elapsed_s += t1 - t0;
  trace_.record("serve",
                "s" + std::to_string(slots.size()) + "/t" +
                    std::to_string(new_tokens),
                {t0, t1});
  return last_logits;
}

void ServeEngine::record_request(std::uint64_t id, double submit_t,
                                 double finish_t) {
  latencies_.push_back(finish_t - submit_t);
  trace_.record("request", "r" + std::to_string(id), {submit_t, finish_t});
}

double ServeEngine::latency_percentile(double q) const {
  if (latencies_.empty()) return 0.0;
  std::vector<double> sorted = latencies_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace sh::serve

#include "serve/serve_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/obs.hpp"

namespace sh::serve {

using obs::wall_seconds;

ServeEngine::ServeEngine(core::StrongholdEngine& engine)
    : engine_(engine), epoch_(wall_seconds()) {
  obs_provider_id_ = obs::Registry::global().add_provider(
      [this](obs::MetricsSnapshot& out) {
        out.add("serve.steps", static_cast<double>(stats_.steps));
        out.add("serve.prefill_tokens",
                static_cast<double>(stats_.prefill_tokens), "tokens");
        out.add("serve.decode_tokens",
                static_cast<double>(stats_.decode_tokens), "tokens");
        out.add("serve.sequence_steps",
                static_cast<double>(stats_.sequence_steps));
        out.add("serve.tokens_per_s", stats_.tokens_per_s(), "tokens/s");
        out.add("serve.requests",
                static_cast<double>(latency_hist_.count()));
        out.add("serve.latency_p50_s", latency_hist_.percentile(0.5), "s");
        out.add("serve.latency_p99_s", latency_hist_.percentile(0.99), "s");
      });
}

ServeEngine::~ServeEngine() {
  obs::Registry::global().remove_provider(obs_provider_id_);
}

double ServeEngine::now() const { return wall_seconds() - epoch_; }

std::vector<std::vector<float>> ServeEngine::step(
    std::span<const SeqInput> seqs) {
  if (seqs.empty()) return {};
  const std::size_t blocks = engine_.model().num_layers() - 2;
  const std::int64_t vocab = engine_.model().config().vocab;

  std::vector<nn::DecodeSlot> slots(seqs.size());
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    const SeqInput& in = seqs[i];
    if (in.ids.empty()) {
      throw std::invalid_argument("ServeEngine::step: sequence with no ids");
    }
    if (in.caches.size() != blocks) {
      throw std::invalid_argument(
          "ServeEngine::step: cache count does not match block count");
    }
    slots[i].ids.assign(in.ids.begin(), in.ids.end());
    slots[i].pos = in.pos;
    slots[i].caches = in.caches;
  }

  const double t0 = now();
  engine_.stream_layers([&](std::size_t unit, nn::Layer& layer) {
    nn::apply_unit_multi(layer, unit, blocks, slots);
  });
  const double t1 = now();

  std::vector<std::vector<float>> last_logits(slots.size());
  std::size_t new_tokens = 0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const tensor::Tensor& logits = slots[i].x;
    const std::int64_t rows = logits.shape().dim(0);
    last_logits[i].resize(static_cast<std::size_t>(vocab));
    std::copy_n(logits.data() + (rows - 1) * vocab, vocab,
                last_logits[i].data());
    const std::size_t n = slots[i].ids.size();
    new_tokens += n;
    if (slots[i].pos == 0) {
      stats_.prefill_tokens += n;
    } else {
      stats_.decode_tokens += n;
    }
  }

  ++stats_.steps;
  stats_.sequence_steps += slots.size();
  stats_.elapsed_s += t1 - t0;
  const std::string label = "s" + std::to_string(slots.size()) + "/t" +
                            std::to_string(new_tokens);
  obs::span("serve", label, epoch_ + t0, epoch_ + t1);
  trace_.record("serve", label, {t0, t1});
  return last_logits;
}

void ServeEngine::record_request(std::uint64_t id, double submit_t,
                                 double finish_t) {
  latency_hist_.record(finish_t - submit_t);
  const std::string label = "r" + std::to_string(id);
  obs::span("request", label, epoch_ + submit_t, epoch_ + finish_t);
  trace_.record("request", label, {submit_t, finish_t});
}

double ServeEngine::latency_percentile(double q) const {
  return latency_hist_.percentile(q);
}

}  // namespace sh::serve

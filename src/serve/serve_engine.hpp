// Batched layer-streamed decode executor for the serving runtime.
//
// One ServeEngine::step is one continuous-batching iteration (paper §VI-D3
// FP-only inference, batched): every model unit's weights stream through the
// STRONGHOLD working window exactly once, and while a unit is resident it
// runs EVERY in-flight sequence — prefills and single-token decodes mixed —
// so the host->device transfer cost of a step is independent of the batch
// size. Records wall-clock step spans and finished-request latency spans
// into a sim::Trace, plus tokens/sec counters.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/engine.hpp"
#include "nn/decode_batch.hpp"
#include "obs/metrics.hpp"
#include "sim/trace.hpp"

namespace sh::serve {

struct ServeEngineStats {
  std::size_t steps = 0;
  std::size_t prefill_tokens = 0;
  std::size_t decode_tokens = 0;
  /// Sum over steps of the number of resident sequences (batch occupancy).
  std::size_t sequence_steps = 0;
  /// Wall time spent inside step().
  double elapsed_s = 0.0;
  double tokens_per_s() const noexcept {
    return elapsed_s > 0.0
               ? static_cast<double>(prefill_tokens + decode_tokens) /
                     elapsed_s
               : 0.0;
  }
};

class ServeEngine {
 public:
  explicit ServeEngine(core::StrongholdEngine& engine);
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Input of one resident sequence for one step.
  struct SeqInput {
    std::span<const std::int32_t> ids;  ///< new tokens (1 for decode)
    std::int64_t pos = 0;               ///< absolute position of ids.front()
    std::span<nn::KvCache> caches;      ///< per-block caches
  };

  /// Runs one batched step; returns the LAST position's logits row for each
  /// sequence, in input order. Each sequence's arithmetic is bit-identical
  /// to decoding it alone through StrongholdEngine::decode_step.
  std::vector<std::vector<float>> step(std::span<const SeqInput> seqs);

  /// Records a finished request's [submit, finish] interval (seconds on this
  /// engine's clock) as a trace span and a latency sample.
  void record_request(std::uint64_t id, double submit_t, double finish_t);

  /// Latency percentile in seconds over finished requests (q in [0, 1];
  /// 0.5 = p50, 0.99 = p99). Returns 0 with no samples.
  double latency_percentile(double q) const;

  /// Seconds since engine construction — the clock request/step spans use.
  double now() const;

  const ServeEngineStats& stats() const noexcept { return stats_; }
  const sim::Trace& trace() const noexcept { return trace_; }

 private:
  core::StrongholdEngine& engine_;
  ServeEngineStats stats_;
  /// Finished-request latency distribution (obs::Histogram owns the one
  /// sort-and-interpolate percentile implementation).
  obs::Histogram latency_hist_;
  sim::Trace trace_;
  double epoch_;
  std::uint64_t obs_provider_id_ = 0;
};

}  // namespace sh::serve

#include "serve/sampler.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace sh::serve {

std::int32_t sample_token(std::span<const float> logits,
                          const SamplingParams& params, tensor::Rng& rng) {
  if (logits.empty()) {
    throw std::invalid_argument("sample_token: empty logits");
  }
  if (params.greedy()) {
    return static_cast<std::int32_t>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
  }

  const std::size_t vocab = logits.size();
  // Stable softmax at the requested temperature.
  const float max_logit = *std::max_element(logits.begin(), logits.end());
  std::vector<double> probs(vocab);
  double total = 0.0;
  for (std::size_t i = 0; i < vocab; ++i) {
    probs[i] = std::exp(static_cast<double>(logits[i] - max_logit) /
                        static_cast<double>(params.temperature));
    total += probs[i];
  }
  for (double& p : probs) p /= total;

  // Probability-sorted candidate order; ties broken toward the lower index
  // so the candidate set is deterministic.
  std::vector<std::int32_t> order(vocab);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::int32_t a, std::int32_t b) {
                     return probs[static_cast<std::size_t>(a)] >
                            probs[static_cast<std::size_t>(b)];
                   });

  std::size_t keep = vocab;
  if (params.top_k > 0) {
    keep = std::min<std::size_t>(keep,
                                 static_cast<std::size_t>(params.top_k));
  }
  if (params.top_p < 1.0f) {
    // Smallest prefix whose mass reaches top_p (always at least one token).
    double mass = 0.0;
    std::size_t nucleus = 0;
    while (nucleus < keep) {
      mass += probs[static_cast<std::size_t>(order[nucleus])];
      ++nucleus;
      if (mass >= static_cast<double>(params.top_p)) break;
    }
    keep = nucleus;
  }

  double kept_mass = 0.0;
  for (std::size_t i = 0; i < keep; ++i) {
    kept_mass += probs[static_cast<std::size_t>(order[i])];
  }
  // One uniform draw walks the renormalized cumulative distribution.
  const double u = rng.next_uniform() * kept_mass;
  double cum = 0.0;
  for (std::size_t i = 0; i < keep; ++i) {
    cum += probs[static_cast<std::size_t>(order[i])];
    if (u < cum) return order[i];
  }
  return order[keep - 1];
}

}  // namespace sh::serve

// Byte-budgeted pool of per-sequence KV-cache slabs with admission control,
// preempt-to-CPU/resume, and copy-on-write shared prompt prefixes.
//
// Serving-side analogue of the training engine's ByteBudgetPool discipline:
// the "GPU" KV footprint of all resident sequences is capped by a byte
// budget. Capacity is reserved in fixed token chunks, so a sequence's
// footprint grows as it decodes; when a growth request cannot be satisfied
// the scheduler preempts a victim, which compacts that sequence's live KV
// rows into a CPU-side save and frees its arena bytes. Resuming reallocates
// a slab (possibly with a different capacity) and restores the rows with a
// bit-exact copy, so a preempted request's token stream is unchanged.
//
// Shared prefixes (millions-of-users traffic repeats one system prompt): a
// registered prefix owns one refcounted slab whose KV rows are prefilled
// once; sequences whose prompts start with the prefix are admitted as
// ALIASES of that slab — zero copy, zero additional bytes. The alias is
// read-only: the first write past the shared rows (the sequence's own
// prompt remainder or sampled token) privatizes it — a fresh slab is
// charged, the prefix rows are copied in, and the refcount drops. A KV row
// for position i depends only on tokens <= i (causal attention), so the
// copied rows are bit-identical to the rows a solo full-prompt prefill
// would have produced.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "mem/device_arena.hpp"
#include "nn/gpt.hpp"
#include "nn/module.hpp"
#include "tensor/dtype.hpp"

namespace sh::serve {

struct KvArenaConfig {
  /// Cap on the summed K+V bytes of all resident sequences. 0 = derive the
  /// budget from the residual free capacity of the shared device arena at
  /// construction (the engine's gpu_memory_bytes minus the working window);
  /// a standalone KvArena (no shared arena) must set it explicitly.
  std::size_t budget_bytes = 0;
  /// Reservation granularity in tokens; capacities round up to a multiple.
  std::int64_t chunk_tokens = 16;
  /// Element encoding the KV bytes are priced in. The numeric caches stay
  /// FP32 tensors (this is a simulation of device storage, like the
  /// engine's fp16 mode); bf16 halves what each resident token charges
  /// against the budget and the shared arena's "kv" region.
  tensor::DType dtype = tensor::DType::f32;
};

struct KvArenaStats {
  std::size_t bytes_in_use = 0;
  std::size_t peak_bytes = 0;
  std::size_t admissions = 0;
  std::size_t grows = 0;
  std::size_t preemptions = 0;
  std::size_t resumes = 0;
  std::size_t releases = 0;
  std::size_t prefixes = 0;               ///< registered shared prefixes
  std::size_t prefix_bytes = 0;           ///< bytes pinned by prefix slabs
  std::size_t prefix_adoptions = 0;       ///< zero-copy alias admissions
  std::size_t prefix_privatizations = 0;  ///< CoW copies on first write
};

class KvArena {
 public:
  /// With `device` set, every KV byte is reserved (hard-charged) against
  /// that shared mem::DeviceArena's "kv" region, so training-window and KV
  /// bytes draw from one GPU capacity; budget_bytes == 0 then resolves to
  /// the arena's residual free capacity (explicit budgets are clamped to
  /// it). Without `device` the arena owns a private DeviceArena of exactly
  /// budget_bytes, which must be non-zero.
  KvArena(const nn::GptConfig& model, KvArenaConfig config,
          mem::DeviceArena* device = nullptr);
  ~KvArena();

  /// Bytes a resident sequence with `tokens` of context occupies (capacity
  /// rounded up to the chunk size; K and V over every block).
  std::size_t bytes_for(std::int64_t tokens) const;
  /// Whether a sequence needing `tokens` could EVER be resident — the
  /// admission-control feasibility check applied at submit time.
  bool fits_budget(std::int64_t tokens) const {
    return bytes_for(tokens) <= budget_;
  }

  /// Ensures sequence `id` has a resident slab covering `tokens`; allocates
  /// on first call, grows (copying live rows) when the chunk boundary is
  /// crossed. Returns false — with no state change — when the budget cannot
  /// absorb the new bytes.
  bool try_reserve(std::uint64_t id, std::int64_t tokens);

  /// Compacts the live KV rows of resident sequence `id` into a CPU-side
  /// save and frees its arena bytes.
  void preempt(std::uint64_t id);

  /// Restores a preempted sequence into a fresh slab covering `tokens`.
  /// Returns false (sequence stays saved) when the budget has no room.
  bool try_resume(std::uint64_t id, std::int64_t tokens);

  /// Frees a resident sequence's slab (request finished or aborted), or
  /// drops its prefix alias (which frees nothing).
  void release(std::uint64_t id);

  bool resident(std::uint64_t id) const {
    return slabs_.contains(id) || shared_.contains(id);
  }
  bool preempted(std::uint64_t id) const { return saved_.contains(id); }

  /// Allocates and pins a refcounted prefix slab sized for `tokens`
  /// (chunk-rounded, charged like any resident slab, never freed while the
  /// arena lives). The caller prefills its caches once via prefix_caches().
  /// Returns the prefix id; throws std::invalid_argument when the budget
  /// cannot hold it.
  std::uint64_t register_prefix(std::int64_t tokens);
  /// Per-block caches of a registered prefix (for the one-time prefill, and
  /// as the aliased read view of sharing sequences).
  std::span<nn::KvCache> prefix_caches(std::uint64_t prefix_id);
  /// Admits sequence `id` as a zero-copy alias of the prefix slab. Charges
  /// no bytes, so it always succeeds (throws std::invalid_argument if `id`
  /// is already resident/preempted or the prefix id is unknown). The alias
  /// is read-only — try_reserve() privatizes it before any KV write.
  void adopt_prefix(std::uint64_t id, std::uint64_t prefix_id);
  /// Whether `id` is currently an unprivatized alias of a prefix slab.
  bool shared(std::uint64_t id) const { return shared_.contains(id); }

  /// Per-block caches of a resident sequence, in block order. For a shared
  /// sequence this is the prefix slab itself — read-only by contract.
  std::span<nn::KvCache> caches(std::uint64_t id);

  const KvArenaStats& stats() const noexcept { return stats_; }
  /// Resolved budget (explicit, or the shared arena's residual at
  /// construction).
  std::size_t budget_bytes() const noexcept { return budget_; }
  /// The device arena KV bytes are charged to (owned or shared).
  mem::DeviceArena& device_arena() noexcept { return *device_; }

 private:
  struct Slab {
    std::vector<nn::KvCache> caches;  // one per block
    std::int64_t capacity = 0;        // tokens
  };
  /// Compacted CPU copy of a preempted sequence's live rows. A sequence
  /// preempted while still aliasing a prefix saves nothing — only the
  /// prefix id, and resume re-adopts (free, always succeeds).
  struct Saved {
    std::vector<std::vector<float>> k, v;  // [block][length * hidden]
    std::int64_t length = 0;
    std::uint64_t prefix = 0;  // nonzero: alias of this prefix, no rows
  };
  struct Prefix {
    Slab slab;
    std::int64_t tokens = 0;
    std::size_t refs = 0;  // live aliases (informational; slab is pinned)
  };

  std::int64_t round_to_chunk(std::int64_t tokens) const;
  Slab make_slab(std::int64_t capacity) const;
  /// Reserves `bytes` against both the local budget and the device arena's
  /// "kv" region; false (no state change) when either has no room.
  bool try_charge(std::size_t bytes);
  void uncharge(std::size_t bytes);

  std::int64_t blocks_;
  std::int64_t heads_;
  std::int64_t head_dim_;
  KvArenaConfig cfg_;
  std::unique_ptr<mem::DeviceArena> owned_;  // standalone mode only
  mem::DeviceArena* device_ = nullptr;
  std::size_t budget_ = 0;
  std::unordered_map<std::uint64_t, Slab> slabs_;
  std::unordered_map<std::uint64_t, Saved> saved_;
  std::unordered_map<std::uint64_t, Prefix> prefixes_;
  std::unordered_map<std::uint64_t, std::uint64_t> shared_;  // seq -> prefix
  std::uint64_t next_prefix_id_ = 1;
  KvArenaStats stats_;
};

}  // namespace sh::serve

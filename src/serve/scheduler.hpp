// Continuous (iteration-level) batching scheduler over the serving runtime.
//
// Each step() is one model iteration: preempted sequences resume when KV
// bytes free up (oldest first), running sequences reserve KV room for their
// next token — preempting the YOUNGEST other resident sequence under arena
// pressure — queued requests are admitted FCFS into the spare capacity, and
// the whole resident batch then advances one layer-streamed pass. Finished
// sequences retire immediately, releasing their KV for the next admission.
//
// Invariants:
//  * A request's token stream equals running it alone through
//    StrongholdEngine::generate_incremental with the same seed (greedy) —
//    batching, admission order and preempt/resume never perturb tokens.
//  * The oldest resident sequence is never chosen as a preemption victim,
//    so the schedule always makes progress and every request completes.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "core/engine.hpp"
#include "serve/kv_arena.hpp"
#include "serve/request.hpp"
#include "serve/serve_engine.hpp"

namespace sh::serve {

struct SchedulerConfig {
  /// Maximum resident (decoding) sequences per step.
  std::size_t max_batch = 16;
  KvArenaConfig arena{};
};

struct SchedulerStats {
  std::size_t submitted = 0;
  std::size_t finished = 0;
  std::size_t steps = 0;
  /// Scheduling preemption decisions (equals the arena's preemption count).
  std::size_t preemptions = 0;
  std::size_t resumes = 0;
};

class Scheduler {
 public:
  /// The scheduler's KvArena draws from the engine's device arena (one GPU
  /// budget for the working window and KV state), and preempt-to-CPU is
  /// registered as a pressure callback on that arena — the serving twin of
  /// the engine's deferred-prefetch degradation path.
  Scheduler(core::StrongholdEngine& engine, SchedulerConfig config);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueues a request; returns its id (assigned when request.id == 0).
  /// Rejects (throws std::invalid_argument) requests whose context exceeds
  /// the model's max_seq or whose full KV footprint exceeds the arena
  /// budget — such a request could never run.
  std::uint64_t submit(Request request);

  /// Runs one continuous-batching iteration. Returns false when no work
  /// remains (queue empty, nothing resident or preempted).
  bool step();

  /// Steps until all submitted requests have finished.
  void run_to_completion();

  /// Finished request's tokens: prompt followed by generated tokens (the
  /// same layout StrongholdEngine::generate_incremental returns).
  const std::vector<std::int32_t>& result(std::uint64_t id) const;
  bool finished(std::uint64_t id) const { return results_.contains(id); }

  SchedulerStats stats() const;
  const KvArenaStats& arena_stats() const noexcept { return arena_.stats(); }
  /// Resolved KV budget (defaults to the residual free capacity of the
  /// engine's device arena at construction).
  std::size_t kv_budget_bytes() const noexcept { return arena_.budget_bytes(); }
  ServeEngine& serve_engine() noexcept { return serve_; }
  const ServeEngine& serve_engine() const noexcept { return serve_; }

 private:
  Sequence& seq(std::uint64_t id) { return sequences_.at(id); }
  /// Resident ids in admission order (oldest first).
  std::vector<std::uint64_t> running_by_age() const;
  void resume_preempted();
  void reserve_running();
  void admit_queued();
  void advance_batch();
  void finish(std::uint64_t id);
  /// Pressure callback body: preempts the youngest resident other than the
  /// sequence currently reserving (or that sequence itself when it is
  /// alone). Returns whether bytes were freed FOR the reserving sequence.
  bool preempt_for_pressure(const std::string& region);

  core::StrongholdEngine& engine_;
  SchedulerConfig cfg_;
  KvArena arena_;
  ServeEngine serve_;
  std::uint64_t pressure_cb_id_ = 0;
  std::uint64_t obs_provider_id_ = 0;
  /// Sequence currently inside the reserve_running retry loop (0 = none);
  /// gates the pressure callback so foreign pressure (another scheduler on
  /// the same arena, engine window pressure) cannot preempt spuriously.
  std::uint64_t reserving_id_ = 0;

  std::map<std::uint64_t, Sequence> sequences_;  // all non-finished
  std::deque<std::uint64_t> queue_;              // submitted, not admitted
  std::vector<std::uint64_t> running_;           // resident, admission order
  std::vector<std::uint64_t> preempted_;         // victim order
  std::map<std::uint64_t, std::vector<std::int32_t>> results_;

  std::uint64_t next_id_ = 1;
  std::uint64_t next_admit_order_ = 0;
  SchedulerStats stats_;
};

}  // namespace sh::serve

// Continuous (iteration-level) batching scheduler over the serving runtime.
//
// Each step() is one model iteration: preempted sequences resume when KV
// bytes free up (oldest first), running sequences reserve KV room for their
// next token — preempting another resident under arena pressure (youngest
// by default, worst SLO headroom under PreemptPolicy::SloHeadroom) — queued
// requests are admitted FCFS into the spare capacity, and the whole
// resident batch then advances one layer-streamed pass. Finished sequences
// retire immediately, releasing their KV for the next admission. A
// registered shared prefix is prefilled once; sharers are admitted as
// zero-copy aliases and privatized (CoW) on their first reservation.
//
// Invariants:
//  * A request's token stream equals running it alone through
//    StrongholdEngine::generate_incremental with the same seed (greedy) —
//    batching, admission order and preempt/resume never perturb tokens.
//  * The oldest resident sequence is never chosen as a preemption victim,
//    so the schedule always makes progress and every request completes.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "core/engine.hpp"
#include "serve/kv_arena.hpp"
#include "serve/request.hpp"
#include "serve/serve_engine.hpp"

namespace sh::serve {

/// Victim selection under KV pressure.
enum class PreemptPolicy {
  /// Historical policy: youngest resident other than the reserver. Keeps
  /// the bit-identical schedules the pre-router tests pin down.
  Youngest,
  /// SLO-aware: the resident with the worst deadline headroom (virtual
  /// slack to its deadline after pricing its remaining tokens at step_dt
  /// apiece, normalized by the deadline). Ties fall back to youngest, so
  /// with no deadlines set the policy degenerates to Youngest.
  SloHeadroom,
};

struct SchedulerConfig {
  /// Maximum resident (decoding) sequences per step.
  std::size_t max_batch = 16;
  KvArenaConfig arena{};
  PreemptPolicy preempt_policy = PreemptPolicy::Youngest;
  /// Virtual seconds one scheduler step is modeled to take — the unit the
  /// SLO policy prices a sequence's remaining tokens in.
  double step_dt = 0.01;
};

struct SchedulerStats {
  std::size_t submitted = 0;
  std::size_t finished = 0;
  std::size_t steps = 0;
  /// Scheduling preemption decisions (equals the arena's preemption count).
  std::size_t preemptions = 0;
  std::size_t resumes = 0;
  /// Prompt tokens actually pushed through the engine (prefix sharers skip
  /// their shared rows) plus the one-time prefix prefill below.
  std::size_t prompt_tokens_fed = 0;
  /// Tokens of the one-time shared-prefix prefill.
  std::size_t prefix_prefill_tokens = 0;
  /// Most recent pressure victim (0 = none yet) — lets tests pin down
  /// which sequence each preemption policy chose.
  std::uint64_t last_victim = 0;
};

class Scheduler {
 public:
  /// The scheduler's KvArena draws from the engine's device arena (one GPU
  /// budget for the working window and KV state), and preempt-to-CPU is
  /// registered as a pressure callback on that arena — the serving twin of
  /// the engine's deferred-prefetch degradation path.
  Scheduler(core::StrongholdEngine& engine, SchedulerConfig config);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueues a request; returns its id (assigned when request.id == 0).
  /// Rejects (throws std::invalid_argument) requests whose context exceeds
  /// the model's max_seq or whose full KV footprint exceeds the arena
  /// budget (minus the pinned prefix slab) — such a request could never
  /// run. Requests whose prompt starts with a registered prefix are marked
  /// as sharers and admitted as zero-copy aliases of the prefix slab.
  std::uint64_t submit(Request request);

  /// Registers a shared system prompt: pins a refcounted slab in the arena
  /// and prefills it ONCE through the engine. Must be called before any
  /// submit; throws std::invalid_argument when the prefix is empty, leaves
  /// no room for generation under max_seq, or does not fit the KV budget.
  void register_prefix(std::span<const std::int32_t> prefix);
  bool has_prefix() const noexcept { return prefix_id_ != 0; }

  /// Sets the virtual clock the SLO preemption policy measures headroom
  /// against (the router advances it each fleet step).
  void set_virtual_now(double now) noexcept { virtual_now_ = now; }
  double virtual_now() const noexcept { return virtual_now_; }

  /// Runs one continuous-batching iteration. Returns false when no work
  /// remains (queue empty, nothing resident or preempted).
  bool step();

  /// Steps until all submitted requests have finished.
  void run_to_completion();

  /// Finished request's tokens: prompt followed by generated tokens (the
  /// same layout StrongholdEngine::generate_incremental returns).
  const std::vector<std::int32_t>& result(std::uint64_t id) const;
  bool finished(std::uint64_t id) const { return results_.contains(id); }

  SchedulerStats stats() const;
  const KvArenaStats& arena_stats() const noexcept { return arena_.stats(); }
  /// Resolved KV budget (defaults to the residual free capacity of the
  /// engine's device arena at construction).
  std::size_t kv_budget_bytes() const noexcept { return arena_.budget_bytes(); }
  ServeEngine& serve_engine() noexcept { return serve_; }
  const ServeEngine& serve_engine() const noexcept { return serve_; }

 private:
  Sequence& seq(std::uint64_t id) { return sequences_.at(id); }
  /// Resident ids in admission order (oldest first).
  std::vector<std::uint64_t> running_by_age() const;
  void resume_preempted();
  void reserve_running();
  void admit_queued();
  void advance_batch();
  void finish(std::uint64_t id);
  /// Pressure callback body: preempts one resident other than the sequence
  /// currently reserving, chosen per cfg_.preempt_policy. Only sequences
  /// with private slabs are candidates — dropping a prefix alias frees no
  /// bytes. Returns whether bytes were freed FOR the reserving sequence.
  bool preempt_for_pressure(const std::string& region);
  /// Normalized virtual slack of a sequence against its deadline; +inf when
  /// it has none.
  double slo_headroom(const Sequence& s) const;

  core::StrongholdEngine& engine_;
  SchedulerConfig cfg_;
  KvArena arena_;
  ServeEngine serve_;
  std::uint64_t pressure_cb_id_ = 0;
  std::uint64_t obs_provider_id_ = 0;
  /// Sequence currently inside the reserve_running retry loop (0 = none);
  /// gates the pressure callback so foreign pressure (another scheduler on
  /// the same arena, engine window pressure) cannot preempt spuriously.
  std::uint64_t reserving_id_ = 0;

  std::map<std::uint64_t, Sequence> sequences_;  // all non-finished
  std::deque<std::uint64_t> queue_;              // submitted, not admitted
  std::vector<std::uint64_t> running_;           // resident, admission order
  std::vector<std::uint64_t> preempted_;         // victim order
  std::map<std::uint64_t, std::vector<std::int32_t>> results_;

  std::uint64_t next_id_ = 1;
  std::uint64_t next_admit_order_ = 0;
  double virtual_now_ = 0.0;
  /// Shared-prefix state: arena prefix id, the prefix tokens, and the
  /// cached logits of the prefix's last position — a sharer whose prompt IS
  /// the prefix samples its first token from these without an engine pass.
  std::uint64_t prefix_id_ = 0;
  std::vector<std::int32_t> prefix_tokens_;
  std::vector<float> prefix_logits_;
  SchedulerStats stats_;
};

}  // namespace sh::serve

#include "serve/router.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace sh::serve {

namespace {

bool env_flag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const std::string s(v);
  if (s == "1" || s == "on" || s == "true") return true;
  if (s == "0" || s == "off" || s == "false") return false;
  return fallback;
}

}  // namespace

RouterConfig router_config_from_env(RouterConfig base) {
  if (const char* v = std::getenv("SH_SERVE_REPLICAS")) {
    const long n = std::atol(v);
    if (n >= 1) base.replicas = static_cast<std::size_t>(n);
  }
  if (const char* v = std::getenv("SH_SERVE_POLICY")) {
    const std::string s(v);
    if (s == "slo") base.scheduler.preempt_policy = PreemptPolicy::SloHeadroom;
    if (s == "youngest") base.scheduler.preempt_policy = PreemptPolicy::Youngest;
  }
  if (const char* v = std::getenv("SH_SERVE_STEP_DT")) {
    const double dt = std::atof(v);
    if (dt > 0.0) base.step_dt = dt;
  }
  base.share_prefix = env_flag("SH_SERVE_PREFIX", base.share_prefix);
  return base;
}

Router::Router(core::StrongholdEngine& engine, RouterConfig config)
    : engine_(engine), cfg_(router_config_from_env(config)) {
  if (cfg_.replicas == 0) {
    throw std::invalid_argument("Router: replicas must be >= 1");
  }
  if (cfg_.step_dt <= 0.0) {
    throw std::invalid_argument("Router: step_dt must be positive");
  }
  cfg_.scheduler.step_dt = cfg_.step_dt;
  replicas_.reserve(cfg_.replicas);
  for (std::size_t i = 0; i < cfg_.replicas; ++i) {
    replicas_.push_back(
        std::make_unique<Scheduler>(engine_, cfg_.scheduler));
  }
  outstanding_.assign(cfg_.replicas, 0);
}

void Router::dispatch(const WorkloadItem& item) {
  // Least outstanding work, ties to the lowest replica index — a pure
  // function of prior dispatches and completions, so replay order is exact.
  std::size_t best = 0;
  for (std::size_t i = 1; i < replicas_.size(); ++i) {
    if (outstanding_[i] < outstanding_[best]) best = i;
  }

  Request r;
  r.id = item.id;
  r.prompt = item.prompt;
  r.max_new_tokens = item.max_new_tokens;
  r.sampling = item.sampling;
  r.tier = item.tier;
  r.deadline_s = tiers_.at(item.tier).deadline_s;
  r.arrival_s = item.arrival_s;
  replicas_[best]->submit(std::move(r));

  outstanding_[best] += item.prompt.size() + item.max_new_tokens;
  in_flight_.emplace(item.id, InFlight{best, item.tier, item.arrival_s,
                                       tiers_.at(item.tier).deadline_s});
  placed_.emplace(item.id, best);
  ++tier_offered_.at(item.tier);
  ++stats_.dispatched;
  stats_.prefill_baseline_tokens += item.prompt.size();
  stats_.prefill_tokens +=
      prefix_active_ && item.shares_prefix
          ? item.prompt.size() - prefix_len_
          : item.prompt.size();
}

void Router::collect_finished() {
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    const std::uint64_t id = it->first;
    const InFlight& f = it->second;
    if (!replicas_[f.replica]->finished(id)) {
      ++it;
      continue;
    }
    const auto& result = replicas_[f.replica]->result(id);
    const double latency = now_ - f.arrival_s;
    tier_latency_.at(f.tier).record(latency);
    all_latency_.record(latency);
    ++tier_finished_.at(f.tier);
    if (latency <= f.deadline_s) ++tier_met_.at(f.tier);
    // Every request runs to max_new_tokens, so the finished result's size
    // is exactly the prompt+output load dispatch charged.
    outstanding_[f.replica] -= result.size();
    ++stats_.finished;
    it = in_flight_.erase(it);
  }
}

void Router::run(const Workload& workload) {
  if (ran_) {
    throw std::logic_error("Router::run: one workload per Router");
  }
  ran_ = true;

  tiers_ = workload.tiers;
  if (tiers_.empty()) tiers_.push_back({"default", 0.0});
  tier_latency_.clear();
  for (std::size_t t = 0; t < tiers_.size(); ++t) tier_latency_.emplace_back();
  tier_offered_.assign(tiers_.size(), 0);
  tier_finished_.assign(tiers_.size(), 0);
  tier_met_.assign(tiers_.size(), 0);

  if (cfg_.share_prefix && !workload.shared_prefix.empty()) {
    // One prefix prefill per replica — the only prefix compute the fleet
    // ever spends; every sharer aliases these rows copy-on-write.
    for (auto& r : replicas_) r->register_prefix(workload.shared_prefix);
    prefix_active_ = true;
    prefix_len_ = workload.shared_prefix.size();
    stats_.prefill_tokens += prefix_len_ * replicas_.size();
    stats_.prefill_baseline_tokens += prefix_len_ * replicas_.size();
  }

  std::size_t next = 0;
  while (next < workload.items.size() || !in_flight_.empty()) {
    while (next < workload.items.size() &&
           workload.items[next].arrival_s <= now_) {
      dispatch(workload.items[next++]);
    }
    for (auto& r : replicas_) {
      r->set_virtual_now(now_);
      r->step();
    }
    now_ += cfg_.step_dt;
    ++stats_.steps;
    collect_finished();
  }

  stats_.preemptions = 0;
  stats_.resumes = 0;
  for (const auto& r : replicas_) {
    stats_.preemptions += r->stats().preemptions;
    stats_.resumes += r->stats().resumes;
  }
}

const std::vector<std::int32_t>& Router::result(std::uint64_t item_id) const {
  auto it = placed_.find(item_id);
  if (it == placed_.end()) {
    throw std::out_of_range("Router::result: unknown item id");
  }
  return replicas_.at(it->second)->result(item_id);
}

std::size_t Router::replica_of(std::uint64_t item_id) const {
  auto it = placed_.find(item_id);
  if (it == placed_.end()) {
    throw std::out_of_range("Router::replica_of: unknown item id");
  }
  return it->second;
}

std::vector<RouterTierReport> Router::tier_reports() const {
  std::vector<RouterTierReport> out;
  out.reserve(tiers_.size());
  for (std::size_t t = 0; t < tiers_.size(); ++t) {
    RouterTierReport rep;
    rep.name = tiers_[t].name;
    rep.deadline_s = tiers_[t].deadline_s;
    rep.offered = tier_offered_[t];
    rep.finished = tier_finished_[t];
    rep.met_deadline = tier_met_[t];
    rep.p50_s = tier_latency_[t].percentile(0.5);
    rep.p99_s = tier_latency_[t].percentile(0.99);
    rep.p999_s = tier_latency_[t].percentile(0.999);
    out.push_back(std::move(rep));
  }
  return out;
}

}  // namespace sh::serve

// Token sampling for the serving runtime: greedy, temperature, top-k and
// top-p (nucleus), all deterministic under a fixed per-request seed.
#pragma once

#include <cstdint>
#include <span>

#include "tensor/rng.hpp"

namespace sh::serve {

struct SamplingParams {
  /// 0 = greedy argmax (ties broken toward the lowest index, matching
  /// StrongholdEngine::generate_incremental); otherwise softmax temperature.
  float temperature = 0.0f;
  /// Keep only the k most probable tokens before drawing (0 = disabled).
  std::int32_t top_k = 0;
  /// Nucleus sampling: keep the smallest prefix of the probability-sorted
  /// vocabulary whose mass reaches top_p (1 = disabled).
  float top_p = 1.0f;
  /// Seed of the per-request RNG stream.
  std::uint64_t seed = 0;

  bool greedy() const noexcept { return temperature <= 0.0f; }
};

/// Draws one token from `logits` (one row, vocab-sized). Greedy consumes no
/// randomness; stochastic modes consume exactly one uniform draw from `rng`,
/// so a request's RNG stream advances one draw per generated token.
std::int32_t sample_token(std::span<const float> logits,
                          const SamplingParams& params, tensor::Rng& rng);

}  // namespace sh::serve

// Request and sequence state for the sh::serve continuous-batching runtime.
//
// A Request is what a client submits: a prompt, a generation budget and
// sampling parameters (including a per-request RNG seed, so a request's
// token stream is a deterministic function of the request alone — never of
// how it was batched, scheduled or preempted alongside other traffic).
// A Sequence is the scheduler's in-flight view of a request.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/sampler.hpp"
#include "tensor/rng.hpp"

namespace sh::serve {

struct Request {
  /// Client-chosen identifier; 0 lets the scheduler assign one.
  std::uint64_t id = 0;
  std::vector<std::int32_t> prompt;
  std::size_t max_new_tokens = 0;
  SamplingParams sampling{};
  /// Deadline class index (router tier table; reporting only).
  std::size_t tier = 0;
  /// Finish within deadline_s virtual seconds of arrival_s. 0 = no deadline
  /// — the SLO preemption policy treats the sequence as unbounded headroom.
  double deadline_s = 0.0;
  /// Virtual arrival time on the router's clock.
  double arrival_s = 0.0;
};

enum class SeqStatus {
  Queued,     ///< submitted, not yet admitted (no KV reserved)
  Running,    ///< KV-resident, decoded every step
  Preempted,  ///< KV saved to CPU under arena pressure; resumes later
  Finished,   ///< all tokens produced; KV released
};

/// Scheduler-side state of one in-flight request. The per-request RNG is
/// seeded from the request's sampling seed and consumed only by that
/// request's sampling, so preemption/resume and batch composition never
/// perturb the stream.
struct Sequence {
  Request request;
  SeqStatus status = SeqStatus::Queued;
  /// Prompt followed by generated tokens (same layout as
  /// StrongholdEngine::generate_incremental's return value).
  std::vector<std::int32_t> tokens;
  /// Tokens already absorbed into the KV caches.
  std::int64_t pos = 0;
  /// Sampled token not yet fed back (decode-phase input); -1 before prefill.
  std::int32_t pending = -1;
  std::size_t generated = 0;
  tensor::Rng rng{0};
  /// Admission order; the youngest (largest) sequence is the preemption
  /// victim under KV pressure.
  std::uint64_t admit_order = 0;
  /// Tokens covered by an adopted shared-prefix slab (0 = not a sharer).
  /// A sharer is admitted with pos == prefix_tokens: the prefix rows were
  /// prefilled once into the shared slab, so only the prompt remainder is
  /// ever fed.
  std::int64_t prefix_tokens = 0;
  double submit_time = 0.0;
  double finish_time = 0.0;

  /// Prompt tokens not yet absorbed (a sharer starts mid-prompt).
  bool prefill_pending() const noexcept { return pos < prompt_len(); }
  std::int64_t prompt_len() const noexcept {
    return static_cast<std::int64_t>(request.prompt.size());
  }
  /// Tokens the KV cache must hold after the next step.
  std::int64_t next_step_tokens() const noexcept {
    return prefill_pending() ? prompt_len() : pos + 1;
  }
};

}  // namespace sh::serve

#include "serve/kv_arena.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace sh::serve {

namespace {

/// Copies `length` positions of every head from `src` (capacity src_cap)
/// into `dst` (capacity dst_cap). Layout: [1, heads, capacity, head_dim].
void copy_rows(const float* src, std::int64_t src_cap, float* dst,
               std::int64_t dst_cap, std::int64_t heads, std::int64_t head_dim,
               std::int64_t length) {
  for (std::int64_t h = 0; h < heads; ++h) {
    std::memcpy(dst + h * dst_cap * head_dim, src + h * src_cap * head_dim,
                sizeof(float) * static_cast<std::size_t>(length * head_dim));
  }
}

}  // namespace

KvArena::KvArena(const nn::GptConfig& model, KvArenaConfig config,
                 mem::DeviceArena* device)
    : blocks_(model.layers),
      heads_(model.heads),
      head_dim_(model.hidden / model.heads),
      cfg_(config) {
  if (cfg_.chunk_tokens <= 0) {
    throw std::invalid_argument("KvArena: chunk_tokens must be positive");
  }
  if (device != nullptr) {
    device_ = device;
    // Default budget: whatever the device has left after the working window
    // and pinned layers were reserved. Explicit budgets are clamped to that
    // residual so fits_budget stays a true feasibility check.
    const std::size_t residual = device_->free_bytes();
    budget_ = cfg_.budget_bytes == 0
                  ? residual
                  : std::min(cfg_.budget_bytes, residual);
  } else {
    if (cfg_.budget_bytes == 0) {
      throw std::invalid_argument(
          "KvArena: budget_bytes must be set without a shared device arena");
    }
    owned_ = std::make_unique<mem::DeviceArena>("kv", cfg_.budget_bytes);
    device_ = owned_.get();
    budget_ = cfg_.budget_bytes;
  }
}

KvArena::~KvArena() {
  // Return outstanding reservations (resident slabs) to a shared arena.
  if (stats_.bytes_in_use > 0) {
    device_->uncharge(mem::DeviceArena::kKv, stats_.bytes_in_use);
  }
}

std::int64_t KvArena::round_to_chunk(std::int64_t tokens) const {
  const std::int64_t chunks =
      (tokens + cfg_.chunk_tokens - 1) / cfg_.chunk_tokens;
  return std::max<std::int64_t>(chunks, 1) * cfg_.chunk_tokens;
}

std::size_t KvArena::bytes_for(std::int64_t tokens) const {
  const std::int64_t cap = round_to_chunk(tokens);
  return tensor::bytes_per_element(cfg_.dtype) *
         static_cast<std::size_t>(2 * blocks_ * heads_ * cap * head_dim_);
}

KvArena::Slab KvArena::make_slab(std::int64_t capacity) const {
  Slab slab;
  slab.capacity = capacity;
  slab.caches.resize(static_cast<std::size_t>(blocks_));
  for (nn::KvCache& c : slab.caches) {
    c.k = tensor::Tensor::zeros({1, heads_, capacity, head_dim_});
    c.v = tensor::Tensor::zeros({1, heads_, capacity, head_dim_});
    c.capacity = capacity;
    c.length = 0;
  }
  return slab;
}

bool KvArena::try_charge(std::size_t bytes) {
  if (stats_.bytes_in_use + bytes > budget_) return false;
  if (!device_->try_charge(mem::DeviceArena::kKv, bytes)) return false;
  stats_.bytes_in_use += bytes;
  stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.bytes_in_use);
  return true;
}

void KvArena::uncharge(std::size_t bytes) {
  device_->uncharge(mem::DeviceArena::kKv, bytes);
  stats_.bytes_in_use -= bytes;
}

bool KvArena::try_reserve(std::uint64_t id, std::int64_t tokens) {
  // Copy-on-write: the first reservation of a prefix-sharing sequence
  // privatizes the alias — charge a private slab, copy the shared rows in,
  // drop the alias. Failure leaves the alias intact (retry next step).
  if (auto sh = shared_.find(id); sh != shared_.end()) {
    Prefix& pre = prefixes_.at(sh->second);
    const std::int64_t need = std::max(tokens, pre.tokens);
    if (!try_charge(bytes_for(need))) return false;
    Slab slab = make_slab(round_to_chunk(need));
    for (std::size_t b = 0; b < slab.caches.size(); ++b) {
      const nn::KvCache& src = pre.slab.caches[b];
      nn::KvCache& dst = slab.caches[b];
      copy_rows(src.k.data(), src.capacity, dst.k.data(), dst.capacity,
                heads_, head_dim_, src.length);
      copy_rows(src.v.data(), src.capacity, dst.v.data(), dst.capacity,
                heads_, head_dim_, src.length);
      dst.length = src.length;
    }
    slabs_.emplace(id, std::move(slab));
    --pre.refs;
    shared_.erase(sh);
    ++stats_.prefix_privatizations;
    return true;
  }

  auto it = slabs_.find(id);
  if (it == slabs_.end()) {
    if (preempted(id)) {
      throw std::logic_error("KvArena: reserve on a preempted sequence");
    }
    if (!try_charge(bytes_for(tokens))) return false;
    Slab slab = make_slab(round_to_chunk(tokens));
    slabs_.emplace(id, std::move(slab));
    ++stats_.admissions;
    return true;
  }

  Slab& slab = it->second;
  if (tokens <= slab.capacity) return true;
  const std::size_t old_bytes = bytes_for(slab.capacity);
  const std::size_t new_bytes = bytes_for(tokens);
  if (!try_charge(new_bytes - old_bytes)) return false;
  Slab grown = make_slab(round_to_chunk(tokens));
  for (std::size_t b = 0; b < slab.caches.size(); ++b) {
    const nn::KvCache& src = slab.caches[b];
    nn::KvCache& dst = grown.caches[b];
    copy_rows(src.k.data(), src.capacity, dst.k.data(), dst.capacity, heads_,
              head_dim_, src.length);
    copy_rows(src.v.data(), src.capacity, dst.v.data(), dst.capacity, heads_,
              head_dim_, src.length);
    dst.length = src.length;
  }
  slab = std::move(grown);
  ++stats_.grows;
  return true;
}

void KvArena::preempt(std::uint64_t id) {
  // A still-shared sequence holds no private rows: preemption just drops
  // the alias (freeing nothing) and remembers the prefix for resume.
  if (auto sh = shared_.find(id); sh != shared_.end()) {
    Saved saved;
    saved.prefix = sh->second;
    --prefixes_.at(sh->second).refs;
    shared_.erase(sh);
    saved_.emplace(id, std::move(saved));
    ++stats_.preemptions;
    return;
  }
  auto it = slabs_.find(id);
  if (it == slabs_.end()) {
    throw std::logic_error("KvArena: preempt of a non-resident sequence");
  }
  const Slab& slab = it->second;
  Saved saved;
  saved.length = slab.caches.empty() ? 0 : slab.caches.front().length;
  saved.k.resize(slab.caches.size());
  saved.v.resize(slab.caches.size());
  for (std::size_t b = 0; b < slab.caches.size(); ++b) {
    const nn::KvCache& c = slab.caches[b];
    const auto n = static_cast<std::size_t>(heads_ * c.length * head_dim_);
    saved.k[b].resize(n);
    saved.v[b].resize(n);
    copy_rows(c.k.data(), c.capacity, saved.k[b].data(), c.length, heads_,
              head_dim_, c.length);
    copy_rows(c.v.data(), c.capacity, saved.v[b].data(), c.length, heads_,
              head_dim_, c.length);
  }
  uncharge(bytes_for(slab.capacity));
  slabs_.erase(it);
  saved_.emplace(id, std::move(saved));
  ++stats_.preemptions;
}

bool KvArena::try_resume(std::uint64_t id, std::int64_t tokens) {
  auto it = saved_.find(id);
  if (it == saved_.end()) {
    throw std::logic_error("KvArena: resume of a non-preempted sequence");
  }
  const Saved& saved = it->second;
  if (saved.prefix != 0) {
    // Alias-preempted: re-adopt the (pinned) prefix slab — free, so this
    // never fails.
    const std::uint64_t prefix_id = saved.prefix;
    saved_.erase(it);
    ++prefixes_.at(prefix_id).refs;
    shared_.emplace(id, prefix_id);
    ++stats_.resumes;
    return true;
  }
  const std::int64_t need = std::max(tokens, saved.length);
  if (!try_charge(bytes_for(need))) return false;
  Slab slab = make_slab(round_to_chunk(need));
  for (std::size_t b = 0; b < slab.caches.size(); ++b) {
    nn::KvCache& c = slab.caches[b];
    copy_rows(saved.k[b].data(), saved.length, c.k.data(), c.capacity, heads_,
              head_dim_, saved.length);
    copy_rows(saved.v[b].data(), saved.length, c.v.data(), c.capacity, heads_,
              head_dim_, saved.length);
    c.length = saved.length;
  }
  slabs_.emplace(id, std::move(slab));
  saved_.erase(it);
  ++stats_.resumes;
  return true;
}

void KvArena::release(std::uint64_t id) {
  if (auto sh = shared_.find(id); sh != shared_.end()) {
    --prefixes_.at(sh->second).refs;
    shared_.erase(sh);
    ++stats_.releases;
    return;
  }
  auto it = slabs_.find(id);
  if (it == slabs_.end()) {
    throw std::logic_error("KvArena: release of a non-resident sequence");
  }
  uncharge(bytes_for(it->second.capacity));
  slabs_.erase(it);
  ++stats_.releases;
}

std::span<nn::KvCache> KvArena::caches(std::uint64_t id) {
  if (auto sh = shared_.find(id); sh != shared_.end()) {
    return prefixes_.at(sh->second).slab.caches;
  }
  auto it = slabs_.find(id);
  if (it == slabs_.end()) {
    throw std::logic_error("KvArena: caches of a non-resident sequence");
  }
  return it->second.caches;
}

std::uint64_t KvArena::register_prefix(std::int64_t tokens) {
  if (tokens <= 0) {
    throw std::invalid_argument("KvArena: prefix must be non-empty");
  }
  const std::size_t bytes = bytes_for(tokens);
  if (!try_charge(bytes)) {
    throw std::invalid_argument(
        "KvArena: shared prefix does not fit the KV budget");
  }
  Prefix pre;
  pre.slab = make_slab(round_to_chunk(tokens));
  pre.tokens = tokens;
  const std::uint64_t id = next_prefix_id_++;
  prefixes_.emplace(id, std::move(pre));
  ++stats_.prefixes;
  stats_.prefix_bytes += bytes;
  return id;
}

std::span<nn::KvCache> KvArena::prefix_caches(std::uint64_t prefix_id) {
  auto it = prefixes_.find(prefix_id);
  if (it == prefixes_.end()) {
    throw std::invalid_argument("KvArena: unknown prefix id");
  }
  return it->second.slab.caches;
}

void KvArena::adopt_prefix(std::uint64_t id, std::uint64_t prefix_id) {
  if (resident(id) || preempted(id)) {
    throw std::invalid_argument(
        "KvArena: adopt_prefix on an already-tracked sequence");
  }
  auto it = prefixes_.find(prefix_id);
  if (it == prefixes_.end()) {
    throw std::invalid_argument("KvArena: unknown prefix id");
  }
  ++it->second.refs;
  shared_.emplace(id, prefix_id);
  ++stats_.admissions;
  ++stats_.prefix_adoptions;
}

}  // namespace sh::serve

#include "serve/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "obs/obs.hpp"

namespace sh::serve {

Scheduler::Scheduler(core::StrongholdEngine& engine, SchedulerConfig config)
    : engine_(engine),
      cfg_(config),
      arena_(engine.model().config(), config.arena, &engine.device_arena()),
      serve_(engine) {
  if (cfg_.max_batch == 0) {
    throw std::invalid_argument("Scheduler: max_batch must be >= 1");
  }
  pressure_cb_id_ = engine_.device_arena().add_pressure_callback(
      [this](const std::string& region, std::size_t) {
        return preempt_for_pressure(region);
      });
  obs_provider_id_ = obs::Registry::global().add_provider(
      [this](obs::MetricsSnapshot& out) {
        out.add("sched.queued", static_cast<double>(queue_.size()));
        out.add("sched.running", static_cast<double>(running_.size()));
        out.add("sched.preempted_resident",
                static_cast<double>(preempted_.size()));
        out.add("sched.submitted", static_cast<double>(stats_.submitted));
        out.add("sched.finished", static_cast<double>(stats_.finished));
        out.add("sched.steps", static_cast<double>(stats_.steps));
        out.add("sched.preemptions", static_cast<double>(stats_.preemptions));
        out.add("sched.resumes", static_cast<double>(stats_.resumes));
        out.add("sched.prompt_tokens_fed",
                static_cast<double>(stats_.prompt_tokens_fed));
        out.add("sched.prefix_prefill_tokens",
                static_cast<double>(stats_.prefix_prefill_tokens));
        out.add("sched.kv_budget_bytes",
                static_cast<double>(arena_.budget_bytes()), "bytes");
      });
}

Scheduler::~Scheduler() {
  obs::Registry::global().remove_provider(obs_provider_id_);
  engine_.device_arena().remove_pressure_callback(pressure_cb_id_);
}

std::uint64_t Scheduler::submit(Request request) {
  if (request.prompt.empty()) {
    throw std::invalid_argument("Scheduler::submit: prompt empty");
  }
  if (request.max_new_tokens == 0) {
    throw std::invalid_argument("Scheduler::submit: max_new_tokens == 0");
  }
  const auto total = static_cast<std::int64_t>(request.prompt.size() +
                                               request.max_new_tokens);
  if (total > engine_.model().config().max_seq) {
    throw std::invalid_argument(
        "Scheduler::submit: prompt + new tokens exceed max_seq");
  }
  // The deepest KV reservation this request will ever need (the last sampled
  // token is returned, never fed back) — which must coexist with the pinned
  // prefix slab, or a lone resident could never privatize and run.
  if (arena_.bytes_for(total - 1) + arena_.stats().prefix_bytes >
      arena_.budget_bytes()) {
    throw std::invalid_argument(
        "Scheduler::submit: request KV footprint exceeds the arena budget");
  }
  if (request.id == 0) request.id = next_id_++;
  const std::uint64_t id = request.id;
  if (sequences_.contains(id) || results_.contains(id)) {
    throw std::invalid_argument("Scheduler::submit: duplicate request id");
  }

  Sequence s;
  s.tokens = request.prompt;
  s.rng = tensor::Rng(request.sampling.seed);
  s.submit_time = serve_.now();
  if (prefix_id_ != 0 && request.prompt.size() >= prefix_tokens_.size() &&
      std::equal(prefix_tokens_.begin(), prefix_tokens_.end(),
                 request.prompt.begin())) {
    s.prefix_tokens = static_cast<std::int64_t>(prefix_tokens_.size());
  }
  s.request = std::move(request);
  sequences_.emplace(id, std::move(s));
  queue_.push_back(id);
  ++stats_.submitted;
  return id;
}

void Scheduler::register_prefix(std::span<const std::int32_t> prefix) {
  if (prefix_id_ != 0) {
    throw std::invalid_argument(
        "Scheduler::register_prefix: prefix already registered");
  }
  if (stats_.submitted != 0) {
    throw std::invalid_argument(
        "Scheduler::register_prefix: must precede all submits");
  }
  if (prefix.empty()) {
    throw std::invalid_argument("Scheduler::register_prefix: empty prefix");
  }
  const auto len = static_cast<std::int64_t>(prefix.size());
  if (len + 1 > engine_.model().config().max_seq) {
    throw std::invalid_argument(
        "Scheduler::register_prefix: prefix leaves no room under max_seq");
  }
  prefix_id_ = arena_.register_prefix(len);  // throws when over budget
  prefix_tokens_.assign(prefix.begin(), prefix.end());
  // The one-time prefill: every sharer's first prefix.size() KV rows are
  // exactly these (causal attention — row i depends only on tokens <= i).
  ServeEngine::SeqInput in;
  in.ids = prefix;
  in.pos = 0;
  in.caches = arena_.prefix_caches(prefix_id_);
  auto logits = serve_.step({&in, 1});
  prefix_logits_ = std::move(logits.front());
  stats_.prefix_prefill_tokens += prefix.size();
  stats_.prompt_tokens_fed += prefix.size();
}

std::vector<std::uint64_t> Scheduler::running_by_age() const {
  std::vector<std::uint64_t> ids = running_;
  std::sort(ids.begin(), ids.end(), [&](std::uint64_t a, std::uint64_t b) {
    return sequences_.at(a).admit_order < sequences_.at(b).admit_order;
  });
  return ids;
}

void Scheduler::resume_preempted() {
  std::sort(preempted_.begin(), preempted_.end(),
            [&](std::uint64_t a, std::uint64_t b) {
              return sequences_.at(a).admit_order <
                     sequences_.at(b).admit_order;
            });
  while (!preempted_.empty() && running_.size() < cfg_.max_batch) {
    const std::uint64_t id = preempted_.front();
    Sequence& s = seq(id);
    if (!arena_.try_resume(id, s.next_step_tokens())) break;
    preempted_.erase(preempted_.begin());
    s.status = SeqStatus::Running;
    running_.push_back(id);
    ++stats_.resumes;
    obs::instant("sched", "resume:r" + std::to_string(id));
  }
}

bool Scheduler::preempt_for_pressure(const std::string& region) {
  // Only KV-region pressure, and only while one of OUR sequences is inside
  // the reservation loop. Window-region pressure (engine prefetch) cannot be
  // relieved by evicting KV into the window's fixed slab, and a co-located
  // scheduler's pressure must not preempt this scheduler's batch.
  if (region != mem::DeviceArena::kKv || reserving_id_ == 0) return false;
  // Victim candidates: OTHER residents holding private slabs — dropping a
  // prefix alias frees nothing, so aliases are never pressure victims. The
  // oldest private sequence always keeps its reservation under the Youngest
  // policy, so the schedule progresses.
  std::uint64_t victim = 0;
  std::uint64_t victim_order = 0;
  if (cfg_.preempt_policy == PreemptPolicy::SloHeadroom) {
    double worst = std::numeric_limits<double>::infinity();
    for (std::uint64_t other : running_) {
      if (other == reserving_id_ || arena_.shared(other)) continue;
      const Sequence& o = sequences_.at(other);
      const double h = slo_headroom(o);
      if (victim == 0 || h < worst ||
          (h == worst && o.admit_order > victim_order)) {
        victim = other;
        worst = h;
        victim_order = o.admit_order;
      }
    }
  } else {
    for (std::uint64_t other : running_) {
      if (other == reserving_id_ || arena_.shared(other)) continue;
      const Sequence& o = sequences_.at(other);
      if (victim == 0 || o.admit_order >= victim_order) {
        victim = other;
        victim_order = o.admit_order;
      }
    }
  }
  if (victim == 0) {
    // No other private resident. A private reserver self-preempts (growth
    // pressure spills it to CPU, old behavior); a still-shared reserver
    // just stays shared and retries next step.
    if (arena_.shared(reserving_id_)) return false;
    victim = reserving_id_;
  }
  arena_.preempt(victim);
  Sequence& s = seq(victim);
  s.status = SeqStatus::Preempted;
  std::erase(running_, victim);
  preempted_.push_back(victim);
  ++stats_.preemptions;
  stats_.last_victim = victim;
  obs::instant("sched", "preempt:r" + std::to_string(victim));
  // Self-preemption frees bytes but not for the reserving sequence — it
  // must wait preempted, so the pressure counts as a stall.
  return victim != reserving_id_;
}

double Scheduler::slo_headroom(const Sequence& s) const {
  if (s.request.deadline_s <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  // Virtual slack to the deadline after pricing remaining tokens at one
  // step each, normalized by the deadline so tiers compare fairly.
  const double remaining =
      static_cast<double>(s.request.max_new_tokens - s.generated) *
      cfg_.step_dt;
  const double slack = (s.request.arrival_s + s.request.deadline_s) -
                       (virtual_now_ + remaining);
  return slack / s.request.deadline_s;
}

void Scheduler::reserve_running() {
  mem::DeviceArena& device = engine_.device_arena();
  for (std::uint64_t id : running_by_age()) {
    Sequence& s = seq(id);
    if (s.status != SeqStatus::Running) continue;  // already a victim
    reserving_id_ = id;
    while (!arena_.try_reserve(id, s.next_step_tokens())) {
      // Shared graceful-degradation path: raise pressure on the device
      // arena; our registered callback preempts a victim to CPU (the same
      // mechanism the engine's deferred prefetch reports through).
      const bool freed = device.signal_pressure(
          mem::DeviceArena::kKv, arena_.bytes_for(s.next_step_tokens()));
      if (!freed || s.status != SeqStatus::Running) break;
    }
    reserving_id_ = 0;
  }
}

void Scheduler::admit_queued() {
  while (!queue_.empty() && running_.size() < cfg_.max_batch) {
    const std::uint64_t id = queue_.front();
    Sequence& s = seq(id);
    if (s.prefix_tokens > 0) {
      // Zero-copy admission: alias the prefix slab. reserve_running
      // privatizes the alias before the first engine feed.
      arena_.adopt_prefix(id, prefix_id_);
      s.pos = s.prefix_tokens;
    } else if (!arena_.try_reserve(id, s.prompt_len())) {
      break;
    }
    queue_.pop_front();
    s.status = SeqStatus::Running;
    s.admit_order = next_admit_order_++;
    running_.push_back(id);
    if (s.prefix_tokens > 0 && s.pos == s.prompt_len()) {
      // Prompt IS the prefix: the cached prefix logits are bit-identical to
      // what a solo prefill of this prompt returns — sample token 1 with no
      // engine pass at all.
      const std::int32_t token =
          sample_token(prefix_logits_, s.request.sampling, s.rng);
      s.tokens.push_back(token);
      ++s.generated;
      if (s.generated == s.request.max_new_tokens) {
        finish(id);
      } else {
        s.pending = token;
      }
    }
  }
}

void Scheduler::advance_batch() {
  const std::vector<std::uint64_t> ordered = running_by_age();
  std::vector<std::uint64_t> fed;
  std::vector<ServeEngine::SeqInput> inputs;
  fed.reserve(ordered.size());
  inputs.reserve(ordered.size());
  for (std::uint64_t id : ordered) {
    Sequence& s = seq(id);
    // A still-shared sequence (admitted this very step) aliases the
    // read-only prefix slab; it is fed only after reserve_running
    // privatizes it.
    if (arena_.shared(id)) continue;
    ServeEngine::SeqInput in;
    if (s.prefill_pending()) {
      // A prefix sharer starts mid-prompt: its shared rows are already in
      // the (privatized) slab, so only the remainder is fed.
      in.ids = std::span<const std::int32_t>(s.request.prompt)
                   .subspan(static_cast<std::size_t>(s.pos));
      stats_.prompt_tokens_fed += in.ids.size();
    } else {
      in.ids = {&s.pending, 1};
    }
    in.pos = s.pos;
    in.caches = arena_.caches(id);
    inputs.push_back(in);
    fed.push_back(id);
  }
  if (fed.empty()) return;

  const auto logits = serve_.step(inputs);

  for (std::size_t i = 0; i < fed.size(); ++i) {
    const std::uint64_t id = fed[i];
    Sequence& s = seq(id);
    s.pos += static_cast<std::int64_t>(inputs[i].ids.size());
    const std::int32_t token =
        sample_token(logits[i], s.request.sampling, s.rng);
    s.tokens.push_back(token);
    ++s.generated;
    if (s.generated == s.request.max_new_tokens) {
      finish(id);
    } else {
      s.pending = token;
    }
  }
}

void Scheduler::finish(std::uint64_t id) {
  Sequence& s = seq(id);
  s.status = SeqStatus::Finished;
  s.finish_time = serve_.now();
  serve_.record_request(id, s.submit_time, s.finish_time);
  arena_.release(id);
  std::erase(running_, id);
  results_.emplace(id, std::move(s.tokens));
  sequences_.erase(id);
  ++stats_.finished;
}

bool Scheduler::step() {
  if (queue_.empty() && running_.empty() && preempted_.empty()) return false;
  resume_preempted();
  reserve_running();
  admit_queued();
  advance_batch();
  ++stats_.steps;
  return true;
}

void Scheduler::run_to_completion() {
  while (step()) {
  }
}

const std::vector<std::int32_t>& Scheduler::result(std::uint64_t id) const {
  auto it = results_.find(id);
  if (it == results_.end()) {
    throw std::out_of_range("Scheduler::result: request not finished");
  }
  return it->second;
}

SchedulerStats Scheduler::stats() const { return stats_; }

}  // namespace sh::serve

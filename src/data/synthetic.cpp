#include "data/synthetic.hpp"

namespace sh::data {

SyntheticCorpus::SyntheticCorpus(std::int64_t vocab, std::uint64_t seed)
    : vocab_(vocab), rng_(seed), successor_(static_cast<std::size_t>(vocab)) {
  // Each token gets one deterministic "preferred" successor.
  for (std::int64_t v = 0; v < vocab; ++v) {
    successor_[static_cast<std::size_t>(v)] =
        static_cast<std::int32_t>(rng_.next_below(static_cast<std::uint64_t>(vocab)));
  }
}

std::int32_t SyntheticCorpus::next_token(std::int32_t prev) {
  // 75% follow the chain, 25% jump uniformly: learnable but not trivial.
  if (rng_.next_uniform() < 0.75) {
    return successor_[static_cast<std::size_t>(prev)];
  }
  return static_cast<std::int32_t>(
      rng_.next_below(static_cast<std::uint64_t>(vocab_)));
}

Batch SyntheticCorpus::next_batch(std::int64_t batch, std::int64_t seq) {
  Batch b;
  b.ids.resize(static_cast<std::size_t>(batch * seq));
  b.targets.resize(static_cast<std::size_t>(batch * seq));
  for (std::int64_t i = 0; i < batch; ++i) {
    std::int32_t tok = static_cast<std::int32_t>(
        rng_.next_below(static_cast<std::uint64_t>(vocab_)));
    for (std::int64_t t = 0; t < seq; ++t) {
      b.ids[static_cast<std::size_t>(i * seq + t)] = tok;
      tok = next_token(tok);
      b.targets[static_cast<std::size_t>(i * seq + t)] = tok;
    }
  }
  return b;
}

}  // namespace sh::data

// Synthetic token streams standing in for the paper's Wikipedia corpus.
//
// The generator produces a deterministic, structured language: each token is
// drawn from a Markov chain over the vocabulary, which gives the model
// actual signal to learn (loss decreases) unlike i.i.d. noise.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/rng.hpp"

namespace sh::data {

struct Batch {
  std::vector<std::int32_t> ids;      // [batch * seq] inputs
  std::vector<std::int32_t> targets;  // [batch * seq] next-token targets
};

class SyntheticCorpus {
 public:
  SyntheticCorpus(std::int64_t vocab, std::uint64_t seed);

  /// Samples a batch of token sequences plus shifted next-token targets.
  Batch next_batch(std::int64_t batch, std::int64_t seq);

  std::int64_t vocab() const noexcept { return vocab_; }

  /// The deterministic "preferred" successor of a token (the signal a model
  /// trained on this corpus should learn) — exposed for evaluation.
  std::int32_t successor(std::int32_t token) const {
    return successor_[static_cast<std::size_t>(token)];
  }

  /// Data-loader cursor for checkpoint/resume. The Markov structure is a
  /// pure function of (vocab, seed), so the cursor is just the sampling RNG
  /// stream: a corpus constructed with the same (vocab, seed) and restored
  /// with load_state() yields exactly the batch sequence the saved corpus
  /// would have produced next.
  tensor::RngState save_state() const noexcept { return rng_.save_state(); }
  void load_state(const tensor::RngState& s) noexcept { rng_.load_state(s); }

 private:
  std::int32_t next_token(std::int32_t prev);

  std::int64_t vocab_;
  tensor::Rng rng_;
  // Sparse Markov structure: each token has a small set of likely successors.
  std::vector<std::int32_t> successor_;
};

}  // namespace sh::data

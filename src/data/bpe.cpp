#include "data/bpe.hpp"

#include <fstream>
#include <stdexcept>
#include <unordered_map>

namespace sh::data {

namespace {
struct PairHash {
  std::size_t operator()(const std::pair<std::int32_t, std::int32_t>& p) const
      noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.first)) << 32) |
        static_cast<std::uint32_t>(p.second));
  }
};
}  // namespace

BpeTokenizer::BpeTokenizer() { rebuild_tables(); }

void BpeTokenizer::rebuild_tables() {
  token_bytes_.clear();
  token_bytes_.reserve(256 + merges_.size());
  for (int b = 0; b < 256; ++b) {
    token_bytes_.push_back(std::string(1, static_cast<char>(b)));
  }
  merge_rank_.clear();
  for (std::size_t i = 0; i < merges_.size(); ++i) {
    const auto& m = merges_[i];
    token_bytes_.push_back(token_bytes_[static_cast<std::size_t>(m.left)] +
                           token_bytes_[static_cast<std::size_t>(m.right)]);
    merge_rank_[{m.left, m.right}] = 256 + static_cast<std::int32_t>(i);
  }
}

BpeTokenizer BpeTokenizer::train(std::string_view text,
                                 std::int64_t vocab_size) {
  if (vocab_size < 256) {
    throw std::invalid_argument("BPE vocab_size must be >= 256");
  }
  BpeTokenizer tok;
  std::vector<std::int32_t> tokens;
  tokens.reserve(text.size());
  for (unsigned char c : text) tokens.push_back(static_cast<std::int32_t>(c));

  while (tok.vocab_size() < vocab_size) {
    // Count adjacent pairs.
    std::unordered_map<std::pair<std::int32_t, std::int32_t>, std::int64_t,
                       PairHash>
        counts;
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      ++counts[{tokens[i], tokens[i + 1]}];
    }
    if (counts.empty()) break;
    // Deterministic winner: highest count, ties to the smaller pair.
    std::pair<std::int32_t, std::int32_t> best{0, 0};
    std::int64_t best_count = 0;
    for (const auto& [pair, count] : counts) {
      if (count > best_count || (count == best_count && pair < best)) {
        best = pair;
        best_count = count;
      }
    }
    if (best_count < 2) break;  // nothing worth merging
    const auto merged = static_cast<std::int32_t>(tok.vocab_size());
    tok.merges_.push_back({best.first, best.second});
    tok.rebuild_tables();
    // Apply the merge to the working stream.
    std::vector<std::int32_t> next;
    next.reserve(tokens.size());
    for (std::size_t i = 0; i < tokens.size();) {
      if (i + 1 < tokens.size() && tokens[i] == best.first &&
          tokens[i + 1] == best.second) {
        next.push_back(merged);
        i += 2;
      } else {
        next.push_back(tokens[i]);
        ++i;
      }
    }
    tokens.swap(next);
  }
  return tok;
}

std::vector<std::int32_t> BpeTokenizer::encode(std::string_view text) const {
  std::vector<std::int32_t> tokens;
  tokens.reserve(text.size());
  for (unsigned char c : text) tokens.push_back(static_cast<std::int32_t>(c));
  if (merge_rank_.empty()) return tokens;
  // Repeatedly merge the lowest-rank adjacent pair (GPT-2 BPE order).
  for (;;) {
    std::int32_t best_rank = -1;
    std::size_t best_pos = 0;
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      auto it = merge_rank_.find({tokens[i], tokens[i + 1]});
      if (it != merge_rank_.end() &&
          (best_rank < 0 || it->second < best_rank)) {
        best_rank = it->second;
        best_pos = i;
      }
    }
    if (best_rank < 0) break;
    tokens[best_pos] = best_rank;
    tokens.erase(tokens.begin() + static_cast<std::ptrdiff_t>(best_pos) + 1);
  }
  return tokens;
}

std::string BpeTokenizer::decode(std::span<const std::int32_t> ids) const {
  std::string out;
  for (std::int32_t id : ids) out += token_bytes(id);
  return out;
}

const std::string& BpeTokenizer::token_bytes(std::int32_t id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= token_bytes_.size()) {
    throw std::out_of_range("BPE token id out of range");
  }
  return token_bytes_[static_cast<std::size_t>(id)];
}

void BpeTokenizer::save(const std::string& path) const {
  std::ofstream os(path, std::ios::trunc);
  if (!os) throw std::runtime_error("BPE: cannot open " + path);
  os << "bpe-v1 " << merges_.size() << "\n";
  for (const auto& m : merges_) os << m.left << ' ' << m.right << "\n";
  if (!os) throw std::runtime_error("BPE: write failed for " + path);
}

BpeTokenizer BpeTokenizer::load(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("BPE: cannot open " + path);
  std::string magic;
  std::size_t count = 0;
  is >> magic >> count;
  if (!is || magic != "bpe-v1") {
    throw std::runtime_error("BPE: bad header in " + path);
  }
  BpeTokenizer tok;
  for (std::size_t i = 0; i < count; ++i) {
    Merge m{};
    is >> m.left >> m.right;
    if (!is) throw std::runtime_error("BPE: truncated merges in " + path);
    const auto limit = static_cast<std::int32_t>(256 + i);
    if (m.left < 0 || m.left >= limit || m.right < 0 || m.right >= limit) {
      throw std::runtime_error("BPE: invalid merge in " + path);
    }
    tok.merges_.push_back(m);
  }
  tok.rebuild_tables();
  return tok;
}

}  // namespace sh::data

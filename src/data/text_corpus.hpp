// Tokenized text corpus producing next-token training batches — the real
// counterpart of SyntheticCorpus, backed by a BPE tokenizer.
#pragma once

#include <string>
#include <string_view>

#include "data/bpe.hpp"
#include "data/synthetic.hpp"
#include "tensor/rng.hpp"

namespace sh::data {

class TextCorpus {
 public:
  /// Tokenizes `text` with `tokenizer` (which the corpus copies). Batches
  /// sample contiguous windows uniformly (deterministic in `seed`).
  TextCorpus(std::string_view text, BpeTokenizer tokenizer,
             std::uint64_t seed);

  /// Convenience: trains a tokenizer of `vocab_size` on the text first.
  static TextCorpus from_text(std::string_view text, std::int64_t vocab_size,
                              std::uint64_t seed);

  /// Samples `batch` windows of `seq` tokens with shifted targets.
  Batch next_batch(std::int64_t batch, std::int64_t seq);

  std::int64_t vocab() const noexcept { return tokenizer_.vocab_size(); }
  std::size_t num_tokens() const noexcept { return tokens_.size(); }
  const BpeTokenizer& tokenizer() const noexcept { return tokenizer_; }

  /// Data-loader cursor for checkpoint/resume: window sampling is driven by
  /// the RNG stream alone (tokens are immutable after construction), so a
  /// corpus rebuilt from the same text/tokenizer/seed and restored with
  /// load_state() replays the exact remaining batch sequence.
  tensor::RngState save_state() const noexcept { return rng_.save_state(); }
  void load_state(const tensor::RngState& s) noexcept { rng_.load_state(s); }

  /// A small built-in English sample (public-domain style prose) for
  /// examples and tests that want real text without shipping a corpus.
  static std::string_view sample_text();

 private:
  BpeTokenizer tokenizer_;
  std::vector<std::int32_t> tokens_;
  tensor::Rng rng_;
};

}  // namespace sh::data

#include "data/text_corpus.hpp"

#include <stdexcept>
#include <utility>

namespace sh::data {

TextCorpus::TextCorpus(std::string_view text, BpeTokenizer tokenizer,
                       std::uint64_t seed)
    : tokenizer_(std::move(tokenizer)),
      tokens_(tokenizer_.encode(text)),
      rng_(seed) {
  if (tokens_.size() < 2) {
    throw std::invalid_argument("TextCorpus: text too short");
  }
}

TextCorpus TextCorpus::from_text(std::string_view text,
                                 std::int64_t vocab_size, std::uint64_t seed) {
  return TextCorpus(text, BpeTokenizer::train(text, vocab_size), seed);
}

Batch TextCorpus::next_batch(std::int64_t batch, std::int64_t seq) {
  if (static_cast<std::size_t>(seq) + 1 > tokens_.size()) {
    throw std::invalid_argument("TextCorpus: seq longer than the corpus");
  }
  Batch b;
  b.ids.resize(static_cast<std::size_t>(batch * seq));
  b.targets.resize(static_cast<std::size_t>(batch * seq));
  const std::uint64_t max_start =
      tokens_.size() - static_cast<std::size_t>(seq) - 1;
  for (std::int64_t i = 0; i < batch; ++i) {
    const auto start =
        static_cast<std::size_t>(rng_.next_below(max_start + 1));
    for (std::int64_t t = 0; t < seq; ++t) {
      b.ids[static_cast<std::size_t>(i * seq + t)] =
          tokens_[start + static_cast<std::size_t>(t)];
      b.targets[static_cast<std::size_t>(i * seq + t)] =
          tokens_[start + static_cast<std::size_t>(t) + 1];
    }
  }
  return b;
}

std::string_view TextCorpus::sample_text() {
  return
      "the quick brown fox jumps over the lazy dog. the dog sleeps in the "
      "sun while the fox runs through the field. in the morning the fox "
      "hunts near the river, and the dog watches the house. when the rain "
      "comes, the fox hides under the old oak tree and the dog stays by the "
      "fire. the farmer walks along the river with his dog, and the fox "
      "watches from the field. every evening the moon rises over the quiet "
      "farm, the river glitters, and the old oak tree stands still. the "
      "farmer feeds the dog, closes the gate, and counts the sheep in the "
      "barn. the sheep sleep, the dog dreams, and the fox slips silently "
      "back into the dark field. so the days pass on the quiet farm: the "
      "sun, the rain, the river, and the moon each keep their own time, and "
      "the quick brown fox keeps jumping over the lazy dog.";
}

}  // namespace sh::data

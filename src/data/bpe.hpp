// Byte-pair encoding tokenizer (GPT-2 style, byte-level base vocabulary).
//
// The paper's artifact trains on Wikipedia text; this tokenizer plus
// TextCorpus make `data/` a real text pipeline: 256 byte tokens plus learned
// merges, greedy lowest-rank-first encoding, exact decode.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sh::data {

class BpeTokenizer {
 public:
  /// Learns merges from `text` until the vocabulary reaches `vocab_size`
  /// (>= 256; 256 base byte tokens plus vocab_size - 256 merges). Training
  /// is deterministic: the most frequent pair wins, ties broken by the
  /// smaller (left, right) token ids.
  static BpeTokenizer train(std::string_view text, std::int64_t vocab_size);

  /// Byte-level tokenizer with no merges (vocab 256).
  BpeTokenizer();

  std::vector<std::int32_t> encode(std::string_view text) const;
  std::string decode(std::span<const std::int32_t> ids) const;

  std::int64_t vocab_size() const noexcept {
    return 256 + static_cast<std::int64_t>(merges_.size());
  }
  std::size_t num_merges() const noexcept { return merges_.size(); }

  /// The byte string a token expands to.
  const std::string& token_bytes(std::int32_t id) const;

  void save(const std::string& path) const;
  static BpeTokenizer load(const std::string& path);

 private:
  struct Merge {
    std::int32_t left;
    std::int32_t right;
  };

  void rebuild_tables();

  std::vector<Merge> merges_;  // merge i produces token 256 + i
  // (left, right) -> merged token id, with rank = id (lower merges first).
  std::map<std::pair<std::int32_t, std::int32_t>, std::int32_t> merge_rank_;
  std::vector<std::string> token_bytes_;  // id -> expansion
};

}  // namespace sh::data

// sh::mem — the one accounted device-memory subsystem.
//
// A DeviceArena is the capacity-enforced stand-in for a GPU memory device
// (promoted from the old hw::MemoryPool). Every device-resident byte of a
// training or serving pass is charged to the arena under a named region:
//
//   "window"       layer parameters + gradients streaming through the
//                  STRONGHOLD working window, plus the pinned embedding/head
//   "kv"           KV-cache state (serve::KvArena slabs, decoder sessions)
//   "activations"  forward/backward activations and kernel temporaries
//   "workspace"    everything else (default for untagged allocations)
//
// Three accounting channels feed the same ledger:
//   * backed allocations (allocate_floats/deallocate) — real storage,
//     capacity-enforced; throws OomError after the pressure layer fails;
//   * reservations (try_charge/uncharge) — capacity-enforced byte accounting
//     without storage, used by serve::KvArena so KV budgets and the training
//     window draw from one device capacity;
//   * soft charges (ScopedTensorCharge + Tensor::zeros) — activation and KV
//     tensors allocated inside engine/serve passes. Soft bytes are counted
//     in bytes_in_use()/peak_bytes() and raise pressure events when demand
//     exceeds capacity, but never fail: an over-budget pass degrades
//     (deferred prefetch, preempt-to-CPU) instead of aborting mid-kernel.
//
// The pressure layer unifies graceful degradation: when an enforced request
// cannot be met, the arena invokes registered callbacks (outside its lock)
// until one frees bytes. The training engine's deferred-prefetch path and
// the serve scheduler's preempt-to-CPU path are two instances of this one
// mechanism; stalls and releases are counted in ArenaStats.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>

namespace sh::mem {

class OomError : public std::runtime_error {
 public:
  OomError(const std::string& pool, std::size_t requested_bytes,
           std::size_t free_bytes);

  /// Name of the pool/region that could not satisfy the request.
  const std::string& pool() const noexcept { return pool_; }
  std::size_t requested_bytes() const noexcept { return requested_; }
  std::size_t free_bytes() const noexcept { return free_; }

 private:
  std::string pool_;
  std::size_t requested_;
  std::size_t free_;
};

/// Accounting of one named sub-reservation of the arena.
struct RegionStats {
  std::size_t bytes_in_use = 0;     ///< hard + soft bytes currently charged
  std::size_t peak_bytes = 0;       ///< high-water of bytes_in_use
  std::size_t soft_bytes = 0;       ///< overcommittable (tensor-hook) share
  std::size_t live_allocations = 0; ///< backed blocks currently live
  std::size_t total_charges = 0;    ///< lifetime allocs + charges
  std::size_t pressure_events = 0;  ///< requests that exceeded free capacity
};

struct ArenaStats {
  std::size_t capacity = 0;
  std::size_t bytes_in_use = 0;  ///< hard + soft over all regions
  std::size_t peak_bytes = 0;
  std::size_t pressure_events = 0;    ///< demand exceeded free capacity
  std::size_t pressure_releases = 0;  ///< a callback freed bytes
  std::size_t pressure_stalls = 0;    ///< no callback could free (degrade)
  std::map<std::string, RegionStats> regions;
};

namespace detail {
struct Ledger;  // shared accounting state; outlives the arena for deleters
void ledger_charge_soft(Ledger& ledger, const std::string& region,
                        std::size_t bytes);
void ledger_uncharge_soft(Ledger& ledger, const std::string& region,
                          std::size_t bytes);

struct ChargeScope {
  std::shared_ptr<Ledger> ledger;
  std::string region;
};
/// Thread-local scope consulted by tensor::Tensor::zeros (nullptr = off).
const ChargeScope* current_tensor_charge() noexcept;
}  // namespace detail

class DeviceArena {
 public:
  static constexpr const char* kWindow = "window";
  static constexpr const char* kKv = "kv";
  static constexpr const char* kActivations = "activations";
  static constexpr const char* kWorkspace = "workspace";

  /// `capacity_bytes` bounds the sum of enforced (backed + reserved) bytes.
  DeviceArena(std::string name, std::size_t capacity_bytes);
  ~DeviceArena();

  DeviceArena(const DeviceArena&) = delete;
  DeviceArena& operator=(const DeviceArena&) = delete;

  /// Allocates `bytes` of storage charged to `region` (the primary, byte-
  /// typed entry point — window slots may hold f32 or bf16 elements). The
  /// block is max_align_t-aligned. On exhaustion the pressure layer runs
  /// first; throws OomError only when no callback can free bytes.
  std::byte* allocate_bytes(std::size_t bytes,
                            const std::string& region = kWorkspace);

  /// Float-typed convenience wrapper: allocate_bytes(n * sizeof(float)).
  float* allocate_floats(std::size_t n, const std::string& region = kWorkspace);

  /// Releases a block returned by allocate_bytes/allocate_floats.
  void deallocate(void* ptr);

  /// Reserves `bytes` of capacity in `region` without backing storage.
  /// Returns false (no state change, no pressure signal) when the free
  /// capacity cannot absorb it — the caller owns the degradation decision.
  bool try_charge(const std::string& region, std::size_t bytes);

  /// Returns bytes reserved with try_charge.
  void uncharge(const std::string& region, std::size_t bytes);

  /// A pressure callback attempts to free capacity (evict, preempt, spill)
  /// and returns whether it did. Invoked outside the arena lock.
  using PressureCallback =
      std::function<bool(const std::string& region, std::size_t bytes)>;
  std::uint64_t add_pressure_callback(PressureCallback cb);
  void remove_pressure_callback(std::uint64_t id);

  /// Records a pressure event for `region` and invokes callbacks until one
  /// frees bytes. Returns whether any did (false = the caller should take
  /// its own graceful-degradation path, e.g. defer a prefetch).
  bool signal_pressure(const std::string& region, std::size_t bytes);

  const std::string& name() const noexcept;
  std::size_t capacity() const noexcept;
  /// Hard + soft bytes currently charged, over all regions.
  std::size_t bytes_in_use() const;
  /// High-water mark of bytes_in_use() — the one peak convention of sh::mem.
  std::size_t peak_bytes() const;
  /// Capacity remaining for enforced requests (soft bytes do not consume it).
  std::size_t free_bytes() const;
  std::size_t live_allocations() const;
  ArenaStats stats() const;

  // hw::MemoryPool-compatible aliases (pre-sh::mem spelling).
  std::size_t used() const { return bytes_in_use(); }
  std::size_t high_water() const { return peak_bytes(); }

  /// Shared accounting handle; lets tensor deleters outlive the arena.
  const std::shared_ptr<detail::Ledger>& ledger() const noexcept {
    return ledger_;
  }

 private:
  std::shared_ptr<detail::Ledger> ledger_;
};

/// RAII scope: while alive ON THIS THREAD, every owning tensor::Tensor
/// allocation is soft-charged to `region` of `arena` (and uncharged when the
/// tensor's storage dies, on any thread, even after the arena is gone). The
/// hook only touches accounting — buffer contents and numerics are
/// bit-identical with and without it.
class ScopedTensorCharge {
 public:
  ScopedTensorCharge(DeviceArena& arena, std::string region);
  ~ScopedTensorCharge();

  ScopedTensorCharge(const ScopedTensorCharge&) = delete;
  ScopedTensorCharge& operator=(const ScopedTensorCharge&) = delete;

 private:
  detail::ChargeScope scope_;
  const detail::ChargeScope* prev_;
};

}  // namespace sh::mem

// Allocation policies over a mem::DeviceArena.
//
// BufferPool — user-level GPU working-window buffer management (STRONGHOLD
// Section III-E3). Frameworks cache n*k per-tensor buffers, which cannot
// work when the model exceeds GPU memory. STRONGHOLD instead reserves m+1
// fixed slots once at warm-up (m = working window) and recycles them
// round-robin: a prefetched layer takes the slot most recently vacated by an
// evicted layer. Reserved buffers may grow but never shrink. Released slots
// are poisoned with NaN so a layer computing from a stale window slot fails
// loudly.
//
// ByteBudgetPool — fixed-size GPU working buffer with a dynamically varying
// number of layers (Section III-D, final paragraph). Uniform slots sized for
// the largest layer waste memory when layer sizes are heterogeneous (e.g.
// MoE blocks next to dense blocks). This pool instead reserves ONE fixed
// buffer and sub-allocates exact-size regions from it with a first-fit
// coalescing free list — the number of resident layers then adapts to their
// sizes.
//
// Both are policies, not owners: every byte they hand out is backed by (and
// charged to a region of) the DeviceArena passed at construction.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "mem/device_arena.hpp"

namespace sh::mem {

class BufferPool {
 public:
  /// Reserves `num_slots` buffers of `slot_floats` floats from `arena`,
  /// charged to `region`.
  BufferPool(DeviceArena& arena, std::size_t slot_floats,
             std::size_t num_slots,
             std::string region = DeviceArena::kWindow);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Takes the next free slot in round-robin order; blocks until one frees.
  float* acquire();

  /// Non-blocking variant; returns nullptr when all slots are busy.
  float* try_acquire();

  /// Returns a slot to the free queue (poisoning its contents).
  void release(float* slot);

  /// Grows the pool to at least `num_slots` slots of at least `slot_floats`
  /// floats. Shrinking is never performed (paper: buffers grow, not shrink).
  /// All slots must be free when growing the slot size.
  void grow(std::size_t slot_floats, std::size_t num_slots);

  std::size_t slot_floats() const;
  std::size_t num_slots() const;
  std::size_t free_slots() const;
  std::size_t total_acquisitions() const;

  /// True if `ptr` is one of this pool's slots (any state).
  bool owns(const float* ptr) const;

 private:
  void release_all_to_arena();

  DeviceArena& arena_;
  const std::string region_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t slot_floats_;
  std::vector<float*> slots_;      // all slots, in reservation order
  std::deque<float*> free_queue_;  // round-robin free list
  std::size_t acquisitions_ = 0;
};

class ByteBudgetPool {
 public:
  /// Reserves a single `budget_floats` buffer from `arena`, charged to
  /// `region`.
  ByteBudgetPool(DeviceArena& arena, std::size_t budget_floats,
                 std::string region = DeviceArena::kWindow);
  ~ByteBudgetPool();

  ByteBudgetPool(const ByteBudgetPool&) = delete;
  ByteBudgetPool& operator=(const ByteBudgetPool&) = delete;

  /// Carves a `floats`-sized region out of the buffer (first fit); blocks
  /// until a large-enough contiguous region frees up. Throws OomError if the
  /// request exceeds the whole budget (it could never be satisfied).
  float* acquire(std::size_t floats);

  /// Non-blocking variant: nullptr when no region currently fits.
  float* try_acquire(std::size_t floats);

  /// Returns a region (poisoning it) and coalesces with free neighbours.
  void release(float* ptr);

  std::size_t budget_floats() const noexcept { return budget_; }
  std::size_t floats_in_use() const;
  std::size_t peak_floats_in_use() const;
  std::size_t live_regions() const;
  std::size_t total_acquisitions() const;

  /// Largest currently-free contiguous region (fragmentation diagnostics).
  std::size_t largest_free_region() const;

 private:
  std::size_t largest_free_locked() const;
  float* take_first_fit_locked(std::size_t floats);

  DeviceArena& arena_;
  float* base_ = nullptr;
  std::size_t budget_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  // offset -> size, for allocated and free regions.
  std::map<std::size_t, std::size_t> allocated_;
  std::map<std::size_t, std::size_t> free_;
  std::size_t in_use_ = 0;
  std::size_t peak_ = 0;
  std::size_t acquisitions_ = 0;
};

}  // namespace sh::mem

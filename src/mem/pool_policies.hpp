// Allocation policies over a mem::DeviceArena.
//
// BufferPool — user-level GPU working-window buffer management (STRONGHOLD
// Section III-E3). Frameworks cache n*k per-tensor buffers, which cannot
// work when the model exceeds GPU memory. STRONGHOLD instead reserves m+1
// fixed slots once at warm-up (m = working window) and recycles them
// round-robin: a prefetched layer takes the slot most recently vacated by an
// evicted layer. Reserved buffers may grow but never shrink. Released slots
// are poisoned (every byte 0xFF — a NaN pattern under both f32 and bf16) so
// a layer computing from a stale window slot fails loudly.
//
// ByteBudgetPool — fixed-size GPU working buffer with a dynamically varying
// number of layers (Section III-D, final paragraph). Uniform slots sized for
// the largest layer waste memory when layer sizes are heterogeneous (e.g.
// MoE blocks next to dense blocks). This pool instead reserves ONE fixed
// buffer and sub-allocates exact-size regions from it with a first-fit
// coalescing free list — the number of resident layers then adapts to their
// sizes.
//
// Both are byte-typed: slots hold whatever element encoding the window runs
// in (f32 or bf16 — the caller prices elements into bytes). Both are
// policies, not owners: every byte they hand out is backed by (and charged
// to a region of) the DeviceArena passed at construction.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "mem/device_arena.hpp"

namespace sh::mem {

/// Byte value released pool memory is filled with. 0xFF repeated is a quiet
/// NaN bit pattern for f32 (0xFFFFFFFF) and bf16 (0xFFFF) alike, so stale
/// reads fail loudly under either window dtype.
inline constexpr std::byte kPoisonByte{0xFF};

/// Sub-allocations from pooled slabs are rounded up to this alignment so a
/// carved region can always back f32 (or bf16) element storage.
inline constexpr std::size_t kRegionAlign = 16;

class BufferPool {
 public:
  /// Reserves `num_slots` buffers of `slot_bytes` bytes from `arena`,
  /// charged to `region`.
  BufferPool(DeviceArena& arena, std::size_t slot_bytes,
             std::size_t num_slots,
             std::string region = DeviceArena::kWindow);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Takes the next free slot in round-robin order; blocks until one frees.
  std::byte* acquire();

  /// Non-blocking variant; returns nullptr when all slots are busy.
  std::byte* try_acquire();

  /// Returns a slot to the free queue (poisoning its contents).
  void release(std::byte* slot);

  /// Grows the pool to at least `num_slots` slots of at least `slot_bytes`
  /// bytes. Shrinking is never performed (paper: buffers grow, not shrink).
  /// All slots must be free when growing the slot size.
  void grow(std::size_t slot_bytes, std::size_t num_slots);

  std::size_t slot_bytes() const;
  std::size_t num_slots() const;
  std::size_t free_slots() const;
  std::size_t total_acquisitions() const;

  /// True if `ptr` is one of this pool's slots (any state).
  bool owns(const std::byte* ptr) const;

 private:
  void release_all_to_arena();

  DeviceArena& arena_;
  const std::string region_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t slot_bytes_;
  std::vector<std::byte*> slots_;      // all slots, in reservation order
  std::deque<std::byte*> free_queue_;  // round-robin free list
  std::size_t acquisitions_ = 0;
};

class ByteBudgetPool {
 public:
  /// Reserves a single `budget_bytes` buffer from `arena`, charged to
  /// `region`.
  ByteBudgetPool(DeviceArena& arena, std::size_t budget_bytes,
                 std::string region = DeviceArena::kWindow);
  ~ByteBudgetPool();

  ByteBudgetPool(const ByteBudgetPool&) = delete;
  ByteBudgetPool& operator=(const ByteBudgetPool&) = delete;

  /// Carves a `bytes`-sized region out of the buffer (first fit, rounded up
  /// to kRegionAlign); blocks until a large-enough contiguous region frees
  /// up. Throws OomError if the request exceeds the whole budget (it could
  /// never be satisfied).
  std::byte* acquire(std::size_t bytes);

  /// Non-blocking variant: nullptr when no region currently fits.
  std::byte* try_acquire(std::size_t bytes);

  /// Returns a region (poisoning it) and coalesces with free neighbours.
  void release(std::byte* ptr);

  std::size_t budget_bytes() const noexcept { return budget_; }
  std::size_t bytes_in_use() const;
  std::size_t peak_bytes_in_use() const;
  std::size_t live_regions() const;
  std::size_t total_acquisitions() const;

  /// Largest currently-free contiguous region (fragmentation diagnostics).
  std::size_t largest_free_region() const;

 private:
  std::size_t largest_free_locked() const;
  std::byte* take_first_fit_locked(std::size_t bytes);

  DeviceArena& arena_;
  std::byte* base_ = nullptr;
  std::size_t budget_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  // offset -> size in bytes, for allocated and free regions.
  std::map<std::size_t, std::size_t> allocated_;
  std::map<std::size_t, std::size_t> free_;
  std::size_t in_use_ = 0;
  std::size_t peak_ = 0;
  std::size_t acquisitions_ = 0;
};

}  // namespace sh::mem

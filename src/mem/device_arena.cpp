#include "mem/device_arena.hpp"

#include <algorithm>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/obs.hpp"

namespace sh::mem {
namespace detail {

struct RegionInfo {
  std::size_t hard = 0;
  std::size_t soft = 0;
  std::size_t peak = 0;
  std::size_t live_allocations = 0;
  std::size_t total_charges = 0;
  std::size_t pressure_events = 0;
};

struct BackedBlock {
  std::unique_ptr<std::byte[]> storage;
  std::string region;
  std::size_t bytes = 0;
};

// All accounting state lives behind a shared_ptr so that soft-charge deleters
// captured inside tensor storage stay valid after the DeviceArena dies.
struct Ledger {
  Ledger(std::string n, std::size_t cap) : name(std::move(n)), capacity(cap) {}

  const std::string name;
  const std::size_t capacity;

  mutable std::mutex mu;
  std::size_t hard = 0;  // backed + reserved bytes (capacity-enforced)
  std::size_t soft = 0;  // overcommittable tensor-hook bytes
  std::size_t peak = 0;  // high-water of hard + soft
  std::size_t pressure_events = 0;
  std::size_t pressure_releases = 0;
  std::size_t pressure_stalls = 0;
  std::map<std::string, RegionInfo> regions;
  std::unordered_map<void*, BackedBlock> blocks;

  // Callbacks use their own mutex: signal_pressure must snapshot them while
  // a callback (e.g. KvArena preempt) re-enters the accounting lock above.
  std::mutex cb_mu;
  std::uint64_t next_cb_id = 1;
  std::vector<std::pair<std::uint64_t, DeviceArena::PressureCallback>>
      callbacks;

  // Callers hold `mu`.
  void note_peak_locked() {
    peak = std::max(peak, hard + soft);
    for (auto& [name_, r] : regions) {
      r.peak = std::max(r.peak, r.hard + r.soft);
    }
  }

  void record_pressure_locked(const std::string& region, std::size_t) {
    ++pressure_events;
    ++regions[region].pressure_events;
  }
};

void ledger_charge_soft(Ledger& ledger, const std::string& region,
                        std::size_t bytes) {
  std::lock_guard<std::mutex> lock(ledger.mu);
  RegionInfo& r = ledger.regions[region];
  ledger.soft += bytes;
  r.soft += bytes;
  ++r.total_charges;
  if (ledger.hard + ledger.soft > ledger.capacity) {
    ledger.record_pressure_locked(region, bytes);
  }
  ledger.note_peak_locked();
}

void ledger_uncharge_soft(Ledger& ledger, const std::string& region,
                          std::size_t bytes) {
  std::lock_guard<std::mutex> lock(ledger.mu);
  RegionInfo& r = ledger.regions[region];
  ledger.soft -= std::min(ledger.soft, bytes);
  r.soft -= std::min(r.soft, bytes);
}

namespace {
thread_local const ChargeScope* g_charge_scope = nullptr;
}  // namespace

const ChargeScope* current_tensor_charge() noexcept { return g_charge_scope; }

}  // namespace detail

OomError::OomError(const std::string& pool, std::size_t requested_bytes,
                   std::size_t free_bytes)
    : std::runtime_error("OOM in pool '" + pool + "': requested " +
                         std::to_string(requested_bytes) + " bytes, " +
                         std::to_string(free_bytes) + " free"),
      pool_(pool),
      requested_(requested_bytes),
      free_(free_bytes) {}

DeviceArena::DeviceArena(std::string name, std::size_t capacity_bytes)
    : ledger_(std::make_shared<detail::Ledger>(std::move(name),
                                               capacity_bytes)) {}

DeviceArena::~DeviceArena() = default;

std::byte* DeviceArena::allocate_bytes(std::size_t bytes,
                                       const std::string& region) {
  // Bounded retry: each failed admission runs the pressure layer once; a
  // callback that frees bytes earns another attempt. The cap guards against
  // a callback that keeps claiming success without making room.
  for (int attempt = 0; attempt < 64; ++attempt) {
    {
      std::lock_guard<std::mutex> lock(ledger_->mu);
      if (ledger_->hard + bytes <= ledger_->capacity) {
        detail::BackedBlock block;
        // operator new[] gives max_align_t alignment, so the block can back
        // f32 as well as bf16 element storage.
        block.storage = std::make_unique<std::byte[]>(bytes);
        block.region = region;
        block.bytes = bytes;
        std::byte* ptr = block.storage.get();
        detail::RegionInfo& r = ledger_->regions[region];
        ledger_->hard += bytes;
        r.hard += bytes;
        ++r.live_allocations;
        ++r.total_charges;
        ledger_->note_peak_locked();
        ledger_->blocks.emplace(ptr, std::move(block));
        return ptr;
      }
    }
    if (!signal_pressure(region, bytes)) break;
  }
  std::size_t free = 0;
  {
    std::lock_guard<std::mutex> lock(ledger_->mu);
    free = ledger_->capacity - std::min(ledger_->capacity, ledger_->hard);
  }
  throw OomError(ledger_->name, bytes, free);
}

float* DeviceArena::allocate_floats(std::size_t n, const std::string& region) {
  return reinterpret_cast<float*>(allocate_bytes(n * sizeof(float), region));
}

void DeviceArena::deallocate(void* ptr) {
  if (ptr == nullptr) return;
  std::lock_guard<std::mutex> lock(ledger_->mu);
  auto it = ledger_->blocks.find(ptr);
  if (it == ledger_->blocks.end()) {
    throw std::logic_error("DeviceArena '" + ledger_->name +
                           "': deallocate of unknown pointer");
  }
  detail::RegionInfo& r = ledger_->regions[it->second.region];
  ledger_->hard -= it->second.bytes;
  r.hard -= it->second.bytes;
  --r.live_allocations;
  ledger_->blocks.erase(it);
}

bool DeviceArena::try_charge(const std::string& region, std::size_t bytes) {
  std::lock_guard<std::mutex> lock(ledger_->mu);
  if (ledger_->hard + bytes > ledger_->capacity) return false;
  detail::RegionInfo& r = ledger_->regions[region];
  ledger_->hard += bytes;
  r.hard += bytes;
  ++r.total_charges;
  ledger_->note_peak_locked();
  return true;
}

void DeviceArena::uncharge(const std::string& region, std::size_t bytes) {
  std::lock_guard<std::mutex> lock(ledger_->mu);
  auto it = ledger_->regions.find(region);
  if (it == ledger_->regions.end() || it->second.hard < bytes ||
      ledger_->hard < bytes) {
    throw std::logic_error("DeviceArena '" + ledger_->name +
                           "': uncharge exceeds charged bytes in region '" +
                           region + "'");
  }
  ledger_->hard -= bytes;
  it->second.hard -= bytes;
}

std::uint64_t DeviceArena::add_pressure_callback(PressureCallback cb) {
  std::lock_guard<std::mutex> lock(ledger_->cb_mu);
  const std::uint64_t id = ledger_->next_cb_id++;
  ledger_->callbacks.emplace_back(id, std::move(cb));
  return id;
}

void DeviceArena::remove_pressure_callback(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(ledger_->cb_mu);
  std::erase_if(ledger_->callbacks,
                [id](const auto& entry) { return entry.first == id; });
}

bool DeviceArena::signal_pressure(const std::string& region,
                                  std::size_t bytes) {
  {
    std::lock_guard<std::mutex> lock(ledger_->mu);
    ledger_->record_pressure_locked(region, bytes);
  }
  obs::instant("mem", "pressure:" + region);
  // Snapshot under cb_mu, invoke with no lock held: callbacks free capacity
  // by calling back into this arena (deallocate/uncharge).
  std::vector<std::pair<std::uint64_t, PressureCallback>> cbs;
  {
    std::lock_guard<std::mutex> lock(ledger_->cb_mu);
    cbs = ledger_->callbacks;
  }
  for (auto& [id, cb] : cbs) {
    if (cb(region, bytes)) {
      obs::instant("mem", "pressure-release:" + region);
      std::lock_guard<std::mutex> lock(ledger_->mu);
      ++ledger_->pressure_releases;
      return true;
    }
  }
  obs::instant("mem", "pressure-stall:" + region);
  std::lock_guard<std::mutex> lock(ledger_->mu);
  ++ledger_->pressure_stalls;
  return false;
}

const std::string& DeviceArena::name() const noexcept { return ledger_->name; }

std::size_t DeviceArena::capacity() const noexcept {
  return ledger_->capacity;
}

std::size_t DeviceArena::bytes_in_use() const {
  std::lock_guard<std::mutex> lock(ledger_->mu);
  return ledger_->hard + ledger_->soft;
}

std::size_t DeviceArena::peak_bytes() const {
  std::lock_guard<std::mutex> lock(ledger_->mu);
  return ledger_->peak;
}

std::size_t DeviceArena::free_bytes() const {
  std::lock_guard<std::mutex> lock(ledger_->mu);
  return ledger_->capacity - std::min(ledger_->capacity, ledger_->hard);
}

std::size_t DeviceArena::live_allocations() const {
  std::lock_guard<std::mutex> lock(ledger_->mu);
  return ledger_->blocks.size();
}

ArenaStats DeviceArena::stats() const {
  std::lock_guard<std::mutex> lock(ledger_->mu);
  ArenaStats s;
  s.capacity = ledger_->capacity;
  s.bytes_in_use = ledger_->hard + ledger_->soft;
  s.peak_bytes = ledger_->peak;
  s.pressure_events = ledger_->pressure_events;
  s.pressure_releases = ledger_->pressure_releases;
  s.pressure_stalls = ledger_->pressure_stalls;
  for (const auto& [name, r] : ledger_->regions) {
    RegionStats rs;
    rs.bytes_in_use = r.hard + r.soft;
    rs.peak_bytes = r.peak;
    rs.soft_bytes = r.soft;
    rs.live_allocations = r.live_allocations;
    rs.total_charges = r.total_charges;
    rs.pressure_events = r.pressure_events;
    s.regions.emplace(name, rs);
  }
  return s;
}

ScopedTensorCharge::ScopedTensorCharge(DeviceArena& arena, std::string region)
    : scope_{arena.ledger(), std::move(region)},
      prev_(detail::g_charge_scope) {
  detail::g_charge_scope = &scope_;
}

ScopedTensorCharge::~ScopedTensorCharge() { detail::g_charge_scope = prev_; }

}  // namespace sh::mem

#include "mem/pool_policies.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace sh::mem {

BufferPool::BufferPool(DeviceArena& arena, std::size_t slot_floats,
                       std::size_t num_slots, std::string region)
    : arena_(arena), region_(std::move(region)), slot_floats_(slot_floats) {
  if (slot_floats == 0 || num_slots == 0) {
    throw std::invalid_argument("BufferPool: slots must be non-empty");
  }
  slots_.reserve(num_slots);
  for (std::size_t i = 0; i < num_slots; ++i) {
    float* s = arena_.allocate_floats(slot_floats_, region_);
    slots_.push_back(s);
    free_queue_.push_back(s);
  }
}

BufferPool::~BufferPool() { release_all_to_arena(); }

void BufferPool::release_all_to_arena() {
  for (float* s : slots_) arena_.deallocate(s);
  slots_.clear();
  free_queue_.clear();
}

float* BufferPool::acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !free_queue_.empty(); });
  float* s = free_queue_.front();
  free_queue_.pop_front();
  ++acquisitions_;
  return s;
}

float* BufferPool::try_acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_queue_.empty()) return nullptr;
  float* s = free_queue_.front();
  free_queue_.pop_front();
  ++acquisitions_;
  return s;
}

void BufferPool::release(float* slot) {
  std::lock_guard<std::mutex> lock(mu_);
  if (std::find(slots_.begin(), slots_.end(), slot) == slots_.end()) {
    throw std::logic_error("BufferPool: releasing a foreign pointer");
  }
  if (std::find(free_queue_.begin(), free_queue_.end(), slot) !=
      free_queue_.end()) {
    throw std::logic_error("BufferPool: double release");
  }
  // Poison so stale layer views read NaN instead of old parameters.
  std::fill_n(slot, slot_floats_, std::numeric_limits<float>::quiet_NaN());
  free_queue_.push_back(slot);
  cv_.notify_one();
}

void BufferPool::grow(std::size_t slot_floats, std::size_t num_slots) {
  std::lock_guard<std::mutex> lock(mu_);
  if (slot_floats > slot_floats_) {
    if (free_queue_.size() != slots_.size()) {
      throw std::logic_error("BufferPool: cannot resize slots while in use");
    }
    for (float*& s : slots_) arena_.deallocate(s);
    slots_.clear();
    free_queue_.clear();
    slot_floats_ = slot_floats;
    const std::size_t count = std::max(num_slots, std::size_t{1});
    for (std::size_t i = 0; i < count; ++i) {
      float* s = arena_.allocate_floats(slot_floats_, region_);
      slots_.push_back(s);
      free_queue_.push_back(s);
    }
    cv_.notify_all();
    return;
  }
  while (slots_.size() < num_slots) {
    float* s = arena_.allocate_floats(slot_floats_, region_);
    slots_.push_back(s);
    free_queue_.push_back(s);
    cv_.notify_one();
  }
}

std::size_t BufferPool::slot_floats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slot_floats_;
}

std::size_t BufferPool::num_slots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

std::size_t BufferPool::free_slots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_queue_.size();
}

std::size_t BufferPool::total_acquisitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acquisitions_;
}

bool BufferPool::owns(const float* ptr) const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::find(slots_.begin(), slots_.end(), ptr) != slots_.end();
}

ByteBudgetPool::ByteBudgetPool(DeviceArena& arena, std::size_t budget_floats,
                               std::string region)
    : arena_(arena), budget_(budget_floats) {
  if (budget_floats == 0) {
    throw std::invalid_argument("ByteBudgetPool: empty budget");
  }
  base_ = arena_.allocate_floats(budget_, region);
  free_[0] = budget_;
}

ByteBudgetPool::~ByteBudgetPool() { arena_.deallocate(base_); }

float* ByteBudgetPool::take_first_fit_locked(std::size_t floats) {
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second < floats) continue;
    const std::size_t offset = it->first;
    const std::size_t remaining = it->second - floats;
    free_.erase(it);
    if (remaining > 0) free_[offset + floats] = remaining;
    allocated_[offset] = floats;
    in_use_ += floats;
    peak_ = std::max(peak_, in_use_);
    ++acquisitions_;
    return base_ + offset;
  }
  return nullptr;
}

float* ByteBudgetPool::acquire(std::size_t floats) {
  if (floats == 0) throw std::invalid_argument("acquire of zero floats");
  if (floats > budget_) {
    throw OomError("window-budget", floats * sizeof(float),
                   budget_ * sizeof(float));
  }
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (float* p = take_first_fit_locked(floats)) return p;
    cv_.wait(lock);
  }
}

float* ByteBudgetPool::try_acquire(std::size_t floats) {
  if (floats == 0) throw std::invalid_argument("acquire of zero floats");
  if (floats > budget_) {
    throw OomError("window-budget", floats * sizeof(float),
                   budget_ * sizeof(float));
  }
  std::lock_guard<std::mutex> lock(mu_);
  return take_first_fit_locked(floats);
}

void ByteBudgetPool::release(float* ptr) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto offset = static_cast<std::size_t>(ptr - base_);
  auto it = allocated_.find(offset);
  if (ptr < base_ || it == allocated_.end()) {
    throw std::logic_error("ByteBudgetPool: releasing unknown region");
  }
  const std::size_t size = it->second;
  std::fill_n(ptr, size, std::numeric_limits<float>::quiet_NaN());
  allocated_.erase(it);
  in_use_ -= size;

  // Insert and coalesce with neighbours.
  auto inserted = free_.emplace(offset, size).first;
  if (inserted != free_.begin()) {
    auto prev = std::prev(inserted);
    if (prev->first + prev->second == inserted->first) {
      prev->second += inserted->second;
      free_.erase(inserted);
      inserted = prev;
    }
  }
  auto next = std::next(inserted);
  if (next != free_.end() &&
      inserted->first + inserted->second == next->first) {
    inserted->second += next->second;
    free_.erase(next);
  }
  cv_.notify_all();
}

std::size_t ByteBudgetPool::floats_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_use_;
}

std::size_t ByteBudgetPool::peak_floats_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_;
}

std::size_t ByteBudgetPool::live_regions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return allocated_.size();
}

std::size_t ByteBudgetPool::total_acquisitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acquisitions_;
}

std::size_t ByteBudgetPool::largest_free_locked() const {
  std::size_t best = 0;
  for (const auto& [off, size] : free_) best = std::max(best, size);
  return best;
}

std::size_t ByteBudgetPool::largest_free_region() const {
  std::lock_guard<std::mutex> lock(mu_);
  return largest_free_locked();
}

}  // namespace sh::mem

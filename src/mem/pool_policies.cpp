#include "mem/pool_policies.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace sh::mem {

namespace {
inline std::size_t align_up(std::size_t bytes) {
  return (bytes + kRegionAlign - 1) / kRegionAlign * kRegionAlign;
}
}  // namespace

BufferPool::BufferPool(DeviceArena& arena, std::size_t slot_bytes,
                       std::size_t num_slots, std::string region)
    : arena_(arena), region_(std::move(region)), slot_bytes_(slot_bytes) {
  if (slot_bytes == 0 || num_slots == 0) {
    throw std::invalid_argument("BufferPool: slots must be non-empty");
  }
  slots_.reserve(num_slots);
  for (std::size_t i = 0; i < num_slots; ++i) {
    std::byte* s = arena_.allocate_bytes(slot_bytes_, region_);
    slots_.push_back(s);
    free_queue_.push_back(s);
  }
}

BufferPool::~BufferPool() { release_all_to_arena(); }

void BufferPool::release_all_to_arena() {
  for (std::byte* s : slots_) arena_.deallocate(s);
  slots_.clear();
  free_queue_.clear();
}

std::byte* BufferPool::acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !free_queue_.empty(); });
  std::byte* s = free_queue_.front();
  free_queue_.pop_front();
  ++acquisitions_;
  return s;
}

std::byte* BufferPool::try_acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_queue_.empty()) return nullptr;
  std::byte* s = free_queue_.front();
  free_queue_.pop_front();
  ++acquisitions_;
  return s;
}

void BufferPool::release(std::byte* slot) {
  std::lock_guard<std::mutex> lock(mu_);
  if (std::find(slots_.begin(), slots_.end(), slot) == slots_.end()) {
    throw std::logic_error("BufferPool: releasing a foreign pointer");
  }
  if (std::find(free_queue_.begin(), free_queue_.end(), slot) !=
      free_queue_.end()) {
    throw std::logic_error("BufferPool: double release");
  }
  // Poison so stale layer views read NaN (under f32 and bf16 alike)
  // instead of old parameters.
  std::fill_n(slot, slot_bytes_, kPoisonByte);
  free_queue_.push_back(slot);
  cv_.notify_one();
}

void BufferPool::grow(std::size_t slot_bytes, std::size_t num_slots) {
  std::lock_guard<std::mutex> lock(mu_);
  if (slot_bytes > slot_bytes_) {
    if (free_queue_.size() != slots_.size()) {
      throw std::logic_error("BufferPool: cannot resize slots while in use");
    }
    for (std::byte*& s : slots_) arena_.deallocate(s);
    slots_.clear();
    free_queue_.clear();
    slot_bytes_ = slot_bytes;
    const std::size_t count = std::max(num_slots, std::size_t{1});
    for (std::size_t i = 0; i < count; ++i) {
      std::byte* s = arena_.allocate_bytes(slot_bytes_, region_);
      slots_.push_back(s);
      free_queue_.push_back(s);
    }
    cv_.notify_all();
    return;
  }
  while (slots_.size() < num_slots) {
    std::byte* s = arena_.allocate_bytes(slot_bytes_, region_);
    slots_.push_back(s);
    free_queue_.push_back(s);
    cv_.notify_one();
  }
}

std::size_t BufferPool::slot_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slot_bytes_;
}

std::size_t BufferPool::num_slots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

std::size_t BufferPool::free_slots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_queue_.size();
}

std::size_t BufferPool::total_acquisitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acquisitions_;
}

bool BufferPool::owns(const std::byte* ptr) const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::find(slots_.begin(), slots_.end(), ptr) != slots_.end();
}

ByteBudgetPool::ByteBudgetPool(DeviceArena& arena, std::size_t budget_bytes,
                               std::string region)
    : arena_(arena), budget_(align_up(budget_bytes)) {
  if (budget_bytes == 0) {
    throw std::invalid_argument("ByteBudgetPool: empty budget");
  }
  base_ = arena_.allocate_bytes(budget_, region);
  free_[0] = budget_;
}

ByteBudgetPool::~ByteBudgetPool() { arena_.deallocate(base_); }

std::byte* ByteBudgetPool::take_first_fit_locked(std::size_t bytes) {
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second < bytes) continue;
    const std::size_t offset = it->first;
    const std::size_t remaining = it->second - bytes;
    free_.erase(it);
    if (remaining > 0) free_[offset + bytes] = remaining;
    allocated_[offset] = bytes;
    in_use_ += bytes;
    peak_ = std::max(peak_, in_use_);
    ++acquisitions_;
    return base_ + offset;
  }
  return nullptr;
}

std::byte* ByteBudgetPool::acquire(std::size_t bytes) {
  if (bytes == 0) throw std::invalid_argument("acquire of zero bytes");
  const std::size_t need = align_up(bytes);
  if (need > budget_) throw OomError("window-budget", need, budget_);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (std::byte* p = take_first_fit_locked(need)) return p;
    cv_.wait(lock);
  }
}

std::byte* ByteBudgetPool::try_acquire(std::size_t bytes) {
  if (bytes == 0) throw std::invalid_argument("acquire of zero bytes");
  const std::size_t need = align_up(bytes);
  if (need > budget_) throw OomError("window-budget", need, budget_);
  std::lock_guard<std::mutex> lock(mu_);
  return take_first_fit_locked(need);
}

void ByteBudgetPool::release(std::byte* ptr) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto offset = static_cast<std::size_t>(ptr - base_);
  auto it = allocated_.find(offset);
  if (ptr < base_ || it == allocated_.end()) {
    throw std::logic_error("ByteBudgetPool: releasing unknown region");
  }
  const std::size_t size = it->second;
  std::fill_n(ptr, size, kPoisonByte);
  allocated_.erase(it);
  in_use_ -= size;

  // Insert and coalesce with neighbours.
  auto inserted = free_.emplace(offset, size).first;
  if (inserted != free_.begin()) {
    auto prev = std::prev(inserted);
    if (prev->first + prev->second == inserted->first) {
      prev->second += inserted->second;
      free_.erase(inserted);
      inserted = prev;
    }
  }
  auto next = std::next(inserted);
  if (next != free_.end() &&
      inserted->first + inserted->second == next->first) {
    inserted->second += next->second;
    free_.erase(next);
  }
  cv_.notify_all();
}

std::size_t ByteBudgetPool::bytes_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_use_;
}

std::size_t ByteBudgetPool::peak_bytes_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_;
}

std::size_t ByteBudgetPool::live_regions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return allocated_.size();
}

std::size_t ByteBudgetPool::total_acquisitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acquisitions_;
}

std::size_t ByteBudgetPool::largest_free_locked() const {
  std::size_t best = 0;
  for (const auto& [off, size] : free_) best = std::max(best, size);
  return best;
}

std::size_t ByteBudgetPool::largest_free_region() const {
  std::lock_guard<std::mutex> lock(mu_);
  return largest_free_locked();
}

}  // namespace sh::mem

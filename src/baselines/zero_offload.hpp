// ZeRO-Offload [11]: parameters stay in GPU memory; gradients and optimizer
// states are offloaded to CPU RAM where a single CPU-optimizer process
// performs the update. Trainable size is limited by the GPU holding all
// parameters.
#pragma once

#include "baselines/strategy.hpp"

namespace sh::baselines {

class ZeroOffloadStrategy final : public Strategy {
 public:
  std::string name() const override { return "ZeRO-Offload"; }
  CapacityReport capacity(const Workload& w,
                          const sim::MachineSpec& machine) const override;
  IterationReport iteration(const Workload& w, const sim::MachineSpec& machine,
                            sim::Trace* trace) const override;
};

}  // namespace sh::baselines

#include "baselines/cluster.hpp"

#include <algorithm>

#include "baselines/calibration.hpp"
#include "baselines/stronghold_strategy.hpp"
#include "baselines/timing.hpp"

namespace sh::baselines {

namespace {

/// Ring all-reduce seconds for `bytes` per rank across `w` ranks, at the
/// ZeRO-family's fine-grained-bucket effective rate.
double collective_seconds(double bytes, int w, double latency) {
  const double wire = 2.0 * (w - 1) / static_cast<double>(w) * bytes /
                      calib::kZeroCollectiveBytesPerS;
  return wire + latency;
}

/// Tensor-parallel activation all-reduce volume per layer: 2 in FP + 2 in BP
/// of [batch, seq, hidden] activations.
double mp_comm_seconds_per_layer(const Workload& w,
                                 const sim::ClusterSpec& cluster) {
  const double act_bytes = sim::kF32 * w.batch *
                           static_cast<double>(w.model.seq) *
                           static_cast<double>(w.model.hidden);
  const double one = 2.0 * (cluster.num_nodes - 1) /
                         static_cast<double>(cluster.num_nodes) * act_bytes /
                         cluster.net_bytes_per_s +
                     calib::kCollectiveLatencyS;
  return 4.0 * one;
}

}  // namespace

CapacityReport cluster_capacity_mp(const Strategy& strategy, const Workload& w,
                                   const sim::ClusterSpec& cluster) {
  return strategy.capacity(w, cluster.node);
}

IterationReport cluster_iteration_mp(const Strategy& strategy,
                                     const Workload& w,
                                     const sim::ClusterSpec& cluster,
                                     bool overlaps_collectives) {
  IterationReport node = strategy.iteration(w, cluster.node, nullptr);
  double comm = static_cast<double>(w.model.layers) *
                mp_comm_seconds_per_layer(w, cluster);
  // STRONGHOLD's concurrent heterogeneous collectives hide most of the
  // tensor-parallel traffic under GPU compute (Section III-E2).
  if (overlaps_collectives) comm *= 0.3;
  const double total = node.seconds + comm;
  auto r = detail::make_report(w, total, node.window);
  return r;
}

double largest_trainable_billions_cluster(const Strategy& strategy,
                                          const sim::ClusterSpec& cluster,
                                          std::int64_t hidden, double batch,
                                          std::int64_t max_layers) {
  auto fits = [&](std::int64_t layers) {
    Workload w;
    w.model = sim::table1_model(layers, hidden, cluster.num_nodes);
    w.batch = batch;
    return strategy.capacity(w, cluster.node).fits;
  };
  if (!fits(1)) return 0.0;
  std::int64_t lo = 1, hi = 2;
  while (hi <= max_layers && fits(hi)) {
    lo = hi;
    hi *= 2;
  }
  hi = std::min(hi, max_layers + 1);
  while (lo + 1 < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    (fits(mid) ? lo : hi) = mid;
  }
  return sim::params_billions(
      sim::table1_model(lo, hidden, cluster.num_nodes));
}

CapacityReport ZeroDpStrategy::capacity(const Workload& w,
                                        const sim::MachineSpec& node) const {
  CapacityReport r;
  const double params = sim::total_params(w.model);
  const double ranks = cluster_.num_nodes;
  const double act =
      w.checkpoint_activations
          ? sim::activation_bytes_checkpointed(w.model, w.batch)
          : sim::activation_bytes_full(w.model, w.batch);
  if (stage_ == Stage::Two) {
    // Params replicated; gradients + optimizer states sharded across ranks.
    r.gpu_bytes = sim::kF32 * params + 12.0 * params / ranks + act +
                  node.gpu.runtime_reserved_bytes;
  } else {
    // Everything sharded; two gathered layers of working memory.
    r.gpu_bytes = sim::kStateBytesPerParam * params / ranks +
                  2.0 * sim::block_window_bytes(w.model) + act +
                  node.gpu.runtime_reserved_bytes;
  }
  r.fits = r.gpu_bytes <= node.gpu.mem_bytes;
  if (!r.fits) r.limiter = "gpu";
  return r;
}

IterationReport ZeroDpStrategy::iteration(const Workload& w,
                                          const sim::MachineSpec& node,
                                          sim::Trace* trace) const {
  const double params = sim::total_params(w.model);
  const double param_bytes = sim::kF32 * params;
  const double compute = detail::t_compute_iteration(w, node.gpu);
  const int ranks = cluster_.num_nodes;

  double comm = 0.0;
  if (stage_ == Stage::Two) {
    // Reduce-scatter gradients + all-gather updated parameters, bucketed
    // per layer (one collective latency each).
    comm = collective_seconds(param_bytes, ranks,
                              2.0 * w.model.layers * calib::kCollectiveLatencyS) *
           2.0;
  } else {
    // ZeRO-3 additionally all-gathers parameters for FP and again for BP.
    comm = collective_seconds(param_bytes, ranks,
                              3.0 * w.model.layers * calib::kCollectiveLatencyS) *
           3.0;
  }
  const double opt = params / ranks / calib::kGpuAdamParamsPerS;
  const double total = compute + comm + opt;
  if (trace != nullptr) {
    trace->record("gpu", "c", {0.0, compute});
    trace->record("net", "a", {compute, compute + comm});
  }
  return detail::make_report(w, total);
}

IterationReport stronghold_dp_iteration(const Workload& w,
                                        const sim::ClusterSpec& cluster) {
  StrongholdStrategy sh;
  IterationReport node = sh.iteration(w, cluster.node, nullptr);
  // One bucketed gradient all-reduce over the fast fabric, issued during BP
  // through the heterogeneous collective channels; only a tail is exposed.
  const double param_bytes = sim::kF32 * sim::total_params(w.model);
  const double wire = 2.0 * (cluster.num_nodes - 1) /
                          static_cast<double>(cluster.num_nodes) * param_bytes /
                      (cluster.net_bytes_per_s * calib::kStrongholdLinkEfficiency);
  const double exposed = 0.2 * wire + calib::kCollectiveLatencyS;
  return detail::make_report(w, node.seconds + exposed, node.window);
}

}  // namespace sh::baselines

// Calibration constants for the strategy simulators.
//
// The *mechanics* of every strategy (which tensors live where, what moves
// over which link, what can overlap) follow the papers. The constants below
// cover behaviour the papers report but do not derive — mostly software
// efficiency of the respective implementations. Each is documented with the
// observation it is calibrated against; everything else in the simulator
// falls out of the residency rules and the shared hardware model.
#pragma once

namespace sh::baselines::calib {

/// L2L executes one encoder layer at a time with synchronous transfers and
/// per-layer CPU<->GPU synchronisation, destroying kernel pipelining. Fig. 8a
/// reports 22.2% of Megatron-LM throughput on the 1.7B model; the transfers
/// alone do not explain that, so the residual is modelled as a GPU-efficiency
/// factor of its serialized execution.
inline constexpr double kL2lGpuEfficiency = 0.24;

/// L2L keeps optimizer state on the GPU in half precision (4 B/param for
/// Adam m+v); calibrated so its 32 GB-V100 capacity lands near the paper's
/// ~6B (Fig. 6a min-max 5.9-6.6B).
inline constexpr double kL2lGpuOptBytesPerParam = 4.0;

/// ZeRO-Offload/-Infinity run a single CPU optimizer process. The paper
/// attributes their <57% relative throughput mostly to it ("their CPU
/// optimizer implementation"); 1.5e8 params/s reproduces the Fig. 8a ratio
/// (equivalent to ~2.4 GB/s of state traffic on one socket).
inline constexpr double kZeroCpuAdamParamsPerS = 1.5e8;

/// Fraction of ZeRO-Offload's gradient d2h traffic hidden under backward
/// compute (it overlaps transfers per-bucket but synchronises per step).
inline constexpr double kZeroOffloadOverlap = 0.5;

/// ZeRO-Infinity gathers partitioned parameters layer-by-layer with limited
/// prefetch depth; only a small fraction of the traffic hides under compute.
inline constexpr double kZeroInfinityOverlap = 0.3;

/// ZeRO-Infinity's runtime model refactoring keeps an extra copy of gathered
/// parameters on the GPU and pads its CPU partitions (pinned buckets,
/// alignment). Factor over the raw 16 B/param, calibrated to the paper's
/// 20.6B CPU-only capacity on 755 GB RAM (Fig. 6a).
inline constexpr double kZeroInfinityCpuOverhead = 2.2;

/// Effective NVMe bandwidth ZeRO-Infinity achieves (bytes/s). Its per-tensor
/// synchronous small-block I/O collapses far below the device's ~5 GB/s
/// sequential rate — the paper measures a >800x throughput drop on a 1.7B
/// model (Fig. 1b). 100 MB/s keeps the model physically plausible while
/// reproducing the orders-of-magnitude collapse; EXPERIMENTS.md records the
/// residual gap to the paper's exact factor.
inline constexpr double kZeroInfinityNvmeBytesPerS = 100e6;

/// STRONGHOLD reaches ~80% of the theoretical PCIe/NVMe peak with pinned
/// buffers and bulk asynchronous requests (Section VI-A reports 80% of peak
/// link bandwidth at ~100% GPU utilisation).
inline constexpr double kStrongholdLinkEfficiency = 0.8;

/// Fixed software cost of one collective operation (launch + sync). Makes
/// per-layer collectives expensive at small batch sizes, which is what
/// Fig. 12 measures for ZeRO-2/3 at batch size 1.
inline constexpr double kCollectiveLatencyS = 8e-3;

/// GPU-side Adam throughput (params/s): HBM-bandwidth-bound at
/// ~900 GB/s / 48 B per param.
inline constexpr double kGpuAdamParamsPerS = 1.9e10;

/// Effective cross-server bandwidth the ZeRO runtimes achieve for their
/// fine-grained per-layer collectives (small buckets, synchronous launches)
/// — far below the 800 Gbps fabric peak. Calibrated against Fig. 12's
/// >=2.6x STRONGHOLD advantage on the 3B/batch-1 workload.
inline constexpr double kZeroCollectiveBytesPerS = 2.5e9;

}  // namespace sh::baselines::calib

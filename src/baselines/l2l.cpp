#include "baselines/l2l.hpp"

#include "baselines/calibration.hpp"
#include "baselines/timing.hpp"

namespace sh::baselines {

CapacityReport L2lStrategy::capacity(const Workload& w,
                                     const sim::MachineSpec& machine) const {
  CapacityReport r;
  const double params =
      sim::total_params(w.model) / w.model.model_parallel;
  // Optimizer states stay on the GPU (half precision, see calibration.hpp);
  // only a couple of layers' parameters are resident at a time.
  r.gpu_bytes = calib::kL2lGpuOptBytesPerParam * params +
                2.0 * sim::block_window_bytes(w.model) +
                sim::checkpoint_bytes(w.model, w.batch) *
                    static_cast<double>(w.model.layers) +
                sim::working_activation_bytes(w.model, w.batch) +
                machine.gpu.runtime_reserved_bytes;
  r.cpu_bytes = sim::kF32 * params;  // offloaded parameters
  if (r.gpu_bytes > machine.gpu.mem_bytes) {
    r.limiter = "gpu";
  } else if (r.cpu_bytes > machine.cpu.ram_bytes) {
    r.limiter = "cpu";
  } else {
    r.fits = true;
  }
  return r;
}

IterationReport L2lStrategy::iteration(const Workload& w,
                                       const sim::MachineSpec& machine,
                                       sim::Trace* trace) const {
  // Strictly serialized: fetch a layer, compute it, fetch the next...
  // Twice per iteration (FP then BP); the serialized execution also costs
  // kernel efficiency (see calibration.hpp).
  const double t_fetch =
      sim::block_param_bytes(w.model) / machine.pcie_bytes_per_s +
      machine.pcie_latency_s;
  const double per_layer_compute =
      (detail::t_fwd_block(w, machine.gpu) + detail::t_bwd_block(w, machine.gpu)) *
      detail::bubble_multiplier(machine.gpu) / calib::kL2lGpuEfficiency;
  const double n = static_cast<double>(w.model.layers);
  const double compute_total =
      n * per_layer_compute +
      detail::t_head_total(w, machine.gpu) / calib::kL2lGpuEfficiency;
  const double transfer_total = 2.0 * n * t_fetch;  // FP and BP passes
  const double opt = sim::total_params(w.model) / w.model.model_parallel /
                     calib::kGpuAdamParamsPerS;
  const double total = compute_total + transfer_total + opt;
  if (trace != nullptr) {
    double t = 0.0;
    trace->record("pcie", "t", {t, t + transfer_total / 2.0});
    trace->record("gpu", "c", {t + transfer_total / 2.0, total});
  }
  return detail::make_report(w, total);
}

}  // namespace sh::baselines

#include "baselines/strategy.hpp"

#include "baselines/l2l.hpp"
#include "baselines/megatron.hpp"
#include "baselines/stronghold_strategy.hpp"
#include "baselines/zero_infinity.hpp"
#include "baselines/zero_offload.hpp"

namespace sh::baselines {

double largest_trainable_billions(const Strategy& strategy,
                                  const sim::MachineSpec& machine,
                                  std::int64_t hidden, int model_parallel,
                                  double batch, std::int64_t max_layers) {
  auto fits = [&](std::int64_t layers) {
    Workload w;
    w.model = sim::table1_model(layers, hidden, model_parallel);
    w.batch = batch;
    return strategy.capacity(w, machine).fits;
  };
  if (!fits(1)) return 0.0;
  // Exponential probe then binary search on the layer count.
  std::int64_t lo = 1;
  std::int64_t hi = 2;
  while (hi <= max_layers && fits(hi)) {
    lo = hi;
    hi *= 2;
  }
  hi = std::min(hi, max_layers + 1);
  while (lo + 1 < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    (fits(mid) ? lo : hi) = mid;
  }
  return sim::params_billions(sim::table1_model(lo, hidden, model_parallel));
}

std::vector<std::unique_ptr<Strategy>> single_gpu_lineup() {
  std::vector<std::unique_ptr<Strategy>> v;
  v.push_back(std::make_unique<MegatronStrategy>());
  v.push_back(std::make_unique<L2lStrategy>());
  v.push_back(std::make_unique<ZeroOffloadStrategy>());
  v.push_back(std::make_unique<ZeroInfinityStrategy>());
  v.push_back(std::make_unique<StrongholdStrategy>());
  return v;
}

}  // namespace sh::baselines

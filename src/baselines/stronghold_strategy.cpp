#include "baselines/stronghold_strategy.hpp"

#include <algorithm>
#include <cmath>

#include "baselines/calibration.hpp"
#include "baselines/timing.hpp"

namespace sh::baselines {

namespace {

/// Per-iteration GPU-memory cost of one additional concurrent stream:
/// its own gradient staging in the window plus working activations for a
/// micro-batch (checkpoints are shared; parameters are shared by design).
double stream_overhead_bytes(const Workload& w, double micro_batch,
                             double elem_bytes) {
  return sim::block_window_bytes(w.model, elem_bytes) +
         sim::working_activation_bytes(w.model, micro_batch);
}

/// Bytes STRONGHOLD keeps pinned on the GPU for the first/last layer.
/// Always FP32: pinned layers never cross the wire per step, so the window
/// encoding does not apply to them.
double pinned_bytes(const Workload& w) {
  return 2.0 * sim::kF32 * sim::embedding_params(w.model) /
         w.model.model_parallel;
}

/// Per-layer slot footprint: parameters + gradients (priced in the window
/// element encoding) + the layer's saved input (activation checkpoint, FP32
/// compute format). STRONGHOLD's working window carries the "layer-specific
/// inputs" with the layer (Section III-C), so checkpoints of out-of-window
/// layers live in CPU RAM, not GPU memory.
double slot_bytes(const Workload& w, double elem_bytes) {
  return sim::block_window_bytes(w.model, elem_bytes) +
         sim::checkpoint_bytes(w.model, w.batch);
}

// Separate read/write NVMe queues each sustain ~70% of the device's
// sequential bandwidth with ~50 us submission latency (Section III-G).
constexpr double kNvmeDirEfficiency = 0.7;
constexpr double kNvmeLatencyS = 50e-6;

/// Adam moment bytes (m + v, FP32) of one block shard. With the optimizer
/// tier these are the bytes paged through NVMe per layer update.
double block_moment_bytes(const Workload& w) {
  return 8.0 * sim::block_params(w.model) / w.model.model_parallel;
}

/// True when only the moments live on NVMe (SH_OPT_TIER=nvme model);
/// `use_nvme` supersedes it — the full state is on the tier already.
bool moment_tier_only(const StrongholdOptions& o) {
  return o.nvme_optimizer_tier && !o.use_nvme;
}

}  // namespace

CapacityReport StrongholdStrategy::capacity(
    const Workload& w, const sim::MachineSpec& machine) const {
  CapacityReport r;
  const double eb = options_.window_bytes_per_element;
  // Minimum viable window: two slots (one computing, one prefetching), plus
  // transient working activations of the layer being computed.
  r.gpu_regions.window = pinned_bytes(w) + 2.0 * slot_bytes(w, eb);
  r.gpu_regions.activations = sim::working_activation_bytes(w.model, w.batch);
  r.gpu_regions.workspace = machine.gpu.runtime_reserved_bytes;
  r.gpu_bytes =
      r.gpu_regions.window + r.gpu_regions.activations + r.gpu_regions.workspace;
  const double state = sim::total_state_bytes(w.model);
  // Offloaded activation checkpoints ride along with the layer states.
  const double ckpt = static_cast<double>(w.model.layers) *
                      sim::checkpoint_bytes(w.model, w.batch);
  if (options_.use_nvme) {
    // The paper reports half a trillion trainable parameters on a 2 TB NVMe
    // device (Fig. 10), which implies ~4 B/param on the tier (FP16 params +
    // FP16 moments); the FP32 masters of in-flight layers stage in CPU RAM.
    r.nvme_bytes = 4.0 * sim::total_params(w.model) / w.model.model_parallel;
    r.cpu_bytes = 32.0 * sim::block_state_bytes(w.model) + ckpt;
  } else if (options_.nvme_optimizer_tier) {
    // SH_OPT_TIER=nvme: the Adam moments (8 of the 16 B/param state) move to
    // the tier, and the activation checkpoints of out-of-window layers spill
    // there too (the tier's second client). CPU RAM keeps the FP32 masters
    // (params + grads, the other 8 B/param) plus a small staging ring of
    // in-flight moment buffers (~one block's worth across the lease pool).
    r.nvme_bytes = 0.5 * state + ckpt;
    r.cpu_bytes = 0.5 * state + sim::block_state_bytes(w.model);
  } else {
    r.cpu_bytes = state + ckpt;
  }
  if (r.gpu_bytes > machine.gpu.mem_bytes) {
    r.limiter = "gpu";
  } else if (!options_.use_nvme &&
             r.cpu_bytes > machine.cpu.pinned_limit_bytes) {
    r.limiter = "cpu-pinned";
  } else if (r.nvme_bytes > 0.0 && r.nvme_bytes > machine.nvme_bytes) {
    r.limiter = "nvme";
  } else if (options_.use_nvme && r.cpu_bytes > machine.cpu.ram_bytes) {
    r.limiter = "cpu";
  } else {
    r.fits = true;
  }
  return r;
}

int StrongholdStrategy::stream_count(const Workload& w,
                                     const sim::MachineSpec& machine) const {
  if (!options_.multi_stream) return 1;
  const auto cap = capacity(w, machine);
  if (!cap.fits) return 1;
  double free_bytes = machine.gpu.mem_bytes - cap.gpu_bytes;
  int streams = 1;
  while (streams < machine.gpu.max_streams &&
         static_cast<double>(streams + 1) <= w.batch) {
    const double need = stream_overhead_bytes(w, w.batch / (streams + 1.0),
                                              options_.window_bytes_per_element);
    if (free_bytes < need) break;
    free_bytes -= need;
    ++streams;
  }
  return streams;
}

core::WindowModelInput StrongholdStrategy::build_model_input(
    const Workload& w, const sim::MachineSpec& machine, int streams) const {
  const double link =
      machine.pcie_bytes_per_s * calib::kStrongholdLinkEfficiency;
  // With the NVMe tier the fetch path is NVMe -> CPU -> GPU; the slower hop
  // bounds the per-layer rate (bulk sequential requests keep STRONGHOLD near
  // the device's sequential bandwidth, Section III-G).
  const double nvme =
      machine.nvme_bytes_per_s * calib::kStrongholdLinkEfficiency;
  const double in_rate = options_.use_nvme ? std::min(link, nvme) : link;
  const double out_rate = in_rate;
  // A layer moves with its parameters (in the window element encoding) plus
  // its saved input checkpoint (FP32).
  const double move_bytes =
      sim::block_param_bytes(w.model, options_.window_bytes_per_element) +
      sim::checkpoint_bytes(w.model, w.batch);

  const double bubble = detail::bubble_multiplier(machine.gpu, streams);
  core::LayerProfile p;
  p.t_fp = detail::t_fwd_block(w, machine.gpu) * bubble;
  p.t_bp = detail::t_bwd_block(w, machine.gpu) * bubble;
  p.t_c2g = move_bytes / in_rate + machine.pcie_latency_s;
  p.t_g2c = move_bytes / out_rate + machine.pcie_latency_s;
  p.s_fp = slot_bytes(w, options_.window_bytes_per_element);
  p.s_bp = slot_bytes(w, options_.window_bytes_per_element);
  p.t_opt_gpu = sim::block_params(w.model) / w.model.model_parallel /
                calib::kGpuAdamParamsPerS;
  const double cpu_rate =
      options_.concurrent_update
          ? machine.cpu.adam_params_per_core_s *
                static_cast<double>(machine.cpu.cores)
          : calib::kZeroCpuAdamParamsPerS;
  p.t_opt_cpu = sim::block_params(w.model) / w.model.model_parallel / cpu_rate;
  if (moment_tier_only(options_)) {
    // Each update pages the layer's moments through the tier: one prefetch
    // read plus one write-back at the per-direction effective bandwidth.
    const double tier_rate = machine.nvme_bytes_per_s * kNvmeDirEfficiency;
    p.t_opt_io =
        2.0 * (block_moment_bytes(w) / tier_rate + kNvmeLatencyS);
  }

  core::WindowModelInput input;
  input.layers.assign(static_cast<std::size_t>(w.model.layers), p);
  input.s_avail = machine.gpu.mem_bytes - pinned_bytes(w) -
                  sim::working_activation_bytes(w.model, w.batch) -
                  machine.gpu.runtime_reserved_bytes;
  input.t_async = machine.async_call_overhead_s;
  return input;
}

core::WindowDecision StrongholdStrategy::window_decision(
    const Workload& w, const sim::MachineSpec& machine) const {
  const int streams = stream_count(w, machine);
  auto input = build_model_input(w, machine, streams);
  auto d = core::solve_window(input);
  if (options_.fixed_window != 0) {
    d.m = std::min<std::size_t>(options_.fixed_window,
                                static_cast<std::size_t>(w.model.layers));
  }
  return d;
}

IterationReport StrongholdStrategy::iteration(const Workload& w,
                                              const sim::MachineSpec& machine,
                                              sim::Trace* trace) const {
  const int streams = stream_count(w, machine);
  const auto input = build_model_input(w, machine, streams);
  auto decision = core::solve_window(input);
  const std::size_t m =
      options_.fixed_window != 0
          ? std::min<std::size_t>(options_.fixed_window,
                                  static_cast<std::size_t>(w.model.layers))
          : std::max<std::size_t>(decision.m, 1);

  // Build the pipelined schedule: the GPU stream computes layer after layer;
  // the h2d link prefetches layer i+m while layer i computes; the d2h link
  // drains gradients; CPU lanes run the concurrent optimizer actors.
  sim::Timeline gpu("gpu");
  const double link_bw =
      machine.pcie_bytes_per_s * calib::kStrongholdLinkEfficiency;
  sim::BandwidthLink h2d("h2d", link_bw, machine.pcie_latency_s);
  sim::BandwidthLink d2h("d2h", link_bw, machine.pcie_latency_s);
  // Separate read/write queues: STRONGHOLD prioritises prefetch reads over
  // state write-backs, so a lagging write never blocks the fetch pipeline
  // (each direction modelled at ~70% of the device's sequential bandwidth).
  sim::BandwidthLink nvme("nvme-read",
                          machine.nvme_bytes_per_s * kNvmeDirEfficiency,
                          kNvmeLatencyS);
  sim::BandwidthLink nvme_wr("nvme-write",
                             machine.nvme_bytes_per_s * kNvmeDirEfficiency,
                             kNvmeLatencyS);
  const bool tier_opt = moment_tier_only(options_);
  const double moment_bytes = tier_opt ? block_moment_bytes(w) : 0.0;
  // With the optimizer tier, out-of-window activation checkpoints spill to
  // NVMe as well (the tier's second client): spilled on leaving the FP
  // window, restored on the BP refetch path ahead of the recompute.
  const double spill_bytes =
      tier_opt ? sim::checkpoint_bytes(w.model, w.batch) : 0.0;
  const std::size_t opt_lanes =
      options_.concurrent_update
          ? static_cast<std::size_t>(std::max(machine.cpu.cores / 2, 1))
          : 1;
  sim::LanePool cpu("cpu-opt", opt_lanes);

  const auto n = static_cast<std::size_t>(w.model.layers);
  const double move_bytes =
      sim::block_param_bytes(w.model, options_.window_bytes_per_element) +
      sim::checkpoint_bytes(w.model, w.batch);
  // Without user-level memory management (Section III-E3) buffers cannot be
  // pinned and reused: every move pays per-tensor CUDA (de)allocations with
  // implicit synchronisation, and the copies are effectively synchronous
  // (no compute/transfer overlap).
  const bool pinned_io = options_.user_level_memory;
  const double alloc_penalty = pinned_io ? 0.0 : 12.0 * 1.0e-3;

  const auto& prof = input.layers.front();

  // With multiple streams, one stream's synchronous stalls overlap another
  // stream's compute, so non-overlapped costs amortise across streams.
  const double div = static_cast<double>(std::max(streams, 1));
  sim::Time t = 0.0;
  std::vector<sim::Time> compute_start(n, 0.0);
  // FP: layers 1..m are resident from the previous iteration (III-E1); the
  // fetch of layer i is issued by the pre-forward hook of layer i-m
  // (Fig. 3b), which is what bounds the achievable lookahead at small m.
  for (std::size_t i = 0; i < n; ++i) {
    sim::Time fetched_at = 0.0;
    double work = prof.t_fp;
    if (i >= m) {
      if (pinned_io) {
        const sim::Time issue = compute_start[i - m];
        sim::Interval host = options_.use_nvme
                                 ? nvme.transfer(issue, move_bytes)
                                 : sim::Interval{issue, issue};
        if (trace != nullptr && options_.use_nvme) {
          trace->record("nvme", "r", host);
        }
        const auto xfer = h2d.transfer(host.end, move_bytes);
        if (trace != nullptr) trace->record("h2d", "p", xfer);
        fetched_at = xfer.end;
      } else {
        work += prof.t_c2g / div;  // synchronous fetch
      }
    }
    if (!pinned_io) work += alloc_penalty / div;
    const auto iv = gpu.acquire(std::max(t, fetched_at), work);
    compute_start[i] = iv.start;
    if (trace != nullptr) trace->record("gpu", "f", iv);
    t = iv.end;
    if (tier_opt && pinned_io && i + m < n) {
      // The layer's fresh activation checkpoint spills to the tier when the
      // layer leaves the FP window.
      const auto siv = nvme_wr.transfer(iv.end, spill_bytes);
      if (trace != nullptr) trace->record("nvme", "s", siv);
    }
  }
  // Head compute.
  {
    const auto iv =
        gpu.acquire(t, detail::t_head_total(w, machine.gpu) *
                           detail::bubble_multiplier(machine.gpu, streams));
    if (trace != nullptr) trace->record("gpu", "h", iv);
    t = iv.end;
  }
  // BP: walk layers in reverse; refetch those evicted during FP (all except
  // the last m, which are still resident), drain gradients, update on CPU.
  sim::Time bp_start = t;
  const double nvme_write_s =
      options_.use_nvme ? nvme_wr.seconds_for(move_bytes * 4.0) : 0.0;
  std::vector<sim::Time> bp_compute_start(n, bp_start);
  for (std::size_t k = 0; k < n; ++k) {
    sim::Time ready = bp_start;
    double work = prof.t_bp;
    if (!pinned_io) work += alloc_penalty / div;
    if (k >= m) {  // the layer was evicted during FP and needs a refetch,
                   // issued by the pre-backward hook m layers ahead (Fig. 3c)
      if (pinned_io) {
        const sim::Time issue = bp_compute_start[k - m];
        sim::Interval host{issue, issue};
        if (options_.use_nvme) {
          host = nvme.transfer(issue, move_bytes);
          if (trace != nullptr) trace->record("nvme", "r", host);
        } else if (tier_opt) {
          // Restore the spilled activation checkpoint ahead of the recompute.
          host = nvme.transfer(issue, spill_bytes);
          if (trace != nullptr) trace->record("nvme", "r", host);
        }
        const auto xfer = h2d.transfer(host.end, move_bytes);
        if (trace != nullptr) trace->record("h2d", "p", xfer);
        ready = xfer.end;
      } else {
        work += prof.t_c2g / div;  // synchronous fetch
      }
    }
    const auto iv = gpu.acquire(std::max(t, ready), work);
    bp_compute_start[k] = iv.start;
    if (trace != nullptr) trace->record("gpu", "b", iv);
    t = iv.end;
    // Gradient offload + optimizer + NVMe write-back.
    if (pinned_io) {
      const auto giv = d2h.transfer(iv.end, move_bytes);
      if (trace != nullptr) trace->record("d2h", "g", giv);
      sim::Time opt_ready = giv.end;
      if (tier_opt) {
        // Moment prefetch issued when the layer's backward starts (the
        // engine's BP hook), overlapping the compute and gradient drain;
        // the update cannot begin until the moments arrive.
        const auto miv = nvme.transfer(iv.start, moment_bytes);
        if (trace != nullptr) trace->record("nvme", "m", miv);
        opt_ready = std::max(opt_ready, miv.end);
      }
      const auto oiv = cpu.acquire(opt_ready, prof.t_opt_cpu);
      if (trace != nullptr) trace->record("cpu", "o", oiv);
      if (options_.use_nvme) {
        const auto wiv =
            nvme_wr.transfer(oiv.end, move_bytes * 4.0);  // p+m+v+g
        if (trace != nullptr) trace->record("nvme", "w", wiv);
      } else if (tier_opt) {
        const auto wiv = nvme_wr.transfer(oiv.end, moment_bytes);
        if (trace != nullptr) trace->record("nvme", "w", wiv);
      }
    } else {
      // Unpinned buffers: the gradient drain is synchronous on the GPU.
      const auto giv = gpu.acquire(t, prof.t_g2c / div);
      if (trace != nullptr) trace->record("gpu", "g", giv);
      t = giv.end;
      if (options_.concurrent_update) {
        // Actors still take the update (and tier write-back) off the
        // critical path even when the transfers are synchronous.
        sim::Time opt_ready = giv.end;
        if (tier_opt) {
          opt_ready = std::max(
              opt_ready, nvme.transfer(giv.end, moment_bytes).end);
        }
        const auto oiv = cpu.acquire(opt_ready, prof.t_opt_cpu);
        if (trace != nullptr) trace->record("cpu", "o", oiv);
        if (options_.use_nvme) nvme_wr.transfer(oiv.end, move_bytes * 4.0);
        if (tier_opt) nvme_wr.transfer(oiv.end, moment_bytes);
      } else {
        // Single optimizer fully serialized with the step, including any
        // tier moment paging (t_opt_io) when the optimizer tier is on.
        const auto oiv =
            gpu.acquire(t, prof.t_opt_cpu + nvme_write_s + prof.t_opt_io);
        if (trace != nullptr) trace->record("cpu", "o", oiv);
        t = oiv.end;
      }
    }
  }
  // The iteration ends when the GPU finishes and the updates for the layers
  // needed at the start of the next FP are visible; with the first window
  // updated in place on the GPU, the GPU timeline dominates unless the CPU
  // actors or the tier lag behind (Eq. 3).
  double end = gpu.busy_until();
  end = std::max(end, cpu.busy_until() - prof.t_fp * static_cast<double>(m));
  if (options_.use_nvme || tier_opt) {
    const double tier_end =
        std::max(nvme.timeline().busy_until(), nvme_wr.timeline().busy_until());
    end = std::max(end, tier_end - prof.t_fp * static_cast<double>(m));
  }
  // Async hook overhead: 5 asynchronous calls per layer per iteration
  // (2 in FP, 3 in BP; Section III-D).
  end += 5.0 * static_cast<double>(n) * machine.async_call_overhead_s;

  return detail::make_report(w, end, m);
}

}  // namespace sh::baselines

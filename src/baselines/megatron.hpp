// Megatron-LM [37]: NVIDIA's optimized Transformer training library. All
// model states live in GPU memory; no offloading. The throughput reference
// and capacity floor of the paper's evaluation.
#pragma once

#include "baselines/strategy.hpp"

namespace sh::baselines {

class MegatronStrategy final : public Strategy {
 public:
  std::string name() const override { return "Megatron-LM"; }
  CapacityReport capacity(const Workload& w,
                          const sim::MachineSpec& machine) const override;
  IterationReport iteration(const Workload& w, const sim::MachineSpec& machine,
                            sim::Trace* trace) const override;
};

}  // namespace sh::baselines

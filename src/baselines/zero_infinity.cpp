#include "baselines/zero_infinity.hpp"

#include "baselines/calibration.hpp"
#include "baselines/timing.hpp"

namespace sh::baselines {

CapacityReport ZeroInfinityStrategy::capacity(
    const Workload& w, const sim::MachineSpec& machine) const {
  CapacityReport r;
  const double params = sim::total_params(w.model) / w.model.model_parallel;
  const double act =
      w.checkpoint_activations
          ? sim::activation_bytes_checkpointed(w.model, w.batch)
          : sim::activation_bytes_full(w.model, w.batch);
  // GPU: two gathered layers plus the refactoring copy of each, activations.
  r.gpu_bytes = 4.0 * sim::block_window_bytes(w.model) + act +
                machine.gpu.runtime_reserved_bytes;
  const double state = sim::kStateBytesPerParam * params *
                       calib::kZeroInfinityCpuOverhead;
  if (tier_ == Tier::Cpu) {
    r.cpu_bytes = state;
  } else {
    r.nvme_bytes = state;
    r.cpu_bytes = 0.1 * state;  // staging buckets
  }
  if (r.gpu_bytes > machine.gpu.mem_bytes) {
    r.limiter = "gpu";
  } else if (r.cpu_bytes > machine.cpu.offload_ram_limit_bytes) {
    r.limiter = "cpu";
  } else if (r.nvme_bytes > machine.nvme_bytes) {
    r.limiter = "nvme";
  } else {
    r.fits = true;
  }
  return r;
}

IterationReport ZeroInfinityStrategy::iteration(const Workload& w,
                                                const sim::MachineSpec& machine,
                                                sim::Trace* trace) const {
  const double params = sim::total_params(w.model) / w.model.model_parallel;
  const double compute = detail::t_compute_iteration(w, machine.gpu);
  const double cpu_adam = params / calib::kZeroCpuAdamParamsPerS;

  double transfer;
  if (tier_ == Tier::Cpu) {
    // Parameters gathered for FP and again for BP, gradients offloaded:
    // 12 B/param over PCIe, with shallow prefetch hiding only a fraction.
    const double traffic = 12.0 * params;
    transfer = (1.0 - calib::kZeroInfinityOverlap) * traffic /
               machine.pcie_bytes_per_s;
  } else {
    // NVMe tier: parameters read twice, gradients written, optimizer state
    // read + written (28 B/param) at the collapsed small-block rate.
    const double traffic = 28.0 * params;
    transfer = traffic / calib::kZeroInfinityNvmeBytesPerS;
  }
  const double total = compute + transfer + cpu_adam;
  if (trace != nullptr) {
    trace->record("gpu", "c", {0.0, compute});
    trace->record(tier_ == Tier::Cpu ? "pcie" : "nvme", "t",
                  {compute, compute + transfer});
    trace->record("cpu", "o", {compute + transfer, total});
  }
  return detail::make_report(w, total);
}

}  // namespace sh::baselines

// ZeRO-Infinity [19]: fine-grained parameter partitioning across the memory
// hierarchy (GPU / CPU RAM / optionally NVMe). Layers are gathered on demand
// with limited prefetch depth; runtime model refactoring keeps an extra GPU
// copy of gathered parameters.
#pragma once

#include "baselines/strategy.hpp"

namespace sh::baselines {

class ZeroInfinityStrategy final : public Strategy {
 public:
  enum class Tier { Cpu, Nvme };

  explicit ZeroInfinityStrategy(Tier tier = Tier::Cpu) : tier_(tier) {}

  std::string name() const override {
    return tier_ == Tier::Cpu ? "ZeRO-Infinity" : "ZeRO-Infinity(NVMe)";
  }
  CapacityReport capacity(const Workload& w,
                          const sim::MachineSpec& machine) const override;
  IterationReport iteration(const Workload& w, const sim::MachineSpec& machine,
                            sim::Trace* trace) const override;

  Tier tier() const noexcept { return tier_; }

 private:
  Tier tier_;
};

}  // namespace sh::baselines

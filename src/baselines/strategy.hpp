// Common interface of the training-strategy simulators.
//
// Each strategy answers two questions for a (model, batch) workload on a
// machine: does it fit (memory plan), and how long is one training iteration
// (schedule built on sim::Timeline resources). These are exactly the two
// metrics of the paper's evaluation — largest trainable size and throughput.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/hardware.hpp"
#include "sim/trace.hpp"

namespace sh::baselines {

struct Workload {
  sim::ModelSpec model;
  double batch = 4.0;  // per-GPU batch size
  bool checkpoint_activations = true;
};

/// Memory plan verdict.
struct CapacityReport {
  bool fits = false;
  double gpu_bytes = 0.0;
  double cpu_bytes = 0.0;
  double nvme_bytes = 0.0;
  std::string limiter;  // which budget failed (empty when fits)
  /// GPU footprint broken down by mem::DeviceArena region convention
  /// (window / kv / activations / workspace). Strategies that fill it make
  /// the components sum to gpu_bytes; left zero otherwise.
  struct GpuRegions {
    double window = 0.0;       // pinned layers + working-window slots
    double kv = 0.0;           // serving KV state (0 for pure training)
    double activations = 0.0;  // transient working activations
    double workspace = 0.0;    // runtime reserved / framework overhead
  };
  GpuRegions gpu_regions{};
};

/// One simulated training iteration.
struct IterationReport {
  double seconds = 0.0;
  double throughput = 0.0;      // samples / second
  double achieved_flops = 0.0;  // useful FLOPs / second
  std::size_t window = 0;       // STRONGHOLD window (0 for others)
};

class Strategy {
 public:
  virtual ~Strategy() = default;

  virtual std::string name() const = 0;

  /// Memory plan for the workload on one machine (model_parallel shards are
  /// already reflected in the ModelSpec).
  virtual CapacityReport capacity(const Workload& w,
                                  const sim::MachineSpec& machine) const = 0;

  /// Simulates one training iteration. A non-null `trace` receives the
  /// schedule spans (Figure 4 style).
  virtual IterationReport iteration(const Workload& w,
                                    const sim::MachineSpec& machine,
                                    sim::Trace* trace = nullptr) const = 0;
};

/// Sweeps the layer count at fixed hidden size to find the largest trainable
/// parameter count (in billions) on the machine — the Fig. 6 methodology
/// (grow the model until OOM).
double largest_trainable_billions(const Strategy& strategy,
                                  const sim::MachineSpec& machine,
                                  std::int64_t hidden, int model_parallel,
                                  double batch, std::int64_t max_layers = 4096);

/// All strategies of the single-GPU comparison, in paper order.
std::vector<std::unique_ptr<Strategy>> single_gpu_lineup();

}  // namespace sh::baselines

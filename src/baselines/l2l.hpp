// L2L [18]: keeps one Transformer block in GPU memory at a time, moving
// parameters synchronously between CPU and GPU; optimizer states remain on
// the GPU, which caps its trainable size at roughly GPU_mem / opt_bytes.
#pragma once

#include "baselines/strategy.hpp"

namespace sh::baselines {

class L2lStrategy final : public Strategy {
 public:
  std::string name() const override { return "L2L"; }
  CapacityReport capacity(const Workload& w,
                          const sim::MachineSpec& machine) const override;
  IterationReport iteration(const Workload& w, const sim::MachineSpec& machine,
                            sim::Trace* trace) const override;
};

}  // namespace sh::baselines

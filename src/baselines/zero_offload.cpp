#include "baselines/zero_offload.hpp"

#include <algorithm>

#include "baselines/calibration.hpp"
#include "baselines/timing.hpp"

namespace sh::baselines {

CapacityReport ZeroOffloadStrategy::capacity(
    const Workload& w, const sim::MachineSpec& machine) const {
  CapacityReport r;
  const double params = sim::total_params(w.model) / w.model.model_parallel;
  const double act =
      w.checkpoint_activations
          ? sim::activation_bytes_checkpointed(w.model, w.batch)
          : sim::activation_bytes_full(w.model, w.batch);
  r.gpu_bytes = sim::kF32 * params + act + machine.gpu.runtime_reserved_bytes;
  // Gradients (4 B) + Adam moments (8 B) per parameter on the host.
  r.cpu_bytes = 12.0 * params;
  if (r.gpu_bytes > machine.gpu.mem_bytes) {
    r.limiter = "gpu";
  } else if (r.cpu_bytes > machine.cpu.offload_ram_limit_bytes) {
    r.limiter = "cpu";
  } else {
    r.fits = true;
  }
  return r;
}

IterationReport ZeroOffloadStrategy::iteration(const Workload& w,
                                               const sim::MachineSpec& machine,
                                               sim::Trace* trace) const {
  const double params = sim::total_params(w.model) / w.model.model_parallel;
  const double compute = detail::t_compute_iteration(w, machine.gpu);
  // Gradients stream to the CPU during BP, partially overlapped.
  const double grads_d2h = sim::kF32 * params / machine.pcie_bytes_per_s;
  const double exposed_d2h = (1.0 - calib::kZeroOffloadOverlap) * grads_d2h;
  // Single CPU optimizer process on the critical path (the paper's main
  // explanation for the <57% relative throughput).
  const double cpu_adam = params / calib::kZeroCpuAdamParamsPerS;
  // Updated parameters return to the GPU before the next iteration.
  const double params_c2g = sim::kF32 * params / machine.pcie_bytes_per_s;
  const double total = compute + exposed_d2h + cpu_adam + params_c2g;
  if (trace != nullptr) {
    trace->record("gpu", "c", {0.0, compute});
    trace->record("pcie", "g", {compute * 0.5, compute * 0.5 + grads_d2h});
    trace->record("cpu", "o", {compute + exposed_d2h,
                               compute + exposed_d2h + cpu_adam});
    trace->record("pcie", "p", {total - params_c2g, total});
  }
  return detail::make_report(w, total);
}

}  // namespace sh::baselines

// STRONGHOLD's strategy adapter for the performance simulator.
//
// Uses the same analytical window model (core::solve_window) as the numeric
// engine, fed with simulated per-layer compute and transfer times, then
// builds the overlapped schedule on Timeline resources. Option toggles
// reproduce the Figure 14 ablation (concurrent update, user-level memory
// management, multi-streamed execution) and the NVMe tier (Section III-G).
#pragma once

#include "baselines/strategy.hpp"
#include "core/window_model.hpp"

namespace sh::baselines {

struct StrongholdOptions {
  bool concurrent_update = true;   // Section III-E1 (+ heterogeneous comms)
  bool user_level_memory = true;   // Section III-E3
  bool multi_stream = true;        // Section IV-A
  bool use_nvme = false;           // Section III-G
  /// Models SH_OPT_TIER=nvme: only the Adam moments (8 B/param) live on the
  /// NVMe tier while the FP32 masters (params + grads) stay in CPU RAM.
  /// Each CPU update then pages its layer's moments through the tier
  /// (LayerProfile::t_opt_io). Orthogonal to `use_nvme`, which moves the
  /// whole 4 B/param FP16 state to the device; setting both keeps the
  /// `use_nvme` accounting (moments are already on the tier there).
  bool nvme_optimizer_tier = false;
  std::size_t fixed_window = 0;    // 0 = analytical model (Section III-D)
  /// Bytes per element of the GPU working window / CPU<->GPU wire format
  /// (sim::kF32 default; sim::kBf16 models a BF16 window over FP32 masters —
  /// halves slot and transfer bytes, leaves CPU-side state untouched).
  double window_bytes_per_element = sim::kF32;
};

class StrongholdStrategy final : public Strategy {
 public:
  explicit StrongholdStrategy(StrongholdOptions options = {})
      : options_(options) {}

  std::string name() const override {
    if (options_.use_nvme) return "STRONGHOLD(NVMe)";
    if (options_.nvme_optimizer_tier) return "STRONGHOLD(NVMe-opt)";
    return "STRONGHOLD";
  }
  CapacityReport capacity(const Workload& w,
                          const sim::MachineSpec& machine) const override;
  IterationReport iteration(const Workload& w, const sim::MachineSpec& machine,
                            sim::Trace* trace) const override;

  /// The window the analytical model selects for this workload/machine.
  core::WindowDecision window_decision(const Workload& w,
                                       const sim::MachineSpec& machine) const;

  /// Concurrent streams the runtime can afford (Section IV-A warm-up check).
  int stream_count(const Workload& w, const sim::MachineSpec& machine) const;

  const StrongholdOptions& options() const noexcept { return options_; }

 private:
  core::WindowModelInput build_model_input(const Workload& w,
                                           const sim::MachineSpec& machine,
                                           int streams) const;

  StrongholdOptions options_;
};

}  // namespace sh::baselines

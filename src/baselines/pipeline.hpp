// GPipe-style pipeline parallelism [7] — the third classic multi-GPU
// strategy the paper positions against (Section II-A / VII). Layers are
// split into sequential stages across devices; each batch is divided into
// micro-batches flowing through the pipeline, with the classic (p-1)/m
// bubble overhead and per-stage activation stashing.
#pragma once

#include "baselines/strategy.hpp"

namespace sh::baselines {

class PipelineStrategy final : public Strategy {
 public:
  /// `stages` devices in the pipeline, `micro_batches` per global batch.
  PipelineStrategy(int stages, int micro_batches)
      : stages_(stages), micro_batches_(micro_batches) {}

  std::string name() const override { return "Pipeline(GPipe)"; }

  /// Per-device memory plan: a stage holds layers/stages of the model plus
  /// activation stashes for every in-flight micro-batch.
  CapacityReport capacity(const Workload& w,
                          const sim::MachineSpec& machine) const override;

  /// One iteration: per-stage compute with the pipeline-fill bubble and
  /// inter-stage activation transfers.
  IterationReport iteration(const Workload& w, const sim::MachineSpec& machine,
                            sim::Trace* trace) const override;

  int stages() const noexcept { return stages_; }
  int micro_batches() const noexcept { return micro_batches_; }

  /// Classic GPipe bubble fraction: (p - 1) / (m + p - 1).
  double bubble_fraction() const noexcept {
    return static_cast<double>(stages_ - 1) /
           static_cast<double>(micro_batches_ + stages_ - 1);
  }

 private:
  int stages_;
  int micro_batches_;
};

}  // namespace sh::baselines

#include "baselines/pipeline.hpp"

#include <stdexcept>

#include "baselines/calibration.hpp"
#include "baselines/timing.hpp"

namespace sh::baselines {

CapacityReport PipelineStrategy::capacity(const Workload& w,
                                          const sim::MachineSpec& machine) const {
  if (stages_ < 1 || micro_batches_ < 1) {
    throw std::invalid_argument("PipelineStrategy: stages/micro_batches >= 1");
  }
  CapacityReport r;
  // A stage owns 1/stages of the layers (full state, no sharding within the
  // stage) and stashes the stage-input activations of every in-flight
  // micro-batch (GPipe re-materialises the rest).
  const double micro = w.batch / micro_batches_;
  const double stage_state = sim::total_state_bytes(w.model) / stages_;
  const double stash = static_cast<double>(micro_batches_) *
                       sim::checkpoint_bytes(w.model, micro);
  const double act = sim::working_activation_bytes(w.model, micro) +
                     sim::activation_bytes_checkpointed(w.model, micro) /
                         stages_;
  r.gpu_bytes =
      stage_state + stash + act + machine.gpu.runtime_reserved_bytes;
  r.fits = r.gpu_bytes <= machine.gpu.mem_bytes;
  if (!r.fits) r.limiter = "gpu";
  return r;
}

IterationReport PipelineStrategy::iteration(const Workload& w,
                                            const sim::MachineSpec& machine,
                                            sim::Trace* trace) const {
  const double micro = w.batch / micro_batches_;
  // Per-stage compute for one micro-batch (layers split evenly).
  Workload stage_w = w;
  stage_w.batch = micro;
  const double stage_compute =
      detail::t_compute_iteration(stage_w, machine.gpu) / stages_ +
      detail::t_head_total(stage_w, machine.gpu) *
          detail::bubble_multiplier(machine.gpu) * 0.0;  // head in last stage
  // Inter-stage activation transfer per micro-batch boundary.
  const double act_bytes = sim::kF32 * micro *
                           static_cast<double>(w.model.seq) *
                           static_cast<double>(w.model.hidden);
  const double hop = act_bytes / machine.pcie_bytes_per_s;

  // GPipe schedule: m micro-batches through p stages; makespan =
  // (m + p - 1) * (stage time + hop) for FP+BP combined (already folded into
  // stage_compute), plus the optimizer.
  const double slot = stage_compute + hop;
  const double makespan =
      static_cast<double>(micro_batches_ + stages_ - 1) * slot;
  const double opt = sim::total_params(w.model) / stages_ /
                     calib::kGpuAdamParamsPerS;
  const double total = makespan + opt;
  if (trace != nullptr) {
    for (int s = 0; s < stages_; ++s) {
      const double start = s * slot;
      trace->record("stage" + std::to_string(s), "c",
                    {start, start + micro_batches_ * slot});
    }
  }
  return detail::make_report(w, total);
}

}  // namespace sh::baselines

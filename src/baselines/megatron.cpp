#include "baselines/megatron.hpp"

#include "baselines/calibration.hpp"
#include "baselines/timing.hpp"

namespace sh::baselines {

CapacityReport MegatronStrategy::capacity(const Workload& w,
                                          const sim::MachineSpec& machine) const {
  CapacityReport r;
  const double act =
      w.checkpoint_activations
          ? sim::activation_bytes_checkpointed(w.model, w.batch)
          : sim::activation_bytes_full(w.model, w.batch);
  r.gpu_bytes = sim::total_state_bytes(w.model) + act +
                machine.gpu.runtime_reserved_bytes;
  r.fits = r.gpu_bytes <= machine.gpu.mem_bytes;
  if (!r.fits) r.limiter = "gpu";
  return r;
}

IterationReport MegatronStrategy::iteration(const Workload& w,
                                            const sim::MachineSpec& machine,
                                            sim::Trace* trace) const {
  const double compute = detail::t_compute_iteration(w, machine.gpu);
  const double opt = sim::total_params(w.model) / w.model.model_parallel /
                     calib::kGpuAdamParamsPerS;
  const double total = compute + opt;
  if (trace != nullptr) {
    trace->record("gpu", "c", {0.0, compute});
    trace->record("gpu", "o", {compute, total});
  }
  return detail::make_report(w, total);
}

}  // namespace sh::baselines

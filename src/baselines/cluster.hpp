// Distributed placements on the A10 cluster (Sections VI-A2, VI-B, VI-D2).
//
// Two modes are evaluated by the paper:
//  * 8-way model parallelism (Figs. 6b, 7b): every strategy shards each
//    layer across the nodes and pays per-layer activation all-reduces.
//  * Data parallelism (Fig. 12): ZeRO-2/3 shard states across DP ranks and
//    pay gradient/parameter collectives; STRONGHOLD instead fits the whole
//    model per node via offloading and pays one overlapped gradient
//    all-reduce (Section III-F).
#pragma once

#include "baselines/strategy.hpp"

namespace sh::baselines {

/// Memory plan of `strategy` under cluster-wide model parallelism. The
/// Workload's ModelSpec must carry model_parallel == cluster.num_nodes.
CapacityReport cluster_capacity_mp(const Strategy& strategy, const Workload& w,
                                   const sim::ClusterSpec& cluster);

/// One iteration under cluster-wide model parallelism: the node-local
/// schedule plus per-layer tensor-parallel activation all-reduces.
/// STRONGHOLD's heterogeneous collectives overlap most of that traffic
/// (Section III-E2); the other strategies pay it serially.
IterationReport cluster_iteration_mp(const Strategy& strategy,
                                     const Workload& w,
                                     const sim::ClusterSpec& cluster,
                                     bool overlaps_collectives);

/// Largest trainable size (billions) under cluster-wide MP, sweeping layers.
double largest_trainable_billions_cluster(const Strategy& strategy,
                                          const sim::ClusterSpec& cluster,
                                          std::int64_t hidden, double batch,
                                          std::int64_t max_layers = 8192);

/// ZeRO-2 / ZeRO-3 [9] data-parallel sharding across the cluster.
class ZeroDpStrategy final : public Strategy {
 public:
  enum class Stage { Two, Three };

  ZeroDpStrategy(Stage stage, const sim::ClusterSpec& cluster)
      : stage_(stage), cluster_(cluster) {}

  std::string name() const override {
    return stage_ == Stage::Two ? "ZeRO-2" : "ZeRO-3";
  }
  /// Per-node memory plan with states sharded across num_nodes DP ranks.
  CapacityReport capacity(const Workload& w,
                          const sim::MachineSpec& node) const override;
  /// Per-iteration time including the cross-server collectives.
  IterationReport iteration(const Workload& w, const sim::MachineSpec& node,
                            sim::Trace* trace) const override;

 private:
  Stage stage_;
  sim::ClusterSpec cluster_;
};

/// STRONGHOLD running data parallelism across the cluster: the full model
/// fits on every node through offloading; gradients are all-reduced once,
/// overlapped with the backward pass.
IterationReport stronghold_dp_iteration(const Workload& w,
                                        const sim::ClusterSpec& cluster);

}  // namespace sh::baselines

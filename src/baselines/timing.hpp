// Shared timing helpers for the strategy simulators.
#pragma once

#include "baselines/strategy.hpp"
#include "sim/cost_model.hpp"
#include "sim/hardware.hpp"

namespace sh::baselines::detail {

/// Kernel-level forward seconds of one block shard on a single stream. The
/// dense GEMMs and the thin attention score/context kernels run at different
/// measured efficiencies (re-fit against BENCH_kernels.json), so their FLOP
/// shares are priced separately.
inline double t_fwd_block(const Workload& w, const sim::GpuSpec& gpu) {
  const double attn = sim::block_attn_fwd_flops(w.model, w.batch);
  const double dense = sim::block_fwd_flops(w.model, w.batch) - attn;
  return dense / gpu.effective_flops(w.batch) +
         attn / gpu.effective_attention_flops(w.batch);
}

/// Kernel-level backward seconds (incl. recompute when checkpointing).
/// Backward FLOPs are a uniform multiple of forward FLOPs (2x, +1x when
/// recomputing), so the dense/attention split carries over unchanged.
inline double t_bwd_block(const Workload& w, const sim::GpuSpec& gpu) {
  return (w.checkpoint_activations ? 3.0 : 2.0) * t_fwd_block(w, gpu);
}

/// Kernel-level head (embedding projection) seconds for a full iteration
/// (forward + backward, ~3x forward FLOPs).
inline double t_head_total(const Workload& w, const sim::GpuSpec& gpu) {
  return 3.0 * sim::head_fwd_flops(w.model, w.batch) /
         gpu.effective_flops(w.batch);
}

/// End-to-end multiplier of per-kernel bubbles (launch gaps, dependency
/// stalls). `streams` concurrent CUDA streams fill each other's bubbles.
inline double bubble_multiplier(const sim::GpuSpec& gpu, int streams = 1) {
  return 1.0 + gpu.bubble_ratio / static_cast<double>(streams);
}

/// Pure GPU compute seconds of one iteration on `streams` streams.
inline double t_compute_iteration(const Workload& w, const sim::GpuSpec& gpu,
                                  int streams = 1) {
  const double kernels =
      static_cast<double>(w.model.layers) *
          (t_fwd_block(w, gpu) + t_bwd_block(w, gpu)) +
      t_head_total(w, gpu);
  return kernels * bubble_multiplier(gpu, streams);
}

/// Fills the throughput/TFLOPS fields from an iteration time.
inline IterationReport make_report(const Workload& w, double seconds,
                                   std::size_t window = 0) {
  IterationReport r;
  r.seconds = seconds;
  r.throughput = w.batch / seconds;
  r.achieved_flops =
      sim::iteration_flops(w.model, w.batch, w.checkpoint_activations) /
      seconds;
  r.window = window;
  return r;
}

}  // namespace sh::baselines::detail

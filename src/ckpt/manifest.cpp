#include "ckpt/manifest.hpp"

#include <cstring>
#include <fstream>

namespace sh::ckpt {

namespace {
constexpr std::uint64_t kMagic = 0x314d46544b504843ULL;  // "CHPKTFM1"
constexpr std::uint32_t kVersion = 1;

void append_bytes(std::vector<std::uint8_t>& out, const void* p,
                  std::size_t n) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  out.insert(out.end(), b, b + n);
}

template <typename T>
void append_pod(std::vector<std::uint8_t>& out, const T& v) {
  append_bytes(out, &v, sizeof(T));
}

void append_string(std::vector<std::uint8_t>& out, const std::string& s) {
  append_pod(out, static_cast<std::uint32_t>(s.size()));
  append_bytes(out, s.data(), s.size());
}

/// Bounds-checked cursor over the manifest bytes; running off the end is the
/// "truncated manifest" failure mode.
struct Reader {
  const std::uint8_t* p;
  std::size_t left;
  const std::string& path;

  void take(void* out, std::size_t n) {
    if (n > left) {
      throw RestoreError(RestoreErrorKind::Truncated,
                         "ckpt: truncated manifest " + path);
    }
    std::memcpy(out, p, n);
    p += n;
    left -= n;
  }

  template <typename T>
  T pod() {
    T v;
    take(&v, sizeof(T));
    return v;
  }

  std::string str() {
    const auto n = pod<std::uint32_t>();
    std::string s(n, '\0');
    take(s.data(), n);
    return s;
  }
};
}  // namespace

void write_manifest(const std::string& path, const Manifest& m) {
  std::vector<std::uint8_t> buf;
  append_pod(buf, kMagic);
  append_pod(buf, kVersion);
  append_pod(buf, m.step);
  append_pod(buf, static_cast<std::uint32_t>(m.blobs.entries.size()));
  for (const auto& [name, payload] : m.blobs.entries) {
    append_string(buf, name);
    append_pod(buf, static_cast<std::uint64_t>(payload.size()));
    append_bytes(buf, payload.data(), payload.size());
  }
  append_pod(buf, static_cast<std::uint32_t>(m.tensors.size()));
  for (const auto& t : m.tensors) {
    append_string(buf, t.name);
    append_pod(buf, t.count);
    append_pod(buf, t.offset);
    append_pod(buf, t.checksum);
  }
  append_pod(buf, checksum_bytes(buf.data(), buf.size()));

  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("ckpt: cannot open " + path);
  os.write(reinterpret_cast<const char*>(buf.data()),
           static_cast<std::streamsize>(buf.size()));
  if (!os) throw std::runtime_error("ckpt: manifest write failed for " + path);
}

Manifest read_manifest(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw RestoreError(RestoreErrorKind::MissingFile,
                       "ckpt: cannot open manifest " + path);
  }
  std::vector<std::uint8_t> buf((std::istreambuf_iterator<char>(is)),
                                std::istreambuf_iterator<char>());
  if (buf.size() < sizeof(std::uint64_t)) {
    throw RestoreError(RestoreErrorKind::Truncated,
                       "ckpt: truncated manifest " + path);
  }
  // Verify the trailing self-checksum before trusting any field.
  std::uint64_t declared;
  std::memcpy(&declared, buf.data() + buf.size() - sizeof(declared),
              sizeof(declared));
  const std::uint64_t actual =
      checksum_bytes(buf.data(), buf.size() - sizeof(declared));
  if (declared != actual) {
    // A short file almost always fails here too; distinguish truncation from
    // in-place corruption below once the header parses.
    Reader probe{buf.data(), buf.size() - sizeof(declared), path};
    try {
      if (probe.pod<std::uint64_t>() != kMagic) {
        throw RestoreError(RestoreErrorKind::BadMagic,
                           "ckpt: bad manifest magic in " + path);
      }
    } catch (const RestoreError& e) {
      if (e.kind() == RestoreErrorKind::BadMagic) throw;
    }
    throw RestoreError(RestoreErrorKind::ChecksumMismatch,
                       "ckpt: manifest checksum mismatch in " + path);
  }

  Reader r{buf.data(), buf.size() - sizeof(declared), path};
  if (r.pod<std::uint64_t>() != kMagic) {
    throw RestoreError(RestoreErrorKind::BadMagic,
                       "ckpt: bad manifest magic in " + path);
  }
  if (r.pod<std::uint32_t>() != kVersion) {
    throw RestoreError(RestoreErrorKind::BadVersion,
                       "ckpt: unsupported manifest version in " + path);
  }
  Manifest m;
  m.step = r.pod<std::uint64_t>();
  const auto n_blobs = r.pod<std::uint32_t>();
  for (std::uint32_t i = 0; i < n_blobs; ++i) {
    std::string name = r.str();
    const auto len = r.pod<std::uint64_t>();
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(len));
    r.take(payload.data(), payload.size());
    m.blobs.entries.emplace(std::move(name), std::move(payload));
  }
  const auto n_tensors = r.pod<std::uint32_t>();
  m.tensors.reserve(n_tensors);
  for (std::uint32_t i = 0; i < n_tensors; ++i) {
    TensorMeta t;
    t.name = r.str();
    t.count = r.pod<std::uint64_t>();
    t.offset = r.pod<std::uint64_t>();
    t.checksum = r.pod<std::uint64_t>();
    m.tensors.push_back(std::move(t));
  }
  return m;
}

}  // namespace sh::ckpt

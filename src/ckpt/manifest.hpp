// Checkpoint manifest: the small, self-checksummed index a generation's
// commit publishes. Binary layout (little-endian, version 1):
//
//   u64 magic  u32 version  u64 step
//   u32 n_blobs   { u32 name_len, name, u64 payload_len, payload }*
//   u32 n_tensors { u32 name_len, name, u64 count, u64 offset, u64 checksum }*
//   u64 manifest_checksum        (FNV-1a of every preceding byte)
//
// The trailing self-checksum is what turns "truncated manifest" and "bit rot
// in the index" into typed RestoreErrors instead of garbage restores.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/ckpt.hpp"

namespace sh::ckpt {

/// Where one tensor lives inside the generation's data file.
struct TensorMeta {
  std::string name;
  std::uint64_t count = 0;     ///< floats
  std::uint64_t offset = 0;    ///< byte offset in gen-<step>.data
  std::uint64_t checksum = 0;  ///< FNV-1a of the float bytes
};

struct Manifest {
  std::uint64_t step = 0;
  Blobs blobs;
  std::vector<TensorMeta> tensors;
};

/// Serialises `m` to `path` (plain synchronous write — manifests are tiny;
/// the caller fsyncs and renames). Throws std::runtime_error on I/O failure.
void write_manifest(const std::string& path, const Manifest& m);

/// Parses and verifies a manifest. Throws RestoreError with kind
/// MissingFile / Truncated / BadMagic / BadVersion / ChecksumMismatch.
Manifest read_manifest(const std::string& path);

}  // namespace sh::ckpt

// Checkpointer — owns a checkpoint directory and its generation lifecycle.
//
// Saves are asynchronous by default: the caller stages a Snapshot (a CPU-side
// copy captured at a step boundary) and hands it over; tensor payloads are
// then written through a storage::SwapFile on its I/O worker while training
// continues, and a background commit publishes the generation with the
// write-temp/fsync/rename protocol described in ckpt.hpp. A failed save
// (e.g. an exhausted fault-retry budget on the checkpoint device) aborts
// cleanly: temp files are removed and the previous committed generation is
// untouched. One save is in flight at a time; a new save joins the previous.
#pragma once

#include <cstdint>
#include <exception>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/ckpt.hpp"
#include "ckpt/manifest.hpp"

namespace sh::ckpt {

class Checkpointer {
 public:
  /// Creates `cfg.dir` if needed. Throws std::invalid_argument on an empty
  /// dir and std::runtime_error if the directory cannot be created.
  explicit Checkpointer(Config cfg);
  ~Checkpointer();

  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;

  /// Asynchronous save: joins any previous in-flight save, then writes and
  /// commits `snap` on a background thread (tensor I/O rides the SwapFile
  /// worker). Failures are recorded in stats()/last_error(), never thrown —
  /// a checkpoint failure must not kill the training step that triggered it.
  void save_async(Snapshot snap);

  /// Synchronous save: writes and commits on the calling thread; throws
  /// storage::IoError (tier failure) or std::runtime_error on failure, with
  /// temp files cleaned up and prior generations intact.
  void save_now(Snapshot snap);

  /// Blocks until any in-flight asynchronous save has committed or aborted.
  void finish();

  /// Steps of all committed generations, ascending. Uncommitted `.tmp`
  /// orphans are invisible here by construction.
  std::vector<std::uint64_t> generations() const;

  /// Reads and fully verifies generation `step`. Throws RestoreError with
  /// the specific kind (MissingFile/Truncated/ChecksumMismatch/...).
  Snapshot restore(std::uint64_t step) const;

  /// Restores the newest generation that passes verification, falling back
  /// past corrupt/uncommitted ones. Throws RestoreError{NoValidGeneration}
  /// (whose message lists every rejection) when none survives.
  Snapshot restore_latest() const;

  /// Newest step restore_latest() would try first; nullopt when the
  /// directory holds no committed generation.
  std::optional<std::uint64_t> latest() const;

  struct Stats {
    std::size_t saves_committed = 0;
    std::size_t saves_failed = 0;
    std::size_t bytes_written = 0;   ///< payload bytes of committed saves
    std::size_t gc_removed = 0;      ///< generations deleted by GC
    double last_save_seconds = 0.0;  ///< write+commit wall time of last save
    /// Directory fsyncs that failed after a rename: the committed name is
    /// visible but possibly not durable on this filesystem. Non-zero means
    /// the crash-consistency guarantee is best-effort here.
    std::size_t durability_warnings = 0;
  };
  Stats stats() const;
  /// what() of the most recent failed save ("" when none).
  std::string last_error() const;

  const Config& config() const noexcept { return cfg_; }

 private:
  std::string data_path(std::uint64_t step, bool tmp) const;
  std::string manifest_path(std::uint64_t step, bool tmp) const;
  /// The full write+commit+GC sequence; throws on failure after cleanup.
  void do_save(Snapshot&& snap);
  void gc_locked();
  /// fsyncs the checkpoint directory; a failure is counted in
  /// Stats::durability_warnings instead of thrown (renames stay visible).
  void sync_dir_or_warn();

  Config cfg_;
  mutable std::mutex mu_;  // stats_, last_error_
  Stats stats_;
  std::string last_error_;
  std::thread commit_thread_;
  std::uint64_t obs_provider_id_ = 0;
};

}  // namespace sh::ckpt

// sh::ckpt — crash-consistent, versioned training checkpoints.
//
// A checkpoint generation is two files in the checkpoint directory:
//
//   gen-<step>.data      tensor payloads, written through a storage::SwapFile
//                        (so writes ride the asynchronous I/O worker, the
//                        fault-injection plan and the bounded-retry policy of
//                        the NVMe tier — Section III-G machinery reused)
//   gen-<step>.manifest  per-tensor {offset, count, checksum} + small named
//                        blobs (RNG streams, data-loader cursor, loss-scaler
//                        state, step counters), self-checksummed
//
// Commit protocol (crash-consistent by construction): both files are written
// as `.tmp`, fsynced, and renamed data-first, manifest-last; the manifest
// rename is the single atomic commit point. A process killed at ANY instant
// leaves either a fully committed generation or ignorable orphans (`.tmp`
// files, or an unmanifested data file from a death between the renames; both
// swept by the next commit's GC) — never a half-checkpoint that restore
// could mistake for valid. Restore
// walks generations newest-first, verifies every checksum, and falls back
// past corrupt or uncommitted generations (each rejection is a typed
// RestoreError). Generation GC keeps the newest `keep` manifests.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "storage/fault_plan.hpp"

namespace sh::ckpt {

enum class RestoreErrorKind {
  NoValidGeneration,  ///< no committed generation survived validation
  MissingFile,        ///< manifest or data file absent (e.g. tmp-only orphan)
  Truncated,          ///< manifest or data file shorter than declared
  BadMagic,           ///< manifest is not a checkpoint manifest
  BadVersion,         ///< manifest from an unknown format version
  ChecksumMismatch,   ///< manifest self-checksum or a tensor checksum failed
  GeometryMismatch,   ///< tensor/blob shape does not fit the running model
  MissingData,        ///< a required blob/tensor is absent from the snapshot
};

/// Typed restore failure. `step()` is the generation that was rejected
/// (UINT64_MAX when no generation applies).
class RestoreError : public std::runtime_error {
 public:
  RestoreError(RestoreErrorKind kind, const std::string& what,
               std::uint64_t step = UINT64_MAX)
      : std::runtime_error(what), kind_(kind), step_(step) {}

  RestoreErrorKind kind() const noexcept { return kind_; }
  std::uint64_t step() const noexcept { return step_; }

 private:
  RestoreErrorKind kind_;
  std::uint64_t step_;
};

/// FNV-1a 64-bit — the per-tensor and manifest checksum. Deterministic
/// across platforms, cheap enough to run inline with the staging copy.
inline std::uint64_t checksum_bytes(const void* data, std::size_t n,
                                    std::uint64_t h = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Small named byte payloads stored inline in the manifest: RNG streams,
/// data-loader cursors, scaler state, geometry guards. Ordered map so the
/// manifest bytes (and its checksum) are deterministic.
struct Blobs {
  std::map<std::string, std::vector<std::uint8_t>> entries;

  bool contains(const std::string& name) const {
    return entries.count(name) != 0;
  }

  void put_bytes(const std::string& name, const void* data, std::size_t n) {
    auto& e = entries[name];
    e.resize(n);
    std::memcpy(e.data(), data, n);
  }

  template <typename T>
  void put(const std::string& name, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put_bytes(name, &v, sizeof(T));
  }

  template <typename T>
  T get(const std::string& name) const {
    static_assert(std::is_trivially_copyable_v<T>);
    auto it = entries.find(name);
    if (it == entries.end()) {
      throw RestoreError(RestoreErrorKind::MissingData,
                         "ckpt: blob '" + name + "' missing from snapshot");
    }
    if (it->second.size() != sizeof(T)) {
      throw RestoreError(RestoreErrorKind::GeometryMismatch,
                         "ckpt: blob '" + name + "' has " +
                             std::to_string(it->second.size()) +
                             " bytes, expected " + std::to_string(sizeof(T)));
    }
    T v;
    std::memcpy(&v, it->second.data(), sizeof(T));
    return v;
  }
};

/// One named tensor staged for writing (or produced by a restore). Staging
/// copies are what lets the engine keep training while the tier writes.
struct TensorEntry {
  std::string name;
  std::vector<float> data;
};

/// A complete training-state capture: everything needed to continue a run
/// bit-identically. Producers: StrongholdEngine::capture_snapshot(),
/// DataParallelTrainer. Consumers: restore_snapshot() / Checkpointer.
struct Snapshot {
  std::uint64_t step = 0;
  Blobs blobs;
  std::vector<TensorEntry> tensors;

  std::size_t payload_bytes() const {
    std::size_t n = 0;
    for (const auto& t : tensors) n += t.data.size() * sizeof(float);
    for (const auto& [k, v] : blobs.entries) n += v.size();
    return n;
  }
};

/// Checkpointer policy. `SH_CKPT_DIR` / `SH_CKPT_EVERY` / `SH_CKPT_KEEP`
/// environment variables override dir/every_n_steps/keep at construction
/// (config_from_env), mirroring the SH_FAULT_* convention.
struct Config {
  std::string dir;                ///< empty = checkpointing disabled
  std::size_t every_n_steps = 0;  ///< periodic async snapshot cadence (0=off)
  std::size_t keep = 2;           ///< generations retained by GC (min 1)
  double bytes_per_second = 0.0;  ///< tier write throttle (tests/bench)
  /// Fault plan + retry policy for checkpoint WRITES (the same knobs as the
  /// swap tier; SH_FAULT_* env does NOT overlay here — checkpoints usually
  /// target a healthier device than the tier under test).
  storage::FaultConfig faults{};
};

/// Applies the SH_CKPT_* environment overrides to `base`.
Config config_from_env(Config base = {});

}  // namespace sh::ckpt

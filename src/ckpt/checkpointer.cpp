#include "ckpt/checkpointer.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "storage/swap_file.hpp"

namespace sh::ckpt {

namespace fs = std::filesystem;

namespace {

std::string step_name(std::uint64_t step) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "gen-%012llu",
                static_cast<unsigned long long>(step));
  return buf;
}

/// Parses "gen-<digits>" from a file stem; false for anything else.
bool parse_step(const std::string& stem, std::uint64_t& step) {
  if (stem.rfind("gen-", 0) != 0 || stem.size() <= 4) return false;
  const std::string digits = stem.substr(4);
  if (digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  step = std::strtoull(digits.c_str(), nullptr, 10);
  return true;
}

/// fsyncs a directory so a just-renamed entry survives a crash. Returns
/// false when the filesystem rejects directory fds or the fsync fails — the
/// rename stays visible, but its durability is no longer guaranteed.
bool fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const int rc = ::fsync(fd);
  ::close(fd);
  return rc == 0;
}

void fsync_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("ckpt: cannot reopen " + path + " for fsync");
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    throw std::runtime_error("ckpt: fsync failed for " + path + ": " +
                             std::strerror(errno));
  }
}

void rename_or_throw(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    throw std::runtime_error("ckpt: rename " + from + " -> " + to +
                             " failed: " + std::strerror(errno));
  }
}

}  // namespace

Config config_from_env(Config base) {
  if (const char* dir = std::getenv("SH_CKPT_DIR")) base.dir = dir;
  if (const char* every = std::getenv("SH_CKPT_EVERY")) {
    base.every_n_steps = std::strtoull(every, nullptr, 10);
  }
  if (const char* keep = std::getenv("SH_CKPT_KEEP")) {
    base.keep = std::strtoull(keep, nullptr, 10);
  }
  return base;
}

Checkpointer::Checkpointer(Config cfg) : cfg_(std::move(cfg)) {
  if (cfg_.dir.empty()) {
    throw std::invalid_argument("Checkpointer: empty checkpoint directory");
  }
  if (cfg_.keep == 0) cfg_.keep = 1;
  std::error_code ec;
  fs::create_directories(cfg_.dir, ec);
  if (ec) {
    throw std::runtime_error("Checkpointer: cannot create " + cfg_.dir + ": " +
                             ec.message());
  }
  obs_provider_id_ = obs::Registry::global().add_provider(
      [this](obs::MetricsSnapshot& out) {
        const Stats s = stats();
        out.add("ckpt.saves", static_cast<double>(s.saves_committed));
        out.add("ckpt.save_failures", static_cast<double>(s.saves_failed));
        out.add("ckpt.bytes_written", static_cast<double>(s.bytes_written),
                "bytes");
        out.add("ckpt.last_save_s", s.last_save_seconds, "s");
        out.add("ckpt.durability_warnings",
                static_cast<double>(s.durability_warnings));
        out.add("ckpt.generations", static_cast<double>(generations().size()));
      });
}

Checkpointer::~Checkpointer() {
  finish();
  obs::Registry::global().remove_provider(obs_provider_id_);
}

std::string Checkpointer::data_path(std::uint64_t step, bool tmp) const {
  return cfg_.dir + "/" + step_name(step) + (tmp ? ".data.tmp" : ".data");
}

std::string Checkpointer::manifest_path(std::uint64_t step, bool tmp) const {
  return cfg_.dir + "/" + step_name(step) +
         (tmp ? ".manifest.tmp" : ".manifest");
}

void Checkpointer::save_async(Snapshot snap) {
  finish();
  commit_thread_ = std::thread([this, snap = std::move(snap)]() mutable {
    try {
      do_save(std::move(snap));
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.saves_failed;
      last_error_ = e.what();
    }
  });
}

void Checkpointer::save_now(Snapshot snap) {
  finish();
  try {
    do_save(std::move(snap));
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.saves_failed;
      last_error_ = e.what();
    }
    throw;
  }
}

void Checkpointer::finish() {
  if (commit_thread_.joinable()) commit_thread_.join();
}

void Checkpointer::do_save(Snapshot&& snap) {
  obs::ObsScope scope("ckpt", "save");
  const double t0 = obs::wall_seconds();
  const std::uint64_t step = snap.step;
  const std::string data_tmp = data_path(step, true);
  const std::string manifest_tmp = manifest_path(step, true);

  Manifest m;
  m.step = step;
  m.blobs = snap.blobs;
  m.tensors.reserve(snap.tensors.size());
  std::size_t payload = 0;

  {
    // Tensor payloads go through the swap tier: asynchronous FIFO worker,
    // fault plan, bounded retries, throttle. The SwapFile truncates its file
    // on construction, which is exactly right for a fresh `.tmp`; if any
    // write exhausts its retry budget we rethrow WITHOUT calling persist(),
    // so the tier's destructor unlinks the partial temp file for us.
    storage::SwapFile tier(data_tmp, /*capacity_bytes=*/0,
                          cfg_.bytes_per_second, cfg_.faults);
    std::vector<std::shared_future<void>> pending;
    pending.reserve(snap.tensors.size());
    for (std::size_t i = 0; i < snap.tensors.size(); ++i) {
      const auto& t = snap.tensors[i];
      pending.push_back(tier.write_async(
          static_cast<std::int64_t>(i),
          std::span<const float>(t.data.data(), t.data.size())));
    }
    for (std::size_t i = 0; i < snap.tensors.size(); ++i) {
      pending[i].get();  // throws storage::IoError on budget exhaustion
      const auto& t = snap.tensors[i];
      const auto region = tier.region_info(static_cast<std::int64_t>(i));
      TensorMeta meta;
      meta.name = t.name;
      meta.count = t.data.size();
      meta.offset = region.offset;
      meta.checksum =
          checksum_bytes(t.data.data(), t.data.size() * sizeof(float));
      m.tensors.push_back(std::move(meta));
      payload += region.bytes;
    }
    tier.sync();
    tier.persist();
  }

  // Commit: stage the manifest fully (write + fsync) BEFORE the data file
  // leaves its `.tmp` name, so every failure up to that point aborts with
  // only `.tmp` orphans behind — a final-named data file with no committable
  // manifest would be invisible to the `.tmp` sweep. Then publish data
  // first, manifest last: the manifest rename is the single atomic commit
  // point, and each rename gets a directory fsync so the committed names are
  // durable, not just visible.
  write_manifest(manifest_tmp, m);
  fsync_file(manifest_tmp);
  rename_or_throw(data_tmp, data_path(step, false));
  sync_dir_or_warn();  // data name durable before the commit point
  try {
    rename_or_throw(manifest_tmp, manifest_path(step, false));
  } catch (...) {
    // Un-publish the data file so the failed commit leaves no final-named
    // orphan; the `.tmp` manifest is swept by the next successful GC.
    std::error_code ec;
    fs::remove(data_path(step, false), ec);
    throw;
  }
  sync_dir_or_warn();

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.saves_committed;
    stats_.bytes_written += payload;
    stats_.last_save_seconds = obs::wall_seconds() - t0;
    gc_locked();
  }
}

void Checkpointer::gc_locked() {
  // Drop the oldest committed generations beyond `keep` — manifest first
  // (atomically un-publishes), data second — then sweep orphans from crashed
  // or aborted saves: `.tmp` files, plus final-named `.data` files with no
  // committed manifest (a writer that died between the data rename and the
  // manifest rename). Runs only after a successful commit, so any such file
  // belongs to a dead writer, never an in-flight one.
  std::vector<std::uint64_t> gens = generations();
  while (gens.size() > cfg_.keep) {
    const std::uint64_t step = gens.front();
    gens.erase(gens.begin());
    std::error_code ec;
    fs::remove(manifest_path(step, false), ec);
    fs::remove(data_path(step, false), ec);
    ++stats_.gc_removed;
  }
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(cfg_.dir, ec)) {
    const fs::path& p = entry.path();
    const std::string name = p.filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      fs::remove(p, ec);
      continue;
    }
    if (p.extension() == ".data") {
      std::uint64_t step = 0;
      if (parse_step(p.stem().string(), step) &&
          std::find(gens.begin(), gens.end(), step) == gens.end()) {
        fs::remove(p, ec);
      }
    }
  }
}

void Checkpointer::sync_dir_or_warn() {
  if (!fsync_dir(cfg_.dir)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.durability_warnings;
  }
}

std::vector<std::uint64_t> Checkpointer::generations() const {
  std::vector<std::uint64_t> steps;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(cfg_.dir, ec)) {
    const fs::path& p = entry.path();
    if (p.extension() != ".manifest") continue;
    std::uint64_t step = 0;
    if (parse_step(p.stem().string(), step)) steps.push_back(step);
  }
  std::sort(steps.begin(), steps.end());
  return steps;
}

std::optional<std::uint64_t> Checkpointer::latest() const {
  const auto gens = generations();
  if (gens.empty()) return std::nullopt;
  return gens.back();
}

Snapshot Checkpointer::restore(std::uint64_t step) const {
  obs::ObsScope scope("ckpt", "restore");
  Manifest m;
  try {
    m = read_manifest(manifest_path(step, false));
  } catch (const RestoreError& e) {
    throw RestoreError(e.kind(), e.what(), step);
  }

  const std::string dpath = data_path(step, false);
  std::ifstream data(dpath, std::ios::binary);
  if (!data) {
    throw RestoreError(RestoreErrorKind::MissingFile,
                       "ckpt: cannot open data file " + dpath, step);
  }

  Snapshot snap;
  snap.step = m.step;
  snap.blobs = std::move(m.blobs);
  snap.tensors.reserve(m.tensors.size());
  for (const auto& meta : m.tensors) {
    TensorEntry t;
    t.name = meta.name;
    t.data.resize(static_cast<std::size_t>(meta.count));
    data.seekg(static_cast<std::streamoff>(meta.offset));
    data.read(reinterpret_cast<char*>(t.data.data()),
              static_cast<std::streamsize>(meta.count * sizeof(float)));
    if (!data) {
      throw RestoreError(RestoreErrorKind::Truncated,
                         "ckpt: short read of tensor '" + meta.name +
                             "' from " + dpath,
                         step);
    }
    const std::uint64_t actual =
        checksum_bytes(t.data.data(), t.data.size() * sizeof(float));
    if (actual != meta.checksum) {
      throw RestoreError(RestoreErrorKind::ChecksumMismatch,
                         "ckpt: checksum mismatch for tensor '" + meta.name +
                             "' in " + dpath,
                         step);
    }
    snap.tensors.push_back(std::move(t));
  }
  return snap;
}

Snapshot Checkpointer::restore_latest() const {
  std::vector<std::uint64_t> gens = generations();
  std::string rejections;
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    try {
      return restore(*it);
    } catch (const RestoreError& e) {
      rejections += "\n  " + step_name(*it) + ": " + e.what();
    }
  }
  throw RestoreError(RestoreErrorKind::NoValidGeneration,
                     "ckpt: no valid checkpoint generation in " + cfg_.dir +
                         (rejections.empty() ? " (directory has none)"
                                             : rejections));
}

Checkpointer::Stats Checkpointer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string Checkpointer::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

}  // namespace sh::ckpt

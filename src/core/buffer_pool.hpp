// Compatibility shim: BufferPool is now an allocation policy over
// mem::DeviceArena. See mem/pool_policies.hpp for the class (round-robin
// slot recycling, NaN poisoning, grow-never-shrink — Section III-E3).
#pragma once

#include "hw/memory_pool.hpp"  // transitive hw:: aliases, as before
#include "mem/pool_policies.hpp"

namespace sh::core {

using BufferPool = ::sh::mem::BufferPool;

}  // namespace sh::core

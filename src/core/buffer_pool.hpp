// User-level GPU working-window buffer management (Section III-E3).
//
// Frameworks cache n*k per-tensor buffers, which cannot work when the model
// exceeds GPU memory. STRONGHOLD instead reserves m+1 fixed slots once at
// warm-up (m = working window) and recycles them round-robin: a prefetched
// layer takes the slot most recently vacated by an evicted layer. Reserved
// buffers may grow but never shrink. Released slots are poisoned with NaN so
// a layer computing from a stale window slot fails loudly.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "hw/memory_pool.hpp"

namespace sh::core {

class BufferPool {
 public:
  /// Reserves `num_slots` buffers of `slot_floats` floats from `gpu`.
  BufferPool(hw::MemoryPool& gpu, std::size_t slot_floats,
             std::size_t num_slots);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Takes the next free slot in round-robin order; blocks until one frees.
  float* acquire();

  /// Non-blocking variant; returns nullptr when all slots are busy.
  float* try_acquire();

  /// Returns a slot to the free queue (poisoning its contents).
  void release(float* slot);

  /// Grows the pool to at least `num_slots` slots of at least `slot_floats`
  /// floats. Shrinking is never performed (paper: buffers grow, not shrink).
  /// All slots must be free when growing the slot size.
  void grow(std::size_t slot_floats, std::size_t num_slots);

  std::size_t slot_floats() const;
  std::size_t num_slots() const;
  std::size_t free_slots() const;
  std::size_t total_acquisitions() const;

  /// True if `ptr` is one of this pool's slots (any state).
  bool owns(const float* ptr) const;

 private:
  void release_all_to_gpu();

  hw::MemoryPool& gpu_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t slot_floats_;
  std::vector<float*> slots_;      // all slots, in reservation order
  std::deque<float*> free_queue_;  // round-robin free list
  std::size_t acquisitions_ = 0;
};

}  // namespace sh::core

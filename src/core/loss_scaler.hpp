// Dynamic loss scaling for mixed-precision training [12].
//
// The loss is multiplied by a scale S before backward so small gradients
// survive fp16; gradients are unscaled by 1/S before the optimizer. If any
// gradient overflows fp16, the step is skipped and S halves; after
// `growth_interval` consecutive good steps S doubles (capped).
#pragma once

#include <algorithm>

namespace sh::core {

struct LossScalerConfig {
  float initial_scale = 1024.0f;
  float growth_factor = 2.0f;
  float backoff_factor = 0.5f;
  int growth_interval = 200;
  float max_scale = 65536.0f;
  float min_scale = 1.0f;
};

class LossScaler {
 public:
  explicit LossScaler(const LossScalerConfig& config = {})
      : config_(config), scale_(config.initial_scale) {}

  float scale() const noexcept { return scale_; }

  /// Records the outcome of a step. Returns true when the step should be
  /// applied (no overflow), false when it must be skipped.
  bool update(bool overflow) noexcept {
    if (overflow) {
      scale_ = std::max(config_.min_scale, scale_ * config_.backoff_factor);
      good_steps_ = 0;
      ++skipped_;
      return false;
    }
    if (++good_steps_ >= config_.growth_interval) {
      scale_ = std::min(config_.max_scale, scale_ * config_.growth_factor);
      good_steps_ = 0;
    }
    return true;
  }

  int skipped_steps() const noexcept { return skipped_; }

  /// Serialisable dynamic state (the config is carried by EngineConfig).
  /// Checkpoints must capture it: a resumed fp16 run with a reset scale or
  /// growth counter would skip/apply different steps than the original.
  struct State {
    float scale = 1.0f;
    std::int32_t good_steps = 0;
    std::int32_t skipped = 0;
  };
  State save_state() const noexcept { return {scale_, good_steps_, skipped_}; }
  void load_state(const State& s) noexcept {
    scale_ = s.scale;
    good_steps_ = s.good_steps;
    skipped_ = s.skipped;
  }

 private:
  LossScalerConfig config_;
  float scale_;
  int good_steps_ = 0;
  int skipped_ = 0;
};

}  // namespace sh::core

// Dynamic loss scaling for mixed-precision training [12].
//
// The loss is multiplied by a scale S before backward so small gradients
// survive fp16; gradients are unscaled by 1/S before the optimizer. If any
// gradient overflows fp16, the step is skipped and S halves; after
// `growth_interval` consecutive good steps S doubles (capped).
#pragma once

#include <algorithm>

namespace sh::core {

struct LossScalerConfig {
  float initial_scale = 1024.0f;
  float growth_factor = 2.0f;
  float backoff_factor = 0.5f;
  int growth_interval = 200;
  float max_scale = 65536.0f;
  float min_scale = 1.0f;
};

class LossScaler {
 public:
  explicit LossScaler(const LossScalerConfig& config = {})
      : config_(config), scale_(config.initial_scale) {}

  float scale() const noexcept { return scale_; }

  /// Records the outcome of a step. Returns true when the step should be
  /// applied (no overflow), false when it must be skipped.
  bool update(bool overflow) noexcept {
    if (overflow) {
      scale_ = std::max(config_.min_scale, scale_ * config_.backoff_factor);
      good_steps_ = 0;
      ++skipped_;
      return false;
    }
    if (++good_steps_ >= config_.growth_interval) {
      scale_ = std::min(config_.max_scale, scale_ * config_.growth_factor);
      good_steps_ = 0;
    }
    return true;
  }

  int skipped_steps() const noexcept { return skipped_; }

 private:
  LossScalerConfig config_;
  float scale_;
  int good_steps_ = 0;
  int skipped_ = 0;
};

}  // namespace sh::core

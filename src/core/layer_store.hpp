// Per-layer CPU-side master state (Section III-E3).
//
// When loading the model, STRONGHOLD allocates pinned CPU memory for every
// DNN layer: parameters, gradients and optimizer states live on the host; the
// GPU working window holds transient copies of params (+grads during BP).
// With a secondary-storage tier configured (Section III-G), layers beyond the
// CPU capacity are backed by a swap file and faulted in ahead of prefetch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <span>
#include <vector>

#include "nn/gpt.hpp"
#include "storage/swap_file.hpp"
#include "tensor/rng.hpp"

namespace sh::core {

/// Training state of one layer unit.
struct LayerState {
  std::size_t index = 0;
  nn::Layer* layer = nullptr;
  std::int64_t params = 0;

  // Host-side master copies ("pinned memory" in the paper).
  std::vector<float> cpu_params;
  std::vector<float> cpu_grads;
  std::vector<float> cpu_opt;  // optimizer state planes
  std::int64_t step = 0;       // optimizer step count

  bool pinned_on_gpu = false;  // embedding/head stay GPU-resident
  bool swap_backed = false;    // master params+opt live on the NVMe tier
  bool opt_tiered = false;     // Adam moments live NVMe-resident (cpu_opt empty)

  // GPU residency (managed by the engine). The slot is byte-typed: it holds
  // 2*params elements in the engine's window dtype (f32 or bf16), laid out
  // [0, params) parameters, [params, 2*params) gradients. Pinned layers
  // (embedding/head) always store f32 elements.
  std::byte* gpu_slot = nullptr;
  std::shared_future<void> ready;        // prefetch completion
  std::shared_future<void> update_done;  // optimizer-step completion
  // Stochastic-rounding event counter: each encode of this layer draws a
  // fresh Rng stream seeded from (config seed, layer index, rng_seq), so
  // rounding is deterministic for a given issue order.
  std::uint64_t rng_seq = 0;
};

class LayerStore {
 public:
  /// Builds master state for every layer of `model`. Layers whose cumulative
  /// state exceeds `cpu_capacity_bytes` are marked swap-backed (requires
  /// `swap`); 0 means unlimited CPU RAM. The first and last layer are never
  /// swap-backed (they are pinned on the GPU).
  ///
  /// With `tier_optimizer` set (requires `swap`), non-pinned layers keep their
  /// Adam moments NVMe-resident: `cpu_opt` stays empty and the moments are
  /// paged through the tier by the optimizer pool. Tiered layers only charge
  /// params+grads (8 bytes/param) against the CPU budget.
  LayerStore(nn::GptModel& model, std::int64_t opt_state_per_param,
             std::size_t cpu_capacity_bytes = 0,
             storage::SwapFile* swap = nullptr, bool tier_optimizer = false);

  /// Binds every layer to its CPU blobs and initialises parameters.
  /// Swap-backed layers are written out to the tier afterwards.
  void init_params(std::uint64_t seed);

  std::size_t size() const noexcept { return states_.size(); }
  LayerState& state(std::size_t i) { return *states_[i]; }
  const LayerState& state(std::size_t i) const { return *states_[i]; }

  std::int64_t max_layer_params() const noexcept { return max_params_; }
  std::size_t swap_backed_count() const noexcept { return swap_backed_; }
  std::size_t opt_tiered_count() const noexcept { return opt_tiered_; }
  storage::SwapFile* swap() noexcept { return swap_; }

  /// Swap key of layer i's NVMe-resident moment region (tiered layers only).
  /// Disjoint from the params/opt key space used by swap-backed layers.
  static std::int64_t moment_key(std::size_t i) {
    return kMomentKeyBase + static_cast<std::int64_t>(i);
  }

  /// Number of optimizer-state floats layer i owns (params * planes).
  std::size_t opt_floats(std::size_t i) const {
    return static_cast<std::size_t>(state(i).params * opt_state_per_param_);
  }

  /// Snapshot of layer i's moments regardless of tier: a copy of `cpu_opt`
  /// for resident layers, a synchronous tier read for tiered ones. Throws
  /// storage::IoError once the tier's retry budget is exhausted.
  std::vector<float> moments_copy(std::size_t i) const;

  /// Installs `m` as layer i's moments (restore path): writes through to the
  /// tier for tiered layers, copies into `cpu_opt` otherwise. Size-checked.
  void install_moments(std::size_t i, std::span<const float> m);

  /// Asynchronously loads a swap-backed layer's params (+opt state) into its
  /// CPU staging blobs. No-op future for CPU-resident layers. Transient tier
  /// faults are retried inside the tier; the future carries a typed
  /// storage::IoError once the retry budget is exhausted (get() to observe).
  std::shared_future<void> fault_in(std::size_t i);

  /// Asynchronously writes a swap-backed layer's params (+opt state) back to
  /// the tier after a parameter update. No-op future for resident layers.
  /// Same retry/error contract as fault_in; callers that drop the future
  /// still surface permanent failures via SwapFile::rethrow_pending().
  std::shared_future<void> write_back(std::size_t i);

 private:
  static std::shared_future<void> ready_future();
  std::int64_t swap_key_params(std::size_t i) const;
  std::int64_t swap_key_opt(std::size_t i) const;

  static constexpr std::int64_t kMomentKeyBase = std::int64_t{1} << 20;

  std::vector<std::unique_ptr<LayerState>> states_;
  std::int64_t opt_state_per_param_;
  std::int64_t max_params_ = 0;
  std::size_t swap_backed_ = 0;
  std::size_t opt_tiered_ = 0;
  storage::SwapFile* swap_ = nullptr;
};

}  // namespace sh::core

#include "core/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "core/checkpoint.hpp"
#include "nn/block.hpp"
#include "obs/obs.hpp"
#include "tensor/half.hpp"
#include "tensor/rng.hpp"

#include "dist/process_group.hpp"
#include "tensor/ops.hpp"

namespace sh::core {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void throttle_sleep(double bytes, double bytes_per_s) {
  if (bytes_per_s > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(bytes / bytes_per_s));
  }
}

std::unique_ptr<storage::SwapFile> make_swap(const EngineConfig& cfg) {
  const bool nvme_opt = cfg.optimizer_tier == OptimizerTier::nvme;
  if (cfg.cpu_capacity_bytes == 0 && !nvme_opt) return nullptr;
  if (cfg.swap_path.empty()) {
    throw std::invalid_argument(
        cfg.cpu_capacity_bytes != 0
            ? "EngineConfig: cpu_capacity_bytes requires swap_path"
            : "EngineConfig: optimizer_tier=nvme requires swap_path");
  }
  // SH_FAULT_* env knobs override the config so any bench/example can run
  // against an unhealthy tier without code changes.
  return std::make_unique<storage::SwapFile>(
      cfg.swap_path, /*capacity_bytes=*/0, /*bytes_per_second=*/0.0,
      storage::fault_config_from_env(cfg.swap_faults));
}

// SH_OPT_TIER must be folded into the config BEFORE the member-initialiser
// list runs: swap_ and store_ are constructed from cfg_, unlike the
// SH_WINDOW_* overrides which can wait for the constructor body.
EngineConfig resolve_engine_env(EngineConfig cfg) {
  if (const char* env = std::getenv("SH_OPT_TIER")) {
    const std::string v(env);
    if (v == "cpu") {
      cfg.optimizer_tier = OptimizerTier::cpu;
    } else if (v == "nvme") {
      cfg.optimizer_tier = OptimizerTier::nvme;
    } else {
      throw std::invalid_argument("SH_OPT_TIER: expected \"cpu\" or \"nvme\"");
    }
  }
  return cfg;
}

}  // namespace

StrongholdEngine::StrongholdEngine(nn::GptModel& model, EngineConfig config)
    : model_(model),
      cfg_(resolve_engine_env(std::move(config))),
      swap_(make_swap(cfg_)),
      store_(model, /*opt_state_per_param=*/2, cfg_.cpu_capacity_bytes,
             swap_.get(),
             /*tier_optimizer=*/cfg_.optimizer_tier == OptimizerTier::nvme),
      gpu_pool_("gpu", cfg_.gpu_memory_bytes),
      h2d_("h2d"),
      d2h_("d2h"),
      adam_proto_(cfg_.adam),
      opts_(adam_proto_, cfg_.optimizer_workers),
      scaler_(cfg_.loss_scaler) {
  if (cfg_.num_executors == 0) {
    throw std::invalid_argument("num_executors must be >= 1");
  }
  if (store_.size() < 3) {
    throw std::invalid_argument("model must have at least one block");
  }
  // Window dtype: SH_WINDOW_DTYPE / SH_WINDOW_ROUNDING override the config,
  // mirroring the SH_FAULT_* / SH_CKPT_* convention. Resolved before any
  // slot sizing so the fit math prices actual bytes.
  if (const char* env = std::getenv("SH_WINDOW_DTYPE")) {
    cfg_.window_dtype = tensor::parse_dtype(env);
  }
  if (const char* env = std::getenv("SH_WINDOW_ROUNDING")) {
    cfg_.window_rounding = tensor::parse_rounding(env);
  }
  if (cfg_.fp16 && bf16_window()) {
    throw std::invalid_argument(
        "EngineConfig: fp16 and window_dtype=bf16 are mutually exclusive "
        "(both re-encode the CPU<->GPU wire)");
  }
  elem_bytes_ = tensor::bytes_per_element(cfg_.window_dtype);
  setup_pinned_layers();

  const std::size_t blocks = num_blocks();
  std::int64_t max_block_params = 0;
  for (std::size_t b = 1; b <= blocks; ++b) {
    max_block_params = std::max(max_block_params, store_.state(b).params);
  }
  max_block_params_ = static_cast<std::size_t>(max_block_params);
  // BF16 windows compute in FP32 on a decoded staging view (per-layer
  // compute is barrier-serialised, so one params+grads buffer suffices).
  if (bf16_window()) stage_.assign(2 * max_block_params_, 0.0f);
  const std::size_t slot_elems = 2 * max_block_params_;
  // Slots are priced in bytes under the window dtype: bf16 halves
  // slot_bytes, so `fit` (and with it the auto window) roughly doubles at a
  // fixed device budget.
  const std::size_t slot_bytes = slot_elems * elem_bytes_;
  const std::size_t fit = gpu_pool_.free_bytes() / slot_bytes;

  if (cfg_.window != 0) {
    window_ = std::min<std::size_t>(cfg_.window, blocks);
    window_frozen_ = true;
  } else {
    // Warm-up window: the largest that provably fits, per Section III-B.
    if (fit < 2 && blocks > 1) {
      throw mem::OomError("gpu", 2 * slot_bytes, gpu_pool_.free_bytes());
    }
    window_ = std::min<std::size_t>(blocks, fit > 0 ? fit - 1 : 0);
    window_ = std::max<std::size_t>(window_, 1);
  }
  std::size_t slots =
      window_ < blocks ? window_ + 1 : blocks;  // +1 prefetch stage slot
  // Second stage slot (best-effort, honestly accounted against the device
  // capacity): with only one, the BP loop's blocking prefetch acquire waits
  // for the PREVIOUS eviction's whole d2h job — gradient quantise + copy +
  // link throttle — to release its buffer, which serialises gradient
  // offload against backward compute (measured ~16% d2h overlap in
  // bench_fig4_trace). With two, the incoming fetch and the outgoing
  // eviction each own a stage buffer and the d2h drain overlaps the next
  // layer's backward. Skipped when the device cannot fit it; the pipeline
  // then degrades to the old serialised handoff instead of failing.
  if (slots < blocks && slots + 1 <= fit) ++slots;
  slot_bytes_ = slot_bytes;
  slots_reserved_ = slots;
  // Throws mem::OomError when the requested window cannot be reserved.
  if (cfg_.window_mode == WindowMode::UniformSlots) {
    pool_ = std::make_unique<UniformSlotAllocator>(gpu_pool_, slot_bytes,
                                                   slots);
  } else {
    // window_budget_floats is specified in elements; price it into bytes
    // under the window dtype.
    const std::size_t budget = cfg_.window_budget_floats != 0
                                   ? cfg_.window_budget_floats * elem_bytes_
                                   : slots * slot_bytes;
    pool_ = std::make_unique<BudgetSlotAllocator>(gpu_pool_, budget);
  }

  profiles_.assign(blocks, LayerProfile{});
  for (auto& p : profiles_) {
    p.s_fp = static_cast<double>(slot_bytes);
    p.s_bp = static_cast<double>(slot_bytes);
  }

  for (std::size_t e = 1; e < cfg_.num_executors; ++e) {
    replicas_.push_back(std::make_unique<nn::GptModel>(model_.config()));
  }
  std::int64_t max_any = store_.max_layer_params();
  exec_grads_.assign(cfg_.num_executors,
                     std::vector<float>(static_cast<std::size_t>(max_any)));

  stats_.swap_backed_layers = store_.swap_backed_count();

  if (opt_tier_nvme()) {
    opts_.enable_moment_tier(store_);
    // Activation-checkpoint spill: second client of the same tier.
    // Single-executor only — with several executors the blocks run
    // micro-batches concurrently and no block's checkpoint is quiescent
    // between forward and backward.
    act_state_.assign(blocks + 1, ActSpillState{});
    act_spill_enabled_ = cfg_.num_executors == 1;
    if (act_spill_enabled_) {
      act_pressure_cb_ = gpu_pool_.add_pressure_callback(
          [this](const std::string&, std::size_t) {
            return spill_one_activation();
          });
    }
  }

  trace_epoch_ = now_seconds();
  if (cfg_.record_trace) {
    // Writes the sim trace directly (not through trace_span): the pool
    // already records its own "cpu-opt" obs spans, and routing the observer
    // through trace_span would duplicate them on the global recorder.
    opts_.set_update_observer([this](double t0, double t1) {
      std::lock_guard<std::mutex> lock(trace_mu_);
      trace_.record("cpu-opt", "o", {t0 - trace_epoch_, t1 - trace_epoch_});
    });
  }
  obs_provider_id_ = obs::Registry::global().add_provider(
      [this](obs::MetricsSnapshot& out) { export_metrics(out); });

  // Crash-consistent checkpointing (sh::ckpt): SH_CKPT_* env overrides the
  // config, mirroring the SH_FAULT_* convention for the swap tier. A
  // DataParallelTrainer suppresses the overlay — it resolved the env itself
  // and owns the directory as the single writer.
  if (cfg_.ckpt_env_overrides) cfg_.ckpt = ckpt::config_from_env(cfg_.ckpt);
  if (!cfg_.ckpt.dir.empty()) {
    ckpt_ = std::make_unique<ckpt::Checkpointer>(cfg_.ckpt);
  }
}

void StrongholdEngine::trace_span(const char* resource, const char* label,
                                  double t0, double t1) {
  obs::span(resource, label, t0, t1);
  if (!cfg_.record_trace) return;
  std::lock_guard<std::mutex> lock(trace_mu_);
  trace_.record(resource, label, {t0 - trace_epoch_, t1 - trace_epoch_});
}

sim::Trace StrongholdEngine::trace_snapshot() const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  return trace_;
}

StrongholdEngine::~StrongholdEngine() {
  // Unregister the metrics provider before tearing anything it reads; after
  // remove_provider returns the registry guarantees the callback never runs.
  obs::Registry::global().remove_provider(obs_provider_id_);
  if (act_spill_enabled_) gpu_pool_.remove_pressure_callback(act_pressure_cb_);
  opts_.wait_all();
  h2d_.wait_all();
  d2h_.wait_all();
  // The drained queues above may have enqueued swap-tier write-backs that
  // still reference layer masters; those must land before LayerStore dies.
  if (swap_) swap_->wait_all();
  // Return pinned buffers; BufferPool returns its slots on destruction.
  pool_.reset();
  gpu_pool_.deallocate(pinned_emb_);
  gpu_pool_.deallocate(pinned_head_);
}

void StrongholdEngine::setup_pinned_layers() {
  LayerState& emb = store_.state(0);
  LayerState& head = store_.state(head_index());
  // Pinned layers always hold f32 elements — they never cross the wire per
  // step, so a bf16 encoding would cost precision without saving traffic.
  pinned_emb_ = gpu_pool_.allocate_floats(
      2 * static_cast<std::size_t>(emb.params), mem::DeviceArena::kWindow);
  pinned_head_ = gpu_pool_.allocate_floats(
      2 * static_cast<std::size_t>(head.params), mem::DeviceArena::kWindow);
  emb.gpu_slot = reinterpret_cast<std::byte*>(pinned_emb_);
  head.gpu_slot = reinterpret_cast<std::byte*>(pinned_head_);
}

void StrongholdEngine::init_params(std::uint64_t seed) {
  store_.init_params(seed);
  LayerState& emb = store_.state(0);
  LayerState& head = store_.state(head_index());
  std::memcpy(pinned_emb_, emb.cpu_params.data(),
              sizeof(float) * static_cast<std::size_t>(emb.params));
  std::fill_n(pinned_emb_ + emb.params, emb.params, 0.0f);
  std::memcpy(pinned_head_, head.cpu_params.data(),
              sizeof(float) * static_cast<std::size_t>(head.params));
  std::fill_n(pinned_head_ + head.params, head.params, 0.0f);
  if (cfg_.fp16) {
    // Device-resident parameters are FP16; masters stay FP32.
    tensor::quantize_fp16_inplace(pinned_emb_,
                                  static_cast<std::size_t>(emb.params));
    tensor::quantize_fp16_inplace(pinned_head_,
                                  static_cast<std::size_t>(head.params));
  }
}

void StrongholdEngine::normalize_residency() {
  const std::size_t blocks = num_blocks();
  const std::size_t w = std::min(window_, blocks);
  // Free out-of-window residents first (e.g. the FP tail left behind by an
  // inference pass) so the head-window prefetches cannot exhaust the slots.
  for (std::size_t b = w + 1; b <= blocks; ++b) {
    LayerState& st = block(b);
    if (st.gpu_slot != nullptr) {
      wait_ready(st);
      evict_after_forward(st);
    }
  }
  for (std::size_t b = 1; b <= w; ++b) prefetch(b);
}

void StrongholdEngine::prefetch(std::size_t index) {
  LayerState& st = store_.state(index);
  if (st.gpu_slot != nullptr) return;  // already resident or in flight
  const std::size_t need =
      2 * static_cast<std::size_t>(st.params) * elem_bytes_;
  std::byte* slot;
  if (pool_->blocking_prefetch_safe()) {
    slot = pool_->acquire(need);
  } else {
    // Byte-budget mode: a blocking hook-time fetch could wait on space that
    // only this thread's further progress can free. Defer instead — the
    // paper's "delay the layer movement" fallback; wait_ready() performs the
    // on-demand fetch when the layer is actually needed.
    slot = pool_->try_acquire(need);
    if (slot == nullptr) {
      // Report through the shared pressure layer first: a registered
      // callback (e.g. serve preempt-to-CPU on a co-located arena) may free
      // capacity and earn one retry.
      if (gpu_pool_.signal_pressure(mem::DeviceArena::kWindow, need)) {
        slot = pool_->try_acquire(need);
      }
    }
    if (slot == nullptr) {
      const double t = now_seconds();
      trace_span("mem", "defer", t, t);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.deferred_prefetches;
      return;
    }
  }
  issue_fetch(st, slot);
}

void StrongholdEngine::issue_fetch(LayerState& st, std::byte* slot) {
  st.gpu_slot = slot;
  auto update_done = st.update_done;  // wait for a pending optimizer step
  const auto params = static_cast<std::size_t>(st.params);
  const double rate = cfg_.h2d_bytes_per_s;
  // Deterministic stochastic-rounding stream: the event counter is drawn on
  // the issuing (control) thread, so the rounding sequence depends only on
  // the fetch order, not on worker timing.
  const std::uint64_t rng_seq = st.rng_seq++;
  LayerProfile* prof = (st.index >= 1 && st.index <= num_blocks())
                           ? &profiles_[st.index - 1]
                           : nullptr;
  st.ready = h2d_.run_async([this, &st, slot, params, update_done, rate, prof,
                             rng_seq] {
    if (update_done.valid()) update_done.wait();
    // Fault the master in from the NVMe tier if needed (Section III-G).
    // get(), not wait(): a tier read whose retry budget is exhausted
    // must propagate its IoError into st.ready instead of silently
    // copying a stale master onto the device.
    store_.fault_in(st.index).get();
    const double t0 = now_seconds();
    if (bf16_window()) {
      // The wire format is BF16: the FP32 master lands encoded, at half
      // the bytes; the slot genuinely stores 2-byte elements.
      auto* dst = reinterpret_cast<tensor::bf16*>(slot);
      if (cfg_.window_rounding == tensor::Rounding::stochastic) {
        tensor::Rng rng(
            tensor::mix_seed(cfg_.rounding_seed, st.index, rng_seq));
        tensor::convert_float_to_bf16_stochastic(st.cpu_params.data(), dst,
                                                 params, rng);
      } else {
        tensor::convert_float_to_bf16(st.cpu_params.data(), dst, params);
      }
      std::fill_n(dst + params, params, tensor::bf16{0});  // fresh grads
    } else {
      auto* dst = reinterpret_cast<float*>(slot);
      std::memcpy(dst, st.cpu_params.data(), params * sizeof(float));
      std::fill_n(dst + params, params, 0.0f);  // fresh gradient buffer
      if (cfg_.fp16) {
        // The wire format is FP16: the copy lands rounded, at half the
        // bytes (storage stays f32; only bf16 re-types the slot).
        tensor::quantize_fp16_inplace(dst, params);
      }
    }
    const std::size_t wire = wire_param_bytes(st.params);
    throttle_sleep(static_cast<double>(wire), rate);
    if (prof != nullptr) prof->t_c2g = now_seconds() - t0;
    trace_span("h2d", "p", t0, now_seconds());
    h2d_.record_transfer(wire);  // true wire bytes on the link's own stats
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.h2d_transfers;
    stats_.h2d_bytes += wire;
  });
}

void StrongholdEngine::wait_ready(LayerState& st) {
  if (st.gpu_slot == nullptr) {
    // Deferred (or never-issued) fetch: bring the layer in on demand. By
    // now every previously computed layer's eviction is queued, so the
    // blocking acquire makes progress.
    const double t0 = now_seconds();
    std::byte* slot =
        pool_->acquire(2 * static_cast<std::size_t>(st.params) * elem_bytes_);
    issue_fetch(st, slot);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.demand_fetches;
    stats_.stall_seconds += now_seconds() - t0;
  }
  if (!st.ready.valid()) return;
  if (st.ready.wait_for(std::chrono::seconds(0)) !=
      std::future_status::ready) {
    const double t0 = now_seconds();
    st.ready.wait();
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.prefetch_stalls;
    stats_.stall_seconds += now_seconds() - t0;
  }
  // Graceful degradation boundary: transient tier faults were already
  // retried inside the fetch; what remains here is a permanent failure
  // (storage::IoError), rethrown so train_step surfaces it instead of
  // computing on an unfetched layer.
  st.ready.get();
}

float* StrongholdEngine::bind_params_f32(LayerState& st) {
  // Pinned layers and FP32/FP16 windows store f32 elements in place; a BF16
  // window decodes into the staging buffer (barrier-serialized per layer, so
  // one buffer suffices — the stage models the f32 compute view and is not
  // charged to the window region, mirroring FP16's in-place rounding).
  if (!bf16_window() || st.pinned_on_gpu) return slot_f32(st);
  tensor::convert_bf16_to_float(slot_b16(st), stage_.data(),
                                static_cast<std::size_t>(st.params));
  return stage_.data();
}

void StrongholdEngine::encode_slot(LayerState& st, const float* src,
                                   std::size_t offset, std::size_t n) {
  tensor::bf16* dst = slot_b16(st) + offset;
  if (cfg_.window_rounding == tensor::Rounding::stochastic) {
    // One fresh, deterministic stream per encode event: encodes of the same
    // layer are serialized (fetch by ready-future, grad encode by barriers,
    // update encode after the grad encode), so the counter orders them.
    tensor::Rng rng(tensor::mix_seed(cfg_.rounding_seed, st.index,
                                     st.rng_seq++));
    tensor::convert_float_to_bf16_stochastic(src, dst, n, rng);
  } else {
    tensor::convert_float_to_bf16(src, dst, n);
  }
}

void StrongholdEngine::refresh_device_copy(LayerState& st) {
  const auto params = static_cast<std::size_t>(st.params);
  if (!st.pinned_on_gpu && bf16_window()) {
    encode_slot(st, st.cpu_params.data(), 0, params);
    std::fill_n(slot_b16(st) + params, params, tensor::bf16{0});
    return;
  }
  float* buf = slot_f32(st);
  std::memcpy(buf, st.cpu_params.data(), params * sizeof(float));
  if (cfg_.fp16) tensor::quantize_fp16_inplace(buf, params);
  std::fill_n(buf + params, params, 0.0f);
}

void StrongholdEngine::mark_act_spillable(std::size_t b) {
  auto* blk = dynamic_cast<nn::TransformerBlock*>(&model_.layer(b));
  // Only checkpointing blocks are eligible: after their forward the caches
  // are dropped and the kept input is quiescent until backward. A block with
  // live caches needs more than the checkpoint to run backward.
  if (blk == nullptr || !blk->checkpoint_activations() ||
      blk->has_live_caches()) {
    return;
  }
  std::lock_guard<std::mutex> lock(act_mu_);
  act_state_[b].spillable = true;
  act_state_[b].spilled = false;
}

bool StrongholdEngine::spill_one_activation() {
  std::lock_guard<std::mutex> lock(act_mu_);
  // Spill the lowest-index spillable block: backward visits blocks in
  // reverse, so it is the checkpoint needed furthest in the future.
  for (std::size_t b = 1; b < act_state_.size(); ++b) {
    ActSpillState& as = act_state_[b];
    if (!as.spillable || as.spilled) continue;
    auto* blk = static_cast<nn::TransformerBlock*>(&model_.layer(b));
    tensor::Tensor t = blk->take_checkpoint();
    if (t.data() == nullptr) {
      as.spillable = false;
      continue;
    }
    try {
      // Synchronous, retrying tier write (same FaultPlan as the window
      // tier). FP32 in, FP32 out: the round trip is bit-exact.
      swap_->write(act_key(b),
                   std::span<const float>(
                       t.data(), static_cast<std::size_t>(t.numel())));
    } catch (const storage::IoError&) {
      // Tier refused (exhausted retries or a shape-changed region): hand the
      // checkpoint back and let the arena degrade some other way.
      blk->put_checkpoint(std::move(t));
      return false;
    }
    as.shape = t.shape();
    as.spilled = true;
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++stats_.act_spills;
    }
    // `t` dies here, releasing the soft-charged activation bytes.
    return true;
  }
  return false;
}

void StrongholdEngine::restore_spilled_activation(std::size_t b) {
  if (b >= act_state_.size()) return;
  std::lock_guard<std::mutex> lock(act_mu_);
  ActSpillState& as = act_state_[b];
  if (as.spilled) {
    mem::ScopedTensorCharge charge(gpu_pool_, mem::DeviceArena::kActivations);
    tensor::Tensor t = tensor::Tensor::zeros(as.shape);
    // Synchronous tier read; exhausted retries throw the typed IoError into
    // the step body, where the last-gasp checkpoint path takes over.
    swap_->read(act_key(b),
                std::span<float>(t.data(),
                                 static_cast<std::size_t>(t.numel())));
    static_cast<nn::TransformerBlock*>(&model_.layer(b))
        ->put_checkpoint(std::move(t));
    as.spilled = false;
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.act_restores;
  }
  as.spillable = false;  // backward is about to consume the checkpoint
}

void StrongholdEngine::evict_after_forward(LayerState& st) {
  // Parameters were not modified during FP and the CPU master is coherent,
  // so recycling the buffer needs no copy-back. Routed through the d2h queue
  // so it is ordered after any pending master-sync of this slot.
  std::byte* slot = st.gpu_slot;
  st.gpu_slot = nullptr;
  d2h_.run_async([this, slot] { pool_->release(slot); });
}

void StrongholdEngine::evict_after_backward(LayerState& st) {
  std::byte* slot = st.gpu_slot;
  st.gpu_slot = nullptr;
  const auto params = static_cast<std::size_t>(st.params);
  const double rate = cfg_.d2h_bytes_per_s;
  LayerProfile* prof =
      (st.index >= 1 && st.index <= num_blocks()) ? &profiles_[st.index - 1]
                                                  : nullptr;
  // One FIFO job: offload gradients, then recycle the buffer.
  const bool clip = clipping() && accum_final_;
  const bool overwrite = accum_first_;
  auto copied = d2h_.run_async([this, &st, slot, params, rate, prof, clip,
                                overwrite] {
    const double t0 = now_seconds();
    if (bf16_window()) {
      // BF16 wire format: the gradient half of the slot already holds the
      // rounded encoding (the executor encoded the reduced FP32 gradients);
      // decode it back into the FP32 CPU accumulator.
      const tensor::bf16* g = reinterpret_cast<tensor::bf16*>(slot) + params;
      if (overwrite) {
        tensor::convert_bf16_to_float(g, st.cpu_grads.data(), params);
      } else {
        std::vector<float> tmp(params);
        tensor::convert_bf16_to_float(g, tmp.data(), params);
        tensor::axpy(1.0f, tmp.data(), st.cpu_grads.data(), st.params);
      }
    } else {
      float* g = reinterpret_cast<float*>(slot) + params;
      // FP16 wire format: the gradients cross the link rounded to half
      // precision; overflow (inf after rounding) triggers a skipped step.
      if (cfg_.fp16) {
        quantize_grads_and_check(g, st.params);
      }
      // First micro-step overwrites the CPU-side gradient accumulator;
      // later ones accumulate (gradient accumulation cycles).
      if (overwrite) {
        std::memcpy(st.cpu_grads.data(), g, params * sizeof(float));
      } else {
        tensor::axpy(1.0f, g, st.cpu_grads.data(), st.params);
      }
    }
    const std::size_t wire = wire_param_bytes(st.params);
    throttle_sleep(static_cast<double>(wire), rate);
    if (prof != nullptr) prof->t_g2c = now_seconds() - t0;
    trace_span("d2h", "g", t0, now_seconds());
    if (clip) {
      grad_sumsq_[st.index] =
          tensor::dot(st.cpu_grads.data(), st.cpu_grads.data(), st.params);
    }
    pool_->release(slot);
    d2h_.record_transfer(wire);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.d2h_transfers;
    stats_.d2h_bytes += wire;
  });
  if (!accum_final_) return;  // mid-cycle: accumulate only, no update
  // Concurrent CPU-side update (Section III-E1), then NVMe write-back. With
  // clipping or loss scaling, the update waits behind the per-step gate
  // (clip_ready_ resolves once every gradient has drained and the norm /
  // overflow verdict exists).
  auto post = [this, &st] { store_.write_back(st.index); };
  if (update_gate_active()) {
    // Capture THIS iteration's gate object: a late-running update must not
    // observe the next iteration's reset scale/skip.
    auto gate = gate_state_;
    opts_.submit(
        st, clip_ready_, post, current_lr_,
        [gate] { return gate->scale.load(); },
        [gate] { return gate->skip.load(); });
  } else {
    opts_.submit(st, copied, post, current_lr_);
  }
}

void StrongholdEngine::quantize_grads_and_check(float* grads, std::int64_t n) {
  tensor::quantize_fp16_inplace(grads, static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(grads[i])) {
      overflow_.store(true, std::memory_order_relaxed);
      return;
    }
  }
}

void StrongholdEngine::update_resident_layer(LayerState& st) {
  // The layer stays in the working window across the iteration boundary; the
  // paper updates these on the GPU (t_opt_gpu). Gradients accumulate in the
  // CPU master; on the final micro-step the GPU-resident parameter copy is
  // updated in place and the master synced asynchronously.
  const auto params = static_cast<std::size_t>(st.params);
  if (bf16_window()) {
    // The executor encoded the reduced FP32 gradients into the slot's BF16
    // grad half; decode into the staging buffer, then accumulate in FP32.
    float* g = stage_.data() + max_block_params_;
    tensor::convert_bf16_to_float(slot_b16(st) + params, g, params);
    if (accum_first_) {
      std::copy_n(g, params, st.cpu_grads.data());
    } else {
      tensor::axpy(1.0f, g, st.cpu_grads.data(), st.params);
    }
  } else {
    float* g = slot_f32(st) + params;
    if (cfg_.fp16) quantize_grads_and_check(g, st.params);
    if (accum_first_) {
      std::copy_n(g, params, st.cpu_grads.data());
    } else {
      tensor::axpy(1.0f, g, st.cpu_grads.data(), st.params);
    }
  }
  if (!accum_final_) return;
  auto body = [this, &st, params] {
    if (bf16_window()) {
      // The FP32 master is authoritative; the GPU copy is re-quantized on
      // write-back, exactly like a fresh fault-in.
      opts_.update_now(st, st.cpu_params.data(), st.cpu_grads.data(),
                       current_lr_);
      encode_slot(st, st.cpu_params.data(), 0, params);
      st.update_done =
          d2h_.run_async([this, &st] { store_.write_back(st.index); });
    } else if (cfg_.fp16) {
      float* slot = slot_f32(st);
      // The FP32 master is authoritative; the GPU copy is refreshed as FP16.
      opts_.update_now(st, st.cpu_params.data(), st.cpu_grads.data(),
                       current_lr_);
      std::memcpy(slot, st.cpu_params.data(), params * sizeof(float));
      tensor::quantize_fp16_inplace(slot, params);
      st.update_done =
          d2h_.run_async([this, &st] { store_.write_back(st.index); });
    } else {
      float* slot = slot_f32(st);
      opts_.update_now(st, slot, st.cpu_grads.data(), current_lr_);
      st.update_done = d2h_.run_async([this, &st, slot, params] {
        std::memcpy(st.cpu_params.data(), slot, params * sizeof(float));
        store_.write_back(st.index);
      });
    }
  };
  if (update_gate_active()) {
    if (clipping()) {
      grad_sumsq_[st.index] =
          tensor::dot(st.cpu_grads.data(), st.cpu_grads.data(), st.params);
    }
    deferred_updates_.push_back([this, &st, body, gate = gate_state_] {
      if (gate->skip.load()) return;
      const float s = gate->scale.load();
      if (s != 1.0f) tensor::scale(s, st.cpu_grads.data(), st.params);
      body();
    });
  } else {
    body();
  }
}

void StrongholdEngine::apply_pinned_update(LayerState& st, float* buffer) {
  const auto n = static_cast<std::size_t>(st.params);
  if (cfg_.fp16) quantize_grads_and_check(buffer + n, st.params);
  if (accum_first_) {
    std::copy_n(buffer + n, n, st.cpu_grads.data());
  } else {
    tensor::axpy(1.0f, buffer + n, st.cpu_grads.data(), st.params);
  }
  if (!accum_final_) return;
  auto body = [this, &st, buffer, n] {
    if (cfg_.fp16) {
      opts_.update_now(st, st.cpu_params.data(), st.cpu_grads.data(),
                       current_lr_);
      std::memcpy(buffer, st.cpu_params.data(), n * sizeof(float));
      tensor::quantize_fp16_inplace(buffer, n);
    } else {
      opts_.update_now(st, buffer, st.cpu_grads.data(), current_lr_);
    }
  };
  if (update_gate_active()) {
    if (clipping()) {
      grad_sumsq_[st.index] =
          tensor::dot(st.cpu_grads.data(), st.cpu_grads.data(), st.params);
    }
    deferred_updates_.push_back([this, &st, body, gate = gate_state_] {
      if (gate->skip.load()) return;
      const float s = gate->scale.load();
      if (s != 1.0f) tensor::scale(s, st.cpu_grads.data(), st.params);
      body();
    });
  } else {
    body();
  }
}

void StrongholdEngine::begin_iteration_lr_and_clip() {
  std::size_t iterations;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    iterations = stats_.iterations;
  }
  const std::size_t accum = std::max<std::size_t>(cfg_.grad_accumulation, 1);
  micro_index_ = iterations % accum;
  accum_first_ = micro_index_ == 0;
  accum_final_ = micro_index_ + 1 == accum;
  // Schedules tick per optimizer update (accumulation cycle), not per
  // micro-step, matching large-batch training semantics.
  current_lr_ =
      cfg_.lr_schedule
          ? cfg_.lr_schedule(static_cast<std::int64_t>(iterations / accum) + 1)
          : -1.0f;
  if (cfg_.fp16 && accum_first_) overflow_.store(false);
  if (!update_gate_active() || !accum_final_) return;
  grad_sumsq_.assign(store_.size(), 0.0);
  deferred_updates_.clear();
  gate_state_ = std::make_shared<GateState>();  // fresh per-iteration gate
  clip_promise_ = std::promise<void>();
  clip_ready_ = clip_promise_.get_future().share();
}

void StrongholdEngine::finalize_clipped_updates() {
  if (!update_gate_active() || !accum_final_) return;
  // Every evicted layer's gradient must have drained before the norm or the
  // overflow verdict exists.
  d2h_.wait_all();

  const float loss_scale = cfg_.fp16 ? scaler_.scale() : 1.0f;
  bool skip = false;
  if (cfg_.fp16) {
    skip = !scaler_.update(overflow_.load());
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.loss_scale = scaler_.scale();
    if (skip) ++stats_.skipped_updates;
  }

  // Combined gradient multiplier: undo the loss scale, then clip against the
  // UNSCALED norm. grads are currently scaled by loss_scale, so the norm of
  // the true gradient is norm_scaled / loss_scale and the multiplier for a
  // clipped step is clip / norm_scaled.
  float combined = 1.0f / loss_scale;
  if (!skip && clipping()) {
    double total = 0.0;
    for (double s : grad_sumsq_) total += s;
    const double norm_scaled = std::sqrt(total);
    const double norm = norm_scaled / loss_scale;
    if (norm > cfg_.clip_grad_norm) {
      combined = static_cast<float>(cfg_.clip_grad_norm / norm_scaled);
    }
  }
  gate_state_->scale.store(combined);
  gate_state_->skip.store(skip);
  clip_promise_.set_value();  // releases the queued asynchronous updates
  for (auto& update : deferred_updates_) update();
  deferred_updates_.clear();
}

float StrongholdEngine::train_step(const data::Batch& batch) {
  if (!ckpt_) return train_step_body(batch);
  // Surface tier failures parked since the previous step HERE, where the
  // masters are still consistent: the last-gasp path can take a fresh
  // capture before the IoError reaches the trainer.
  try {
    if (swap_) swap_->rethrow_pending();
  } catch (const storage::IoError&) {
    last_gasp_checkpoint(/*consistent=*/true);
    throw;
  }
  float loss;
  try {
    loss = train_step_body(batch);
  } catch (const storage::IoError&) {
    // Mid-step fault: master state may be torn between micro-updates, so a
    // fresh capture could persist garbage. Only let the in-flight staged
    // save (captured at an earlier consistent boundary) finish committing.
    last_gasp_checkpoint(/*consistent=*/false);
    throw;
  }
  try {
    // Fire-and-forget write-back failures from THIS step land here or at
    // the next step's entry, whichever the asynchronous latch wins. Both
    // are consistent boundaries: the iteration counter is final and every
    // master update was issued before the body returned (capture quiesces
    // them), so a fresh last-gasp capture is safe.
    if (swap_) swap_->rethrow_pending();
  } catch (const storage::IoError&) {
    last_gasp_checkpoint(/*consistent=*/true);
    throw;
  }
  maybe_periodic_checkpoint();
  return loss;
}

float StrongholdEngine::train_step_body(const data::Batch& batch) {
  obs::ObsScope step_scope("engine", "train_step");
  // Fire-and-forget tier write-backs from earlier iterations park their
  // permanent failures in the SwapFile; surface them at the iteration
  // boundary (typed IoError) rather than training on a diverged tier.
  // Checkpoint-enabled engines surface them in the train_step wrapper
  // instead, where they can be classified as consistent-boundary faults.
  if (swap_ && !ckpt_) swap_->rethrow_pending();
  const std::int64_t seq = model_.config().max_seq;
  const auto total_tokens = static_cast<std::int64_t>(batch.ids.size());
  if (total_tokens % seq != 0) {
    throw std::invalid_argument("batch tokens not divisible by seq");
  }
  const std::int64_t bs = total_tokens / seq;
  const auto execs = static_cast<std::int64_t>(cfg_.num_executors);
  if (bs % execs != 0) {
    throw std::invalid_argument("batch size must divide num_executors");
  }
  const std::int64_t micro_bs = bs / execs;
  std::int64_t global_step;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    global_step = static_cast<std::int64_t>(stats_.iterations);
  }
  const std::size_t blocks = num_blocks();

  begin_iteration_lr_and_clip();
  // Make sure the initial FP window is resident (first iteration, or after a
  // window-size change or an inference pass).
  normalize_residency();

  dist::Barrier bar(static_cast<int>(cfg_.num_executors));
  std::vector<float> losses(cfg_.num_executors, 0.0f);
  // Micro-batch splitting across executors and gradient-accumulation cycles
  // both average: the applied gradient is the mean over the whole effective
  // batch. FP16 additionally multiplies by the dynamic loss scale so small
  // gradients survive the half-precision wire format.
  const float grad_scale =
      (cfg_.fp16 ? scaler_.scale() : 1.0f) /
      static_cast<float>(
          execs * static_cast<std::int64_t>(
                      std::max<std::size_t>(cfg_.grad_accumulation, 1)));
  const bool profiling = !window_frozen_;

  auto reduce_grads_into = [&](float* dst, std::size_t params) {
    std::fill_n(dst, params, 0.0f);
    for (auto& scratch : exec_grads_) {
      tensor::axpy(1.0f, scratch.data(), dst,
                   static_cast<std::int64_t>(params));
    }
  };

  auto executor_fn = [&](std::size_t e) {
    // Activation tensors this executor allocates are soft-charged to the
    // arena's "activations" region — accounting only, numerics untouched.
    mem::ScopedTensorCharge charge(gpu_pool_, mem::DeviceArena::kActivations);
    nn::GptModel& mdl = e == 0 ? model_ : *replicas_[e - 1];
    // Per-executor batch context: the row offset keys the deterministic
    // dropout masks so the micro-batch split draws the same masks the whole
    // batch would.
    const nn::BatchShape micro_shape{
        micro_bs, seq, /*training=*/true, global_step,
        /*row_offset=*/static_cast<std::int64_t>(e) * micro_bs};
    float* scratch = exec_grads_[e].data();
    const std::size_t row0 = static_cast<std::size_t>(
        static_cast<std::int64_t>(e) * micro_bs * seq);
    const std::size_t micro_tokens = static_cast<std::size_t>(micro_bs * seq);
    std::vector<std::int32_t> ids(batch.ids.begin() + row0,
                                  batch.ids.begin() + row0 + micro_tokens);
    std::vector<std::int32_t> targets(
        batch.targets.begin() + row0,
        batch.targets.begin() + row0 + micro_tokens);

    // ---- Forward ----
    LayerState& emb = store_.state(0);
    auto& emb_layer = static_cast<nn::Embedding&>(mdl.layer(0));
    std::fill_n(scratch, static_cast<std::size_t>(emb.params), 0.0f);
    emb_layer.bind(pinned_emb_, scratch);
    emb_layer.set_ids(ids);
    tensor::Tensor x = emb_layer.forward({}, micro_shape);
    bar.arrive_and_wait();

    for (std::size_t b = 1; b <= blocks; ++b) {
      LayerState& st = block(b);
      if (e == 0) {
        wait_ready(st);
        // Decode the BF16 window copy into the FP32 staging view before the
        // bind barrier; every executor computes on the decoded parameters.
        if (bf16_window()) bind_params_f32(st);
        if (b + window_ <= blocks) prefetch(b + window_);
      }
      bar.arrive_and_wait();
      const auto params = static_cast<std::size_t>(st.params);
      std::fill_n(scratch, params, 0.0f);
      mdl.layer(b).bind(bf16_window() ? stage_.data() : slot_f32(st), scratch);
      const double t0 = now_seconds();
      x = mdl.layer(b).forward(x, micro_shape);
      if (e == 0 && profiling) {
        profiles_[b - 1].t_fp += now_seconds() - t0;
      }
      if (e == 0) trace_span("gpu", "f", t0, now_seconds());
      bar.arrive_and_wait();
      // Per-executor FP grads are unused; nothing to reduce here. Eviction:
      // recycle the computed layer when a future layer still needs a slot;
      // the tail of the model stays resident so BP starts with a full window.
      if (e == 0 && b + window_ <= blocks) {
        evict_after_forward(st);
      }
      // The block's checkpointed input is now quiescent until its backward:
      // eligible to spill to the NVMe tier under arena pressure.
      if (e == 0 && act_spill_enabled_) mark_act_spillable(b);
      bar.arrive_and_wait();
    }

    LayerState& head = store_.state(head_index());
    auto& head_layer = mdl.layer(head_index());
    std::fill_n(scratch, static_cast<std::size_t>(head.params), 0.0f);
    head_layer.bind(pinned_head_, scratch);
    tensor::Tensor logits = head_layer.forward(x, micro_shape);

    tensor::Tensor grad_logits;
    losses[e] = nn::lm_loss(logits, targets, grad_logits);
    tensor::scale(grad_scale, grad_logits.data(), grad_logits.numel());

    // ---- Backward: head ----
    tensor::Tensor g = head_layer.backward(grad_logits, micro_shape);
    bar.arrive_and_wait();
    if (e == 0) {
      const auto hp = static_cast<std::size_t>(head.params);
      reduce_grads_into(pinned_head_ + hp, hp);
      if (cfg_.grad_reducer) {
        cfg_.grad_reducer(head.index, pinned_head_ + hp,
                          static_cast<std::int64_t>(hp));
      }
      apply_pinned_update(head, pinned_head_);
    }
    bar.arrive_and_wait();

    // ---- Backward: blocks in reverse ----
    for (std::size_t b = blocks; b >= 1; --b) {
      LayerState& st = block(b);
      if (e == 0) {
        wait_ready(st);
        if (bf16_window()) bind_params_f32(st);
        if (b > window_) prefetch(b - window_);
        // NVMe optimizer tier: issue the tier read of this layer's moments
        // now, so it overlaps the backward compute below and the update task
        // finds them staged. Skipped under the clip/fp16 gate — the update
        // may be skipped wholesale, and a lease held across the gate could
        // starve the staging ring.
        if (accum_final_ && !update_gate_active()) opts_.prefetch_moments(st);
        // Page this block's spilled activation checkpoint back before its
        // backward re-runs the forward from it.
        if (act_spill_enabled_) restore_spilled_activation(b);
      }
      bar.arrive_and_wait();
      const auto params = static_cast<std::size_t>(st.params);
      std::fill_n(scratch, params, 0.0f);
      mdl.layer(b).bind(bf16_window() ? stage_.data() : slot_f32(st), scratch);
      const double t0 = now_seconds();
      g = mdl.layer(b).backward(g, micro_shape);
      if (e == 0 && profiling) {
        profiles_[b - 1].t_bp += now_seconds() - t0;
      }
      if (e == 0) trace_span("gpu", "b", t0, now_seconds());
      bar.arrive_and_wait();
      if (e == 0) {
        // Gradient all-reduce across executors into the GPU buffer
        // (Section IV-A), then offload + update, or in-place update for the
        // layers that stay resident for the next iteration (III-E1). Under a
        // BF16 window the reduce happens in FP32 on the staging buffer and
        // the sum is rounded once onto the wire — this encode is THE
        // precision-loss event of the gradient path.
        if (bf16_window()) {
          float* gsum = stage_.data() + max_block_params_;
          reduce_grads_into(gsum, params);
          if (cfg_.grad_reducer) {
            cfg_.grad_reducer(st.index, gsum,
                              static_cast<std::int64_t>(params));
          }
          encode_slot(st, gsum, params, params);
        } else {
          reduce_grads_into(slot_f32(st) + params, params);
          if (cfg_.grad_reducer) {
            cfg_.grad_reducer(st.index, slot_f32(st) + params,
                              static_cast<std::int64_t>(params));
          }
        }
        if (b > window_) {
          evict_after_backward(st);
        } else {
          update_resident_layer(st);
        }
      }
      bar.arrive_and_wait();
    }

    // ---- Backward: embedding ----
    std::fill_n(scratch, static_cast<std::size_t>(emb.params), 0.0f);
    emb_layer.bind(pinned_emb_, scratch);
    emb_layer.set_ids(ids);
    (void)emb_layer.backward(g, micro_shape);
    bar.arrive_and_wait();
    if (e == 0) {
      const auto ep = static_cast<std::size_t>(emb.params);
      reduce_grads_into(pinned_emb_ + ep, ep);
      if (cfg_.grad_reducer) {
        cfg_.grad_reducer(emb.index, pinned_emb_ + ep,
                          static_cast<std::int64_t>(ep));
      }
      apply_pinned_update(emb, pinned_emb_);
    }
  };

  if (cfg_.num_executors == 1) {
    executor_fn(0);
  } else {
    std::vector<std::thread> threads;
    for (std::size_t e = 1; e < cfg_.num_executors; ++e) {
      threads.emplace_back(executor_fn, e);
    }
    executor_fn(0);
    for (auto& t : threads) t.join();
  }

  finalize_clipped_updates();
  if (swap_ && !ckpt_) swap_->rethrow_pending();

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.iterations;
    stats_.optimizer_updates = opts_.updates_completed();
  }
  if (profiling) ++profile_samples_;
  maybe_update_window();

  float loss = 0.0f;
  for (float l : losses) loss += l;
  return loss / static_cast<float>(cfg_.num_executors);
}

void StrongholdEngine::maybe_update_window() {
  if (window_frozen_ || profile_samples_ < cfg_.warmup_iterations) return;
  // Quiesce in-flight work so the profiles are complete, then solve.
  opts_.wait_all();
  h2d_.wait_all();
  d2h_.wait_all();

  WindowModelInput input;
  input.layers = profiles_;
  const double inv = 1.0 / static_cast<double>(profile_samples_);
  for (auto& p : input.layers) {
    p.t_fp *= inv;
    p.t_bp *= inv;
    p.t_opt_cpu = p.t_opt_gpu = 0.0;  // evaluated by the simulator benches
  }
  const std::size_t pinned_bytes =
      2 * sizeof(float) *
      static_cast<std::size_t>(store_.state(0).params +
                               store_.state(head_index()).params);
  input.s_avail =
      static_cast<double>(gpu_pool_.capacity() - pinned_bytes);
  input.t_async = cfg_.t_async;

  const WindowDecision d = solve_window(input);
  // The solver bounds d.m by its own memory model (max_m_by_memory), which
  // was fed the true pool capacity minus the pinned layers.
  const std::size_t new_window = std::clamp<std::size_t>(d.m, 1, num_blocks());
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.decision = d;
    stats_.window_auto_selected = true;
  }
  if (new_window > window_) {
    const std::size_t blocks = num_blocks();
    std::size_t slots = new_window < blocks ? new_window + 1 : blocks;
    // Keep the second (eviction) stage slot through auto-window growth when
    // the device still fits it — same double-buffering rationale as the
    // construction-time slot sizing.
    const std::size_t slot_bytes = slot_bytes_;
    const std::size_t growth_bytes =
        slots > slots_reserved_ ? (slots - slots_reserved_) * slot_bytes : 0;
    if (slots < blocks &&
        growth_bytes + slot_bytes <= gpu_pool_.free_bytes()) {
      ++slots;
    }
    slots = std::max(slots, slots_reserved_);
    pool_->ensure_window(slot_bytes_, slots);
    slots_reserved_ = slots;
  }
  window_ = new_window;
  window_frozen_ = true;
}

void StrongholdEngine::stream_layers(const LayerVisitor& visit) {
  const std::size_t blocks = num_blocks();
  mem::ScopedTensorCharge charge(gpu_pool_, mem::DeviceArena::kActivations);
  normalize_residency();
  std::vector<float> scratch(
      static_cast<std::size_t>(store_.max_layer_params()), 0.0f);

  model_.layer(0).bind(pinned_emb_, scratch.data());
  visit(0, model_.layer(0));

  for (std::size_t b = 1; b <= blocks; ++b) {
    LayerState& st = block(b);
    wait_ready(st);
    if (b + window_ <= blocks) prefetch(b + window_);
    model_.layer(b).bind(bind_params_f32(st), scratch.data());
    visit(b, model_.layer(b));
    if (b + window_ <= blocks) evict_after_forward(st);
  }

  model_.layer(head_index()).bind(pinned_head_, scratch.data());
  visit(head_index(), model_.layer(head_index()));
}

tensor::Tensor StrongholdEngine::inference(std::span<const std::int32_t> ids,
                                           const nn::BatchShape& shape,
                                           const ActivationObserver& observer) {
  const std::size_t blocks = num_blocks();
  tensor::Tensor x;
  stream_layers([&](std::size_t unit, nn::Layer& layer) {
    if (unit == 0) {
      auto& emb = static_cast<nn::Embedding&>(layer);
      emb.set_ids({ids.begin(), ids.end()});
      x = emb.forward({}, shape);
    } else {
      x = layer.forward(x, shape);
      if (unit <= blocks && observer) observer(unit, x);
    }
  });
  return x;
}

void StrongholdEngine::quiesce_and_sync_masters() {
  opts_.wait_all();
  d2h_.wait_all();
  h2d_.wait_all();
  if (swap_ != nullptr) {
    // Drain pending tier write-backs and refresh swapped masters.
    for (std::size_t i = 0; i < store_.size(); ++i) {
      store_.fault_in(i).wait();
    }
  }
  // In FP32 mode the pinned layers are updated in place on the GPU; pull
  // them back. In FP16 mode the FP32 masters are authoritative (the pinned
  // buffers only hold the half-rounded compute copies).
  if (!cfg_.fp16) {
    for (std::size_t i : {std::size_t{0}, head_index()}) {
      LayerState& st = store_.state(i);
      std::memcpy(st.cpu_params.data(), slot_f32(st),
                  sizeof(float) * static_cast<std::size_t>(st.params));
    }
  }
}

StrongholdEngine::Decoder::Decoder(StrongholdEngine& engine,
                                   std::int64_t batch, std::int64_t capacity)
    : engine_(engine), batch_(batch), capacity_(capacity) {
  const auto& cfg = engine.model_.config();
  if (capacity <= 0 || capacity > cfg.max_seq) {
    throw std::invalid_argument("Decoder capacity must be in (0, max_seq]");
  }
  const std::int64_t heads = cfg.heads;
  const std::int64_t head_dim = cfg.hidden / cfg.heads;
  // Session KV caches are device-resident state: soft-charge them to the
  // arena's "kv" region for the lifetime of the decoder.
  mem::ScopedTensorCharge kv_charge(engine.gpu_pool_,
                                    mem::DeviceArena::kKv);
  caches_.resize(engine.num_blocks());
  for (auto& c : caches_) {
    c.k = tensor::Tensor::zeros({batch, heads, capacity, head_dim});
    c.v = tensor::Tensor::zeros({batch, heads, capacity, head_dim});
    c.capacity = capacity;
    c.length = 0;
  }
}

tensor::Tensor StrongholdEngine::Decoder::step(
    std::span<const std::int32_t> ids, std::int64_t n_new) {
  return engine_.decode_step(*this, ids, n_new);
}

StrongholdEngine::Decoder StrongholdEngine::make_decoder(
    std::int64_t batch, std::int64_t capacity) {
  return Decoder(*this, batch, capacity);
}

tensor::Tensor StrongholdEngine::decode_step(Decoder& decoder,
                                             std::span<const std::int32_t> ids,
                                             std::int64_t n_new) {
  if (static_cast<std::int64_t>(ids.size()) != decoder.batch_ * n_new) {
    throw std::invalid_argument("decode_step: ids size mismatch");
  }
  if (decoder.pos_ + n_new > decoder.capacity_) {
    throw std::out_of_range("decode_step: decoder capacity exceeded");
  }
  const std::size_t blocks = num_blocks();
  const nn::BatchShape shape{decoder.batch_, n_new, /*training=*/false,
                             /*step=*/0, /*row_offset=*/0,
                             /*pos_offset=*/decoder.pos_};

  tensor::Tensor x;
  stream_layers([&](std::size_t unit, nn::Layer& layer) {
    if (unit == 0) {
      auto& emb = static_cast<nn::Embedding&>(layer);
      emb.set_ids({ids.begin(), ids.end()});
      x = emb.forward({}, shape);
    } else if (unit <= blocks) {
      x = layer.forward_incremental(x, shape, decoder.caches_[unit - 1]);
    } else {
      x = layer.forward(x, shape);
    }
  });
  decoder.pos_ += n_new;
  return x;
}

std::vector<std::int32_t> StrongholdEngine::generate_incremental(
    std::span<const std::int32_t> prompt, std::size_t new_tokens) {
  if (prompt.empty()) {
    throw std::invalid_argument("generate_incremental: prompt empty");
  }
  const std::int64_t capacity = model_.config().max_seq;
  if (static_cast<std::int64_t>(prompt.size() + new_tokens) > capacity) {
    throw std::invalid_argument(
        "generate_incremental: prompt + new tokens exceed max_seq");
  }
  Decoder dec = make_decoder(1, capacity);
  std::vector<std::int32_t> tokens(prompt.begin(), prompt.end());
  // Prefill the prompt in one pass, then decode token by token.
  auto logits = dec.step(prompt, static_cast<std::int64_t>(prompt.size()));
  const std::int64_t classes = logits.shape().dim(1);
  auto pick_last = [&](const tensor::Tensor& lg, std::int64_t rows) {
    const float* last = lg.data() + (rows - 1) * classes;
    return static_cast<std::int32_t>(std::max_element(last, last + classes) -
                                     last);
  };
  std::int32_t next = pick_last(logits, static_cast<std::int64_t>(prompt.size()));
  for (std::size_t i = 0; i < new_tokens; ++i) {
    tokens.push_back(next);
    if (i + 1 == new_tokens) break;
    const std::int32_t cur = next;
    logits = dec.step({&cur, 1}, 1);
    next = pick_last(logits, 1);
  }
  return tokens;
}

std::vector<std::int32_t> StrongholdEngine::generate(
    std::span<const std::int32_t> prompt, std::size_t new_tokens) {
  if (prompt.empty()) {
    throw std::invalid_argument("generate: prompt must not be empty");
  }
  const std::int64_t seq = model_.config().max_seq;
  std::vector<std::int32_t> tokens(prompt.begin(), prompt.end());
  for (std::size_t i = 0; i < new_tokens; ++i) {
    // Context: the last `seq` tokens, left-padded by repeating the first
    // token when the prompt is shorter than the model context.
    std::vector<std::int32_t> ctx(static_cast<std::size_t>(seq), tokens.front());
    const std::size_t have = std::min<std::size_t>(tokens.size(),
                                                   static_cast<std::size_t>(seq));
    std::copy(tokens.end() - static_cast<std::ptrdiff_t>(have), tokens.end(),
              ctx.end() - static_cast<std::ptrdiff_t>(have));
    auto logits = inference(ctx, {1, seq});
    // Greedy pick at the last position.
    const std::int64_t classes = logits.shape().dim(1);
    const float* last = logits.data() + (seq - 1) * classes;
    const auto next = static_cast<std::int32_t>(
        std::max_element(last, last + classes) - last);
    tokens.push_back(next);
  }
  return tokens;
}

void StrongholdEngine::snapshot_params(std::vector<float>& out) {
  quiesce_and_sync_masters();
  out.clear();
  for (std::size_t i = 0; i < store_.size(); ++i) {
    const LayerState& st = store_.state(i);
    out.insert(out.end(), st.cpu_params.begin(), st.cpu_params.end());
  }
}

void StrongholdEngine::save_checkpoint(const std::string& path) {
  quiesce_and_sync_masters();
  write_checkpoint(path, store_);
}

void StrongholdEngine::load_checkpoint(const std::string& path) {
  quiesce_and_sync_masters();
  read_checkpoint(path, store_);
  // Refresh every GPU-resident copy from the restored masters, re-applying
  // the wire-format rounding a fresh fetch would have (fp16/bf16).
  for (std::size_t i = 0; i < store_.size(); ++i) {
    LayerState& st = store_.state(i);
    if (st.gpu_slot == nullptr) continue;
    refresh_device_copy(st);
    if (st.swap_backed) store_.write_back(i);
  }
  // Swap-backed layers that are not resident also need their tier refreshed.
  if (swap_ != nullptr) {
    for (std::size_t i = 0; i < store_.size(); ++i) {
      LayerState& st = store_.state(i);
      if (st.swap_backed && st.gpu_slot == nullptr) store_.write_back(i);
    }
  }
}

namespace {
/// Shape guard stored in every snapshot: restoring into a different model
/// geometry or precision mode is a typed error, not silent corruption.
struct CkptGeometry {
  std::uint64_t layers = 0;
  std::uint64_t total_params = 0;
  std::uint32_t fp16 = 0;
  std::uint32_t grad_accumulation = 1;
};
}  // namespace

ckpt::Snapshot StrongholdEngine::capture_snapshot() {
  obs::ObsScope scope("ckpt", "capture");
  // Quiesce, but deliberately do NOT fault_in from the swap tier: the CPU
  // master vectors are written by every optimizer update BEFORE the tier
  // write-back, so they are authoritative once the queues drain. Re-reading
  // the tier here would be redundant on a healthy device and actively wrong
  // on a faulted one (the last-gasp path snapshots exactly when the tier's
  // write-backs have failed — its stale regions must not clobber good RAM).
  opts_.wait_all();
  d2h_.wait_all();
  h2d_.wait_all();
  if (swap_ != nullptr) swap_->wait_all();
  if (!cfg_.fp16) {
    for (std::size_t i : {std::size_t{0}, head_index()}) {
      LayerState& st = store_.state(i);
      std::memcpy(st.cpu_params.data(), slot_f32(st),
                  sizeof(float) * static_cast<std::size_t>(st.params));
    }
  }

  std::size_t iterations;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    iterations = stats_.iterations;
    ++stats_.ckpt_snapshots;
  }
  const std::size_t accum = std::max<std::size_t>(cfg_.grad_accumulation, 1);
  // Between optimizer updates the CPU-side gradient accumulators are live
  // state: without them a resumed cycle would restart from zero.
  const bool mid_cycle = iterations % accum != 0;

  ckpt::Snapshot snap;
  snap.step = iterations;
  CkptGeometry geom;
  geom.layers = store_.size();
  geom.fp16 = cfg_.fp16 ? 1 : 0;
  geom.grad_accumulation = static_cast<std::uint32_t>(accum);
  std::vector<std::int64_t> steps(store_.size());
  for (std::size_t i = 0; i < store_.size(); ++i) {
    const LayerState& st = store_.state(i);
    const std::string prefix = "L" + std::to_string(i);
    snap.tensors.push_back({prefix + ".params", st.cpu_params});
    // NVMe-tiered layers have no host moment plane; moments_copy reads the
    // tier's moment region (the only place they live). The snapshot format
    // is unchanged — SH_OPT_TIER does not change what a checkpoint contains.
    snap.tensors.push_back({prefix + ".opt", store_.moments_copy(i)});
    if (mid_cycle) snap.tensors.push_back({prefix + ".grads", st.cpu_grads});
    steps[i] = st.step;
    geom.total_params += static_cast<std::uint64_t>(st.params);
  }
  snap.blobs.put_bytes("engine.layer_steps", steps.data(),
                       steps.size() * sizeof(std::int64_t));
  snap.blobs.put("engine.geometry", geom);
  snap.blobs.put("engine.iterations", static_cast<std::uint64_t>(iterations));
  snap.blobs.put("engine.scaler", scaler_.save_state());
  snap.blobs.put("engine.overflow",
                 static_cast<std::uint32_t>(overflow_.load() ? 1 : 0));
  if (cfg_.ckpt_extra_save) cfg_.ckpt_extra_save(snap.blobs);
  return snap;
}

void StrongholdEngine::restore_snapshot(const ckpt::Snapshot& snap) {
  obs::ObsScope scope("ckpt", "restore_install");
  quiesce_and_sync_masters();

  const auto geom = snap.blobs.get<CkptGeometry>("engine.geometry");
  const std::size_t accum = std::max<std::size_t>(cfg_.grad_accumulation, 1);
  CkptGeometry want;
  want.layers = store_.size();
  want.fp16 = cfg_.fp16 ? 1 : 0;
  want.grad_accumulation = static_cast<std::uint32_t>(accum);
  for (std::size_t i = 0; i < store_.size(); ++i) {
    want.total_params +=
        static_cast<std::uint64_t>(store_.state(i).params);
  }
  if (geom.layers != want.layers || geom.total_params != want.total_params ||
      geom.fp16 != want.fp16 ||
      geom.grad_accumulation != want.grad_accumulation) {
    throw ckpt::RestoreError(
        ckpt::RestoreErrorKind::GeometryMismatch,
        "ckpt: snapshot geometry (" + std::to_string(geom.layers) +
            " layers, " + std::to_string(geom.total_params) +
            " params, fp16=" + std::to_string(geom.fp16) + ", accum=" +
            std::to_string(geom.grad_accumulation) + ") does not match engine",
        snap.step);
  }

  std::unordered_map<std::string, const ckpt::TensorEntry*> by_name;
  for (const auto& t : snap.tensors) by_name.emplace(t.name, &t);
  auto tensor_for = [&](const std::string& name,
                        std::size_t count) -> const std::vector<float>& {
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      throw ckpt::RestoreError(ckpt::RestoreErrorKind::MissingData,
                               "ckpt: tensor '" + name +
                                   "' missing from snapshot",
                               snap.step);
    }
    if (it->second->data.size() != count) {
      throw ckpt::RestoreError(
          ckpt::RestoreErrorKind::GeometryMismatch,
          "ckpt: tensor '" + name + "' has " +
              std::to_string(it->second->data.size()) + " floats, expected " +
              std::to_string(count),
          snap.step);
    }
    return it->second->data;
  };

  std::vector<std::int64_t> steps(store_.size());
  {
    const auto it = snap.blobs.entries.find("engine.layer_steps");
    if (it == snap.blobs.entries.end() ||
        it->second.size() != steps.size() * sizeof(std::int64_t)) {
      throw ckpt::RestoreError(ckpt::RestoreErrorKind::MissingData,
                               "ckpt: engine.layer_steps blob missing/mis-"
                               "sized",
                               snap.step);
    }
    std::memcpy(steps.data(), it->second.data(), it->second.size());
  }

  // Validation passed for every layer below (tensor_for re-checks sizes
  // before any copy lands), so the install cannot leave the store half-new.
  const bool mid_cycle = snap.step % accum != 0;
  for (std::size_t i = 0; i < store_.size(); ++i) {
    const std::string prefix = "L" + std::to_string(i);
    const auto params = static_cast<std::size_t>(store_.state(i).params);
    (void)tensor_for(prefix + ".params", params);
    (void)tensor_for(prefix + ".opt", store_.opt_floats(i));
    if (mid_cycle) (void)tensor_for(prefix + ".grads", params);
  }
  for (std::size_t i = 0; i < store_.size(); ++i) {
    LayerState& st = store_.state(i);
    const std::string prefix = "L" + std::to_string(i);
    const auto params = static_cast<std::size_t>(st.params);
    const auto& p = tensor_for(prefix + ".params", params);
    std::copy(p.begin(), p.end(), st.cpu_params.begin());
    const auto& o = tensor_for(prefix + ".opt", store_.opt_floats(i));
    store_.install_moments(i, o);
    if (mid_cycle) {
      const auto& g = tensor_for(prefix + ".grads", params);
      std::copy(g.begin(), g.end(), st.cpu_grads.begin());
    }
    st.step = steps[i];
  }

  scaler_.load_state(snap.blobs.get<LossScaler::State>("engine.scaler"));
  overflow_.store(snap.blobs.get<std::uint32_t>("engine.overflow") != 0);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.iterations = static_cast<std::size_t>(
        snap.blobs.get<std::uint64_t>("engine.iterations"));
    stats_.loss_scale = scaler_.scale();
  }

  // Refresh every GPU-resident copy (and the swap tier) from the restored
  // masters, exactly as load_checkpoint does — plus the wire-format rounding
  // (fp16/bf16) that a freshly fetched layer would carry.
  for (std::size_t i = 0; i < store_.size(); ++i) {
    LayerState& st = store_.state(i);
    if (st.gpu_slot == nullptr) continue;
    refresh_device_copy(st);
    if (st.swap_backed) store_.write_back(i);
  }
  if (swap_ != nullptr) {
    for (std::size_t i = 0; i < store_.size(); ++i) {
      LayerState& st = store_.state(i);
      if (st.swap_backed && st.gpu_slot == nullptr) store_.write_back(i);
    }
  }

  if (cfg_.ckpt_extra_load) cfg_.ckpt_extra_load(snap.blobs);
}

bool StrongholdEngine::resume_from_latest() {
  if (!ckpt_) return false;
  try {
    restore_snapshot(ckpt_->restore_latest());
    return true;
  } catch (const ckpt::RestoreError& e) {
    if (e.kind() == ckpt::RestoreErrorKind::NoValidGeneration) return false;
    throw;  // a generation exists but does not fit this engine — real error
  }
}

void StrongholdEngine::checkpoint_now() {
  if (!ckpt_) {
    throw std::logic_error(
        "checkpoint_now: checkpointing disabled (EngineConfig::ckpt.dir "
        "empty)");
  }
  ckpt_->save_now(capture_snapshot());
}

void StrongholdEngine::maybe_periodic_checkpoint() {
  if (!ckpt_ || cfg_.ckpt.every_n_steps == 0) return;
  std::size_t iterations;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    iterations = stats_.iterations;
  }
  if (iterations % cfg_.ckpt.every_n_steps != 0) return;
  // Capture stalls briefly (quiesce + staging copies); the write and the
  // rename-commit then overlap with the following steps' compute.
  ckpt_->save_async(capture_snapshot());
}

void StrongholdEngine::last_gasp_checkpoint(bool consistent) {
  if (!ckpt_) return;
  if (consistent) {
    try {
      ckpt_->save_now(capture_snapshot());
    } catch (...) {
      // The original IoError is what the trainer must see; a failed
      // last-gasp leaves the previous committed generation intact.
    }
  } else {
    // Only finish committing the staged snapshot already in flight (it was
    // captured at a consistent boundary). The checkpoint tier is a separate
    // SwapFile, so a dead training tier does not block this.
    ckpt_->finish();
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.ckpt_last_gasp;
}

EngineStats StrongholdEngine::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  EngineStats s = stats_;
  s.window = window_;
  s.gpu_high_water_bytes = gpu_pool_.peak_bytes();
  s.arena = gpu_pool_.stats();
  if (swap_) {
    s.swap_faults_injected = swap_->fault_plan().counters().faults_total;
    s.swap_retries = swap_->retries_attempted();
    s.swap_io_errors = swap_->io_errors();
    s.swap_retry_backoff_s = swap_->retry_backoff_seconds();
  }
  s.opt_tiered_layers = store_.opt_tiered_count();
  s.moment_prefetches = opts_.moment_prefetches();
  s.moment_demand_reads = opts_.moment_demand_reads();
  s.moment_update_skips = opts_.moment_update_skips();
  s.moment_writes = opts_.moment_writes();
  return s;
}

void StrongholdEngine::export_metrics(obs::MetricsSnapshot& out) const {
  const EngineStats s = stats();
  const auto n = [](std::size_t v) { return static_cast<double>(v); };
  out.add("engine.window", n(s.window), "layers");
  out.add("engine.iterations", n(s.iterations));
  out.add("engine.prefetch_stalls", n(s.prefetch_stalls));
  out.add("engine.stall_seconds", s.stall_seconds, "s");
  out.add("engine.deferred_prefetches", n(s.deferred_prefetches));
  out.add("engine.demand_fetches", n(s.demand_fetches));
  out.add("engine.h2d_transfers", n(s.h2d_transfers));
  out.add("engine.h2d_bytes", n(s.h2d_bytes), "bytes");
  out.add("engine.h2d_bytes_per_step",
          n(s.h2d_bytes) / n(std::max<std::size_t>(s.iterations, 1)),
          "bytes");
  out.add("engine.h2d_queue_depth", n(h2d_.queue_depth()));
  out.add("engine.d2h_transfers", n(s.d2h_transfers));
  out.add("engine.d2h_bytes", n(s.d2h_bytes), "bytes");
  out.add("engine.d2h_bytes_per_step",
          n(s.d2h_bytes) / n(std::max<std::size_t>(s.iterations, 1)),
          "bytes");
  out.add("engine.d2h_queue_depth", n(d2h_.queue_depth()));
  // True wire bytes as seen by the links themselves (dtype-honest: fp16 and
  // bf16 both report 2 bytes/element).
  out.add("engine.h2d_link_bytes", n(h2d_.bytes_transferred()), "bytes");
  out.add("engine.d2h_link_bytes", n(d2h_.bytes_transferred()), "bytes");
  out.add("engine.window_elem_bytes", n(elem_bytes_), "bytes");
  out.add("engine.swap_backed_layers", n(s.swap_backed_layers), "layers");
  out.add("engine.loss_scale", s.loss_scale, "");
  out.add("engine.skipped_updates", n(s.skipped_updates));
  out.add("engine.ckpt_snapshots", n(s.ckpt_snapshots));
  out.add("engine.ckpt_last_gasp", n(s.ckpt_last_gasp));
  out.add("optimizer.updates", n(s.optimizer_updates));
  out.add("optimizer.in_flight", n(opts_.in_flight()));
  out.add("optimizer.workers", n(opts_.workers()));
  out.add("optimizer.tier_layers", n(s.opt_tiered_layers), "layers");
  out.add("optimizer.tier_prefetches", n(s.moment_prefetches));
  out.add("optimizer.tier_demand_reads", n(s.moment_demand_reads));
  out.add("optimizer.tier_update_skips", n(s.moment_update_skips));
  out.add("optimizer.tier_writes", n(s.moment_writes));
  out.add("engine.act_spills", n(s.act_spills));
  out.add("engine.act_restores", n(s.act_restores));
  out.add("arena.capacity_bytes", n(s.arena.capacity), "bytes");
  out.add("arena.bytes_in_use", n(s.arena.bytes_in_use), "bytes");
  out.add("arena.peak_bytes", n(s.arena.peak_bytes), "bytes");
  out.add("arena.pressure_events", n(s.arena.pressure_events));
  out.add("arena.pressure_releases", n(s.arena.pressure_releases));
  out.add("arena.pressure_stalls", n(s.arena.pressure_stalls));
  for (const auto& [region, rs] : s.arena.regions) {
    out.add("arena." + region + ".bytes_in_use", n(rs.bytes_in_use), "bytes");
    out.add("arena." + region + ".peak_bytes", n(rs.peak_bytes), "bytes");
    out.add("arena." + region + ".pressure_events", n(rs.pressure_events));
  }
}

}  // namespace sh::core

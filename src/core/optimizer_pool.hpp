// Concurrent parameter update (Section III-E1).
//
// Conventional schemes (including ZeRO-Offload) drive one optimizer; the
// STRONGHOLD runtime instead creates multiple optimizer instances at model
// initialisation and dispatches them as asynchronous actors so several
// layers update simultaneously on CPU cores, concurrently with the GPU's
// backward computation. The paper uses Ray actors; we use a thread pool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "core/layer_store.hpp"
#include "optim/optimizer.hpp"
#include "parallel/thread_pool.hpp"

namespace sh::core {

class OptimizerPool {
 public:
  /// Creates `workers` optimizer actors, each holding its own clone of
  /// `prototype`.
  OptimizerPool(const optim::Optimizer& prototype, std::size_t workers);

  /// Schedules an asynchronous parameter update for `st` using its CPU-side
  /// grads and optimizer state. If `after` is valid, the update waits for it
  /// first (e.g. the grad d2h copy). `post_update` runs inside the task after
  /// the step (e.g. the NVMe tier write-back). `lr` overrides the learning
  /// rate (schedules); `grad_scale`, when set, is evaluated inside the task
  /// and applied to the gradients before the step (global-norm clipping —
  /// the factor is only known once every layer's gradient has landed).
  /// Returns the completion future and also stores it in `st.update_done`.
  /// `skip_update`, when set and true at execution time, drops the step
  /// entirely (dynamic loss scaling skips overflowed iterations).
  std::shared_future<void> submit(LayerState& st,
                                  std::shared_future<void> after = {},
                                  std::function<void()> post_update = {},
                                  float lr = -1.0f,
                                  std::function<float()> grad_scale = {},
                                  std::function<bool()> skip_update = {});

  /// Runs an update synchronously on the caller's thread (used for the
  /// GPU-pinned layers, whose update the paper performs on the GPU).
  void update_now(LayerState& st, float* params, const float* grads,
                  float lr = -1.0f);

  void wait_all();
  std::size_t updates_completed() const noexcept { return completed_.load(); }
  /// Updates submitted but not yet finished (occupancy gauge).
  std::size_t in_flight() const noexcept { return in_flight_.load(); }
  std::size_t workers() const noexcept { return pool_.num_threads(); }

  /// Observer invoked with (start, end) wall-clock seconds of every update —
  /// used by the engine's execution tracer. Set before submitting work.
  void set_update_observer(std::function<void(double, double)> observer) {
    observer_ = std::move(observer);
  }

  /// Enables NVMe-resident moment paging (ZeRO-Infinity-style optimizer
  /// offload): updates of `store`'s opt-tiered layers stage their Adam
  /// moments through a small ring of reusable host buffers, reading from and
  /// writing back to the store's swap tier. Call once before training.
  void enable_moment_tier(LayerStore& store);
  bool moment_tier_enabled() const noexcept { return store_ != nullptr; }

  /// Issues the tier read of `st`'s moments ahead of its update so the read
  /// overlaps preceding compute (call from the control thread; no-op for
  /// non-tiered layers). Blocks only when every staging buffer is in use —
  /// backpressure, since buffers free as queued updates drain.
  void prefetch_moments(LayerState& st);

  /// Moment-tier counters (zero when the tier is disabled).
  std::size_t moment_prefetches() const noexcept {
    return moment_prefetches_.load();
  }
  std::size_t moment_demand_reads() const noexcept {
    return moment_demand_reads_.load();
  }
  std::size_t moment_update_skips() const noexcept {
    return moment_update_skips_.load();
  }
  std::size_t moment_writes() const noexcept { return moment_writes_.load(); }

 private:
  // One staging slot of the moment ring. `read` is the pending tier read of
  // `owner`'s moments into `buf`; `last_op` is the last tier op touching
  // `buf` (the previous owner's write-back) and must complete before reuse.
  struct MomentLease {
    std::vector<float> buf;
    std::shared_future<void> read;
    std::shared_future<void> last_op;
    LayerState* owner = nullptr;
  };

  /// Returns the lease staging `st`'s moments, issuing a demand read when no
  /// prefetch is pending. The pending read is NOT yet waited on.
  MomentLease* acquire_moments(LayerState& st);
  void release_moments(MomentLease* lease,
                       std::shared_future<void> write_back);

  std::vector<std::unique_ptr<optim::Optimizer>> actors_;
  std::atomic<std::size_t> next_actor_{0};
  std::atomic<std::size_t> completed_{0};
  std::atomic<std::size_t> in_flight_{0};
  std::function<void(double, double)> observer_;

  LayerStore* store_ = nullptr;  // non-null once the moment tier is enabled
  std::vector<MomentLease> leases_;
  std::mutex moment_mu_;
  std::condition_variable moment_cv_;
  std::atomic<std::size_t> moment_prefetches_{0};
  std::atomic<std::size_t> moment_demand_reads_{0};
  std::atomic<std::size_t> moment_update_skips_{0};
  std::atomic<std::size_t> moment_writes_{0};

  parallel::ThreadPool pool_;
};

}  // namespace sh::core

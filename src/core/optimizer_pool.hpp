// Concurrent parameter update (Section III-E1).
//
// Conventional schemes (including ZeRO-Offload) drive one optimizer; the
// STRONGHOLD runtime instead creates multiple optimizer instances at model
// initialisation and dispatches them as asynchronous actors so several
// layers update simultaneously on CPU cores, concurrently with the GPU's
// backward computation. The paper uses Ray actors; we use a thread pool.
#pragma once

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <vector>

#include "core/layer_store.hpp"
#include "optim/optimizer.hpp"
#include "parallel/thread_pool.hpp"

namespace sh::core {

class OptimizerPool {
 public:
  /// Creates `workers` optimizer actors, each holding its own clone of
  /// `prototype`.
  OptimizerPool(const optim::Optimizer& prototype, std::size_t workers);

  /// Schedules an asynchronous parameter update for `st` using its CPU-side
  /// grads and optimizer state. If `after` is valid, the update waits for it
  /// first (e.g. the grad d2h copy). `post_update` runs inside the task after
  /// the step (e.g. the NVMe tier write-back). `lr` overrides the learning
  /// rate (schedules); `grad_scale`, when set, is evaluated inside the task
  /// and applied to the gradients before the step (global-norm clipping —
  /// the factor is only known once every layer's gradient has landed).
  /// Returns the completion future and also stores it in `st.update_done`.
  /// `skip_update`, when set and true at execution time, drops the step
  /// entirely (dynamic loss scaling skips overflowed iterations).
  std::shared_future<void> submit(LayerState& st,
                                  std::shared_future<void> after = {},
                                  std::function<void()> post_update = {},
                                  float lr = -1.0f,
                                  std::function<float()> grad_scale = {},
                                  std::function<bool()> skip_update = {});

  /// Runs an update synchronously on the caller's thread (used for the
  /// GPU-pinned layers, whose update the paper performs on the GPU).
  void update_now(LayerState& st, float* params, const float* grads,
                  float lr = -1.0f);

  void wait_all();
  std::size_t updates_completed() const noexcept { return completed_.load(); }
  /// Updates submitted but not yet finished (occupancy gauge).
  std::size_t in_flight() const noexcept { return in_flight_.load(); }
  std::size_t workers() const noexcept { return pool_.num_threads(); }

  /// Observer invoked with (start, end) wall-clock seconds of every update —
  /// used by the engine's execution tracer. Set before submitting work.
  void set_update_observer(std::function<void(double, double)> observer) {
    observer_ = std::move(observer);
  }

 private:
  std::vector<std::unique_ptr<optim::Optimizer>> actors_;
  std::atomic<std::size_t> next_actor_{0};
  std::atomic<std::size_t> completed_{0};
  std::atomic<std::size_t> in_flight_{0};
  std::function<void(double, double)> observer_;
  parallel::ThreadPool pool_;
};

}  // namespace sh::core

#include "core/window_model.hpp"

#include <algorithm>
#include <numeric>

namespace sh::core {

namespace {

/// Max of s_fp (FP windows also stage the incoming layer j, 1c) and plain
/// s_bp sums (2c) for every window position of size m.
bool memory_fits(const std::vector<LayerProfile>& ls, std::size_t m,
                 double s_avail) {
  const std::size_t n = ls.size();
  if (m > n) return false;
  for (std::size_t i = 0; i + m <= n; ++i) {
    double fp_sum = 0.0;
    double bp_sum = 0.0;
    for (std::size_t k = i; k < i + m; ++k) {
      fp_sum += ls[k].s_fp;
      bp_sum += ls[k].s_bp;
    }
    const double incoming = (i + m < n) ? ls[i + m].s_fp : 0.0;
    if (fp_sum + incoming > s_avail) return false;
    if (bp_sum > s_avail) return false;
  }
  return true;
}

/// P1 hard constraint (1b): window compute covers the next layer's fetch.
bool fp_overlap_ok(const std::vector<LayerProfile>& ls, std::size_t m) {
  const std::size_t n = ls.size();
  for (std::size_t i = 0; i + m < n; ++i) {
    double window_compute = 0.0;
    for (std::size_t k = i; k < i + m; ++k) window_compute += ls[k].t_fp;
    if (window_compute < ls[i + m].t_c2g) return false;
  }
  return true;
}

/// P2 hard constraint (2b): BP window compute covers the outgoing transfer.
/// BP walks layers in reverse; the layer outside the window in BP direction
/// is i - 1 for a window [i, i+m).
bool bp_overlap_ok(const std::vector<LayerProfile>& ls, std::size_t m) {
  const std::size_t n = ls.size();
  if (m == 0) return false;
  for (std::size_t i = 1; i + m <= n; ++i) {
    double window_compute = 0.0;
    for (std::size_t k = i; k < i + m - 1; ++k) window_compute += ls[k].t_bp;
    // Sum over m-1 layers (2b sums to m-1); the transferred layer is the
    // one leaving the window toward the CPU.
    if (window_compute < ls[i - 1].t_g2c && m > 1) return false;
    if (m == 1 && ls[i].t_bp < ls[i - 1].t_g2c) return false;
  }
  return true;
}

/// Soft constraint (1d)/(2d): window compute covers both transfer directions.
bool soft_ok(const std::vector<LayerProfile>& ls, std::size_t m, bool fp) {
  const std::size_t n = ls.size();
  for (std::size_t i = 0; i + m <= n; ++i) {
    double compute = 0.0;
    double xfer = 0.0;
    for (std::size_t k = i; k < i + m; ++k) {
      compute += fp ? ls[k].t_fp : ls[k].t_bp;
      xfer += ls[k].t_c2g + ls[k].t_g2c;
    }
    if (compute < xfer) return false;
  }
  return true;
}

}  // namespace

bool window_satisfies_hard_constraints(const WindowModelInput& input,
                                       std::size_t m) {
  if (m == 0 || m > input.layers.size()) return false;
  return memory_fits(input.layers, m, input.s_avail) &&
         fp_overlap_ok(input.layers, m) && bp_overlap_ok(input.layers, m);
}

WindowDecision solve_window(const WindowModelInput& input) {
  WindowDecision d;
  const auto& ls = input.layers;
  const std::size_t n = ls.size();
  if (n == 0) return d;

  for (std::size_t m = 1; m <= n; ++m) {
    if (memory_fits(ls, m, input.s_avail)) d.max_m_by_memory = m;
  }
  if (d.max_m_by_memory == 0) return d;  // not even one layer fits

  for (std::size_t m = 1; m <= d.max_m_by_memory && d.m_fp == 0; ++m) {
    if (fp_overlap_ok(ls, m)) d.m_fp = m;
  }
  for (std::size_t m = 1; m <= d.max_m_by_memory && d.m_bp == 0; ++m) {
    if (bp_overlap_ok(ls, m)) d.m_bp = m;
  }

  if (d.m_fp > 0 && d.m_bp > 0) {
    d.feasible = true;
    d.m = std::max(d.m_fp, d.m_bp);
    // Prefer the smallest window >= the hard minimum that also satisfies the
    // soft constraints (1d)/(2d); if no such window exists (e.g. homogeneous
    // layers where both sides scale together), keep the hard minimum — a
    // larger window would waste GPU memory for no overlap gain.
    for (std::size_t m = d.m; m <= d.max_m_by_memory; ++m) {
      if (soft_ok(ls, m, true) && soft_ok(ls, m, false)) {
        d.m = m;
        break;
      }
    }
  } else {
    d.feasible = false;
    d.m = d.max_m_by_memory;  // fallback: largest memory-permitted window
  }

  d.soft_fp = soft_ok(ls, d.m, true);
  d.soft_bp = soft_ok(ls, d.m, false);

  // Eq. 3: each CPU-side update must finish within the remaining FP+BP
  // compute plus the GPU-side updates of the window layers. With the NVMe
  // optimizer tier the update additionally pages its Adam moments through
  // the tier (t_opt_io: prefetch read + write-back), so the hidden-update
  // condition charges t_opt_cpu + t_opt_io against the same budget.
  // tier_io_hidden evaluates the I/O share alone, separating "CPU update too
  // slow" from "tier bandwidth too slow" when Eq. 3 fails.
  const double gpu_opt_window = std::accumulate(
      ls.begin(), ls.begin() + static_cast<std::ptrdiff_t>(std::min(d.m, n)),
      0.0, [](double acc, const LayerProfile& l) { return acc + l.t_opt_gpu; });
  d.update_hidden = true;
  d.tier_io_hidden = true;
  for (std::size_t k = d.m; k < n; ++k) {
    double budget = gpu_opt_window;
    for (std::size_t i = 0; i <= k; ++i) budget += ls[i].t_fp + ls[i].t_bp;
    if (ls[k].t_opt_cpu + ls[k].t_opt_io > budget) d.update_hidden = false;
    if (ls[k].t_opt_io > budget) d.tier_io_hidden = false;
    if (!d.update_hidden && !d.tier_io_hidden) break;
  }

  // Eq. 4: 5 n t_async <= sum_{i=m}^{n} t_opt_gpu (the GPU-side update time
  // freed by moving updates to the CPU amortises the async-call overhead).
  double freed = 0.0;
  for (std::size_t i = d.m; i < n; ++i) freed += ls[i].t_opt_gpu;
  d.async_amortized =
      5.0 * static_cast<double>(n) * input.t_async <= freed;
  return d;
}

}  // namespace sh::core

// Allocation policy for the GPU working window.
//
// UniformSlotAllocator implements the paper's default: m+1 reserved
// fixed-size slots recycled round-robin, sized for the largest layer — best
// cache locality for homogeneous Transformer stacks (Section III-E3). The
// engine adds a second stage slot (m+2) when the device fits it, so the
// incoming prefetch and the outgoing eviction's throttled d2h drain each own
// a buffer instead of serialising on one (see engine.cpp slot sizing).
// BudgetSlotAllocator implements the alternative the paper offers for
// heterogeneous layer structures: one fixed-size buffer whose resident layer
// count varies dynamically (Section III-D).
//
// The interface is byte-typed: the engine prices a layer's elements into
// bytes under the configured window dtype (f32 or bf16) before asking for
// space, so slot fit and window accounting see actual device bytes.
#pragma once

#include <cstddef>
#include <memory>

#include "mem/pool_policies.hpp"

namespace sh::core {

using BufferPool = ::sh::mem::BufferPool;
using ByteBudgetPool = ::sh::mem::ByteBudgetPool;

class SlotAllocator {
 public:
  virtual ~SlotAllocator() = default;

  /// Obtains GPU space for a layer of `bytes` bytes; blocks until available.
  virtual std::byte* acquire(std::size_t bytes) = 0;

  /// Non-blocking variant: nullptr when nothing fits right now. Used for
  /// opportunistic prefetching in the byte-budget mode, where a blocking
  /// fetch from the control thread could wait on space that only the
  /// control thread's own progress can free.
  virtual std::byte* try_acquire(std::size_t bytes) = 0;

  virtual void release(std::byte* ptr) = 0;

  /// Adjusts capacity for a new window decision (grow-only semantics).
  virtual void ensure_window(std::size_t slot_bytes, std::size_t slots) = 0;

  /// True when hook-time prefetches may block safely (uniform slots: the
  /// m+1-slot invariant guarantees progress). Byte-budget mode defers
  /// instead ("delays the layer movement", Section III-B).
  virtual bool blocking_prefetch_safe() const = 0;
};

class UniformSlotAllocator final : public SlotAllocator {
 public:
  UniformSlotAllocator(mem::DeviceArena& arena, std::size_t slot_bytes,
                       std::size_t slots)
      : pool_(arena, slot_bytes, slots) {}

  std::byte* acquire(std::size_t bytes) override {
    if (bytes > pool_.slot_bytes()) {
      throw std::logic_error("layer exceeds the uniform slot size");
    }
    return pool_.acquire();
  }
  std::byte* try_acquire(std::size_t bytes) override {
    if (bytes > pool_.slot_bytes()) {
      throw std::logic_error("layer exceeds the uniform slot size");
    }
    return pool_.try_acquire();
  }
  void release(std::byte* ptr) override { pool_.release(ptr); }
  void ensure_window(std::size_t slot_bytes, std::size_t slots) override {
    pool_.grow(slot_bytes, slots);
  }
  bool blocking_prefetch_safe() const override { return true; }

  BufferPool& pool() noexcept { return pool_; }

 private:
  BufferPool pool_;
};

class BudgetSlotAllocator final : public SlotAllocator {
 public:
  BudgetSlotAllocator(mem::DeviceArena& arena, std::size_t budget_bytes)
      : pool_(arena, budget_bytes) {}

  std::byte* acquire(std::size_t bytes) override {
    return pool_.acquire(bytes);
  }
  std::byte* try_acquire(std::size_t bytes) override {
    return pool_.try_acquire(bytes);
  }
  void release(std::byte* ptr) override { pool_.release(ptr); }
  void ensure_window(std::size_t, std::size_t) override {
    // The buffer is fixed-size by design; the layer count adapts instead.
  }
  bool blocking_prefetch_safe() const override { return false; }

  ByteBudgetPool& pool() noexcept { return pool_; }

 private:
  ByteBudgetPool pool_;
};

}  // namespace sh::core

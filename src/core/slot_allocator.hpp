// Allocation policy for the GPU working window.
//
// UniformSlotAllocator implements the paper's default: m+1 reserved
// fixed-size slots recycled round-robin, sized for the largest layer — best
// cache locality for homogeneous Transformer stacks (Section III-E3). The
// engine adds a second stage slot (m+2) when the device fits it, so the
// incoming prefetch and the outgoing eviction's throttled d2h drain each own
// a buffer instead of serialising on one (see engine.cpp slot sizing).
// BudgetSlotAllocator implements the alternative the paper offers for
// heterogeneous layer structures: one fixed-size buffer whose resident layer
// count varies dynamically (Section III-D).
#pragma once

#include <memory>

#include "mem/pool_policies.hpp"

namespace sh::core {

using BufferPool = ::sh::mem::BufferPool;
using ByteBudgetPool = ::sh::mem::ByteBudgetPool;

class SlotAllocator {
 public:
  virtual ~SlotAllocator() = default;

  /// Obtains GPU space for a layer of `floats` floats; blocks until
  /// available.
  virtual float* acquire(std::size_t floats) = 0;

  /// Non-blocking variant: nullptr when nothing fits right now. Used for
  /// opportunistic prefetching in the byte-budget mode, where a blocking
  /// fetch from the control thread could wait on space that only the
  /// control thread's own progress can free.
  virtual float* try_acquire(std::size_t floats) = 0;

  virtual void release(float* ptr) = 0;

  /// Adjusts capacity for a new window decision (grow-only semantics).
  virtual void ensure_window(std::size_t slot_floats, std::size_t slots) = 0;

  /// True when hook-time prefetches may block safely (uniform slots: the
  /// m+1-slot invariant guarantees progress). Byte-budget mode defers
  /// instead ("delays the layer movement", Section III-B).
  virtual bool blocking_prefetch_safe() const = 0;
};

class UniformSlotAllocator final : public SlotAllocator {
 public:
  UniformSlotAllocator(mem::DeviceArena& arena, std::size_t slot_floats,
                       std::size_t slots)
      : pool_(arena, slot_floats, slots) {}

  float* acquire(std::size_t floats) override {
    if (floats > pool_.slot_floats()) {
      throw std::logic_error("layer exceeds the uniform slot size");
    }
    return pool_.acquire();
  }
  float* try_acquire(std::size_t floats) override {
    if (floats > pool_.slot_floats()) {
      throw std::logic_error("layer exceeds the uniform slot size");
    }
    return pool_.try_acquire();
  }
  void release(float* ptr) override { pool_.release(ptr); }
  void ensure_window(std::size_t slot_floats, std::size_t slots) override {
    pool_.grow(slot_floats, slots);
  }
  bool blocking_prefetch_safe() const override { return true; }

  BufferPool& pool() noexcept { return pool_; }

 private:
  BufferPool pool_;
};

class BudgetSlotAllocator final : public SlotAllocator {
 public:
  BudgetSlotAllocator(mem::DeviceArena& arena, std::size_t budget_floats)
      : pool_(arena, budget_floats) {}

  float* acquire(std::size_t floats) override { return pool_.acquire(floats); }
  float* try_acquire(std::size_t floats) override {
    return pool_.try_acquire(floats);
  }
  void release(float* ptr) override { pool_.release(ptr); }
  void ensure_window(std::size_t, std::size_t) override {
    // The buffer is fixed-size by design; the layer count adapts instead.
  }
  bool blocking_prefetch_safe() const override { return false; }

  ByteBudgetPool& pool() noexcept { return pool_; }

 private:
  ByteBudgetPool pool_;
};

}  // namespace sh::core

// Training-state checkpointing: serialises every layer's parameters,
// optimizer planes and step counter so a run can stop and resume exactly.
// (This is model checkpointing; *activation* checkpointing lives in nn/.)
#pragma once

#include <string>

#include "core/layer_store.hpp"

namespace sh::core {

/// Writes the store's master state to `path`. The caller must have quiesced
/// pending updates and synchronised the CPU masters first (the engine's
/// save_checkpoint does both).
void write_checkpoint(const std::string& path, const LayerStore& store);

/// Reads a checkpoint into the store. Throws std::runtime_error on I/O or
/// format errors and std::invalid_argument if the model geometry (layer
/// count or per-layer parameter counts) does not match.
void read_checkpoint(const std::string& path, LayerStore& store);

}  // namespace sh::core

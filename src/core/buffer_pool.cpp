#include "core/buffer_pool.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace sh::core {

BufferPool::BufferPool(hw::MemoryPool& gpu, std::size_t slot_floats,
                       std::size_t num_slots)
    : gpu_(gpu), slot_floats_(slot_floats) {
  if (slot_floats == 0 || num_slots == 0) {
    throw std::invalid_argument("BufferPool: slots must be non-empty");
  }
  slots_.reserve(num_slots);
  for (std::size_t i = 0; i < num_slots; ++i) {
    float* s = gpu_.allocate_floats(slot_floats_);
    slots_.push_back(s);
    free_queue_.push_back(s);
  }
}

BufferPool::~BufferPool() { release_all_to_gpu(); }

void BufferPool::release_all_to_gpu() {
  for (float* s : slots_) gpu_.deallocate(s);
  slots_.clear();
  free_queue_.clear();
}

float* BufferPool::acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !free_queue_.empty(); });
  float* s = free_queue_.front();
  free_queue_.pop_front();
  ++acquisitions_;
  return s;
}

float* BufferPool::try_acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_queue_.empty()) return nullptr;
  float* s = free_queue_.front();
  free_queue_.pop_front();
  ++acquisitions_;
  return s;
}

void BufferPool::release(float* slot) {
  std::lock_guard<std::mutex> lock(mu_);
  if (std::find(slots_.begin(), slots_.end(), slot) == slots_.end()) {
    throw std::logic_error("BufferPool: releasing a foreign pointer");
  }
  if (std::find(free_queue_.begin(), free_queue_.end(), slot) !=
      free_queue_.end()) {
    throw std::logic_error("BufferPool: double release");
  }
  // Poison so stale layer views read NaN instead of old parameters.
  std::fill_n(slot, slot_floats_, std::numeric_limits<float>::quiet_NaN());
  free_queue_.push_back(slot);
  cv_.notify_one();
}

void BufferPool::grow(std::size_t slot_floats, std::size_t num_slots) {
  std::lock_guard<std::mutex> lock(mu_);
  if (slot_floats > slot_floats_) {
    if (free_queue_.size() != slots_.size()) {
      throw std::logic_error("BufferPool: cannot resize slots while in use");
    }
    for (float*& s : slots_) gpu_.deallocate(s);
    slots_.clear();
    free_queue_.clear();
    slot_floats_ = slot_floats;
    const std::size_t count = std::max(num_slots, std::size_t{1});
    for (std::size_t i = 0; i < count; ++i) {
      float* s = gpu_.allocate_floats(slot_floats_);
      slots_.push_back(s);
      free_queue_.push_back(s);
    }
    cv_.notify_all();
    return;
  }
  while (slots_.size() < num_slots) {
    float* s = gpu_.allocate_floats(slot_floats_);
    slots_.push_back(s);
    free_queue_.push_back(s);
    cv_.notify_one();
  }
}

std::size_t BufferPool::slot_floats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slot_floats_;
}

std::size_t BufferPool::num_slots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

std::size_t BufferPool::free_slots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_queue_.size();
}

std::size_t BufferPool::total_acquisitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acquisitions_;
}

bool BufferPool::owns(const float* ptr) const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::find(slots_.begin(), slots_.end(), ptr) != slots_.end();
}

}  // namespace sh::core

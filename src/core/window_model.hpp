// Analytical model for the GPU working-window size (Section III-D).
//
// Given warm-up profiles of per-layer forward/backward compute times,
// CPU<->GPU transfer times and state sizes, the solver finds the smallest
// window m such that asynchronous prefetch never stalls the GPU:
//
//   P1 (FP):  min m  s.t.  sum_{i in window} t_fp^i >= t_c2g^j        (1b)
//                          sum s_fp^i + s_fp^j     <= S_avail          (1c)
//                  soft:   sum t_fp >= sum t_c2g + sum t_g2c           (1d)
//   P2 (BP):  symmetric with t_bp and g2c leading                  (2b-2d)
//
// plus the parameter-update hiding condition (Eq. 3) and the async-call
// amortisation condition (Eq. 4/5).
#pragma once

#include <cstddef>
#include <vector>

namespace sh::core {

/// Warm-up profile of one layer.
struct LayerProfile {
  double t_fp = 0.0;   // forward compute seconds
  double t_bp = 0.0;   // backward compute seconds (incl. recompute)
  double t_c2g = 0.0;  // CPU -> GPU transfer seconds for the layer state
  double t_g2c = 0.0;  // GPU -> CPU transfer seconds
  double s_fp = 0.0;   // bytes resident during FP (params [+buffers])
  double s_bp = 0.0;   // bytes resident during BP (params + grads)
  double t_opt_gpu = 0.0;  // GPU-side parameter update seconds
  double t_opt_cpu = 0.0;  // CPU-side parameter update seconds
  // NVMe optimizer tier (SH_OPT_TIER=nvme): seconds to page the layer's
  // Adam moments through the tier for one update (read + write-back at the
  // tier's effective bandwidth). Zero with CPU-resident moments.
  double t_opt_io = 0.0;
};

struct WindowModelInput {
  std::vector<LayerProfile> layers;  // offloadable layers, execution order
  double s_avail = 0.0;              // GPU bytes available for the window
  double t_async = 0.0;              // overhead of one async call
};

struct WindowDecision {
  std::size_t m = 0;        // chosen window (max of FP and BP requirements)
  std::size_t m_fp = 0;     // minimal m satisfying P1 hard constraints
  std::size_t m_bp = 0;     // minimal m satisfying P2 hard constraints
  bool feasible = false;    // hard constraints satisfiable within memory
  bool soft_fp = false;     // (1d) satisfied at the chosen m
  bool soft_bp = false;     // (2d) satisfied at the chosen m
  bool update_hidden = false;  // Eq. 3 holds (CPU updates fully overlapped,
                               // including the tier's moment paging t_opt_io)
  bool async_amortized = false;  // Eq. 4/5 holds
  // Three-tier refinement of Eq. 3: the moment-paging I/O alone fits the
  // same budget — distinguishes "updates too slow" from "tier too slow"
  // when update_hidden fails. True whenever t_opt_io is all-zero.
  bool tier_io_hidden = false;
  std::size_t max_m_by_memory = 0;  // largest window memory permits
};

/// Solves P1/P2 and evaluates the side conditions. If no m satisfies the
/// hard overlap constraints within the memory budget, `feasible` is false
/// and `m` is the largest memory-permitted window (the paper's fallback).
WindowDecision solve_window(const WindowModelInput& input);

/// Convenience: true when every sliding window of size m satisfies the P1
/// and P2 hard constraints.
bool window_satisfies_hard_constraints(const WindowModelInput& input,
                                       std::size_t m);

}  // namespace sh::core

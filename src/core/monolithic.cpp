#include "core/monolithic.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "tensor/half.hpp"
#include "tensor/ops.hpp"

namespace sh::core {

MonolithicTrainer::MonolithicTrainer(nn::GptModel& model,
                                     const optim::AdamConfig& adam,
                                     TrainOptions options)
    : model_(model),
      adam_(adam),
      options_(std::move(options)),
      scaler_(options_.loss_scaler),
      store_(model, adam_.state_per_param()) {}

MonolithicTrainer::MonolithicTrainer(nn::GptModel& model,
                                     const optim::AdamConfig& adam,
                                     float clip_grad_norm,
                                     optim::LrSchedule lr_schedule)
    : MonolithicTrainer(model, adam,
                        TrainOptions{.clip_grad_norm = clip_grad_norm,
                                     .lr_schedule = std::move(lr_schedule)}) {}

void MonolithicTrainer::init_params(std::uint64_t seed) {
  store_.init_params(seed);
  if (options_.fp16) {
    staged_params_.resize(store_.size());
    for (std::size_t i = 0; i < store_.size(); ++i) {
      staged_params_[i] = store_.state(i).cpu_params;
      tensor::quantize_fp16_inplace(staged_params_[i].data(),
                                    staged_params_[i].size());
    }
  }
}

float MonolithicTrainer::train_step(const data::Batch& batch) {
  const std::int64_t seq = model_.config().max_seq;
  const std::int64_t bs = static_cast<std::int64_t>(batch.ids.size()) / seq;
  const nn::BatchShape shape{bs, seq, /*training=*/true,
                             static_cast<std::int64_t>(iterations_),
                             /*row_offset=*/0};
  const bool fp16 = options_.fp16;

  for (std::size_t i = 0; i < store_.size(); ++i) {
    LayerState& st = store_.state(i);
    std::fill(st.cpu_grads.begin(), st.cpu_grads.end(), 0.0f);
    // FP16: compute on the half-rounded staged copy; FP32 masters are only
    // touched by the optimizer.
    float* params = fp16 ? staged_params_[i].data() : st.cpu_params.data();
    st.layer->bind(params, st.cpu_grads.data());
  }

  tensor::Tensor logits = model_.forward(batch.ids, shape);
  tensor::Tensor grad_logits;
  const float loss = nn::lm_loss(logits, batch.targets, grad_logits);
  const float loss_scale = fp16 ? scaler_.scale() : 1.0f;
  if (loss_scale != 1.0f) {
    tensor::scale(loss_scale, grad_logits.data(), grad_logits.numel());
  }
  model_.backward(grad_logits, shape);

  // FP16 wire format + overflow detection, as in the engine's d2h path.
  bool overflow = false;
  if (fp16) {
    for (std::size_t i = 0; i < store_.size(); ++i) {
      LayerState& st = store_.state(i);
      tensor::quantize_fp16_inplace(st.cpu_grads.data(), st.cpu_grads.size());
      for (float g : st.cpu_grads) {
        if (!std::isfinite(g)) {
          overflow = true;
          break;
        }
      }
    }
  }
  const bool skip = fp16 && !scaler_.update(overflow);
  const float lr = options_.lr_schedule
                       ? options_.lr_schedule(
                             static_cast<std::int64_t>(iterations_) + 1)
                       : -1.0f;
  ++iterations_;
  if (skip) return loss;

  // Combined gradient multiplier: undo the loss scale, clip on the unscaled
  // norm (per-layer sums in layer order, matching the engine).
  float combined = 1.0f / loss_scale;
  if (options_.clip_grad_norm > 0.0f) {
    double total = 0.0;
    for (std::size_t i = 0; i < store_.size(); ++i) {
      LayerState& st = store_.state(i);
      total += tensor::dot(st.cpu_grads.data(), st.cpu_grads.data(),
                           st.params);
    }
    const double norm_scaled = std::sqrt(total);
    if (norm_scaled / loss_scale > options_.clip_grad_norm) {
      combined = static_cast<float>(options_.clip_grad_norm / norm_scaled);
    }
  }

  for (std::size_t i = 0; i < store_.size(); ++i) {
    LayerState& st = store_.state(i);
    if (combined != 1.0f) {
      tensor::scale(combined, st.cpu_grads.data(), st.params);
    }
    ++st.step;
    adam_.step(st.cpu_params.data(), st.cpu_grads.data(), st.cpu_opt.data(),
               st.step, st.params, lr);
    if (fp16) {
      staged_params_[i] = st.cpu_params;
      tensor::quantize_fp16_inplace(staged_params_[i].data(),
                                    staged_params_[i].size());
    }
  }
  return loss;
}

void MonolithicTrainer::snapshot_params(std::vector<float>& out) const {
  out.clear();
  for (std::size_t i = 0; i < store_.size(); ++i) {
    const LayerState& st = store_.state(i);
    out.insert(out.end(), st.cpu_params.begin(), st.cpu_params.end());
  }
}

}  // namespace sh::core

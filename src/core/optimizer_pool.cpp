#include "core/optimizer_pool.hpp"

#include "obs/obs.hpp"

namespace sh::core {

using obs::wall_seconds;

OptimizerPool::OptimizerPool(const optim::Optimizer& prototype,
                             std::size_t workers)
    : pool_(workers == 0 ? 1 : workers) {
  const std::size_t n = workers == 0 ? 1 : workers;
  actors_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) actors_.push_back(prototype.clone());
}

std::shared_future<void> OptimizerPool::submit(LayerState& st,
                                               std::shared_future<void> after,
                                               std::function<void()> post_update,
                                               float lr,
                                               std::function<float()> grad_scale,
                                               std::function<bool()> skip_update) {
  const std::size_t actor =
      next_actor_.fetch_add(1, std::memory_order_relaxed) % actors_.size();
  optim::Optimizer* opt = actors_[actor].get();
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  auto fut = pool_.async([this, opt, &st, after, lr,
                          post = std::move(post_update),
                          scale = std::move(grad_scale),
                          skip = std::move(skip_update)] {
    struct InFlight {
      std::atomic<std::size_t>& n;
      ~InFlight() { n.fetch_sub(1, std::memory_order_relaxed); }
    } in_flight_guard{in_flight_};
    if (after.valid()) after.wait();
    if (skip && skip()) return;  // overflowed step: discard gradients
    const double t0 = wall_seconds();
    if (scale) {
      const float s = scale();
      if (s != 1.0f) {
        for (std::int64_t i = 0; i < st.params; ++i) st.cpu_grads[i] *= s;
      }
    }
    ++st.step;
    opt->step(st.cpu_params.data(), st.cpu_grads.data(), st.cpu_opt.data(),
              st.step, st.params, lr);
    if (post) post();
    const double t1 = wall_seconds();
    obs::span("cpu-opt", "update", t0, t1);
    if (observer_) observer_(t0, t1);
    completed_.fetch_add(1, std::memory_order_relaxed);
  });
  st.update_done = fut.share();
  return st.update_done;
}

void OptimizerPool::update_now(LayerState& st, float* params,
                               const float* grads, float lr) {
  obs::ObsScope scope("cpu-opt", "update_now");
  ++st.step;
  actors_[0]->step(params, grads, st.cpu_opt.data(), st.step, st.params, lr);
  completed_.fetch_add(1, std::memory_order_relaxed);
}

void OptimizerPool::wait_all() { pool_.wait_idle(); }

}  // namespace sh::core

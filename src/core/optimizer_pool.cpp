#include "core/optimizer_pool.hpp"

#include <algorithm>
#include <span>

#include "obs/obs.hpp"
#include "storage/fault_plan.hpp"

namespace sh::core {

using obs::wall_seconds;

OptimizerPool::OptimizerPool(const optim::Optimizer& prototype,
                             std::size_t workers)
    : pool_(workers == 0 ? 1 : workers) {
  const std::size_t n = workers == 0 ? 1 : workers;
  actors_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) actors_.push_back(prototype.clone());
}

void OptimizerPool::enable_moment_tier(LayerStore& store) {
  store_ = &store;
  std::size_t max_floats = 0;
  for (std::size_t i = 0; i < store.size(); ++i) {
    if (store.state(i).opt_tiered) {
      max_floats = std::max(max_floats, store.opt_floats(i));
    }
  }
  // A few slots beyond the worker count so prefetched moments can sit staged
  // while every actor is mid-update.
  leases_.resize(actors_.size() + 4);
  for (auto& l : leases_) l.buf.resize(max_floats);
}

void OptimizerPool::prefetch_moments(LayerState& st) {
  if (store_ == nullptr || !st.opt_tiered) return;
  MomentLease* lease = nullptr;
  {
    std::unique_lock lk(moment_mu_);
    for (auto& l : leases_) {
      if (l.owner == &st) return;  // read already staged or pending
    }
    moment_cv_.wait(lk, [&] {
      for (auto& l : leases_) {
        if (l.owner == nullptr) {
          lease = &l;
          return true;
        }
      }
      return false;
    });
    lease->owner = &st;
  }
  // The previous owner's write-back must land before the buffer is reused.
  // FIFO tier ordering then guarantees this read observes that write.
  if (lease->last_op.valid()) lease->last_op.wait();
  lease->read = store_->swap()->read_async(
      LayerStore::moment_key(st.index),
      std::span<float>(lease->buf.data(), store_->opt_floats(st.index)));
  moment_prefetches_.fetch_add(1, std::memory_order_relaxed);
}

OptimizerPool::MomentLease* OptimizerPool::acquire_moments(LayerState& st) {
  MomentLease* lease = nullptr;
  {
    std::unique_lock lk(moment_mu_);
    for (auto& l : leases_) {
      if (l.owner == &st) return &l;
    }
    moment_cv_.wait(lk, [&] {
      for (auto& l : leases_) {
        if (l.owner == nullptr) {
          lease = &l;
          return true;
        }
      }
      return false;
    });
    lease->owner = &st;
  }
  if (lease->last_op.valid()) lease->last_op.wait();
  lease->read = store_->swap()->read_async(
      LayerStore::moment_key(st.index),
      std::span<float>(lease->buf.data(), store_->opt_floats(st.index)));
  moment_demand_reads_.fetch_add(1, std::memory_order_relaxed);
  return lease;
}

void OptimizerPool::release_moments(MomentLease* lease,
                                    std::shared_future<void> write_back) {
  std::lock_guard lk(moment_mu_);
  lease->read = {};
  lease->last_op = std::move(write_back);
  lease->owner = nullptr;
  moment_cv_.notify_all();
}

std::shared_future<void> OptimizerPool::submit(LayerState& st,
                                               std::shared_future<void> after,
                                               std::function<void()> post_update,
                                               float lr,
                                               std::function<float()> grad_scale,
                                               std::function<bool()> skip_update) {
  const std::size_t actor =
      next_actor_.fetch_add(1, std::memory_order_relaxed) % actors_.size();
  optim::Optimizer* opt = actors_[actor].get();
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  auto fut = pool_.async([this, opt, &st, after, lr,
                          post = std::move(post_update),
                          scale = std::move(grad_scale),
                          skip = std::move(skip_update)] {
    struct InFlight {
      std::atomic<std::size_t>& n;
      ~InFlight() { n.fetch_sub(1, std::memory_order_relaxed); }
    } in_flight_guard{in_flight_};
    if (after.valid()) after.wait();
    if (skip && skip()) return;  // overflowed step: discard gradients
    const double t0 = wall_seconds();
    // Stage NVMe-resident moments. Acquisition is deliberately lazy (after
    // the skip gate): a skipped step touches the tier not at all, and no
    // staging buffer is held while waiting on the clip/overflow gate.
    float* opt_state = st.cpu_opt.data();
    MomentLease* lease = nullptr;
    std::size_t lease_floats = 0;
    if (store_ != nullptr && st.opt_tiered) {
      lease = acquire_moments(st);
      lease_floats = store_->opt_floats(st.index);
      try {
        lease->read.get();
      } catch (const storage::IoError&) {
        // Tier retry budget exhausted: drop this layer's step whole — params,
        // moments and step count all stay unchanged (no torn update). The
        // permanent failure is latched in the tier and re-raised as a typed
        // IoError at the step boundary via SwapFile::rethrow_pending().
        moment_update_skips_.fetch_add(1, std::memory_order_relaxed);
        release_moments(lease, {});
        return;
      }
      opt_state = lease->buf.data();
    }
    if (scale) {
      const float s = scale();
      if (s != 1.0f) {
        for (std::int64_t i = 0; i < st.params; ++i) st.cpu_grads[i] *= s;
      }
    }
    ++st.step;
    opt->step(st.cpu_params.data(), st.cpu_grads.data(), opt_state, st.step,
              st.params, lr);
    if (lease != nullptr) {
      auto wb = store_->swap()->write_async(
          LayerStore::moment_key(st.index),
          std::span<const float>(lease->buf.data(), lease_floats));
      moment_writes_.fetch_add(1, std::memory_order_relaxed);
      release_moments(lease, std::move(wb));
    }
    if (post) post();
    const double t1 = wall_seconds();
    obs::span("cpu-opt", "update", t0, t1);
    if (observer_) observer_(t0, t1);
    completed_.fetch_add(1, std::memory_order_relaxed);
  });
  st.update_done = fut.share();
  return st.update_done;
}

void OptimizerPool::update_now(LayerState& st, float* params,
                               const float* grads, float lr) {
  obs::ObsScope scope("cpu-opt", "update_now");
  float* opt_state = st.cpu_opt.data();
  MomentLease* lease = nullptr;
  std::size_t lease_floats = 0;
  if (store_ != nullptr && st.opt_tiered) {
    lease = acquire_moments(st);
    lease_floats = store_->opt_floats(st.index);
    try {
      lease->read.get();
    } catch (...) {
      // Synchronous caller (control thread): release the slot and let the
      // typed IoError propagate to the step boundary before any mutation.
      release_moments(lease, {});
      throw;
    }
    opt_state = lease->buf.data();
  }
  ++st.step;
  actors_[0]->step(params, grads, opt_state, st.step, st.params, lr);
  if (lease != nullptr) {
    auto wb = store_->swap()->write_async(
        LayerStore::moment_key(st.index),
        std::span<const float>(lease->buf.data(), lease_floats));
    moment_writes_.fetch_add(1, std::memory_order_relaxed);
    release_moments(lease, std::move(wb));
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
}

void OptimizerPool::wait_all() { pool_.wait_idle(); }

}  // namespace sh::core

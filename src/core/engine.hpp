// StrongholdEngine — the dynamic CPU<->GPU offloading runtime (Section III).
//
// The engine trains a GptModel while keeping only a working window of m
// layers resident in a capacity-enforced "GPU" memory pool:
//
//  * FP (Fig. 3b): before computing layer i the engine prefetches layer i+m
//    asynchronously; after computing, layer i's buffer is recycled (layers at
//    the tail stay resident so BP starts with a full window).
//  * BP (Fig. 3c): before computing layer i it prefetches layer i-m; after
//    computing, gradients are copied to the CPU asynchronously and a
//    concurrent optimizer actor updates the layer's master parameters. The
//    last m layers of BP (the first m of the model) remain on the GPU and are
//    updated in place, so the next FP starts without a stall (III-E1).
//  * The window size is chosen by the analytical model (Section III-D) from
//    warm-up-phase profiles, or fixed by the user.
//  * With multiple executors (Section IV-A), the batch is split into
//    micro-batches processed by concurrent streams sharing ONE copy of the
//    parameters; gradients are all-reduced before the update.
//  * With a CPU capacity limit and a swap file (Section III-G), cold layers
//    live on secondary storage and are faulted in ahead of prefetch.
//
// Numerical contract: training through this engine is bit-identical to
// monolithic training of the same model/seed (single executor), verified by
// the equivalence tests. Asynchrony never introduces stale updates.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "ckpt/checkpointer.hpp"
#include "core/layer_store.hpp"
#include "core/loss_scaler.hpp"
#include "core/slot_allocator.hpp"
#include "core/optimizer_pool.hpp"
#include "core/window_model.hpp"
#include "data/synthetic.hpp"
#include "hw/transfer.hpp"
#include "mem/device_arena.hpp"
#include "nn/gpt.hpp"
#include "obs/metrics.hpp"
#include "optim/optimizer.hpp"
#include "optim/schedule.hpp"
#include "sim/trace.hpp"
#include "storage/swap_file.hpp"
#include "tensor/dtype.hpp"

namespace sh::core {

/// Where the Adam moments (m/v) live between updates.
enum class OptimizerTier {
  /// Host RAM, alongside the FP32 masters (paper default).
  cpu,
  /// NVMe-resident (ZeRO-Infinity-style): moments page through the swap
  /// tier's I/O worker, prefetched one layer ahead of the update.
  nvme,
};

enum class WindowMode {
  /// m+1 reserved uniform slots, round-robin recycled (paper default).
  UniformSlots,
  /// One fixed-size buffer; the resident layer count varies with layer
  /// sizes — for heterogeneous stacks such as MoE models (Section III-D).
  ByteBudget,
};

struct EngineConfig {
  /// Working-window size in layers; 0 selects it automatically with the
  /// analytical model after the warm-up iterations.
  std::size_t window = 0;
  WindowMode window_mode = WindowMode::UniformSlots;
  /// ByteBudget mode: size of the fixed window buffer in elements (priced
  /// into bytes under window_dtype; 0 derives it from the uniform-slot
  /// requirement).
  std::size_t window_budget_floats = 0;
  std::size_t warmup_iterations = 2;
  std::size_t optimizer_workers = 2;
  /// Capacity of the simulated GPU memory pool (model-state budget).
  std::size_t gpu_memory_bytes = std::size_t{1} << 40;
  /// Transfer throttles in bytes/s (0 = unthrottled memcpy speed).
  double h2d_bytes_per_s = 0.0;
  double d2h_bytes_per_s = 0.0;
  /// Concurrent training executors (intra-GPU data parallelism, Section IV-A).
  std::size_t num_executors = 1;
  optim::AdamConfig adam{};
  /// Per-step learning rate (empty = adam.lr throughout). Evaluated once per
  /// iteration; asynchronous actors apply the rate that was current at
  /// submission, so schedules never race with overlapped updates.
  optim::LrSchedule lr_schedule{};
  /// Global gradient-norm clipping threshold (0 = off). Clipping needs the
  /// norm over ALL layers, so parameter updates defer until the backward
  /// pass drains — a documented cost of clipping under offloading.
  float clip_grad_norm = 0.0f;
  /// Gradient accumulation: every call to train_step processes one
  /// micro-batch; gradients accumulate in the CPU masters and the optimizer
  /// applies them every `grad_accumulation`-th call. Equivalent to training
  /// with a grad_accumulation-times larger batch.
  std::size_t grad_accumulation = 1;
  /// Mixed precision: parameters and gradients move across the CPU<->GPU
  /// link in FP16 (compute stays FP32 on FP16-rounded values); FP32 masters
  /// and optimizer state live on the CPU; dynamic loss scaling skips
  /// overflowed steps [12].
  bool fp16 = false;
  LossScalerConfig loss_scaler{};
  /// Element encoding of the GPU working window (block slots and their
  /// CPU<->GPU transfers). With bf16, slots genuinely store 2-byte elements:
  /// fault-in encodes the FP32 master to bf16, compute runs FP32 on a
  /// decoded staging view, gradients round through bf16 on the wire, and
  /// the CPU optimizer updates FP32 masters — which stay the only persisted
  /// truth (checkpoints/swap are dtype-blind). Halves window bytes and PCIe
  /// traffic; bf16 keeps the f32 exponent range so no loss scaling is
  /// needed (mutually exclusive with fp16). The SH_WINDOW_DTYPE environment
  /// variable ("f32"/"bf16") overrides this at engine construction.
  tensor::DType window_dtype = tensor::DType::f32;
  /// How f32 -> bf16 encodes round: nearest-even (default) or stochastic
  /// (unbiased; deterministic per (rounding_seed, layer, event)). Overridden
  /// by SH_WINDOW_ROUNDING ("nearest_even"/"stochastic") at construction.
  tensor::Rounding window_rounding = tensor::Rounding::nearest_even;
  /// Seed for the stochastic-rounding streams.
  std::uint64_t rounding_seed = 0x57484F4C44ull;
  /// CPU RAM budget for master state; 0 = unlimited. When exceeded, layers
  /// are backed by the swap file at `swap_path` (Section III-G).
  std::size_t cpu_capacity_bytes = 0;
  std::string swap_path{};
  /// Third memory tier for optimizer state (ZeRO-Infinity-style). With
  /// `nvme`, every non-pinned layer's Adam moments live in a dedicated
  /// region set of the swap file at `swap_path` (required) instead of host
  /// RAM: the optimizer pool prefetches layer i+1's moments while updating
  /// layer i, update tasks stage them through a small buffer ring, and
  /// write-backs ride the same retrying I/O worker as the window tier. FP32
  /// masters remain the only persisted truth — checkpoint files and the
  /// snapshot format are unchanged. Activation checkpoints additionally
  /// spill to the same tier under device-arena pressure (single-executor
  /// training). Overridden by SH_OPT_TIER ("cpu"/"nvme") at construction.
  OptimizerTier optimizer_tier = OptimizerTier::cpu;
  /// Fault injection + bounded-retry policy for the swap tier (default:
  /// healthy). SH_FAULT_* environment variables override these fields at
  /// engine construction (storage::fault_config_from_env). Transient faults
  /// stall the working window and recover bit-identically; an exhausted
  /// retry budget surfaces from train_step as a typed storage::IoError the
  /// trainer can checkpoint on.
  storage::FaultConfig swap_faults{};
  /// Async-call overhead handed to the window model (t_async).
  double t_async = 0.0;
  /// Optional gradient hook invoked once per layer after the (executor-
  /// reduced) gradients land in the GPU buffer and before they are offloaded
  /// or applied. Data-parallel training installs an all-reduce here
  /// (Sections III-E2, VI-D2). Called on the controlling executor's thread.
  std::function<void(std::size_t layer_index, float* grads, std::int64_t n)>
      grad_reducer{};
  /// Records a wall-clock execution timeline (compute / h2d / d2h / cpu-opt
  /// spans) retrievable via trace() — the runtime counterpart of the paper's
  /// Figure 4 profiling trace.
  bool record_trace = false;
  /// Crash-consistent checkpointing (sh::ckpt). An empty `ckpt.dir` disables
  /// it; SH_CKPT_* environment variables override at construction. With
  /// `ckpt.every_n_steps` set, the engine captures a snapshot at that cadence
  /// and commits it asynchronously, overlapped with the next steps' compute;
  /// a storage::IoError escaping train_step additionally triggers a last-gasp
  /// save so the fault costs at most the uncommitted steps.
  ckpt::Config ckpt{};
  /// Applies the SH_CKPT_* environment overrides to `ckpt` at construction.
  /// DataParallelTrainer resolves the overrides once itself and disables
  /// this: the trainer is the single checkpoint writer, and a rank engine
  /// opening SH_CKPT_DIR behind its back would race the rename-commit
  /// protocol (concurrent writers share gen-<step> temp names and each
  /// commit's GC sweeps the other's in-flight files).
  bool ckpt_env_overrides = true;
  /// Checkpoint extension hooks: extra_save adds caller-owned state (data
  /// cursor, trainer bookkeeping) to every snapshot's blobs; extra_load reads
  /// it back during restore_snapshot. Both run on the capturing/restoring
  /// thread with the engine quiesced.
  std::function<void(ckpt::Blobs&)> ckpt_extra_save{};
  std::function<void(const ckpt::Blobs&)> ckpt_extra_load{};
};

struct EngineStats {
  std::size_t window = 0;
  bool window_auto_selected = false;
  WindowDecision decision{};
  std::size_t iterations = 0;
  std::size_t prefetch_stalls = 0;  // compute waited on an unfinished fetch
  std::size_t deferred_prefetches = 0;  // byte-budget: no space at hook time
  std::size_t demand_fetches = 0;       // layer fetched on demand instead
  double stall_seconds = 0.0;
  std::size_t h2d_transfers = 0;
  std::size_t d2h_transfers = 0;
  std::size_t h2d_bytes = 0;
  std::size_t d2h_bytes = 0;
  std::size_t optimizer_updates = 0;
  std::size_t swap_backed_layers = 0;
  // Optimizer-tier (SH_OPT_TIER=nvme) counters.
  std::size_t opt_tiered_layers = 0;    // layers with NVMe-resident moments
  std::size_t moment_prefetches = 0;    // overlapped moment reads issued
  std::size_t moment_demand_reads = 0;  // reads issued inside the update task
  std::size_t moment_update_skips = 0;  // updates dropped on tier exhaustion
  std::size_t moment_writes = 0;        // moment write-backs issued
  std::size_t act_spills = 0;           // activation ckpts spilled to tier
  std::size_t act_restores = 0;         // spilled ckpts paged back for BP
  // Swap-tier fault/recovery counters (all zero with a healthy tier).
  std::size_t swap_faults_injected = 0;
  std::size_t swap_retries = 0;
  std::size_t swap_io_errors = 0;  // ops that exhausted the retry budget
  double swap_retry_backoff_s = 0.0;
  /// Peak device bytes (== device_arena().peak_bytes(); name kept for
  /// compatibility). Includes soft-charged activation/KV bytes, so it may
  /// exceed gpu_memory_bytes when a pass overcommits gracefully.
  std::size_t gpu_high_water_bytes = 0;
  float loss_scale = 1.0f;          // fp16: current dynamic loss scale
  std::size_t skipped_updates = 0;  // fp16: steps dropped due to overflow
  std::size_t ckpt_snapshots = 0;   // training-state captures taken
  std::size_t ckpt_last_gasp = 0;   // checkpoints triggered by a tier fault
  /// Full per-region accounting of the device arena (window / kv /
  /// activations / workspace, pressure counters).
  mem::ArenaStats arena{};
};

class StrongholdEngine {
 public:
  /// The engine takes a non-owning reference to `model`; the model must
  /// outlive the engine. Parameter storage is owned by the engine.
  StrongholdEngine(nn::GptModel& model, EngineConfig config);
  ~StrongholdEngine();

  StrongholdEngine(const StrongholdEngine&) = delete;
  StrongholdEngine& operator=(const StrongholdEngine&) = delete;

  /// Initialises parameters (deterministic in `seed`).
  void init_params(std::uint64_t seed);

  /// Runs one training iteration; returns the mean LM loss.
  float train_step(const data::Batch& batch);

  /// FP-only pass producing logits (knowledge-distillation support,
  /// Section VI-D3). `observer`, when set, receives each block's output.
  using ActivationObserver =
      std::function<void(std::size_t layer, const tensor::Tensor&)>;
  tensor::Tensor inference(std::span<const std::int32_t> ids,
                           const nn::BatchShape& shape,
                           const ActivationObserver& observer = {});

  /// Layer-streaming FP hook (Section VI-D3 serving): streams every model
  /// unit's parameters through the working window exactly once — pinned
  /// embedding, blocks prefetched/evicted FP-style, pinned head — and
  /// invokes `visit(unit, layer)` while each unit is bound to resident
  /// memory. The callback may run the unit any number of times before it is
  /// evicted, which is what lets a serving batch amortize one weight
  /// transfer across many resident sequences (sh::serve builds on this).
  /// Unit 0 is the embedding, units 1..num_blocks the transformer blocks,
  /// and the last unit the LM head.
  using LayerVisitor = std::function<void(std::size_t unit, nn::Layer& layer)>;
  void stream_layers(const LayerVisitor& visit);

  /// Greedy autoregressive generation: extends `prompt` by `new_tokens`
  /// tokens using repeated FP-only passes through the working window. The
  /// context is the last max_seq tokens.
  std::vector<std::int32_t> generate(std::span<const std::int32_t> prompt,
                                     std::size_t new_tokens);

  /// Incremental decoding session: per-layer KV caches stay on the "GPU"
  /// while layer parameters stream through the working window, so each step
  /// costs O(new tokens) attention instead of a full-context recompute.
  class Decoder {
   public:
    /// Feeds `n_new` tokens per batch row (ids is [batch * n_new]) and
    /// returns logits [batch * n_new, vocab].
    tensor::Tensor step(std::span<const std::int32_t> ids,
                        std::int64_t n_new);
    std::int64_t position() const noexcept { return pos_; }
    std::int64_t batch() const noexcept { return batch_; }

   private:
    friend class StrongholdEngine;
    Decoder(StrongholdEngine& engine, std::int64_t batch,
            std::int64_t capacity);
    StrongholdEngine& engine_;
    std::int64_t batch_;
    std::int64_t capacity_;
    std::int64_t pos_ = 0;
    std::vector<nn::KvCache> caches_;  // one per block
  };

  /// Creates a decoding session. `capacity` (<= max_seq) bounds the context.
  Decoder make_decoder(std::int64_t batch, std::int64_t capacity);

  /// Greedy generation through a Decoder (KV cache; no recompute).
  std::vector<std::int32_t> generate_incremental(
      std::span<const std::int32_t> prompt, std::size_t new_tokens);

  /// Copies every layer's authoritative parameters into `out` (layer order,
  /// concatenated) — used by the equivalence tests. Synchronises pending
  /// updates first.
  void snapshot_params(std::vector<float>& out);

  /// Persists the full training state (params + optimizer + step counters)
  /// after quiescing all in-flight work.
  void save_checkpoint(const std::string& path);

  /// Restores a checkpoint saved by save_checkpoint; training resumes
  /// exactly where it left off. GPU-resident copies are refreshed.
  void load_checkpoint(const std::string& path);

  /// Captures the complete training state as a CPU-side ckpt::Snapshot:
  /// FP32 master params + Adam moments for every layer (read from the CPU
  /// side of the window — no device drain), per-layer optimizer steps, the
  /// iteration counter (which also encodes the accumulation-cycle position),
  /// loss-scaler state, mid-cycle gradient accumulators when between
  /// optimizer updates, and anything the ckpt_extra_save hook adds. Resuming
  /// from it continues the run bit-identically. Quiesces in-flight work.
  ckpt::Snapshot capture_snapshot();

  /// Installs a snapshot produced by capture_snapshot (possibly by another
  /// engine with the same model geometry — elastic data parallelism restores
  /// one manifest into every rank). Refreshes GPU-resident copies and the
  /// swap tier. Throws ckpt::RestoreError{GeometryMismatch/MissingData} when
  /// the snapshot does not fit this engine.
  void restore_snapshot(const ckpt::Snapshot& snap);

  /// Restores the newest valid generation from the configured checkpoint
  /// directory. Returns false when no committed generation exists; throws
  /// ckpt::RestoreError for snapshots that exist but cannot be installed.
  bool resume_from_latest();

  /// Synchronous capture + commit through the configured Checkpointer.
  /// Throws std::logic_error when checkpointing is disabled.
  void checkpoint_now();

  /// The engine's Checkpointer (nullptr when `ckpt.dir` is empty).
  ckpt::Checkpointer* checkpointer() noexcept { return ckpt_.get(); }

  EngineStats stats() const;

  /// Appends this engine's metric rows ("engine.*", "arena.*",
  /// "optimizer.*") to `out` — the provider the engine registers with
  /// obs::Registry::global() at construction, callable directly in tests.
  void export_metrics(obs::MetricsSnapshot& out) const;

  std::size_t window() const noexcept { return window_; }
  const nn::GptModel& model() const noexcept { return model_; }

  /// The accounted device-memory arena every GPU-resident byte of this
  /// engine is charged to. Co-located subsystems (sh::serve) draw their
  /// budgets from the same arena so one gpu_memory_bytes capacity governs
  /// training and serving together.
  mem::DeviceArena& device_arena() noexcept { return gpu_pool_; }
  const mem::DeviceArena& device_arena() const noexcept { return gpu_pool_; }

  /// Wall-clock execution trace (only populated with record_trace). Call
  /// after quiescing (end of a train_step is fine; spans from in-flight
  /// background work land when it completes).
  sim::Trace trace_snapshot() const;

 private:
  std::size_t num_blocks() const noexcept { return store_.size() - 2; }
  std::size_t head_index() const noexcept { return store_.size() - 1; }
  LayerState& block(std::size_t b) { return store_.state(b); }

  void setup_pinned_layers();
  /// Drains transfers/updates and pulls pinned-layer parameters back into
  /// the CPU masters so they are authoritative.
  void quiesce_and_sync_masters();
  /// Evicts resident blocks outside the current head window and prefetches
  /// blocks 1..window — the canonical pass-start state. Handles residual
  /// residency from inference passes or window-size changes.
  void normalize_residency();
  tensor::Tensor decode_step(Decoder& decoder,
                             std::span<const std::int32_t> ids,
                             std::int64_t n_new);
  void prefetch(std::size_t index);
  /// Binds `slot` to the layer and enqueues the asynchronous host->device
  /// copy (with optimizer/tier dependencies). The copy encodes the FP32
  /// master into the window dtype.
  void issue_fetch(LayerState& st, std::byte* slot);
  void wait_ready(LayerState& st);
  bool bf16_window() const noexcept {
    return cfg_.window_dtype == tensor::DType::bf16;
  }
  /// Bytes one layer's parameters occupy on the CPU<->GPU wire (fp16 and
  /// bf16 both halve them; they are mutually exclusive).
  std::size_t wire_param_bytes(std::int64_t params) const noexcept {
    return static_cast<std::size_t>(params) * (cfg_.fp16 ? 2 : elem_bytes_);
  }
  /// f32 view of a block slot's parameter half (f32/fp16 windows only).
  float* slot_f32(LayerState& st) noexcept {
    return reinterpret_cast<float*>(st.gpu_slot);
  }
  /// bf16 view of a block slot (bf16 windows only).
  tensor::bf16* slot_b16(LayerState& st) noexcept {
    return reinterpret_cast<tensor::bf16*>(st.gpu_slot);
  }
  /// BF16: decodes the slot's parameter half into the f32 compute staging
  /// buffer and returns it; f32/fp16: returns the slot directly.
  float* bind_params_f32(LayerState& st);
  /// Encodes `n` f32 values into the slot at element offset `offset`,
  /// honouring the configured rounding mode (stochastic draws a fresh
  /// deterministic stream per call). Only valid for bf16 windows.
  void encode_slot(LayerState& st, const float* src, std::size_t offset,
                   std::size_t n);
  /// Refreshes a layer's device-resident copy from its FP32 master after a
  /// checkpoint restore (dtype-aware; pinned layers stay f32).
  void refresh_device_copy(LayerState& st);
  void evict_after_forward(LayerState& st);
  void evict_after_backward(LayerState& st);
  void update_resident_layer(LayerState& st);
  /// Update path for the pinned embedding/head (direct, or deferred when
  /// gradient clipping awaits the global norm).
  void apply_pinned_update(LayerState& st, float* buffer);
  bool clipping() const noexcept { return cfg_.clip_grad_norm > 0.0f; }
  /// Updates defer behind a per-step gate when they depend on whole-step
  /// information: the global norm (clipping) or the overflow verdict (fp16).
  bool update_gate_active() const noexcept {
    return clipping() || cfg_.fp16;
  }
  /// FP16: quantise a freshly reduced gradient region and record overflow.
  void quantize_grads_and_check(float* grads, std::int64_t n);
  void begin_iteration_lr_and_clip();
  void finalize_clipped_updates();
  void maybe_update_window();
  float train_step_body(const data::Batch& batch);
  void maybe_periodic_checkpoint();
  /// Fault path: commit what can be committed before the IoError propagates.
  /// `consistent` distinguishes a fault surfaced at the step boundary
  /// (masters coherent — take a fresh capture) from one mid-step (masters
  /// possibly torn — only let the in-flight staged save finish).
  void last_gasp_checkpoint(bool consistent);

  bool opt_tier_nvme() const noexcept {
    return cfg_.optimizer_tier == OptimizerTier::nvme;
  }
  // Activation-checkpoint spill — the second client of the NVMe tier.
  // Enabled for single-executor training with checkpointing blocks when the
  // optimizer tier is nvme: between forward(b) and backward(b) the block's
  // checkpointed input is eligible to spill; the arena pressure callback
  // pages out the lowest-index spillable block (the one backward needs
  // last), and the BP loop pages it back in just before backward(b).
  void mark_act_spillable(std::size_t b);
  void restore_spilled_activation(std::size_t b);
  bool spill_one_activation();

  nn::GptModel& model_;
  EngineConfig cfg_;
  std::unique_ptr<ckpt::Checkpointer> ckpt_;
  std::unique_ptr<storage::SwapFile> swap_;
  LayerStore store_;
  mem::DeviceArena gpu_pool_;
  hw::TransferEngine h2d_;
  hw::TransferEngine d2h_;
  optim::Adam adam_proto_;
  OptimizerPool opts_;
  std::unique_ptr<SlotAllocator> pool_;
  std::size_t slot_bytes_ = 0;      // 2 * max block params, priced in bytes
  std::size_t elem_bytes_ = 4;      // bytes per window element (dtype)
  std::size_t max_block_params_ = 0;
  std::size_t slots_reserved_ = 0;  // window + stage slots currently held
  /// BF16 windows: f32 compute staging — [0, max_block_params_) holds the
  /// decoded parameters of the layer being computed, [max_block_params_,
  /// 2*max_block_params_) the executor-reduced f32 gradients before they
  /// round onto the wire. Per-layer compute is barrier-serialised, so one
  /// buffer suffices; it is deliberately not charged to the window region
  /// (it models the f32 compute view, as the fp16 path's in-place rounding
  /// does).
  std::vector<float> stage_;

  // Pinned (always-resident) buffers for the first/last layer.
  float* pinned_emb_ = nullptr;   // params then grads
  float* pinned_head_ = nullptr;  // params then grads

  std::size_t window_ = 1;
  bool window_frozen_ = false;
  std::vector<LayerProfile> profiles_;
  std::size_t profile_samples_ = 0;

  // Per-iteration learning rate, accumulation, clipping and loss-scaling
  // machinery.
  float current_lr_ = -1.0f;
  std::size_t micro_index_ = 0;   // position within the accumulation cycle
  bool accum_first_ = true;       // first micro-step: overwrite accumulators
  bool accum_final_ = true;       // last micro-step: apply the updates
  LossScaler scaler_;
  std::atomic<bool> overflow_{false};
  /// Per-iteration gate verdict. Asynchronous update tasks capture the
  /// shared_ptr of THEIR iteration, so a late-running update never observes
  /// the next iteration's reset values.
  struct GateState {
    std::atomic<float> scale{1.0f};
    std::atomic<bool> skip{false};
  };
  std::shared_ptr<GateState> gate_state_ = std::make_shared<GateState>();
  std::shared_future<void> clip_ready_;
  std::promise<void> clip_promise_;
  std::vector<double> grad_sumsq_;           // per layer unit, layer order
  std::vector<std::function<void()>> deferred_updates_;

  // Activation-spill registry (one entry per transformer block). Keys on the
  // swap tier: kActKeyBase + block, disjoint from the layer/moment key
  // spaces.
  struct ActSpillState {
    bool spillable = false;  // block holds a checkpoint eligible to spill
    bool spilled = false;    // checkpoint currently resides on the tier
    tensor::Shape shape{};   // shape for the restoring read
  };
  static constexpr std::int64_t kActKeyBase = std::int64_t{1} << 21;
  static std::int64_t act_key(std::size_t b) {
    return kActKeyBase + static_cast<std::int64_t>(b);
  }
  bool act_spill_enabled_ = false;
  std::uint64_t act_pressure_cb_ = 0;
  std::mutex act_mu_;
  std::vector<ActSpillState> act_state_;

  // Executor replicas (index 0 reuses model_) and per-executor grad scratch.
  std::vector<std::unique_ptr<nn::GptModel>> replicas_;
  std::vector<std::vector<float>> exec_grads_;

  mutable std::mutex stats_mu_;
  EngineStats stats_;

  // Wall-clock tracing. trace_span always forwards to the global obs
  // recorder (a no-op unless obs is enabled) and additionally appends to the
  // engine-local sim::Trace when record_trace is set.
  void trace_span(const char* resource, const char* label, double t0,
                  double t1);
  mutable std::mutex trace_mu_;
  sim::Trace trace_;
  double trace_epoch_ = 0.0;
  std::uint64_t obs_provider_id_ = 0;
};

}  // namespace sh::core

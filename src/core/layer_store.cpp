#include "core/layer_store.hpp"

#include <algorithm>
#include <stdexcept>

namespace sh::core {

LayerStore::LayerStore(nn::GptModel& model, std::int64_t opt_state_per_param,
                       std::size_t cpu_capacity_bytes, storage::SwapFile* swap,
                       bool tier_optimizer)
    : opt_state_per_param_(opt_state_per_param), swap_(swap) {
  if (tier_optimizer && swap_ == nullptr) {
    throw std::invalid_argument(
        "LayerStore: optimizer tier requires a swap file");
  }
  const std::size_t n = model.num_layers();
  std::size_t cumulative = 0;
  for (std::size_t i = 0; i < n; ++i) {
    auto st = std::make_unique<LayerState>();
    st->index = i;
    st->layer = &model.layer(i);
    st->params = st->layer->param_count();
    st->cpu_params.resize(static_cast<std::size_t>(st->params));
    st->cpu_grads.resize(static_cast<std::size_t>(st->params));
    st->pinned_on_gpu = (i == 0 || i + 1 == n);
    st->opt_tiered =
        tier_optimizer && !st->pinned_on_gpu && opt_state_per_param_ > 0;
    if (st->opt_tiered) {
      ++opt_tiered_;
    } else {
      st->cpu_opt.resize(
          static_cast<std::size_t>(st->params * opt_state_per_param_));
    }
    max_params_ = std::max(max_params_, st->params);

    // Tiered layers hold only params+grads in host RAM; their moments live on
    // the NVMe tier, so they do not count against the CPU budget.
    const std::int64_t planes =
        st->opt_tiered ? 2 : (2 + opt_state_per_param_);
    const std::size_t state_bytes =
        static_cast<std::size_t>(st->params * planes * sizeof(float));
    cumulative += state_bytes;
    if (cpu_capacity_bytes != 0 && cumulative > cpu_capacity_bytes &&
        !st->pinned_on_gpu) {
      if (swap_ == nullptr) {
        throw std::invalid_argument(
            "LayerStore: CPU capacity exceeded and no swap tier configured");
      }
      st->swap_backed = true;
      ++swap_backed_;
    }
    states_.push_back(std::move(st));
  }
}

std::shared_future<void> LayerStore::ready_future() {
  std::promise<void> p;
  p.set_value();
  return p.get_future().share();
}

std::int64_t LayerStore::swap_key_params(std::size_t i) const {
  return static_cast<std::int64_t>(i) * 2;
}

std::int64_t LayerStore::swap_key_opt(std::size_t i) const {
  return static_cast<std::int64_t>(i) * 2 + 1;
}

void LayerStore::init_params(std::uint64_t seed) {
  tensor::Rng rng(seed);
  for (auto& stp : states_) {
    LayerState& st = *stp;
    st.layer->bind(st.cpu_params.data(), st.cpu_grads.data());
    st.layer->init(rng);
    std::fill(st.cpu_opt.begin(), st.cpu_opt.end(), 0.0f);
    st.step = 0;
    if (st.swap_backed) {
      swap_->write(swap_key_params(st.index), st.cpu_params);
      if (!st.opt_tiered) {
        swap_->write(swap_key_opt(st.index), st.cpu_opt);
      }
    }
    if (st.opt_tiered) {
      const std::vector<float> zeros(opt_floats(st.index), 0.0f);
      swap_->write(moment_key(st.index), zeros);
    }
  }
}

std::vector<float> LayerStore::moments_copy(std::size_t i) const {
  const LayerState& st = state(i);
  if (!st.opt_tiered) return st.cpu_opt;
  std::vector<float> out(opt_floats(i));
  swap_->read(moment_key(i), out);
  return out;
}

void LayerStore::install_moments(std::size_t i, std::span<const float> m) {
  LayerState& st = state(i);
  if (m.size() != opt_floats(i)) {
    throw std::invalid_argument("LayerStore::install_moments: size mismatch");
  }
  if (st.opt_tiered) {
    swap_->write(moment_key(i), m);
  } else {
    std::copy(m.begin(), m.end(), st.cpu_opt.begin());
  }
}

std::shared_future<void> LayerStore::fault_in(std::size_t i) {
  LayerState& st = state(i);
  if (!st.swap_backed) return ready_future();
  auto f1 = swap_->read_async(swap_key_params(i), st.cpu_params);
  // Tiered layers have no host-resident opt plane: their moments stay in the
  // tier's moment region and are paged by the optimizer pool instead.
  if (st.opt_tiered) return f1;
  auto f2 = swap_->read_async(swap_key_opt(i), st.cpu_opt);
  // Join on the FIFO tier queue: completion implies both reads completed,
  // and the joined future carries the FIRST failure of either read — a
  // permanently faulted params read cannot be masked by a healthy opt read.
  return swap_->join_async({std::move(f1), std::move(f2)});
}

std::shared_future<void> LayerStore::write_back(std::size_t i) {
  LayerState& st = state(i);
  if (!st.swap_backed) return ready_future();
  auto f1 = swap_->write_async(swap_key_params(i), st.cpu_params);
  if (st.opt_tiered) return f1;
  auto f2 = swap_->write_async(swap_key_opt(i), st.cpu_opt);
  return swap_->join_async({std::move(f1), std::move(f2)});
}

}  // namespace sh::core

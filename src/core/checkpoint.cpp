#include "core/checkpoint.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace sh::core {

namespace {
constexpr std::uint32_t kMagic = 0x5348434bu;  // "SHCK"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("checkpoint: truncated file");
  return v;
}
}  // namespace

void write_checkpoint(const std::string& path, const LayerStore& store) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("checkpoint: cannot open " + path);
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint64_t>(store.size()));
  for (std::size_t i = 0; i < store.size(); ++i) {
    const LayerState& st = store.state(i);
    // moments_copy is tier-transparent: NVMe-tiered layers read their moment
    // region, resident layers copy cpu_opt. The on-disk format is identical
    // either way (FP32 masters + moments are the only persisted truth).
    const std::vector<float> opt = store.moments_copy(i);
    write_pod(os, static_cast<std::uint64_t>(st.params));
    write_pod(os, static_cast<std::uint64_t>(opt.size()));
    write_pod(os, static_cast<std::int64_t>(st.step));
    os.write(reinterpret_cast<const char*>(st.cpu_params.data()),
             static_cast<std::streamsize>(st.cpu_params.size() * sizeof(float)));
    os.write(reinterpret_cast<const char*>(opt.data()),
             static_cast<std::streamsize>(opt.size() * sizeof(float)));
  }
  if (!os) throw std::runtime_error("checkpoint: write failed for " + path);
}

void read_checkpoint(const std::string& path, LayerStore& store) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("checkpoint: cannot open " + path);
  if (read_pod<std::uint32_t>(is) != kMagic) {
    throw std::runtime_error("checkpoint: bad magic in " + path);
  }
  if (read_pod<std::uint32_t>(is) != kVersion) {
    throw std::runtime_error("checkpoint: unsupported version in " + path);
  }
  if (read_pod<std::uint64_t>(is) != store.size()) {
    throw std::invalid_argument("checkpoint: layer count mismatch");
  }
  for (std::size_t i = 0; i < store.size(); ++i) {
    LayerState& st = store.state(i);
    if (read_pod<std::uint64_t>(is) != static_cast<std::uint64_t>(st.params)) {
      throw std::invalid_argument("checkpoint: param count mismatch at layer " +
                                  std::to_string(i));
    }
    if (read_pod<std::uint64_t>(is) != store.opt_floats(i)) {
      throw std::invalid_argument(
          "checkpoint: optimizer state mismatch at layer " + std::to_string(i));
    }
    st.step = read_pod<std::int64_t>(is);
    is.read(reinterpret_cast<char*>(st.cpu_params.data()),
            static_cast<std::streamsize>(st.cpu_params.size() * sizeof(float)));
    std::vector<float> opt(store.opt_floats(i));
    is.read(reinterpret_cast<char*>(opt.data()),
            static_cast<std::streamsize>(opt.size() * sizeof(float)));
    if (!is) throw std::runtime_error("checkpoint: truncated layer data");
    store.install_moments(i, opt);
  }
}

}  // namespace sh::core

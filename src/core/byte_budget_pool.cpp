#include "core/byte_budget_pool.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace sh::core {

ByteBudgetPool::ByteBudgetPool(hw::MemoryPool& gpu, std::size_t budget_floats)
    : gpu_(gpu), budget_(budget_floats) {
  if (budget_floats == 0) {
    throw std::invalid_argument("ByteBudgetPool: empty budget");
  }
  base_ = gpu_.allocate_floats(budget_);
  free_[0] = budget_;
}

ByteBudgetPool::~ByteBudgetPool() { gpu_.deallocate(base_); }

float* ByteBudgetPool::take_first_fit_locked(std::size_t floats) {
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second < floats) continue;
    const std::size_t offset = it->first;
    const std::size_t remaining = it->second - floats;
    free_.erase(it);
    if (remaining > 0) free_[offset + floats] = remaining;
    allocated_[offset] = floats;
    in_use_ += floats;
    peak_ = std::max(peak_, in_use_);
    ++acquisitions_;
    return base_ + offset;
  }
  return nullptr;
}

float* ByteBudgetPool::acquire(std::size_t floats) {
  if (floats == 0) throw std::invalid_argument("acquire of zero floats");
  if (floats > budget_) {
    throw hw::OomError("window-budget", floats * sizeof(float),
                       budget_ * sizeof(float));
  }
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (float* p = take_first_fit_locked(floats)) return p;
    cv_.wait(lock);
  }
}

float* ByteBudgetPool::try_acquire(std::size_t floats) {
  if (floats == 0) throw std::invalid_argument("acquire of zero floats");
  if (floats > budget_) {
    throw hw::OomError("window-budget", floats * sizeof(float),
                       budget_ * sizeof(float));
  }
  std::lock_guard<std::mutex> lock(mu_);
  return take_first_fit_locked(floats);
}

void ByteBudgetPool::release(float* ptr) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto offset = static_cast<std::size_t>(ptr - base_);
  auto it = allocated_.find(offset);
  if (ptr < base_ || it == allocated_.end()) {
    throw std::logic_error("ByteBudgetPool: releasing unknown region");
  }
  const std::size_t size = it->second;
  std::fill_n(ptr, size, std::numeric_limits<float>::quiet_NaN());
  allocated_.erase(it);
  in_use_ -= size;

  // Insert and coalesce with neighbours.
  auto inserted = free_.emplace(offset, size).first;
  if (inserted != free_.begin()) {
    auto prev = std::prev(inserted);
    if (prev->first + prev->second == inserted->first) {
      prev->second += inserted->second;
      free_.erase(inserted);
      inserted = prev;
    }
  }
  auto next = std::next(inserted);
  if (next != free_.end() &&
      inserted->first + inserted->second == next->first) {
    inserted->second += next->second;
    free_.erase(next);
  }
  cv_.notify_all();
}

std::size_t ByteBudgetPool::floats_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_use_;
}

std::size_t ByteBudgetPool::peak_floats_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_;
}

std::size_t ByteBudgetPool::live_regions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return allocated_.size();
}

std::size_t ByteBudgetPool::total_acquisitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acquisitions_;
}

std::size_t ByteBudgetPool::largest_free_locked() const {
  std::size_t best = 0;
  for (const auto& [off, size] : free_) best = std::max(best, size);
  return best;
}

std::size_t ByteBudgetPool::largest_free_region() const {
  std::lock_guard<std::mutex> lock(mu_);
  return largest_free_locked();
}

}  // namespace sh::core

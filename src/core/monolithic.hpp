// Conventional all-in-memory training (the Megatron-LM-style reference).
//
// Every layer's parameters, gradients and optimizer state live in one memory
// space; updates run serially layer by layer after the backward pass. This is
// both the correctness oracle for StrongholdEngine (bit-identical results
// expected) and the "conventional training" comparator in the examples.
#pragma once

#include <cstdint>
#include <vector>

#include "core/layer_store.hpp"
#include "core/loss_scaler.hpp"
#include "data/synthetic.hpp"
#include "nn/gpt.hpp"
#include "optim/optimizer.hpp"
#include "optim/schedule.hpp"

namespace sh::core {

/// Options mirroring the engine's training features so the oracle covers
/// every path: clipping, schedules and mixed precision.
struct TrainOptions {
  float clip_grad_norm = 0.0f;
  optim::LrSchedule lr_schedule{};
  bool fp16 = false;
  LossScalerConfig loss_scaler{};
};

class MonolithicTrainer {
 public:
  MonolithicTrainer(nn::GptModel& model, const optim::AdamConfig& adam,
                    TrainOptions options);
  MonolithicTrainer(nn::GptModel& model, const optim::AdamConfig& adam,
                    float clip_grad_norm = 0.0f,
                    optim::LrSchedule lr_schedule = {});

  /// Deterministic initialisation — the same layer-order Rng walk as
  /// LayerStore::init_params, so both trainers start from identical weights.
  void init_params(std::uint64_t seed);

  /// One training iteration; returns the mean LM loss.
  float train_step(const data::Batch& batch);

  /// Concatenated per-layer parameters (same layout as
  /// StrongholdEngine::snapshot_params).
  void snapshot_params(std::vector<float>& out) const;

  std::size_t iterations() const noexcept { return iterations_; }

  /// FP16 statistics (loss scale, skipped steps).
  const LossScaler& scaler() const noexcept { return scaler_; }

 private:
  nn::GptModel& model_;
  optim::Adam adam_;
  TrainOptions options_;
  LossScaler scaler_;
  LayerStore store_;  // reused purely as the flat state container
  // FP16: per-layer device-format (half-rounded) parameter copies the model
  // computes on; the FP32 masters live in store_.
  std::vector<std::vector<float>> staged_params_;
  std::size_t iterations_ = 0;
};

}  // namespace sh::core

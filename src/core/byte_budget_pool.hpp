// Fixed-size GPU working buffer with a dynamically varying number of layers
// (Section III-D, final paragraph).
//
// The default BufferPool reserves uniform slots sized for the largest layer,
// which wastes memory when layer sizes are heterogeneous (e.g. MoE blocks
// next to dense blocks). This pool instead reserves ONE fixed GPU buffer and
// sub-allocates exact-size regions from it with a first-fit free list —
// the number of resident layers then adapts to their sizes.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <map>
#include <mutex>

#include "hw/memory_pool.hpp"

namespace sh::core {

class ByteBudgetPool {
 public:
  /// Reserves a single `budget_floats` buffer from `gpu`.
  ByteBudgetPool(hw::MemoryPool& gpu, std::size_t budget_floats);
  ~ByteBudgetPool();

  ByteBudgetPool(const ByteBudgetPool&) = delete;
  ByteBudgetPool& operator=(const ByteBudgetPool&) = delete;

  /// Carves a `floats`-sized region out of the buffer (first fit); blocks
  /// until a large-enough contiguous region frees up. Throws OomError if the
  /// request exceeds the whole budget (it could never be satisfied).
  float* acquire(std::size_t floats);

  /// Non-blocking variant: nullptr when no region currently fits.
  float* try_acquire(std::size_t floats);

  /// Returns a region (poisoning it) and coalesces with free neighbours.
  void release(float* ptr);

  std::size_t budget_floats() const noexcept { return budget_; }
  std::size_t floats_in_use() const;
  std::size_t peak_floats_in_use() const;
  std::size_t live_regions() const;
  std::size_t total_acquisitions() const;

  /// Largest currently-free contiguous region (fragmentation diagnostics).
  std::size_t largest_free_region() const;

 private:
  std::size_t largest_free_locked() const;
  float* take_first_fit_locked(std::size_t floats);

  hw::MemoryPool& gpu_;
  float* base_ = nullptr;
  std::size_t budget_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  // offset -> size, for allocated and free regions.
  std::map<std::size_t, std::size_t> allocated_;
  std::map<std::size_t, std::size_t> free_;
  std::size_t in_use_ = 0;
  std::size_t peak_ = 0;
  std::size_t acquisitions_ = 0;
};

}  // namespace sh::core

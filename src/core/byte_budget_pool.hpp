// Compatibility shim: ByteBudgetPool is now an allocation policy over
// mem::DeviceArena. See mem/pool_policies.hpp for the class (single slab,
// first-fit coalescing free list — Section III-D, final paragraph).
#pragma once

#include "hw/memory_pool.hpp"  // transitive hw:: aliases, as before
#include "mem/pool_policies.hpp"

namespace sh::core {

using ByteBudgetPool = ::sh::mem::ByteBudgetPool;

}  // namespace sh::core

// Multi-head causal self-attention (GPT style).
#pragma once

#include "nn/linear.hpp"
#include "nn/module.hpp"

namespace sh::nn {

class CausalSelfAttention final : public Layer {
 public:
  CausalSelfAttention(std::string name, std::int64_t hidden,
                      std::int64_t heads);

  std::string name() const override { return name_; }
  std::int64_t param_count() const override {
    return qkv_.param_count() + proj_.param_count();
  }
  void bind(float* params, float* grads) override;
  void init(tensor::Rng& rng) override;
  tensor::Tensor forward(const tensor::Tensor& x,
                         const BatchShape& shape) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out,
                          const BatchShape& shape) override;

  /// KV-cached decode: appends the new tokens' keys/values to `cache` and
  /// attends over the whole prefix.
  tensor::Tensor forward_incremental(const tensor::Tensor& x,
                                     const BatchShape& shape,
                                     KvCache& cache) override;

 private:
  std::string name_;
  std::int64_t hidden_;
  std::int64_t heads_;
  std::int64_t head_dim_;
  Linear qkv_;
  Linear proj_;
  tensor::Tensor cached_qkv_;  // [tokens, 3*hidden]
  // Fused path (default): context output plus per-row online-softmax stats
  // ([2, batch*heads*seq]: running max, normaliser) — O(seq * hidden) total;
  // the backward recomputes tile scores from cached_qkv_ + these.
  tensor::Tensor cached_ctx_;    // [tokens, hidden]
  tensor::Tensor cached_stats_;  // [2, batch*heads*seq]
  // Reference path (set_use_fused_attention(false)): the materialised
  // probability matrix — O(seq^2) activation bytes.
  tensor::Tensor cached_probs_;  // [batch*heads*seq, seq]
};

}  // namespace sh::nn

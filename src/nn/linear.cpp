#include "nn/linear.hpp"

#include <cmath>
#include <utility>

#include "tensor/ops.hpp"

namespace sh::nn {

Linear::Linear(std::string name, std::int64_t in_features,
               std::int64_t out_features)
    : name_(std::move(name)),
      in_features_(in_features),
      out_features_(out_features) {}

void Linear::bind(float* params, float* grads) {
  ParamBinder binder(params, grads);
  std::tie(weight_, weight_grad_) = binder.take({out_features_, in_features_});
  std::tie(bias_, bias_grad_) = binder.take({out_features_});
}

void Linear::init(tensor::Rng& rng) {
  const float stddev = 0.02f;
  rng.fill_normal(weight_.span(), stddev);
  bias_.fill(0.0f);
}

tensor::Tensor Linear::forward(const tensor::Tensor& x,
                               const BatchShape& shape) {
  (void)shape;
  const std::int64_t rows = x.shape().dim(0);
  cached_input_ = x.clone();
  auto y = tensor::Tensor::zeros({rows, out_features_});
  tensor::matmul_bias(x.data(), weight_.data(), bias_.data(), y.data(), rows,
                      out_features_, in_features_, /*transpose_a=*/false,
                      /*transpose_b=*/true);
  return y;
}

tensor::Tensor Linear::forward_gelu(const tensor::Tensor& x,
                                    const BatchShape& shape,
                                    tensor::Tensor& pre_act) {
  (void)shape;
  const std::int64_t rows = x.shape().dim(0);
  cached_input_ = x.clone();
  pre_act = tensor::Tensor::zeros({rows, out_features_});
  auto y = tensor::Tensor::zeros({rows, out_features_});
  tensor::matmul_bias_gelu(x.data(), weight_.data(), bias_.data(),
                           pre_act.data(), y.data(), rows, out_features_,
                           in_features_, /*transpose_a=*/false,
                           /*transpose_b=*/true);
  return y;
}

tensor::Tensor Linear::backward(const tensor::Tensor& grad_out,
                                const BatchShape& shape) {
  tensor::bias_grad(grad_out.data(), bias_grad_.data(),
                    grad_out.shape().dim(0), out_features_);
  return backward_skip_bias(grad_out, shape);
}

tensor::Tensor Linear::backward_skip_bias(const tensor::Tensor& grad_out,
                                          const BatchShape& shape) {
  (void)shape;
  const std::int64_t rows = grad_out.shape().dim(0);
  auto grad_in = tensor::Tensor::zeros({rows, in_features_});
  // dX = dY @ W.
  tensor::matmul(grad_out.data(), weight_.data(), grad_in.data(), rows,
                 in_features_, out_features_, false, false);
  // dW += dY^T @ X.
  tensor::matmul(grad_out.data(), cached_input_.data(), weight_grad_.data(),
                 out_features_, in_features_, rows, /*transpose_a=*/true,
                 /*transpose_b=*/false, 1.0f, 1.0f);
  return grad_in;
}

}  // namespace sh::nn

// Mixture-of-experts Transformer block (Section III-B's nonlinear/gated
// structures, cf. Switch Transformers [27]).
//
// Pre-norm block whose feed-forward is a top-1-gated bank of expert MLPs:
//   mid = x + Attn(LN1(x))
//   y   = mid + p_e * Expert_e(LN2(mid))   with e = argmax softmax(gate(.))
//
// The execution path through the experts is data-dependent, which is what
// makes offloading non-trivial: STRONGHOLD's policy for such branches is to
// move all units directly connected to the branch together (this layer is
// one offloading unit covering every expert), falling back to delayed
// movement only when the bank exceeds the window slot — see DESIGN.md.
#pragma once

#include <vector>

#include "nn/attention.hpp"
#include "nn/layernorm.hpp"
#include "nn/linear.hpp"
#include "nn/mlp.hpp"
#include "nn/module.hpp"

namespace sh::nn {

class MoeBlock final : public Layer {
 public:
  MoeBlock(std::string name, std::int64_t hidden, std::int64_t heads,
           std::int64_t experts);

  std::string name() const override { return name_; }
  std::int64_t param_count() const override;
  void bind(float* params, float* grads) override;
  void init(tensor::Rng& rng) override;
  tensor::Tensor forward(const tensor::Tensor& x,
                         const BatchShape& shape) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out,
                          const BatchShape& shape) override;

  /// KV-cached decode: attention uses the cache; the gated expert FFN routes
  /// the new tokens only.
  tensor::Tensor forward_incremental(const tensor::Tensor& x,
                                     const BatchShape& shape,
                                     KvCache& cache) override;

  std::int64_t num_experts() const noexcept {
    return static_cast<std::int64_t>(experts_.size());
  }

  /// Tokens routed to each expert in the last forward (load statistics).
  const std::vector<std::int64_t>& expert_load() const noexcept {
    return expert_load_;
  }

 private:
  std::string name_;
  std::int64_t hidden_;
  LayerNorm ln1_;
  CausalSelfAttention attn_;
  LayerNorm ln2_;
  Linear gate_;
  std::vector<std::unique_ptr<Mlp>> experts_;

  // Forward caches.
  tensor::Tensor cached_mid_;        // x + attn(ln1 x)
  tensor::Tensor cached_ln2_out_;    // expert input
  tensor::Tensor cached_gate_probs_; // [tokens, experts]
  tensor::Tensor cached_expert_out_; // f_e(x) per token (unscaled)
  std::vector<std::int32_t> routing_;  // chosen expert per token
  std::vector<std::int64_t> expert_load_;
};

}  // namespace sh::nn

#include "nn/block.hpp"

#include <utility>

#include "tensor/dropout.hpp"
#include "tensor/ops.hpp"

namespace sh::nn {

TransformerBlock::TransformerBlock(std::string name, std::int64_t hidden,
                                   std::int64_t heads,
                                   bool checkpoint_activations, float dropout,
                                   std::uint64_t dropout_seed,
                                   std::uint64_t dropout_stream)
    : name_(std::move(name)),
      ln1_(name_ + ".ln1", hidden),
      attn_(name_ + ".attn", hidden, heads),
      ln2_(name_ + ".ln2", hidden),
      mlp_(name_ + ".mlp", hidden),
      checkpoint_(checkpoint_activations),
      dropout_(dropout),
      dropout_seed_(dropout_seed),
      dropout_stream_(dropout_stream) {}

std::int64_t TransformerBlock::param_count() const {
  return ln1_.param_count() + attn_.param_count() + ln2_.param_count() +
         mlp_.param_count();
}

void TransformerBlock::bind(float* params, float* grads) {
  std::int64_t off = 0;
  ln1_.bind(params + off, grads + off);
  off += ln1_.param_count();
  attn_.bind(params + off, grads + off);
  off += attn_.param_count();
  ln2_.bind(params + off, grads + off);
  off += ln2_.param_count();
  mlp_.bind(params + off, grads + off);
}

void TransformerBlock::init(tensor::Rng& rng) {
  ln1_.init(rng);
  attn_.init(rng);
  ln2_.init(rng);
  mlp_.init(rng);
}

tensor::Tensor TransformerBlock::run_forward(const tensor::Tensor& x,
                                             const BatchShape& shape) {
  const float p = shape.training ? dropout_ : 0.0f;
  const auto step = static_cast<std::uint64_t>(shape.step);
  const auto offset = static_cast<std::uint64_t>(
      shape.row_offset * shape.seq * x.shape().dim(1));

  auto a = attn_.forward(ln1_.forward(x, shape), shape);
  // Residual dropout on the attention output (stream 2k). The counter-based
  // mask is a pure function of (step, position), so checkpoint recomputation
  // reproduces it exactly.
  tensor::dropout_forward(a.data(), a.data(), a.numel(), p, dropout_seed_,
                          2 * dropout_stream_, step, offset);
  cached_mid_ = tensor::Tensor::zeros(x.shape());
  tensor::add(x.data(), a.data(), cached_mid_.data(), x.numel());

  auto m = mlp_.forward(ln2_.forward(cached_mid_, shape), shape);
  tensor::dropout_forward(m.data(), m.data(), m.numel(), p, dropout_seed_,
                          2 * dropout_stream_ + 1, step, offset);
  auto y = tensor::Tensor::zeros(x.shape());
  tensor::add(cached_mid_.data(), m.data(), y.data(), x.numel());
  caches_live_ = true;
  return y;
}

void TransformerBlock::drop_caches() {
  cached_mid_ = {};
  caches_live_ = false;
}

tensor::Tensor TransformerBlock::forward_incremental(const tensor::Tensor& x,
                                                     const BatchShape& shape,
                                                     KvCache& cache) {
  auto a = attn_.forward_incremental(ln1_.forward(x, shape), shape, cache);
  auto mid = tensor::Tensor::zeros(x.shape());
  tensor::add(x.data(), a.data(), mid.data(), x.numel());
  auto m = mlp_.forward(ln2_.forward(mid, shape), shape);
  auto y = tensor::Tensor::zeros(x.shape());
  tensor::add(mid.data(), m.data(), y.data(), x.numel());
  return y;
}

tensor::Tensor TransformerBlock::forward(const tensor::Tensor& x,
                                         const BatchShape& shape) {
  cached_input_ = x.clone();
  auto y = run_forward(x, shape);
  if (checkpoint_) drop_caches();
  return y;
}

tensor::Tensor TransformerBlock::backward(const tensor::Tensor& grad_out,
                                          const BatchShape& shape) {
  if (!caches_live_) {
    // Activation checkpointing: rebuild caches by re-running forward from the
    // stored block input.
    (void)run_forward(cached_input_, shape);
  }
  const float p = shape.training ? dropout_ : 0.0f;
  const auto step = static_cast<std::uint64_t>(shape.step);
  const auto offset = static_cast<std::uint64_t>(
      shape.row_offset * shape.seq * grad_out.shape().dim(1));

  // y = mid + dropout(MLP(LN2(mid))).
  auto g_m = tensor::Tensor::zeros(grad_out.shape());
  tensor::dropout_backward(grad_out.data(), g_m.data(), grad_out.numel(), p,
                           dropout_seed_, 2 * dropout_stream_ + 1, step,
                           offset);
  auto g_mid = ln2_.backward(mlp_.backward(g_m, shape), shape);
  tensor::axpy(1.0f, grad_out.data(), g_mid.data(), g_mid.numel());
  // mid = x + dropout(Attn(LN1(x))).
  auto g_a = tensor::Tensor::zeros(g_mid.shape());
  tensor::dropout_backward(g_mid.data(), g_a.data(), g_mid.numel(), p,
                           dropout_seed_, 2 * dropout_stream_, step, offset);
  auto g_x = ln1_.backward(attn_.backward(g_a, shape), shape);
  tensor::axpy(1.0f, g_mid.data(), g_x.data(), g_x.numel());
  drop_caches();
  return g_x;
}

}  // namespace sh::nn

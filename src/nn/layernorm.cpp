#include "nn/layernorm.hpp"

#include <utility>

namespace sh::nn {

LayerNorm::LayerNorm(std::string name, std::int64_t features)
    : name_(std::move(name)), features_(features) {}

void LayerNorm::bind(float* params, float* grads) {
  ParamBinder binder(params, grads);
  std::tie(gamma_, gamma_grad_) = binder.take({features_});
  std::tie(beta_, beta_grad_) = binder.take({features_});
}

void LayerNorm::init(tensor::Rng& rng) {
  (void)rng;
  gamma_.fill(1.0f);
  beta_.fill(0.0f);
}

tensor::Tensor LayerNorm::forward(const tensor::Tensor& x,
                                  const BatchShape& shape) {
  (void)shape;
  const std::int64_t rows = x.shape().dim(0);
  cached_input_ = x.clone();
  stats_.resize(static_cast<std::size_t>(rows));
  auto y = tensor::Tensor::zeros(x.shape());
  tensor::layernorm_forward(x.data(), gamma_.data(), beta_.data(), y.data(),
                            stats_.data(), rows, features_);
  return y;
}

tensor::Tensor LayerNorm::backward(const tensor::Tensor& grad_out,
                                   const BatchShape& shape) {
  (void)shape;
  const std::int64_t rows = grad_out.shape().dim(0);
  auto grad_in = tensor::Tensor::zeros(grad_out.shape());
  tensor::layernorm_backward(cached_input_.data(), gamma_.data(), stats_.data(),
                             grad_out.data(), grad_in.data(),
                             gamma_grad_.data(), beta_grad_.data(), rows,
                             features_);
  return grad_in;
}

}  // namespace sh::nn

// Layer abstraction for the numeric training substrate.
//
// Every layer exposes a flat parameter count and binds its parameter and
// gradient tensors as *views* into caller-provided memory. This mirrors the
// paper's runtime, which owns each layer's storage and rebinds the layer's
// tensors to whichever device buffer currently holds them (CPU blob or a GPU
// working-window slot). A layer must be rebindable at any point between
// forward/backward calls.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace sh::nn {

/// Shape of the token batch flowing through the model, plus the execution
/// context stochastic layers need: whether this is a training pass, the
/// global step (dropout counter), and the first row's index within the full
/// logical batch (so executors processing different micro-batches draw
/// consistent, disjoint dropout masks).
struct BatchShape {
  std::int64_t batch = 0;
  std::int64_t seq = 0;
  bool training = false;
  std::int64_t step = 0;
  std::int64_t row_offset = 0;
  /// Absolute position of the first token (incremental decoding).
  std::int64_t pos_offset = 0;
  std::int64_t tokens() const noexcept { return batch * seq; }
};

/// Per-layer key/value cache for incremental (autoregressive) decoding.
/// Layout: [batch, heads, capacity, head_dim], `length` positions filled.
struct KvCache {
  tensor::Tensor k;
  tensor::Tensor v;
  std::int64_t capacity = 0;
  std::int64_t length = 0;
};

/// Base class for all layers. Activations flow as [tokens, features]
/// matrices; layers that need the (batch, seq) structure receive it via
/// BatchShape at forward time.
class Layer {
 public:
  virtual ~Layer() = default;

  virtual std::string name() const = 0;

  /// Total number of parameter floats (== gradient floats).
  virtual std::int64_t param_count() const = 0;

  /// Rebinds parameter and gradient views into the given flat buffers, each
  /// of at least param_count() floats. May be called repeatedly; the layer
  /// must not cache stale pointers.
  virtual void bind(float* params, float* grads) = 0;

  /// Initialises bound parameters in place.
  virtual void init(tensor::Rng& rng) = 0;

  /// Forward pass. The layer caches whatever it needs for backward unless
  /// activation checkpointing drops the cache (see TransformerBlock).
  virtual tensor::Tensor forward(const tensor::Tensor& x,
                                 const BatchShape& shape) = 0;

  /// Backward pass; accumulates into the bound gradient buffer and returns
  /// the gradient with respect to the layer input.
  virtual tensor::Tensor backward(const tensor::Tensor& grad_out,
                                  const BatchShape& shape) = 0;

  /// Incremental (KV-cached) forward over `shape.tokens()` NEW tokens at
  /// absolute positions starting at shape.pos_offset. Layers with temporal
  /// state (attention) override this to append to `cache`; stateless layers
  /// fall back to the regular forward.
  virtual tensor::Tensor forward_incremental(const tensor::Tensor& x,
                                             const BatchShape& shape,
                                             KvCache& cache) {
    (void)cache;
    return forward(x, shape);
  }
};

/// Owning parameter/gradient storage for using layers standalone (tests,
/// monolithic baseline training). The STRONGHOLD engine replaces this with
/// pool-managed memory.
class OwnedStorage {
 public:
  explicit OwnedStorage(std::int64_t count)
      : params_(tensor::Tensor::zeros({count})),
        grads_(tensor::Tensor::zeros({count})) {}

  float* params() noexcept { return params_.data(); }
  float* grads() noexcept { return grads_.data(); }
  std::int64_t count() const noexcept { return params_.numel(); }
  void zero_grads() { grads_.fill(0.0f); }

 private:
  tensor::Tensor params_;
  tensor::Tensor grads_;
};

/// Helper for slicing a flat blob into named parameter views.
class ParamBinder {
 public:
  ParamBinder(float* params, float* grads) : params_(params), grads_(grads) {}

  /// Carves the next `shape` worth of floats off the blob and returns
  /// (param view, grad view).
  std::pair<tensor::Tensor, tensor::Tensor> take(tensor::Shape shape) {
    const std::int64_t n = shape.numel();
    auto p = tensor::Tensor::view(shape, params_ + offset_);
    auto g = tensor::Tensor::view(shape, grads_ + offset_);
    offset_ += n;
    return {p, g};
  }

  std::int64_t consumed() const noexcept { return offset_; }

 private:
  float* params_;
  float* grads_;
  std::int64_t offset_ = 0;
};

}  // namespace sh::nn

#include "nn/head.hpp"

#include <utility>

namespace sh::nn {

LmHead::LmHead(std::string name, std::int64_t hidden, std::int64_t vocab)
    : name_(std::move(name)),
      ln_(name_ + ".ln", hidden),
      proj_(name_ + ".proj", hidden, vocab) {}

void LmHead::bind(float* params, float* grads) {
  ln_.bind(params, grads);
  const std::int64_t off = ln_.param_count();
  proj_.bind(params + off, grads + off);
}

void LmHead::init(tensor::Rng& rng) {
  ln_.init(rng);
  proj_.init(rng);
}

tensor::Tensor LmHead::forward(const tensor::Tensor& x,
                               const BatchShape& shape) {
  return proj_.forward(ln_.forward(x, shape), shape);
}

tensor::Tensor LmHead::backward(const tensor::Tensor& grad_out,
                                const BatchShape& shape) {
  return ln_.backward(proj_.backward(grad_out, shape), shape);
}

}  // namespace sh::nn

// Multi-sequence KV-cached decode over a single resident layer.
//
// Continuous-batching serving (sh::serve) keeps many sequences in flight at
// once, each with its own KV cache and its own position. STRONGHOLD's window
// streaming pays the host->device transfer of a layer's weights exactly once
// per step; this helper then applies that resident layer to EVERY in-flight
// sequence before the window moves on, amortizing the transfer across the
// batch. Each sequence runs as its own batch-of-one pass, so the arithmetic
// per sequence is bit-identical to decoding that sequence alone — the
// identity the serving equivalence tests pin down.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/module.hpp"

namespace sh::nn {

/// One in-flight sequence's state while a decode step flows through the
/// layer stack. `x` carries the activation from unit to unit.
struct DecodeSlot {
  /// New token ids fed this step (one for decode, the prompt for prefill).
  std::vector<std::int32_t> ids;
  /// Absolute position of ids.front() within the sequence.
  std::int64_t pos = 0;
  /// Per-block KV caches, one per transformer block.
  std::span<KvCache> caches;
  /// Activation [tokens, features]; updated in place by apply_unit_multi.
  tensor::Tensor x;

  BatchShape shape() const noexcept {
    return BatchShape{/*batch=*/1,
                      /*seq=*/static_cast<std::int64_t>(ids.size()),
                      /*training=*/false,
                      /*step=*/0,
                      /*row_offset=*/0,
                      /*pos_offset=*/pos};
  }
};

/// Applies model unit `unit` (0 = embedding, 1..num_blocks = transformer
/// blocks, num_blocks+1 = LM head) to every slot while the unit's weights
/// are resident. Blocks run the KV-cached incremental forward against each
/// slot's own cache; the embedding sources activations from slot.ids.
void apply_unit_multi(Layer& layer, std::size_t unit, std::size_t num_blocks,
                      std::span<DecodeSlot> slots);

}  // namespace sh::nn

#include "nn/decode_batch.hpp"

#include <stdexcept>

#include "nn/embedding.hpp"

namespace sh::nn {

void apply_unit_multi(Layer& layer, std::size_t unit, std::size_t num_blocks,
                      std::span<DecodeSlot> slots) {
  if (unit == 0) {
    auto& emb = static_cast<Embedding&>(layer);
    for (DecodeSlot& slot : slots) {
      emb.set_ids(slot.ids);
      slot.x = emb.forward({}, slot.shape());
    }
    return;
  }
  if (unit <= num_blocks) {
    for (DecodeSlot& slot : slots) {
      KvCache& cache = slot.caches[unit - 1];
      if (cache.length != slot.pos) {
        throw std::logic_error(
            "apply_unit_multi: KV cache length does not match slot position");
      }
      slot.x = layer.forward_incremental(slot.x, slot.shape(), cache);
    }
    return;
  }
  for (DecodeSlot& slot : slots) {
    slot.x = layer.forward(slot.x, slot.shape());
  }
}

}  // namespace sh::nn

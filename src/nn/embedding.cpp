#include "nn/embedding.hpp"

#include <stdexcept>
#include <utility>

#include "tensor/dropout.hpp"
#include "tensor/ops.hpp"

namespace sh::nn {

Embedding::Embedding(std::string name, std::int64_t vocab, std::int64_t max_seq,
                     std::int64_t hidden, float dropout,
                     std::uint64_t dropout_seed, std::uint64_t dropout_stream)
    : name_(std::move(name)),
      vocab_(vocab),
      max_seq_(max_seq),
      hidden_(hidden),
      dropout_(dropout),
      dropout_seed_(dropout_seed),
      dropout_stream_(dropout_stream) {}

void Embedding::bind(float* params, float* grads) {
  ParamBinder binder(params, grads);
  std::tie(token_table_, token_grad_) = binder.take({vocab_, hidden_});
  std::tie(pos_table_, pos_grad_) = binder.take({max_seq_, hidden_});
}

void Embedding::init(tensor::Rng& rng) {
  rng.fill_normal(token_table_.span(), 0.02f);
  rng.fill_normal(pos_table_.span(), 0.01f);
}

tensor::Tensor Embedding::forward(const tensor::Tensor& x,
                                  const BatchShape& shape) {
  (void)x;
  const std::int64_t tokens = shape.tokens();
  if (static_cast<std::int64_t>(ids_.size()) != tokens) {
    throw std::logic_error("Embedding::forward: ids not staged for batch");
  }
  auto y = tensor::Tensor::zeros({tokens, hidden_});
  tensor::embedding_gather(token_table_.data(), ids_.data(), y.data(), tokens,
                           hidden_);
  if (shape.pos_offset + shape.seq > max_seq_) {
    throw std::out_of_range("Embedding: position exceeds max_seq");
  }
  for (std::int64_t b = 0; b < shape.batch; ++b) {
    for (std::int64_t t = 0; t < shape.seq; ++t) {
      tensor::axpy(1.0f, pos_table_.data() + (shape.pos_offset + t) * hidden_,
                   y.data() + (b * shape.seq + t) * hidden_, hidden_);
    }
  }
  if (shape.training && dropout_ > 0.0f) {
    tensor::dropout_forward(
        y.data(), y.data(), y.numel(), dropout_, dropout_seed_,
        dropout_stream_, static_cast<std::uint64_t>(shape.step),
        static_cast<std::uint64_t>(shape.row_offset * shape.seq * hidden_));
  }
  return y;
}

tensor::Tensor Embedding::backward(const tensor::Tensor& grad_out,
                                   const BatchShape& shape) {
  const std::int64_t tokens = shape.tokens();
  tensor::Tensor masked;
  const float* g = grad_out.data();
  if (shape.training && dropout_ > 0.0f) {
    masked = tensor::Tensor::zeros(grad_out.shape());
    tensor::dropout_backward(
        grad_out.data(), masked.data(), grad_out.numel(), dropout_,
        dropout_seed_, dropout_stream_, static_cast<std::uint64_t>(shape.step),
        static_cast<std::uint64_t>(shape.row_offset * shape.seq * hidden_));
    g = masked.data();
  }
  tensor::embedding_scatter_add(g, ids_.data(), token_grad_.data(), tokens,
                                hidden_);
  for (std::int64_t b = 0; b < shape.batch; ++b) {
    for (std::int64_t t = 0; t < shape.seq; ++t) {
      tensor::axpy(1.0f, g + (b * shape.seq + t) * hidden_,
                   pos_grad_.data() + t * hidden_, hidden_);
    }
  }
  // The embedding is the first layer; there is no upstream gradient.
  return {};
}

}  // namespace sh::nn

// Fully connected layer: y = x W^T + b with W stored [out, in].
#pragma once

#include "nn/module.hpp"

namespace sh::nn {

class Linear final : public Layer {
 public:
  Linear(std::string name, std::int64_t in_features, std::int64_t out_features);

  std::string name() const override { return name_; }
  std::int64_t param_count() const override {
    return in_features_ * out_features_ + out_features_;
  }
  void bind(float* params, float* grads) override;
  void init(tensor::Rng& rng) override;
  tensor::Tensor forward(const tensor::Tensor& x,
                         const BatchShape& shape) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out,
                          const BatchShape& shape) override;

  /// Fused forward + GELU epilogue (one GEMM pass, no separate bias/GELU
  /// sweeps): returns gelu(x W^T + b) and stores the pre-activation into
  /// `pre_act` for the backward pass. Caches x like forward().
  tensor::Tensor forward_gelu(const tensor::Tensor& x, const BatchShape& shape,
                              tensor::Tensor& pre_act);

  /// Backward without the bias-grad reduction — for callers (Mlp) that have
  /// already accumulated dBias via a fused kernel. Otherwise identical to
  /// backward().
  tensor::Tensor backward_skip_bias(const tensor::Tensor& grad_out,
                                    const BatchShape& shape);

  /// Raw dBias accumulator ([out_features]) for fused upstream reductions.
  float* bias_grad_data() { return bias_grad_.data(); }

  std::int64_t in_features() const noexcept { return in_features_; }
  std::int64_t out_features() const noexcept { return out_features_; }

  /// Direct access for tests and attention internals.
  tensor::Tensor& weight() { return weight_; }
  tensor::Tensor& bias() { return bias_; }

 private:
  std::string name_;
  std::int64_t in_features_;
  std::int64_t out_features_;
  tensor::Tensor weight_, weight_grad_;
  tensor::Tensor bias_, bias_grad_;
  tensor::Tensor cached_input_;
};

}  // namespace sh::nn

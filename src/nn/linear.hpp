// Fully connected layer: y = x W^T + b with W stored [out, in].
#pragma once

#include "nn/module.hpp"

namespace sh::nn {

class Linear final : public Layer {
 public:
  Linear(std::string name, std::int64_t in_features, std::int64_t out_features);

  std::string name() const override { return name_; }
  std::int64_t param_count() const override {
    return in_features_ * out_features_ + out_features_;
  }
  void bind(float* params, float* grads) override;
  void init(tensor::Rng& rng) override;
  tensor::Tensor forward(const tensor::Tensor& x,
                         const BatchShape& shape) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out,
                          const BatchShape& shape) override;

  std::int64_t in_features() const noexcept { return in_features_; }
  std::int64_t out_features() const noexcept { return out_features_; }

  /// Direct access for tests and attention internals.
  tensor::Tensor& weight() { return weight_; }
  tensor::Tensor& bias() { return bias_; }

 private:
  std::string name_;
  std::int64_t in_features_;
  std::int64_t out_features_;
  tensor::Tensor weight_, weight_grad_;
  tensor::Tensor bias_, bias_grad_;
  tensor::Tensor cached_input_;
};

}  // namespace sh::nn

// Position-wise feed-forward network: Linear(h, 4h) -> GELU -> Linear(4h, h).
#pragma once

#include "nn/linear.hpp"
#include "nn/module.hpp"

namespace sh::nn {

class Mlp final : public Layer {
 public:
  Mlp(std::string name, std::int64_t hidden, std::int64_t expansion = 4);

  std::string name() const override { return name_; }
  std::int64_t param_count() const override {
    return fc1_.param_count() + fc2_.param_count();
  }
  void bind(float* params, float* grads) override;
  void init(tensor::Rng& rng) override;
  tensor::Tensor forward(const tensor::Tensor& x,
                         const BatchShape& shape) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out,
                          const BatchShape& shape) override;

 private:
  std::string name_;
  Linear fc1_;
  Linear fc2_;
  tensor::Tensor cached_pre_gelu_;
};

}  // namespace sh::nn

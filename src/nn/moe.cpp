#include "nn/moe.hpp"

#include <algorithm>
#include <utility>

#include "tensor/ops.hpp"

namespace sh::nn {

MoeBlock::MoeBlock(std::string name, std::int64_t hidden, std::int64_t heads,
                   std::int64_t experts)
    : name_(std::move(name)),
      hidden_(hidden),
      ln1_(name_ + ".ln1", hidden),
      attn_(name_ + ".attn", hidden, heads),
      ln2_(name_ + ".ln2", hidden),
      gate_(name_ + ".gate", hidden, experts) {
  if (experts < 1) throw std::invalid_argument("MoeBlock needs >= 1 expert");
  for (std::int64_t e = 0; e < experts; ++e) {
    experts_.push_back(std::make_unique<Mlp>(
        name_ + ".expert" + std::to_string(e), hidden));
  }
  expert_load_.assign(static_cast<std::size_t>(experts), 0);
}

std::int64_t MoeBlock::param_count() const {
  std::int64_t n = ln1_.param_count() + attn_.param_count() +
                   ln2_.param_count() + gate_.param_count();
  for (const auto& e : experts_) n += e->param_count();
  return n;
}

void MoeBlock::bind(float* params, float* grads) {
  std::int64_t off = 0;
  auto next = [&](Layer& l) {
    l.bind(params + off, grads + off);
    off += l.param_count();
  };
  next(ln1_);
  next(attn_);
  next(ln2_);
  next(gate_);
  for (auto& e : experts_) next(*e);
}

void MoeBlock::init(tensor::Rng& rng) {
  ln1_.init(rng);
  attn_.init(rng);
  ln2_.init(rng);
  gate_.init(rng);
  for (auto& e : experts_) e->init(rng);
}

tensor::Tensor MoeBlock::forward(const tensor::Tensor& x,
                                 const BatchShape& shape) {
  const std::int64_t tokens = shape.tokens();
  const auto num_experts = static_cast<std::int64_t>(experts_.size());

  // Attention half, identical to a dense block.
  auto a = attn_.forward(ln1_.forward(x, shape), shape);
  cached_mid_ = tensor::Tensor::zeros(x.shape());
  tensor::add(x.data(), a.data(), cached_mid_.data(), x.numel());

  cached_ln2_out_ = ln2_.forward(cached_mid_, shape);

  // Top-1 gating.
  auto gate_logits = gate_.forward(cached_ln2_out_, shape);
  cached_gate_probs_ = tensor::Tensor::zeros({tokens, num_experts});
  tensor::softmax_rows(gate_logits.data(), cached_gate_probs_.data(), tokens,
                       num_experts);
  routing_.assign(static_cast<std::size_t>(tokens), 0);
  std::fill(expert_load_.begin(), expert_load_.end(), 0);
  for (std::int64_t t = 0; t < tokens; ++t) {
    const float* p = cached_gate_probs_.data() + t * num_experts;
    const auto e = static_cast<std::int32_t>(
        std::max_element(p, p + num_experts) - p);
    routing_[static_cast<std::size_t>(t)] = e;
    ++expert_load_[static_cast<std::size_t>(e)];
  }

  // Dispatch token subsets to their experts; keep unscaled expert outputs
  // for the gate gradient.
  cached_expert_out_ = tensor::Tensor::zeros({tokens, hidden_});
  for (std::int64_t e = 0; e < num_experts; ++e) {
    const std::int64_t rows = expert_load_[static_cast<std::size_t>(e)];
    if (rows == 0) continue;
    auto in = tensor::Tensor::zeros({rows, hidden_});
    std::int64_t r = 0;
    for (std::int64_t t = 0; t < tokens; ++t) {
      if (routing_[static_cast<std::size_t>(t)] != e) continue;
      std::copy_n(cached_ln2_out_.data() + t * hidden_, hidden_,
                  in.data() + r * hidden_);
      ++r;
    }
    auto out = experts_[static_cast<std::size_t>(e)]->forward(in, {rows, 1});
    r = 0;
    for (std::int64_t t = 0; t < tokens; ++t) {
      if (routing_[static_cast<std::size_t>(t)] != e) continue;
      std::copy_n(out.data() + r * hidden_, hidden_,
                  cached_expert_out_.data() + t * hidden_);
      ++r;
    }
  }

  // y = mid + p_e * f_e(.).
  auto y = cached_mid_.clone();
  for (std::int64_t t = 0; t < tokens; ++t) {
    const auto e = routing_[static_cast<std::size_t>(t)];
    const float p = cached_gate_probs_.at(t * num_experts + e);
    tensor::axpy(p, cached_expert_out_.data() + t * hidden_,
                 y.data() + t * hidden_, hidden_);
  }
  return y;
}

tensor::Tensor MoeBlock::forward_incremental(const tensor::Tensor& x,
                                             const BatchShape& shape,
                                             KvCache& cache) {
  const std::int64_t tokens = shape.tokens();
  const auto num_experts = static_cast<std::int64_t>(experts_.size());

  auto a = attn_.forward_incremental(ln1_.forward(x, shape), shape, cache);
  auto mid = tensor::Tensor::zeros(x.shape());
  tensor::add(x.data(), a.data(), mid.data(), x.numel());
  auto ln2_out = ln2_.forward(mid, shape);

  auto gate_logits = gate_.forward(ln2_out, shape);
  auto probs = tensor::Tensor::zeros({tokens, num_experts});
  tensor::softmax_rows(gate_logits.data(), probs.data(), tokens, num_experts);

  auto y = mid.clone();
  // Token-at-a-time dispatch (decode batches are tiny).
  for (std::int64_t t = 0; t < tokens; ++t) {
    const float* p = probs.data() + t * num_experts;
    const auto e = static_cast<std::int64_t>(
        std::max_element(p, p + num_experts) - p);
    auto in = tensor::Tensor::zeros({1, hidden_});
    std::copy_n(ln2_out.data() + t * hidden_, hidden_, in.data());
    auto out = experts_[static_cast<std::size_t>(e)]->forward(in, {1, 1});
    tensor::axpy(p[e], out.data(), y.data() + t * hidden_, hidden_);
  }
  return y;
}

tensor::Tensor MoeBlock::backward(const tensor::Tensor& grad_out,
                                  const BatchShape& shape) {
  const std::int64_t tokens = shape.tokens();
  const auto num_experts = static_cast<std::int64_t>(experts_.size());

  // d expert output (scaled) and d gate logits.
  auto grad_gate_logits = tensor::Tensor::zeros({tokens, num_experts});
  auto grad_expert_scaled = tensor::Tensor::zeros({tokens, hidden_});
  for (std::int64_t t = 0; t < tokens; ++t) {
    const auto e = routing_[static_cast<std::size_t>(t)];
    const float* probs = cached_gate_probs_.data() + t * num_experts;
    const float p = probs[e];
    const float* gy = grad_out.data() + t * hidden_;
    // dL/d f_e = p * gy.
    float* gf = grad_expert_scaled.data() + t * hidden_;
    for (std::int64_t c = 0; c < hidden_; ++c) gf[c] = p * gy[c];
    // dL/dp = <gy, f_e>; dp/dg_j = p (delta_ej - probs_j).
    const float dldp = tensor::dot(gy, cached_expert_out_.data() + t * hidden_,
                                   hidden_);
    float* gg = grad_gate_logits.data() + t * num_experts;
    for (std::int64_t j = 0; j < num_experts; ++j) {
      gg[j] = dldp * p * ((j == e ? 1.0f : 0.0f) - probs[j]);
    }
  }

  // Backprop through each expert on its token subset.
  auto grad_ln2_out = gate_.backward(grad_gate_logits, shape);
  for (std::int64_t e = 0; e < num_experts; ++e) {
    const std::int64_t rows = expert_load_[static_cast<std::size_t>(e)];
    if (rows == 0) continue;
    auto gin = tensor::Tensor::zeros({rows, hidden_});
    std::int64_t r = 0;
    for (std::int64_t t = 0; t < tokens; ++t) {
      if (routing_[static_cast<std::size_t>(t)] != e) continue;
      std::copy_n(grad_expert_scaled.data() + t * hidden_, hidden_,
                  gin.data() + r * hidden_);
      ++r;
    }
    auto gx = experts_[static_cast<std::size_t>(e)]->backward(gin, {rows, 1});
    r = 0;
    for (std::int64_t t = 0; t < tokens; ++t) {
      if (routing_[static_cast<std::size_t>(t)] != e) continue;
      tensor::axpy(1.0f, gx.data() + r * hidden_,
                   grad_ln2_out.data() + t * hidden_, hidden_);
      ++r;
    }
  }

  // mid receives the residual gradient plus LN2's input gradient.
  auto g_mid = ln2_.backward(grad_ln2_out, shape);
  tensor::axpy(1.0f, grad_out.data(), g_mid.data(), g_mid.numel());
  // Attention half, as in the dense block.
  auto g_x = ln1_.backward(attn_.backward(g_mid, shape), shape);
  tensor::axpy(1.0f, g_mid.data(), g_x.data(), g_x.numel());
  return g_x;
}

}  // namespace sh::nn

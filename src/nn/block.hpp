// Pre-norm Transformer block with optional activation checkpointing:
//   x + Attn(LN1(x)), then y + MLP(LN2(y)).
//
// With checkpointing enabled (the paper uses layer-wise activation
// checkpointing throughout its evaluation), the block keeps only its input
// after forward and re-runs the forward pass inside backward to rebuild the
// activation caches — trading compute for memory exactly as [39].
#pragma once

#include "nn/attention.hpp"
#include "nn/layernorm.hpp"
#include "nn/mlp.hpp"
#include "nn/module.hpp"

namespace sh::nn {

class TransformerBlock final : public Layer {
 public:
  /// `dropout` applies inverted residual dropout after the attention and MLP
  /// sub-layers (deterministic counter-based masks; see tensor/dropout.hpp).
  /// `dropout_stream` must be unique per block so layers draw independent
  /// masks.
  TransformerBlock(std::string name, std::int64_t hidden, std::int64_t heads,
                   bool checkpoint_activations = false, float dropout = 0.0f,
                   std::uint64_t dropout_seed = 0,
                   std::uint64_t dropout_stream = 0);

  std::string name() const override { return name_; }
  std::int64_t param_count() const override;
  void bind(float* params, float* grads) override;
  void init(tensor::Rng& rng) override;
  tensor::Tensor forward(const tensor::Tensor& x,
                         const BatchShape& shape) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out,
                          const BatchShape& shape) override;

  /// KV-cached decode through the block (inference: dropout off, no caches
  /// for backward are touched).
  tensor::Tensor forward_incremental(const tensor::Tensor& x,
                                     const BatchShape& shape,
                                     KvCache& cache) override;

  void set_checkpoint_activations(bool on) noexcept { checkpoint_ = on; }
  bool checkpoint_activations() const noexcept { return checkpoint_; }

  /// True while the block holds activation caches required by backward.
  bool has_live_caches() const noexcept { return caches_live_; }

  /// Activation-spill support (checkpoint mode, between forward and
  /// backward): moves the checkpointed input out of the block so the caller
  /// can page it to a storage tier. put_checkpoint must restore an identical
  /// tensor before backward runs.
  tensor::Tensor take_checkpoint() noexcept { return std::move(cached_input_); }
  void put_checkpoint(tensor::Tensor t) noexcept {
    cached_input_ = std::move(t);
  }

 private:
  tensor::Tensor run_forward(const tensor::Tensor& x, const BatchShape& shape);
  void drop_caches();

  std::string name_;
  LayerNorm ln1_;
  CausalSelfAttention attn_;
  LayerNorm ln2_;
  Mlp mlp_;
  bool checkpoint_ = false;
  float dropout_ = 0.0f;
  std::uint64_t dropout_seed_ = 0;
  std::uint64_t dropout_stream_ = 0;
  bool caches_live_ = false;
  tensor::Tensor cached_input_;  // kept in both modes (checkpoint boundary)
  tensor::Tensor cached_mid_;    // x + attn(ln1(x)), input to second half
};

}  // namespace sh::nn

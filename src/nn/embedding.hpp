// Token + positional embedding layer. This is the first layer of the GPT
// model; the STRONGHOLD runtime pins it in GPU memory (Figure 3 in the
// paper) to avoid window-fill latency at iteration start.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace sh::nn {

class Embedding final : public Layer {
 public:
  /// `dropout` applies deterministic inverted dropout to the embedding
  /// output (the usual GPT embedding dropout).
  Embedding(std::string name, std::int64_t vocab, std::int64_t max_seq,
            std::int64_t hidden, float dropout = 0.0f,
            std::uint64_t dropout_seed = 0, std::uint64_t dropout_stream = 0);

  std::string name() const override { return name_; }
  std::int64_t param_count() const override {
    return (vocab_ + max_seq_) * hidden_;
  }
  void bind(float* params, float* grads) override;
  void init(tensor::Rng& rng) override;

  /// Token ids must be staged with set_ids() before forward; the `x` input is
  /// ignored (the embedding is the source of the activation stream).
  tensor::Tensor forward(const tensor::Tensor& x,
                         const BatchShape& shape) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out,
                          const BatchShape& shape) override;

  void set_ids(std::vector<std::int32_t> ids) { ids_ = std::move(ids); }

  std::int64_t vocab() const noexcept { return vocab_; }

 private:
  std::string name_;
  std::int64_t vocab_;
  std::int64_t max_seq_;
  std::int64_t hidden_;
  float dropout_;
  std::uint64_t dropout_seed_;
  std::uint64_t dropout_stream_;
  tensor::Tensor token_table_, token_grad_;
  tensor::Tensor pos_table_, pos_grad_;
  std::vector<std::int32_t> ids_;
};

}  // namespace sh::nn

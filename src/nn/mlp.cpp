#include "nn/mlp.hpp"

#include <utility>

#include "tensor/ops.hpp"

namespace sh::nn {

Mlp::Mlp(std::string name, std::int64_t hidden, std::int64_t expansion)
    : name_(std::move(name)),
      fc1_(name_ + ".fc1", hidden, expansion * hidden),
      fc2_(name_ + ".fc2", expansion * hidden, hidden) {}

void Mlp::bind(float* params, float* grads) {
  fc1_.bind(params, grads);
  const std::int64_t off = fc1_.param_count();
  fc2_.bind(params + off, grads + off);
}

void Mlp::init(tensor::Rng& rng) {
  fc1_.init(rng);
  fc2_.init(rng);
}

tensor::Tensor Mlp::forward(const tensor::Tensor& x, const BatchShape& shape) {
  cached_pre_gelu_ = fc1_.forward(x, shape);
  auto h = tensor::Tensor::zeros(cached_pre_gelu_.shape());
  tensor::gelu_forward(cached_pre_gelu_.data(), h.data(),
                       cached_pre_gelu_.numel());
  return fc2_.forward(h, shape);
}

tensor::Tensor Mlp::backward(const tensor::Tensor& grad_out,
                             const BatchShape& shape) {
  auto grad_h = fc2_.backward(grad_out, shape);
  auto grad_pre = tensor::Tensor::zeros(grad_h.shape());
  tensor::gelu_backward(cached_pre_gelu_.data(), grad_h.data(),
                        grad_pre.data(), grad_h.numel());
  return fc1_.backward(grad_pre, shape);
}

}  // namespace sh::nn

#include "nn/mlp.hpp"

#include <utility>

#include "tensor/ops.hpp"

namespace sh::nn {

Mlp::Mlp(std::string name, std::int64_t hidden, std::int64_t expansion)
    : name_(std::move(name)),
      fc1_(name_ + ".fc1", hidden, expansion * hidden),
      fc2_(name_ + ".fc2", expansion * hidden, hidden) {}

void Mlp::bind(float* params, float* grads) {
  fc1_.bind(params, grads);
  const std::int64_t off = fc1_.param_count();
  fc2_.bind(params + off, grads + off);
}

void Mlp::init(tensor::Rng& rng) {
  fc1_.init(rng);
  fc2_.init(rng);
}

tensor::Tensor Mlp::forward(const tensor::Tensor& x, const BatchShape& shape) {
  // Fused GEMM + bias + GELU epilogue; the pre-activation is stored for
  // backward during the same pass.
  auto h = fc1_.forward_gelu(x, shape, cached_pre_gelu_);
  return fc2_.forward(h, shape);
}

tensor::Tensor Mlp::backward(const tensor::Tensor& grad_out,
                             const BatchShape& shape) {
  auto grad_h = fc2_.backward(grad_out, shape);
  auto grad_pre = tensor::Tensor::zeros(grad_h.shape());
  // Fused GELU backward + fc1 dBias reduction in one pass over grad_h;
  // fc1's backward then skips its own bias_grad sweep.
  tensor::gelu_backward_bias_grad(cached_pre_gelu_.data(), grad_h.data(),
                                  grad_pre.data(), fc1_.bias_grad_data(),
                                  grad_h.shape().dim(0),
                                  grad_h.shape().dim(1));
  return fc1_.backward_skip_bias(grad_pre, shape);
}

}  // namespace sh::nn

// GPT-style model assembled from an Embedding, n TransformerBlocks and an
// LmHead. The model is expressed as a flat, ordered list of layers — exactly
// the representation STRONGHOLD's preprocessing step extracts from the tensor
// graph (Section III-B): a static, sequential layer execution order.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "nn/block.hpp"
#include "nn/embedding.hpp"
#include "nn/head.hpp"
#include "nn/module.hpp"
#include "nn/moe.hpp"

namespace sh::nn {

struct GptConfig {
  std::int64_t vocab = 64;
  std::int64_t max_seq = 16;
  std::int64_t hidden = 32;
  std::int64_t heads = 4;
  std::int64_t layers = 2;  // number of transformer blocks
  bool checkpoint_activations = false;
  /// Mixture-of-experts: every `moe_every`-th block becomes a MoeBlock with
  /// `moe_experts` experts (0 experts = dense model). Exercises the paper's
  /// nonlinear-structure handling (Section III-B) and gives the layer stack
  /// a heterogeneous size profile.
  std::int64_t moe_experts = 0;
  std::int64_t moe_every = 2;
  /// Dropout probability on the embedding output and the residual branches
  /// of dense blocks (0 = off). Masks are deterministic counter-based
  /// functions of (seed, step, position), so activation-checkpoint
  /// recomputation and executor splitting reproduce them exactly.
  float dropout = 0.0f;
  std::uint64_t dropout_seed = 0x5eedULL;

  /// Total layer units seen by the runtime (embedding + blocks + head).
  std::int64_t num_units() const noexcept { return layers + 2; }
};

/// Owns the layer stack of a GPT model. Parameter storage is *not* owned —
/// callers bind each layer to memory (OwnedStorage for monolithic training,
/// pool-managed buffers under STRONGHOLD).
class GptModel {
 public:
  explicit GptModel(const GptConfig& config);

  const GptConfig& config() const noexcept { return config_; }
  std::size_t num_layers() const noexcept { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }
  const Layer& layer(std::size_t i) const { return *layers_[i]; }
  Embedding& embedding() { return *embedding_; }

  /// Largest per-layer parameter count — sizes the GPU working-window slots.
  std::int64_t max_layer_params() const;
  std::int64_t total_params() const;

  /// Runs the full forward pass. `ids` are [batch * seq] token ids.
  tensor::Tensor forward(std::span<const std::int32_t> ids,
                         const BatchShape& shape);
  /// Runs the full backward pass from the loss gradient over logits.
  void backward(const tensor::Tensor& grad_logits, const BatchShape& shape);

 private:
  GptConfig config_;
  std::vector<std::unique_ptr<Layer>> layers_;
  Embedding* embedding_ = nullptr;
};

/// Fused softmax cross-entropy over logits; returns mean loss and writes the
/// logits gradient.
float lm_loss(const tensor::Tensor& logits,
              std::span<const std::int32_t> targets,
              tensor::Tensor& grad_logits);

}  // namespace sh::nn

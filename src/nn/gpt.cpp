#include "nn/gpt.hpp"

#include <algorithm>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace sh::nn {

GptModel::GptModel(const GptConfig& config) : config_(config) {
  auto emb = std::make_unique<Embedding>(
      "embedding", config.vocab, config.max_seq, config.hidden, config.dropout,
      config.dropout_seed, /*dropout_stream=*/0);
  embedding_ = emb.get();
  layers_.push_back(std::move(emb));
  for (std::int64_t i = 0; i < config.layers; ++i) {
    const bool moe = config.moe_experts > 0 && config.moe_every > 0 &&
                     (i % config.moe_every) == config.moe_every - 1;
    if (moe) {
      layers_.push_back(std::make_unique<MoeBlock>(
          "moe_block" + std::to_string(i), config.hidden, config.heads,
          config.moe_experts));
    } else {
      layers_.push_back(std::make_unique<TransformerBlock>(
          "block" + std::to_string(i), config.hidden, config.heads,
          config.checkpoint_activations, config.dropout, config.dropout_seed,
          /*dropout_stream=*/static_cast<std::uint64_t>(i) + 1));
    }
  }
  layers_.push_back(
      std::make_unique<LmHead>("head", config.hidden, config.vocab));
}

std::int64_t GptModel::max_layer_params() const {
  std::int64_t m = 0;
  for (const auto& l : layers_) m = std::max(m, l->param_count());
  return m;
}

std::int64_t GptModel::total_params() const {
  std::int64_t sum = 0;
  for (const auto& l : layers_) sum += l->param_count();
  return sum;
}

tensor::Tensor GptModel::forward(std::span<const std::int32_t> ids,
                                 const BatchShape& shape) {
  if (static_cast<std::int64_t>(ids.size()) != shape.tokens()) {
    throw std::invalid_argument("GptModel::forward: ids size mismatch");
  }
  embedding_->set_ids({ids.begin(), ids.end()});
  tensor::Tensor x;
  for (auto& l : layers_) x = l->forward(x, shape);
  return x;
}

void GptModel::backward(const tensor::Tensor& grad_logits,
                        const BatchShape& shape) {
  tensor::Tensor g = grad_logits;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g, shape);
  }
}

float lm_loss(const tensor::Tensor& logits,
              std::span<const std::int32_t> targets,
              tensor::Tensor& grad_logits) {
  const std::int64_t rows = logits.shape().dim(0);
  const std::int64_t classes = logits.shape().dim(1);
  if (static_cast<std::int64_t>(targets.size()) != rows) {
    throw std::invalid_argument("lm_loss: target count mismatch");
  }
  if (!grad_logits.defined() || !(grad_logits.shape() == logits.shape())) {
    grad_logits = tensor::Tensor::zeros(logits.shape());
  }
  return tensor::cross_entropy(logits.data(), targets.data(),
                               grad_logits.data(), rows, classes);
}

}  // namespace sh::nn

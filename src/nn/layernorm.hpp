// Layer normalisation over the feature dimension.
#pragma once

#include <vector>

#include "nn/module.hpp"
#include "tensor/ops.hpp"

namespace sh::nn {

class LayerNorm final : public Layer {
 public:
  LayerNorm(std::string name, std::int64_t features);

  std::string name() const override { return name_; }
  std::int64_t param_count() const override { return 2 * features_; }
  void bind(float* params, float* grads) override;
  void init(tensor::Rng& rng) override;
  tensor::Tensor forward(const tensor::Tensor& x,
                         const BatchShape& shape) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out,
                          const BatchShape& shape) override;

 private:
  std::string name_;
  std::int64_t features_;
  tensor::Tensor gamma_, gamma_grad_;
  tensor::Tensor beta_, beta_grad_;
  tensor::Tensor cached_input_;
  std::vector<tensor::LayerNormStats> stats_;
};

}  // namespace sh::nn

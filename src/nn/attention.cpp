#include "nn/attention.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "tensor/attention_kernel.hpp"
#include "tensor/ops.hpp"

namespace sh::nn {

namespace {
/// Copies a [seq, head_dim] head slice out of [tokens, stride] storage.
/// (Reference path only — the fused kernel packs head planes in place.)
void gather_head(const float* src, float* dst, std::int64_t base_row,
                 std::int64_t seq, std::int64_t col0, std::int64_t head_dim,
                 std::int64_t stride) {
  for (std::int64_t t = 0; t < seq; ++t) {
    const float* s = src + (base_row + t) * stride + col0;
    std::copy_n(s, head_dim, dst + t * head_dim);
  }
}

/// Adds a [seq, head_dim] head slice back into [tokens, stride] storage.
void scatter_head_add(const float* src, float* dst, std::int64_t base_row,
                      std::int64_t seq, std::int64_t col0,
                      std::int64_t head_dim, std::int64_t stride) {
  for (std::int64_t t = 0; t < seq; ++t) {
    float* d = dst + (base_row + t) * stride + col0;
    const float* s = src + t * head_dim;
    for (std::int64_t c = 0; c < head_dim; ++c) d[c] += s[c];
  }
}
}  // namespace

CausalSelfAttention::CausalSelfAttention(std::string name, std::int64_t hidden,
                                         std::int64_t heads)
    : name_(std::move(name)),
      hidden_(hidden),
      heads_(heads),
      head_dim_(hidden / heads),
      qkv_(name_ + ".qkv", hidden, 3 * hidden),
      proj_(name_ + ".proj", hidden, hidden) {
  if (hidden % heads != 0) {
    throw std::invalid_argument("hidden must be divisible by heads");
  }
}

void CausalSelfAttention::bind(float* params, float* grads) {
  qkv_.bind(params, grads);
  const std::int64_t off = qkv_.param_count();
  proj_.bind(params + off, grads + off);
}

void CausalSelfAttention::init(tensor::Rng& rng) {
  qkv_.init(rng);
  proj_.init(rng);
}

tensor::Tensor CausalSelfAttention::forward(const tensor::Tensor& x,
                                            const BatchShape& shape) {
  const std::int64_t seq = shape.seq;
  const std::int64_t bs = shape.batch;
  const std::int64_t tokens = shape.tokens();
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  cached_qkv_ = qkv_.forward(x, shape);
  const std::int64_t stride = 3 * hidden_;

  if (tensor::use_fused_attention()) {
    // One-pass tiled kernel straight over the strided QKV head planes — no
    // gather copies, no [seq, seq] probability tensor. Only the context and
    // the per-row (max, normaliser) stats are kept for the backward.
    auto ctx = tensor::Tensor::zeros({tokens, hidden_});
    cached_stats_ = tensor::Tensor::zeros({2, bs * heads_ * seq});
    cached_probs_ = tensor::Tensor();
    const tensor::AttnPlanes qpl{cached_qkv_.data(), seq * stride, head_dim_,
                                 stride};
    const tensor::AttnPlanes kpl{cached_qkv_.data() + hidden_, seq * stride,
                                 head_dim_, stride};
    const tensor::AttnPlanes vpl{cached_qkv_.data() + 2 * hidden_,
                                 seq * stride, head_dim_, stride};
    const tensor::AttnPlanesMut opl{ctx.data(), seq * hidden_, head_dim_,
                                    hidden_};
    float* row_max = cached_stats_.data();
    float* row_sum = cached_stats_.data() + bs * heads_ * seq;
    tensor::attention_forward(qpl, kpl, vpl, opl, row_max, row_sum, bs, heads_,
                              seq, seq, head_dim_, /*causal_offset=*/0, scale);
    cached_ctx_ = ctx;
    return proj_.forward(ctx, shape);
  }

  cached_probs_ = tensor::Tensor::zeros({bs * heads_ * seq, seq});
  cached_ctx_ = tensor::Tensor();
  cached_stats_ = tensor::Tensor();
  auto ctx = tensor::Tensor::zeros({tokens, hidden_});

  std::vector<float> q(seq * head_dim_), k(seq * head_dim_), v(seq * head_dim_);
  std::vector<float> c(seq * head_dim_);
  std::vector<std::int64_t> allowed(static_cast<std::size_t>(seq));
  for (std::int64_t t = 0; t < seq; ++t) allowed[t] = t;

  for (std::int64_t b = 0; b < bs; ++b) {
    for (std::int64_t h = 0; h < heads_; ++h) {
      const std::int64_t col = h * head_dim_;
      gather_head(cached_qkv_.data(), q.data(), b * seq, seq, col, head_dim_,
                  stride);
      gather_head(cached_qkv_.data(), k.data(), b * seq, seq, hidden_ + col,
                  head_dim_, stride);
      gather_head(cached_qkv_.data(), v.data(), b * seq, seq, 2 * hidden_ + col,
                  head_dim_, stride);
      float* probs = cached_probs_.data() + (b * heads_ + h) * seq * seq;
      tensor::matmul(q.data(), k.data(), probs, seq, seq, head_dim_,
                     /*transpose_a=*/false, /*transpose_b=*/true);
      tensor::causal_softmax_rows(probs, seq, seq, allowed.data(), scale);
      tensor::matmul(probs, v.data(), c.data(), seq, head_dim_, seq, false,
                     false);
      for (std::int64_t t = 0; t < seq; ++t) {
        std::copy_n(c.data() + t * head_dim_, head_dim_,
                    ctx.data() + (b * seq + t) * hidden_ + col);
      }
    }
  }
  return proj_.forward(ctx, shape);
}

tensor::Tensor CausalSelfAttention::forward_incremental(
    const tensor::Tensor& x, const BatchShape& shape, KvCache& cache) {
  const std::int64_t bs = shape.batch;
  const std::int64_t n_new = shape.seq;
  const std::int64_t pos0 = shape.pos_offset;
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  if (!cache.k.defined()) {
    throw std::logic_error("forward_incremental: cache not initialised");
  }
  if (cache.length != pos0) {
    throw std::logic_error("forward_incremental: cache length mismatch");
  }
  if (pos0 + n_new > cache.capacity) {
    throw std::out_of_range("forward_incremental: cache capacity exceeded");
  }

  auto qkv = qkv_.forward(x, shape);
  auto ctx = tensor::Tensor::zeros({bs * n_new, hidden_});
  const std::int64_t total = pos0 + n_new;
  const std::int64_t stride = 3 * hidden_;

  // Append the new tokens' K and V to the cache planes.
  for (std::int64_t b = 0; b < bs; ++b) {
    for (std::int64_t h = 0; h < heads_; ++h) {
      const std::int64_t col = h * head_dim_;
      float* kc = cache.k.data() +
                  ((b * heads_ + h) * cache.capacity) * head_dim_;
      float* vc = cache.v.data() +
                  ((b * heads_ + h) * cache.capacity) * head_dim_;
      for (std::int64_t t = 0; t < n_new; ++t) {
        const float* row = qkv.data() + (b * n_new + t) * stride;
        std::copy_n(row + hidden_ + col, head_dim_,
                    kc + (pos0 + t) * head_dim_);
        std::copy_n(row + 2 * hidden_ + col, head_dim_,
                    vc + (pos0 + t) * head_dim_);
      }
    }
  }

  if (tensor::use_fused_attention()) {
    // Same fused kernel as training: queries are the new tokens, keys/values
    // the cache prefix, causal offset = prefix length. Stats are not needed
    // (no backward through decode).
    const tensor::AttnPlanes qpl{qkv.data(), n_new * stride, head_dim_,
                                 stride};
    const tensor::AttnPlanes kpl{cache.k.data(),
                                 heads_ * cache.capacity * head_dim_,
                                 cache.capacity * head_dim_, head_dim_};
    const tensor::AttnPlanes vpl{cache.v.data(),
                                 heads_ * cache.capacity * head_dim_,
                                 cache.capacity * head_dim_, head_dim_};
    const tensor::AttnPlanesMut opl{ctx.data(), n_new * hidden_, head_dim_,
                                    hidden_};
    tensor::attention_forward(qpl, kpl, vpl, opl, nullptr, nullptr, bs, heads_,
                              n_new, total, head_dim_, /*causal_offset=*/pos0,
                              scale);
    cache.length = total;
    return proj_.forward(ctx, shape);
  }

  std::vector<float> scores(static_cast<std::size_t>(total));
  for (std::int64_t b = 0; b < bs; ++b) {
    for (std::int64_t h = 0; h < heads_; ++h) {
      const std::int64_t col = h * head_dim_;
      const float* kc = cache.k.data() +
                        ((b * heads_ + h) * cache.capacity) * head_dim_;
      const float* vc = cache.v.data() +
                        ((b * heads_ + h) * cache.capacity) * head_dim_;
      // Attend each new query over the prefix [0, pos0 + t].
      for (std::int64_t t = 0; t < n_new; ++t) {
        const float* q = qkv.data() + (b * n_new + t) * stride + col;
        const std::int64_t lim = pos0 + t;  // inclusive causal limit
        float mx = -std::numeric_limits<float>::infinity();
        for (std::int64_t s = 0; s <= lim; ++s) {
          float acc = 0.0f;
          const float* krow = kc + s * head_dim_;
          for (std::int64_t c = 0; c < head_dim_; ++c) acc += q[c] * krow[c];
          scores[static_cast<std::size_t>(s)] = acc * scale;
          mx = std::max(mx, scores[static_cast<std::size_t>(s)]);
        }
        float sum = 0.0f;
        for (std::int64_t s = 0; s <= lim; ++s) {
          auto& v = scores[static_cast<std::size_t>(s)];
          v = std::exp(v - mx);
          sum += v;
        }
        const float inv = 1.0f / sum;
        float* out = ctx.data() + (b * n_new + t) * hidden_ + col;
        for (std::int64_t s = 0; s <= lim; ++s) {
          const float w = scores[static_cast<std::size_t>(s)] * inv;
          const float* vrow = vc + s * head_dim_;
          for (std::int64_t c = 0; c < head_dim_; ++c) out[c] += w * vrow[c];
        }
      }
    }
  }
  cache.length = total;
  return proj_.forward(ctx, shape);
}

tensor::Tensor CausalSelfAttention::backward(const tensor::Tensor& grad_out,
                                             const BatchShape& shape) {
  const std::int64_t seq = shape.seq;
  const std::int64_t bs = shape.batch;
  const std::int64_t tokens = shape.tokens();
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  auto grad_ctx = proj_.backward(grad_out, shape);
  auto grad_qkv = tensor::Tensor::zeros({tokens, 3 * hidden_});
  const std::int64_t stride = 3 * hidden_;

  if (tensor::use_fused_attention()) {
    // Tile scores are recomputed from cached Q/K/V plus the saved per-row
    // stats; dQ/dK/dV land directly in their strided grad-QKV head planes.
    const tensor::AttnPlanes qpl{cached_qkv_.data(), seq * stride, head_dim_,
                                 stride};
    const tensor::AttnPlanes kpl{cached_qkv_.data() + hidden_, seq * stride,
                                 head_dim_, stride};
    const tensor::AttnPlanes vpl{cached_qkv_.data() + 2 * hidden_,
                                 seq * stride, head_dim_, stride};
    const tensor::AttnPlanes opl{cached_ctx_.data(), seq * hidden_, head_dim_,
                                 hidden_};
    const tensor::AttnPlanes gpl{grad_ctx.data(), seq * hidden_, head_dim_,
                                 hidden_};
    const tensor::AttnPlanesMut dqpl{grad_qkv.data(), seq * stride, head_dim_,
                                     stride};
    const tensor::AttnPlanesMut dkpl{grad_qkv.data() + hidden_, seq * stride,
                                     head_dim_, stride};
    const tensor::AttnPlanesMut dvpl{grad_qkv.data() + 2 * hidden_,
                                     seq * stride, head_dim_, stride};
    const float* row_max = cached_stats_.data();
    const float* row_sum = cached_stats_.data() + bs * heads_ * seq;
    tensor::attention_backward(qpl, kpl, vpl, opl, gpl, row_max, row_sum,
                               dqpl, dkpl, dvpl, bs, heads_, seq, head_dim_,
                               scale);
    return qkv_.backward(grad_qkv, shape);
  }

  std::vector<float> q(seq * head_dim_), k(seq * head_dim_), v(seq * head_dim_);
  std::vector<float> gc(seq * head_dim_), gq(seq * head_dim_),
      gk(seq * head_dim_), gv(seq * head_dim_);
  std::vector<float> gprobs(seq * seq), gscores(seq * seq);

  for (std::int64_t b = 0; b < bs; ++b) {
    for (std::int64_t h = 0; h < heads_; ++h) {
      const std::int64_t col = h * head_dim_;
      gather_head(cached_qkv_.data(), q.data(), b * seq, seq, col, head_dim_,
                  stride);
      gather_head(cached_qkv_.data(), k.data(), b * seq, seq, hidden_ + col,
                  head_dim_, stride);
      gather_head(cached_qkv_.data(), v.data(), b * seq, seq, 2 * hidden_ + col,
                  head_dim_, stride);
      gather_head(grad_ctx.data(), gc.data(), b * seq, seq, col, head_dim_,
                  hidden_);
      const float* probs = cached_probs_.data() + (b * heads_ + h) * seq * seq;
      // d probs = d ctx @ V^T.
      tensor::matmul(gc.data(), v.data(), gprobs.data(), seq, seq, head_dim_,
                     false, true);
      // d V = probs^T @ d ctx.
      tensor::matmul(probs, gc.data(), gv.data(), seq, head_dim_, seq,
                     /*transpose_a=*/true, false);
      // Softmax backward; masked positions have probs == 0, so their grads
      // vanish automatically. The 1/sqrt(d) scale folds into the raw scores.
      tensor::softmax_rows_backward(probs, gprobs.data(), gscores.data(), seq,
                                    seq);
      tensor::scale(scale, gscores.data(), seq * seq);
      // d Q = d scores @ K;  d K = d scores^T @ Q.
      tensor::matmul(gscores.data(), k.data(), gq.data(), seq, head_dim_, seq,
                     false, false);
      tensor::matmul(gscores.data(), q.data(), gk.data(), seq, head_dim_, seq,
                     /*transpose_a=*/true, false);
      scatter_head_add(gq.data(), grad_qkv.data(), b * seq, seq, col, head_dim_,
                       stride);
      scatter_head_add(gk.data(), grad_qkv.data(), b * seq, seq, hidden_ + col,
                       head_dim_, stride);
      scatter_head_add(gv.data(), grad_qkv.data(), b * seq, seq,
                       2 * hidden_ + col, head_dim_, stride);
    }
  }
  return qkv_.backward(grad_qkv, shape);
}

}  // namespace sh::nn

// Final layer: LayerNorm followed by the vocabulary projection producing
// logits. This is the "pooling/head" layer the STRONGHOLD runtime pins in
// GPU memory alongside the embedding.
#pragma once

#include "nn/layernorm.hpp"
#include "nn/linear.hpp"
#include "nn/module.hpp"

namespace sh::nn {

class LmHead final : public Layer {
 public:
  LmHead(std::string name, std::int64_t hidden, std::int64_t vocab);

  std::string name() const override { return name_; }
  std::int64_t param_count() const override {
    return ln_.param_count() + proj_.param_count();
  }
  void bind(float* params, float* grads) override;
  void init(tensor::Rng& rng) override;
  tensor::Tensor forward(const tensor::Tensor& x,
                         const BatchShape& shape) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out,
                          const BatchShape& shape) override;

 private:
  std::string name_;
  LayerNorm ln_;
  Linear proj_;
};

}  // namespace sh::nn

#include "optim/optimizer.hpp"

#include <cmath>

namespace sh::optim {

void Adam::step(float* params, const float* grads, float* state, std::int64_t t,
                std::int64_t n, float lr_override) const {
  float* m = state;
  float* v = state + n;
  const float b1 = config_.beta1;
  const float b2 = config_.beta2;
  const float bc1 = 1.0f - std::pow(b1, static_cast<float>(t));
  const float bc2 = 1.0f - std::pow(b2, static_cast<float>(t));
  const float lr = lr_override >= 0.0f ? lr_override : config_.lr;
  const float eps = config_.eps;
  const float wd = config_.weight_decay;
  for (std::int64_t i = 0; i < n; ++i) {
    const float g = grads[i];
    m[i] = b1 * m[i] + (1.0f - b1) * g;
    v[i] = b2 * v[i] + (1.0f - b2) * g * g;
    const float mhat = m[i] / bc1;
    const float vhat = v[i] / bc2;
    float p = params[i];
    if (wd != 0.0f) p -= lr * wd * p;
    params[i] = p - lr * mhat / (std::sqrt(vhat) + eps);
  }
}

void Sgd::step(float* params, const float* grads, float* state, std::int64_t t,
               std::int64_t n, float lr_override) const {
  (void)t;
  const float lr = lr_override >= 0.0f ? lr_override : config_.lr;
  if (config_.momentum == 0.0f) {
    for (std::int64_t i = 0; i < n; ++i) params[i] -= lr * grads[i];
    return;
  }
  const float mu = config_.momentum;
  for (std::int64_t i = 0; i < n; ++i) {
    state[i] = mu * state[i] + grads[i];
    params[i] -= lr * state[i];
  }
}

}  // namespace sh::optim

// Optimizers operating on flat per-layer parameter blobs.
//
// STRONGHOLD keeps optimizer states in CPU RAM and runs updates on CPU cores
// (Section III-E1). To make a layer's full training state one contiguous,
// transferable unit, optimizers work on raw float arrays: parameters,
// gradients and `state_per_param()` floats of optimizer state per parameter,
// all owned by the runtime.
#pragma once

#include <cstdint>
#include <memory>

namespace sh::optim {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Number of state floats per parameter (Adam: 2 — momentum + variance).
  virtual std::int64_t state_per_param() const noexcept = 0;

  /// Applies one update step in place. `state` points at
  /// n * state_per_param() floats laid out as contiguous planes
  /// (all momentum, then all variance). `t` is the 1-based step count.
  /// `lr` overrides the configured learning rate when >= 0 (learning-rate
  /// schedules pass the per-step value here so asynchronous actors always
  /// apply the rate that was current when the step was *submitted*).
  virtual void step(float* params, const float* grads, float* state,
                    std::int64_t t, std::int64_t n, float lr = -1.0f) const = 0;

  /// Clone used to hand each concurrent optimizer actor its own instance.
  virtual std::unique_ptr<Optimizer> clone() const = 0;
};

struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
};

/// Adam [22] with decoupled weight decay (AdamW-style when weight_decay > 0).
class Adam final : public Optimizer {
 public:
  explicit Adam(const AdamConfig& config = {}) : config_(config) {}

  std::int64_t state_per_param() const noexcept override { return 2; }
  void step(float* params, const float* grads, float* state, std::int64_t t,
            std::int64_t n, float lr = -1.0f) const override;
  std::unique_ptr<Optimizer> clone() const override {
    return std::make_unique<Adam>(config_);
  }

  const AdamConfig& config() const noexcept { return config_; }

 private:
  AdamConfig config_;
};

struct SgdConfig {
  float lr = 1e-2f;
  float momentum = 0.0f;
};

/// SGD with optional classical momentum.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(const SgdConfig& config = {}) : config_(config) {}

  std::int64_t state_per_param() const noexcept override {
    return config_.momentum != 0.0f ? 1 : 0;
  }
  void step(float* params, const float* grads, float* state, std::int64_t t,
            std::int64_t n, float lr = -1.0f) const override;
  std::unique_ptr<Optimizer> clone() const override {
    return std::make_unique<Sgd>(config_);
  }

 private:
  SgdConfig config_;
};

}  // namespace sh::optim

// Learning-rate schedules. The paper trains with Megatron-LM's
// hyperparameters [23]: linear warm-up followed by (cosine or linear) decay.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <numbers>

namespace sh::optim {

/// A schedule maps the 1-based optimizer step to a learning rate.
using LrSchedule = std::function<float(std::int64_t step)>;

/// Constant learning rate.
inline LrSchedule constant_lr(float lr) {
  return [lr](std::int64_t) { return lr; };
}

/// Linear warm-up from 0 to `base_lr` over `warmup_steps`, then cosine decay
/// to `min_lr` at `total_steps` (flat at min_lr afterwards).
inline LrSchedule warmup_cosine(float base_lr, std::int64_t warmup_steps,
                                std::int64_t total_steps,
                                float min_lr = 0.0f) {
  return [=](std::int64_t step) {
    if (warmup_steps > 0 && step <= warmup_steps) {
      return base_lr * static_cast<float>(step) /
             static_cast<float>(warmup_steps);
    }
    if (step >= total_steps) return min_lr;
    const double progress =
        static_cast<double>(step - warmup_steps) /
        static_cast<double>(total_steps - warmup_steps);
    const double cosine = 0.5 * (1.0 + std::cos(std::numbers::pi * progress));
    return static_cast<float>(min_lr + (base_lr - min_lr) * cosine);
  };
}

/// Linear warm-up then linear decay to `min_lr` at `total_steps`.
inline LrSchedule warmup_linear(float base_lr, std::int64_t warmup_steps,
                                std::int64_t total_steps,
                                float min_lr = 0.0f) {
  return [=](std::int64_t step) {
    if (warmup_steps > 0 && step <= warmup_steps) {
      return base_lr * static_cast<float>(step) /
             static_cast<float>(warmup_steps);
    }
    if (step >= total_steps) return min_lr;
    const double progress =
        static_cast<double>(step - warmup_steps) /
        static_cast<double>(total_steps - warmup_steps);
    return static_cast<float>(base_lr + (min_lr - base_lr) * progress);
  };
}

}  // namespace sh::optim

// sh::serve demo: a model trained through the STRONGHOLD offload engine
// serves a burst of concurrent generation requests with continuous batching,
// a byte-budgeted KV arena (tight enough to force preemption) and per-request
// deterministic sampling. Prints the schedule's throughput, latency
// percentiles and the serve-step/request Gantt trace.
#include <cstdio>
#include <iostream>

#include "core/engine.hpp"
#include "data/synthetic.hpp"
#include "serve/scheduler.hpp"

int main() {
  sh::nn::GptConfig mcfg;
  mcfg.vocab = 64;
  mcfg.max_seq = 24;
  mcfg.hidden = 32;
  mcfg.heads = 4;
  mcfg.layers = 4;
  sh::nn::GptModel model(mcfg);

  sh::core::EngineConfig ecfg;
  ecfg.window = 2;
  ecfg.adam.lr = 5e-3f;
  // Size the simulated GPU so that, after the pinned layers and working
  // window are reserved, exactly 64 KiB of capacity remains: the scheduler's
  // default KV budget is that residual, so training and serving share one
  // accounted device budget (and the tight residual forces preemption).
  {
    sh::nn::GptModel probe(mcfg);
    sh::core::StrongholdEngine probe_engine(probe, ecfg);
    ecfg.gpu_memory_bytes = probe_engine.device_arena().used() + 64 * 1024;
  }
  sh::core::StrongholdEngine engine(model, ecfg);
  engine.init_params(7);

  // A few training steps so generation has structure to imitate.
  sh::data::SyntheticCorpus corpus(mcfg.vocab, 11);
  for (int i = 0; i < 30; ++i) {
    engine.train_step(corpus.next_batch(4, mcfg.max_seq));
  }

  sh::serve::SchedulerConfig scfg;
  scfg.max_batch = 8;
  scfg.arena.chunk_tokens = 4;
  // budget_bytes stays 0: the KV budget defaults to the device arena's
  // residual (the 64 KiB left beyond the window). 2 * layers * hidden * 4 =
  // 1024 bytes/token; 12 in-flight sequences at full depth would need
  // ~200 KiB — the residual budget forces preemption.
  sh::serve::Scheduler sched(engine, scfg);

  std::printf("submitting 12 requests (greedy and sampled)...\n");
  for (int i = 0; i < 12; ++i) {
    sh::serve::Request r;
    r.prompt = {static_cast<std::int32_t>((3 + 5 * i) % mcfg.vocab),
                static_cast<std::int32_t>((1 + 7 * i) % mcfg.vocab)};
    r.max_new_tokens = 14;
    if (i % 2 == 0) {
      r.sampling.temperature = 0.9f;
      r.sampling.top_k = 12;
      r.sampling.top_p = 0.95f;
      r.sampling.seed = 40 + i;
    }  // odd requests stay greedy
    const auto id = sched.submit(r);
    std::printf("  request %llu: prompt [%d %d] %s\n",
                static_cast<unsigned long long>(id), r.prompt[0], r.prompt[1],
                i % 2 == 0 ? "sampled" : "greedy");
  }

  sched.run_to_completion();

  const auto ss = sched.stats();
  const auto& as = sched.arena_stats();
  const auto& es = sched.serve_engine().stats();
  std::printf("\nfinished %zu requests in %zu steps\n", ss.finished, ss.steps);
  std::printf("tokens/sec        : %.0f\n", es.tokens_per_s());
  std::printf("latency p50 / p99 : %.2f ms / %.2f ms\n",
              sched.serve_engine().latency_percentile(0.5) * 1e3,
              sched.serve_engine().latency_percentile(0.99) * 1e3);
  std::printf("KV arena          : peak %zu B of %zu B (residual default), "
              "%zu preemptions, %zu resumes\n",
              as.peak_bytes, sched.kv_budget_bytes(), as.preemptions,
              as.resumes);
  const auto arena_stats = engine.device_arena().stats();
  std::printf("device arena      : peak %zu B of %zu B capacity, "
              "%zu pressure events (%zu released / %zu stalled)\n",
              arena_stats.peak_bytes, arena_stats.capacity,
              arena_stats.pressure_events, arena_stats.pressure_releases,
              arena_stats.pressure_stalls);
  for (const auto& [region, rs] : arena_stats.regions) {
    std::printf("  region %-12s: in use %zu B, peak %zu B\n", region.c_str(),
                rs.bytes_in_use, rs.peak_bytes);
  }

  std::printf("\ntokens of request 1: ");
  for (const auto t : sched.result(1)) std::printf("%d ", t);
  std::printf("\n\nserving trace:\n");
  sched.serve_engine().trace().render(std::cout, 100);
  return 0;
}

// Verbatim copy of the README's "Quickstart" code block, compiled by CI.
// tests/test_docs.cpp asserts this file and the README block are identical,
// so the documented snippet can never drift from the real API.
#include <cstdio>

#include "core/engine.hpp"
#include "data/synthetic.hpp"

int main() {
  sh::nn::GptConfig mcfg;            // vocab/seq/hidden/heads/layers
  mcfg.layers = 6;
  sh::nn::GptModel model(mcfg);

  sh::core::EngineConfig ecfg;
  ecfg.window = 0;                   // auto-select via the analytical model
  ecfg.gpu_memory_bytes = 2 << 20;   // a "GPU" the model does not fit in
  sh::core::StrongholdEngine engine(model, ecfg);
  engine.init_params(42);

  sh::data::SyntheticCorpus corpus(mcfg.vocab, 7);
  for (int step = 0; step < 100; ++step) {
    float loss = engine.train_step(corpus.next_batch(4, mcfg.max_seq));
    if (step % 20 == 0) std::printf("step %3d  loss %.4f\n", step, loss);
  }
  std::printf("auto-selected window m = %zu\n", engine.stats().window);
  return 0;
}

// Verbatim copy of the docs/MEMORY_TIERS.md "Worked example" code block,
// compiled by CI. tests/test_docs.cpp asserts this file and the doc block
// are identical, so the documented capacity story can never drift from the
// simulator that backs it. CI runs the binary and archives its stdout as the
// capacity report; a non-zero exit means the >= 2x claim no longer holds.
#include <cstdio>

#include "baselines/stronghold_strategy.hpp"
#include "baselines/strategy.hpp"
#include "sim/cost_model.hpp"
#include "sim/hardware.hpp"

int main() {
  using namespace sh;
  const auto v100 = sim::v100_server();  // 32 GB V100, 640 GiB pinned DDR4
  const double gib = 1024.0 * 1024.0 * 1024.0;

  baselines::StrongholdOptions tiered;
  tiered.nvme_optimizer_tier = true;  // what SH_OPT_TIER=nvme enables
  const baselines::StrongholdStrategy two_tier;            // GPU + CPU
  const baselines::StrongholdStrategy three_tier(tiered);  // GPU + CPU + NVMe

  // A 43B-parameter geometry (Table 1 shape, hidden 2560): the two-tier plan
  // overflows pinned CPU RAM, the three-tier plan fits with room to spare.
  baselines::Workload w;
  w.model = sim::table1_model(550, 2560);
  w.batch = 4;
  std::printf("capacity plan for %.1fB params on the V100 server\n",
              sim::params_billions(w.model));
  for (const baselines::StrongholdStrategy* s : {&two_tier, &three_tier}) {
    const auto cap = s->capacity(w, v100);
    std::printf("  %-21s gpu %5.1f  cpu %6.1f  nvme %6.1f GiB  %s%s\n",
                s->name().c_str(), cap.gpu_bytes / gib, cap.cpu_bytes / gib,
                cap.nvme_bytes / gib, cap.fits ? "fits" : "OOM: ",
                cap.limiter.c_str());
  }

  // Fig. 6 methodology: grow the layer count until the plan stops fitting.
  const double base =
      baselines::largest_trainable_billions(two_tier, v100, 2560, 1, 4);
  const double grown =
      baselines::largest_trainable_billions(three_tier, v100, 2560, 1, 4);
  std::printf("max trainable at hidden 2560: %.1fB -> %.1fB (%.2fx)\n", base,
              grown, grown / base);
  return grown >= 2.0 * base ? 0 : 1;  // CI guards the capacity claim
}

// Language modelling on real text: BPE tokenizer + STRONGHOLD engine +
// KV-cached generation. The whole pipeline the paper's artifact runs on
// Wikipedia, at laptop scale.
#include <cstdio>
#include <string>

#include "core/engine.hpp"
#include "data/text_corpus.hpp"
#include "optim/schedule.hpp"

int main() {
  using namespace sh;
  const auto text = data::TextCorpus::sample_text();
  auto corpus = data::TextCorpus::from_text(text, /*vocab_size=*/320,
                                            /*seed=*/11);
  std::printf("corpus: %zu bytes -> %zu BPE tokens (vocab %lld, %zu merges)\n",
              text.size(), corpus.num_tokens(),
              static_cast<long long>(corpus.vocab()),
              corpus.tokenizer().num_merges());

  nn::GptConfig mcfg;
  mcfg.vocab = corpus.vocab();
  mcfg.max_seq = 32;
  mcfg.hidden = 64;
  mcfg.heads = 4;
  mcfg.layers = 3;
  mcfg.dropout = 0.05f;
  nn::GptModel model(mcfg);

  core::EngineConfig ecfg;
  ecfg.window = 2;
  ecfg.adam.lr = 3e-3f;
  ecfg.lr_schedule = optim::warmup_cosine(3e-3f, 20, 400, 3e-4f);
  ecfg.clip_grad_norm = 1.0f;
  core::StrongholdEngine engine(model, ecfg);
  engine.init_params(123);

  for (int step = 0; step < 300; ++step) {
    const float loss = engine.train_step(corpus.next_batch(8, mcfg.max_seq));
    if (step % 50 == 0) std::printf("step %3d  loss %.4f\n", step, loss);
  }

  // Generate with the KV-cached decoder from a text prompt.
  const std::string prompt_text = "the quick brown ";
  const auto prompt = corpus.tokenizer().encode(prompt_text);
  const auto tokens = engine.generate_incremental(
      prompt, static_cast<std::size_t>(mcfg.max_seq) - prompt.size());
  std::printf("\nprompt    : %s\ngenerated : %s\n", prompt_text.c_str(),
              corpus.tokenizer().decode(tokens).c_str());
  const auto s = engine.stats();
  std::printf("\n(window %zu, %zu h2d transfers, %zu optimizer updates)\n",
              s.window, s.h2d_transfers, s.optimizer_updates);
  return 0;
}

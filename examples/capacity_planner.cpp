// Capacity planner: the simulator as a library. Given model geometries, it
// answers the two questions the paper's evaluation asks — does the model fit
// under each training scheme, and what throughput to expect — on the
// paper's V100 server and A10 cluster.
#include <cstdio>

#include "baselines/cluster.hpp"
#include "baselines/stronghold_strategy.hpp"
#include "baselines/strategy.hpp"
#include "sim/cost_model.hpp"
#include "sim/hardware.hpp"

int main() {
  using namespace sh;
  const auto v100 = sim::v100_server();
  const auto lineup = baselines::single_gpu_lineup();

  struct Probe {
    std::int64_t layers;
    std::int64_t hidden;
    double batch;
  };
  const Probe probes[] = {{20, 2560, 4}, {75, 2560, 4}, {260, 2560, 4},
                          {500, 2560, 4}, {31, 5120, 4}};

  std::printf("capacity & throughput on the 32GB V100 server\n");
  std::printf("%9s |", "size (B)");
  for (const auto& s : lineup) std::printf(" %-16s", s->name().c_str());
  std::printf("\n");
  for (const auto& p : probes) {
    baselines::Workload w;
    w.model = sim::table1_model(p.layers, p.hidden);
    w.batch = p.batch;
    std::printf("%9.1f |", sim::params_billions(w.model));
    for (const auto& s : lineup) {
      const auto cap = s->capacity(w, v100);
      if (!cap.fits) {
        std::printf(" %-16s", ("OOM(" + cap.limiter + ")").c_str());
      } else {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.3f smp/s",
                      s->iteration(w, v100, nullptr).throughput);
        std::printf(" %-16s", buf);
      }
    }
    std::printf("\n");
  }

  // Window recommendation for a chosen deployment.
  baselines::Workload w;
  w.model = sim::table1_model(260, 2560);
  w.batch = 8;
  baselines::StrongholdStrategy sh_strategy;
  const auto d = sh_strategy.window_decision(w, v100);
  const auto cap = sh_strategy.capacity(w, v100);
  const double gib = 1024.0 * 1024 * 1024;
  std::printf(
      "\nSTRONGHOLD plan for the 20.5B model at batch 8:\n"
      "  window m = %zu (feasible=%d, memory allows up to %zu)\n"
      "  GPU footprint %.1f GiB of 32, CPU pinned %.1f GiB\n"
      "  concurrent streams: %d\n",
      d.m, static_cast<int>(d.feasible), d.max_m_by_memory,
      cap.gpu_bytes / gib, cap.cpu_bytes / gib,
      sh_strategy.stream_count(w, v100));
  // Per-region breakdown (mem::DeviceArena convention): window decisions
  // should be judged against the full device footprint, not just parameters.
  std::printf(
      "  GPU regions: window %.2f GiB, kv %.2f GiB, activations %.2f GiB, "
      "workspace %.2f GiB\n",
      cap.gpu_regions.window / gib, cap.gpu_regions.kv / gib,
      cap.gpu_regions.activations / gib, cap.gpu_regions.workspace / gib);
  return 0;
}

// Knowledge distillation (Section VI-D3): a large *trained* teacher runs
// FP-only inference through the STRONGHOLD working window — so it can be far
// bigger than the "GPU" — and its predictions supervise a small student.
// The activation observer exposes per-layer teacher activations, which is
// exactly what inference engines like TensorRT cannot provide.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/engine.hpp"
#include "data/synthetic.hpp"

namespace {

std::vector<std::int32_t> argmax_tokens(const sh::tensor::Tensor& logits) {
  const std::int64_t rows = logits.shape().dim(0);
  const std::int64_t classes = logits.shape().dim(1);
  std::vector<std::int32_t> out(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* x = logits.data() + r * classes;
    out[static_cast<std::size_t>(r)] = static_cast<std::int32_t>(
        std::max_element(x, x + classes) - x);
  }
  return out;
}

}  // namespace

int main() {
  using namespace sh;
  const std::int64_t vocab = 64, seq = 16;

  // Teacher: 12 blocks, hidden 48 — too big for the tiny "GPU" below unless
  // layers stream through the working window.
  nn::GptConfig teacher_cfg;
  teacher_cfg.vocab = vocab;
  teacher_cfg.max_seq = seq;
  teacher_cfg.hidden = 48;
  teacher_cfg.heads = 4;
  teacher_cfg.layers = 12;
  nn::GptModel teacher(teacher_cfg);

  core::EngineConfig teacher_engine_cfg;
  teacher_engine_cfg.window = 2;
  teacher_engine_cfg.gpu_memory_bytes = 3u * 1024u * 1024u;
  teacher_engine_cfg.adam.lr = 3e-3f;
  core::StrongholdEngine teacher_engine(teacher, teacher_engine_cfg);
  teacher_engine.init_params(5);

  // Pre-train the teacher briefly so it has knowledge to distil.
  data::SyntheticCorpus corpus(vocab, 21);
  for (int i = 0; i < 40; ++i) {
    teacher_engine.train_step(corpus.next_batch(4, seq));
  }
  std::printf("teacher ready: %lld params, window %zu\n",
              static_cast<long long>(teacher.total_params()),
              teacher_engine.window());

  // Student: 2 blocks, hidden 32 — fits anywhere, trains on teacher labels.
  nn::GptConfig student_cfg;
  student_cfg.vocab = vocab;
  student_cfg.max_seq = seq;
  student_cfg.hidden = 32;
  student_cfg.heads = 4;
  student_cfg.layers = 2;
  nn::GptModel student(student_cfg);
  core::EngineConfig student_engine_cfg;
  student_engine_cfg.window = 2;
  student_engine_cfg.adam.lr = 3e-3f;
  core::StrongholdEngine student_engine(student, student_engine_cfg);
  student_engine.init_params(6);

  const nn::BatchShape shape{4, seq};
  std::size_t observed_layers = 0;
  for (int step = 0; step < 30; ++step) {
    auto batch = corpus.next_batch(4, seq);
    // Teacher FP-only pass; the observer sees every block's activations
    // (usable for feature-level distillation losses).
    observed_layers = 0;
    auto teacher_logits = teacher_engine.inference(
        batch.ids, shape,
        [&](std::size_t, const tensor::Tensor&) { ++observed_layers; });
    // Hard-label distillation: the student learns the teacher's predictions.
    data::Batch distil;
    distil.ids = batch.ids;
    distil.targets = argmax_tokens(teacher_logits);
    const float loss = student_engine.train_step(distil);
    if (step % 10 == 0) {
      std::printf("step %2d  student loss vs teacher labels: %.4f "
                  "(observed %zu teacher layers)\n",
                  step, loss, observed_layers);
    }
  }
  std::printf("\ndistillation complete; teacher inference streamed %zu-layer "
              "model through a %zu-layer window.\n",
              static_cast<std::size_t>(teacher_cfg.layers),
              teacher_engine.window());
  return 0;
}

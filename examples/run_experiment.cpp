// Command-line experiment driver mirroring the paper artifact's
// examples/run.sh interface:
//
//   run_experiment [-m METHOD] [-l NUM_LAYERS] [-h HIDDEN_SIZE]
//                  [-b BATCH_SIZE] [-w WINDOW_SIZE] [-s SEQ_LEN]
//
// METHOD is one of: megatron-lm, l2l, zero-offload, zero-infinity,
// stronghold, all (default). Prints capacity verdicts and simulated
// throughput on the paper's V100 server for the requested configuration.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "baselines/stronghold_strategy.hpp"
#include "baselines/strategy.hpp"
#include "sim/cost_model.hpp"
#include "sim/hardware.hpp"

namespace {

struct Args {
  std::string method = "all";
  std::int64_t layers = 16;
  std::int64_t hidden = 2048;
  std::int64_t seq = 1024;
  double batch = 4.0;
  std::size_t window = 0;  // 0 = analytical model
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const char* val = argv[i + 1];
    if (flag == "-m") {
      a.method = val;
    } else if (flag == "-l") {
      a.layers = std::atoll(val);
    } else if (flag == "-h") {
      a.hidden = std::atoll(val);
    } else if (flag == "-b") {
      a.batch = std::atof(val);
    } else if (flag == "-w") {
      a.window = static_cast<std::size_t>(std::atoll(val));
    } else if (flag == "-s") {
      a.seq = std::atoll(val);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      std::exit(2);
    }
  }
  return a;
}

std::string method_key(const std::string& name) {
  std::string k;
  for (char c : name) k.push_back(c == '_' ? '-' : static_cast<char>(std::tolower(c)));
  return k;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sh;
  const Args args = parse(argc, argv);
  const auto machine = sim::v100_server();

  baselines::Workload w;
  w.model = sim::table1_model(args.layers, args.hidden);
  w.model.seq = args.seq;
  w.batch = args.batch;
  std::printf("model: %lld layers, hidden %lld, seq %lld -> %.2fB params; "
              "batch %.0f\n\n",
              static_cast<long long>(args.layers),
              static_cast<long long>(args.hidden),
              static_cast<long long>(args.seq), sim::params_billions(w.model),
              w.batch);
  std::printf("%-14s %8s %12s %10s %12s %8s\n", "method", "fits", "GPU (GiB)",
              "samples/s", "TFLOPS", "window");

  auto report = [&](const baselines::Strategy& s) {
    const auto cap = s.capacity(w, machine);
    if (!cap.fits) {
      std::printf("%-14s %8s %12.1f %10s %12s %8s\n", s.name().c_str(),
                  ("OOM:" + cap.limiter).c_str(),
                  cap.gpu_bytes / (1024.0 * 1024 * 1024), "-", "-", "-");
      return;
    }
    const auto rep = s.iteration(w, machine, nullptr);
    char win[16] = "-";
    if (rep.window != 0) std::snprintf(win, sizeof win, "%zu", rep.window);
    std::printf("%-14s %8s %12.1f %10.4f %12.2f %8s\n", s.name().c_str(),
                "yes", cap.gpu_bytes / (1024.0 * 1024 * 1024), rep.throughput,
                rep.achieved_flops / 1e12, win);
  };

  const auto lineup = baselines::single_gpu_lineup();
  bool matched = false;
  for (const auto& s : lineup) {
    const std::string key = method_key(s->name());
    if (args.method != "all" && key.find(args.method) == std::string::npos) {
      continue;
    }
    matched = true;
    if (s->name() == "STRONGHOLD" && args.window != 0) {
      baselines::StrongholdStrategy fixed({.fixed_window = args.window});
      report(fixed);
    } else {
      report(*s);
    }
  }
  if (!matched) {
    std::fprintf(stderr,
                 "no method matched '%s' (use megatron-lm, l2l, "
                 "zero-offload, zero-infinity, stronghold, all)\n",
                 args.method.c_str());
    return 2;
  }
  return 0;
}

// Fine-tuning with the secondary-storage tier (Section III-G).
//
// Scenario: the model's training state exceeds the CPU RAM budget, so cold
// layers live in a swap file and are faulted in ahead of the GPU prefetch.
// The example verifies that tiered training produces exactly the same
// parameters as unconstrained training.
#include <cstdio>
#include <vector>

#include "core/engine.hpp"
#include "data/synthetic.hpp"
#include "tensor/ops.hpp"

namespace {

std::vector<float> train(sh::core::EngineConfig cfg, int steps) {
  sh::nn::GptConfig model_cfg;
  model_cfg.vocab = 64;
  model_cfg.max_seq = 16;
  model_cfg.hidden = 32;
  model_cfg.heads = 4;
  model_cfg.layers = 8;
  model_cfg.checkpoint_activations = true;  // as in all paper experiments
  sh::nn::GptModel model(model_cfg);
  sh::core::StrongholdEngine engine(model, std::move(cfg));
  engine.init_params(11);
  sh::data::SyntheticCorpus corpus(model_cfg.vocab, 3);
  float loss = 0.0f;
  for (int i = 0; i < steps; ++i) {
    loss = engine.train_step(corpus.next_batch(2, model_cfg.max_seq));
  }
  const auto s = engine.stats();
  std::printf("  swap-backed layers: %zu, final loss %.4f, window %zu\n",
              s.swap_backed_layers, loss, s.window);
  std::vector<float> params;
  engine.snapshot_params(params);
  return params;
}

}  // namespace

int main() {
  std::printf("fine-tuning with unlimited CPU RAM:\n");
  sh::core::EngineConfig in_memory;
  in_memory.window = 2;
  const auto reference = train(in_memory, 20);

  std::printf("fine-tuning with a 96 KiB CPU budget + swap file:\n");
  sh::core::EngineConfig tiered;
  tiered.window = 2;
  tiered.cpu_capacity_bytes = 96 * 1024;  // forces most layers onto the tier
  tiered.swap_path = "/tmp/stronghold_finetune_swap.bin";
  const auto tiered_params = train(tiered, 20);

  const float diff = sh::tensor::max_abs_diff(
      reference.data(), tiered_params.data(),
      static_cast<std::int64_t>(reference.size()));
  std::printf("\nmax |param difference| between tiers: %g %s\n", diff,
              diff == 0.0f ? "(bit-identical)" : "");
  return diff == 0.0f ? 0 : 1;
}

// Quickstart: train a small GPT through the STRONGHOLD engine.
//
// The engine keeps only a 2-layer working window of the model resident in a
// capacity-limited "GPU" pool, prefetches layers asynchronously, offloads
// gradients, and updates parameters with concurrent CPU optimizer actors —
// with no change to how you define the model or feed batches.
#include <cstdio>

#include "core/engine.hpp"
#include "data/synthetic.hpp"

int main() {
  using namespace sh;

  // 1. Describe the model (a GPT with 6 transformer blocks).
  nn::GptConfig model_cfg;
  model_cfg.vocab = 64;
  model_cfg.max_seq = 16;
  model_cfg.hidden = 32;
  model_cfg.heads = 4;
  model_cfg.layers = 6;
  nn::GptModel model(model_cfg);
  std::printf("model: %lld parameters across %zu layer units\n",
              static_cast<long long>(model.total_params()),
              model.num_layers());

  // 2. Configure the engine: auto window, 2 optimizer actors, a GPU pool
  //    that could not hold the full model states.
  core::EngineConfig engine_cfg;
  engine_cfg.window = 0;  // pick automatically after warm-up (Section III-D)
  engine_cfg.warmup_iterations = 2;
  engine_cfg.optimizer_workers = 2;
  engine_cfg.gpu_memory_bytes = 2u * 1024u * 1024u;  // 2 MiB "GPU"
  engine_cfg.adam.lr = 3e-3f;
  core::StrongholdEngine engine(model, engine_cfg);
  engine.init_params(/*seed=*/42);

  // 3. Train on a synthetic Markov corpus.
  data::SyntheticCorpus corpus(model_cfg.vocab, /*seed=*/7);
  for (int step = 0; step < 60; ++step) {
    const auto batch = corpus.next_batch(/*batch=*/4, model_cfg.max_seq);
    const float loss = engine.train_step(batch);
    if (step % 10 == 0) std::printf("step %3d  loss %.4f\n", step, loss);
  }

  // 4. Inspect what the runtime did.
  const auto s = engine.stats();
  std::printf(
      "\nauto-selected window: %zu layers (feasible=%d)\n"
      "h2d transfers: %zu (%.1f MiB), d2h transfers: %zu (%.1f MiB)\n"
      "prefetch stalls: %zu, optimizer updates: %zu\n"
      "GPU high-water: %.2f MiB of %.2f MiB\n",
      s.window, static_cast<int>(s.decision.feasible), s.h2d_transfers,
      s.h2d_bytes / 1048576.0, s.d2h_transfers, s.d2h_bytes / 1048576.0,
      s.prefetch_stalls, s.optimizer_updates,
      s.gpu_high_water_bytes / 1048576.0,
      engine_cfg.gpu_memory_bytes / 1048576.0);
  return 0;
}

// Intra-GPU data parallelism with multiple executors (Section IV-A).
//
// The batch is split into micro-batches processed by concurrent executors
// that share ONE copy of the model parameters in the working window;
// gradients are all-reduced before the update, so the result matches
// single-executor training.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/engine.hpp"
#include "data/synthetic.hpp"
#include "tensor/ops.hpp"

namespace {

struct RunResult {
  std::vector<float> losses;
  std::vector<float> params;
  double seconds;
};

RunResult run(std::size_t executors, int steps) {
  sh::nn::GptConfig cfg;
  cfg.vocab = 64;
  cfg.max_seq = 16;
  cfg.hidden = 32;
  cfg.heads = 4;
  cfg.layers = 4;
  sh::nn::GptModel model(cfg);
  sh::core::EngineConfig ecfg;
  ecfg.window = 2;
  ecfg.num_executors = executors;
  sh::core::StrongholdEngine engine(model, ecfg);
  engine.init_params(77);
  sh::data::SyntheticCorpus corpus(cfg.vocab, 9);
  RunResult r;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < steps; ++i) {
    r.losses.push_back(engine.train_step(corpus.next_batch(8, cfg.max_seq)));
  }
  r.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  engine.snapshot_params(r.params);
  return r;
}

}  // namespace

int main() {
  const int steps = 10;
  std::printf("training the same model/batches with 1, 2 and 4 executors...\n");
  const auto one = run(1, steps);
  const auto two = run(2, steps);
  const auto four = run(4, steps);

  std::printf("\n%6s %14s %12s\n", "execs", "final loss", "wall (s)");
  std::printf("%6d %14.5f %12.3f\n", 1, one.losses.back(), one.seconds);
  std::printf("%6d %14.5f %12.3f\n", 2, two.losses.back(), two.seconds);
  std::printf("%6d %14.5f %12.3f\n", 4, four.losses.back(), four.seconds);

  const float d2 = sh::tensor::max_abs_diff(
      one.params.data(), two.params.data(),
      static_cast<std::int64_t>(one.params.size()));
  const float d4 = sh::tensor::max_abs_diff(
      one.params.data(), four.params.data(),
      static_cast<std::int64_t>(one.params.size()));
  std::printf(
      "\nmax |param diff| vs single executor: 2 execs %.2e, 4 execs %.2e\n"
      "(micro-batch all-reduce reorders float sums; differences stay at\n"
      " rounding level — the model is consistent, as Section IV-A claims)\n",
      d2, d4);
  return (d2 < 1e-4f && d4 < 1e-4f) ? 0 : 1;
}

// Property tests for the analytical window model (Section III-D).
#include <gtest/gtest.h>

#include <vector>

#include "core/window_model.hpp"

namespace sh::core {
namespace {

/// Homogeneous model: n identical layers.
WindowModelInput homogeneous(std::size_t n, double t_fp, double t_bp,
                             double t_c2g, double t_g2c, double s,
                             double s_avail) {
  WindowModelInput in;
  in.layers.assign(n, LayerProfile{.t_fp = t_fp,
                                   .t_bp = t_bp,
                                   .t_c2g = t_c2g,
                                   .t_g2c = t_g2c,
                                   .s_fp = s,
                                   .s_bp = s,
                                   .t_opt_gpu = 0.0,
                                   .t_opt_cpu = 0.0});
  in.s_avail = s_avail;
  return in;
}

TEST(WindowModel, FastComputeNeedsWindowOfOne) {
  // Compute far slower than transfer: one layer of lookahead hides it.
  auto in = homogeneous(20, /*t_fp=*/10.0, /*t_bp=*/20.0, /*t_c2g=*/1.0,
                        /*t_g2c=*/1.0, /*s=*/1.0, /*s_avail=*/100.0);
  const auto d = solve_window(in);
  EXPECT_TRUE(d.feasible);
  EXPECT_EQ(d.m_fp, 1u);
  EXPECT_EQ(d.m_bp, 1u);
  EXPECT_EQ(d.m, 1u);
  EXPECT_TRUE(d.soft_fp);
  EXPECT_TRUE(d.soft_bp);
}

TEST(WindowModel, SlowTransferGrowsWindow) {
  // t_c2g = 3.5 * t_fp: need ceil(3.5) = 4 layers of compute to cover it.
  auto in = homogeneous(20, 1.0, 2.0, 3.5, 0.5, 1.0, 100.0);
  const auto d = solve_window(in);
  EXPECT_TRUE(d.feasible);
  EXPECT_EQ(d.m_fp, 4u);
}

TEST(WindowModel, BpConstraintUsesMminusOneLayers) {
  // (2b) sums m-1 layers of BP compute against the outgoing g2c transfer.
  // t_g2c = 2.5 * t_bp -> m - 1 >= 2.5 -> m = 4.
  auto in = homogeneous(20, 10.0, 1.0, 0.1, 2.5, 1.0, 100.0);
  const auto d = solve_window(in);
  EXPECT_TRUE(d.feasible);
  EXPECT_EQ(d.m_bp, 4u);
  EXPECT_EQ(d.m, 4u);
}

TEST(WindowModel, ChoosesMaxOfFpAndBpRequirements) {
  auto in = homogeneous(20, 1.0, 1.0, 2.5, 4.5, 1.0, 100.0);
  const auto d = solve_window(in);
  EXPECT_TRUE(d.feasible);
  EXPECT_GE(d.m, d.m_fp);
  EXPECT_GE(d.m, d.m_bp);
}

TEST(WindowModel, MemoryBoundsWindow) {
  // Transfers need m=5 but memory only fits 3 layers -> infeasible fallback.
  auto in = homogeneous(20, 1.0, 1.0, 4.5, 0.1, 1.0, /*s_avail=*/3.4);
  const auto d = solve_window(in);
  EXPECT_FALSE(d.feasible);
  EXPECT_EQ(d.m, d.max_m_by_memory);
  EXPECT_LE(d.m, 3u);
  EXPECT_GE(d.m, 1u);
}

TEST(WindowModel, NothingFits) {
  auto in = homogeneous(4, 1.0, 1.0, 1.0, 1.0, 10.0, /*s_avail=*/5.0);
  // One layer (10) plus the incoming stage (10) exceeds 5? One layer alone
  // already needs 10 + 10 staged = 20 > 5 -> no window at all.
  const auto d = solve_window(in);
  EXPECT_FALSE(d.feasible);
  EXPECT_EQ(d.max_m_by_memory, 0u);
  EXPECT_EQ(d.m, 0u);
}

TEST(WindowModel, EmptyInput) {
  WindowModelInput in;
  const auto d = solve_window(in);
  EXPECT_FALSE(d.feasible);
  EXPECT_EQ(d.m, 0u);
}

TEST(WindowModel, SoftConstraintExpandsWindowWhenMemoryAllows) {
  // Hard constraints hold at m=1 (t_fp >= t_c2g) but the soft constraint
  // (compute >= c2g + g2c) fails until m is larger... with homogeneous
  // layers soft never improves with m (both sides scale), so pick a profile
  // where transfers are front-loaded.
  WindowModelInput in;
  in.layers.assign(6, LayerProfile{.t_fp = 1.0, .t_bp = 1.0, .t_c2g = 0.9,
                                   .t_g2c = 0.9, .s_fp = 1.0, .s_bp = 1.0,
                                   .t_opt_gpu = 0.0, .t_opt_cpu = 0.0});
  in.layers[0].t_c2g = 0.2;  // cheap first fetch keeps hard constraint easy
  in.s_avail = 100.0;
  const auto d = solve_window(in);
  EXPECT_TRUE(d.feasible);
  // Soft constraint: m * 1.0 >= m * 1.8 is never true for homogeneous rest,
  // so the solver walks to the memory limit and reports soft as unmet.
  EXPECT_FALSE(d.soft_fp && d.soft_bp);
}

TEST(WindowModel, HardConstraintCheckerAgreesWithSolver) {
  auto in = homogeneous(16, 1.0, 2.0, 2.5, 1.5, 1.0, 50.0);
  const auto d = solve_window(in);
  ASSERT_TRUE(d.feasible);
  EXPECT_TRUE(window_satisfies_hard_constraints(in, d.m));
  if (d.m > 1) {
    // Minimality on the binding dimension.
    EXPECT_FALSE(window_satisfies_hard_constraints(in, std::min(d.m_fp, d.m_bp) - 1));
  }
}

TEST(WindowModel, HeterogeneousLayersUseWorstWindow) {
  // One giant layer in the middle forces a larger window for its fetch.
  auto in = homogeneous(10, 1.0, 1.0, 0.5, 0.1, 1.0, 100.0);
  in.layers[5].t_c2g = 3.5;  // fetching layer 5 needs 4 layers of compute
  const auto d = solve_window(in);
  EXPECT_TRUE(d.feasible);
  EXPECT_GE(d.m_fp, 4u);
}

TEST(WindowModel, UpdateHiddenWhenCpuFast) {
  auto in = homogeneous(10, 1.0, 2.0, 0.5, 0.5, 1.0, 100.0);
  for (auto& l : in.layers) {
    l.t_opt_cpu = 0.5;  // far below the FP+BP budget
    l.t_opt_gpu = 0.1;
  }
  const auto d = solve_window(in);
  EXPECT_TRUE(d.update_hidden);
}

TEST(WindowModel, UpdateNotHiddenWhenCpuSlow) {
  auto in = homogeneous(10, 0.01, 0.01, 0.005, 0.005, 1.0, 100.0);
  for (auto& l : in.layers) l.t_opt_cpu = 100.0;
  const auto d = solve_window(in);
  EXPECT_FALSE(d.update_hidden);
}

TEST(WindowModel, AsyncAmortizedPerEquation5) {
  // 5 n t_async <= (n - m) t_opt_gpu.
  auto in = homogeneous(100, 1.0, 1.0, 0.5, 0.5, 1.0, 1000.0);
  for (auto& l : in.layers) l.t_opt_gpu = 0.2;
  in.t_async = 0.001;  // 5*100*0.001 = 0.5 <= ~99*0.2
  auto d = solve_window(in);
  EXPECT_TRUE(d.async_amortized);
  in.t_async = 1.0;  // 500 > 19.8
  d = solve_window(in);
  EXPECT_FALSE(d.async_amortized);
}

class WindowMonotonicity
    : public ::testing::TestWithParam<double> {};  // transfer time

TEST_P(WindowMonotonicity, SlowerLinksNeverShrinkTheWindow) {
  const double t_c2g = GetParam();
  auto base = homogeneous(32, 1.0, 2.0, t_c2g, t_c2g / 2.0, 1.0, 1000.0);
  const auto d1 = solve_window(base);
  auto slower = base;
  for (auto& l : slower.layers) {
    l.t_c2g *= 1.5;
    l.t_g2c *= 1.5;
  }
  const auto d2 = solve_window(slower);
  ASSERT_TRUE(d1.feasible);
  ASSERT_TRUE(d2.feasible);
  EXPECT_GE(d2.m_fp, d1.m_fp);
  EXPECT_GE(d2.m_bp, d1.m_bp);
}

INSTANTIATE_TEST_SUITE_P(TransferSweep, WindowMonotonicity,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 4.0, 8.0));

class WindowComputeMonotonicity
    : public ::testing::TestWithParam<double> {};  // compute time

TEST_P(WindowComputeMonotonicity, FasterComputeNeverShrinksRequirement) {
  const double t_fp = GetParam();
  auto base = homogeneous(32, t_fp, 2.0 * t_fp, 2.0, 1.0, 1.0, 1000.0);
  const auto slow = solve_window(base);
  auto faster = base;
  for (auto& l : faster.layers) {
    l.t_fp *= 0.5;
    l.t_bp *= 0.5;
  }
  const auto fast = solve_window(faster);
  ASSERT_TRUE(slow.feasible);
  ASSERT_TRUE(fast.feasible);
  EXPECT_GE(fast.m_fp, slow.m_fp);
}

INSTANTIATE_TEST_SUITE_P(ComputeSweep, WindowComputeMonotonicity,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0));

}  // namespace
}  // namespace sh::core

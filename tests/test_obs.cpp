// sh::obs — span recorder, metrics registry and exporters, including the
// structural contract of the Chrome trace-event JSON and the end-to-end path
// through an instrumented engine run.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "data/synthetic.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "testing/json.hpp"

namespace sh::obs {
namespace {

/// The global recorder and registry are process-wide; every test restores
/// them so ordering between tests never matters.
class GlobalObsGuard {
 public:
  GlobalObsGuard() {
    Recorder::global().set_enabled(false);
    Recorder::global().clear();
  }
  ~GlobalObsGuard() {
    Recorder::global().set_enabled(false);
    Recorder::global().clear();
  }
};

TEST(Recorder, DisabledByDefaultAndRecordsNothing) {
  GlobalObsGuard guard;
  EXPECT_FALSE(Recorder::global().enabled());
  span("gpu", "f", 0.0, 1.0);
  instant("mem", "pressure");
  { ObsScope scope("engine", "train_step"); }
  EXPECT_TRUE(Recorder::global().snapshot().empty());
}

TEST(Recorder, RecordsSpansSortedByStart) {
  GlobalObsGuard guard;
  Recorder& r = Recorder::global();
  r.set_enabled(true);
  const double e = r.epoch();
  r.record("h2d", "p", e + 2.0, e + 3.0);
  r.record("gpu", "f", e + 0.5, e + 1.5);
  const auto spans = r.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].track, "gpu");
  EXPECT_NEAR(spans[0].start_s, 0.5, 1e-12);
  EXPECT_NEAR(spans[0].duration(), 1.0, 1e-12);
  EXPECT_EQ(spans[1].track, "h2d");
  EXPECT_FALSE(spans[0].instant);
}

TEST(Recorder, ObsScopeNestsByContainment) {
  GlobalObsGuard guard;
  Recorder::global().set_enabled(true);
  {
    ObsScope outer("engine", "outer");
    ObsScope inner("engine", "inner");
  }
  const auto spans = Recorder::global().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Inner scope is destroyed first, so it ends no later than the outer one
  // and starts no earlier: exactly the containment Chrome "X" nesting needs.
  const Span& inner = spans[0].name == "inner" ? spans[0] : spans[1];
  const Span& outer = spans[0].name == "outer" ? spans[0] : spans[1];
  EXPECT_GE(inner.start_s, outer.start_s);
  EXPECT_LE(inner.end_s, outer.end_s);
  EXPECT_EQ(inner.tid, outer.tid);
}

TEST(Recorder, InstantEventsHaveZeroDuration) {
  GlobalObsGuard guard;
  Recorder::global().set_enabled(true);
  instant("mem", "pressure:kv");
  const auto spans = Recorder::global().snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_TRUE(spans[0].instant);
  EXPECT_DOUBLE_EQ(spans[0].duration(), 0.0);
}

TEST(Recorder, ConcurrentThreadsRecordWithoutLoss) {
  GlobalObsGuard guard;
  Recorder& r = Recorder::global();
  r.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&r] {
      for (int i = 0; i < kPerThread; ++i) {
        const double now = wall_seconds();
        r.record("worker", "op", now, now + 1e-9);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto spans = r.snapshot();
  EXPECT_EQ(spans.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  std::set<std::uint32_t> tids;
  for (const auto& s : spans) tids.insert(s.tid);
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

TEST(Recorder, ClearDropsSpansAndKeepsRecording) {
  GlobalObsGuard guard;
  Recorder& r = Recorder::global();
  r.set_enabled(true);
  span("gpu", "f", r.epoch(), r.epoch() + 1.0);
  r.clear();
  EXPECT_TRUE(r.snapshot().empty());
  span("gpu", "b", r.epoch(), r.epoch() + 1.0);
  EXPECT_EQ(r.snapshot().size(), 1u);
}

TEST(Metrics, CounterAndGauge) {
  Counter c;
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  Gauge g;
  g.set(7);
  g.add(-3);
  EXPECT_EQ(g.value(), 4);
}

TEST(Metrics, HistogramPercentilesInterpolate) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);  // empty -> 0
  for (double v : {4.0, 1.0, 3.0, 2.0}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 2.5);   // midpoint of 2 and 3
  EXPECT_DOUBLE_EQ(h.percentile(2.0), 4.0);   // clamped
}

TEST(Metrics, RegistryProvidersAddAndRemove) {
  Registry& reg = Registry::global();
  const std::size_t base = reg.provider_count();
  const std::uint64_t id = reg.add_provider([](MetricsSnapshot& out) {
    out.add("test.metric", 12.0, "widgets");
  });
  EXPECT_EQ(reg.provider_count(), base + 1);
  const MetricsSnapshot snap = reg.snapshot();
  const Metric* m = snap.find("test.metric");
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->value, 12.0);
  EXPECT_EQ(m->unit, "widgets");
  reg.remove_provider(id);
  EXPECT_EQ(reg.provider_count(), base);
  EXPECT_EQ(reg.snapshot().find("test.metric"), nullptr);
}

TEST(Export, JsonEscapeHandlesSpecialsAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Export, MetricsJsonParsesAndRoundTrips) {
  MetricsSnapshot snap;
  snap.add("engine.h2d_bytes", 1048576.0, "bytes");
  snap.add("serve.latency_p99_s", 0.125, "s");
  std::ostringstream os;
  write_metrics_json(os, snap);
  const testing::Json doc = testing::parse_json(os.str());
  const auto& rows = doc.at("metrics").array;
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].at("name").str, "engine.h2d_bytes");
  EXPECT_DOUBLE_EQ(rows[0].at("value").number, 1048576.0);
  EXPECT_EQ(rows[0].at("unit").str, "bytes");
  EXPECT_DOUBLE_EQ(rows[1].at("value").number, 0.125);
}

std::vector<Span> sample_wall_spans() {
  // Nested engine scope containing a gpu span; one instant; one span from a
  // "different thread" on the same track.
  std::vector<Span> wall;
  wall.push_back({"engine", "train_step", 0.0, 1.0, 1, false});
  wall.push_back({"gpu", "f", 0.1, 0.4, 1, false});
  wall.push_back({"gpu", "b", 0.5, 0.9, 1, false});
  wall.push_back({"mem", "pressure:kv", 0.45, 0.45, 1, true});
  wall.push_back({"cpu-opt", "update", 0.6, 0.8, 2, false});
  return wall;
}

TEST(Export, ChromeTraceStructureIsValid) {
  sim::Trace virt;
  virt.record("gpu", "f", {0.0, 8.0});
  virt.record("h2d", "p", {2.0, 6.0});
  MetricsSnapshot metrics;
  metrics.add("engine.iterations", 3.0);

  std::ostringstream os;
  write_chrome_trace(os, sample_wall_spans(), &virt, &metrics);
  const testing::Json doc = testing::parse_json(os.str());

  const auto& events = doc.at("traceEvents").array;
  ASSERT_FALSE(events.empty());

  // Both process groups are announced by metadata events.
  std::set<std::string> process_names;
  std::set<std::string> thread_names;
  for (const auto& e : events) {
    if (e.at("ph").str == "M" && e.at("name").str == "process_name") {
      process_names.insert(e.at("args").at("name").str);
    }
    if (e.at("ph").str == "M" && e.at("name").str == "thread_name") {
      thread_names.insert(e.at("args").at("name").str);
    }
  }
  EXPECT_TRUE(process_names.count("wall-clock"));
  EXPECT_TRUE(process_names.count("virtual-time"));
  EXPECT_TRUE(thread_names.count("engine"));
  EXPECT_TRUE(thread_names.count("gpu"));
  EXPECT_TRUE(thread_names.count("h2d"));

  // Complete events carry microsecond ts/dur; the gpu spans nest inside the
  // engine span (containment in time, Perfetto's nesting rule).
  double engine_ts = -1.0, engine_end = -1.0;
  std::vector<std::pair<double, double>> gpu_spans;
  bool saw_instant = false;
  for (const auto& e : events) {
    const std::string& ph = e.at("ph").str;
    if (ph == "X") {
      EXPECT_TRUE(e.at("ts").is_number());
      EXPECT_TRUE(e.at("dur").is_number());
      if (e.at("name").str == "train_step") {
        engine_ts = e.at("ts").number;
        engine_end = engine_ts + e.at("dur").number;
      }
      if (e.at("cat").str == "wall" &&
          (e.at("name").str == "f" || e.at("name").str == "b")) {
        gpu_spans.emplace_back(e.at("ts").number,
                               e.at("ts").number + e.at("dur").number);
      }
    }
    if (ph == "i") {
      saw_instant = true;
      EXPECT_EQ(e.at("s").str, "t");
    }
  }
  ASSERT_GE(engine_ts, 0.0);
  ASSERT_EQ(gpu_spans.size(), 2u);
  for (const auto& [ts, end] : gpu_spans) {
    EXPECT_GE(ts, engine_ts);
    EXPECT_LE(end, engine_end);
  }
  EXPECT_TRUE(saw_instant);
  EXPECT_NEAR(engine_ts, 0.0, 1e-9);
  EXPECT_NEAR(engine_end, 1e6, 1e-3);  // 1 s == 1e6 us

  // The embedded metrics array survives (Perfetto ignores unknown keys).
  const auto& rows = doc.at("metrics").array;
  bool found = false;
  for (const auto& r : rows) {
    if (r.at("name").str == "engine.iterations") {
      found = true;
      EXPECT_DOUBLE_EQ(r.at("value").number, 3.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Export, ToSimTraceAppliesFig4MetricsToWallSpans) {
  const sim::Trace real = to_sim_trace(sample_wall_spans());
  // Instants are excluded; spans keep resource/label/interval.
  EXPECT_EQ(real.spans().size(), 4u);
  EXPECT_DOUBLE_EQ(real.end_time(), 1.0);
  EXPECT_NEAR(real.utilization("gpu"), 0.7, 1e-12);  // [0.1,0.4] U [0.5,0.9]
  EXPECT_NEAR(real.overlap_fraction("cpu-opt", "gpu"), 1.0, 1e-12);
}

TEST(Export, DumpChromeTraceWritesParseableFile) {
  GlobalObsGuard guard;
  Recorder::global().set_enabled(true);
  span("gpu", "f", Recorder::global().epoch(),
       Recorder::global().epoch() + 0.25);
  const std::string path = ::testing::TempDir() + "sh_obs_dump.json";
  ASSERT_TRUE(dump_chrome_trace(path));
  std::ifstream is(path);
  std::stringstream buf;
  buf << is.rdbuf();
  const testing::Json doc = testing::parse_json(buf.str());
  EXPECT_TRUE(doc.at("traceEvents").is_array());
  EXPECT_TRUE(doc.at("metrics").is_array());
  std::remove(path.c_str());
}

TEST(EndToEnd, InstrumentedEngineRecordsSpansAndMetrics) {
  GlobalObsGuard guard;
  Recorder::global().set_enabled(true);

  nn::GptConfig mcfg;
  mcfg.vocab = 32;
  mcfg.max_seq = 8;
  mcfg.hidden = 16;
  mcfg.heads = 2;
  mcfg.layers = 4;
  nn::GptModel model(mcfg);

  const std::size_t base_providers = Registry::global().provider_count();
  std::vector<float> params_before, params_after;
  {
    core::EngineConfig ecfg;
    ecfg.window = 1;
    ecfg.record_trace = true;  // sim trace and obs recorder coexist
    core::StrongholdEngine engine(model, ecfg);
    engine.init_params(3);
    EXPECT_EQ(Registry::global().provider_count(), base_providers + 1);

    data::SyntheticCorpus corpus(mcfg.vocab, 5);
    const std::size_t steps = 3;
    for (std::size_t i = 0; i < steps; ++i) {
      engine.train_step(corpus.next_batch(2, mcfg.max_seq));
    }
    engine.snapshot_params(params_before);  // quiesces async work

    const MetricsSnapshot snap = Registry::global().snapshot();
    const Metric* iters = snap.find("engine.iterations");
    ASSERT_NE(iters, nullptr);
    EXPECT_DOUBLE_EQ(iters->value, static_cast<double>(steps));
    ASSERT_NE(snap.find("arena.capacity_bytes"), nullptr);
    ASSERT_NE(snap.find("optimizer.updates"), nullptr);
    EXPECT_GT(snap.find("engine.h2d_bytes")->value, 0.0);
    ASSERT_NE(snap.find("arena.window.peak_bytes"), nullptr);
    EXPECT_GT(snap.find("arena.window.peak_bytes")->value, 0.0);

    // The wall-clock stream carries the same schedule the engine's own sim
    // trace records, on matching tracks.
    const auto wall = Recorder::global().snapshot();
    std::set<std::string> tracks;
    for (const auto& s : wall) tracks.insert(s.track);
    EXPECT_TRUE(tracks.count("engine"));
    EXPECT_TRUE(tracks.count("gpu"));
    EXPECT_TRUE(tracks.count("h2d"));
    EXPECT_TRUE(tracks.count("d2h"));
    EXPECT_TRUE(tracks.count("cpu-opt"));
    EXPECT_FALSE(engine.trace_snapshot().spans().empty());

    // Fig. 4 metrics apply to the real timeline.
    const sim::Trace real = to_sim_trace(wall);
    EXPECT_GT(real.utilization("gpu"), 0.0);
    EXPECT_LE(real.utilization("gpu"), 1.0);
  }
  // Destruction unregisters the provider; its rows are gone.
  EXPECT_EQ(Registry::global().provider_count(), base_providers);
  EXPECT_EQ(Registry::global().snapshot().find("engine.iterations"), nullptr);

  // Bit-identity contract: rerunning the same training WITHOUT obs enabled
  // produces identical parameters.
  Recorder::global().set_enabled(false);
  Recorder::global().clear();
  {
    nn::GptModel model2(mcfg);
    core::EngineConfig ecfg;
    ecfg.window = 1;
    core::StrongholdEngine engine(model2, ecfg);
    engine.init_params(3);
    data::SyntheticCorpus corpus(mcfg.vocab, 5);
    for (std::size_t i = 0; i < 3; ++i) {
      engine.train_step(corpus.next_batch(2, mcfg.max_seq));
    }
    engine.snapshot_params(params_after);
  }
  ASSERT_EQ(params_before.size(), params_after.size());
  EXPECT_EQ(params_before, params_after);
}

}  // namespace
}  // namespace sh::obs

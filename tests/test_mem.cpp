// sh::mem — the accounted device-memory subsystem (DeviceArena, pool
// policies, the tensor charge hook and the pressure layer) plus the two
// graceful-degradation paths it unifies: the engine's deferred prefetch and
// the serve scheduler's preempt-to-CPU.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/monolithic.hpp"
#include "data/synthetic.hpp"
#include "mem/device_arena.hpp"
#include "mem/pool_policies.hpp"
#include "serve/scheduler.hpp"
#include "tensor/tensor.hpp"
#include "testing/util.hpp"

namespace sh::mem {
namespace {

TEST(DeviceArena, OomErrorCarriesPoolAndByteMetadata) {
  DeviceArena arena("gpu0", 1024);
  float* held = arena.allocate_floats(100);  // 400 B of workspace
  try {
    arena.allocate_floats(200);  // 800 B > 624 B free
    FAIL() << "expected OomError";
  } catch (const OomError& e) {
    EXPECT_EQ(e.pool(), "gpu0");
    EXPECT_EQ(e.requested_bytes(), 800u);
    EXPECT_EQ(e.free_bytes(), 624u);
  }
  arena.deallocate(held);

  // Policy pools put their own name in the error: a ByteBudgetPool rejects
  // oversized requests against its budget, not the arena capacity. Requests
  // are byte-typed and rounded up to kRegionAlign.
  DeviceArena roomy("gpu", 1 << 20);
  ByteBudgetPool pool(roomy, 64);
  try {
    pool.acquire(65);
    FAIL() << "expected OomError";
  } catch (const OomError& e) {
    EXPECT_EQ(e.pool(), "window-budget");
    EXPECT_EQ(e.requested_bytes(), 80u);  // 65 rounded up to 16-byte align
    EXPECT_EQ(e.free_bytes(), 64u);
  }
}

TEST(DeviceArena, RegionStatsSumToArenaTotals) {
  DeviceArena arena("gpu", 4096);
  float* w = arena.allocate_floats(64, DeviceArena::kWindow);  // 256 B hard
  ASSERT_TRUE(arena.try_charge(DeviceArena::kKv, 512));        // reservation
  tensor::Tensor act;
  {
    ScopedTensorCharge scope(arena, DeviceArena::kActivations);
    act = tensor::Tensor::zeros({32});  // 128 B soft
  }

  const auto s = arena.stats();
  std::size_t region_sum = 0;
  std::size_t region_soft = 0;
  for (const auto& [name, rs] : s.regions) {
    region_sum += rs.bytes_in_use;
    region_soft += rs.soft_bytes;
  }
  EXPECT_EQ(region_sum, s.bytes_in_use);
  EXPECT_EQ(region_sum, arena.bytes_in_use());
  EXPECT_EQ(region_sum, 256u + 512u + 128u);
  EXPECT_EQ(region_soft, 128u);
  EXPECT_EQ(s.regions.at(DeviceArena::kWindow).bytes_in_use, 256u);
  EXPECT_EQ(s.regions.at(DeviceArena::kKv).bytes_in_use, 512u);
  EXPECT_EQ(s.regions.at(DeviceArena::kActivations).bytes_in_use, 128u);
  // Soft bytes do not consume enforced capacity; hard bytes do.
  EXPECT_EQ(arena.free_bytes(), 4096u - 256u - 512u);
  EXPECT_EQ(arena.peak_bytes(), arena.bytes_in_use());

  arena.uncharge(DeviceArena::kKv, 512);
  arena.deallocate(w);
  act = tensor::Tensor();
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  EXPECT_EQ(arena.peak_bytes(), 896u);  // one peak convention, monotone
}

TEST(DeviceArena, TensorChargeFollowsStorageLifetimeAndNesting) {
  DeviceArena arena("gpu", 1 << 16);
  tensor::Tensor outer, inner;
  {
    ScopedTensorCharge a(arena, DeviceArena::kActivations);
    outer = tensor::Tensor::zeros({16});  // 64 B -> activations
    {
      ScopedTensorCharge k(arena, DeviceArena::kKv);
      inner = tensor::Tensor::zeros({8});  // 32 B -> kv
    }
    // The nested scope restored the previous one.
    tensor::Tensor again = tensor::Tensor::zeros({4});  // 16 B -> activations
    EXPECT_EQ(arena.stats().regions.at(DeviceArena::kActivations).bytes_in_use,
              80u);
  }
  // Outside any scope, tensors are unaccounted.
  tensor::Tensor plain = tensor::Tensor::zeros({1024});
  EXPECT_EQ(arena.bytes_in_use(), 64u + 32u);

  // A copy shares storage: the charge is released only when the last
  // owner dies.
  tensor::Tensor alias = outer;
  outer = tensor::Tensor();
  EXPECT_EQ(arena.stats().regions.at(DeviceArena::kActivations).bytes_in_use,
            64u);
  alias = tensor::Tensor();
  inner = tensor::Tensor();
  EXPECT_EQ(arena.bytes_in_use(), 0u);
}

TEST(DeviceArena, ChargedTensorMaySafelyOutliveArena) {
  tensor::Tensor survivor;
  {
    DeviceArena arena("gpu", 1 << 12);
    ScopedTensorCharge scope(arena, DeviceArena::kActivations);
    survivor = tensor::Tensor::zeros({64});
    EXPECT_EQ(arena.bytes_in_use(), 256u);
  }
  // Arena is gone; dropping the tensor must uncharge via the shared ledger
  // without touching freed memory.
  survivor.span()[0] = 1.0f;
  survivor = tensor::Tensor();
}

TEST(DeviceArena, PressureCallbackFreesCapacityForEnforcedRequests) {
  DeviceArena arena("gpu", 400);
  float* hog = arena.allocate_floats(100);  // arena full
  std::string seen_region;
  const auto id = arena.add_pressure_callback(
      [&](const std::string& region, std::size_t) {
        seen_region = region;
        if (hog == nullptr) return false;
        arena.deallocate(hog);
        hog = nullptr;
        return true;
      });

  // The allocation succeeds because the callback evicted the hog.
  float* p = arena.allocate_floats(50, DeviceArena::kWindow);
  EXPECT_EQ(seen_region, DeviceArena::kWindow);
  auto s = arena.stats();
  EXPECT_GE(s.pressure_events, 1u);
  EXPECT_EQ(s.pressure_releases, 1u);
  EXPECT_EQ(s.pressure_stalls, 0u);

  // try_charge never signals pressure — the caller owns degradation.
  EXPECT_FALSE(arena.try_charge(DeviceArena::kKv, 400));
  EXPECT_EQ(arena.stats().pressure_releases, 1u);

  // With nothing left to evict the callback stalls and OomError surfaces.
  EXPECT_THROW(arena.allocate_floats(200), OomError);
  EXPECT_GE(arena.stats().pressure_stalls, 1u);

  arena.remove_pressure_callback(id);
  arena.deallocate(p);
  EXPECT_THROW(arena.uncharge(DeviceArena::kKv, 1), std::logic_error);
}

nn::GptConfig tiny_config() {
  nn::GptConfig cfg;
  cfg.vocab = 32;
  cfg.max_seq = 16;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.layers = 4;
  return cfg;
}

// Degradation path #1: a byte-budget window too small for the requested
// prefetch depth defers layer movement (the paper's "delay the layer
// movement") instead of deadlocking or aborting — and stays bit-identical
// to monolithic training.
TEST(MemPressure, ReducedBudgetEngineDefersPrefetchWithoutDeadlock) {
  const auto mcfg = tiny_config();
  data::SyntheticCorpus corpus(mcfg.vocab, 17);
  std::vector<data::Batch> batches;
  for (int i = 0; i < 3; ++i) {
    batches.push_back(corpus.next_batch(2, mcfg.max_seq));
  }

  nn::GptModel ref_model(mcfg);
  core::MonolithicTrainer ref(ref_model, optim::AdamConfig{});
  ref.init_params(9);
  std::vector<float> ref_losses;
  for (const auto& b : batches) ref_losses.push_back(ref.train_step(b));

  nn::GptModel probe(mcfg);
  std::size_t block_floats = 0;
  for (std::size_t i = 1; i + 1 < probe.num_layers(); ++i) {
    block_floats = std::max(
        block_floats, 2 * static_cast<std::size_t>(probe.layer(i).param_count()));
  }

  nn::GptModel model(mcfg);
  core::EngineConfig ecfg;
  ecfg.window = 2;
  ecfg.window_mode = core::WindowMode::ByteBudget;
  // Room for 2.5 layer slots where window 2 wants 3 (window + prefetch
  // ahead): the two resident layers always fit, but the hook-time prefetch
  // finds no space and must defer.
  ecfg.window_budget_floats = 2 * block_floats + block_floats / 2;
  core::StrongholdEngine engine(model, ecfg);
  engine.init_params(9);

  std::vector<float> losses;
  for (const auto& b : batches) losses.push_back(engine.train_step(b));
  EXPECT_EQ(losses, ref_losses);  // degraded, not different

  const auto stats = engine.stats();
  EXPECT_GT(stats.deferred_prefetches, 0u);
  EXPECT_GT(stats.arena.pressure_events, 0u);
  EXPECT_GE(stats.arena.pressure_stalls, stats.deferred_prefetches);
}

// All device-resident bytes land in one arena: after training, the engine's
// region stats sum to its bytes_in_use and the activation/window regions
// both saw traffic.
TEST(MemPressure, EngineChargesAllRegionsToOneArena) {
  const auto mcfg = tiny_config();
  nn::GptModel model(mcfg);
  core::EngineConfig ecfg;
  ecfg.window = 2;
  core::StrongholdEngine engine(model, ecfg);
  engine.init_params(3);
  data::SyntheticCorpus corpus(mcfg.vocab, 5);
  engine.train_step(corpus.next_batch(2, mcfg.max_seq));

  const auto stats = engine.stats();
  std::size_t region_sum = 0;
  for (const auto& [name, rs] : stats.arena.regions) {
    region_sum += rs.bytes_in_use;
  }
  EXPECT_EQ(region_sum, stats.arena.bytes_in_use);
  EXPECT_GT(stats.arena.regions.at(DeviceArena::kWindow).bytes_in_use, 0u);
  EXPECT_GT(stats.arena.regions.at(DeviceArena::kActivations).peak_bytes, 0u);
  // EngineStats::gpu_high_water_bytes is the arena peak (one convention).
  EXPECT_EQ(stats.gpu_high_water_bytes, engine.device_arena().peak_bytes());
}

// Degradation path #2: KV exhaustion of the SHARED device arena triggers
// preempt-to-CPU through the registered pressure callback, and the token
// streams still match solo generation.
TEST(MemPressure, ArenaExhaustionPreemptsThroughSharedCallback) {
  const auto mcfg = tiny_config();

  core::EngineConfig ecfg;
  ecfg.window = 2;
  // Size the device so only one request's KV footprint (12 tokens *
  // 512 B/token = 6144 B) remains beyond the window: eight concurrent
  // requests must preempt each other through the shared arena.
  {
    nn::GptModel probe(mcfg);
    core::StrongholdEngine probe_engine(probe, ecfg);
    ecfg.gpu_memory_bytes = probe_engine.device_arena().used() + 8192;
  }
  nn::GptModel model(mcfg);
  core::StrongholdEngine engine(model, ecfg);
  engine.init_params(11);

  serve::SchedulerConfig scfg;
  scfg.max_batch = 8;
  scfg.arena.chunk_tokens = 4;
  // budget_bytes stays 0: resolved to the residual free capacity.
  serve::Scheduler sched(engine, scfg);
  EXPECT_EQ(sched.kv_budget_bytes(), 8192u);

  std::vector<serve::Request> reqs;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    serve::Request r;
    r.prompt = {static_cast<std::int32_t>((1 + 3 * i) % mcfg.vocab),
                static_cast<std::int32_t>((2 + 5 * i) % mcfg.vocab)};
    r.max_new_tokens = 10;  // greedy; 12 tokens * 512 B/token per request
    reqs.push_back(r);
    ids.push_back(sched.submit(r));
  }
  sched.run_to_completion();

  EXPECT_GE(sched.arena_stats().preemptions, 1u);
  EXPECT_GE(sched.arena_stats().resumes, 1u);
  const auto as = engine.device_arena().stats();
  EXPECT_GE(as.pressure_releases, 1u);  // preemptions came via the callback
  EXPECT_GT(as.regions.at(DeviceArena::kKv).peak_bytes, 0u);
  EXPECT_LE(as.regions.at(DeviceArena::kKv).peak_bytes, 8192u);

  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto solo =
        engine.generate_incremental(reqs[i].prompt, reqs[i].max_new_tokens);
    EXPECT_EQ(sched.result(ids[i]), solo) << "request " << i;
  }
}

// The shared arena is one budget: bytes reserved by the KV arena reduce
// what an explicit over-residual budget can actually use.
TEST(MemPressure, ExplicitKvBudgetClampsToResidual) {
  const auto mcfg = tiny_config();
  core::EngineConfig ecfg;
  ecfg.window = 2;
  {
    nn::GptModel probe(mcfg);
    core::StrongholdEngine probe_engine(probe, ecfg);
    ecfg.gpu_memory_bytes = probe_engine.device_arena().used() + 8192;
  }
  nn::GptModel model(mcfg);
  core::StrongholdEngine engine(model, ecfg);
  engine.init_params(1);

  serve::SchedulerConfig scfg;
  scfg.arena.budget_bytes = std::size_t{1} << 30;  // far beyond the device
  serve::Scheduler sched(engine, scfg);
  EXPECT_EQ(sched.kv_budget_bytes(), 8192u);
}

}  // namespace
}  // namespace sh::mem

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "dist/comm_volume.hpp"
#include "dist/hetero_comm.hpp"
#include "dist/process_group.hpp"

namespace sh::dist {
namespace {

/// Runs `fn(rank)` on `world` threads and joins.
void run_ranks(int world, const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) threads.emplace_back(fn, r);
  for (auto& t : threads) t.join();
}

TEST(Barrier, ReleasesAllParticipants) {
  Barrier b(4);
  std::atomic<int> before{0}, after{0};
  run_ranks(4, [&](int) {
    before.fetch_add(1);
    b.arrive_and_wait();
    EXPECT_EQ(before.load(), 4);
    after.fetch_add(1);
  });
  EXPECT_EQ(after.load(), 4);
}

TEST(Barrier, IsReusableAcrossGenerations) {
  Barrier b(3);
  std::atomic<int> phase_sum{0};
  run_ranks(3, [&](int rank) {
    for (int phase = 0; phase < 10; ++phase) {
      b.arrive_and_wait();
      phase_sum.fetch_add(rank);
      b.arrive_and_wait();
    }
  });
  EXPECT_EQ(phase_sum.load(), 10 * (0 + 1 + 2));
}

TEST(ProcessGroup, AllReduceSumsAcrossRanks) {
  const int world = 4;
  ProcessGroup pg(world);
  std::vector<std::vector<float>> bufs(world, std::vector<float>(8));
  for (int r = 0; r < world; ++r) {
    for (int i = 0; i < 8; ++i) {
      bufs[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)] =
          static_cast<float>(r + i);
    }
  }
  run_ranks(world, [&](int rank) {
    pg.all_reduce_sum(rank, bufs[static_cast<std::size_t>(rank)]);
  });
  // Sum over ranks of (r + i) = 6 + 4i.
  for (int r = 0; r < world; ++r) {
    for (int i = 0; i < 8; ++i) {
      EXPECT_FLOAT_EQ(bufs[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)],
                      6.0f + 4.0f * i);
    }
  }
}

TEST(ProcessGroup, AllReduceRepeatedRounds) {
  const int world = 3;
  ProcessGroup pg(world);
  std::vector<std::vector<float>> bufs(world, std::vector<float>{1.0f});
  run_ranks(world, [&](int rank) {
    for (int round = 0; round < 5; ++round) {
      pg.all_reduce_sum(rank, bufs[static_cast<std::size_t>(rank)]);
    }
  });
  // Each round multiplies by world: 3^5.
  for (int r = 0; r < world; ++r) {
    EXPECT_FLOAT_EQ(bufs[static_cast<std::size_t>(r)][0], 243.0f);
  }
}

TEST(ProcessGroup, AllGatherConcatenatesShards) {
  const int world = 3;
  ProcessGroup pg(world);
  std::vector<std::vector<float>> outs(world, std::vector<float>(6));
  run_ranks(world, [&](int rank) {
    std::vector<float> in = {static_cast<float>(rank),
                             static_cast<float>(rank * 10)};
    pg.all_gather(rank, in, outs[static_cast<std::size_t>(rank)]);
  });
  for (int r = 0; r < world; ++r) {
    EXPECT_EQ(outs[static_cast<std::size_t>(r)],
              (std::vector<float>{0, 0, 1, 10, 2, 20}));
  }
}

TEST(ProcessGroup, ReduceScatterGivesEachRankItsShard) {
  const int world = 2;
  ProcessGroup pg(world);
  std::vector<std::vector<float>> outs(world, std::vector<float>(2));
  run_ranks(world, [&](int rank) {
    // Both ranks contribute [1,2,3,4] and [10,20,30,40].
    std::vector<float> in = rank == 0 ? std::vector<float>{1, 2, 3, 4}
                                      : std::vector<float>{10, 20, 30, 40};
    pg.reduce_scatter_sum(rank, in, outs[static_cast<std::size_t>(rank)]);
  });
  EXPECT_EQ(outs[0], (std::vector<float>{11, 22}));
  EXPECT_EQ(outs[1], (std::vector<float>{33, 44}));
}

TEST(ProcessGroup, BroadcastCopiesRoot) {
  const int world = 4;
  ProcessGroup pg(world);
  std::vector<std::vector<float>> bufs(world, std::vector<float>(3, 0.0f));
  bufs[2] = {7.0f, 8.0f, 9.0f};
  run_ranks(world, [&](int rank) {
    pg.broadcast(rank, 2, bufs[static_cast<std::size_t>(rank)]);
  });
  for (int r = 0; r < world; ++r) {
    EXPECT_EQ(bufs[static_cast<std::size_t>(r)],
              (std::vector<float>{7, 8, 9}));
  }
}

TEST(ProcessGroup, SizeMismatchThrowsOnEveryRank) {
  const int world = 2;
  ProcessGroup pg(world);
  std::atomic<int> threw{0};
  std::vector<float> a(4), b(5);
  run_ranks(world, [&](int rank) {
    try {
      pg.all_reduce_sum(rank, rank == 0 ? std::span<float>(a)
                                        : std::span<float>(b));
    } catch (const std::invalid_argument&) {
      threw.fetch_add(1);
    }
  });
  EXPECT_EQ(threw.load(), 2);  // all ranks throw; nobody deadlocks
}

TEST(ProcessGroup, CountsCommunicationVolume) {
  const int world = 4;
  ProcessGroup pg(world);
  std::vector<std::vector<float>> bufs(world, std::vector<float>(10, 1.0f));
  run_ranks(world, [&](int rank) {
    pg.all_reduce_sum(rank, bufs[static_cast<std::size_t>(rank)]);
  });
  // Paper convention: (w-1) * w * N = 3 * 4 * 10.
  EXPECT_EQ(pg.floats_communicated(), 120u);
}

TEST(ProcessGroup, WorldOfOneIsIdentity) {
  ProcessGroup pg(1);
  std::vector<float> v = {3.0f};
  pg.all_reduce_sum(0, v);
  EXPECT_FLOAT_EQ(v[0], 3.0f);
  EXPECT_EQ(pg.floats_communicated(), 0u);
}

TEST(HeteroComm, ChannelsAreIndependent) {
  // A GPU-channel collective must complete even while the CPU channel is
  // mid-collective (one rank late) — the paper's concurrent heterogeneous
  // collectives requirement.
  const int world = 2;
  HeteroComm comm(world);
  std::vector<float> gpu_a = {1.0f}, gpu_b = {2.0f};
  std::vector<float> cpu_a = {10.0f}, cpu_b = {20.0f};
  std::atomic<bool> gpu_done{false};

  std::thread r0([&] {
    // Rank 0 starts the CPU collective late; the GPU one must not wait.
    comm.all_reduce_sum(Channel::Gpu, 0, gpu_a);
    gpu_done = true;
    comm.all_reduce_sum(Channel::Cpu, 0, cpu_a);
  });
  std::thread r1([&] {
    std::thread cpu_part([&] { comm.all_reduce_sum(Channel::Cpu, 1, cpu_b); });
    comm.all_reduce_sum(Channel::Gpu, 1, gpu_b);
    cpu_part.join();
  });
  r0.join();
  r1.join();
  EXPECT_TRUE(gpu_done.load());
  EXPECT_FLOAT_EQ(gpu_a[0], 3.0f);
  EXPECT_FLOAT_EQ(cpu_a[0], 30.0f);
  EXPECT_EQ(comm.floats_communicated(), 2u + 2u);
}

TEST(CommVolume, SimplifiedFormulaMatchesExact) {
  // The closed form assumes seq=1024, vs=30K.
  for (int bs : {2, 4, 8, 16}) {
    VolumeParams p{.w = 8, .layers = 50, .hidden = 4096, .vocab = 30000,
                   .batch = bs, .seq = 1024};
    EXPECT_NEAR(mp_over_dp(p), mp_over_dp_simplified(p),
                0.02 * mp_over_dp(p));
  }
}

TEST(CommVolume, PaperExampleEvaluatesPerFormula) {
  // Paper example: 20B model, bs=16, n=50, hd=4K. The paper prose claims
  // this "halves the communication traffic", but its own closed form
  // bs / (3 hd/256 + 30/n) evaluates to 16 / 48.6 ~= 0.33 — we reproduce the
  // formula faithfully and record the prose/formula inconsistency in
  // EXPERIMENTS.md.
  VolumeParams p{.w = 8, .layers = 50, .hidden = 4096, .vocab = 30000,
                 .batch = 16, .seq = 1024};
  EXPECT_NEAR(mp_over_dp_simplified(p), 16.0 / (48.0 + 30.0 / 50.0), 1e-6);
  EXPECT_NEAR(mp_over_dp(p), 0.329, 0.01);
}

TEST(CommVolume, DpWinsBeyondCrossoverBatch) {
  // MP->DP conversion pays off (ratio > 1) once bs exceeds 3 hd/256 + 30/n.
  VolumeParams p{.w = 8, .layers = 50, .hidden = 4096, .vocab = 30000,
                 .batch = 1, .seq = 1024};
  const double crossover = 3.0 * 4096.0 / 256.0 + 30.0 / 50.0;
  p.batch = static_cast<std::int64_t>(crossover) + 2;
  EXPECT_GT(mp_over_dp(p), 1.0);
  p.batch = static_cast<std::int64_t>(crossover) - 2;
  EXPECT_LT(mp_over_dp(p), 1.0);
}

TEST(CommVolume, NarrowModelsFavorDpConversion) {
  // Smaller hidden sizes push the crossover down: at hd=1024, n=50 the
  // crossover is bs = 12.6, so bs=16 already reduces traffic.
  VolumeParams p{.w = 8, .layers = 50, .hidden = 1024, .vocab = 30000,
                 .batch = 16, .seq = 1024};
  EXPECT_GT(mp_over_dp(p), 1.0);
}

TEST(CommVolume, RatioGrowsLinearlyInBatch) {
  VolumeParams p{.w = 8, .layers = 50, .hidden = 4096, .vocab = 30000,
                 .batch = 4, .seq = 1024};
  const double r4 = mp_over_dp(p);
  p.batch = 8;
  EXPECT_NEAR(mp_over_dp(p), 2.0 * r4, 1e-9);
}

}  // namespace
}  // namespace sh::dist

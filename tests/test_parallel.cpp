#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace sh::parallel {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, AsyncReturnsValue) {
  ThreadPool pool(1);
  auto fut = pool.async([] { return 21 * 2; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPool, TasksRunInSubmissionOrderOnSingleWorker) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) pool.submit([&order, i] { order.push_back(i); });
  pool.wait_idle();
  std::vector<int> expect(10);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, 1000, 8, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(pool, 5, 5, 1, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SmallRangeRunsInline) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 0, 3, 100, [&](std::size_t lo, std::size_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 3u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, SumMatchesSerial) {
  ThreadPool pool(4);
  std::vector<double> vals(10000);
  std::iota(vals.begin(), vals.end(), 1.0);
  std::atomic<long long> sum{0};
  parallel_for(pool, 0, vals.size(), 16, [&](std::size_t lo, std::size_t hi) {
    long long local = 0;
    for (std::size_t i = lo; i < hi; ++i) local += static_cast<long long>(vals[i]);
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 10000LL * 10001 / 2);
}

TEST(ParallelFor, RangeNearSizeMaxDoesNotOverflow) {
  // The old claim loop advanced a shared counter with fetch_add, which
  // wrapped past `end` when the range sat near SIZE_MAX; the bounded
  // compare-exchange claim must cover exactly [begin, end) instead.
  ThreadPool pool(3);
  constexpr std::size_t begin = SIZE_MAX - 1000;
  constexpr std::size_t end = SIZE_MAX - 500;
  std::vector<std::atomic<int>> hits(end - begin);
  parallel_for(pool, begin, end, 7, [&](std::size_t lo, std::size_t hi) {
    ASSERT_GE(lo, begin);
    ASSERT_LE(hi, end);
    ASSERT_LT(lo, hi);
    for (std::size_t i = lo; i < hi; ++i) hits[i - begin].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(HardwareThreads, AtLeastOne) { EXPECT_GE(hardware_threads(), 1u); }

}  // namespace
}  // namespace sh::parallel

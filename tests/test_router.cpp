// serve::Router tests: deterministic replay at any replica count, SLO-aware
// victim selection, prefix-CoW exactness, and fault-injected chaos serving.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "serve/kv_arena.hpp"
#include "serve/router.hpp"
#include "serve/scheduler.hpp"
#include "serve/workload.hpp"
#include "storage/fault_plan.hpp"

namespace sh::serve {
namespace {

nn::GptConfig router_model_config() {
  nn::GptConfig cfg;
  cfg.vocab = 32;
  cfg.max_seq = 16;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.layers = 3;
  return cfg;
}

WorkloadSpec router_spec() {
  WorkloadSpec spec;
  spec.seed = 11;
  spec.requests = 14;
  spec.arrival_rate = 60.0;
  spec.vocab = 32;
  spec.prompt_min = 1;
  spec.prompt_max = 4;
  spec.output_min = 2;
  spec.output_max = 8;
  spec.tiers = {{"interactive", 0.4}, {"batch", 4.0}};
  spec.tier_weights = {2.0, 1.0};
  spec.shared_prefix = {5, 6, 7};
  spec.prefix_share = 0.5;
  return spec;
}

RouterConfig fleet_config(std::size_t replicas) {
  RouterConfig cfg;
  cfg.replicas = replicas;
  cfg.step_dt = 0.01;
  cfg.scheduler.max_batch = 4;
  cfg.scheduler.arena.chunk_tokens = 4;
  cfg.scheduler.arena.budget_bytes = 64 * 1024;
  return cfg;
}

std::map<std::uint64_t, std::vector<std::int32_t>> run_fleet(
    core::StrongholdEngine& engine, const Workload& wl, RouterConfig cfg) {
  Router router(engine, cfg);
  router.run(wl);
  std::map<std::uint64_t, std::vector<std::int32_t>> out;
  for (const WorkloadItem& it : wl.items) out[it.id] = router.result(it.id);
  return out;
}

// Tentpole invariant: the same recorded workload produces identical
// per-request token streams across runs AND across replica counts 1/2/4 —
// a request's tokens are a function of the request alone, never of fleet
// shape, batching or preemption.
TEST(Router, ReplayBitIdenticalAcrossRunsAndReplicaCounts) {
  const auto mcfg = router_model_config();
  nn::GptModel model(mcfg);
  core::EngineConfig ecfg;
  ecfg.window = 2;
  core::StrongholdEngine engine(model, ecfg);
  engine.init_params(31);

  const std::string path = ::testing::TempDir() + "router_replay.shwl";
  generate_workload(router_spec()).save(path);
  const Workload wl = Workload::load(path);

  const auto r1 = run_fleet(engine, wl, fleet_config(1));
  const auto r1b = run_fleet(engine, wl, fleet_config(1));
  const auto r2 = run_fleet(engine, wl, fleet_config(2));
  const auto r4 = run_fleet(engine, wl, fleet_config(4));
  EXPECT_EQ(r1, r1b) << "same file + same config must replay identically";
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r1, r4);

  // And every stream equals the solo single-request run.
  for (const WorkloadItem& it : wl.items) {
    const auto solo = engine.generate_incremental(it.prompt, it.max_new_tokens);
    EXPECT_EQ(r4.at(it.id), solo) << "item " << it.id;
  }
  std::remove(path.c_str());
}

TEST(Router, DispatchIsDeterministicAndBalanced) {
  const auto mcfg = router_model_config();
  nn::GptModel model(mcfg);
  core::EngineConfig ecfg;
  ecfg.window = 2;
  core::StrongholdEngine engine(model, ecfg);
  engine.init_params(31);

  const Workload wl = generate_workload(router_spec());
  Router a(engine, fleet_config(2));
  Router b(engine, fleet_config(2));
  a.run(wl);
  b.run(wl);

  std::vector<std::size_t> used(2, 0);
  for (const WorkloadItem& it : wl.items) {
    EXPECT_EQ(a.replica_of(it.id), b.replica_of(it.id)) << "item " << it.id;
    ++used[a.replica_of(it.id)];
  }
  EXPECT_GT(used[0], 0u);
  EXPECT_GT(used[1], 0u);
  EXPECT_EQ(a.stats().dispatched, wl.items.size());
  EXPECT_EQ(a.stats().finished, wl.items.size());
  EXPECT_EQ(a.stats().steps, b.stats().steps);
}

TEST(Router, TierReportsCarryVirtualPercentilesAndGoodput) {
  const auto mcfg = router_model_config();
  nn::GptModel model(mcfg);
  core::EngineConfig ecfg;
  ecfg.window = 2;
  core::StrongholdEngine engine(model, ecfg);
  engine.init_params(31);

  const Workload wl = generate_workload(router_spec());
  Router router(engine, fleet_config(2));
  router.run(wl);

  const auto reports = router.tier_reports();
  ASSERT_EQ(reports.size(), wl.tiers.size());
  std::size_t offered = 0;
  for (const auto& rep : reports) {
    offered += rep.offered;
    EXPECT_EQ(rep.finished, rep.offered);
    EXPECT_LE(rep.met_deadline, rep.finished);
    if (rep.finished > 0) {
      EXPECT_GT(rep.p50_s, 0.0);
      EXPECT_LE(rep.p50_s, rep.p99_s);
      EXPECT_LE(rep.p99_s, rep.p999_s);
    }
    EXPECT_GE(rep.goodput(), 0.0);
    EXPECT_LE(rep.goodput(), 1.0);
  }
  EXPECT_EQ(offered, wl.items.size());
  EXPECT_GT(router.latency_percentile(0.99), 0.0);
  // Virtual-time percentiles are a pure function of the workload: a second
  // identical fleet reports the same numbers (this is what makes the CI
  // gate on BENCH_serve.json stable).
  Router again(engine, fleet_config(2));
  again.run(wl);
  EXPECT_EQ(router.latency_percentile(0.99), again.latency_percentile(0.99));
}

// SLO policy unit test: under pressure the SloHeadroom policy evicts the
// sequence with the WORST normalized deadline headroom (already-doomed
// traffic is shed), while Youngest keeps evicting the newest admission.
TEST(Router, SloVictimIsWorstHeadroomNotYoungest) {
  const auto mcfg = router_model_config();
  nn::GptModel model(mcfg);
  core::EngineConfig ecfg;
  ecfg.window = 2;
  core::StrongholdEngine engine(model, ecfg);
  engine.init_params(13);

  // 384 B/token, chunk 4 -> 1536 B per chunk. Three 1-chunk residents fit
  // in 5000 B; the first growth to 2 chunks (6144 B total) must preempt.
  auto make = [&](PreemptPolicy policy) {
    SchedulerConfig scfg;
    scfg.max_batch = 3;
    scfg.arena.chunk_tokens = 4;
    scfg.arena.budget_bytes = 5000;
    scfg.preempt_policy = policy;
    scfg.step_dt = 0.01;
    return scfg;
  };
  auto submit_three = [&](Scheduler& sched) {
    // A: prompt 4 -> grows on step 2 (it is the reserver, never a victim).
    Request a;
    a.id = 1;
    a.prompt = {1, 2, 3, 4};
    a.max_new_tokens = 4;
    a.sampling.seed = 41;
    // B: mid-age, deadline blown long ago -> worst (negative) headroom.
    Request b;
    b.id = 2;
    b.prompt = {5, 6, 7};
    b.max_new_tokens = 4;
    b.sampling.seed = 42;
    b.arrival_s = 0.0;
    b.deadline_s = 1.0;
    // C: youngest, loose deadline -> best headroom.
    Request c;
    c.id = 3;
    c.prompt = {8, 9, 10};
    c.max_new_tokens = 4;
    c.sampling.seed = 43;
    c.arrival_s = 0.0;
    c.deadline_s = 1000.0;
    sched.submit(a);
    sched.submit(b);
    sched.submit(c);
  };

  Scheduler youngest(engine, make(PreemptPolicy::Youngest));
  submit_three(youngest);
  youngest.set_virtual_now(100.0);
  youngest.step();  // admit all three at one chunk each
  youngest.step();  // A grows -> pressure
  EXPECT_GE(youngest.stats().preemptions, 1u);
  EXPECT_EQ(youngest.stats().last_victim, 3u) << "youngest evicts C";

  Scheduler slo(engine, make(PreemptPolicy::SloHeadroom));
  submit_three(slo);
  slo.set_virtual_now(100.0);
  slo.step();
  slo.step();
  EXPECT_GE(slo.stats().preemptions, 1u);
  EXPECT_EQ(slo.stats().last_victim, 2u)
      << "SLO policy evicts the blown-deadline sequence, not the youngest";

  // Policy never changes tokens, only schedules: both runs end bit-equal.
  youngest.run_to_completion();
  slo.run_to_completion();
  for (std::uint64_t id = 1; id <= 3; ++id) {
    EXPECT_EQ(youngest.result(id), slo.result(id)) << "id " << id;
  }
}

// Prefix CoW: the shared prefix is prefilled ONCE; sharers alias it and
// privatize on first divergent write, and every output stays bit-equal to
// the solo run — including a sharer that is forcibly preempted and resumed.
TEST(Router, PrefixCowExactUnderPreemptionOfASharingSequence) {
  const auto mcfg = router_model_config();
  nn::GptModel model(mcfg);
  core::EngineConfig ecfg;
  ecfg.window = 2;
  core::StrongholdEngine engine(model, ecfg);
  engine.init_params(19);

  const std::vector<std::int32_t> prefix = {5, 6, 7, 8};  // one 4-token chunk
  SchedulerConfig scfg;
  scfg.max_batch = 3;
  scfg.arena.chunk_tokens = 4;
  // prefix slab 1536 + two sharers at 2 chunks each (3072) = 7680 > 6500:
  // the younger privatized sharer MUST be preempted and later resumed.
  scfg.arena.budget_bytes = 6500;
  Scheduler sched(engine, scfg);
  sched.register_prefix(prefix);

  Request r1;
  r1.id = 1;
  r1.prompt = prefix;
  r1.prompt.push_back(9);
  r1.max_new_tokens = 8;
  r1.sampling.seed = 51;
  Request r2;
  r2.id = 2;
  r2.prompt = prefix;
  r2.prompt.push_back(11);
  r2.max_new_tokens = 8;
  r2.sampling.seed = 52;
  Request r3;  // prompt IS the prefix: first token comes from cached logits
  r3.id = 3;
  r3.prompt = prefix;
  r3.max_new_tokens = 5;
  r3.sampling.seed = 53;
  sched.submit(r1);
  sched.submit(r2);
  sched.submit(r3);
  sched.run_to_completion();

  const auto& arena = sched.arena_stats();
  EXPECT_EQ(arena.prefixes, 1u);
  EXPECT_EQ(arena.prefix_adoptions, 3u);
  EXPECT_GE(arena.prefix_privatizations, 3u);
  EXPECT_GE(arena.preemptions, 1u) << "budget never forced a sharer preempt";
  EXPECT_GE(arena.resumes, 1u);

  // Prefill compute: 4 prefix tokens once + one private token each for
  // r1/r2 + none for r3 — instead of 4+5+5 for a prefix-blind scheduler.
  EXPECT_EQ(sched.stats().prefix_prefill_tokens, 4u);
  EXPECT_EQ(sched.stats().prompt_tokens_fed, 6u);

  for (const Request& r : {r1, r2, r3}) {
    const auto solo = engine.generate_incremental(r.prompt, r.max_new_tokens);
    EXPECT_EQ(sched.result(r.id), solo) << "request " << r.id;
  }
}

// Arena-level alias lifecycle: preempting a still-shared sequence saves no
// rows, frees no bytes, and resume re-adopts the pinned prefix slab.
TEST(Router, KvArenaAliasPreemptResumeAndRefcounts) {
  const auto mcfg = router_model_config();
  KvArenaConfig cfg;
  cfg.chunk_tokens = 4;
  cfg.budget_bytes = 1 << 16;
  KvArena arena(mcfg, cfg);

  const std::uint64_t pid = arena.register_prefix(4);
  const std::size_t pinned = arena.stats().bytes_in_use;
  EXPECT_EQ(arena.stats().prefix_bytes, pinned);
  EXPECT_EQ(arena.prefix_caches(pid).size(), 3u);

  arena.adopt_prefix(7, pid);
  EXPECT_TRUE(arena.shared(7));
  EXPECT_TRUE(arena.resident(7));
  EXPECT_EQ(arena.stats().bytes_in_use, pinned) << "aliases charge nothing";
  EXPECT_EQ(arena.caches(7).data(), arena.prefix_caches(pid).data())
      << "a shared sequence reads the prefix slab itself";

  arena.preempt(7);
  EXPECT_FALSE(arena.shared(7));
  EXPECT_TRUE(arena.preempted(7));
  EXPECT_EQ(arena.stats().bytes_in_use, pinned);
  EXPECT_TRUE(arena.try_resume(7, 4)) << "alias resume is free";
  EXPECT_TRUE(arena.shared(7));

  // Privatization: first write-bearing reservation copies the prefix rows.
  for (nn::KvCache& c : arena.prefix_caches(pid)) {
    c.length = 4;
    for (std::int64_t i = 0; i < c.k.numel(); ++i) {
      c.k.at(i) = static_cast<float>(i) * 0.5f;
    }
  }
  ASSERT_TRUE(arena.try_reserve(7, 5));
  EXPECT_FALSE(arena.shared(7));
  EXPECT_GT(arena.stats().bytes_in_use, pinned);
  EXPECT_EQ(arena.stats().prefix_privatizations, 1u);
  EXPECT_NE(arena.caches(7).data(), arena.prefix_caches(pid).data());
  EXPECT_EQ(arena.caches(7)[0].length, 4);
  EXPECT_EQ(arena.caches(7)[1].k.at(1), arena.prefix_caches(pid)[1].k.at(1));

  arena.release(7);
  EXPECT_EQ(arena.stats().bytes_in_use, pinned)
      << "the prefix slab stays pinned after all sharers are gone";
}

// Fleet-level savings: with every request sharing the system prompt the
// fleet prefills >= 1.5x fewer prompt tokens, and the outputs are
// bit-identical to a prefix-blind fleet (SH_SERVE_PREFIX=off baseline).
TEST(Router, SharedPrefixSavesPrefillComputeWithIdenticalOutputs) {
  const auto mcfg = router_model_config();
  nn::GptModel model(mcfg);
  core::EngineConfig ecfg;
  ecfg.window = 2;
  core::StrongholdEngine engine(model, ecfg);
  engine.init_params(29);

  auto spec = router_spec();
  spec.requests = 12;
  spec.shared_prefix = {3, 4, 5, 6, 7, 8};
  spec.prefix_share = 1.0;  // every request carries the system prompt
  spec.prompt_min = 1;
  spec.prompt_max = 2;
  spec.output_min = 2;
  spec.output_max = 6;
  const Workload wl = generate_workload(spec);

  auto cfg = fleet_config(2);
  Router sharing(engine, cfg);
  sharing.run(wl);

  auto blind_cfg = cfg;
  blind_cfg.share_prefix = false;
  Router blind(engine, blind_cfg);
  blind.run(wl);

  for (const WorkloadItem& it : wl.items) {
    EXPECT_EQ(sharing.result(it.id), blind.result(it.id)) << "item " << it.id;
  }
  EXPECT_EQ(blind.prefill_savings(), 1.0);
  EXPECT_GE(sharing.prefill_savings(), 1.5)
      << "shared-prefix serving must prefill at least 1.5x fewer tokens";
}

// Chaos: a fleet on a swap-backed engine under bounded SH_FAULT_* transient
// faults completes every request bit-identical to the healthy run (faults
// cost latency, never tokens); a dead tier surfaces a typed storage::IoError
// without wedging the router.
TEST(Router, ChaosFaultedFleetBitIdenticalAndDeadTierRaisesIoError) {
  const auto mcfg = router_model_config();
  auto spec = router_spec();
  spec.requests = 6;
  const Workload wl = generate_workload(spec);

  core::EngineConfig base;
  base.window = 1;
  base.cpu_capacity_bytes = 24 * 1024;  // push most layers onto "NVMe"
  const auto cfg = fleet_config(2);

  std::map<std::uint64_t, std::vector<std::int32_t>> healthy;
  {
    nn::GptModel model(mcfg);
    auto ecfg = base;
    ecfg.swap_path = ::testing::TempDir() + "router_swap_healthy.bin";
    core::StrongholdEngine engine(model, ecfg);
    EXPECT_GT(engine.stats().swap_backed_layers, 0u);
    engine.init_params(37);
    healthy = run_fleet(engine, wl, cfg);
  }

  {
    // Transient faults via the SH_FAULT_* env surface (bounded: every op
    // recovers within the retry budget).
    ::setenv("SH_FAULT_RATE", "0.9", 1);
    ::setenv("SH_FAULT_SEED", "2026", 1);
    ::setenv("SH_FAULT_LATENCY_SPIKE_S", "1e-5", 1);
    ::setenv("SH_FAULT_MAX_FAULTS_PER_OP", "2", 1);
    ::setenv("SH_FAULT_MAX_ATTEMPTS", "4", 1);
    ::setenv("SH_FAULT_BACKOFF_S", "1e-6", 1);
    nn::GptModel model(mcfg);
    auto ecfg = base;
    ecfg.swap_path = ::testing::TempDir() + "router_swap_faulted.bin";
    core::StrongholdEngine engine(model, ecfg);
    ::unsetenv("SH_FAULT_RATE");
    ::unsetenv("SH_FAULT_SEED");
    ::unsetenv("SH_FAULT_LATENCY_SPIKE_S");
    ::unsetenv("SH_FAULT_MAX_FAULTS_PER_OP");
    ::unsetenv("SH_FAULT_MAX_ATTEMPTS");
    ::unsetenv("SH_FAULT_BACKOFF_S");
    engine.init_params(37);
    const auto faulted = run_fleet(engine, wl, cfg);
    EXPECT_GT(engine.stats().swap_faults_injected, 0u) << "faults never fired";
    EXPECT_EQ(engine.stats().swap_io_errors, 0u);
    EXPECT_EQ(faulted, healthy) << "transient faults must never change tokens";
  }

  {
    // Dead tier: every read EIOs forever; the router must surface the typed
    // error and still tear down cleanly.
    nn::GptModel model(mcfg);
    auto ecfg = base;
    ecfg.swap_path = ::testing::TempDir() + "router_swap_dead.bin";
    ecfg.swap_faults.rate = 1.0;
    ecfg.swap_faults.latency_weight = 0.0;
    ecfg.swap_faults.short_weight = 0.0;
    ecfg.swap_faults.fault_writes = false;  // init_params can seed the tier
    ecfg.swap_faults.max_faults_per_op =
        std::numeric_limits<std::size_t>::max();
    ecfg.swap_faults.max_attempts = 3;
    ecfg.swap_faults.backoff_initial_s = 1e-6;
    core::StrongholdEngine engine(model, ecfg);
    engine.init_params(37);
    Router router(engine, cfg);
    EXPECT_THROW(router.run(wl), storage::IoError);
  }  // router + engine destructors must not hang or rethrow
}

}  // namespace
}  // namespace sh::serve

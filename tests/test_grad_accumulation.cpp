// Gradient accumulation: k micro-steps must equal one step on the combined
// batch, across the offloaded update paths (evicted, resident, pinned).
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/monolithic.hpp"
#include "data/synthetic.hpp"
#include "testing/util.hpp"

namespace sh::core {
namespace {

nn::GptConfig tiny_config() {
  nn::GptConfig cfg;
  cfg.vocab = 32;
  cfg.max_seq = 8;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.layers = 4;
  return cfg;
}

/// Splits a batch of `rows` rows into `parts` equal micro-batches.
std::vector<data::Batch> split_batch(const data::Batch& big, std::int64_t seq,
                                     int parts) {
  std::vector<data::Batch> out;
  const std::size_t rows = big.ids.size() / static_cast<std::size_t>(seq);
  const std::size_t rows_per = rows / static_cast<std::size_t>(parts);
  for (int p = 0; p < parts; ++p) {
    data::Batch b;
    const std::size_t lo = static_cast<std::size_t>(p) * rows_per *
                           static_cast<std::size_t>(seq);
    const std::size_t hi = lo + rows_per * static_cast<std::size_t>(seq);
    b.ids.assign(big.ids.begin() + static_cast<std::ptrdiff_t>(lo),
                 big.ids.begin() + static_cast<std::ptrdiff_t>(hi));
    b.targets.assign(big.targets.begin() + static_cast<std::ptrdiff_t>(lo),
                     big.targets.begin() + static_cast<std::ptrdiff_t>(hi));
    out.push_back(std::move(b));
  }
  return out;
}

TEST(GradAccumulation, TwoMicroStepsEqualOneBigStep) {
  const auto mcfg = tiny_config();
  data::SyntheticCorpus corpus(mcfg.vocab, 61);
  std::vector<data::Batch> big_batches;
  for (int i = 0; i < 3; ++i) big_batches.push_back(corpus.next_batch(4, mcfg.max_seq));

  // Reference: monolithic training on the big batches.
  nn::GptModel ref_model(mcfg);
  MonolithicTrainer ref(ref_model, optim::AdamConfig{});
  ref.init_params(42);
  for (const auto& b : big_batches) ref.train_step(b);
  std::vector<float> ref_params;
  ref.snapshot_params(ref_params);

  // Engine: each big batch fed as 2 accumulation micro-steps of 2 samples.
  nn::GptModel model(mcfg);
  EngineConfig ecfg;
  ecfg.window = 2;
  ecfg.grad_accumulation = 2;
  StrongholdEngine engine(model, ecfg);
  engine.init_params(42);
  for (const auto& big : big_batches) {
    for (const auto& micro : split_batch(big, mcfg.max_seq, 2)) {
      engine.train_step(micro);
    }
  }
  std::vector<float> params;
  engine.snapshot_params(params);
  // Micro-splitting reorders float sums inside the loss/grad means.
  sh::testing::expect_allclose(params, ref_params, 1e-5f, 1e-4f);
}

TEST(GradAccumulation, AccumulationOfOneIsBitwiseBaseline) {
  const auto mcfg = tiny_config();
  data::SyntheticCorpus corpus(mcfg.vocab, 62);
  std::vector<data::Batch> batches;
  for (int i = 0; i < 2; ++i) batches.push_back(corpus.next_batch(2, mcfg.max_seq));

  auto run = [&](std::size_t accum) {
    nn::GptModel model(mcfg);
    EngineConfig ecfg;
    ecfg.window = 2;
    ecfg.grad_accumulation = accum;
    StrongholdEngine engine(model, ecfg);
    engine.init_params(42);
    for (const auto& b : batches) engine.train_step(b);
    std::vector<float> p;
    engine.snapshot_params(p);
    return p;
  };
  sh::testing::expect_allclose(run(1), run(1), 0.0f, 0.0f);
}

TEST(GradAccumulation, MidCyclePerformsNoUpdates) {
  const auto mcfg = tiny_config();
  nn::GptModel model(mcfg);
  EngineConfig ecfg;
  ecfg.window = 2;
  ecfg.grad_accumulation = 4;
  StrongholdEngine engine(model, ecfg);
  engine.init_params(5);
  data::SyntheticCorpus corpus(mcfg.vocab, 6);

  std::vector<float> before;
  engine.snapshot_params(before);
  for (int micro = 0; micro < 3; ++micro) {
    engine.train_step(corpus.next_batch(2, mcfg.max_seq));
  }
  std::vector<float> mid;
  engine.snapshot_params(mid);
  sh::testing::expect_allclose(mid, before, 0.0f, 0.0f);  // untouched
  EXPECT_EQ(engine.stats().optimizer_updates, 0u);

  engine.train_step(corpus.next_batch(2, mcfg.max_seq));  // cycle completes
  std::vector<float> after;
  engine.snapshot_params(after);
  float changed = sh::tensor::max_abs_diff(
      after.data(), before.data(), static_cast<std::int64_t>(after.size()));
  EXPECT_GT(changed, 0.0f);
  EXPECT_EQ(engine.stats().optimizer_updates, model.num_layers());
}

TEST(GradAccumulation, WorksWithClippingAndSchedule) {
  const auto mcfg = tiny_config();
  data::SyntheticCorpus corpus(mcfg.vocab, 63);
  std::vector<data::Batch> big;
  for (int i = 0; i < 2; ++i) big.push_back(corpus.next_batch(4, mcfg.max_seq));
  const auto schedule = optim::warmup_cosine(5e-3f, 1, 8);

  nn::GptModel ref_model(mcfg);
  MonolithicTrainer ref(ref_model, optim::AdamConfig{}, 0.05f, schedule);
  ref.init_params(42);
  for (const auto& b : big) ref.train_step(b);
  std::vector<float> ref_params;
  ref.snapshot_params(ref_params);

  nn::GptModel model(mcfg);
  EngineConfig ecfg;
  ecfg.window = 2;
  ecfg.grad_accumulation = 2;
  ecfg.clip_grad_norm = 0.05f;
  ecfg.lr_schedule = schedule;
  StrongholdEngine engine(model, ecfg);
  engine.init_params(42);
  for (const auto& b : big) {
    for (const auto& micro : split_batch(b, mcfg.max_seq, 2)) {
      engine.train_step(micro);
    }
  }
  std::vector<float> params;
  engine.snapshot_params(params);
  sh::testing::expect_allclose(params, ref_params, 1e-5f, 1e-4f);
}

TEST(GradAccumulation, WorksWithSwapTier) {
  const auto mcfg = tiny_config();
  data::SyntheticCorpus corpus(mcfg.vocab, 64);
  const auto big = corpus.next_batch(4, mcfg.max_seq);

  nn::GptModel ref_model(mcfg);
  MonolithicTrainer ref(ref_model, optim::AdamConfig{});
  ref.init_params(42);
  ref.train_step(big);
  std::vector<float> ref_params;
  ref.snapshot_params(ref_params);

  nn::GptModel model(mcfg);
  EngineConfig ecfg;
  ecfg.window = 1;
  ecfg.grad_accumulation = 2;
  ecfg.cpu_capacity_bytes = 64 * 1024;
  ecfg.swap_path = ::testing::TempDir() + "accum_swap.bin";
  StrongholdEngine engine(model, ecfg);
  engine.init_params(42);
  for (const auto& micro : split_batch(big, mcfg.max_seq, 2)) {
    engine.train_step(micro);
  }
  std::vector<float> params;
  engine.snapshot_params(params);
  sh::testing::expect_allclose(params, ref_params, 1e-5f, 1e-4f);
}

}  // namespace
}  // namespace sh::core

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "sim/event_engine.hpp"
#include "sim/hardware.hpp"
#include "sim/resource.hpp"
#include "sim/trace.hpp"

namespace sh::sim {
namespace {

TEST(EventEngine, ExecutesInTimeOrder) {
  EventEngine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.executed(), 3u);
}

TEST(EventEngine, SameTimeEventsAreFifo) {
  EventEngine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    e.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventEngine, CallbacksCanScheduleMoreEvents) {
  EventEngine e;
  int fired = 0;
  e.schedule_at(1.0, [&] {
    ++fired;
    e.schedule_after(0.5, [&] { ++fired; });
  });
  e.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(e.now(), 1.5);
}

TEST(EventEngine, AdvancesVirtualClock) {
  EventEngine e;
  e.schedule_at(7.25, [] {});
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
  e.run();
  EXPECT_DOUBLE_EQ(e.now(), 7.25);
}

TEST(EventEngine, RejectsSchedulingInThePast) {
  EventEngine e;
  e.schedule_at(2.0, [&] {
    EXPECT_THROW(e.schedule_at(1.0, [] {}), std::invalid_argument);
  });
  e.run();
}

TEST(Timeline, SerializesWork) {
  Timeline t("stream");
  auto a = t.acquire(0.0, 2.0);
  auto b = t.acquire(0.0, 3.0);  // ready at 0 but must wait for a
  EXPECT_DOUBLE_EQ(a.start, 0.0);
  EXPECT_DOUBLE_EQ(a.end, 2.0);
  EXPECT_DOUBLE_EQ(b.start, 2.0);
  EXPECT_DOUBLE_EQ(b.end, 5.0);
  EXPECT_DOUBLE_EQ(t.busy_time(), 5.0);
}

TEST(Timeline, RespectsReadyTime) {
  Timeline t("stream");
  auto a = t.acquire(10.0, 1.0);
  EXPECT_DOUBLE_EQ(a.start, 10.0);
  auto b = t.acquire(5.0, 1.0);  // resource free at 11, ready at 5
  EXPECT_DOUBLE_EQ(b.start, 11.0);
}

TEST(Timeline, ResetClears) {
  Timeline t("s");
  t.acquire(0.0, 4.0);
  t.reset();
  EXPECT_DOUBLE_EQ(t.busy_until(), 0.0);
  EXPECT_DOUBLE_EQ(t.busy_time(), 0.0);
}

TEST(BandwidthLink, TransferTimeIsBytesOverBandwidth) {
  BandwidthLink link("pcie", 10.0, 0.5);  // 10 B/s, 0.5 s latency
  EXPECT_DOUBLE_EQ(link.seconds_for(20.0), 2.5);
  auto iv = link.transfer(0.0, 20.0);
  EXPECT_DOUBLE_EQ(iv.duration(), 2.5);
  auto iv2 = link.transfer(0.0, 10.0);  // queued behind the first
  EXPECT_DOUBLE_EQ(iv2.start, 2.5);
  EXPECT_DOUBLE_EQ(iv2.end, 4.0);
}

TEST(LanePool, DispatchesToEarliestFreeLane) {
  LanePool pool("cpu", 2);
  auto a = pool.acquire(0.0, 4.0);
  auto b = pool.acquire(0.0, 1.0);
  EXPECT_DOUBLE_EQ(a.start, 0.0);
  EXPECT_DOUBLE_EQ(b.start, 0.0);  // second lane
  auto c = pool.acquire(0.0, 1.0);
  EXPECT_DOUBLE_EQ(c.start, 1.0);  // lane 2 frees first
  EXPECT_DOUBLE_EQ(pool.busy_until(), 4.0);
}

TEST(LanePool, SingleLaneDegeneratesToTimeline) {
  LanePool pool("one", 1);
  auto a = pool.acquire(0.0, 2.0);
  auto b = pool.acquire(0.0, 2.0);
  EXPECT_DOUBLE_EQ(a.end, 2.0);
  EXPECT_DOUBLE_EQ(b.start, 2.0);
}

TEST(LanePool, RejectsZeroLanes) {
  EXPECT_THROW(LanePool("bad", 0), std::invalid_argument);
}

TEST(Trace, UtilizationAndOverlap) {
  Trace tr;
  tr.record("compute", "f", {0.0, 8.0});
  tr.record("pcie", "t", {2.0, 6.0});
  tr.record("pcie", "t", {9.0, 10.0});
  EXPECT_DOUBLE_EQ(tr.end_time(), 10.0);
  EXPECT_DOUBLE_EQ(tr.utilization("compute"), 0.8);
  EXPECT_DOUBLE_EQ(tr.utilization("pcie"), 0.5);
  // 4 of 5 pcie seconds overlap compute.
  EXPECT_DOUBLE_EQ(tr.overlap_fraction("pcie", "compute"), 0.8);
}

TEST(Trace, EmptyTraceMetricsAreZero) {
  Trace tr;
  EXPECT_DOUBLE_EQ(tr.end_time(), 0.0);
  EXPECT_DOUBLE_EQ(tr.utilization("gpu"), 0.0);
  EXPECT_DOUBLE_EQ(tr.overlap_fraction("gpu", "pcie"), 0.0);
}

TEST(Trace, ZeroLengthSpansContributeNothing) {
  Trace tr;
  tr.record("mem", "defer", {3.0, 3.0});  // engine's deferred-prefetch marker
  tr.record("gpu", "f", {0.0, 4.0});
  EXPECT_DOUBLE_EQ(tr.end_time(), 4.0);
  EXPECT_DOUBLE_EQ(tr.utilization("mem"), 0.0);
  EXPECT_DOUBLE_EQ(tr.utilization("gpu"), 1.0);
  EXPECT_DOUBLE_EQ(tr.overlap_fraction("mem", "gpu"), 0.0);
  EXPECT_DOUBLE_EQ(tr.overlap_fraction("gpu", "mem"), 0.0);
}

TEST(Trace, OverlappingSpansOnOneResourceDoNotExceedFullUtilization) {
  // Real wall-clock traces (obs::to_sim_trace) carry nested/concurrent spans
  // on one track; busy time must be the interval union, not the sum.
  Trace tr;
  tr.record("gpu", "outer", {0.0, 8.0});
  tr.record("gpu", "inner", {2.0, 6.0});
  tr.record("gpu", "tail", {7.0, 10.0});
  EXPECT_DOUBLE_EQ(tr.utilization("gpu"), 1.0);
}

TEST(Trace, OverlapFractionDoesNotDoubleCountDuplicateBSpans) {
  Trace tr;
  tr.record("pcie", "t", {0.0, 4.0});
  tr.record("gpu", "f", {1.0, 3.0});
  tr.record("gpu", "f", {1.0, 3.0});  // duplicate busy window on b
  // 2 of 4 pcie seconds coincide with gpu busy time, regardless of how many
  // gpu spans cover that window.
  EXPECT_DOUBLE_EQ(tr.overlap_fraction("pcie", "gpu"), 0.5);
}

TEST(Trace, RenderProducesOneRowPerResource) {
  Trace tr;
  tr.record("gpu", "f", {0.0, 1.0});
  tr.record("pcie", "c", {0.5, 1.0});
  std::ostringstream os;
  tr.render(os, 20);
  const std::string out = os.str();
  EXPECT_NE(out.find("gpu"), std::string::npos);
  EXPECT_NE(out.find("pcie"), std::string::npos);
  EXPECT_NE(out.find('f'), std::string::npos);
  EXPECT_NE(out.find('c'), std::string::npos);
}

TEST(Trace, CsvHasHeaderAndRows) {
  Trace tr;
  tr.record("gpu", "fp", {0.0, 1.5});
  std::ostringstream os;
  tr.write_csv(os);
  EXPECT_NE(os.str().find("resource,label,start,end"), std::string::npos);
  EXPECT_NE(os.str().find("gpu,fp,0,1.5"), std::string::npos);
}

TEST(Hardware, V100SpecsMatchPaperPlatform) {
  const auto m = v100_server();
  EXPECT_NEAR(m.gpu.mem_bytes / (1024.0 * 1024 * 1024), 32.0, 1e-9);
  EXPECT_NEAR(m.gpu.peak_flops, 15.7e12, 1e9);
  EXPECT_EQ(m.cpu.cores, 48);
  EXPECT_GT(m.cpu.ram_bytes, 700.0 * 1024 * 1024 * 1024);
  EXPECT_GT(m.pcie_bytes_per_s, 0.0);
}

TEST(Hardware, A10ClusterHasEightNodes) {
  const auto c = a10_cluster();
  EXPECT_EQ(c.num_nodes, 8);
  EXPECT_NEAR(c.node.gpu.mem_bytes / (1024.0 * 1024 * 1024), 24.0, 1e-9);
  EXPECT_EQ(c.node.cpu.cores, 128);
}

TEST(Hardware, EffectiveFlopsIncreasesWithBatch) {
  const auto g = v100_server().gpu;
  EXPECT_LT(g.effective_flops(1), g.effective_flops(4));
  EXPECT_LT(g.effective_flops(4), g.effective_flops(16));
  EXPECT_LT(g.effective_flops(1024), g.peak_flops);
}

}  // namespace
}  // namespace sh::sim

// Learning-rate schedules and global gradient-norm clipping, including their
// interaction with the asynchronous offloaded update path.
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "core/monolithic.hpp"
#include "data/synthetic.hpp"
#include "optim/schedule.hpp"
#include "testing/util.hpp"

namespace sh {
namespace {

TEST(LrSchedule, ConstantIsConstant) {
  auto s = optim::constant_lr(0.01f);
  EXPECT_FLOAT_EQ(s(1), 0.01f);
  EXPECT_FLOAT_EQ(s(100000), 0.01f);
}

TEST(LrSchedule, WarmupRampsLinearly) {
  auto s = optim::warmup_cosine(1.0f, 10, 100);
  EXPECT_FLOAT_EQ(s(1), 0.1f);
  EXPECT_FLOAT_EQ(s(5), 0.5f);
  EXPECT_FLOAT_EQ(s(10), 1.0f);
}

TEST(LrSchedule, CosineDecaysToMin) {
  auto s = optim::warmup_cosine(1.0f, 0, 100, 0.1f);
  EXPECT_NEAR(s(50), 0.55f, 1e-5f);  // halfway: min + 0.5*(base-min)
  EXPECT_FLOAT_EQ(s(100), 0.1f);
  EXPECT_FLOAT_EQ(s(500), 0.1f);  // flat afterwards
}

TEST(LrSchedule, CosineIsMonotoneAfterWarmup) {
  auto s = optim::warmup_cosine(3e-4f, 20, 200);
  for (int t = 21; t < 200; ++t) EXPECT_GE(s(t), s(t + 1));
}

TEST(LrSchedule, LinearDecay) {
  auto s = optim::warmup_linear(1.0f, 10, 110, 0.0f);
  EXPECT_FLOAT_EQ(s(10), 1.0f);
  EXPECT_NEAR(s(60), 0.5f, 1e-6f);
  EXPECT_FLOAT_EQ(s(110), 0.0f);
}

nn::GptConfig tiny_config() {
  nn::GptConfig cfg;
  cfg.vocab = 32;
  cfg.max_seq = 8;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.layers = 4;
  return cfg;
}

struct Variant {
  float clip;
  bool schedule;
};

class EngineOptimFeatures : public ::testing::TestWithParam<Variant> {};

TEST_P(EngineOptimFeatures, OffloadedMatchesMonolithicBitwise) {
  const auto [clip, use_schedule] = GetParam();
  const auto mcfg = tiny_config();
  data::SyntheticCorpus corpus(mcfg.vocab, 77);
  std::vector<data::Batch> batches;
  for (int i = 0; i < 4; ++i) batches.push_back(corpus.next_batch(2, mcfg.max_seq));

  const auto schedule =
      use_schedule ? optim::warmup_cosine(5e-3f, 2, 10) : optim::LrSchedule{};

  nn::GptModel ref_model(mcfg);
  core::MonolithicTrainer ref(ref_model, optim::AdamConfig{}, clip, schedule);
  ref.init_params(42);
  std::vector<float> ref_losses;
  for (const auto& b : batches) ref_losses.push_back(ref.train_step(b));
  std::vector<float> ref_params;
  ref.snapshot_params(ref_params);

  nn::GptModel model(mcfg);
  core::EngineConfig ecfg;
  ecfg.window = 2;
  ecfg.clip_grad_norm = clip;
  ecfg.lr_schedule = schedule;
  core::StrongholdEngine engine(model, ecfg);
  engine.init_params(42);
  std::vector<float> losses;
  for (const auto& b : batches) losses.push_back(engine.train_step(b));
  std::vector<float> params;
  engine.snapshot_params(params);

  EXPECT_EQ(losses, ref_losses);
  sh::testing::expect_allclose(params, ref_params, 0.0f, 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, EngineOptimFeatures,
    ::testing::Values(Variant{0.0f, true},        // schedule only
                      Variant{0.05f, false},      // tight clip only
                      Variant{0.05f, true},       // both
                      Variant{1000.0f, false}));  // clip configured, inactive

TEST(GradClipping, ActuallyLimitsTheUpdateMagnitude) {
  // With a tight clip the first-step parameter delta must shrink.
  const auto mcfg = tiny_config();
  data::SyntheticCorpus corpus(mcfg.vocab, 12);
  const auto batch = corpus.next_batch(2, mcfg.max_seq);

  auto delta_with_clip = [&](float clip) {
    nn::GptModel model(mcfg);
    core::EngineConfig ecfg;
    ecfg.window = 2;
    ecfg.clip_grad_norm = clip;
    core::StrongholdEngine engine(model, ecfg);
    engine.init_params(4);
    std::vector<float> before;
    engine.snapshot_params(before);
    engine.train_step(batch);
    std::vector<float> after;
    engine.snapshot_params(after);
    double sum = 0;
    for (std::size_t i = 0; i < before.size(); ++i) {
      sum += std::abs(after[i] - before[i]);
    }
    return sum;
  };
  // Adam normalises per-coordinate, but a clipped (tiny) gradient shrinks
  // the very first step because m/sqrt(v) stays the same while weight decay
  // and eps effects do not... compare against an effectively-unclipped run.
  const double clipped = delta_with_clip(1e-4f);
  const double unclipped = delta_with_clip(1e9f);
  EXPECT_LT(clipped, unclipped);
}

TEST(GradClipping, WorksWithSwapTierAndExecutors) {
  const auto mcfg = tiny_config();
  data::SyntheticCorpus corpus(mcfg.vocab, 13);
  std::vector<data::Batch> batches;
  for (int i = 0; i < 2; ++i) batches.push_back(corpus.next_batch(4, mcfg.max_seq));

  nn::GptModel ref_model(mcfg);
  core::MonolithicTrainer ref(ref_model, optim::AdamConfig{}, 0.05f);
  ref.init_params(42);
  std::vector<float> ref_losses;
  for (const auto& b : batches) ref_losses.push_back(ref.train_step(b));

  nn::GptModel model(mcfg);
  core::EngineConfig ecfg;
  ecfg.window = 1;
  ecfg.clip_grad_norm = 0.05f;
  ecfg.num_executors = 2;
  ecfg.cpu_capacity_bytes = 64 * 1024;
  ecfg.swap_path = ::testing::TempDir() + "clip_swap.bin";
  core::StrongholdEngine engine(model, ecfg);
  engine.init_params(42);
  for (std::size_t i = 0; i < batches.size(); ++i) {
    // Executors reorder additions; losses agree to rounding.
    EXPECT_NEAR(engine.train_step(batches[i]), ref_losses[i], 1e-5f);
  }
}

TEST(ScheduledTraining, LateStepsMoveLessThanEarlySteps) {
  const auto mcfg = tiny_config();
  nn::GptModel model(mcfg);
  core::EngineConfig ecfg;
  ecfg.window = 2;
  ecfg.lr_schedule = optim::warmup_linear(1e-2f, 1, 20, 0.0f);
  core::StrongholdEngine engine(model, ecfg);
  engine.init_params(2);
  data::SyntheticCorpus corpus(mcfg.vocab, 3);

  auto step_delta = [&] {
    std::vector<float> before, after;
    engine.snapshot_params(before);
    engine.train_step(corpus.next_batch(2, mcfg.max_seq));
    engine.snapshot_params(after);
    double sum = 0;
    for (std::size_t i = 0; i < before.size(); ++i) {
      sum += std::abs(after[i] - before[i]);
    }
    return sum;
  };
  const double early = step_delta();  // step 1 (post-warmup peak region)
  for (int i = 0; i < 17; ++i) engine.train_step(corpus.next_batch(2, mcfg.max_seq));
  const double late = step_delta();  // step ~19, lr nearly 0
  EXPECT_LT(late, 0.5 * early);
}

}  // namespace
}  // namespace sh

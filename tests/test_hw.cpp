#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "hw/transfer.hpp"
#include "mem/device_arena.hpp"

namespace sh::hw {
namespace {

using mem::DeviceArena;
using mem::OomError;
using MemoryPool = mem::DeviceArena;

TEST(MemoryPool, AllocatesWithinCapacity) {
  MemoryPool pool("gpu", 1024);
  float* p = pool.allocate_floats(100);  // 400 bytes
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(pool.used(), 400u);
  EXPECT_EQ(pool.free_bytes(), 624u);
  EXPECT_EQ(pool.live_allocations(), 1u);
  pool.deallocate(p);
  EXPECT_EQ(pool.used(), 0u);
}

TEST(MemoryPool, ThrowsOomOnExhaustion) {
  MemoryPool pool("gpu", 1000);
  float* p = pool.allocate_floats(200);  // 800 bytes
  try {
    pool.allocate_floats(100);  // 400 more would exceed
    FAIL() << "expected OomError";
  } catch (const OomError& e) {
    EXPECT_EQ(e.requested_bytes(), 400u);
    EXPECT_EQ(e.free_bytes(), 200u);
  }
  pool.deallocate(p);
  // After freeing, the allocation succeeds.
  EXPECT_NE(pool.allocate_floats(100), nullptr);
}

TEST(MemoryPool, TracksHighWaterMark) {
  MemoryPool pool("gpu", 4096);
  float* a = pool.allocate_floats(256);
  float* b = pool.allocate_floats(512);
  pool.deallocate(a);
  pool.deallocate(b);
  EXPECT_EQ(pool.high_water(), (256u + 512u) * sizeof(float));
  EXPECT_EQ(pool.used(), 0u);
}

TEST(MemoryPool, DetectsDoubleAndForeignFree) {
  MemoryPool pool("gpu", 4096);
  float* p = pool.allocate_floats(8);
  pool.deallocate(p);
  EXPECT_THROW(pool.deallocate(p), std::logic_error);  // double free
  float stack_var = 0.0f;
  EXPECT_THROW(pool.deallocate(&stack_var), std::logic_error);
}

TEST(MemoryPool, DeallocateNullIsNoop) {
  MemoryPool pool("gpu", 64);
  pool.deallocate(nullptr);
  EXPECT_EQ(pool.used(), 0u);
}

TEST(MemoryPool, ZeroCapacityRejectsEverything) {
  MemoryPool pool("tiny", 0);
  EXPECT_THROW(pool.allocate_floats(1), OomError);
}

TEST(MemoryPool, ByteAllocationsAreThePrimary) {
  MemoryPool pool("gpu", 1024);
  std::byte* p = pool.allocate_bytes(100);  // odd sizes are fine in bytes
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(pool.used(), 100u);
  pool.deallocate(p);
  EXPECT_EQ(pool.used(), 0u);
}

TEST(TransferEngine, CopiesData) {
  TransferEngine eng("h2d");
  std::vector<float> src = {1, 2, 3, 4};
  std::vector<float> dst(4, 0.0f);
  eng.copy_async(src.data(), dst.data(), 4).get();
  EXPECT_EQ(dst, src);
  EXPECT_EQ(eng.completed_transfers(), 1u);
  EXPECT_EQ(eng.bytes_transferred(), 16u);
}

TEST(TransferEngine, CopiesAreFifoOrdered) {
  TransferEngine eng("h2d");
  std::vector<float> buf(1, 0.0f);
  std::vector<float> one = {1.0f}, two = {2.0f}, three = {3.0f};
  std::vector<float> observed;
  eng.copy_async(one.data(), buf.data(), 1);
  eng.run_async([&] { observed.push_back(buf[0]); });
  eng.copy_async(two.data(), buf.data(), 1);
  eng.run_async([&] { observed.push_back(buf[0]); });
  eng.copy_async(three.data(), buf.data(), 1);
  eng.run_async([&] { observed.push_back(buf[0]); });
  eng.wait_all();
  EXPECT_EQ(observed, (std::vector<float>{1.0f, 2.0f, 3.0f}));
}

TEST(TransferEngine, RunsConcurrentlyWithCaller) {
  // A throttled copy must not block the submitting thread.
  TransferEngine eng("h2d", 1e6);  // 1 MB/s
  std::vector<float> src(25000, 1.0f);  // 100 KB -> 0.1 s
  std::vector<float> dst(25000, 0.0f);
  const auto t0 = std::chrono::steady_clock::now();
  auto fut = eng.copy_async(src.data(), dst.data(), src.size());
  const auto submit_elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(submit_elapsed, 0.05);  // submission is asynchronous
  fut.get();
  const auto total_elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(total_elapsed, 0.09);  // the throttle was applied
  EXPECT_EQ(dst[0], 1.0f);
}

TEST(TransferEngine, WaitAllDrainsQueue) {
  TransferEngine eng("d2h");
  std::vector<float> src(64, 2.0f), dst(64, 0.0f);
  for (int i = 0; i < 10; ++i) eng.copy_async(src.data(), dst.data(), 64);
  eng.wait_all();
  EXPECT_EQ(eng.completed_transfers(), 10u);
}

TEST(TransferEngine, ByteCopyReportsTrueBytes) {
  TransferEngine eng("h2d");
  // A bf16-style wire copy: 6 elements at 2 bytes each.
  std::vector<std::uint16_t> src = {1, 2, 3, 4, 5, 6};
  std::vector<std::uint16_t> dst(6, 0);
  eng.copy_async(src.data(), dst.data(), src.size() * sizeof(std::uint16_t))
      .get();
  EXPECT_EQ(dst, src);
  EXPECT_EQ(eng.completed_transfers(), 1u);
  EXPECT_EQ(eng.bytes_transferred(), 12u);  // not 4 bytes/element
}

TEST(TransferEngine, RecordTransferAccountsJobBytes) {
  TransferEngine eng("h2d");
  // Jobs that move data themselves report their wire bytes explicitly.
  eng.run_async([&] { eng.record_transfer(512); }).get();
  eng.record_transfer(256);  // also callable from outside a job
  EXPECT_EQ(eng.completed_transfers(), 2u);
  EXPECT_EQ(eng.bytes_transferred(), 768u);
}

TEST(TransferEngine, PropagatesJobExceptions) {
  TransferEngine eng("io");
  auto fut = eng.run_async([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
  // Engine still works after an exception.
  std::vector<float> src = {5.0f}, dst = {0.0f};
  eng.copy_async(src.data(), dst.data(), 1).get();
  EXPECT_EQ(dst[0], 5.0f);
}

}  // namespace
}  // namespace sh::hw

// serve::Workload tests: seeded generation, record→replay round-trip, and
// typed malformed-file errors.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "serve/workload.hpp"

namespace sh::serve {
namespace {

WorkloadSpec demo_spec() {
  WorkloadSpec spec;
  spec.seed = 7;
  spec.requests = 64;
  spec.arrival_rate = 40.0;
  spec.vocab = 32;
  spec.prompt_min = 2;
  spec.prompt_max = 9;
  spec.output_min = 2;
  spec.output_max = 6;
  spec.tiers = {{"interactive", 0.5}, {"batch", 5.0}};
  spec.tier_weights = {3.0, 1.0};
  spec.shared_prefix = {5, 6, 7};
  spec.prefix_share = 0.5;
  return spec;
}

bool same_item(const WorkloadItem& a, const WorkloadItem& b) {
  return a.id == b.id && a.arrival_s == b.arrival_s && a.tier == b.tier &&
         a.prompt == b.prompt && a.max_new_tokens == b.max_new_tokens &&
         a.sampling.seed == b.sampling.seed &&
         a.sampling.temperature == b.sampling.temperature &&
         a.sampling.top_k == b.sampling.top_k &&
         a.sampling.top_p == b.sampling.top_p &&
         a.shares_prefix == b.shares_prefix;
}

void expect_same_workload(const Workload& a, const Workload& b) {
  ASSERT_EQ(a.tiers.size(), b.tiers.size());
  for (std::size_t t = 0; t < a.tiers.size(); ++t) {
    EXPECT_EQ(a.tiers[t].name, b.tiers[t].name);
    EXPECT_EQ(a.tiers[t].deadline_s, b.tiers[t].deadline_s);
  }
  EXPECT_EQ(a.shared_prefix, b.shared_prefix);
  ASSERT_EQ(a.items.size(), b.items.size());
  for (std::size_t i = 0; i < a.items.size(); ++i) {
    EXPECT_TRUE(same_item(a.items[i], b.items[i])) << "item " << i;
  }
}

TEST(Workload, GenerationIsDeterministicAndSeedSensitive) {
  const auto spec = demo_spec();
  const Workload a = generate_workload(spec);
  const Workload b = generate_workload(spec);
  expect_same_workload(a, b);

  auto other = spec;
  other.seed = 8;
  const Workload c = generate_workload(other);
  ASSERT_EQ(a.items.size(), c.items.size());
  bool any_diff = false;
  for (std::size_t i = 0; i < a.items.size(); ++i) {
    any_diff = any_diff || !same_item(a.items[i], c.items[i]);
  }
  EXPECT_TRUE(any_diff) << "different seeds produced identical traffic";
}

TEST(Workload, RecordReplayRoundTripsExactly) {
  const std::string path = ::testing::TempDir() + "wl_roundtrip.shwl";
  const Workload a = generate_workload(demo_spec());
  a.save(path);
  const Workload b = Workload::load(path);
  expect_same_workload(a, b);
  // Replay of the replay: byte-exact stability, not just value equality.
  const std::string path2 = ::testing::TempDir() + "wl_roundtrip2.shwl";
  b.save(path2);
  std::ifstream f1(path), f2(path2);
  const std::string s1((std::istreambuf_iterator<char>(f1)),
                       std::istreambuf_iterator<char>());
  const std::string s2((std::istreambuf_iterator<char>(f2)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(s1, s2);
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(Workload, DistributionSanityBounds) {
  auto spec = demo_spec();
  spec.requests = 2000;
  const Workload wl = generate_workload(spec);
  ASSERT_EQ(wl.items.size(), spec.requests);

  double prev = 0.0;
  std::size_t sharers = 0;
  std::vector<std::size_t> tier_counts(wl.tiers.size(), 0);
  double prompt_sum = 0.0;
  std::size_t prompt_at_max = 0;
  for (const WorkloadItem& it : wl.items) {
    EXPECT_GE(it.arrival_s, prev);
    prev = it.arrival_s;
    ++tier_counts.at(it.tier);
    const auto base = it.shares_prefix ? wl.shared_prefix.size() : 0u;
    const auto own = static_cast<std::int64_t>(it.prompt.size() - base);
    EXPECT_GE(own, spec.prompt_min);
    EXPECT_LE(own, spec.prompt_max);
    EXPECT_GE(static_cast<std::int64_t>(it.max_new_tokens), spec.output_min);
    EXPECT_LE(static_cast<std::int64_t>(it.max_new_tokens), spec.output_max);
    for (std::int32_t tok : it.prompt) {
      EXPECT_GE(tok, 1);
      EXPECT_LT(tok, spec.vocab);
    }
    if (it.shares_prefix) {
      ++sharers;
      ASSERT_GE(it.prompt.size(), wl.shared_prefix.size());
      EXPECT_TRUE(std::equal(wl.shared_prefix.begin(), wl.shared_prefix.end(),
                             it.prompt.begin()));
    }
    prompt_sum += static_cast<double>(own);
    prompt_at_max += own >= spec.prompt_max - 1;
  }

  // Poisson arrivals: mean inter-arrival ~ 1/rate (law of large numbers at
  // n=2000; the draw is seeded, so this is a fixed number, not a flake).
  const double mean_gap = prev / static_cast<double>(spec.requests);
  EXPECT_GT(mean_gap, 0.8 / spec.arrival_rate);
  EXPECT_LT(mean_gap, 1.25 / spec.arrival_rate);

  // Heavy tail: mass concentrates near prompt_min yet the max is reached.
  const double mean_prompt = prompt_sum / static_cast<double>(spec.requests);
  EXPECT_LT(mean_prompt,
            0.5 * static_cast<double>(spec.prompt_min + spec.prompt_max));
  EXPECT_GT(prompt_at_max, 0u) << "tail never reached prompt_max";

  // Tier weights 3:1 — both present, the heavy tier dominates.
  EXPECT_GT(tier_counts[0], tier_counts[1]);
  EXPECT_GT(tier_counts[1], spec.requests / 10);

  // prefix_share = 0.5 of 2000.
  EXPECT_GT(sharers, spec.requests / 3);
  EXPECT_LT(sharers, 2 * spec.requests / 3);
}

class WorkloadFileError : public ::testing::Test {
 protected:
  std::string write_file(const std::string& body) {
    const std::string path =
        ::testing::TempDir() + "wl_bad_" + std::to_string(n_++) + ".shwl";
    std::ofstream out(path);
    out << body;
    return path;
  }
  WorkloadErrorKind kind_of(const std::string& path, std::size_t* line = nullptr) {
    try {
      (void)Workload::load(path);
    } catch (const WorkloadError& e) {
      if (line != nullptr) *line = e.line();
      return e.kind();
    }
    ADD_FAILURE() << "load did not throw for " << path;
    return WorkloadErrorKind::Parse;
  }
  int n_ = 0;
};

TEST_F(WorkloadFileError, TypedErrorsForEveryFailureClass) {
  EXPECT_EQ(kind_of(::testing::TempDir() + "wl_no_such_file.shwl"),
            WorkloadErrorKind::MissingFile);
  EXPECT_EQ(kind_of(write_file("nope 1\n")), WorkloadErrorKind::BadMagic);
  EXPECT_EQ(kind_of(write_file("shwl 9\n")), WorkloadErrorKind::BadVersion);

  // Truncations: mid-header, mid-items, and a missing end sentinel.
  EXPECT_EQ(kind_of(write_file("")), WorkloadErrorKind::Truncated);
  EXPECT_EQ(kind_of(write_file("shwl 1\ntiers 1\ntier a 1.0\nprefix 0\n"
                               "items 2\nitem 1 0.0 0 1 9 0 0 1 0 1 3\n")),
            WorkloadErrorKind::Truncated);
  EXPECT_EQ(kind_of(write_file("shwl 1\ntiers 1\ntier a 1.0\nprefix 0\n"
                               "items 0\n")),
            WorkloadErrorKind::Truncated);

  // Parse errors carry the failing line.
  std::size_t line = 0;
  EXPECT_EQ(kind_of(write_file("shwl 1\ntiers one\n"), &line),
            WorkloadErrorKind::Parse);
  EXPECT_EQ(line, 2u);
  EXPECT_EQ(kind_of(write_file("shwl 1\ntiers 1\ntier a fast\n")),
            WorkloadErrorKind::Parse);
  EXPECT_EQ(kind_of(write_file("shwl 1 extra\n")), WorkloadErrorKind::Parse);
  EXPECT_EQ(kind_of(write_file("shwl 1\ntiers 1\ntier a 1.0\nprefix 0\n"
                               "items 1\n"
                               "item 1 0.0 0 1 9 0 0 1 0 1 3 77\nend\n")),
            WorkloadErrorKind::Parse)
      << "trailing prompt tokens must be rejected";

  // Range errors: semantically impossible values in a well-formed file.
  EXPECT_EQ(kind_of(write_file("shwl 1\ntiers 1\ntier a -1.0\n")),
            WorkloadErrorKind::Range);
  EXPECT_EQ(kind_of(write_file("shwl 1\ntiers 1\ntier a 1.0\nprefix 0\n"
                               "items 1\n"
                               "item 1 0.0 5 1 9 0 0 1 0 1 3\nend\n"),
                    &line),
            WorkloadErrorKind::Range)
      << "tier index out of range";
  EXPECT_EQ(line, 6u);
  EXPECT_EQ(kind_of(write_file("shwl 1\ntiers 1\ntier a 1.0\nprefix 0\n"
                               "items 2\n"
                               "item 1 5.0 0 1 9 0 0 1 0 1 3\n"
                               "item 2 4.0 0 1 9 0 0 1 0 1 3\nend\n")),
            WorkloadErrorKind::Range)
      << "decreasing arrivals must be rejected";
  EXPECT_EQ(kind_of(write_file("shwl 1\ntiers 1\ntier a 1.0\nprefix 2 5 6\n"
                               "items 1\n"
                               "item 1 0.0 0 1 9 0 0 1 1 2 9 9\nend\n")),
            WorkloadErrorKind::Range)
      << "shares_prefix with a prompt that does not start with the prefix";
}

}  // namespace
}  // namespace sh::serve

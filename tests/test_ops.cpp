#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tensor/matmul_ref.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"
#include "testing/util.hpp"

namespace sh::tensor {
namespace {

void matmul_reference(const float* a, const float* b, float* c, std::int64_t m,
                      std::int64_t n, std::int64_t k, bool ta, bool tb,
                      float alpha, float beta) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = ta ? a[p * m + i] : a[i * k + p];
        const float bv = tb ? b[j * k + p] : b[p * n + j];
        acc += static_cast<double>(av) * bv;
      }
      c[i * n + j] = alpha * static_cast<float>(acc) + beta * c[i * n + j];
    }
  }
}

struct MatmulCase {
  std::int64_t m, n, k;
  bool ta, tb;
  float alpha, beta;
};

class MatmulTest : public ::testing::TestWithParam<MatmulCase> {};

TEST_P(MatmulTest, MatchesReference) {
  const auto& p = GetParam();
  Rng rng(123);
  std::vector<float> a(static_cast<std::size_t>(p.m * p.k));
  std::vector<float> b(static_cast<std::size_t>(p.k * p.n));
  std::vector<float> c(static_cast<std::size_t>(p.m * p.n));
  rng.fill_uniform(a, 1.0f);
  rng.fill_uniform(b, 1.0f);
  rng.fill_uniform(c, 1.0f);
  std::vector<float> expect = c;
  matmul_reference(a.data(), b.data(), expect.data(), p.m, p.n, p.k, p.ta, p.tb,
                   p.alpha, p.beta);
  matmul(a.data(), b.data(), c.data(), p.m, p.n, p.k, p.ta, p.tb, p.alpha,
         p.beta);
  sh::testing::expect_allclose(c, expect, 1e-4f, 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MatmulTest,
    ::testing::Values(MatmulCase{4, 5, 6, false, false, 1.0f, 0.0f},
                      MatmulCase{4, 5, 6, false, true, 1.0f, 0.0f},
                      MatmulCase{4, 5, 6, true, false, 1.0f, 0.0f},
                      MatmulCase{4, 5, 6, true, true, 1.0f, 0.0f},
                      MatmulCase{1, 1, 1, false, false, 2.0f, 0.5f},
                      MatmulCase{7, 3, 9, false, true, 0.5f, 1.0f},
                      MatmulCase{16, 16, 16, true, false, 1.0f, 1.0f},
                      MatmulCase{33, 17, 29, false, false, 1.0f, 0.0f},
                      MatmulCase{64, 2, 3, true, true, -1.0f, 2.0f}));

// --- Blocked GEMM vs the preserved naive kernel (matmul_ref) ---------------
//
// Programmatic sweep: every transpose combination x alpha/beta in {0, 1, 0.5}
// x shapes chosen to straddle the blocking constants (MC=96, KC=256, NC=512)
// and the 6x16 micro-tile, so edge-padded tiles, multi-KC accumulation and
// multi-panel parallel paths are all exercised. The two kernels sum in a
// different order, so comparison is allclose, not bitwise.
std::vector<MatmulCase> gemm_vs_ref_cases() {
  const std::int64_t shapes[][3] = {
      {1, 1, 1},        // single element
      {5, 7, 3},        // smaller than one micro-tile
      {6, 16, 8},       // exactly one micro-tile
      {13, 33, 17},     // ragged edges in every dimension
      {97, 45, 19},     // m spans two MC row panels
      {33, 129, 300},   // k spans two KC blocks
      {100, 520, 260},  // all three blocked dimensions span two blocks
  };
  const float scalars[] = {0.0f, 1.0f, 0.5f};
  std::vector<MatmulCase> cases;
  for (const auto& s : shapes) {
    for (int ta = 0; ta < 2; ++ta) {
      for (int tb = 0; tb < 2; ++tb) {
        for (float alpha : scalars) {
          for (float beta : scalars) {
            cases.push_back(
                {s[0], s[1], s[2], ta != 0, tb != 0, alpha, beta});
          }
        }
      }
    }
  }
  return cases;
}

class GemmVsRefTest : public ::testing::TestWithParam<MatmulCase> {};

TEST_P(GemmVsRefTest, MatchesNaiveKernel) {
  const auto& p = GetParam();
  Rng rng(321);
  std::vector<float> a(static_cast<std::size_t>(p.m * p.k));
  std::vector<float> b(static_cast<std::size_t>(p.k * p.n));
  std::vector<float> c(static_cast<std::size_t>(p.m * p.n));
  rng.fill_uniform(a, 1.0f);
  rng.fill_uniform(b, 1.0f);
  rng.fill_uniform(c, 1.0f);
  std::vector<float> expect = c;
  matmul_ref(a.data(), b.data(), expect.data(), p.m, p.n, p.k, p.ta, p.tb,
             p.alpha, p.beta);
  matmul(a.data(), b.data(), c.data(), p.m, p.n, p.k, p.ta, p.tb, p.alpha,
         p.beta);
  sh::testing::expect_allclose(c, expect, 1e-4f, 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GemmVsRefTest,
                         ::testing::ValuesIn(gemm_vs_ref_cases()));

TEST(Gemm, ReferenceFallbackTogglesAtRuntime) {
  Rng rng(77);
  std::vector<float> a(19 * 23), b(23 * 31), c_ref(19 * 31), c_flag(19 * 31);
  rng.fill_uniform(a, 1.0f);
  rng.fill_uniform(b, 1.0f);
  matmul_ref(a.data(), b.data(), c_ref.data(), 19, 31, 23, false, false);
  set_use_reference_gemm(true);
  matmul(a.data(), b.data(), c_flag.data(), 19, 31, 23, false, false);
  set_use_reference_gemm(false);
  for (std::size_t i = 0; i < c_ref.size(); ++i) {
    EXPECT_EQ(c_flag[i], c_ref[i]) << "at " << i;
  }
}

// --- Fused epilogues: bitwise-identical to their unfused compositions ------
//
// These are EXPECT_EQ, not allclose: the fused entry points are required to
// produce the exact floats of the unfused op sequence (DESIGN.md "Kernel
// substrate"), which is what lets layers adopt them without perturbing the
// monolithic-vs-offloaded bit-identity invariant.

struct FusedCase {
  std::int64_t m, n, k;
  bool ta, tb;
};

class FusedEpilogueTest : public ::testing::TestWithParam<FusedCase> {};

TEST_P(FusedEpilogueTest, MatmulBiasMatchesUnfusedExactly) {
  const auto& p = GetParam();
  Rng rng(55);
  std::vector<float> a(static_cast<std::size_t>(p.m * p.k));
  std::vector<float> b(static_cast<std::size_t>(p.k * p.n));
  std::vector<float> bias(static_cast<std::size_t>(p.n));
  rng.fill_uniform(a, 1.0f);
  rng.fill_uniform(b, 1.0f);
  rng.fill_uniform(bias, 1.0f);
  std::vector<float> expect(static_cast<std::size_t>(p.m * p.n));
  std::vector<float> got(expect.size());
  matmul(a.data(), b.data(), expect.data(), p.m, p.n, p.k, p.ta, p.tb);
  add_bias(expect.data(), bias.data(), expect.data(), p.m, p.n);
  matmul_bias(a.data(), b.data(), bias.data(), got.data(), p.m, p.n, p.k,
              p.ta, p.tb);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expect[i]) << "at " << i;
  }
}

TEST_P(FusedEpilogueTest, MatmulBiasGeluMatchesUnfusedExactly) {
  const auto& p = GetParam();
  Rng rng(56);
  std::vector<float> a(static_cast<std::size_t>(p.m * p.k));
  std::vector<float> b(static_cast<std::size_t>(p.k * p.n));
  std::vector<float> bias(static_cast<std::size_t>(p.n));
  rng.fill_uniform(a, 1.0f);
  rng.fill_uniform(b, 1.0f);
  rng.fill_uniform(bias, 1.0f);
  const std::size_t size = static_cast<std::size_t>(p.m * p.n);
  std::vector<float> expect_pre(size), expect_out(size);
  matmul(a.data(), b.data(), expect_pre.data(), p.m, p.n, p.k, p.ta, p.tb);
  add_bias(expect_pre.data(), bias.data(), expect_pre.data(), p.m, p.n);
  gelu_forward(expect_pre.data(), expect_out.data(), p.m * p.n);

  std::vector<float> pre(size), out(size);
  matmul_bias_gelu(a.data(), b.data(), bias.data(), pre.data(), out.data(),
                   p.m, p.n, p.k, p.ta, p.tb);
  for (std::size_t i = 0; i < size; ++i) {
    EXPECT_EQ(pre[i], expect_pre[i]) << "pre at " << i;
    EXPECT_EQ(out[i], expect_out[i]) << "out at " << i;
  }

  // Null pre-activation variant writes only the activation.
  std::vector<float> out2(size);
  matmul_bias_gelu(a.data(), b.data(), bias.data(), nullptr, out2.data(), p.m,
                   p.n, p.k, p.ta, p.tb);
  for (std::size_t i = 0; i < size; ++i) {
    EXPECT_EQ(out2[i], expect_out[i]) << "out2 at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FusedEpilogueTest,
    ::testing::Values(FusedCase{3, 5, 2, false, false},
                      FusedCase{13, 33, 17, false, true},
                      FusedCase{97, 45, 19, true, false},
                      FusedCase{100, 520, 260, false, true}));

TEST(Ops, GeluBackwardBiasGradMatchesUnfusedExactly) {
  const std::int64_t rows = 37, cols = 130;
  const std::size_t size = static_cast<std::size_t>(rows * cols);
  Rng rng(57);
  std::vector<float> x(size), gout(size);
  rng.fill_uniform(x, 2.0f);
  rng.fill_uniform(gout, 1.0f);
  // bias_grad accumulates, so both paths start from the same non-zero state.
  std::vector<float> expect_gin(size), expect_bg(cols, 0.25f);
  gelu_backward(x.data(), gout.data(), expect_gin.data(), rows * cols);
  bias_grad(expect_gin.data(), expect_bg.data(), rows, cols);
  std::vector<float> gin(size), bg(cols, 0.25f);
  gelu_backward_bias_grad(x.data(), gout.data(), gin.data(), bg.data(), rows,
                          cols);
  for (std::size_t i = 0; i < size; ++i) {
    EXPECT_EQ(gin[i], expect_gin[i]) << "gin at " << i;
  }
  for (std::size_t j = 0; j < expect_bg.size(); ++j) {
    EXPECT_EQ(bg[j], expect_bg[j]) << "bg at " << j;
  }
}

TEST(Ops, AddBiasBroadcastsOverRows) {
  std::vector<float> in = {1, 2, 3, 4};
  std::vector<float> bias = {10, 20};
  std::vector<float> out(4);
  add_bias(in.data(), bias.data(), out.data(), 2, 2);
  EXPECT_EQ(out[0], 11.0f);
  EXPECT_EQ(out[1], 22.0f);
  EXPECT_EQ(out[2], 13.0f);
  EXPECT_EQ(out[3], 24.0f);
}

TEST(Ops, BiasGradSumsRows) {
  std::vector<float> grad = {1, 2, 3, 4, 5, 6};
  std::vector<float> bg(2, 0.5f);
  bias_grad(grad.data(), bg.data(), 3, 2);
  EXPECT_FLOAT_EQ(bg[0], 0.5f + 1 + 3 + 5);
  EXPECT_FLOAT_EQ(bg[1], 0.5f + 2 + 4 + 6);
}

TEST(Ops, GeluMatchesKnownValues) {
  std::vector<float> in = {0.0f, 1.0f, -1.0f, 3.0f};
  std::vector<float> out(4);
  gelu_forward(in.data(), out.data(), 4);
  EXPECT_NEAR(out[0], 0.0f, 1e-6f);
  EXPECT_NEAR(out[1], 0.8412f, 1e-3f);
  EXPECT_NEAR(out[2], -0.1588f, 1e-3f);
  EXPECT_NEAR(out[3], 2.9964f, 1e-3f);
}

TEST(Ops, GeluBackwardMatchesFiniteDifference) {
  Rng rng(5);
  std::vector<float> x(32);
  rng.fill_uniform(x, 2.0f);
  std::vector<float> gout(32, 1.0f);
  std::vector<float> gin(32);
  gelu_backward(x.data(), gout.data(), gin.data(), 32);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < x.size(); ++i) {
    std::vector<float> xp = x, xm = x, yp(32), ym(32);
    xp[i] += eps;
    xm[i] -= eps;
    gelu_forward(xp.data(), yp.data(), 32);
    gelu_forward(xm.data(), ym.data(), 32);
    const float numeric = (yp[i] - ym[i]) / (2 * eps);
    EXPECT_NEAR(gin[i], numeric, 1e-3f);
  }
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Rng rng(9);
  std::vector<float> in(8 * 16);
  rng.fill_uniform(in, 5.0f);
  std::vector<float> out(in.size());
  softmax_rows(in.data(), out.data(), 8, 16);
  for (int r = 0; r < 8; ++r) {
    float sum = 0;
    for (int c = 0; c < 16; ++c) {
      const float v = out[r * 16 + c];
      EXPECT_GE(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(Ops, SoftmaxIsShiftInvariant) {
  std::vector<float> a = {1, 2, 3, 4};
  std::vector<float> b = {1001, 1002, 1003, 1004};
  std::vector<float> ya(4), yb(4);
  softmax_rows(a.data(), ya.data(), 1, 4);
  softmax_rows(b.data(), yb.data(), 1, 4);
  sh::testing::expect_allclose(ya, yb, 1e-6f, 1e-5f);
}

TEST(Ops, CausalSoftmaxMasksFuturePositions) {
  std::vector<float> scores(4 * 4, 1.0f);
  std::vector<std::int64_t> allowed = {0, 1, 2, 3};
  causal_softmax_rows(scores.data(), 4, 4, allowed.data(), 1.0f);
  for (int r = 0; r < 4; ++r) {
    float sum = 0;
    for (int c = 0; c < 4; ++c) {
      if (c > r) {
        EXPECT_EQ(scores[r * 4 + c], 0.0f) << "row " << r << " col " << c;
      }
      sum += scores[r * 4 + c];
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
    // Equal scores => uniform over the allowed prefix.
    for (int c = 0; c <= r; ++c) {
      EXPECT_NEAR(scores[r * 4 + c], 1.0f / (r + 1), 1e-5f);
    }
  }
}

TEST(Ops, LayerNormOutputHasZeroMeanUnitVar) {
  Rng rng(11);
  const std::int64_t rows = 6, cols = 64;
  std::vector<float> x(rows * cols), y(rows * cols);
  std::vector<float> gamma(cols, 1.0f), beta(cols, 0.0f);
  std::vector<LayerNormStats> stats(rows);
  rng.fill_uniform(x, 3.0f);
  layernorm_forward(x.data(), gamma.data(), beta.data(), y.data(), stats.data(),
                    rows, cols);
  for (std::int64_t r = 0; r < rows; ++r) {
    double mean = 0, var = 0;
    for (std::int64_t c = 0; c < cols; ++c) mean += y[r * cols + c];
    mean /= cols;
    for (std::int64_t c = 0; c < cols; ++c) {
      var += (y[r * cols + c] - mean) * (y[r * cols + c] - mean);
    }
    var /= cols;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(Ops, EmbeddingGatherScatterRoundTrip) {
  const std::int64_t vocab = 10, cols = 4, rows = 3;
  std::vector<float> table(vocab * cols);
  for (std::size_t i = 0; i < table.size(); ++i) table[i] = static_cast<float>(i);
  std::vector<std::int32_t> ids = {7, 0, 7};
  std::vector<float> out(rows * cols);
  embedding_gather(table.data(), ids.data(), out.data(), rows, cols);
  EXPECT_EQ(out[0], 28.0f);  // row 7 starts at 7*4
  EXPECT_EQ(out[4], 0.0f);

  std::vector<float> tgrad(vocab * cols, 0.0f);
  std::vector<float> grad(rows * cols, 1.0f);
  embedding_scatter_add(grad.data(), ids.data(), tgrad.data(), rows, cols);
  // Token 7 appears twice, token 0 once.
  EXPECT_EQ(tgrad[7 * 4], 2.0f);
  EXPECT_EQ(tgrad[0], 1.0f);
  EXPECT_EQ(tgrad[1 * 4], 0.0f);
}

TEST(Ops, CrossEntropyUniformLogitsGivesLogClasses) {
  const std::int64_t rows = 4, classes = 8;
  std::vector<float> logits(rows * classes, 0.0f);
  std::vector<std::int32_t> targets = {0, 1, 2, 3};
  std::vector<float> grad(rows * classes);
  const float loss =
      cross_entropy(logits.data(), targets.data(), grad.data(), rows, classes);
  EXPECT_NEAR(loss, std::log(8.0f), 1e-5f);
}

TEST(Ops, CrossEntropyGradSumsToZeroPerRow) {
  Rng rng(3);
  const std::int64_t rows = 5, classes = 11;
  std::vector<float> logits(rows * classes);
  rng.fill_uniform(logits, 2.0f);
  std::vector<std::int32_t> targets = {1, 4, 0, 10, 6};
  std::vector<float> grad(rows * classes);
  cross_entropy(logits.data(), targets.data(), grad.data(), rows, classes);
  for (std::int64_t r = 0; r < rows; ++r) {
    double s = 0;
    for (std::int64_t c = 0; c < classes; ++c) s += grad[r * classes + c];
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
}

TEST(Ops, CrossEntropyGradMatchesFiniteDifference) {
  Rng rng(17);
  const std::int64_t rows = 3, classes = 6;
  std::vector<float> logits(rows * classes);
  rng.fill_uniform(logits, 1.5f);
  std::vector<std::int32_t> targets = {2, 5, 0};
  std::vector<float> grad(rows * classes);
  cross_entropy(logits.data(), targets.data(), grad.data(), rows, classes);
  const float eps = 1e-3f;
  std::vector<float> scratch(rows * classes);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    auto lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    const float fp = cross_entropy(lp.data(), targets.data(), scratch.data(),
                                   rows, classes);
    const float fm = cross_entropy(lm.data(), targets.data(), scratch.data(),
                                   rows, classes);
    EXPECT_NEAR(grad[i], (fp - fm) / (2 * eps), 1e-3f);
  }
}

TEST(Ops, ElementwiseHelpers) {
  std::vector<float> x = {1, 2, 3};
  std::vector<float> y = {1, 1, 1};
  axpy(2.0f, x.data(), y.data(), 3);
  EXPECT_EQ(y[2], 7.0f);
  scale(0.5f, y.data(), 3);
  EXPECT_EQ(y[0], 1.5f);
  std::vector<float> z(3);
  add(x.data(), x.data(), z.data(), 3);
  EXPECT_EQ(z[1], 4.0f);
  EXPECT_FLOAT_EQ(dot(x.data(), x.data(), 3), 14.0f);
  EXPECT_FLOAT_EQ(l2_norm(x.data(), 3), std::sqrt(14.0f));
  EXPECT_FLOAT_EQ(max_abs_diff(x.data(), z.data(), 3), 3.0f);
}

}  // namespace
}  // namespace sh::tensor
